// String-keyed codec registry: the growth point of the ECC layer.
//
// Schemes are constructed by name — ecc::make_codec("secded-39-32") — so
// caches, the injector, sweeps, CSV rows and the CLI all speak the same
// vocabulary and a new code is a one-file drop-in:
//
//     // my_code.cpp
//     namespace { const bool registered = laec::ecc::register_codec(
//         "my-code-39-32", [] { return std::make_shared<MyCodec>(); }); }
//
// Codecs are immutable, so the registry hands out one shared const instance
// per name (constructed lazily on first use; construction of the heavier
// codes builds H-matrices and syndrome LUTs once, not per cache).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ecc/codec.hpp"

namespace laec::ecc {

using CodecFactory = std::function<std::shared_ptr<const Codec>()>;

class CodecRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in schemes:
  /// none, parity-32, parity-i2-32, secded-39-32, secded-72-64,
  /// sec-daec-39-32, sec-daec-72-64, sec-daec-taec-45-32 (plus the legacy
  /// aliases parity, secded, sec-daec).
  [[nodiscard]] static CodecRegistry& instance();

  /// Register a scheme. Throws std::invalid_argument when `name` is empty
  /// or already taken.
  void add(std::string name, CodecFactory factory);

  /// Construct (or return the cached instance of) the named scheme.
  /// Throws std::out_of_range naming the known schemes when unknown.
  [[nodiscard]] std::shared_ptr<const Codec> make(std::string_view name);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// All registered names, sorted (aliases included).
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  CodecRegistry();

  struct Entry {
    CodecFactory factory;
    std::shared_ptr<const Codec> cached;  // lazily built, then shared
  };
  mutable std::mutex mu_;  // make() may race across sweep workers
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Convenience forwarders onto CodecRegistry::instance().
[[nodiscard]] std::shared_ptr<const Codec> make_codec(std::string_view name);
[[nodiscard]] std::vector<std::string> registered_codecs();
[[nodiscard]] bool codec_registered(std::string_view name);

/// Static-initializer-friendly registration hook (returns true).
bool register_codec(std::string name, CodecFactory factory);

/// Enum shim for the legacy CodecKind call sites: maps the closed enum onto
/// the registry's 32-bit-word defaults (kNone -> "none", kParity ->
/// "parity-32", kSecded -> "secded-39-32").
[[nodiscard]] std::shared_ptr<const Codec> make_codec(CodecKind kind);

}  // namespace laec::ecc
