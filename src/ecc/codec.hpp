// Abstract codec interface of the error-code subsystem.
//
// Every protection scheme the simulated arrays can deploy — nothing, parity,
// Hsiao SECDED, SEC-DAEC, and whatever a future PR registers — implements
// ecc::Codec. The caches hold a std::shared_ptr<const Codec> and run it on
// every access; nothing downstream switches on an enum any more. Codecs are
// immutable after construction and safe to share across threads (the sweep
// runner hammers one instance from every worker).
//
// To add a scheme in one file: subclass Codec, then register a factory with
// ecc::register_codec("my-code-39-32", ...) (see ecc/registry.hpp).
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>

#include "common/types.hpp"
#include "ecc/code.hpp"
#include "ecc/dec_bch.hpp"
#include "ecc/lut.hpp"
#include "ecc/parity.hpp"
#include "ecc/sec_daec.hpp"
#include "ecc/sec_daec_taec.hpp"
#include "ecc/secded.hpp"

namespace laec::ecc {

class Codec {
 public:
  virtual ~Codec() = default;

  /// Registry key, e.g. "secded-39-32".
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual unsigned data_bits() const = 0;
  [[nodiscard]] virtual unsigned check_bits() const = 0;
  [[nodiscard]] unsigned codeword_bits() const {
    return data_bits() + check_bits();
  }

  /// Check bits for a data word (low check_bits() bits of the result).
  [[nodiscard]] virtual u64 encode(u64 data) const = 0;

  struct Decoded {
    CheckStatus status = CheckStatus::kOk;
    u64 data = 0;   ///< delivered (corrected where possible) data word
    u64 check = 0;  ///< matching check bits for the delivered data
  };

  /// Decode a stored (data, check) pair, repairing what the scheme can.
  [[nodiscard]] virtual Decoded decode(u64 data, u64 check) const = 0;

  // --- line-granular batched API (simulator hot path) ----------------------
  // The cache arrays move whole lines on fills and writebacks; these span
  // entry points let them pay ONE virtual dispatch per line instead of one
  // per 32-bit word. The default implementations loop over encode()/decode()
  // so a drop-in scheme only has to implement the per-word pair; the
  // built-in codecs override them with direct (devirtualized) loops.

  /// Encode `n` consecutive 32-bit words into their check side-array slots.
  virtual void encode_line(const u32* data, u16* check, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) {
      check[i] = static_cast<u16>(encode(data[i]));
    }
  }

  /// Corrected view of `n` stored words: `out[i]` is the decoded data when
  /// the scheme can repair it, the stored word otherwise (the writeback /
  /// eviction read). No status reporting — error accounting happens on the
  /// demand-access path, never on bulk copies.
  virtual void decode_line(const u32* data, const u16* check, u32* out,
                           std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) {
      const Decoded r = decode(data[i], check[i]);
      out[i] = is_corrected(r.status) ? static_cast<u32>(r.data) : data[i];
    }
  }

  /// Devirtualization hook for the per-access clean-word test. The cache
  /// arrays snapshot this plain function pointer once at construction and
  /// call it on every read — a direct call into the final class's encode,
  /// with no vtable dispatch on the clean path. The base fallback keeps
  /// virtual dispatch so external drop-in schemes work unchanged.
  using EncodeFn = u64 (*)(const Codec*, u64);
  [[nodiscard]] virtual EncodeFn encode_thunk() const {
    return +[](const Codec* c, u64 data) { return c->encode(data); };
  }

  /// Dense syndrome->correction table, or nullptr when the scheme has none
  /// (external drop-ins, the none codec). The cache arrays snapshot this
  /// once at construction — when present and enabled
  /// (CacheConfig::use_lut_decode), word decode becomes a table encode plus
  /// one load and two XORs instead of the per-codec matrix walk. decode()
  /// itself always stays the matrix-math reference path so
  /// SimConfig::lut_decode (--no-lut) can force whole runs through it.
  [[nodiscard]] virtual const DecodeLut* decode_lut() const { return nullptr; }

  // --- capability flags (drive cache recovery policy and reporting) -------
  /// Can a single-bit error be corrected in place?
  [[nodiscard]] virtual bool corrects_single() const { return false; }
  /// Is every double-bit error *guaranteed* to be flagged (never silently
  /// accepted, never miscorrected)?
  [[nodiscard]] virtual bool detects_double() const { return false; }
  /// Can an adjacent double-bit error be corrected in place?
  [[nodiscard]] virtual bool corrects_adjacent_double() const { return false; }
  /// Is every ADJACENT double-bit error flagged or repaired? Weaker than
  /// detects_double (interleaved parity has it without full DED); implied
  /// by full double detection or adjacent correction.
  [[nodiscard]] virtual bool detects_adjacent_double() const {
    return detects_double() || corrects_adjacent_double();
  }
  /// Can an adjacent TRIPLE-bit error be corrected in place (SEC-DAEC-TAEC
  /// class codes, arXiv:2002.07507)?
  [[nodiscard]] virtual bool corrects_adjacent_triple() const { return false; }
  /// Can ANY double-bit error — adjacent or not — be corrected in place
  /// (DEC class codes)? Implies corrects_adjacent_double.
  [[nodiscard]] virtual bool corrects_double() const { return false; }
};

/// CRTP mixin: tabulates the final class's linear `encode_word(u64)` into a
/// byte-sliced EncodeLut and its matrix `decode` into a dense syndrome
/// DecodeLut, then serves encode(), the devirtualized per-word thunk, the
/// span encoder/decoder and decode_lut() from the tables — so every entry
/// point is derived from the same two tables and can never disagree. The
/// virtual decode() override each scheme provides stays pure matrix math:
/// it is both the builder input and the --no-lut reference path.
///
/// Each final class must call build_luts() at the END of its constructor
/// body (the dynamic type is already Derived there, so the virtual
/// data_bits/check_bits/decode used by the builders resolve correctly).
/// External drop-ins can still subclass Codec directly and live with the
/// virtual-dispatch defaults.
template <typename Derived>
class CodecWithFastEncode : public Codec {
 public:
  [[nodiscard]] u64 encode(u64 data) const final { return enc_.encode(data); }
  [[nodiscard]] EncodeFn encode_thunk() const final {
    return +[](const Codec* c, u64 data) {
      return static_cast<const CodecWithFastEncode*>(c)->enc_.encode(data);
    };
  }
  void encode_line(const u32* data, u16* check,
                   std::size_t n) const final {
    enc_.encode_line(data, check, n);
  }
  void decode_line(const u32* data, const u16* check, u32* out,
                   std::size_t n) const final {
    dec_.decode_line(data, check, out, n);
  }
  [[nodiscard]] const DecodeLut* decode_lut() const final { return &dec_; }

 protected:
  /// Tabulate the scheme. Call at the end of the Derived constructor body.
  void build_luts() {
    const auto* d = static_cast<const Derived*>(this);
    enc_.build(data_bits(), [d](u64 w) { return d->encode_word(w); });
    dec_.build(enc_, data_bits(), check_bits(), [this](u64 data, u64 check) {
      const Decoded r = this->decode(data, check);
      return LutDecoded{r.status, r.data, r.check};
    });
  }

 private:
  EncodeLut enc_;
  DecodeLut dec_;
};

/// Unprotected array: zero check bits, every word decodes clean.
class NoneCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const override { return "none"; }
  [[nodiscard]] unsigned data_bits() const override { return 32; }
  [[nodiscard]] unsigned check_bits() const override { return 0; }
  [[nodiscard]] u64 encode(u64) const override { return 0; }
  [[nodiscard]] Decoded decode(u64 data, u64) const override {
    return {CheckStatus::kOk, data, 0};
  }
};

/// Single even-parity bit per word (detect-only; LEON WT L1 arrangement).
class ParityCodec final : public CodecWithFastEncode<ParityCodec> {
 public:
  explicit ParityCodec(unsigned data_bits) : code_(data_bits) {
    build_luts();
  }
  [[nodiscard]] std::string_view name() const override { return "parity-32"; }
  [[nodiscard]] unsigned data_bits() const override {
    return code_.data_bits();
  }
  [[nodiscard]] unsigned check_bits() const override { return 1; }
  [[nodiscard]] u64 encode_word(u64 data) const { return code_.encode(data); }
  [[nodiscard]] Decoded decode(u64 data, u64 check) const override;

 private:
  ParityCode code_;
};

/// Hsiao SECDED adapter over the shared per-width SecdedCode instances.
class SecdedCodec final : public CodecWithFastEncode<SecdedCodec> {
 public:
  explicit SecdedCodec(const SecdedCode& code, std::string_view name)
      : code_(code), name_(name) {
    build_luts();
  }
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] unsigned data_bits() const override {
    return code_.data_bits();
  }
  [[nodiscard]] unsigned check_bits() const override {
    return code_.check_bits();
  }
  [[nodiscard]] u64 encode_word(u64 data) const { return code_.encode(data); }
  [[nodiscard]] Decoded decode(u64 data, u64 check) const override;
  [[nodiscard]] bool corrects_single() const override { return true; }
  [[nodiscard]] bool detects_double() const override { return true; }

 private:
  const SecdedCode& code_;
  std::string_view name_;
};

/// SEC-DAEC adapter over the shared per-width SecDaecCode instances.
class SecDaecCodec final : public CodecWithFastEncode<SecDaecCodec> {
 public:
  explicit SecDaecCodec(const SecDaecCode& code, std::string_view name)
      : code_(code), name_(name) {
    build_luts();
  }
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] unsigned data_bits() const override {
    return code_.data_bits();
  }
  [[nodiscard]] unsigned check_bits() const override {
    return code_.check_bits();
  }
  [[nodiscard]] u64 encode_word(u64 data) const { return code_.encode(data); }
  [[nodiscard]] Decoded decode(u64 data, u64 check) const override;
  [[nodiscard]] bool corrects_single() const override { return true; }
  // Non-adjacent doubles may alias onto an adjacent pair (miscorrection) —
  // detection of arbitrary doubles is NOT guaranteed.
  [[nodiscard]] bool corrects_adjacent_double() const override { return true; }

 private:
  const SecDaecCode& code_;
  std::string_view name_;
};

/// SEC-DAEC-TAEC adapter over the shared (45,32) SecDaecTaecCode instance.
/// Triple-adjacent corrections report kCorrectedAdjacent — the adjacent-MBU
/// family the per-cache counters aggregate.
class SecDaecTaecCodec final : public CodecWithFastEncode<SecDaecTaecCodec> {
 public:
  explicit SecDaecTaecCodec(const SecDaecTaecCode& code, std::string_view name)
      : code_(code), name_(name) {
    build_luts();
  }
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] unsigned data_bits() const override {
    return code_.data_bits();
  }
  [[nodiscard]] unsigned check_bits() const override {
    return code_.check_bits();
  }
  [[nodiscard]] u64 encode_word(u64 data) const { return code_.encode(data); }
  [[nodiscard]] Decoded decode(u64 data, u64 check) const override;
  [[nodiscard]] bool corrects_single() const override { return true; }
  // Like SEC-DAEC: a NON-adjacent multi-bit error may alias onto a
  // correctable burst (miscorrection) — arbitrary-double detection is NOT
  // guaranteed, but no error pattern is ever silently accepted.
  [[nodiscard]] bool corrects_adjacent_double() const override { return true; }
  [[nodiscard]] bool corrects_adjacent_triple() const override { return true; }

 private:
  const SecDaecTaecCode& code_;
  std::string_view name_;
};

/// DEC-TED BCH adapter over the shared (45,32) DecBchCode instance. Any
/// double is corrected (adjacent pairs report kCorrectedAdjacent so the
/// adjacent-MBU counters stay comparable across codecs); triples are
/// detected, never miscorrected.
class DecBchCodec final : public CodecWithFastEncode<DecBchCodec> {
 public:
  explicit DecBchCodec(const DecBchCode& code, std::string_view name)
      : code_(code), name_(name) {
    build_luts();
  }
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] unsigned data_bits() const override {
    return code_.data_bits();
  }
  [[nodiscard]] unsigned check_bits() const override {
    return code_.check_bits();
  }
  [[nodiscard]] u64 encode_word(u64 data) const { return code_.encode(data); }
  [[nodiscard]] Decoded decode(u64 data, u64 check) const override;
  [[nodiscard]] bool corrects_single() const override { return true; }
  // d = 6: every double is corrected and every triple is flagged — no
  // multi-bit pattern of weight <= 3 is ever silently accepted or
  // miscorrected.
  [[nodiscard]] bool detects_double() const override { return true; }
  [[nodiscard]] bool corrects_adjacent_double() const override { return true; }
  [[nodiscard]] bool corrects_double() const override { return true; }

 private:
  const DecBchCode& code_;
  std::string_view name_;
};

}  // namespace laec::ecc
