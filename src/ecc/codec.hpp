// Abstract codec interface of the error-code subsystem.
//
// Every protection scheme the simulated arrays can deploy — nothing, parity,
// Hsiao SECDED, SEC-DAEC, and whatever a future PR registers — implements
// ecc::Codec. The caches hold a std::shared_ptr<const Codec> and run it on
// every access; nothing downstream switches on an enum any more. Codecs are
// immutable after construction and safe to share across threads (the sweep
// runner hammers one instance from every worker).
//
// To add a scheme in one file: subclass Codec, then register a factory with
// ecc::register_codec("my-code-39-32", ...) (see ecc/registry.hpp).
#pragma once

#include <memory>
#include <string_view>

#include "common/types.hpp"
#include "ecc/code.hpp"
#include "ecc/parity.hpp"
#include "ecc/sec_daec.hpp"
#include "ecc/secded.hpp"

namespace laec::ecc {

class Codec {
 public:
  virtual ~Codec() = default;

  /// Registry key, e.g. "secded-39-32".
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual unsigned data_bits() const = 0;
  [[nodiscard]] virtual unsigned check_bits() const = 0;
  [[nodiscard]] unsigned codeword_bits() const {
    return data_bits() + check_bits();
  }

  /// Check bits for a data word (low check_bits() bits of the result).
  [[nodiscard]] virtual u64 encode(u64 data) const = 0;

  struct Decoded {
    CheckStatus status = CheckStatus::kOk;
    u64 data = 0;   ///< delivered (corrected where possible) data word
    u64 check = 0;  ///< matching check bits for the delivered data
  };

  /// Decode a stored (data, check) pair, repairing what the scheme can.
  [[nodiscard]] virtual Decoded decode(u64 data, u64 check) const = 0;

  // --- capability flags (drive cache recovery policy and reporting) -------
  /// Can a single-bit error be corrected in place?
  [[nodiscard]] virtual bool corrects_single() const { return false; }
  /// Is every double-bit error *guaranteed* to be flagged (never silently
  /// accepted, never miscorrected)?
  [[nodiscard]] virtual bool detects_double() const { return false; }
  /// Can an adjacent double-bit error be corrected in place?
  [[nodiscard]] virtual bool corrects_adjacent_double() const { return false; }
  /// Is every ADJACENT double-bit error flagged or repaired? Weaker than
  /// detects_double (interleaved parity has it without full DED); implied
  /// by full double detection or adjacent correction.
  [[nodiscard]] virtual bool detects_adjacent_double() const {
    return detects_double() || corrects_adjacent_double();
  }
};

/// Unprotected array: zero check bits, every word decodes clean.
class NoneCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view name() const override { return "none"; }
  [[nodiscard]] unsigned data_bits() const override { return 32; }
  [[nodiscard]] unsigned check_bits() const override { return 0; }
  [[nodiscard]] u64 encode(u64) const override { return 0; }
  [[nodiscard]] Decoded decode(u64 data, u64) const override {
    return {CheckStatus::kOk, data, 0};
  }
};

/// Single even-parity bit per word (detect-only; LEON WT L1 arrangement).
class ParityCodec final : public Codec {
 public:
  explicit ParityCodec(unsigned data_bits) : code_(data_bits) {}
  [[nodiscard]] std::string_view name() const override { return "parity-32"; }
  [[nodiscard]] unsigned data_bits() const override {
    return code_.data_bits();
  }
  [[nodiscard]] unsigned check_bits() const override { return 1; }
  [[nodiscard]] u64 encode(u64 data) const override {
    return code_.encode(data);
  }
  [[nodiscard]] Decoded decode(u64 data, u64 check) const override;

 private:
  ParityCode code_;
};

/// Hsiao SECDED adapter over the shared per-width SecdedCode instances.
class SecdedCodec final : public Codec {
 public:
  explicit SecdedCodec(const SecdedCode& code, std::string_view name)
      : code_(code), name_(name) {}
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] unsigned data_bits() const override {
    return code_.data_bits();
  }
  [[nodiscard]] unsigned check_bits() const override {
    return code_.check_bits();
  }
  [[nodiscard]] u64 encode(u64 data) const override {
    return code_.encode(data);
  }
  [[nodiscard]] Decoded decode(u64 data, u64 check) const override;
  [[nodiscard]] bool corrects_single() const override { return true; }
  [[nodiscard]] bool detects_double() const override { return true; }

 private:
  const SecdedCode& code_;
  std::string_view name_;
};

/// SEC-DAEC adapter over the shared per-width SecDaecCode instances.
class SecDaecCodec final : public Codec {
 public:
  explicit SecDaecCodec(const SecDaecCode& code, std::string_view name)
      : code_(code), name_(name) {}
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] unsigned data_bits() const override {
    return code_.data_bits();
  }
  [[nodiscard]] unsigned check_bits() const override {
    return code_.check_bits();
  }
  [[nodiscard]] u64 encode(u64 data) const override {
    return code_.encode(data);
  }
  [[nodiscard]] Decoded decode(u64 data, u64 check) const override;
  [[nodiscard]] bool corrects_single() const override { return true; }
  // Non-adjacent doubles may alias onto an adjacent pair (miscorrection) —
  // detection of arbitrary doubles is NOT guaranteed.
  [[nodiscard]] bool corrects_adjacent_double() const override { return true; }

 private:
  const SecDaecCode& code_;
  std::string_view name_;
};

}  // namespace laec::ecc
