// Gate-level cost model for parity/SECDED encoder and checker logic.
//
// The paper argues (citing Strukov'06 and Duwe'15) that a SECDED check fits
// comfortably within one DL1 pipeline stage; Table I's processors likewise
// trade ECC latency against frequency. This model makes the argument
// quantitative for *our* codes: each check/syndrome bit is a balanced
// fanin-2 XOR tree over its row of H, so
//
//   depth(row)  = ceil(log2(row_weight))      XOR levels
//   gates(row)  = row_weight - 1              XOR2 gates
//
// plus, for the corrector, an r-input syndrome match (AND/NOR tree) per
// correctable column and one final XOR per data bit.
#pragma once

#include "ecc/sec_daec.hpp"
#include "ecc/secded.hpp"

namespace laec::ecc {

/// Aggregate logic estimate in unit gates / levels-of-logic.
struct GateEstimate {
  unsigned depth_levels = 0;  ///< critical path in 2-input gate levels
  unsigned xor2_gates = 0;
  unsigned and2_gates = 0;
  unsigned total_gates() const { return xor2_gates + and2_gates; }
};

/// Cost of computing the check bits for a write (encoder).
[[nodiscard]] GateEstimate estimate_encoder(const SecdedCode& code);
[[nodiscard]] GateEstimate estimate_encoder(const SecDaecCode& code);

/// Cost of computing the syndrome and correcting one bit (checker+corrector);
/// this is the logic that sits in the load path and motivates the whole
/// paper.
[[nodiscard]] GateEstimate estimate_checker(const SecdedCode& code);

/// SEC-DAEC checker: the single-bit corrector plus one extra syndrome-match
/// term per adjacent codeword pair, OR-folded into each data bit's
/// correction XOR (Dutta-Touba-style decoder).
[[nodiscard]] GateEstimate estimate_checker(const SecDaecCode& code);

/// Cost of a single parity bit over `data_bits` inputs (detector only).
[[nodiscard]] GateEstimate estimate_parity(unsigned data_bits);

/// Convert a gate-level estimate to picoseconds given a per-level delay
/// (FO4-style). Default 35 ps/level is representative of a 65 nm process,
/// the node the paper's CACTI numbers use.
[[nodiscard]] double estimate_delay_ps(const GateEstimate& g,
                                       double ps_per_level = 35.0);

}  // namespace laec::ecc
