// DEC-TED BCH (45, 32): double-error CORRECTION, triple-error detection.
//
// The SEC-DAEC(-TAEC) family bets on upsets being spatially adjacent; a
// double-error-correcting BCH code drops that assumption and repairs ANY
// two flipped bits, adjacent or not — the classic alternative the ECC
// design-space papers (arXiv:2002.07507 and the surveys it cites) weigh
// against adjacent-only codes: stronger random-double coverage for a wider
// and slower checker.
//
// Construction: a two-error-correcting binary BCH code over GF(2^6)
// (primitive polynomial x^6 + x + 1), shortened from n = 63 to 45, plus an
// overall parity row for triple detection:
//
//     H column of codeword position p = [ 1 ; alpha^p ; alpha^(3p) ]
//
// giving r = 1 + 6 + 6 = 13 check bits and minimum distance 6. The matrix
// is row-reduced at construction so the last 13 codeword positions carry
// the identity (systematic form: stored words are (data, check) exactly
// like every other codec here); row operations do not change the code, so
// d = 6 survives and
//   * all 45 single and all C(45,2) = 990 double error patterns have
//     pairwise-distinct syndromes -> corrected via one LUT probe;
//   * every triple pattern misses the correctable set -> detected, never
//     miscorrected (TED).
// Corrected adjacent pairs report CheckStatus::kCorrectedAdjacent (the
// adjacent-MBU family the per-cache counters aggregate); non-adjacent
// doubles report kCorrected. Codeword bit order is [0,32) data, [32,45)
// check, matching the cache arrays' injection layout.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "ecc/code.hpp"

namespace laec::ecc {

class DecBchCode {
 public:
  /// Only the (45, 32) geometry is built for now.
  explicit DecBchCode(unsigned data_bits);

  [[nodiscard]] unsigned data_bits() const { return k_; }
  [[nodiscard]] unsigned check_bits() const { return r_; }
  [[nodiscard]] unsigned codeword_bits() const { return k_ + r_; }

  /// Check bits for a data word (low `check_bits()` bits of the result).
  [[nodiscard]] u64 encode(u64 data) const;

  /// Raw syndrome of a stored (data, check) pair.
  [[nodiscard]] u64 syndrome(u64 data, u64 check) const;

  struct Result {
    CheckStatus status = CheckStatus::kOk;
    u64 data = 0;   ///< corrected data word
    u64 check = 0;  ///< corrected check bits
    /// Corrected codeword positions (ascending); -1 entries unused.
    int corrected_pos[2] = {-1, -1};
    /// Number of corrected bits: 0 (clean/uncorrectable), 1 or 2.
    int corrected_count = 0;
  };

  /// Decode a stored pair: corrects any single flip and any double flip
  /// (adjacent or not); triples — and all heavier odd patterns reachable
  /// by d = 6 — are detected-uncorrectable.
  [[nodiscard]] Result check(u64 data, u64 check) const;

  /// Column of data bit `i` in the systematized H (tests, XOR-tree sizing).
  [[nodiscard]] u64 column(unsigned i) const { return columns_[i]; }

  /// Number of data bits feeding check bit `row` (row weight of H).
  [[nodiscard]] unsigned row_weight(unsigned row) const;

 private:
  void build_matrix();

  unsigned k_ = 0;  // data bits
  unsigned r_ = 0;  // check bits
  std::vector<u64> columns_;    // per data bit: its r-bit column
  std::vector<u64> row_masks_;  // per check bit: mask over data bits
  // syndrome -> action: [0, n) correct that bit; n + pair_index corrects
  // the pair unranked from pair_index (see dec_bch.cpp); -2 detected-
  // uncorrectable. Size 2^r.
  std::vector<i32> syndrome_lut_;
};

/// Shared (45,32) instance (stateless after construction).
[[nodiscard]] const DecBchCode& dec_bch32();

}  // namespace laec::ecc
