#include "ecc/parity.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace laec::ecc {

ParityCode::ParityCode(unsigned data_bits) : data_bits_(data_bits) {
  assert(data_bits >= 1 && data_bits <= 64);
}

u64 ParityCode::encode(u64 data) const {
  return parity64(data & low_mask(data_bits_));
}

ParityCode::Result ParityCode::check(u64 data, u64 parity_bit) const {
  Result r;
  r.data = data & low_mask(data_bits_);
  const u64 expect = encode(data);
  r.status = (expect == (parity_bit & 1))
                 ? CheckStatus::kOk
                 : CheckStatus::kDetectedUncorrectable;
  return r;
}

}  // namespace laec::ecc
