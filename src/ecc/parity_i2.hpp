// Interleaved parity: one even-parity bit per bit-interleave class.
//
// A 2-way interleaved parity code keeps two check bits per 32-bit word —
// parity of the even data bits and parity of the odd data bits. A single
// flip disturbs exactly one class; an ADJACENT double flip (the dominant
// multi-bit upset geometry in scaled SRAM) disturbs both classes, so every
// adjacent pair is detected at a cost of just 2 check bits/word — the cheap
// MBU-aware upgrade of the LEON write-through parity arrangement, and a
// natural L1I deployment (recovery is invalidate-and-refetch either way).
// Non-adjacent even-weight flips within one class remain silent, exactly
// like plain parity.
//
// This file is the registry's "one-file drop-in" template: the class plus
// a CodecRegistry builtin ("parity-i2-32") is all a new scheme needs.
#pragma once

#include "ecc/codec.hpp"

namespace laec::ecc {

class InterleavedParityCodec final
    : public CodecWithFastEncode<InterleavedParityCodec> {
 public:
  /// `ways` interleave classes over `data_bits` bits; check bit w is the
  /// even parity of data bits i with i % ways == w.
  InterleavedParityCodec(unsigned data_bits, unsigned ways,
                         std::string_view name);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] unsigned data_bits() const override { return data_bits_; }
  [[nodiscard]] unsigned check_bits() const override { return ways_; }
  [[nodiscard]] u64 encode_word(u64 data) const;
  [[nodiscard]] Decoded decode(u64 data, u64 check) const override;
  [[nodiscard]] bool detects_adjacent_double() const override { return true; }

 private:
  unsigned data_bits_;
  unsigned ways_;
  std::string_view name_;
};

}  // namespace laec::ecc
