// SEC-DAEC: single-error-correction / double-ADJACENT-error-correction.
//
// Multi-bit upsets in scaled SRAM overwhelmingly strike physically adjacent
// cells, so a code that *corrects* an adjacent pair — rather than merely
// detecting it, as Hsiao SECDED does — removes the dominant uncorrectable
// case at the same check-bit budget (Dutta & Touba '07; Tripathi et al.,
// arXiv:2307.16195 / arXiv:2002.07507). Geometries mirror the SECDED ones
// the DL1/L2 use:
//
//     (39, 32)  k=32, r=7   <- DL1/L2 word granularity in this repo
//     (72, 64)  k=64, r=8
//
// Construction (odd-weight + adjacent-syndrome):
//   * check bit j owns unit column e_j; data bit i gets a distinct
//     odd-weight (>= 3) column c_i, so every single error has an odd-weight
//     syndrome and every double error an even-weight one — singles and
//     doubles can never be confused;
//   * columns are chosen (DFS with greedy row balancing) such that the
//     syndromes of all ADJACENT codeword pairs — c_i^c_{i+1} inside the
//     data, c_{k-1}^e_0 at the data/check seam, e_j^e_{j+1} inside the
//     check bits — are pairwise distinct, making every adjacent double
//     error uniquely correctable.
//
// A NON-adjacent double error also yields an even-weight syndrome; it is
// either flagged detected-uncorrectable or aliases onto an adjacent pair
// and is miscorrected (the decoder cannot tell — the classic SEC-DAEC
// trade-off). It is never silently accepted: no double error has a zero
// syndrome. Codeword bit order is [0,k) data, [k,k+r) check, matching the
// cache arrays' injection layout.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "ecc/code.hpp"

namespace laec::ecc {

class SecDaecCode {
 public:
  /// `data_bits` must be 32 or 64.
  explicit SecDaecCode(unsigned data_bits);

  [[nodiscard]] unsigned data_bits() const { return k_; }
  [[nodiscard]] unsigned check_bits() const { return r_; }
  [[nodiscard]] unsigned codeword_bits() const { return k_ + r_; }

  /// Check bits for a data word (low `check_bits()` bits of the result).
  [[nodiscard]] u64 encode(u64 data) const;

  /// Raw syndrome of a stored (data, check) pair.
  [[nodiscard]] u64 syndrome(u64 data, u64 check) const;

  struct Result {
    CheckStatus status = CheckStatus::kOk;
    u64 data = 0;   ///< corrected data word
    u64 check = 0;  ///< corrected check bits
    /// First corrected bit in codeword space ([0,k) data, [k,k+r) check);
    /// -1 when nothing was corrected.
    int corrected_pos = -1;
    /// Second corrected bit of an adjacent pair (= corrected_pos + 1);
    /// -1 unless status == kCorrectedAdjacent.
    int corrected_pos2 = -1;
  };

  /// Decode a stored pair: corrects any single flip and any adjacent double
  /// flip; other error patterns come back detected-uncorrectable.
  [[nodiscard]] Result check(u64 data, u64 check) const;

  /// Column of data bit `i` in H (for tests and the XOR-tree estimator).
  [[nodiscard]] u64 column(unsigned i) const { return columns_[i]; }

  /// Number of data bits feeding check bit `row` (row weight of H).
  [[nodiscard]] unsigned row_weight(unsigned row) const;

 private:
  void build_matrix();

  unsigned k_ = 0;  // data bits
  unsigned r_ = 0;  // check bits
  std::vector<u64> columns_;    // per data bit: its r-bit column
  std::vector<u64> row_masks_;  // per check bit: mask over data bits
  // syndrome -> action: [0, n) correct that codeword bit; [n, 2n-1) correct
  // the adjacent pair starting at (value - n); -2 detected-uncorrectable.
  std::vector<i32> syndrome_lut_;  // size 2^r
};

/// Shared per-width instances (the codes are stateless after construction).
[[nodiscard]] const SecDaecCode& sec_daec32();
[[nodiscard]] const SecDaecCode& sec_daec64();

}  // namespace laec::ecc
