#include "ecc/secded.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace laec::ecc {

namespace {

constexpr unsigned check_bits_for(unsigned k) {
  switch (k) {
    case 8: return 5;
    case 16: return 6;
    case 32: return 7;
    case 64: return 8;
    default: return 0;
  }
}

}  // namespace

SecdedCode::SecdedCode(unsigned data_bits) : k_(data_bits) {
  r_ = check_bits_for(data_bits);
  assert(r_ != 0 && "data_bits must be 8, 16, 32 or 64");
  build_matrix();
}

void SecdedCode::build_matrix() {
  columns_.reserve(k_);
  // Enumerate odd-weight (>=3) r-bit columns: weight 3 first, then 5, ...
  // Within a weight class we round-robin over rotations of the enumeration
  // order so row weights stay balanced (the Hsiao property that keeps every
  // syndrome XOR tree shallow and equal-depth).
  for (unsigned w = 3; w <= r_ && columns_.size() < k_; w += 2) {
    std::vector<u64> klass;
    for (u64 c = 0; c < (u64{1} << r_); ++c) {
      if (static_cast<unsigned>(popcount64(c)) == w) klass.push_back(c);
    }
    // Greedy balance: repeatedly take the column that keeps row weights
    // most even.
    std::vector<unsigned> row_w(r_, 0);
    std::vector<bool> used(klass.size(), false);
    while (columns_.size() < k_) {
      int best = -1;
      u64 best_score = ~u64{0};
      for (std::size_t i = 0; i < klass.size(); ++i) {
        if (used[i]) continue;
        // Score = resulting max row weight (then total as tiebreak).
        unsigned mx = 0;
        for (unsigned row = 0; row < r_; ++row) {
          const unsigned v = row_w[row] + get_bit(klass[i], row);
          if (v > mx) mx = v;
        }
        const u64 score = (static_cast<u64>(mx) << 32) | klass[i];
        if (score < best_score) {
          best_score = score;
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;  // class exhausted, go to next weight
      used[static_cast<std::size_t>(best)] = true;
      const u64 col = klass[static_cast<std::size_t>(best)];
      for (unsigned row = 0; row < r_; ++row) row_w[row] += get_bit(col, row);
      columns_.push_back(col);
    }
  }
  assert(columns_.size() == k_);

  row_masks_.assign(r_, 0);
  for (unsigned i = 0; i < k_; ++i) {
    for (unsigned row = 0; row < r_; ++row) {
      if (get_bit(columns_[i], row)) {
        row_masks_[row] = set_bit(row_masks_[row], i, 1);
      }
    }
  }

  // Syndrome lookup: -1 = clean is handled separately; here map every
  // nonzero syndrome to a codeword position or -2 (uncorrectable).
  syndrome_lut_.assign(std::size_t{1} << r_, -2);
  for (unsigned i = 0; i < k_; ++i) {
    syndrome_lut_[static_cast<std::size_t>(columns_[i])] = static_cast<i32>(i);
  }
  for (unsigned j = 0; j < r_; ++j) {
    syndrome_lut_[std::size_t{1} << j] = static_cast<i32>(k_ + j);
  }
}

unsigned SecdedCode::row_weight(unsigned row) const {
  assert(row < r_);
  return static_cast<unsigned>(popcount64(row_masks_[row]));
}

u64 SecdedCode::encode(u64 data) const {
  data &= low_mask(k_);
  u64 check = 0;
  for (unsigned row = 0; row < r_; ++row) {
    check = set_bit(check, row, parity64(data & row_masks_[row]));
  }
  return check;
}

u64 SecdedCode::syndrome(u64 data, u64 check) const {
  return encode(data) ^ (check & low_mask(r_));
}

SecdedCode::Result SecdedCode::check(u64 data, u64 check) const {
  Result res;
  res.data = data & low_mask(k_);
  res.check = check & low_mask(r_);
  const u64 s = syndrome(data, check);
  if (s == 0) {
    res.status = CheckStatus::kOk;
    return res;
  }
  const i32 pos = syndrome_lut_[static_cast<std::size_t>(s)];
  if (pos < 0) {
    res.status = CheckStatus::kDetectedUncorrectable;
    return res;
  }
  res.status = CheckStatus::kCorrected;
  res.corrected_pos = pos;
  if (static_cast<unsigned>(pos) < k_) {
    res.data = flip_bit(res.data, static_cast<unsigned>(pos));
  } else {
    res.check = flip_bit(res.check, static_cast<unsigned>(pos) - k_);
  }
  return res;
}

const SecdedCode& secded8() {
  static const SecdedCode c(8);
  return c;
}
const SecdedCode& secded16() {
  static const SecdedCode c(16);
  return c;
}
const SecdedCode& secded32() {
  static const SecdedCode c(32);
  return c;
}
const SecdedCode& secded64() {
  static const SecdedCode c(64);
  return c;
}

}  // namespace laec::ecc
