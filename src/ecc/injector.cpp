#include "ecc/injector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace laec::ecc {

FaultInjector::FaultInjector(const InjectorConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.schedule != nullptr) {
    // Replay mode: the whole storm was already drawn. Pre-seed the event
    // accounting so injected_total()/faults_dropped() report the storm's
    // totals (delivered AND architecturally masked events) exactly as the
    // analytic fold does — campaign rows must not depend on which path ran.
    injected_pattern_ = cfg_.schedule->events;
    dropped_events_ = cfg_.schedule->dropped_events;
  }
}

void FaultInjector::script_flip(u64 word_index, unsigned bit) {
  scripted_.emplace_back(word_index, bit);
}

void FaultInjector::fast_forward(u64 consults) {
  assert(cfg_.schedule != nullptr && "fast_forward is replay-mode only");
  consults_ = consults;
  // The snapshot contract guarantees no delivery below the target ordinal;
  // the scan is defensive (and O(deliveries), which is tiny).
  const auto& d = cfg_.schedule->deliveries;
  next_delivery_ = 0;
  while (next_delivery_ < d.size() && d[next_delivery_].first < consults_) {
    ++next_delivery_;
  }
}

FlipSet FaultInjector::flips_for_access(u64 word_index) {
  FlipSet flips;
  if (cfg_.schedule != nullptr) {
    // Replay mode: deliveries are keyed by consultation ordinal, not word
    // index — the golden run already resolved WHICH word each consultation
    // touches, and the trace is identical across a cell's trials.
    const auto& d = cfg_.schedule->deliveries;
    if (next_delivery_ < d.size() && d[next_delivery_].first == consults_) {
      flips = d[next_delivery_].second;
      ++next_delivery_;
    }
    ++consults_;
    return flips;
  }
  // Scripted flips first (entries matching this word fire together). The
  // inline FlipSet keeps the random modes' worst case in reserve — 2 slots
  // for the Bernoulli draw plus 4 for a clustered pattern event; an
  // (absurdly long) scripted pile-up past that stays queued and fires on
  // the word's NEXT access instead of overflowing.
  const unsigned reserve = 2u + (cfg_.event_prob > 0 ? 4u : 0u);
  for (auto it = scripted_.begin();
       it != scripted_.end() && flips.size() + reserve < FlipSet::kMax;) {
    if (it->first == word_index) {
      flips.push(it->second);
      ++injected_scripted_;
      it = scripted_.erase(it);
    } else {
      ++it;
    }
  }
  if (cfg_.double_flip_prob > 0 && rng_.chance(cfg_.double_flip_prob)) {
    if (cfg_.adjacent_doubles) {
      const unsigned a = static_cast<unsigned>(rng_.below(cfg_.word_bits - 1));
      flips.push(a);
      flips.push(a + 1);
    } else {
      const unsigned a = static_cast<unsigned>(rng_.below(cfg_.word_bits));
      unsigned b = static_cast<unsigned>(rng_.below(cfg_.word_bits - 1));
      if (b >= a) ++b;  // distinct second position
      flips.push(a);
      flips.push(b);
    }
    ++injected_double_;
  } else if (cfg_.single_flip_prob > 0 && rng_.chance(cfg_.single_flip_prob)) {
    flips.push(static_cast<unsigned>(rng_.below(cfg_.word_bits)));
    ++injected_single_;
  }
  if (cfg_.event_prob > 0 && rng_.chance(cfg_.event_prob)) {
    // How many events struck this window? Legacy mode (event_lambda == 0):
    // exactly one, and the RNG stream is untouched. Campaign mode: a
    // zero-truncated Poisson draw, so acceleration high enough to saturate
    // event_prob at 1.0 still distinguishes one-upset windows from pile-ups.
    const unsigned events = cfg_.event_lambda > 0 ? sample_event_count() : 1u;
    for (unsigned e = 0; e < events; ++e) {
      // A clustered event needs up to 4 slots; deliver only while the whole
      // worst case fits, and make the overflow visible instead of letting
      // FlipSet::push drop flips mid-pattern.
      if (flips.size() + 4u <= FlipSet::kMax) {
        push_pattern_event(flips);
      } else {
        ++dropped_events_;
      }
    }
  }
  return flips;
}

unsigned FaultInjector::draw_event_count(Rng& rng, double lambda) {
  // Largest event count one access window can meaningfully attempt: the
  // FlipSet holds kMax flips and the smallest event is a single, so
  // anything past kMax is guaranteed surplus (it still counts as dropped).
  constexpr unsigned kMaxEventsPerAccess = FlipSet::kMax;
  const double lam = lambda;
  // P(K >= 1) and P(K = 1); at extreme acceleration exp(-lam) underflows to
  // 0 and the distribution's mass sits far above the cap — saturate.
  const double denom = -std::expm1(-lam);
  const double p1 = std::exp(-lam) * lam;
  if (!(denom > 0.0) || !(p1 > 0.0)) return kMaxEventsPerAccess;
  // Inverse transform over the zero-truncated pmf p_k / denom.
  double u = rng.uniform() * denom;
  double pk = p1;
  unsigned k = 1;
  while (u > pk && k < kMaxEventsPerAccess) {
    u -= pk;
    ++k;
    pk *= lam / static_cast<double>(k);
  }
  return k;
}

unsigned FaultInjector::sample_event_count() {
  return draw_event_count(rng_, cfg_.event_lambda);
}

bool FaultInjector::draw_pattern_event(Rng& rng, const MbuPatternTable& t,
                                       unsigned word_bits, FlipSet& flips) {
  const double total = t.total();
  if (total <= 0) return false;
  const unsigned n = word_bits;
  double u = rng.uniform() * total;
  if ((u -= t.single) < 0 || n < 3) {
    flips.push(static_cast<unsigned>(rng.below(n)));
    return true;
  }
  if ((u -= t.adjacent_double) < 0) {
    const unsigned a = static_cast<unsigned>(rng.below(n - 1));
    flips.push(a);
    flips.push(a + 1);
    return true;
  }
  if ((u -= t.adjacent_triple) < 0) {
    const unsigned a = static_cast<unsigned>(rng.below(n - 2));
    flips.push(a);
    flips.push(a + 1);
    flips.push(a + 2);
    return true;
  }
  // Clustered: 2-4 distinct flips inside an 8-bit physical window (narrower
  // when the codeword itself is).
  const unsigned window = n < 8 ? n : 8;
  const unsigned start = static_cast<unsigned>(rng.below(n - window + 1));
  unsigned want = 2 + static_cast<unsigned>(rng.below(3));
  if (want > window) want = window;
  unsigned chosen[4];
  unsigned count = 0;
  while (count < want) {
    const unsigned off = static_cast<unsigned>(rng.below(window));
    bool dup = false;
    for (unsigned i = 0; i < count; ++i) dup = dup || chosen[i] == off;
    if (dup) continue;
    chosen[count++] = off;
    flips.push(start + off);
  }
  return true;
}

void FaultInjector::push_pattern_event(FlipSet& flips) {
  if (draw_pattern_event(rng_, cfg_.patterns, cfg_.word_bits, flips)) {
    ++injected_pattern_;
  }
}

}  // namespace laec::ecc
