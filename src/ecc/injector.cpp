#include "ecc/injector.hpp"

#include <algorithm>

namespace laec::ecc {

FaultInjector::FaultInjector(const InjectorConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {}

void FaultInjector::script_flip(u64 word_index, unsigned bit) {
  scripted_.emplace_back(word_index, bit);
}

FlipSet FaultInjector::flips_for_access(u64 word_index) {
  FlipSet flips;
  // Scripted flips first (entries matching this word fire together). The
  // inline FlipSet keeps two slots in reserve for the random draw below;
  // an (absurdly long) scripted pile-up past that stays queued and fires
  // on the word's NEXT access instead of overflowing.
  for (auto it = scripted_.begin();
       it != scripted_.end() && flips.size() + 2 < FlipSet::kMax;) {
    if (it->first == word_index) {
      flips.push(it->second);
      ++injected_scripted_;
      it = scripted_.erase(it);
    } else {
      ++it;
    }
  }
  if (cfg_.double_flip_prob > 0 && rng_.chance(cfg_.double_flip_prob)) {
    if (cfg_.adjacent_doubles) {
      const unsigned a = static_cast<unsigned>(rng_.below(cfg_.word_bits - 1));
      flips.push(a);
      flips.push(a + 1);
    } else {
      const unsigned a = static_cast<unsigned>(rng_.below(cfg_.word_bits));
      unsigned b = static_cast<unsigned>(rng_.below(cfg_.word_bits - 1));
      if (b >= a) ++b;  // distinct second position
      flips.push(a);
      flips.push(b);
    }
    ++injected_double_;
  } else if (cfg_.single_flip_prob > 0 && rng_.chance(cfg_.single_flip_prob)) {
    flips.push(static_cast<unsigned>(rng_.below(cfg_.word_bits)));
    ++injected_single_;
  }
  return flips;
}

}  // namespace laec::ecc
