#include "ecc/injector.hpp"

#include <algorithm>

namespace laec::ecc {

FaultInjector::FaultInjector(const InjectorConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {}

void FaultInjector::script_flip(u64 word_index, unsigned bit) {
  scripted_.emplace_back(word_index, bit);
}

std::vector<unsigned> FaultInjector::flips_for_access(u64 word_index) {
  std::vector<unsigned> flips;
  // Scripted flips first (all entries matching this word fire at once).
  for (auto it = scripted_.begin(); it != scripted_.end();) {
    if (it->first == word_index) {
      flips.push_back(it->second);
      ++injected_scripted_;
      it = scripted_.erase(it);
    } else {
      ++it;
    }
  }
  if (cfg_.double_flip_prob > 0 && rng_.chance(cfg_.double_flip_prob)) {
    if (cfg_.adjacent_doubles) {
      const unsigned a = static_cast<unsigned>(rng_.below(cfg_.word_bits - 1));
      flips.push_back(a);
      flips.push_back(a + 1);
    } else {
      const unsigned a = static_cast<unsigned>(rng_.below(cfg_.word_bits));
      unsigned b = static_cast<unsigned>(rng_.below(cfg_.word_bits - 1));
      if (b >= a) ++b;  // distinct second position
      flips.push_back(a);
      flips.push_back(b);
    }
    ++injected_double_;
  } else if (cfg_.single_flip_prob > 0 && rng_.chance(cfg_.single_flip_prob)) {
    flips.push_back(static_cast<unsigned>(rng_.below(cfg_.word_bits)));
    ++injected_single_;
  }
  return flips;
}

}  // namespace laec::ecc
