#include "ecc/injector.hpp"

#include <algorithm>

namespace laec::ecc {

FaultInjector::FaultInjector(const InjectorConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {}

void FaultInjector::script_flip(u64 word_index, unsigned bit) {
  scripted_.emplace_back(word_index, bit);
}

FlipSet FaultInjector::flips_for_access(u64 word_index) {
  FlipSet flips;
  // Scripted flips first (entries matching this word fire together). The
  // inline FlipSet keeps the random modes' worst case in reserve — 2 slots
  // for the Bernoulli draw plus 4 for a clustered pattern event; an
  // (absurdly long) scripted pile-up past that stays queued and fires on
  // the word's NEXT access instead of overflowing.
  const unsigned reserve = 2u + (cfg_.event_prob > 0 ? 4u : 0u);
  for (auto it = scripted_.begin();
       it != scripted_.end() && flips.size() + reserve < FlipSet::kMax;) {
    if (it->first == word_index) {
      flips.push(it->second);
      ++injected_scripted_;
      it = scripted_.erase(it);
    } else {
      ++it;
    }
  }
  if (cfg_.double_flip_prob > 0 && rng_.chance(cfg_.double_flip_prob)) {
    if (cfg_.adjacent_doubles) {
      const unsigned a = static_cast<unsigned>(rng_.below(cfg_.word_bits - 1));
      flips.push(a);
      flips.push(a + 1);
    } else {
      const unsigned a = static_cast<unsigned>(rng_.below(cfg_.word_bits));
      unsigned b = static_cast<unsigned>(rng_.below(cfg_.word_bits - 1));
      if (b >= a) ++b;  // distinct second position
      flips.push(a);
      flips.push(b);
    }
    ++injected_double_;
  } else if (cfg_.single_flip_prob > 0 && rng_.chance(cfg_.single_flip_prob)) {
    flips.push(static_cast<unsigned>(rng_.below(cfg_.word_bits)));
    ++injected_single_;
  }
  if (cfg_.event_prob > 0 && rng_.chance(cfg_.event_prob)) {
    push_pattern_event(flips);
  }
  return flips;
}

void FaultInjector::push_pattern_event(FlipSet& flips) {
  const MbuPatternTable& t = cfg_.patterns;
  const double total = t.total();
  if (total <= 0) return;
  const unsigned n = cfg_.word_bits;
  double u = rng_.uniform() * total;
  ++injected_pattern_;
  if ((u -= t.single) < 0 || n < 3) {
    flips.push(static_cast<unsigned>(rng_.below(n)));
    return;
  }
  if ((u -= t.adjacent_double) < 0) {
    const unsigned a = static_cast<unsigned>(rng_.below(n - 1));
    flips.push(a);
    flips.push(a + 1);
    return;
  }
  if ((u -= t.adjacent_triple) < 0) {
    const unsigned a = static_cast<unsigned>(rng_.below(n - 2));
    flips.push(a);
    flips.push(a + 1);
    flips.push(a + 2);
    return;
  }
  // Clustered: 2-4 distinct flips inside an 8-bit physical window (narrower
  // when the codeword itself is).
  const unsigned window = n < 8 ? n : 8;
  const unsigned start =
      static_cast<unsigned>(rng_.below(n - window + 1));
  unsigned want = 2 + static_cast<unsigned>(rng_.below(3));
  if (want > window) want = window;
  unsigned chosen[4];
  unsigned count = 0;
  while (count < want) {
    const unsigned off = static_cast<unsigned>(rng_.below(window));
    bool dup = false;
    for (unsigned i = 0; i < count; ++i) dup = dup || chosen[i] == off;
    if (dup) continue;
    chosen[count++] = off;
    flips.push(start + off);
  }
}

}  // namespace laec::ecc
