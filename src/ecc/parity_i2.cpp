#include "ecc/parity_i2.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace laec::ecc {

InterleavedParityCodec::InterleavedParityCodec(unsigned data_bits,
                                               unsigned ways,
                                               std::string_view name)
    : data_bits_(data_bits), ways_(ways), name_(name) {
  assert(data_bits >= 1 && data_bits <= 64);
  assert(ways >= 2 && ways <= 8);
  build_luts();
}

u64 InterleavedParityCodec::encode_word(u64 data) const {
  data &= low_mask(data_bits_);
  u64 check = 0;
  for (unsigned w = 0; w < ways_; ++w) {
    u64 cls = 0;
    for (unsigned i = w; i < data_bits_; i += ways_) {
      cls ^= (data >> i) & 1u;
    }
    check |= cls << w;
  }
  return check;
}

Codec::Decoded InterleavedParityCodec::decode(u64 data, u64 check) const {
  Decoded d;
  d.data = data & low_mask(data_bits_);
  d.check = check & low_mask(ways_);
  const u64 syndrome = encode_word(data) ^ d.check;
  // Parity locates nothing: any nonzero syndrome is detect-only; the data
  // is delivered as stored and recovery is the caller's refetch path.
  d.status = syndrome == 0 ? CheckStatus::kOk
                           : CheckStatus::kDetectedUncorrectable;
  return d;
}

}  // namespace laec::ecc
