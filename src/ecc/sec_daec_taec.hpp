// SEC-DAEC-TAEC: single + double-ADJACENT + triple-ADJACENT error correction.
//
// Scaled SRAM multi-bit upsets cluster on physically neighbouring cells, and
// at aggressive nodes the cluster increasingly spans THREE adjacent bits.
// The SEC-DAEC-TAEC class (the companion construction paper of the fast-
// codec work this repo tracks: arXiv:2002.07507, evaluated on FPGA in
// arXiv:2307.16195) extends the SEC-DAEC idea one step: every single error,
// every adjacent double, and every adjacent triple has its own unique
// syndrome, so all three burst geometries are corrected in place. The cost
// is check-bit budget — this (45, 32) geometry spends r = 13 bits per
// 32-bit word (vs 7 for SEC-DAEC) to make room for the 3(n-2)+... distinct
// correctable patterns.
//
// Construction (odd-weight columns + unique burst syndromes), extending the
// SEC-DAEC DFS in ecc/sec_daec.cpp:
//   * check bit j owns unit column e_j; data bit i gets a distinct
//     odd-weight (>= 3) column c_i — singles are odd-weight syndromes,
//     doubles even, triples odd again, so doubles can never alias singles
//     or triples;
//   * columns are chosen (DFS, deterministic candidate order with greedy
//     row balancing) so that ALL adjacent-pair syndromes (c_i^c_{i+1},
//     the data/check seam, e_j^e_{j+1}) are pairwise distinct, and ALL
//     adjacent-triple syndromes (c_i^c_{i+1}^c_{i+2}, the two seam
//     triples, e_j^e_{j+1}^e_{j+2}) are pairwise distinct AND distinct
//     from every single-bit column.
//
// A non-adjacent double is never silent (even-weight syndrome, never zero);
// it is either flagged or miscorrected onto an adjacent pair — the same
// inherent trade-off SEC-DAEC carries. Triple corrections are reported as
// CheckStatus::kCorrectedAdjacent (the adjacent-MBU family; the cache's
// ecc_corrected_adjacent counter deliberately aggregates the burst
// corrections). Codeword bit order is [0,k) data, [k,k+r) check, matching
// the cache arrays' injection layout.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "ecc/code.hpp"

namespace laec::ecc {

class SecDaecTaecCode {
 public:
  /// Only the (45, 32) geometry is built for now.
  explicit SecDaecTaecCode(unsigned data_bits);

  [[nodiscard]] unsigned data_bits() const { return k_; }
  [[nodiscard]] unsigned check_bits() const { return r_; }
  [[nodiscard]] unsigned codeword_bits() const { return k_ + r_; }

  /// Check bits for a data word (low `check_bits()` bits of the result).
  [[nodiscard]] u64 encode(u64 data) const;

  /// Raw syndrome of a stored (data, check) pair.
  [[nodiscard]] u64 syndrome(u64 data, u64 check) const;

  struct Result {
    CheckStatus status = CheckStatus::kOk;
    u64 data = 0;   ///< corrected data word
    u64 check = 0;  ///< corrected check bits
    /// First corrected bit in codeword space; -1 when nothing corrected.
    int corrected_pos = -1;
    /// Corrected burst length: 0 (clean/uncorrectable), 1, 2 or 3.
    int corrected_len = 0;
  };

  /// Decode a stored pair: corrects any single flip, any adjacent double
  /// and any adjacent triple; other patterns are detected-uncorrectable or
  /// (even-weight aliases) miscorrected as adjacent pairs — never silent.
  [[nodiscard]] Result check(u64 data, u64 check) const;

  /// Column of data bit `i` in H (for tests and the XOR-tree estimator).
  [[nodiscard]] u64 column(unsigned i) const { return columns_[i]; }

  /// Number of data bits feeding check bit `row` (row weight of H).
  [[nodiscard]] unsigned row_weight(unsigned row) const;

 private:
  void build_matrix();

  unsigned k_ = 0;  // data bits
  unsigned r_ = 0;  // check bits
  std::vector<u64> columns_;    // per data bit: its r-bit column
  std::vector<u64> row_masks_;  // per check bit: mask over data bits
  // syndrome -> action: [0, n) correct that bit; [n, 2n) correct the pair
  // starting at (value - n); [2n, 3n) correct the triple starting at
  // (value - 2n); -2 detected-uncorrectable.
  std::vector<i32> syndrome_lut_;  // size 2^r
};

/// Shared (45,32) instance (stateless after construction).
[[nodiscard]] const SecDaecTaecCode& sec_daec_taec32();

}  // namespace laec::ecc
