#include "ecc/registry.hpp"

#include <stdexcept>
#include <utility>

#include "ecc/parity_i2.hpp"

namespace laec::ecc {

CodecRegistry& CodecRegistry::instance() {
  static CodecRegistry reg;
  return reg;
}

CodecRegistry::CodecRegistry() {
  const auto builtin = [this](std::string name, CodecFactory f) {
    entries_.emplace(std::move(name), Entry{std::move(f), nullptr});
  };
  builtin("none", [] { return std::make_shared<const NoneCodec>(); });
  builtin("parity-32",
          [] { return std::make_shared<const ParityCodec>(32); });
  builtin("parity-i2-32", [] {
    return std::make_shared<const InterleavedParityCodec>(32, 2,
                                                          "parity-i2-32");
  });
  builtin("secded-39-32", [] {
    return std::make_shared<const SecdedCodec>(secded32(), "secded-39-32");
  });
  builtin("secded-72-64", [] {
    return std::make_shared<const SecdedCodec>(secded64(), "secded-72-64");
  });
  builtin("sec-daec-39-32", [] {
    return std::make_shared<const SecDaecCodec>(sec_daec32(),
                                                "sec-daec-39-32");
  });
  builtin("sec-daec-72-64", [] {
    return std::make_shared<const SecDaecCodec>(sec_daec64(),
                                                "sec-daec-72-64");
  });
  builtin("sec-daec-taec-45-32", [] {
    return std::make_shared<const SecDaecTaecCodec>(sec_daec_taec32(),
                                                    "sec-daec-taec-45-32");
  });
  builtin("dec-bch-45-32", [] {
    return std::make_shared<const DecBchCodec>(dec_bch32(), "dec-bch-45-32");
  });
  // Legacy spellings (the CodecKind vocabulary) alias the 32-bit defaults.
  builtin("parity", [] { return std::make_shared<const ParityCodec>(32); });
  builtin("secded", [] {
    return std::make_shared<const SecdedCodec>(secded32(), "secded-39-32");
  });
  builtin("sec-daec", [] {
    return std::make_shared<const SecDaecCodec>(sec_daec32(),
                                                "sec-daec-39-32");
  });
}

void CodecRegistry::add(std::string name, CodecFactory factory) {
  if (name.empty()) {
    throw std::invalid_argument("CodecRegistry: empty scheme name");
  }
  if (!factory) {
    throw std::invalid_argument("CodecRegistry: null factory for " + name);
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      entries_.emplace(std::move(name), Entry{std::move(factory), nullptr});
  if (!inserted) {
    throw std::invalid_argument("CodecRegistry: duplicate scheme name \"" +
                                it->first + "\"");
  }
}

std::shared_ptr<const Codec> CodecRegistry::make(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [n, e] : entries_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::out_of_range("unknown ECC scheme \"" + std::string(name) +
                            "\" (known: " + known + ")");
  }
  if (it->second.cached == nullptr) {
    it->second.cached = it->second.factory();
  }
  return it->second.cached;
}

bool CodecRegistry::contains(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> CodecRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [n, e] : entries_) out.push_back(n);
  return out;
}

std::shared_ptr<const Codec> make_codec(std::string_view name) {
  return CodecRegistry::instance().make(name);
}

std::vector<std::string> registered_codecs() {
  return CodecRegistry::instance().names();
}

bool codec_registered(std::string_view name) {
  return CodecRegistry::instance().contains(name);
}

bool register_codec(std::string name, CodecFactory factory) {
  CodecRegistry::instance().add(std::move(name), std::move(factory));
  return true;
}

std::shared_ptr<const Codec> make_codec(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNone: return make_codec("none");
    case CodecKind::kParity: return make_codec("parity-32");
    case CodecKind::kSecded: return make_codec("secded-39-32");
  }
  throw std::invalid_argument("make_codec: invalid CodecKind");
}

}  // namespace laec::ecc
