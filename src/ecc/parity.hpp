// Single even-parity bit per data word.
//
// This is the protection the LEON3/LEON4 family uses in its write-through L1
// caches: errors are *detected* and recovery happens by invalidating the line
// and refetching the clean copy from the ECC-protected L2 (paper §II.A).
#pragma once

#include "common/types.hpp"
#include "ecc/code.hpp"

namespace laec::ecc {

class ParityCode {
 public:
  /// `data_bits` must be in [1, 64].
  explicit ParityCode(unsigned data_bits);

  [[nodiscard]] unsigned data_bits() const { return data_bits_; }
  [[nodiscard]] unsigned check_bits() const { return 1; }

  /// Even-parity bit over the data word.
  [[nodiscard]] u64 encode(u64 data) const;

  struct Result {
    CheckStatus status = CheckStatus::kOk;
    u64 data = 0;  ///< delivered data (parity cannot correct; data as stored)
  };

  /// Check a stored (data, parity) pair. Any odd number of bit flips is
  /// reported as kDetectedUncorrectable; even numbers of flips are silent
  /// (the fundamental parity limitation the paper works around with SECDED).
  [[nodiscard]] Result check(u64 data, u64 parity_bit) const;

 private:
  unsigned data_bits_;
};

}  // namespace laec::ecc
