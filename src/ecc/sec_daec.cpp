#include "ecc/sec_daec.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/bitops.hpp"

namespace laec::ecc {

namespace {

constexpr unsigned check_bits_for(unsigned k) {
  switch (k) {
    case 32: return 7;
    case 64: return 8;
    default: return 0;
  }
}

/// DFS column assignment. Chooses a distinct odd-weight (>=3) column for
/// data bit `i` such that the adjacent-pair syndrome c_{i-1}^c_i (and, for
/// the last data bit, the seam syndrome c_{k-1}^e_0) stays unique among all
/// adjacent-pair syndromes committed so far. Candidates are tried in a
/// deterministic order that prefers balanced row weights, so the result is
/// reproducible and the syndrome XOR trees stay shallow.
struct Builder {
  unsigned k, r;
  std::vector<u64> candidates;        // odd-weight >= 3 columns, fixed order
  std::vector<u64> columns;           // chosen so far
  std::set<u64> used_cols;            // singles must stay distinct
  std::set<u64> used_pairs;           // adjacent-pair syndromes
  std::vector<unsigned> row_weight;   // greedy balance bookkeeping

  bool place(unsigned i) {
    if (i == k) return true;
    // Deterministic preference: smallest resulting max row weight, then
    // smallest column value.
    std::vector<std::size_t> order(candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) order[c] = c;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const auto score = [&](u64 col) {
        unsigned mx = 0;
        for (unsigned row = 0; row < r; ++row) {
          const unsigned v = row_weight[row] + get_bit(col, row);
          if (v > mx) mx = v;
        }
        return mx;
      };
      const unsigned sa = score(candidates[a]);
      const unsigned sb = score(candidates[b]);
      return sa != sb ? sa < sb : candidates[a] < candidates[b];
    });

    for (const std::size_t ci : order) {
      const u64 col = candidates[ci];
      if (used_cols.count(col) != 0) continue;
      u64 pair_prev = 0;
      if (i > 0) {
        pair_prev = columns[i - 1] ^ col;
        if (used_pairs.count(pair_prev) != 0) continue;
      }
      u64 pair_seam = 0;
      if (i == k - 1) {
        pair_seam = col ^ 1u;  // c_{k-1} ^ e_0
        if (pair_seam == pair_prev || used_pairs.count(pair_seam) != 0) {
          continue;
        }
      }
      // Commit.
      columns.push_back(col);
      used_cols.insert(col);
      if (i > 0) used_pairs.insert(pair_prev);
      if (i == k - 1) used_pairs.insert(pair_seam);
      for (unsigned row = 0; row < r; ++row) {
        row_weight[row] += get_bit(col, row);
      }
      if (place(i + 1)) return true;
      // Backtrack.
      for (unsigned row = 0; row < r; ++row) {
        row_weight[row] -= get_bit(col, row);
      }
      if (i == k - 1) used_pairs.erase(pair_seam);
      if (i > 0) used_pairs.erase(pair_prev);
      used_cols.erase(col);
      columns.pop_back();
    }
    return false;
  }
};

}  // namespace

SecDaecCode::SecDaecCode(unsigned data_bits) : k_(data_bits) {
  r_ = check_bits_for(data_bits);
  assert(r_ != 0 && "data_bits must be 32 or 64");
  build_matrix();
}

void SecDaecCode::build_matrix() {
  Builder b;
  b.k = k_;
  b.r = r_;
  b.row_weight.assign(r_, 0);
  for (u64 c = 0; c < (u64{1} << r_); ++c) {
    const unsigned w = static_cast<unsigned>(popcount64(c));
    if (w >= 3 && w % 2 == 1) b.candidates.push_back(c);
  }
  // The check-check adjacent pairs e_j ^ e_{j+1} are fixed by the layout;
  // reserve them before any data column is placed.
  for (unsigned j = 0; j + 1 < r_; ++j) {
    b.used_pairs.insert((u64{1} << j) | (u64{1} << (j + 1)));
  }
  // Check columns are unit vectors; data columns must differ from them
  // (weight >= 3 already guarantees that).
  const bool ok = b.place(0);
  assert(ok && "SEC-DAEC column search failed");
  (void)ok;
  columns_ = std::move(b.columns);

  row_masks_.assign(r_, 0);
  for (unsigned i = 0; i < k_; ++i) {
    for (unsigned row = 0; row < r_; ++row) {
      if (get_bit(columns_[i], row)) {
        row_masks_[row] = set_bit(row_masks_[row], i, 1);
      }
    }
  }

  // Syndrome lookup. Full codeword column c(p): data columns then unit
  // vectors. Singles map to their position; adjacent pairs map to n + first
  // position; everything else is uncorrectable.
  const unsigned n = codeword_bits();
  const auto cw_column = [&](unsigned p) -> u64 {
    return p < k_ ? columns_[p] : (u64{1} << (p - k_));
  };
  syndrome_lut_.assign(std::size_t{1} << r_, -2);
  for (unsigned p = 0; p < n; ++p) {
    syndrome_lut_[static_cast<std::size_t>(cw_column(p))] =
        static_cast<i32>(p);
  }
  for (unsigned p = 0; p + 1 < n; ++p) {
    const u64 s = cw_column(p) ^ cw_column(p + 1);
    assert(syndrome_lut_[static_cast<std::size_t>(s)] == -2 &&
           "adjacent-pair syndrome collision");
    syndrome_lut_[static_cast<std::size_t>(s)] = static_cast<i32>(n + p);
  }
}

unsigned SecDaecCode::row_weight(unsigned row) const {
  assert(row < r_);
  return static_cast<unsigned>(popcount64(row_masks_[row]));
}

u64 SecDaecCode::encode(u64 data) const {
  data &= low_mask(k_);
  u64 check = 0;
  for (unsigned row = 0; row < r_; ++row) {
    check = set_bit(check, row, parity64(data & row_masks_[row]));
  }
  return check;
}

u64 SecDaecCode::syndrome(u64 data, u64 check) const {
  return encode(data) ^ (check & low_mask(r_));
}

SecDaecCode::Result SecDaecCode::check(u64 data, u64 check) const {
  Result res;
  res.data = data & low_mask(k_);
  res.check = check & low_mask(r_);
  const u64 s = syndrome(data, check);
  if (s == 0) {
    res.status = CheckStatus::kOk;
    return res;
  }
  const i32 act = syndrome_lut_[static_cast<std::size_t>(s)];
  if (act < 0) {
    res.status = CheckStatus::kDetectedUncorrectable;
    return res;
  }
  const unsigned n = codeword_bits();
  const auto flip = [&](unsigned p) {
    if (p < k_) {
      res.data = flip_bit(res.data, p);
    } else {
      res.check = flip_bit(res.check, p - k_);
    }
  };
  if (static_cast<unsigned>(act) < n) {
    res.status = CheckStatus::kCorrected;
    res.corrected_pos = act;
    flip(static_cast<unsigned>(act));
  } else {
    const unsigned p = static_cast<unsigned>(act) - n;
    res.status = CheckStatus::kCorrectedAdjacent;
    res.corrected_pos = static_cast<int>(p);
    res.corrected_pos2 = static_cast<int>(p + 1);
    flip(p);
    flip(p + 1);
  }
  return res;
}

const SecDaecCode& sec_daec32() {
  static const SecDaecCode c(32);
  return c;
}
const SecDaecCode& sec_daec64() {
  static const SecDaecCode c(64);
  return c;
}

}  // namespace laec::ecc
