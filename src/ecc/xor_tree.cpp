#include "ecc/xor_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace laec::ecc {

namespace {

unsigned ceil_log2(unsigned n) {
  unsigned d = 0;
  unsigned v = 1;
  while (v < n) {
    v <<= 1;
    ++d;
  }
  return d;
}

}  // namespace

GateEstimate estimate_encoder(const SecdedCode& code) {
  GateEstimate g;
  for (unsigned row = 0; row < code.check_bits(); ++row) {
    const unsigned w = code.row_weight(row);
    assert(w >= 1);
    g.xor2_gates += w - 1;
    g.depth_levels = std::max(g.depth_levels, ceil_log2(w));
  }
  return g;
}

GateEstimate estimate_checker(const SecdedCode& code) {
  GateEstimate g;
  // Syndrome trees: each row XORs its data bits plus its own check bit.
  for (unsigned row = 0; row < code.check_bits(); ++row) {
    const unsigned w = code.row_weight(row) + 1;
    g.xor2_gates += w - 1;
    g.depth_levels = std::max(g.depth_levels, ceil_log2(w));
  }
  // Column match: one r-input AND (with selective inversion) per data bit.
  const unsigned r = code.check_bits();
  g.and2_gates += code.data_bits() * (r - 1);
  // Correction: one XOR2 per data bit, in parallel.
  g.xor2_gates += code.data_bits();
  g.depth_levels += ceil_log2(r) + 1;
  return g;
}

GateEstimate estimate_parity(unsigned data_bits) {
  GateEstimate g;
  assert(data_bits >= 1);
  g.xor2_gates = data_bits;  // data_bits-1 for the tree + 1 compare
  g.depth_levels = ceil_log2(data_bits) + 1;
  return g;
}

double estimate_delay_ps(const GateEstimate& g, double ps_per_level) {
  return static_cast<double>(g.depth_levels) * ps_per_level;
}

}  // namespace laec::ecc
