#include "ecc/xor_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace laec::ecc {

namespace {

unsigned ceil_log2(unsigned n) {
  unsigned d = 0;
  unsigned v = 1;
  while (v < n) {
    v <<= 1;
    ++d;
  }
  return d;
}

/// Encoder logic shared by every H-matrix code: one balanced XOR tree per
/// check bit over its row of H.
GateEstimate encoder_from_rows(unsigned check_bits,
                               const unsigned* row_weights) {
  GateEstimate g;
  for (unsigned row = 0; row < check_bits; ++row) {
    const unsigned w = row_weights[row];
    assert(w >= 1);
    g.xor2_gates += w - 1;
    g.depth_levels = std::max(g.depth_levels, ceil_log2(w));
  }
  return g;
}

/// Single-bit corrector shared by SECDED and SEC-DAEC: syndrome trees, one
/// r-input column match per data bit, one correction XOR per data bit.
GateEstimate checker_from_rows(unsigned data_bits, unsigned check_bits,
                               const unsigned* row_weights) {
  GateEstimate g;
  // Syndrome trees: each row XORs its data bits plus its own check bit.
  for (unsigned row = 0; row < check_bits; ++row) {
    const unsigned w = row_weights[row] + 1;
    g.xor2_gates += w - 1;
    g.depth_levels = std::max(g.depth_levels, ceil_log2(w));
  }
  // Column match: one r-input AND (with selective inversion) per data bit.
  g.and2_gates += data_bits * (check_bits - 1);
  // Correction: one XOR2 per data bit, in parallel.
  g.xor2_gates += data_bits;
  g.depth_levels += ceil_log2(check_bits) + 1;
  return g;
}

template <typename Code>
std::vector<unsigned> row_weights_of(const Code& code) {
  std::vector<unsigned> w(code.check_bits());
  for (unsigned row = 0; row < code.check_bits(); ++row) {
    w[row] = code.row_weight(row);
  }
  return w;
}

}  // namespace

GateEstimate estimate_encoder(const SecdedCode& code) {
  return encoder_from_rows(code.check_bits(), row_weights_of(code).data());
}

GateEstimate estimate_encoder(const SecDaecCode& code) {
  return encoder_from_rows(code.check_bits(), row_weights_of(code).data());
}

GateEstimate estimate_checker(const SecdedCode& code) {
  return checker_from_rows(code.data_bits(), code.check_bits(),
                           row_weights_of(code).data());
}

GateEstimate estimate_checker(const SecDaecCode& code) {
  GateEstimate g = checker_from_rows(code.data_bits(), code.check_bits(),
                                     row_weights_of(code).data());
  // Adjacent-pair matches: one extra r-input AND per codeword pair, OR-ed
  // (one extra gate level) into the per-data-bit correction select.
  const unsigned pairs = code.codeword_bits() - 1;
  g.and2_gates += pairs * (code.check_bits() - 1) + code.data_bits();
  g.depth_levels += 1;
  return g;
}

GateEstimate estimate_parity(unsigned data_bits) {
  GateEstimate g;
  assert(data_bits >= 1);
  g.xor2_gates = data_bits;  // data_bits-1 for the tree + 1 compare
  g.depth_levels = ceil_log2(data_bits) + 1;
  return g;
}

double estimate_delay_ps(const GateEstimate& g, double ps_per_level) {
  return static_cast<double>(g.depth_levels) * ps_per_level;
}

}  // namespace laec::ecc
