// Hsiao single-error-correction / double-error-detection (SECDED) code.
//
// The classic odd-weight-column code from Hsiao (1970), the scheme the paper
// deploys in the write-back DL1 and the shared L2 (paper §I, §III). For k
// data bits we use r check bits with the standard geometries:
//
//     (13, 8)   k=8,  r=5
//     (22, 16)  k=16, r=6
//     (39, 32)  k=32, r=7   <- DL1/L2 word granularity used in this repo
//     (72, 64)  k=64, r=8
//
// The parity-check matrix H assigns each data bit a distinct odd-weight
// (>= 3) column and each check bit a unit column. Decoding computes the
// syndrome s = H * codeword:
//
//   s == 0                  -> clean
//   s matches a data column -> that data bit flipped; correct it
//   s is a unit vector      -> a check bit flipped; data is intact
//   anything else           -> >= 2 errors; detected-uncorrectable
//
// Odd-weight columns give the SECDED guarantee: any double error produces an
// even-weight (hence unmatched) syndrome.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "ecc/code.hpp"

namespace laec::ecc {

class SecdedCode {
 public:
  /// `data_bits` must be one of 8, 16, 32, 64.
  explicit SecdedCode(unsigned data_bits);

  [[nodiscard]] unsigned data_bits() const { return k_; }
  [[nodiscard]] unsigned check_bits() const { return r_; }
  [[nodiscard]] unsigned codeword_bits() const { return k_ + r_; }

  /// Check bits for a data word (low `check_bits()` bits of the result).
  [[nodiscard]] u64 encode(u64 data) const;

  /// Raw syndrome of a stored (data, check) pair.
  [[nodiscard]] u64 syndrome(u64 data, u64 check) const;

  struct Result {
    CheckStatus status = CheckStatus::kOk;
    u64 data = 0;           ///< corrected data word
    u64 check = 0;          ///< corrected check bits
    /// Position of the corrected bit in codeword space: [0, k) = data bit,
    /// [k, k+r) = check bit, -1 when nothing was corrected.
    int corrected_pos = -1;
  };

  /// Decode a stored pair, correcting a single-bit error when possible.
  [[nodiscard]] Result check(u64 data, u64 check) const;

  /// Column of data bit `i` in H (for tests and the XOR-tree estimator).
  [[nodiscard]] u64 column(unsigned i) const { return columns_[i]; }

  /// Number of data bits feeding check bit `row` (row weight of H).
  [[nodiscard]] unsigned row_weight(unsigned row) const;

 private:
  void build_matrix();

  unsigned k_ = 0;  // data bits
  unsigned r_ = 0;  // check bits
  std::vector<u64> columns_;      // per data bit: its r-bit column
  std::vector<u64> row_masks_;    // per check bit: mask over data bits
  std::vector<i32> syndrome_lut_; // syndrome -> corrected codeword pos / -1 /
                                  // -2 (uncorrectable); size 2^r
};

/// Shared per-width instances (the codes are stateless after construction).
[[nodiscard]] const SecdedCode& secded8();
[[nodiscard]] const SecdedCode& secded16();
[[nodiscard]] const SecdedCode& secded32();
[[nodiscard]] const SecdedCode& secded64();

}  // namespace laec::ecc
