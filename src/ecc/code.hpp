// Common vocabulary for the error-code subsystem.
//
// The simulated caches store real check bits next to every protected word and
// run the real codec on every access, so injected faults propagate (or are
// corrected) exactly as they would in hardware.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace laec::ecc {

/// Which protection scheme a memory array uses.
enum class CodecKind {
  kNone,    ///< unprotected array
  kParity,  ///< 1 parity bit per word: single-error detection only
  kSecded,  ///< Hsiao SECDED: single-error correction, double-error detection
};

[[nodiscard]] constexpr std::string_view to_string(CodecKind k) {
  switch (k) {
    case CodecKind::kNone: return "none";
    case CodecKind::kParity: return "parity";
    case CodecKind::kSecded: return "secded";
  }
  return "?";
}

/// Outcome of checking one protected word.
enum class CheckStatus {
  kOk,                     ///< syndrome clean, data delivered as stored
  kCorrected,              ///< single-bit error corrected on the fly
  kDetectedUncorrectable,  ///< error detected but not correctable
};

[[nodiscard]] constexpr std::string_view to_string(CheckStatus s) {
  switch (s) {
    case CheckStatus::kOk: return "ok";
    case CheckStatus::kCorrected: return "corrected";
    case CheckStatus::kDetectedUncorrectable: return "detected-uncorrectable";
  }
  return "?";
}

}  // namespace laec::ecc
