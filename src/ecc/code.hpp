// Common vocabulary for the error-code subsystem.
//
// The simulated caches store real check bits next to every protected word and
// run the real codec on every access, so injected faults propagate (or are
// corrected) exactly as they would in hardware.
#pragma once

#include <optional>
#include <string_view>

#include "common/types.hpp"

namespace laec::ecc {

/// Which protection scheme a memory array uses. Legacy closed enumeration:
/// new code should name codecs through the string-keyed registry
/// (ecc/registry.hpp) — this enum survives as a shim for the three schemes
/// the original reproduction hardwired.
enum class CodecKind {
  kNone,    ///< unprotected array
  kParity,  ///< 1 parity bit per word: single-error detection only
  kSecded,  ///< Hsiao SECDED: single-error correction, double-error detection
};

[[nodiscard]] constexpr std::string_view to_string(CodecKind k) {
  switch (k) {
    case CodecKind::kNone: return "none";
    case CodecKind::kParity: return "parity";
    case CodecKind::kSecded: return "secded";
  }
  // Every enumerator is handled above; reaching here is a caller bug.
  return "invalid-codec-kind";
}

/// Inverse of to_string(CodecKind); nullopt for unknown spellings.
[[nodiscard]] constexpr std::optional<CodecKind> codec_kind_from_string(
    std::string_view s) {
  if (s == "none") return CodecKind::kNone;
  if (s == "parity") return CodecKind::kParity;
  if (s == "secded") return CodecKind::kSecded;
  return std::nullopt;
}

/// Outcome of checking one protected word.
enum class CheckStatus {
  kOk,                     ///< syndrome clean, data delivered as stored
  kCorrected,              ///< single-bit error corrected on the fly
  kCorrectedAdjacent,      ///< adjacent double error corrected (SEC-DAEC)
  kDetectedUncorrectable,  ///< error detected but not correctable
};

[[nodiscard]] constexpr std::string_view to_string(CheckStatus s) {
  switch (s) {
    case CheckStatus::kOk: return "ok";
    case CheckStatus::kCorrected: return "corrected";
    case CheckStatus::kCorrectedAdjacent: return "corrected-adjacent";
    case CheckStatus::kDetectedUncorrectable: return "detected-uncorrectable";
  }
  return "invalid-check-status";
}

/// Inverse of to_string(CheckStatus); nullopt for unknown spellings.
[[nodiscard]] constexpr std::optional<CheckStatus> check_status_from_string(
    std::string_view s) {
  if (s == "ok") return CheckStatus::kOk;
  if (s == "corrected") return CheckStatus::kCorrected;
  if (s == "corrected-adjacent") return CheckStatus::kCorrectedAdjacent;
  if (s == "detected-uncorrectable") {
    return CheckStatus::kDetectedUncorrectable;
  }
  return std::nullopt;
}

/// Did the decoder deliver usable data (clean or repaired)?
[[nodiscard]] constexpr bool is_corrected(CheckStatus s) {
  return s == CheckStatus::kCorrected || s == CheckStatus::kCorrectedAdjacent;
}

}  // namespace laec::ecc
