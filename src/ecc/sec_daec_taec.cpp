#include "ecc/sec_daec_taec.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/bitops.hpp"

namespace laec::ecc {

namespace {

constexpr unsigned check_bits_for(unsigned k) {
  switch (k) {
    case 32: return 13;
    default: return 0;
  }
}

/// DFS column assignment, extending the SEC-DAEC builder with the triple
/// constraints. Placing data bit `i` must keep
///   * all single columns distinct (and odd-weight >= 3, so they can never
///     collide with the unit check columns);
///   * all adjacent-PAIR syndromes distinct among themselves;
///   * all adjacent-TRIPLE syndromes distinct among themselves AND from
///     every single column (both odd-weight classes).
/// Pairs are even-weight, so they can never collide with singles/triples.
/// The check-side pairs/triples (e_j patterns) and the data/check seam
/// patterns are fixed by the layout and reserved up front / at the end.
struct Builder {
  unsigned k, r;
  std::vector<u64> candidates;       // odd-weight >= 3 columns, fixed order
  std::vector<u64> columns;          // chosen so far
  std::set<u64> used_singles;        // unit columns + data columns
  std::set<u64> used_pairs;          // adjacent-pair syndromes
  std::set<u64> used_triples;        // adjacent-triple syndromes
  std::vector<unsigned> row_weight;  // greedy balance bookkeeping

  [[nodiscard]] bool triple_ok(u64 t) const {
    return used_triples.count(t) == 0 && used_singles.count(t) == 0;
  }

  bool place(unsigned i) {
    if (i == k) return true;
    // Deterministic preference: smallest resulting max row weight, then
    // smallest column value.
    std::vector<std::size_t> order(candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) order[c] = c;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const auto score = [&](u64 col) {
        unsigned mx = 0;
        for (unsigned row = 0; row < r; ++row) {
          const unsigned v = row_weight[row] + get_bit(col, row);
          if (v > mx) mx = v;
        }
        return mx;
      };
      const unsigned sa = score(candidates[a]);
      const unsigned sb = score(candidates[b]);
      return sa != sb ? sa < sb : candidates[a] < candidates[b];
    });

    for (const std::size_t ci : order) {
      const u64 col = candidates[ci];
      // A new single column must not collide with any earlier single OR
      // any committed triple syndrome (both are odd-weight classes).
      if (used_singles.count(col) != 0 || used_triples.count(col) != 0) {
        continue;
      }

      // Patterns this placement commits. Seam patterns (involving e_0/e_1)
      // only exist for the last data columns.
      u64 pair_prev = 0, triple_prev = 0, pair_seam = 0;
      u64 triple_seam1 = 0, triple_seam2 = 0;
      bool ok = true;

      if (i > 0) {
        pair_prev = columns[i - 1] ^ col;
        ok = used_pairs.count(pair_prev) == 0;
      }
      if (ok && i > 1) {
        triple_prev = columns[i - 2] ^ columns[i - 1] ^ col;
        ok = triple_ok(triple_prev) && triple_prev != col;
      }
      if (ok && i == k - 1) {
        pair_seam = col ^ 1u;  // c_{k-1} ^ e_0
        ok = pair_seam != pair_prev && used_pairs.count(pair_seam) == 0;
        if (ok) {
          triple_seam1 = columns[i - 1] ^ col ^ 1u;  // c_{k-2} c_{k-1} e_0
          triple_seam2 = col ^ 1u ^ 2u;              // c_{k-1} e_0 e_1
          ok = triple_ok(triple_seam1) && triple_ok(triple_seam2) &&
               triple_seam1 != triple_prev && triple_seam2 != triple_prev &&
               triple_seam1 != triple_seam2 && triple_seam1 != col &&
               triple_seam2 != col;
        }
      }
      if (!ok) continue;

      // Commit.
      columns.push_back(col);
      used_singles.insert(col);
      if (i > 0) used_pairs.insert(pair_prev);
      if (i > 1) used_triples.insert(triple_prev);
      if (i == k - 1) {
        used_pairs.insert(pair_seam);
        used_triples.insert(triple_seam1);
        used_triples.insert(triple_seam2);
      }
      for (unsigned row = 0; row < r; ++row) {
        row_weight[row] += get_bit(col, row);
      }
      if (place(i + 1)) return true;
      // Backtrack.
      for (unsigned row = 0; row < r; ++row) {
        row_weight[row] -= get_bit(col, row);
      }
      if (i == k - 1) {
        used_triples.erase(triple_seam2);
        used_triples.erase(triple_seam1);
        used_pairs.erase(pair_seam);
      }
      if (i > 1) used_triples.erase(triple_prev);
      if (i > 0) used_pairs.erase(pair_prev);
      used_singles.erase(col);
      columns.pop_back();
    }
    return false;
  }
};

}  // namespace

SecDaecTaecCode::SecDaecTaecCode(unsigned data_bits) : k_(data_bits) {
  r_ = check_bits_for(data_bits);
  assert(r_ != 0 && "data_bits must be 32");
  build_matrix();
}

void SecDaecTaecCode::build_matrix() {
  Builder b;
  b.k = k_;
  b.r = r_;
  b.row_weight.assign(r_, 0);
  // Keep the candidate pool tight (weights 3 and 5 of 13 bits) — more than
  // enough degrees of freedom for 32 columns, and shallow XOR trees.
  for (u64 c = 0; c < (u64{1} << r_); ++c) {
    const unsigned w = static_cast<unsigned>(popcount64(c));
    if (w == 3 || w == 5) b.candidates.push_back(c);
  }
  // Unit (check) columns are singles too; triples must avoid them.
  for (unsigned j = 0; j < r_; ++j) b.used_singles.insert(u64{1} << j);
  // Check-side adjacent pairs and triples are fixed by the layout; reserve
  // them before any data column is placed.
  for (unsigned j = 0; j + 1 < r_; ++j) {
    b.used_pairs.insert((u64{1} << j) | (u64{1} << (j + 1)));
  }
  for (unsigned j = 0; j + 2 < r_; ++j) {
    b.used_triples.insert((u64{1} << j) | (u64{1} << (j + 1)) |
                          (u64{1} << (j + 2)));
  }
  const bool ok = b.place(0);
  assert(ok && "SEC-DAEC-TAEC column search failed");
  (void)ok;
  columns_ = std::move(b.columns);

  row_masks_.assign(r_, 0);
  for (unsigned i = 0; i < k_; ++i) {
    for (unsigned row = 0; row < r_; ++row) {
      if (get_bit(columns_[i], row)) {
        row_masks_[row] = set_bit(row_masks_[row], i, 1);
      }
    }
  }

  // Syndrome lookup. Full codeword column c(p): data columns then unit
  // vectors. Singles map to their position; adjacent pairs to n + first
  // position; adjacent triples to 2n + first position.
  const unsigned n = codeword_bits();
  const auto cw_column = [&](unsigned p) -> u64 {
    return p < k_ ? columns_[p] : (u64{1} << (p - k_));
  };
  syndrome_lut_.assign(std::size_t{1} << r_, -2);
  for (unsigned p = 0; p < n; ++p) {
    syndrome_lut_[static_cast<std::size_t>(cw_column(p))] =
        static_cast<i32>(p);
  }
  for (unsigned p = 0; p + 1 < n; ++p) {
    const u64 s = cw_column(p) ^ cw_column(p + 1);
    assert(syndrome_lut_[static_cast<std::size_t>(s)] == -2 &&
           "adjacent-pair syndrome collision");
    syndrome_lut_[static_cast<std::size_t>(s)] = static_cast<i32>(n + p);
  }
  for (unsigned p = 0; p + 2 < n; ++p) {
    const u64 s = cw_column(p) ^ cw_column(p + 1) ^ cw_column(p + 2);
    assert(syndrome_lut_[static_cast<std::size_t>(s)] == -2 &&
           "adjacent-triple syndrome collision");
    syndrome_lut_[static_cast<std::size_t>(s)] =
        static_cast<i32>(2 * n + p);
  }
}

unsigned SecDaecTaecCode::row_weight(unsigned row) const {
  assert(row < r_);
  return static_cast<unsigned>(popcount64(row_masks_[row]));
}

u64 SecDaecTaecCode::encode(u64 data) const {
  data &= low_mask(k_);
  u64 check = 0;
  for (unsigned row = 0; row < r_; ++row) {
    check = set_bit(check, row, parity64(data & row_masks_[row]));
  }
  return check;
}

u64 SecDaecTaecCode::syndrome(u64 data, u64 check) const {
  return encode(data) ^ (check & low_mask(r_));
}

SecDaecTaecCode::Result SecDaecTaecCode::check(u64 data, u64 check) const {
  Result res;
  res.data = data & low_mask(k_);
  res.check = check & low_mask(r_);
  const u64 s = syndrome(data, check);
  if (s == 0) {
    res.status = CheckStatus::kOk;
    return res;
  }
  const i32 act = syndrome_lut_[static_cast<std::size_t>(s)];
  if (act < 0) {
    res.status = CheckStatus::kDetectedUncorrectable;
    return res;
  }
  const unsigned n = codeword_bits();
  const auto flip = [&](unsigned p) {
    if (p < k_) {
      res.data = flip_bit(res.data, p);
    } else {
      res.check = flip_bit(res.check, p - k_);
    }
  };
  const unsigned a = static_cast<unsigned>(act);
  const unsigned first = a % n;
  const unsigned len = a / n + 1;  // 1 = single, 2 = pair, 3 = triple
  res.corrected_pos = static_cast<int>(first);
  res.corrected_len = static_cast<int>(len);
  for (unsigned p = first; p < first + len; ++p) flip(p);
  res.status =
      len == 1 ? CheckStatus::kCorrected : CheckStatus::kCorrectedAdjacent;
  return res;
}

const SecDaecTaecCode& sec_daec_taec32() {
  static const SecDaecTaecCode c(32);
  return c;
}

}  // namespace laec::ecc
