#include "ecc/lut.hpp"

namespace laec::ecc {

void DecodeLut::decode_line(const u32* data, const u16* check, u32* out,
                            std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    const u64 s = (enc_.encode32(data[i]) ^ check[i]) & cmask_;
    const Entry& e = entries_[s];
    out[i] = is_corrected(e.status)
                 ? data[i] ^ static_cast<u32>(e.data_xor)
                 : data[i];
  }
}

}  // namespace laec::ecc
