#include "ecc/codec.hpp"

namespace laec::ecc {

Codec::Decoded ParityCodec::decode(u64 data, u64 check) const {
  const auto r = code_.check(data, check);
  return {r.status, r.data, code_.encode(r.data)};
}

Codec::Decoded SecdedCodec::decode(u64 data, u64 check) const {
  const auto r = code_.check(data, check);
  return {r.status, r.data, r.check};
}

Codec::Decoded SecDaecCodec::decode(u64 data, u64 check) const {
  const auto r = code_.check(data, check);
  return {r.status, r.data, r.check};
}

Codec::Decoded SecDaecTaecCodec::decode(u64 data, u64 check) const {
  const auto r = code_.check(data, check);
  return {r.status, r.data, r.check};
}

Codec::Decoded DecBchCodec::decode(u64 data, u64 check) const {
  const auto r = code_.check(data, check);
  return {r.status, r.data, r.check};
}

}  // namespace laec::ecc
