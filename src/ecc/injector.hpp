// Soft-error (bit flip) injection for the simulated memory arrays.
//
// Two modes compose:
//  * scripted faults — exact (word index, bit position) pairs queued by tests
//    and examples; injected on the next matching access;
//  * random faults — Bernoulli per-word-access flip probabilities for single
//    and double upsets, driven by the deterministic library RNG.
//
// MBUs beyond 2 bits are out of scope, mirroring the paper's fault model
// ("we do not consider MBUs", §V).
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace laec::ecc {

struct InjectorConfig {
  /// Probability that an accessed stored word has suffered exactly one bit
  /// flip since it was written.
  double single_flip_prob = 0.0;
  /// Probability of exactly two flips (SECDED's detected-uncorrectable case).
  double double_flip_prob = 0.0;
  /// Make every double upset strike an ADJACENT bit pair — the dominant
  /// real-world MBU geometry, and the case SEC-DAEC corrects while SECDED
  /// only detects. When false, double-flip positions are independent.
  bool adjacent_doubles = false;
  /// Bits eligible for flipping: data bits plus check bits of one word.
  unsigned word_bits = 39;  // (39,32) SECDED codeword by default
  u64 seed = 0x5eed;
};

class FaultInjector {
 public:
  FaultInjector() : FaultInjector(InjectorConfig{}) {}
  explicit FaultInjector(const InjectorConfig& cfg);

  /// Queue a deterministic flip: the next access to word `word_index` flips
  /// codeword bit `bit`. Multiple entries for the same word accumulate.
  void script_flip(u64 word_index, unsigned bit);

  /// Sample the flips to apply to an access of `word_index`. Returns bit
  /// positions within the codeword ([0, word_bits)).
  [[nodiscard]] std::vector<unsigned> flips_for_access(u64 word_index);

  [[nodiscard]] bool enabled() const {
    return cfg_.single_flip_prob > 0 || cfg_.double_flip_prob > 0 ||
           !scripted_.empty();
  }

  [[nodiscard]] u64 injected_single() const { return injected_single_; }
  [[nodiscard]] u64 injected_double() const { return injected_double_; }
  [[nodiscard]] u64 injected_scripted() const { return injected_scripted_; }

 private:
  InjectorConfig cfg_;
  Rng rng_;
  std::deque<std::pair<u64, unsigned>> scripted_;
  u64 injected_single_ = 0;
  u64 injected_double_ = 0;
  u64 injected_scripted_ = 0;
};

}  // namespace laec::ecc
