// Soft-error (bit flip) injection for the simulated memory arrays.
//
// Three modes compose:
//  * scripted faults — exact (word index, bit position) pairs queued by tests
//    and examples; injected on the next matching access;
//  * random faults — Bernoulli per-word-access flip probabilities for single
//    and double upsets, driven by the deterministic library RNG (the paper's
//    fault model: "we do not consider MBUs", §V);
//  * pattern-table events — the reliability campaign mode: each access
//    suffers an upset EVENT with probability event_prob, and the event's
//    spatial shape (single / adjacent-double / adjacent-triple / clustered)
//    is drawn from a configurable MBU pattern-probability table, matching
//    the scaled-node multi-cell-upset geometries the SEC-DAEC(-TAEC)
//    literature evaluates against.
#pragma once

#include <cassert>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace laec::ecc {

/// Flip positions sampled for one word access. A fixed-capacity inline
/// array: the hot injection path (every read of every protected word under
/// a fault storm) allocates nothing. Random storms produce at most 2 flips
/// per access and a pattern-table event at most 4 (the largest clustered
/// MBU); scripted campaigns fill whatever capacity the enabled random
/// modes do not reserve, with any surplus left queued for the word's next
/// access (see FaultInjector::flips_for_access), so the capacity can never
/// overflow.
class FlipSet {
 public:
  static constexpr unsigned kMax = 8;

  void push(unsigned bit) {
    assert(count_ < kMax && "FlipSet overflow");
    if (count_ >= kMax) return;  // release builds: drop rather than corrupt
    bits_[count_++] = bit;
  }

  [[nodiscard]] bool full() const { return count_ >= kMax; }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] unsigned size() const { return count_; }
  [[nodiscard]] unsigned operator[](unsigned i) const {
    assert(i < count_);
    return bits_[i];
  }
  [[nodiscard]] const unsigned* begin() const { return bits_; }
  [[nodiscard]] const unsigned* end() const { return bits_ + count_; }

  [[nodiscard]] bool operator==(const FlipSet& o) const {
    if (count_ != o.count_) return false;
    for (unsigned i = 0; i < count_; ++i) {
      if (bits_[i] != o.bits_[i]) return false;
    }
    return true;
  }

 private:
  unsigned bits_[kMax] = {};
  unsigned count_ = 0;
};

/// Relative probabilities of the spatial shape of one upset event
/// (campaign mode). Weights need not sum to 1; they are normalized by
/// total(). The default table is SEU-only.
struct MbuPatternTable {
  double single = 1.0;
  double adjacent_double = 0.0;
  double adjacent_triple = 0.0;
  /// 2-4 distinct flips inside an 8-bit physical neighbourhood — the
  /// diagonal/split cluster geometry adjacent-correcting codes do NOT
  /// guarantee to handle.
  double clustered = 0.0;

  [[nodiscard]] double total() const {
    return single + adjacent_double + adjacent_triple + clustered;
  }
  [[nodiscard]] bool operator==(const MbuPatternTable&) const = default;
};

/// A trial's complete fault storm, pre-drawn by the campaign pruner from a
/// golden run's recorded exposure windows (see reliability/schedule.hpp).
/// `deliveries` lists the flips reaching the decoder, keyed by injector
/// consultation ordinal (i.e. the i-th read of the target array); events on
/// dead windows are counted in `events` but never delivered — they are
/// architecturally masked, the whole point of the two-pass campaign.
struct TrialSchedule {
  std::vector<std::pair<u64, FlipSet>> deliveries;  ///< (consult ordinal, flips), ascending
  u64 events = 0;          ///< every upset event drawn, delivered or masked
  u64 dropped_events = 0;  ///< live-window events past the FlipSet budget
  /// Does any event reach a live window? False means the trial is provably
  /// masked and need not be simulated at all.
  [[nodiscard]] bool has_live() const { return !deliveries.empty(); }
};

struct InjectorConfig {
  /// Probability that an accessed stored word has suffered exactly one bit
  /// flip since it was written.
  double single_flip_prob = 0.0;
  /// Probability of exactly two flips (SECDED's detected-uncorrectable case).
  double double_flip_prob = 0.0;
  /// Make every double upset strike an ADJACENT bit pair — the dominant
  /// real-world MBU geometry, and the case SEC-DAEC corrects while SECDED
  /// only detects. When false, double-flip positions are independent.
  bool adjacent_doubles = false;
  /// Campaign (pattern-table) mode: per-access probability that the word
  /// suffered one upset event since its last access; the event's shape is
  /// drawn from `patterns`. Composes with (but is normally used instead
  /// of) the single/double Bernoulli rates above.
  double event_prob = 0.0;
  /// Poisson mean of the number of upset events per access window (the
  /// campaign sets it to the same rate*exposure product event_prob is
  /// derived from). When > 0 and an access draws an event, the event COUNT
  /// comes from a zero-truncated Poisson with this mean, so heavily
  /// accelerated campaigns (event_prob saturating toward 1) keep their
  /// multi-event windows instead of silently collapsing every window to a
  /// single upset. 0 (the default) keeps the legacy one-event-per-window
  /// behaviour and an unchanged RNG stream. Events that no longer fit the
  /// FlipSet budget are counted (faults_dropped), never silently lost.
  double event_lambda = 0.0;
  MbuPatternTable patterns;
  /// Bits eligible for flipping: data bits plus check bits of one word.
  unsigned word_bits = 39;  // (39,32) SECDED codeword by default
  u64 seed = 0x5eed;
  /// Replay mode: when set, the injector delivers this pre-drawn schedule
  /// verbatim — no RNG, no probabilities — by counting consultations. The
  /// campaign pruner uses it so a simulated trial consumes exactly the
  /// storm that was drawn analytically. Overrides every random mode.
  std::shared_ptr<const TrialSchedule> schedule;
};

class FaultInjector {
 public:
  FaultInjector() : FaultInjector(InjectorConfig{}) {}
  explicit FaultInjector(const InjectorConfig& cfg);

  /// Queue a deterministic flip: the next access to word `word_index` flips
  /// codeword bit `bit`. Multiple entries for the same word accumulate.
  void script_flip(u64 word_index, unsigned bit);

  /// Sample the flips to apply to an access of `word_index`. Returns bit
  /// positions within the codeword ([0, word_bits)), allocation-free.
  [[nodiscard]] FlipSet flips_for_access(u64 word_index);

  /// Replay mode only: jump the consultation cursor to `consults` without
  /// delivering anything, as if the fault-free prefix had been consulted.
  /// Used by snapshot fast-forward — the restored golden state at ordinal C
  /// already IS the state after C clean consultations, and the snapshot is
  /// chosen at-or-before the schedule's first delivery so nothing can be
  /// skipped over. Event totals (pre-seeded from the schedule) are
  /// untouched.
  void fast_forward(u64 consults);

  [[nodiscard]] bool enabled() const {
    return cfg_.schedule != nullptr || cfg_.single_flip_prob > 0 ||
           cfg_.double_flip_prob > 0 || cfg_.event_prob > 0 ||
           !scripted_.empty();
  }

  /// Number of events in a window that drew at least one: zero-truncated
  /// Poisson(lambda), inverse-transform, capped at FlipSet::kMax. Exposed
  /// statically so the campaign pruner replays the exact per-trial RNG
  /// stream the injector would consume.
  [[nodiscard]] static unsigned draw_event_count(Rng& rng, double lambda);

  /// Draw one pattern-table event's shape into `flips` (campaign mode).
  /// Returns false — consuming no RNG — when the table is all-zero.
  /// Statically exposed for the same RNG-replay reason as above.
  static bool draw_pattern_event(Rng& rng, const MbuPatternTable& patterns,
                                 unsigned word_bits, FlipSet& flips);

  [[nodiscard]] u64 injected_single() const { return injected_single_; }
  [[nodiscard]] u64 injected_double() const { return injected_double_; }
  [[nodiscard]] u64 injected_scripted() const { return injected_scripted_; }
  /// Pattern-table events delivered (campaign mode), by drawn shape.
  [[nodiscard]] u64 injected_pattern() const { return injected_pattern_; }
  /// Pattern-table events sampled but NOT delivered because the access's
  /// FlipSet budget was exhausted (extreme-acceleration saturation). A
  /// nonzero count means the campaign's acceleration outran the modeled
  /// per-word fault capacity — visible in the campaign CSV, not silent.
  [[nodiscard]] u64 faults_dropped() const { return dropped_events_; }
  /// Every injection event this injector delivered, across all modes.
  [[nodiscard]] u64 injected_total() const {
    return injected_single_ + injected_double_ + injected_scripted_ +
           injected_pattern_;
  }

 private:
  /// Append one pattern-table event's flips (campaign mode).
  void push_pattern_event(FlipSet& flips);
  /// Member shim over draw_event_count (uses cfg_.event_lambda and rng_).
  [[nodiscard]] unsigned sample_event_count();

  InjectorConfig cfg_;
  Rng rng_;
  std::deque<std::pair<u64, unsigned>> scripted_;
  u64 injected_single_ = 0;
  u64 injected_double_ = 0;
  u64 injected_scripted_ = 0;
  u64 injected_pattern_ = 0;
  u64 dropped_events_ = 0;
  // Replay-mode cursor: consultations seen / next schedule entry to deliver.
  u64 consults_ = 0;
  std::size_t next_delivery_ = 0;
};

}  // namespace laec::ecc
