#include "ecc/dec_bch.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace laec::ecc {

namespace {

constexpr unsigned check_bits_for(unsigned k) {
  switch (k) {
    case 32: return 13;  // 1 parity + 6 (alpha^p) + 6 (alpha^3p)
    default: return 0;
  }
}

/// GF(2^6) with primitive polynomial x^6 + x + 1.
constexpr unsigned gf_mul_x(unsigned a) {
  a <<= 1;
  if (a & 0x40u) a ^= 0x43u;
  return a & 0x3fu;
}

/// Unranked pair index of 0 <= p < q < n: pairs enumerated p-major.
constexpr unsigned pair_index(unsigned p, unsigned q, unsigned n) {
  // Offset of the p-block (pairs starting at p' < p) plus q's slot.
  return p * n - p * (p + 1) / 2 + (q - p - 1);
}

}  // namespace

DecBchCode::DecBchCode(unsigned data_bits) : k_(data_bits) {
  r_ = check_bits_for(data_bits);
  assert(r_ != 0 && "data_bits must be 32");
  build_matrix();
}

void DecBchCode::build_matrix() {
  const unsigned n = codeword_bits();

  // Raw (non-systematic) H: column p = [1; alpha^p; alpha^(3p)].
  std::vector<u64> alpha(63);
  alpha[0] = 1;
  for (unsigned i = 1; i < 63; ++i) {
    alpha[i] = gf_mul_x(static_cast<unsigned>(alpha[i - 1]));
  }
  std::vector<u64> raw(n);
  for (unsigned p = 0; p < n; ++p) {
    raw[p] = 1u | (alpha[p % 63] << 1) | (alpha[(3 * p) % 63] << 7);
  }

  // Row-reduce so the last r_ columns become the identity (systematic
  // form). Work on H as r_ rows of n-bit masks; the pivot for target row j
  // is check column k_ + j's bit.
  std::vector<u64> rows(r_, 0);
  for (unsigned p = 0; p < n; ++p) {
    for (unsigned row = 0; row < r_; ++row) {
      if (get_bit(raw[p], row)) rows[row] = set_bit(rows[row], p, 1);
    }
  }
  for (unsigned j = 0; j < r_; ++j) {
    const unsigned pivot_col = k_ + j;
    unsigned pivot_row = j;
    while (pivot_row < r_ && !get_bit(rows[pivot_row], pivot_col)) {
      ++pivot_row;
    }
    assert(pivot_row < r_ && "DEC-BCH check block must be invertible");
    std::swap(rows[j], rows[pivot_row]);
    for (unsigned i = 0; i < r_; ++i) {
      if (i != j && get_bit(rows[i], pivot_col)) rows[i] ^= rows[j];
    }
  }

  // Re-read the systematized columns and the encoder row masks.
  columns_.assign(k_, 0);
  row_masks_.assign(r_, 0);
  for (unsigned row = 0; row < r_; ++row) {
    for (unsigned i = 0; i < k_; ++i) {
      if (get_bit(rows[row], i)) {
        columns_[i] = set_bit(columns_[i], row, 1);
        row_masks_[row] = set_bit(row_masks_[row], i, 1);
      }
    }
  }

  // Syndrome LUT over the full codeword: singles map to their position,
  // doubles to n + pair_index. Distinctness is the d = 6 guarantee; the
  // asserts re-prove it at construction.
  const auto cw_column = [&](unsigned p) -> u64 {
    return p < k_ ? columns_[p] : (u64{1} << (p - k_));
  };
  syndrome_lut_.assign(std::size_t{1} << r_, -2);
  for (unsigned p = 0; p < n; ++p) {
    const u64 s = cw_column(p);
    assert(s != 0 && syndrome_lut_[static_cast<std::size_t>(s)] == -2 &&
           "single-bit syndrome collision");
    syndrome_lut_[static_cast<std::size_t>(s)] = static_cast<i32>(p);
  }
  for (unsigned p = 0; p < n; ++p) {
    for (unsigned q = p + 1; q < n; ++q) {
      const u64 s = cw_column(p) ^ cw_column(q);
      assert(s != 0 && syndrome_lut_[static_cast<std::size_t>(s)] == -2 &&
             "double-bit syndrome collision");
      syndrome_lut_[static_cast<std::size_t>(s)] =
          static_cast<i32>(n + pair_index(p, q, n));
    }
  }
}

unsigned DecBchCode::row_weight(unsigned row) const {
  assert(row < r_);
  return static_cast<unsigned>(popcount64(row_masks_[row]));
}

u64 DecBchCode::encode(u64 data) const {
  data &= low_mask(k_);
  u64 check = 0;
  for (unsigned row = 0; row < r_; ++row) {
    check = set_bit(check, row, parity64(data & row_masks_[row]));
  }
  return check;
}

u64 DecBchCode::syndrome(u64 data, u64 check) const {
  return encode(data) ^ (check & low_mask(r_));
}

DecBchCode::Result DecBchCode::check(u64 data, u64 check) const {
  Result res;
  res.data = data & low_mask(k_);
  res.check = check & low_mask(r_);
  const u64 s = syndrome(data, check);
  if (s == 0) {
    res.status = CheckStatus::kOk;
    return res;
  }
  const i32 act = syndrome_lut_[static_cast<std::size_t>(s)];
  if (act < 0) {
    res.status = CheckStatus::kDetectedUncorrectable;
    return res;
  }
  const unsigned n = codeword_bits();
  const auto flip = [&](unsigned p) {
    if (p < k_) {
      res.data = flip_bit(res.data, p);
    } else {
      res.check = flip_bit(res.check, p - k_);
    }
  };
  unsigned a = static_cast<unsigned>(act);
  if (a < n) {
    flip(a);
    res.corrected_pos[0] = static_cast<int>(a);
    res.corrected_count = 1;
    res.status = CheckStatus::kCorrected;
    return res;
  }
  // Unrank the pair index: find the first position p, then q.
  a -= n;
  unsigned p = 0;
  while (a >= n - p - 1) {
    a -= n - p - 1;
    ++p;
  }
  const unsigned q = p + 1 + a;
  flip(p);
  flip(q);
  res.corrected_pos[0] = static_cast<int>(p);
  res.corrected_pos[1] = static_cast<int>(q);
  res.corrected_count = 2;
  res.status = q == p + 1 ? CheckStatus::kCorrectedAdjacent
                          : CheckStatus::kCorrected;
  return res;
}

const DecBchCode& dec_bch32() {
  static const DecBchCode c(32);
  return c;
}

}  // namespace laec::ecc
