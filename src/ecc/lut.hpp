// Table-driven fast paths for linear block codecs.
//
// Every built-in scheme is a LINEAR map over GF(2): check bits are XORs of
// data bits, and the decode correction depends only on the syndrome
// s = encode(data) ^ stored_check. That structure admits two dense tables,
// both precomputed once at codec construction:
//
//  * EncodeLut — byte-sliced encode. `tab[j][b]` holds the check bits of the
//    word with byte value `b` in byte lane `j` and zeros elsewhere; by
//    linearity the check bits of any word are the XOR of its per-lane
//    entries. This is the slice-by-N idiom tabulated CRCs use (a CRC is just
//    another linear GF(2) map): four table loads and three XORs per 32-bit
//    word, no matrix walk, no per-row parity reduction.
//
//  * DecodeLut — dense syndrome -> (status, correction-mask) table with
//    2^check_bits entries (8192 for the r=13 (45,32) codes, the widest we
//    register). Decode collapses to: table-encode the stored data, XOR with
//    the stored check to get the syndrome, load the entry, XOR the masks
//    onto the stored pair. No per-codec branching survives on this path.
//
// The tables are built GENERICALLY from the codec's own matrix-math
// `decode`: entry s is derived from decode(0, s), which by linearity
// (encode(0) == 0, so syndrome(0, s) == s) yields the correction masks for
// every (data, check) pair sharing that syndrome. The matrix path stays
// alive as the reference implementation; tests/test_lut_decode.cpp proves
// the two bit-identical over every syndrome, and SimConfig::lut_decode
// (--no-lut) routes whole simulations through the matrix path so the sweep
// determinism contract covers the table layer end to end.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/bitops.hpp"
#include "common/types.hpp"
#include "ecc/code.hpp"

namespace laec::ecc {

/// Decode result mirroring Codec::Decoded (kept separate so the LUT layer
/// does not depend on the codec interface that owns it).
struct LutDecoded {
  CheckStatus status = CheckStatus::kOk;
  u64 data = 0;   ///< delivered (corrected where possible) data word
  u64 check = 0;  ///< matching check bits for the delivered data
};

/// Byte-sliced table encoder for a linear check-bit map of up to 64 data
/// bits and up to 16 check bits.
class EncodeLut {
 public:
  /// Tabulate `encode_word` (any callable u64 -> check bits). Exact for any
  /// linear map: the tables enumerate all 256 values of each byte lane, and
  /// linearity glues the lanes back together with XOR.
  template <typename Fn>
  void build(unsigned data_bits, Fn&& encode_word) {
    assert(data_bits >= 1 && data_bits <= 64);
    nbytes_ = (data_bits + 7) / 8;
    dmask_ = low_mask(data_bits);
    for (unsigned j = 0; j < nbytes_; ++j) {
      for (unsigned b = 0; b < 256; ++b) {
        tab_[j][b] =
            static_cast<u16>(encode_word(static_cast<u64>(b) << (8 * j)));
      }
    }
  }

  /// Check bits of a 32-bit data word: four loads, three XORs.
  [[nodiscard]] u16 encode32(u32 w) const {
    return static_cast<u16>(tab_[0][w & 0xffu] ^ tab_[1][(w >> 8) & 0xffu] ^
                            tab_[2][(w >> 16) & 0xffu] ^ tab_[3][w >> 24]);
  }

  /// Check bits of a full data word (lanes above nbytes_ hold zeros, so the
  /// 32-bit fast shape is safe for the narrow codecs).
  [[nodiscard]] u64 encode(u64 w) const {
    w &= dmask_;
    u16 acc = encode32(static_cast<u32>(w));
    if (nbytes_ > 4) {
      const u32 hi = static_cast<u32>(w >> 32);
      acc = static_cast<u16>(acc ^ tab_[4][hi & 0xffu] ^
                             tab_[5][(hi >> 8) & 0xffu] ^
                             tab_[6][(hi >> 16) & 0xffu] ^ tab_[7][hi >> 24]);
    }
    return acc;
  }

  /// Bit-sliced span encode: one table-driven pass over the line, no
  /// per-word virtual dispatch, no matrix walk.
  void encode_line(const u32* data, u16* check, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) check[i] = encode32(data[i]);
  }

 private:
  u16 tab_[8][256] = {};  ///< per-byte-lane check-bit columns
  u64 dmask_ = 0;
  unsigned nbytes_ = 0;
};

/// Dense syndrome -> correction table. One entry per syndrome value; decode
/// is a table encode, one load and two XORs.
class DecodeLut {
 public:
  struct Entry {
    u64 data_xor = 0;   ///< correction mask over the data word
    u16 check_xor = 0;  ///< correction mask over the stored check bits
    CheckStatus status = CheckStatus::kOk;
  };

  /// Build from the codec's matrix-math decode (any callable
  /// (u64 data, u64 check) -> LutDecoded). Keeps a copy of the encoder so
  /// decode is self-contained.
  template <typename Fn>
  void build(const EncodeLut& enc, unsigned data_bits, unsigned check_bits,
             Fn&& matrix_decode) {
    assert(check_bits >= 1 && check_bits <= 16);
    enc_ = enc;
    dmask_ = low_mask(data_bits);
    cmask_ = low_mask(check_bits);
    entries_.resize(std::size_t{1} << check_bits);
    for (u64 s = 0; s < entries_.size(); ++s) {
      // decode(0, s) sees syndrome s (encode(0) == 0); whatever it flips
      // relative to the stored pair is, by linearity, the correction every
      // word with this syndrome receives.
      const LutDecoded r = matrix_decode(u64{0}, s);
      entries_[s] = {r.data, static_cast<u16>(r.check ^ s), r.status};
    }
  }

  [[nodiscard]] LutDecoded decode(u64 data, u64 check) const {
    const u64 c = check & cmask_;
    const Entry& e = entries_[enc_.encode(data) ^ c];
    return {e.status, (data & dmask_) ^ e.data_xor, c ^ e.check_xor};
  }

  /// Corrected view of `n` stored words, matching Codec::decode_line's
  /// default semantics exactly: corrected data when the scheme can repair,
  /// the stored word untouched otherwise (including detected-but-
  /// uncorrectable words — the writeback path must never launder those).
  void decode_line(const u32* data, const u16* check, u32* out,
                   std::size_t n) const;

  [[nodiscard]] const EncodeLut& encoder() const { return enc_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  EncodeLut enc_;
  std::vector<Entry> entries_;
  u64 dmask_ = 0;
  u64 cmask_ = 0;
};

}  // namespace laec::ecc
