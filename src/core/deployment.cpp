#include "core/deployment.hpp"

#include <stdexcept>

#include "ecc/registry.hpp"

namespace laec::core {

namespace {

/// The cache arrays protect 32-bit words; a 64-bit-word codec cannot be
/// deployed in the DL1 (Debug builds would hit the cache's geometry
/// assert, Release builds would silently truncate check bits).
std::shared_ptr<const ecc::Codec> dl1_codec(std::string_view key) {
  auto codec = ecc::make_codec(key);  // throws when unknown
  if (codec->data_bits() != 32) {
    throw std::invalid_argument(
        "codec \"" + std::string(key) + "\" protects " +
        std::to_string(codec->data_bits()) +
        "-bit words; the DL1 arrays use 32-bit word granularity");
  }
  return codec;
}

/// Deployment for a bare codec key: correcting codecs ride the write-back
/// DL1 under the LAEC placement (the paper's proposal, and the fair apples-
/// to-apples slot for codec-vs-codec comparisons); detect-only codecs can
/// only recover by refetch, so they get the classic write-through
/// arrangement; "none" is the unprotected baseline.
EccDeployment for_codec(std::string_view key) {
  const auto codec = dl1_codec(key);
  EccDeployment d;
  d.name = std::string(key);
  d.codec = std::string(key);
  if (codec->check_bits() == 0) {
    d.timing = cpu::EccPolicy::kNoEcc;
  } else if (codec->corrects_single()) {
    d.timing = cpu::EccPolicy::kLaec;
  } else {
    d.timing = cpu::EccPolicy::kWtParity;
    d.write_policy = mem::WritePolicy::kWriteThrough;
    d.alloc_policy = mem::AllocPolicy::kNoWriteAllocate;
  }
  return d;
}

}  // namespace

EccDeployment EccDeployment::from_policy(cpu::EccPolicy p) {
  EccDeployment d;
  d.name = std::string(to_string(p));
  d.timing = p;
  switch (p) {
    case cpu::EccPolicy::kNoEcc:
      d.codec = "none";
      break;
    case cpu::EccPolicy::kExtraCycle:
    case cpu::EccPolicy::kExtraStage:
    case cpu::EccPolicy::kLaec:
      d.codec = "secded-39-32";
      break;
    case cpu::EccPolicy::kWtParity:
      d.codec = "parity-32";
      d.write_policy = mem::WritePolicy::kWriteThrough;
      d.alloc_policy = mem::AllocPolicy::kNoWriteAllocate;
      break;
  }
  return d;
}

EccDeployment EccDeployment::parse(std::string_view key) {
  if (const auto p = cpu::ecc_policy_from_string(key); p.has_value()) {
    return from_policy(*p);
  }
  if (const auto colon = key.find(':'); colon != std::string_view::npos) {
    const std::string_view placement = key.substr(0, colon);
    const std::string_view codec_key = key.substr(colon + 1);
    const auto p = cpu::ecc_policy_from_string(placement);
    if (!p.has_value()) {
      throw std::invalid_argument(
          "unknown ECC placement \"" + std::string(placement) +
          "\" (want one of: no-ecc, extra-cycle, extra-stage, laec, "
          "wt-parity)");
    }
    const auto codec = dl1_codec(codec_key);
    EccDeployment d = from_policy(*p);
    d.name = std::string(key);
    d.codec = std::string(codec_key);
    if (*p != cpu::EccPolicy::kNoEcc && *p != cpu::EccPolicy::kWtParity &&
        !codec->corrects_single()) {
      throw std::invalid_argument(
          "placement \"" + std::string(placement) +
          "\" needs a correcting codec; \"" + std::string(codec_key) +
          "\" only detects");
    }
    return d;
  }
  if (ecc::codec_registered(key)) return for_codec(key);
  std::string known;
  for (const auto& k : policy_keys()) {
    known += known.empty() ? "" : ", ";
    known += k;
  }
  for (const auto& c : ecc::registered_codecs()) {
    known += ", " + c;
  }
  throw std::invalid_argument("unknown ECC scheme \"" + std::string(key) +
                              "\" (known: " + known +
                              ", or placement:codec)");
}

const std::vector<std::string>& EccDeployment::policy_keys() {
  static const std::vector<std::string> kKeys = {
      "no-ecc", "extra-cycle", "extra-stage", "laec", "wt-parity"};
  return kKeys;
}

}  // namespace laec::core
