#include "core/deployment.hpp"

#include <optional>
#include <stdexcept>

#include "ecc/registry.hpp"

namespace laec::core {

namespace {

using mem::RecoveryPolicy;

/// The cache arrays protect 32-bit words; a 64-bit-word codec cannot be
/// deployed in any of them (Debug builds would hit the cache's geometry
/// assert, Release builds would silently truncate check bits). Unknown
/// names throw std::invalid_argument naming the known codecs — the
/// exception type parse() documents for every malformed key.
/// Comma-join for the "known choices" error diagnostics.
std::string join_keys(const std::vector<std::string>& keys) {
  std::string out;
  for (const auto& k : keys) {
    out += out.empty() ? "" : ", ";
    out += k;
  }
  return out;
}

std::string known_codecs() { return join_keys(ecc::registered_codecs()); }

/// Split on a delimiter, keeping empty segments (they become diagnostics
/// downstream). Shared by the '+' compound-key and ':' segment grammars.
std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    out.push_back(s.substr(
        start, pos == std::string_view::npos ? s.size() - start
                                             : pos - start));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::shared_ptr<const ecc::Codec> level_codec(std::string_view key,
                                              std::string_view level) {
  if (!ecc::codec_registered(key)) {
    throw std::invalid_argument("unknown codec \"" + std::string(key) +
                                "\" for the " + std::string(level) +
                                " (known: " + known_codecs() + ")");
  }
  auto codec = ecc::make_codec(key);
  if (codec->data_bits() != 32) {
    throw std::invalid_argument(
        "codec \"" + std::string(key) + "\" protects " +
        std::to_string(codec->data_bits()) + "-bit words; the " +
        std::string(level) + " arrays use 32-bit word granularity");
  }
  return codec;
}

/// Scrub/recovery defaults implied by a codec's capabilities: correcting
/// codes scrub and correct in place, detect-only codes can only refetch.
void apply_derived_defaults(const ecc::Codec& codec, bool& scrub,
                            RecoveryPolicy& recovery) {
  scrub = codec.corrects_single();
  recovery = codec.corrects_single() ? RecoveryPolicy::kCorrectInPlace
                                     : RecoveryPolicy::kInvalidateRefetch;
}

/// Per-segment option flags (":scrub", ":no-scrub", ":correct", ":refetch").
struct SegmentFlags {
  std::optional<bool> scrub;
  std::optional<RecoveryPolicy> recovery;
};

bool is_flag_token(std::string_view tok) {
  return tok == "scrub" || tok == "no-scrub" || tok == "correct" ||
         tok == "refetch";
}

/// Split `segment` on ':' and peel trailing flag tokens into `flags`.
/// Returns the remaining (base) tokens.
std::vector<std::string_view> split_base_and_flags(std::string_view segment,
                                                   SegmentFlags& flags) {
  std::vector<std::string_view> tokens = split(segment, ':');
  while (tokens.size() > 1 && is_flag_token(tokens.back())) {
    const std::string_view tok = tokens.back();
    tokens.pop_back();
    // The peel runs back to front, so a slot that is already set means two
    // flags of the same kind — reject instead of silently picking one.
    if (tok == "scrub" || tok == "no-scrub") {
      if (flags.scrub.has_value()) {
        throw std::invalid_argument(
            "conflicting scrub flags in ECC scheme segment \"" +
            std::string(segment) + "\"");
      }
      flags.scrub = tok == "scrub";
    } else {
      if (flags.recovery.has_value()) {
        throw std::invalid_argument(
            "conflicting recovery flags in ECC scheme segment \"" +
            std::string(segment) + "\"");
      }
      flags.recovery = tok == "correct" ? RecoveryPolicy::kCorrectInPlace
                                        : RecoveryPolicy::kInvalidateRefetch;
    }
  }
  return tokens;
}

void apply_flags(const SegmentFlags& flags, std::string_view codec_key,
                 const ecc::Codec& codec, bool& scrub,
                 RecoveryPolicy& recovery) {
  if (flags.scrub.has_value()) scrub = *flags.scrub;
  if (flags.recovery.has_value()) recovery = *flags.recovery;
  if (recovery == RecoveryPolicy::kCorrectInPlace &&
      codec.check_bits() > 0 && !codec.corrects_single()) {
    throw std::invalid_argument(
        "recovery \"correct\" needs a correcting codec; \"" +
        std::string(codec_key) + "\" only detects");
  }
}

/// Deployment for a bare DL1 codec key: correcting codecs ride the write-
/// back DL1 under the LAEC placement (the paper's proposal, and the fair
/// apples-to-apples slot for codec-vs-codec comparisons); detect-only
/// codecs can only recover by refetch, so they get the classic write-
/// through arrangement; "none" is the unprotected baseline.
HierarchyDeployment for_codec(std::string_view key) {
  const auto codec = level_codec(key, "DL1");
  HierarchyDeployment d;
  d.name = std::string(key);
  d.dl1_key = std::string(key);
  d.codec = std::string(key);
  apply_derived_defaults(*codec, d.scrub_on_correct, d.recovery);
  if (codec->check_bits() == 0) {
    d.timing = cpu::EccPolicy::kNoEcc;
  } else if (codec->corrects_single()) {
    d.timing = cpu::EccPolicy::kLaec;
  } else {
    d.timing = cpu::EccPolicy::kWtParity;
    d.write_policy = mem::WritePolicy::kWriteThrough;
    d.alloc_policy = mem::AllocPolicy::kNoWriteAllocate;
  }
  return d;
}

/// Parse one DL1 segment: policy, codec, or placement:codec, with optional
/// trailing flags. (The full-key grammar splits '+'-separated level
/// segments before this runs.)
HierarchyDeployment parse_dl1_segment(std::string_view segment) {
  SegmentFlags flags;
  const auto tokens = split_base_and_flags(segment, flags);

  const auto finish = [&](HierarchyDeployment d) {
    apply_flags(flags, d.codec, *ecc::make_codec(d.codec), d.scrub_on_correct,
                d.recovery);
    return d;
  };

  if (tokens.size() == 1) {
    const std::string_view base = tokens[0];
    if (const auto p = cpu::ecc_policy_from_string(base); p.has_value()) {
      return finish(HierarchyDeployment::from_policy(*p));
    }
    if (ecc::codec_registered(base)) return finish(for_codec(base));
    throw std::invalid_argument(
        "unknown ECC scheme \"" + std::string(base) + "\" (known: " +
        join_keys(HierarchyDeployment::policy_keys()) + ", " +
        known_codecs() +
        ", or placement:codec, or a '+'-joined compound key with l1i:/l2: "
        "segments)");
  }

  if (tokens.size() == 2) {
    const std::string_view placement = tokens[0];
    const std::string_view codec_key = tokens[1];
    const auto p = cpu::ecc_policy_from_string(placement);
    if (!p.has_value()) {
      throw std::invalid_argument(
          "unknown ECC placement \"" + std::string(placement) +
          "\" (want one of: no-ecc, extra-cycle, extra-stage, laec, "
          "wt-parity)");
    }
    const auto codec = level_codec(codec_key, "DL1");
    HierarchyDeployment d = HierarchyDeployment::from_policy(*p);
    d.name = std::string(placement) + ":" + std::string(codec_key);
    d.dl1_key = d.name;
    d.codec = std::string(codec_key);
    apply_derived_defaults(*codec, d.scrub_on_correct, d.recovery);
    if (*p != cpu::EccPolicy::kNoEcc && *p != cpu::EccPolicy::kWtParity &&
        !codec->corrects_single()) {
      throw std::invalid_argument(
          "placement \"" + std::string(placement) +
          "\" needs a correcting codec; \"" + std::string(codec_key) +
          "\" only detects");
    }
    return finish(std::move(d));
  }

  throw std::invalid_argument("malformed ECC scheme segment \"" +
                              std::string(segment) +
                              "\" (too many ':' components)");
}

/// Parse one "l1i:..." / "l2:..." / "dl1:..." override payload (the text
/// after the level prefix) into a LevelDeployment.
LevelDeployment parse_level_segment(std::string_view level,
                                    std::string_view payload) {
  SegmentFlags flags;
  const auto tokens = split_base_and_flags(payload, flags);
  if (tokens.size() != 1 || tokens[0].empty()) {
    throw std::invalid_argument("level override \"" + std::string(level) +
                                ":" + std::string(payload) +
                                "\" wants " + std::string(level) +
                                ":<codec>[:scrub|:no-scrub|:correct|"
                                ":refetch]");
  }
  const auto codec = level_codec(tokens[0], level);
  LevelDeployment d;
  d.codec = std::string(tokens[0]);
  apply_derived_defaults(*codec, d.scrub_on_correct, d.recovery);
  apply_flags(flags, d.codec, *codec, d.scrub_on_correct, d.recovery);
  return d;
}

/// Append the ":scrub"/":no-scrub"/":correct"/":refetch" suffixes for
/// whatever differs from the codec's derived defaults — the minimal
/// spelling parse() maps back to the same (scrub, recovery) pair. Shared
/// by the DL1 and level canonicalizers so the flag grammar cannot diverge.
void append_flag_diffs(std::string& out, const std::string& codec_key,
                       bool scrub, RecoveryPolicy recovery) {
  bool derived_scrub = false;
  RecoveryPolicy derived_recovery = RecoveryPolicy::kInvalidateRefetch;
  apply_derived_defaults(*ecc::make_codec(codec_key), derived_scrub,
                         derived_recovery);
  if (scrub != derived_scrub) {
    out += scrub ? ":scrub" : ":no-scrub";
  }
  if (recovery != derived_recovery) {
    out += recovery == RecoveryPolicy::kCorrectInPlace ? ":correct"
                                                       : ":refetch";
  }
}

/// Level-segment spelling when it differs from `base` (empty otherwise):
/// the codec plus only the flags that differ from the codec's derived
/// defaults — the minimal key parse() maps back to the same deployment.
std::string level_key_if_not(const LevelDeployment& d,
                             const LevelDeployment& base,
                             std::string_view prefix) {
  if (d == base) return {};
  std::string out = std::string(prefix) + ":" + d.codec;
  append_flag_diffs(out, d.codec, d.scrub_on_correct, d.recovery);
  return out;
}

}  // namespace

HierarchyDeployment HierarchyDeployment::from_policy(cpu::EccPolicy p) {
  HierarchyDeployment d;
  d.name = std::string(to_string(p));
  d.dl1_key = d.name;
  d.timing = p;
  switch (p) {
    case cpu::EccPolicy::kNoEcc:
      d.codec = "none";
      break;
    case cpu::EccPolicy::kExtraCycle:
    case cpu::EccPolicy::kExtraStage:
    case cpu::EccPolicy::kLaec:
      d.codec = "secded-39-32";
      break;
    case cpu::EccPolicy::kWtParity:
      d.codec = "parity-32";
      d.write_policy = mem::WritePolicy::kWriteThrough;
      d.alloc_policy = mem::AllocPolicy::kNoWriteAllocate;
      break;
  }
  apply_derived_defaults(*ecc::make_codec(d.codec), d.scrub_on_correct,
                         d.recovery);
  return d;
}

HierarchyDeployment HierarchyDeployment::parse(std::string_view key) {
  // Split the compound key on '+': one DL1 segment plus optional level
  // overrides, each at most once.
  const std::vector<std::string_view> segments = split(key, '+');

  std::optional<HierarchyDeployment> dl1;
  std::optional<LevelDeployment> l1i, l2;
  for (const std::string_view seg : segments) {
    if (seg.empty()) {
      throw std::invalid_argument("empty segment in ECC scheme key \"" +
                                  std::string(key) + "\"");
    }
    const auto claim = [&](std::string_view level, auto& slot,
                           auto parsed) {
      if (slot.has_value()) {
        throw std::invalid_argument("duplicate " + std::string(level) +
                                    " segment in ECC scheme key \"" +
                                    std::string(key) + "\"");
      }
      slot = std::move(parsed);
    };
    if (seg.rfind("l1i:", 0) == 0) {
      claim("l1i", l1i, parse_level_segment("l1i", seg.substr(4)));
    } else if (seg.rfind("l2:", 0) == 0) {
      claim("l2", l2, parse_level_segment("l2", seg.substr(3)));
    } else if (seg.rfind("dl1:", 0) == 0) {
      claim("dl1", dl1, parse_dl1_segment(seg.substr(4)));
    } else {
      claim("dl1", dl1, parse_dl1_segment(seg));
    }
  }
  if (!dl1.has_value()) {
    throw std::invalid_argument(
        "ECC scheme key \"" + std::string(key) +
        "\" has no DL1 segment (start with a policy name, a codec name, or "
        "placement:codec)");
  }

  HierarchyDeployment d = std::move(*dl1);
  if (l1i.has_value()) d.l1i = std::move(*l1i);
  if (l2.has_value()) d.l2 = std::move(*l2);
  d.name = d.canonical_key();
  return d;
}

const std::vector<std::string>& HierarchyDeployment::policy_keys() {
  static const std::vector<std::string> kKeys = {
      "no-ecc", "extra-cycle", "extra-stage", "laec", "wt-parity"};
  return kKeys;
}

const LevelDeployment& HierarchyDeployment::l1i_default() {
  static const LevelDeployment kDefault = {
      "parity-32", /*scrub_on_correct=*/false,
      RecoveryPolicy::kInvalidateRefetch};
  return kDefault;
}

const LevelDeployment& HierarchyDeployment::l2_default() {
  static const LevelDeployment kDefault = {
      "secded-39-32", /*scrub_on_correct=*/true,
      RecoveryPolicy::kCorrectInPlace};
  return kDefault;
}

std::string HierarchyDeployment::canonical_key() const {
  // DL1 segment: the base spelling the deployment was built from (so a
  // bare codec key never aliases onto a policy that happens to expand to
  // the same arrangement) plus whatever flags differ from the codec's
  // derived defaults.
  std::string out = dl1_key;
  append_flag_diffs(out, codec, scrub_on_correct, recovery);
  if (const auto seg = level_key_if_not(l1i, l1i_default(), "l1i");
      !seg.empty()) {
    out += "+" + seg;
  }
  if (const auto seg = level_key_if_not(l2, l2_default(), "l2");
      !seg.empty()) {
    out += "+" + seg;
  }
  return out;
}

}  // namespace laec::core
