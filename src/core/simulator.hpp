// Public entry point of the LAEC library.
//
// SimConfig captures every knob a study needs (which ECC deployment, cache
// geometry, latencies, fault injection); run_program / run_trace build the
// full NGMP-like system, run it, and return a digested RunStats. The
// examples and every benchmark harness sit on top of this facade; tests and
// power users can still assemble sim::System directly.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/deployment.hpp"
#include "cpu/pipeline_config.hpp"
#include "cpu/trace_source.hpp"
#include "ecc/injector.hpp"
#include "isa/program.hpp"
#include "sim/system.hpp"

namespace laec::mem {
class ResidencyRecorder;
}

namespace laec::sim {
class SnapshotStore;
}

namespace laec::core {

/// Which cache array a SimConfig's fault storm strikes.
enum class InjectTarget { kDl1, kL1i, kL2 };

[[nodiscard]] constexpr std::string_view to_string(InjectTarget t) {
  switch (t) {
    case InjectTarget::kDl1: return "dl1";
    case InjectTarget::kL1i: return "l1i";
    case InjectTarget::kL2: return "l2";
  }
  return "invalid-inject-target";
}

[[nodiscard]] constexpr std::optional<InjectTarget> inject_target_from_string(
    std::string_view s) {
  if (s == "dl1") return InjectTarget::kDl1;
  if (s == "l1i") return InjectTarget::kL1i;
  if (s == "l2") return InjectTarget::kL2;
  return std::nullopt;
}

struct SimConfig {
  /// DL1 ECC deployment under study (legacy enum axis). When `deployment`
  /// is unset this policy is expanded via HierarchyDeployment::from_policy:
  /// kNoEcc -> unprotected write-back; kExtraCycle/kExtraStage/kLaec ->
  /// SECDED write-back; kWtParity -> parity write-through. The L1I and L2
  /// keep their canonical deployments (parity-32 / secded-39-32).
  cpu::EccPolicy ecc = cpu::EccPolicy::kLaec;
  /// Full string-keyed scheme descriptor for the whole hierarchy (per-cache
  /// codec + scrub + recovery, DL1 write policy + stage placement). Takes
  /// precedence over `ecc` when set; set_scheme() keeps the two in sync.
  /// New code should select schemes this way.
  std::optional<HierarchyDeployment> deployment;

  /// Select the scheme by key (policy name, codec name, "placement:codec",
  /// or a compound key like "laec+l2:sec-daec-39-32" — see
  /// HierarchyDeployment::parse). Keeps the legacy `ecc` enum in sync for
  /// timing-model consumers. Throws std::invalid_argument for unknown keys.
  SimConfig& set_scheme(std::string_view key) {
    deployment = HierarchyDeployment::parse(key);
    ecc = deployment->timing;
    return *this;
  }

  /// The effective deployment: `deployment` when set, else the canonical
  /// expansion of `ecc`.
  [[nodiscard]] HierarchyDeployment effective_deployment() const {
    return deployment.has_value() ? *deployment
                                  : HierarchyDeployment::from_policy(ecc);
  }
  cpu::HazardRule hazard_rule = cpu::HazardRule::kExact;
  cpu::EccSlotPolicy ecc_slot = cpu::EccSlotPolicy::kAuto;
  /// Extension: stride-predicted look-ahead for data-hazard-blocked loads.
  bool stride_predictor = false;

  // Geometry (paper §IV: 4-way, 32 B lines, 16 KB DL1).
  u32 dl1_size_bytes = 16 * 1024;
  u32 dl1_ways = 4;
  u32 dl1_line_bytes = 32;
  u32 l1i_size_bytes = 16 * 1024;
  unsigned write_buffer_depth = 8;

  // Latencies.
  unsigned mul_latency = 1;
  unsigned div_latency = 12;
  unsigned bus_request_cycles = 2;
  unsigned bus_response_cycles = 2;
  unsigned l2_hit_cycles = 4;
  unsigned l2_write_cycles = 2;
  unsigned memory_cycles = 26;

  // System shape.
  unsigned num_cores = 1;
  std::vector<sim::TrafficPattern> traffic;  ///< co-runner bus pressure

  // Fault injection into one of the cache arrays (soft errors). Program
  // mode only: trace (oracle) mode keeps no arrays to inject into, so
  // run_trace and the sweep runner reject configs that combine the two.
  std::optional<ecc::InjectorConfig> faults;
  /// Which array the storm strikes (the flip universe is sized to that
  /// level's deployed codec).
  InjectTarget inject_target = InjectTarget::kDl1;

  /// Validation knob: run every cache word read through the generic decode
  /// (slow) path, bypassing the devirtualized clean-word fast test in all
  /// three arrays. The fast-path equivalence suite runs reference points
  /// this way and asserts identical stats/rows; leave false otherwise.
  bool force_generic_ecc_path = false;

  /// Decode through each codec's precomputed syndrome LUT (the default).
  /// --no-lut turns this off, routing every decode through the matrix-math
  /// reference implementation in all three arrays; the equivalence suite
  /// asserts the two modes produce byte-identical rows. Orthogonal to
  /// force_generic_ecc_path (which picks when to decode, not how).
  bool lut_decode = true;

  // Trace (oracle) mode tuning: forced-miss service time. Calibrated so
  // the trace-mode baseline CPI lands near the paper's effective ~1.3
  // (EXPERIMENTS.md, E3 calibration note).
  unsigned oracle_miss_cycles = 8;

  bool record_chronogram = false;
  bool lookahead_under_branch_shadow = true;
  u64 max_cycles = 500'000'000;
};

/// Expand a SimConfig into the full system configuration (exposed so tests
/// and ablations can tweak the result before building a System).
[[nodiscard]] sim::SystemConfig make_system_config(const SimConfig& cfg,
                                                   bool trace_mode = false);

struct RunStats {
  bool completed = false;
  u64 cycles = 0;
  u64 instructions = 0;
  double cpi = 0.0;
  u64 loads = 0;
  u64 load_hits = 0;
  u64 stores = 0;
  u64 dep_loads = 0;  ///< loads consumed at distance 1-2 (Table II)
  u64 laec_anticipated = 0;
  u64 laec_data_hazard = 0;
  u64 laec_resource_hazard = 0;
  u64 ecc_corrected = 0;
  u64 ecc_corrected_adjacent = 0;  ///< subset of ecc_corrected (SEC-DAEC)
  u64 ecc_detected_uncorrectable = 0;
  u64 parity_refetches = 0;
  u64 data_loss_events = 0;
  u64 dl1_fill_words = 0;  ///< words (re-)encoded by refills, line-size aware
  u64 bus_transactions = 0;
  u64 bus_wait_cycles = 0;

  // Per-level ECC events of the other protected arrays (the DL1's live in
  // the ecc_* fields above, kept under their original names).
  u64 l1i_fetches = 0;
  u64 l1i_fill_words = 0;  ///< words (re-)encoded by refills, line-size aware
  u64 l1i_corrected = 0;
  u64 l1i_detected_uncorrectable = 0;
  u64 l1i_refetches = 0;  ///< invalidate-and-refetch recoveries
  u64 l2_reads = 0;
  u64 l2_writes = 0;
  u64 l2_fill_words = 0;  ///< words (re-)encoded by refills, line-size aware
  u64 l2_corrected = 0;
  u64 l2_corrected_adjacent = 0;
  u64 l2_detected_uncorrectable = 0;
  u64 l2_refetches = 0;         ///< L2 lines dropped and refetched from memory
  u64 l2_data_loss_events = 0;  ///< DUE on a dirty L2 line (writeback lost)

  /// Table II ratios.
  [[nodiscard]] double load_fraction() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(loads) /
                                   static_cast<double>(instructions);
  }
  [[nodiscard]] double hit_fraction() const {
    return loads == 0 ? 0.0
                      : static_cast<double>(load_hits) /
                            static_cast<double>(loads);
  }
  [[nodiscard]] double dep_fraction() const {
    return loads == 0 ? 0.0
                      : static_cast<double>(dep_loads) /
                            static_cast<double>(loads);
  }

  StatSet pipeline_stats;
  StatSet dl1_stats;
  StatSet l1i_stats;
  StatSet l2_stats;
  StatSet bus_stats;
};

/// Assemble, run `program` on core 0 of a fresh system, digest the stats.
/// A fault injector described by cfg.faults is attached to the array named
/// by cfg.inject_target (core 0's DL1 or L1I, or the shared L2).
[[nodiscard]] RunStats run_program(const SimConfig& cfg,
                                   const isa::Program& program);

/// The injection flip universe of cfg's targeted cache level: the deployed
/// codec's codeword width (data + check bits; data bits alone for an
/// unprotected array). attach_injector sizes the injector with this, and
/// the reliability campaign normalizes its Poisson rates over the same
/// count — one definition, so the two can never disagree.
[[nodiscard]] unsigned injector_word_bits(const SimConfig& cfg);

/// Build the injector described by cfg.faults (flip universe sized by
/// injector_word_bits) and attach it to the targeted array of `system`.
/// Returns nullptr when cfg.faults is unset. Shared by
/// run_program_keep_system and the test harnesses so target wiring cannot
/// diverge.
[[nodiscard]] std::unique_ptr<ecc::FaultInjector> attach_injector(
    sim::System& system, const SimConfig& cfg);

/// Bind `recorder` to the system clock and hook it into the same array
/// cfg.inject_target names, mirroring attach_injector's wiring — the golden
/// run must observe exactly the word stream the injector would be consulted
/// on.
void attach_recorder(sim::System& system, const SimConfig& cfg,
                     mem::ResidencyRecorder* recorder);

/// run_program, but keep the finished system alive for post-mortem
/// inspection (final-memory self-checks, chronograms). run_program and the
/// sweep runner both build on this so the wiring cannot diverge.
struct ProgramRun {
  std::unique_ptr<sim::System> system;
  std::unique_ptr<ecc::FaultInjector> injector;  ///< when cfg.faults set
  RunStats stats;
};
/// `recorder`, when non-null, observes the targeted array for the whole run
/// (attached before the first cycle, finalized after the last).
/// `snapshots`, when non-null (requires `recorder`: its live-window count is
/// the consultation clock), makes the run drop full-state snapshots into the
/// store at its configured consultation cadence — the golden-run side of
/// campaign fast-forwarding.
[[nodiscard]] ProgramRun run_program_keep_system(
    const SimConfig& cfg, const isa::Program& program,
    mem::ResidencyRecorder* recorder = nullptr,
    sim::SnapshotStore* snapshots = nullptr);

/// Resume a replay trial from a golden snapshot: build the system from
/// `cfg`, restore `blob` (a sim::save_system_state frame), attach the replay
/// injector fast-forwarded to `consult_ordinal`, and run to completion. The
/// program image is already inside the snapshot, so none is loaded. Sound
/// only for cfg.faults with a pre-drawn schedule whose first delivery is at
/// or after `consult_ordinal` (the campaign engine guarantees this).
[[nodiscard]] ProgramRun run_program_resume(const SimConfig& cfg,
                                            const std::string& blob,
                                            u64 consult_ordinal);

/// Same, but feed core 0 from a synthetic trace (oracle DL1 outcomes).
[[nodiscard]] RunStats run_trace(const SimConfig& cfg,
                                 cpu::TraceSource& trace);

/// Digest stats out of an already-run system (used by custom drivers).
[[nodiscard]] RunStats collect_stats(sim::System& system, bool completed);

}  // namespace laec::core
