#include "core/simulator.hpp"

#include <memory>
#include <stdexcept>

#include "ecc/registry.hpp"
#include "mem/residency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/snapshot.hpp"

namespace laec::core {

sim::SystemConfig make_system_config(const SimConfig& cfg, bool trace_mode) {
  sim::SystemConfig sc;
  sc.num_cores = cfg.num_cores;
  sc.max_cycles = cfg.max_cycles;
  sc.traffic = cfg.traffic;

  sc.memsys.bus.request_cycles = cfg.bus_request_cycles;
  sc.memsys.bus.response_cycles = cfg.bus_response_cycles;
  sc.memsys.l2.hit_cycles = cfg.l2_hit_cycles;
  sc.memsys.l2.write_cycles = cfg.l2_write_cycles;
  sc.memsys.l2.memory_cycles = cfg.memory_cycles;

  cpu::PipelineParams& pp = sc.core.pipeline;
  pp.hazard_rule = cfg.hazard_rule;
  pp.ecc_slot = cfg.ecc_slot;
  pp.stride_predictor = cfg.stride_predictor;
  pp.mul_latency = cfg.mul_latency;
  pp.div_latency = cfg.div_latency;
  pp.record_chronogram = cfg.record_chronogram;
  pp.lookahead_under_branch_shadow = cfg.lookahead_under_branch_shadow;
  pp.max_cycles = cfg.max_cycles;

  // Expand the scheme descriptor: per-cache codec, scrub and recovery plus
  // the DL1 write policy and stage placement all flow from the (possibly
  // string-keyed) hierarchy deployment.
  const HierarchyDeployment dep = cfg.effective_deployment();
  pp.ecc = dep.timing;

  mem::CacheConfig& dc = sc.core.dl1.cache;
  dc.size_bytes = cfg.dl1_size_bytes;
  dc.ways = cfg.dl1_ways;
  dc.line_bytes = cfg.dl1_line_bytes;
  dc.write_policy = dep.write_policy;
  dc.alloc_policy = dep.alloc_policy;
  dc.codec = ecc::make_codec(dep.codec);
  dc.scrub_on_correct = dep.scrub_on_correct;
  dc.recovery = dep.recovery;
  dc.force_generic_path = cfg.force_generic_ecc_path;
  dc.use_lut_decode = cfg.lut_decode;
  sc.core.dl1.oracle.enabled = trace_mode;
  sc.core.dl1.oracle.miss_cycles = cfg.oracle_miss_cycles;

  mem::CacheConfig& ic = sc.core.l1i.cache;
  ic.size_bytes = cfg.l1i_size_bytes;
  ic.line_bytes = cfg.dl1_line_bytes;
  ic.codec = ecc::make_codec(dep.l1i.codec);
  ic.scrub_on_correct = dep.l1i.scrub_on_correct;
  ic.recovery = dep.l1i.recovery;
  ic.force_generic_path = cfg.force_generic_ecc_path;
  ic.use_lut_decode = cfg.lut_decode;

  mem::CacheConfig& l2c = sc.memsys.l2.cache;
  l2c.codec = ecc::make_codec(dep.l2.codec);
  l2c.scrub_on_correct = dep.l2.scrub_on_correct;
  l2c.recovery = dep.l2.recovery;
  l2c.force_generic_path = cfg.force_generic_ecc_path;
  l2c.use_lut_decode = cfg.lut_decode;

  sc.core.wbuf.depth = cfg.write_buffer_depth;
  return sc;
}

RunStats collect_stats(sim::System& system, bool completed) {
  RunStats r;
  r.completed = completed;
  const StatSet& ps = system.core(0).pipeline().stats();
  const StatSet& ds = system.core(0).dl1().stats();
  const StatSet& cs = system.core(0).dl1().cache().stats();
  const StatSet& bs = system.memsys().bus().stats();

  r.cycles = ps.value("cycles");
  r.instructions = ps.value("instructions");
  r.cpi = r.instructions == 0
              ? 0.0
              : static_cast<double>(r.cycles) /
                    static_cast<double>(r.instructions);
  r.loads = ps.value("loads");
  r.load_hits = ps.value("load_hits");
  r.stores = ps.value("stores");
  r.dep_loads = ps.value("dep_loads");
  r.laec_anticipated = ps.value("laec_anticipated");
  r.laec_data_hazard = ps.value("laec_data_hazard");
  r.laec_resource_hazard = ps.value("laec_resource_hazard");
  r.ecc_corrected = cs.value("ecc_corrected");
  r.ecc_corrected_adjacent = cs.value("ecc_corrected_adjacent");
  r.ecc_detected_uncorrectable = cs.value("ecc_detected_uncorrectable");
  r.parity_refetches = ds.value("parity_refetches");
  r.data_loss_events = ds.value("data_loss_events");
  r.dl1_fill_words =
      cs.value("fills") * (system.core(0).dl1().cache().line_bytes() / 4);
  r.bus_transactions = bs.value("transactions");
  r.bus_wait_cycles = bs.value("wait_cycles");

  // Per-level ECC events. Trace (oracle) mode feeds core 0 synthetic
  // operations and keeps no L1I at all.
  if (system.core(0).has_l1i()) {
    const StatSet& is = system.core(0).l1i().stats();
    const StatSet& ics = system.core(0).l1i().cache().stats();
    r.l1i_fetches = is.value("fetches");
    r.l1i_fill_words =
        ics.value("fills") * (system.core(0).l1i().cache().line_bytes() / 4);
    r.l1i_corrected = ics.value("ecc_corrected");
    r.l1i_detected_uncorrectable = ics.value("ecc_detected_uncorrectable");
    r.l1i_refetches = is.value("parity_refetches");
    r.l1i_stats.add(is);
    r.l1i_stats.add(ics);
  }
  const StatSet& l2cs = system.memsys().l2().stats();
  const StatSet& mss = system.memsys().stats();
  r.l2_reads = l2cs.value("reads");
  r.l2_writes = l2cs.value("writes");
  r.l2_fill_words =
      l2cs.value("fills") * (system.memsys().l2().line_bytes() / 4);
  r.l2_corrected = l2cs.value("ecc_corrected");
  r.l2_corrected_adjacent = l2cs.value("ecc_corrected_adjacent");
  r.l2_detected_uncorrectable = l2cs.value("ecc_detected_uncorrectable");
  r.l2_refetches = mss.value("l2_refetches");
  r.l2_data_loss_events = mss.value("l2_data_loss_events");
  r.l2_stats.add(l2cs);
  r.l2_stats.add(mss);

  r.pipeline_stats.add(ps);
  r.dl1_stats.add(ds);
  r.dl1_stats.add(cs);
  r.bus_stats.add(bs);
  return r;
}

unsigned injector_word_bits(const SimConfig& cfg) {
  const HierarchyDeployment dep = cfg.effective_deployment();
  std::string_view codec_key = dep.codec;
  if (cfg.inject_target == InjectTarget::kL1i) codec_key = dep.l1i.codec;
  if (cfg.inject_target == InjectTarget::kL2) codec_key = dep.l2.codec;
  const auto codec = ecc::make_codec(codec_key);
  return codec->check_bits() == 0 ? codec->data_bits()
                                  : codec->codeword_bits();
}

std::unique_ptr<ecc::FaultInjector> attach_injector(sim::System& system,
                                                    const SimConfig& cfg) {
  if (!cfg.faults.has_value()) return nullptr;
  // Size the flip universe to the targeted level's deployed codec codeword
  // (data + check bits) so fault rates stay comparable across schemes.
  ecc::InjectorConfig icfg = *cfg.faults;
  icfg.word_bits = injector_word_bits(cfg);
  auto injector = std::make_unique<ecc::FaultInjector>(icfg);
  switch (cfg.inject_target) {
    case InjectTarget::kDl1:
      system.core(0).dl1().set_injector(injector.get());
      break;
    case InjectTarget::kL1i:
      if (!system.core(0).has_l1i()) {
        throw std::invalid_argument(
            "inject_target=l1i requires program mode: the calibrated-trace "
            "(oracle) core keeps no instruction cache");
      }
      system.core(0).l1i().set_injector(injector.get());
      break;
    case InjectTarget::kL2:
      system.memsys().l2().set_injector(injector.get());
      break;
  }
  return injector;
}

void attach_recorder(sim::System& system, const SimConfig& cfg,
                     mem::ResidencyRecorder* recorder) {
  recorder->bind_clock(system.cycle_counter());
  switch (cfg.inject_target) {
    case InjectTarget::kDl1:
      system.core(0).dl1().cache().set_recorder(recorder);
      break;
    case InjectTarget::kL1i:
      if (!system.core(0).has_l1i()) {
        throw std::invalid_argument(
            "inject_target=l1i requires program mode: the calibrated-trace "
            "(oracle) core keeps no instruction cache");
      }
      system.core(0).l1i().cache().set_recorder(recorder);
      break;
    case InjectTarget::kL2:
      system.memsys().l2().set_recorder(recorder);
      break;
  }
}

ProgramRun run_program_keep_system(const SimConfig& cfg,
                                   const isa::Program& program,
                                   mem::ResidencyRecorder* recorder,
                                   sim::SnapshotStore* snapshots) {
  ProgramRun r;
  r.system =
      std::make_unique<sim::System>(make_system_config(cfg, /*trace_mode=*/false));
  r.injector = attach_injector(*r.system, cfg);
  if (recorder != nullptr) attach_recorder(*r.system, cfg, recorder);
  r.system->load_program(program);
  sim::System::RunResult run;
  if (snapshots != nullptr && snapshots->every() > 0) {
    if (recorder == nullptr) {
      throw std::invalid_argument(
          "snapshot capture requires a residency recorder: its live-window "
          "count is the injector-consultation clock snapshots are keyed by");
    }
    // Mirror sim::System::run, dropping a snapshot whenever the targeted
    // array's consultation count crosses the capture cadence. The ordinal
    // recorded with each snapshot is the EXACT consultation count at
    // capture (which may overshoot the threshold when one cycle performs
    // several reads); a trial restoring it fast-forwards to that count.
    sim::System& sys = *r.system;
    u64 next_threshold = snapshots->every();
    while (!sys.core(0).halted() && sys.now() < cfg.max_cycles) {
      sys.tick();
      const u64 consults = recorder->live_windows();
      if (consults >= next_threshold) {
        if (snapshots->begin_capture()) {
          obs::Span span("snapshot-capture");
          span.arg("ordinal", consults);
          span.arg("cycle", sys.now());
          snapshots->add(consults, sys.now(), sim::save_system_state(sys));
          obs::Registry::global().counter("snapshot.captures").add();
        }
        next_threshold = consults + snapshots->every();
      }
    }
    run.completed = sys.core(0).halted();
    run.cycles = sys.core(0).pipeline().stats().value("cycles");
  } else {
    run = r.system->run();
  }
  // Close trailing windows before stats/self-check flushes touch the
  // arrays (flush paths never consult the injector, so they are invisible
  // to the recorded consultation sequence either way).
  if (recorder != nullptr) recorder->finalize();
  r.stats = collect_stats(*r.system, run.completed);
  return r;
}

ProgramRun run_program_resume(const SimConfig& cfg, const std::string& blob,
                              u64 consult_ordinal) {
  ProgramRun r;
  r.system =
      std::make_unique<sim::System>(make_system_config(cfg, /*trace_mode=*/false));
  // Restore first, THEN attach the injector: set_injector marks the array's
  // sticky ever_injected_ flag, and the replay-mode injector consumes no RNG,
  // so attachment order cannot perturb the simulated suffix.
  {
    obs::Span span("snapshot-restore");
    span.arg("ordinal", consult_ordinal);
    span.arg("bytes", static_cast<u64>(blob.size()));
    sim::restore_system_state(*r.system, blob);
    obs::Registry::global().counter("snapshot.restores").add();
  }
  r.injector = attach_injector(*r.system, cfg);
  if (r.injector != nullptr) r.injector->fast_forward(consult_ordinal);
  const auto run = r.system->run();
  r.stats = collect_stats(*r.system, run.completed);
  return r;
}

RunStats run_program(const SimConfig& cfg, const isa::Program& program) {
  return run_program_keep_system(cfg, program).stats;
}

RunStats run_trace(const SimConfig& cfg, cpu::TraceSource& trace) {
  if (cfg.faults.has_value()) {
    throw std::invalid_argument(
        "fault injection requires program mode: the calibrated-trace "
        "(oracle) DL1 keeps no arrays to inject into");
  }
  sim::System system(make_system_config(cfg, /*trace_mode=*/true), &trace);
  const auto run = system.run();
  return collect_stats(system, run.completed);
}

}  // namespace laec::core
