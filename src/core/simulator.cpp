#include "core/simulator.hpp"

#include <memory>
#include <stdexcept>

#include "ecc/registry.hpp"

namespace laec::core {

sim::SystemConfig make_system_config(const SimConfig& cfg, bool trace_mode) {
  sim::SystemConfig sc;
  sc.num_cores = cfg.num_cores;
  sc.max_cycles = cfg.max_cycles;
  sc.traffic = cfg.traffic;

  sc.memsys.bus.request_cycles = cfg.bus_request_cycles;
  sc.memsys.bus.response_cycles = cfg.bus_response_cycles;
  sc.memsys.l2.hit_cycles = cfg.l2_hit_cycles;
  sc.memsys.l2.write_cycles = cfg.l2_write_cycles;
  sc.memsys.l2.memory_cycles = cfg.memory_cycles;

  cpu::PipelineParams& pp = sc.core.pipeline;
  pp.hazard_rule = cfg.hazard_rule;
  pp.ecc_slot = cfg.ecc_slot;
  pp.stride_predictor = cfg.stride_predictor;
  pp.mul_latency = cfg.mul_latency;
  pp.div_latency = cfg.div_latency;
  pp.record_chronogram = cfg.record_chronogram;
  pp.lookahead_under_branch_shadow = cfg.lookahead_under_branch_shadow;
  pp.max_cycles = cfg.max_cycles;

  // Expand the scheme descriptor: codec, write policy and stage placement
  // all flow from the (possibly string-keyed) deployment.
  const EccDeployment dep = cfg.effective_deployment();
  pp.ecc = dep.timing;

  mem::CacheConfig& dc = sc.core.dl1.cache;
  dc.size_bytes = cfg.dl1_size_bytes;
  dc.ways = cfg.dl1_ways;
  dc.line_bytes = cfg.dl1_line_bytes;
  dc.write_policy = dep.write_policy;
  dc.alloc_policy = dep.alloc_policy;
  dc.codec = ecc::make_codec(dep.codec);
  sc.core.dl1.oracle.enabled = trace_mode;
  sc.core.dl1.oracle.miss_cycles = cfg.oracle_miss_cycles;

  sc.core.l1i.cache.size_bytes = cfg.l1i_size_bytes;
  sc.core.l1i.cache.line_bytes = cfg.dl1_line_bytes;
  sc.core.wbuf.depth = cfg.write_buffer_depth;
  return sc;
}

RunStats collect_stats(sim::System& system, bool completed) {
  RunStats r;
  r.completed = completed;
  const StatSet& ps = system.core(0).pipeline().stats();
  const StatSet& ds = system.core(0).dl1().stats();
  const StatSet& cs = system.core(0).dl1().cache().stats();
  const StatSet& bs = system.memsys().bus().stats();

  r.cycles = ps.value("cycles");
  r.instructions = ps.value("instructions");
  r.cpi = r.instructions == 0
              ? 0.0
              : static_cast<double>(r.cycles) /
                    static_cast<double>(r.instructions);
  r.loads = ps.value("loads");
  r.load_hits = ps.value("load_hits");
  r.stores = ps.value("stores");
  r.dep_loads = ps.value("dep_loads");
  r.laec_anticipated = ps.value("laec_anticipated");
  r.laec_data_hazard = ps.value("laec_data_hazard");
  r.laec_resource_hazard = ps.value("laec_resource_hazard");
  r.ecc_corrected = cs.value("ecc_corrected");
  r.ecc_corrected_adjacent = cs.value("ecc_corrected_adjacent");
  r.ecc_detected_uncorrectable = cs.value("ecc_detected_uncorrectable");
  r.parity_refetches = ds.value("parity_refetches");
  r.data_loss_events = ds.value("data_loss_events");
  r.bus_transactions = bs.value("transactions");
  r.bus_wait_cycles = bs.value("wait_cycles");

  r.pipeline_stats.add(ps);
  r.dl1_stats.add(ds);
  r.dl1_stats.add(cs);
  r.bus_stats.add(bs);
  return r;
}

ProgramRun run_program_keep_system(const SimConfig& cfg,
                                   const isa::Program& program) {
  ProgramRun r;
  r.system =
      std::make_unique<sim::System>(make_system_config(cfg, /*trace_mode=*/false));
  if (cfg.dl1_faults.has_value()) {
    // Size the flip universe to the deployed codec's codeword (data + check
    // bits) so fault rates stay comparable across schemes.
    ecc::InjectorConfig icfg = *cfg.dl1_faults;
    const auto codec = ecc::make_codec(cfg.effective_deployment().codec);
    icfg.word_bits = codec->check_bits() == 0 ? codec->data_bits()
                                              : codec->codeword_bits();
    r.injector = std::make_unique<ecc::FaultInjector>(icfg);
    r.system->core(0).dl1().set_injector(r.injector.get());
  }
  r.system->load_program(program);
  const auto run = r.system->run();
  r.stats = collect_stats(*r.system, run.completed);
  return r;
}

RunStats run_program(const SimConfig& cfg, const isa::Program& program) {
  return run_program_keep_system(cfg, program).stats;
}

RunStats run_trace(const SimConfig& cfg, cpu::TraceSource& trace) {
  if (cfg.dl1_faults.has_value()) {
    throw std::invalid_argument(
        "fault injection requires program mode: the calibrated-trace "
        "(oracle) DL1 keeps no arrays to inject into");
  }
  sim::System system(make_system_config(cfg, /*trace_mode=*/true), &trace);
  const auto run = system.run();
  return collect_stats(system, run.completed);
}

}  // namespace laec::core
