// Stride-based address prediction — the alternative look-ahead mechanism
// the paper mentions and deliberately does not pursue (§III.A: "cache
// designs could incorporate a predictor similar to the ones employed in
// hardware data prefetchers"). Implemented here as an *extension* so the
// trade-off can be measured (bench/ablation_predictor).
//
// Composition with LAEC: when the exact look-ahead is blocked by a data
// hazard, a confident stride prediction lets the DL1 read still happen in
// EX, in parallel with the real address computation. The true address is
// compared in the same cycle, so no wrong data can ever be consumed and no
// flush hardware is needed:
//   * match  -> the early read was valid; SECDED checks in M (LAEC timing);
//   * mismatch -> the read is discarded and the Memory stage replays the
//     access on the true address (Extra Stage timing) — the only costs are
//     a wasted DL1 read (energy) and the port occupancy.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"

namespace laec::service {
class ByteWriter;
class ByteReader;
}  // namespace laec::service

namespace laec::core {

struct StridePredictorParams {
  unsigned entries = 64;        ///< direct-mapped by PC
  unsigned confidence_max = 3;  ///< saturating counter ceiling
  unsigned confidence_predict = 2;  ///< minimum confidence to predict
};

class StridePredictor {
 public:
  explicit StridePredictor(const StridePredictorParams& p = {});

  /// Predicted effective address for the load at `pc`, if confident.
  [[nodiscard]] std::optional<Addr> predict(Addr pc) const;

  /// Learn from the resolved address of the load at `pc`.
  void train(Addr pc, Addr actual);

  [[nodiscard]] u64 lookups() const { return lookups_; }
  [[nodiscard]] u64 predictions() const { return predictions_; }

  /// Snapshot support: table contents and lookup/prediction counters.
  void save_state(service::ByteWriter& w) const;
  void restore_state(service::ByteReader& r);

 private:
  struct Entry {
    bool valid = false;
    Addr pc_tag = 0;
    Addr last_addr = 0;
    i32 stride = 0;
    unsigned confidence = 0;
  };

  [[nodiscard]] std::size_t index(Addr pc) const {
    return (pc >> 2) % params_.entries;
  }

  StridePredictorParams params_;
  std::vector<Entry> table_;
  mutable u64 lookups_ = 0;
  mutable u64 predictions_ = 0;
};

}  // namespace laec::core
