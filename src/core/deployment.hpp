// HierarchyDeployment: ECC protection for the whole cache hierarchy,
// fully described.
//
// The NGMP-like machine stores real check bits in three arrays — the DL1,
// the L1I and the shared L2 — and every one of them is a deployment slot
// for any registered ecc::Codec. A HierarchyDeployment names, per cache:
// WHICH codec protects the array (a registry key), whether corrections are
// scrubbed back into the array, and HOW detected errors are recovered
// (correct-in-place vs invalidate-and-refetch). For the DL1 it additionally
// fixes the paper's two pipeline-facing choices: the cache write policy
// (write-back vs write-through) and WHERE the check lands in the pipeline
// (the timing placement the cpu::EccPolicy enum models). Everything
// downstream — SimConfig, the sweep grid, CSV rows, the CLI — selects
// schemes by deployment key, so a new codec rides through the whole stack
// without touching an enum.
//
// Keys accepted by parse() are '+'-separated segments. The first segment
// describes the DL1:
//   * a policy name        — "no-ecc", "extra-cycle", "extra-stage",
//                            "laec", "wt-parity": the paper's deployments
//                            with their canonical codecs;
//   * a codec name         — e.g. "sec-daec-39-32": that codec in the
//                            write-back DL1 under the LAEC placement
//                            (detect-only codecs get the write-through
//                            parity arrangement instead);
//   * "placement:codec"    — e.g. "extra-stage:sec-daec-39-32": explicit
//                            placement with an explicit codec.
// Later segments override the other levels ("l1i:<codec>", "l2:<codec>")
// or the DL1 ("dl1:<codec>"); unnamed levels keep their canonical defaults
// (L1I: parity-32 with invalidate-and-refetch, L2: secded-39-32 with
// correct-in-place), so every pre-existing single-level key still parses.
// Any codec-carrying segment accepts trailing option flags:
//   :scrub / :no-scrub     — write corrected words back into the array;
//   :correct / :refetch    — recovery policy (":correct" needs a
//                            correcting codec).
// Example: "laec+l1i:secded-39-32+l2:sec-daec-39-32:no-scrub".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cpu/pipeline_config.hpp"
#include "mem/cache.hpp"

namespace laec::core {

/// Protection of one non-DL1 cache level (the DL1's extra pipeline-facing
/// knobs live on HierarchyDeployment itself).
struct LevelDeployment {
  /// Registry key of the level's word codec (ecc::make_codec(codec)).
  std::string codec = "none";
  bool scrub_on_correct = false;
  mem::RecoveryPolicy recovery = mem::RecoveryPolicy::kInvalidateRefetch;

  [[nodiscard]] bool operator==(const LevelDeployment&) const = default;
};

struct HierarchyDeployment {
  /// Canonical scheme key (what CSV rows report as "ecc"). Single-level
  /// keys canonicalize to themselves — a bare codec key keeps its codec
  /// spelling even when it expands to the same arrangement as a policy key
  /// ("secded-39-32" never aliases to "laec"); redundant level segments
  /// that merely restate a default are dropped.
  std::string name = "no-ecc";

  // --- DL1 ----------------------------------------------------------------
  /// The DL1 segment's base spelling (policy name, codec name, or
  /// "placement:codec", flags excluded) — what canonical_key() rebuilds
  /// the key from.
  std::string dl1_key = "no-ecc";
  /// Registry key of the DL1 word codec.
  std::string codec = "none";
  /// Pipeline stage placement of the DL1 check (the legacy enum, kept as
  /// the timing-model shim).
  cpu::EccPolicy timing = cpu::EccPolicy::kNoEcc;
  mem::WritePolicy write_policy = mem::WritePolicy::kWriteBack;
  mem::AllocPolicy alloc_policy = mem::AllocPolicy::kWriteAllocate;
  bool scrub_on_correct = false;
  mem::RecoveryPolicy recovery = mem::RecoveryPolicy::kInvalidateRefetch;

  // --- the other protected arrays ----------------------------------------
  LevelDeployment l1i = l1i_default();
  LevelDeployment l2 = l2_default();

  /// The canonical deployment behind one of the paper's five policies.
  [[nodiscard]] static HierarchyDeployment from_policy(cpu::EccPolicy p);

  /// Parse a compound scheme key (see file comment). Throws
  /// std::invalid_argument with the known choices when a segment names
  /// neither a policy, a registered codec, a valid placement:codec
  /// combination, nor a level override.
  [[nodiscard]] static HierarchyDeployment parse(std::string_view key);

  /// The five built-in policy keys, baseline first (Fig. 8 order plus the
  /// write-through motivation row).
  [[nodiscard]] static const std::vector<std::string>& policy_keys();

  /// Canonical defaults of the unnamed levels: the LEON-style parity L1I
  /// and the SECDED L2 every deployment ships with unless overridden.
  [[nodiscard]] static const LevelDeployment& l1i_default();
  [[nodiscard]] static const LevelDeployment& l2_default();

  /// Canonical compound key: the DL1 segment plus one segment per level
  /// that differs from its default. parse(canonical_key()) reproduces this
  /// deployment exactly (the round-trip the sweep CSV relies on).
  [[nodiscard]] std::string canonical_key() const;
};

/// Legacy name: PRs 1-2 described only the DL1 slot; the descriptor now
/// covers the hierarchy but every single-level call site still works.
using EccDeployment = HierarchyDeployment;

[[nodiscard]] inline std::string_view to_string(const HierarchyDeployment& d) {
  return d.name;
}

}  // namespace laec::core
