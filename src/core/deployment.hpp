// EccDeployment: one DL1 protection scheme, fully described.
//
// A deployment names the three independent choices the paper's schemes
// bundle together: WHICH codec protects the array (a registry key), HOW the
// cache is written (write-back vs write-through), and WHERE the check lands
// in the pipeline (the timing placement the cpu::EccPolicy enum models).
// Everything downstream — SimConfig, the sweep grid, CSV rows, the CLI —
// selects schemes by deployment key, so a new codec rides through the whole
// stack without touching an enum.
//
// Keys accepted by parse():
//   * a policy name        — "no-ecc", "extra-cycle", "extra-stage",
//                            "laec", "wt-parity": the paper's deployments
//                            with their canonical codecs;
//   * a codec name         — e.g. "sec-daec-39-32": that codec in the
//                            write-back DL1 under the LAEC placement
//                            (detect-only codecs get the write-through
//                            parity arrangement instead);
//   * "placement:codec"    — e.g. "extra-stage:sec-daec-39-32": explicit
//                            placement with an explicit codec.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cpu/pipeline_config.hpp"
#include "mem/cache.hpp"

namespace laec::core {

struct EccDeployment {
  /// Scheme key as the user selected it (what CSV rows report as "ecc").
  std::string name = "no-ecc";
  /// Registry key of the DL1 word codec (ecc::make_codec(codec)).
  std::string codec = "none";
  /// Pipeline stage placement of the DL1 check (the legacy enum, kept as
  /// the timing-model shim).
  cpu::EccPolicy timing = cpu::EccPolicy::kNoEcc;
  mem::WritePolicy write_policy = mem::WritePolicy::kWriteBack;
  mem::AllocPolicy alloc_policy = mem::AllocPolicy::kWriteAllocate;

  /// The canonical deployment behind one of the paper's five policies.
  [[nodiscard]] static EccDeployment from_policy(cpu::EccPolicy p);

  /// Parse a scheme key (see file comment). Throws std::invalid_argument
  /// with the known choices when the key names neither a policy, a
  /// registered codec, nor a valid placement:codec combination.
  [[nodiscard]] static EccDeployment parse(std::string_view key);

  /// The five built-in policy keys, baseline first (Fig. 8 order plus the
  /// write-through motivation row).
  [[nodiscard]] static const std::vector<std::string>& policy_keys();
};

[[nodiscard]] inline std::string_view to_string(const EccDeployment& d) {
  return d.name;
}

}  // namespace laec::core
