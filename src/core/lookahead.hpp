// LAEC — the paper's contribution (§III.A, §III.E).
//
// When a load sits in the Register Access stage, this unit decides whether
// the whole DL1 access pipeline (address generation, array read, SECDED
// check) can be hoisted one cycle:
//
//   1. no data hazard  — every address source register must be obtainable
//      one cycle early, through the two extra register-file read ports or an
//      existing bypass. Under HazardRule::kExact this is the operand-
//      earliness test (available by the end of the cycle before RA); under
//      kPaperLiteral the paper's distance-1-producer test is additionally
//      applied verbatim.
//   2. no resource hazard — the immediately preceding instruction must not
//      be a non-anticipated load, whose Memory-stage DL1 read would collide
//      with our Execute-stage read on the single DL1 port.
//
// A load that passes both reads the DL1 in EX and checks the code in M, so
// its checked data is bypassable exactly as early as an unprotected load's —
// the anticipation cancels the ECC stage. A load that fails either test
// falls back to the Extra Stage path, so LAEC is never slower than Extra
// Stage (a property test in tests/test_laec.cpp enforces this paper claim).
//
// This file lives in src/core (it is the paper's mechanism) but compiles
// into the cpu library, which owns the pipeline internals it inspects.
#pragma once

#include "common/types.hpp"
#include "cpu/pipeline.hpp"

namespace laec::core {

struct LookaheadDecision {
  bool anticipate = false;
  cpu::LookaheadOutcome outcome = cpu::LookaheadOutcome::kPolicyOff;
};

class LookaheadUnit {
 public:
  explicit LookaheadUnit(const cpu::PipelineParams& params)
      : params_(params) {}

  /// Decide for the load occupying RA during `ra_cycle`. Pure: no state is
  /// mutated; the pipeline re-evaluates every RA cycle until dispatch.
  [[nodiscard]] LookaheadDecision decide(const cpu::Pipeline& pipe,
                                         Seq load_seq, Cycle ra_cycle) const;

 private:
  const cpu::PipelineParams& params_;
};

}  // namespace laec::core
