#include "core/lookahead.hpp"

namespace laec::core {

using cpu::LookaheadOutcome;
using cpu::Pipeline;

LookaheadDecision LookaheadUnit::decide(const Pipeline& pipe, Seq load_seq,
                                        Cycle ra_cycle) const {
  LookaheadDecision d;
  if (params_.ecc != cpu::EccPolicy::kLaec) {
    d.outcome = LookaheadOutcome::kPolicyOff;
    return d;
  }
  const Pipeline::Slot* load = pipe.find_seq(load_seq);
  if (load == nullptr || !load->inst.is_load()) {
    d.outcome = LookaheadOutcome::kPolicyOff;
    return d;
  }

  // Optional conservative rule: no early address generation in the shadow
  // of an unresolved branch (only a distance-1 branch can still be
  // unresolved while the load is in RA).
  if (!params_.lookahead_under_branch_shadow) {
    // A branch resolving in EX produces its outcome at the *end* of the
    // cycle; the RA-stage logic working during the same cycle must treat
    // it as unresolved. The simulator processes EX before RA (and may have
    // already advanced the branch into M), so scan all older in-flight
    // branches for one still unresolved or resolved only this cycle.
    for (unsigned st = cpu::kF; st < cpu::kNumStages; ++st) {
      const Pipeline::Slot& b = pipe.slot(st);
      if (b.valid && b.seq < load_seq && b.inst.is_branch() &&
          (!b.branch_done || b.branch_resolve_cycle >= ra_cycle)) {
        d.outcome = LookaheadOutcome::kBranchShadow;
        return d;
      }
    }
  }

  // Data hazard: every address source must be ready one cycle earlier than
  // a normal load would need it — i.e. by the end of cycle ra_cycle-1, so
  // the RA-stage adder can consume it during ra_cycle.
  for (const auto& src : load->inst.exec_srcs()) {
    if (!src.has_value()) continue;
    if (!pipe.operand_ready(*src, load_seq, ra_cycle)) {
      d.outcome = LookaheadOutcome::kDataHazard;
      return d;
    }
  }

  const Pipeline::Slot* prev =
      load_seq == 0 ? nullptr : pipe.find_seq(load_seq - 1);

  if (params_.hazard_rule == cpu::HazardRule::kPaperLiteral) {
    // Paper-literal add-on: "when the instruction prior to the load
    // produces the address register of the load, we cannot anticipate".
    // Applied even if bubbles mean the value would actually arrive in time.
    if (prev != nullptr && prev->valid) {
      const auto dest = prev->inst.dest();
      if (dest.has_value()) {
        for (const auto& src : load->inst.exec_srcs()) {
          if (src.has_value() && *src == *dest) {
            d.outcome = LookaheadOutcome::kDataHazard;
            return d;
          }
        }
      }
    }
  }

  // Resource hazard: the previous instruction is a non-anticipated load
  // about to occupy the DL1 port from its Memory stage in exactly the cycle
  // our anticipated Execute-stage read would need it (lockstep case). At
  // evaluation time it is either still in EX, or already moved into M this
  // cycle with its access still ahead of it (the simulator processes EX
  // before RA, so "in M, access not yet performed" is the same lockstep
  // situation). Residual collisions from stall skew are caught dynamically
  // at EX entry.
  if (prev != nullptr && prev->valid && prev->inst.is_load() &&
      !prev->anticipated) {
    const auto st = pipe.stage_of(prev);
    if (st == cpu::kEX || (st == cpu::kM && !prev->mem_done)) {
      d.outcome = LookaheadOutcome::kResourceHazard;
      return d;
    }
  }

  d.anticipate = true;
  d.outcome = LookaheadOutcome::kAnticipated;
  return d;
}

}  // namespace laec::core
