#include "core/predictor.hpp"

#include <optional>

namespace laec::core {

StridePredictor::StridePredictor(const StridePredictorParams& p)
    : params_(p), table_(p.entries) {}

std::optional<Addr> StridePredictor::predict(Addr pc) const {
  ++lookups_;
  const Entry& e = table_[index(pc)];
  if (!e.valid || e.pc_tag != pc ||
      e.confidence < params_.confidence_predict) {
    return std::nullopt;
  }
  ++predictions_;
  return e.last_addr + static_cast<Addr>(e.stride);
}

void StridePredictor::train(Addr pc, Addr actual) {
  Entry& e = table_[index(pc)];
  if (!e.valid || e.pc_tag != pc) {
    e = Entry{true, pc, actual, 0, 0};
    return;
  }
  const i32 observed =
      static_cast<i32>(actual) - static_cast<i32>(e.last_addr);
  if (observed == e.stride) {
    if (e.confidence < params_.confidence_max) ++e.confidence;
  } else if (e.confidence > 0) {
    --e.confidence;
  } else {
    e.stride = observed;
  }
  e.last_addr = actual;
}

}  // namespace laec::core
