#include "core/predictor.hpp"

#include <optional>

#include "service/wire.hpp"

namespace laec::core {

StridePredictor::StridePredictor(const StridePredictorParams& p)
    : params_(p), table_(p.entries) {}

std::optional<Addr> StridePredictor::predict(Addr pc) const {
  ++lookups_;
  const Entry& e = table_[index(pc)];
  if (!e.valid || e.pc_tag != pc ||
      e.confidence < params_.confidence_predict) {
    return std::nullopt;
  }
  ++predictions_;
  return e.last_addr + static_cast<Addr>(e.stride);
}

void StridePredictor::train(Addr pc, Addr actual) {
  Entry& e = table_[index(pc)];
  if (!e.valid || e.pc_tag != pc) {
    e = Entry{true, pc, actual, 0, 0};
    return;
  }
  const i32 observed =
      static_cast<i32>(actual) - static_cast<i32>(e.last_addr);
  if (observed == e.stride) {
    if (e.confidence < params_.confidence_max) ++e.confidence;
  } else if (e.confidence > 0) {
    --e.confidence;
  } else {
    e.stride = observed;
  }
  e.last_addr = actual;
}

void StridePredictor::save_state(service::ByteWriter& w) const {
  w.put_u32(static_cast<u32>(table_.size()));
  for (const Entry& e : table_) {
    w.put_u8(e.valid ? 1 : 0);
    w.put_u32(e.pc_tag);
    w.put_u32(e.last_addr);
    w.put_u32(static_cast<u32>(e.stride));
    w.put_u32(e.confidence);
  }
  w.put_u64(lookups_);
  w.put_u64(predictions_);
}

void StridePredictor::restore_state(service::ByteReader& r) {
  if (r.get_u32() != table_.size()) {
    throw service::WireError("snapshot: stride-predictor size mismatch");
  }
  for (Entry& e : table_) {
    e.valid = r.get_u8() != 0;
    e.pc_tag = r.get_u32();
    e.last_addr = r.get_u32();
    e.stride = static_cast<i32>(r.get_u32());
    e.confidence = r.get_u32();
  }
  lookups_ = r.get_u64();
  predictions_ = r.get_u64();
}

}  // namespace laec::core
