// Monte Carlo reliability campaigns: SEU/MBU sampling -> per-scheme
// FIT / MTTF / AVF with confidence intervals.
//
// The paper's argument — and the whole SEC-DAEC(-TAEC) design space around
// it — is a reliability-per-cost trade, yet raw fault-injection counters
// ("this run saw 37 corrections") say nothing about failure RATES. This
// subsystem turns the existing pieces (SweepRunner trials, the codec
// registry, the pattern-table injector) into a statistics-grade evaluator:
//
//   * a campaign cell is one (workload, scheme, rate) point; the rate is a
//     raw per-bit SEU rate in FIT/Mbit (technology-node presets bundle the
//     rate with that node's characteristic MBU shape mix);
//   * fault arrivals are a Poisson process in device time, accelerated by
//     spec.accel so upsets actually land inside a few hundred microseconds
//     of simulated execution: the per-access event probability is
//     1 - exp(-rate_bit * codeword_bits * accel * exposure), the chance at
//     least one (accelerated) upset struck the word during its exposure
//     window; the event's spatial shape (single / adjacent-double /
//     adjacent-triple / clustered) is drawn from the cell's MBU pattern
//     table and lands on live codeword bits of the targeted cache;
//   * every cell runs N independent trials (SweepPoint replicates — same
//     trace, independent fault sequences, paired across schemes) and each
//     trial is classified by severity: masked, corrected, DUE-recovered,
//     SDC (self-check failed with nothing detected) or data-loss;
//   * failures (SDC + data-loss) over the trials' de-accelerated
//     device-hours give FIT and MTTF, with Wilson confidence intervals;
//     AVF is the per-fault derating factor (failing trials per injected
//     event). An optional sequential stopping rule ends a cell early once
//     its CI is tight enough.
//
// Determinism contract (same as the sweep runner's): rows are identical at
// any --threads, and run_campaign_procs merges per-process shard files
// byte-identically to a single-process run. Trial seeds derive from
// (base_seed, workload identity, trial index) — never from thread or
// process layout — and the stopping rule sees each cell's own trials only,
// so sharding cells across machines/processes cannot change any cell's
// trajectory.
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/simulator.hpp"
#include "ecc/injector.hpp"
#include "reliability/stats.hpp"
#include "report/sink.hpp"
#include "runner/sweep_runner.hpp"

namespace laec::reliability {

/// One point of the rate axis: a raw per-bit SEU rate plus the MBU shape
/// mix it arrives with.
struct RatePoint {
  std::string label;  ///< what the CSV "rate" column reports
  double fit_per_mbit = 1000.0;
  ecc::MbuPatternTable patterns;
};

/// Technology-node presets: per-bit SEU rates and MBU shape mixes
/// proportioned like the published scaling trend (raw per-bit SER shrinks
/// with the node while the multi-cell share grows). Synthetic but
/// literature-proportioned, like the energy model's CACTI substitution —
/// ratios between nodes are meaningful, absolute FIT is a placeholder.
[[nodiscard]] const std::vector<RatePoint>& tech_presets();

/// Look up a preset by name ("65nm", "40nm", "28nm"); nullopt if unknown.
[[nodiscard]] std::optional<RatePoint> tech_preset(std::string_view name);

/// Parse a rate-axis token: a preset name, or a numeric FIT/Mbit value
/// (which inherits `default_patterns`). nullopt for an unparsable token.
[[nodiscard]] std::optional<RatePoint> parse_rate(
    std::string_view token, const ecc::MbuPatternTable& default_patterns);

/// Campaign-wide knobs (the per-cell axes live in CampaignGrid).
struct CampaignSpec {
  /// Fault-process time acceleration. 1e16 makes a ~1000 FIT/Mbit storm
  /// land a handful of events on a typical kernel trial.
  double accel = 1e16;
  /// Legacy fixed exposure window, in cycles. Campaign trials now measure
  /// true per-word inter-access gaps from the golden run (see
  /// reliability/schedule.hpp); this knob only feeds the historical
  /// event_prob_for/event_lambda_for helpers (kept for tests and direct
  /// injector users) and remains part of the campaign identity hash.
  unsigned exposure_cycles = 1000;
  double freq_mhz = 150.0;  ///< LEON4-class clock (Table I)
  /// Trials per cell (the maximum, when the stopping rule is armed).
  unsigned trials = 96;
  /// Trials to run before the stopping rule may fire.
  unsigned min_trials = 24;
  /// Stopping-rule check granularity (and scheduling batch size).
  unsigned batch = 24;
  double confidence = 0.95;
  /// Sequential stopping: end a cell once the Wilson CI half-width on its
  /// failure probability drops to this, checked at batch boundaries after
  /// min_trials. 0 disables early stopping (always run `trials`).
  double target_half_width = 0.0;
  /// Which cache array the storm strikes.
  core::InjectTarget target = core::InjectTarget::kDl1;
  /// Two-pass pruning (the default): run each cell's workload once
  /// fault-free with a residency recorder, pre-draw every trial's storm
  /// over the recorded exposure windows, and classify trials whose events
  /// all land on dead windows WITHOUT simulating them (their device-hours
  /// are accounted analytically from the golden run). Rows are
  /// byte-identical with pruning on or off — `prune = false` is the
  /// simulate-everything reference path, same contract as
  /// CacheConfig::use_lut_decode.
  bool prune = true;
  /// Snapshot fast-forward (the default): the golden run drops full-state
  /// snapshots every `snapshot_every` injector consultations (under the
  /// `snapshot_mem_mb` budget, keep-every-k thinned), and every simulated
  /// trial restores the latest snapshot at-or-before its first delivery
  /// ordinal instead of re-simulating the fault-free prefix. Rows are
  /// byte-identical with fast-forward on or off — `fast_forward = false` is
  /// the simulate-everything reference path, same contract shape as `prune`
  /// and CacheConfig::use_lut_decode. Composes multiplicatively with
  /// pruning: pruning kills dead-storm trials, fast-forward shrinks the
  /// live ones.
  bool fast_forward = true;
  /// Golden-run snapshot cadence, in injector-consultation ordinals.
  /// 0 disables capture (and therefore fast-forwarding). The default is a
  /// measured balance: finer strides shave a little more fault-free prefix
  /// per trial but the golden run pays capture cost per snapshot, and past
  /// ~stride 256 the capture savings dominate on every EEMBC-class kernel.
  unsigned snapshot_every = 256;
  /// Per-(workload, scheme) snapshot byte budget in MiB; keep-every-k
  /// thinning halves snapshot density whenever it would be exceeded.
  /// 0 = unlimited.
  unsigned snapshot_mem_mb = 256;
  /// Geometry / latency base configuration of every trial.
  core::SimConfig base;
};

/// One campaign cell: a (workload, scheme, rate) grid point.
struct CampaignCell {
  std::size_t index = 0;  ///< position in the expanded grid (stable)
  std::string workload;
  std::string scheme;  ///< HierarchyDeployment key
  RatePoint rate;
};

/// Cross-product grid builder, SweepGrid's shape: workload (outer) x
/// scheme x rate (inner).
class CampaignGrid {
 public:
  CampaignGrid& workloads(std::vector<std::string> names);
  CampaignGrid& all_workloads();
  CampaignGrid& schemes(std::vector<std::string> keys);
  CampaignGrid& rates(std::vector<RatePoint> rates);

  /// Expand into the deterministic cell list. Throws std::invalid_argument
  /// for unknown scheme keys or an empty/invalid rate axis.
  [[nodiscard]] std::vector<CampaignCell> cells() const;

 private:
  std::vector<std::string> workloads_;
  std::vector<std::string> schemes_{"laec"};
  std::vector<RatePoint> rates_;
};

/// Severity classification of one trial, worst outcome wins.
enum class TrialOutcome {
  kMasked,        ///< faults (if any) never surfaced: no event, clean output
  kCorrected,     ///< ECC repaired everything in place
  kDueRecovered,  ///< detected-uncorrectable, recovered by refetch
  kSdc,           ///< silent data corruption: wrong output, nothing flagged
  kDataLoss,      ///< detected but unrecoverable (dirty-line DUE)
};

[[nodiscard]] constexpr std::string_view to_string(TrialOutcome o) {
  switch (o) {
    case TrialOutcome::kMasked: return "masked";
    case TrialOutcome::kCorrected: return "corrected";
    case TrialOutcome::kDueRecovered: return "due-recovered";
    case TrialOutcome::kSdc: return "sdc";
    case TrialOutcome::kDataLoss: return "data-loss";
  }
  return "invalid-trial-outcome";
}

/// Classify a finished trial (pure; exposed for tests).
[[nodiscard]] TrialOutcome classify_trial(const runner::PointResult& r);

/// Does the outcome count as a reliability FAILURE (feeds FIT/MTTF)?
[[nodiscard]] constexpr bool is_failure(TrialOutcome o) {
  return o == TrialOutcome::kSdc || o == TrialOutcome::kDataLoss;
}

/// The per-access upset-event probability the Poisson model yields for a
/// codeword of `codeword_bits` under `fit_per_mbit` accelerated by
/// spec.accel (see file comment).
[[nodiscard]] double event_prob_for(const CampaignSpec& spec,
                                    double fit_per_mbit,
                                    unsigned codeword_bits);

/// The raw Poisson mean behind event_prob_for: accelerated upset events per
/// codeword per exposure window. Fed to InjectorConfig::event_lambda so
/// saturated acceleration (event_prob -> 1) still draws multi-event windows
/// instead of collapsing them to single upsets.
[[nodiscard]] double event_lambda_for(const CampaignSpec& spec,
                                      double fit_per_mbit,
                                      unsigned codeword_bits);

/// Codeword width (data + check bits) of the cache level cfg's storm
/// targets — delegates to core::injector_word_bits, the same definition
/// attach_injector sizes the flip universe with.
[[nodiscard]] unsigned target_codeword_bits(const core::SimConfig& cfg);

/// Aggregated result of one cell.
struct CellResult {
  CampaignCell cell;
  /// Which array the storm struck (copied from the spec for the row).
  core::InjectTarget target = core::InjectTarget::kDl1;
  u64 trials = 0;
  u64 events = 0;  ///< fault events injected across the cell's trials
  /// Upset events the acceleration demanded but the per-access flip budget
  /// could not hold (extreme --accel saturation). Nonzero means the cell's
  /// effective injected rate is below the configured one — the campaign
  /// surfaces it as a CSV column instead of silently truncating.
  u64 events_dropped = 0;
  u64 masked = 0;
  u64 corrected = 0;
  u64 due_recovered = 0;
  u64 sdc = 0;
  u64 data_loss = 0;
  u64 total_cycles = 0;
  /// De-accelerated real device-hours the trials represent.
  double device_hours = 0.0;
  /// Per-fault derating factor: failing trials / injected events (0 when
  /// no event landed). The classic AVF-style estimate of P(fault ->
  /// failure); accurate when events-per-trial is around 1 (a trial counts
  /// at most one failure, so heavily accelerated storms understate it).
  double avf = 0.0;
  /// Trials whose pre-drawn storm was provably masked (every event on a
  /// dead exposure window). Counted identically with pruning on or off;
  /// only whether they were SIMULATED differs.
  u64 pruned = 0;
  /// Trials that had a golden snapshot at-or-before their first delivery
  /// ordinal available — i.e. whose fault-free prefix is (with
  /// spec.fast_forward) skipped by a snapshot restore. Like `pruned`,
  /// counted identically with fast-forward on or off (and with pruning on
  /// or off: pruned trials are excluded); only whether the restore actually
  /// HAPPENS differs, so rows stay byte-identical across modes.
  u64 fast_forwarded = 0;
  /// Simulated cycles those snapshots cover (the sum of each fast-forwarded
  /// trial's snapshot cycle): the heartbeat's estimate of simulation work
  /// the restores avoid. Not a CSV column — identical across modes but an
  /// estimate, not a measurement.
  u64 cycles_skipped = 0;
  /// Resident-time-weighted fault exposure: mean per-word inter-access gap
  /// in cycles over the golden run's recorded windows.
  double mean_exposure_cycles = 0.0;
  RateEstimate est;  ///< p_fail + CI, FIT (+ CI), MTTF

  [[nodiscard]] u64 failures() const { return sdc + data_loss; }
};

/// Restorable cursor of one cell mid-campaign: how many trials ran and the
/// severity counters they accumulated. Trial seeds derive from (base_seed,
/// workload identity, trial index), so "resume trial `done`" reproduces the
/// exact storm an uninterrupted run would have drawn — the cursor IS the
/// full per-cell RNG state. device_hours must round-trip bit-exactly
/// (checkpoints store its IEEE bits) to keep resumed rows byte-identical.
struct CellProgress {
  std::size_t index = 0;  ///< grid index of the cell
  unsigned done = 0;      ///< trials completed (the trial cursor)
  bool finished = false;  ///< trial budget exhausted or stopping rule fired
  u64 trials = 0;
  u64 events = 0;
  u64 events_dropped = 0;
  u64 masked = 0;
  u64 corrected = 0;
  u64 due_recovered = 0;
  u64 sdc = 0;
  u64 data_loss = 0;
  u64 total_cycles = 0;
  u64 pruned = 0;
  u64 fast_forwarded = 0;
  u64 cycles_skipped = 0;
  double device_hours = 0.0;
};

struct CampaignOptions {
  /// Worker threads of the inner trial sweeps; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Horizontal sharding over CELLS: this process runs cells with
  /// index % shard_count == shard_index.
  unsigned shard_count = 1;
  unsigned shard_index = 0;
  u64 base_seed = 0x1aec;
  /// Optional streaming sink; one row per finished cell, in grid order.
  report::RowWriter* sink = nullptr;
  /// Resume support: per-cell cursors restored before the first round
  /// (grid-index-matched; every entry must belong to this shard's slice).
  /// The caller (service checkpoint layer) owns validation of WHERE the
  /// cursors came from; run_campaign validates they fit this campaign.
  const std::vector<CellProgress>* resume_from = nullptr;
  /// Fired after every batched round (and therefore after the final one)
  /// with the current cursor of every cell in this shard's slice, in grid
  /// order. The checkpoint layer persists these; the CLI heartbeat renders
  /// them. Must not touch the sink.
  std::function<void(const std::vector<CellProgress>&)> on_round;
  /// Polled between rounds (after on_round). Returning true stops the
  /// campaign WITHOUT emitting rows — the summary comes back
  /// interrupted=true and a later resume_from run re-emits everything,
  /// byte-identical to an uninterrupted run.
  std::function<bool()> should_stop;
};

/// Digest of a whole campaign (this shard's slice).
struct CampaignSummary {
  std::vector<CellResult> cells;  ///< grid order
  std::size_t cells_run = 0;
  u64 trials_run = 0;
  u64 failures = 0;  ///< SDC + data-loss trials across every cell
  /// should_stop fired: no rows were emitted, cells is empty; resume from
  /// the last on_round cursor set to finish the campaign.
  bool interrupted = false;
};

/// Column names of the per-cell campaign row, in emission order.
[[nodiscard]] const std::vector<std::string>& campaign_row_headers();

/// Render one cell result as a row matching campaign_row_headers().
[[nodiscard]] std::vector<std::string> campaign_to_row(const CellResult& r);

/// Run `cells` under `spec`. Throws std::invalid_argument for bad shard
/// options or a spec with no trials.
[[nodiscard]] CampaignSummary run_campaign(
    const std::vector<CampaignCell>& cells, const CampaignSpec& spec,
    const CampaignOptions& opts = {});

/// Convenience: expand the grid and run it.
[[nodiscard]] inline CampaignSummary run_campaign(
    const CampaignGrid& grid, const CampaignSpec& spec,
    const CampaignOptions& opts = {}) {
  return run_campaign(grid.cells(), spec, opts);
}

/// Multi-process campaign sharding, the runner::run_sweep_procs shape: the
/// parent forks opts.procs workers, worker j runs the cells of sub-shard
/// (I + j*N of N*procs), streams its CELL rows to a private shard file,
/// and the parent round-robin-merges the files byte-identically to a
/// --procs=1 run of the same slice.
struct CampaignProcOptions {
  unsigned procs = 1;
  /// Per-worker options (threads, base_seed, the parent's own shard).
  /// `sink` must be null — rows flow through shard files.
  CampaignOptions worker;
  std::string format = "csv";  ///< "csv" or "jsonl"/"json"
  /// Scratch prefix for shard files; empty picks a unique tmp-dir prefix.
  std::string scratch_prefix;
  /// Merged Chrome trace output path (see runner::ForkMergeOptions).
  std::string trace_path;
};

struct CampaignProcSummary {
  std::size_t cells_run = 0;
  u64 trials_run = 0;
  u64 failures = 0;
  unsigned failed_workers = 0;
  /// One human-readable line per failed worker (see ForkMergeSummary).
  std::vector<std::string> worker_diagnostics;
};

CampaignProcSummary run_campaign_procs(const std::vector<CampaignCell>& cells,
                                       const CampaignSpec& spec,
                                       const CampaignProcOptions& opts,
                                       std::ostream& rows_out);

}  // namespace laec::reliability
