#include "reliability/schedule.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace laec::reliability {

double window_lambda_scale(const CampaignSpec& spec, double fit_per_mbit,
                           unsigned codeword_bits) {
  // FIT/Mbit -> upsets per bit-hour -> accelerated upsets per word-CYCLE.
  const double per_bit_hour = fit_per_mbit * 1e-9 / (1024.0 * 1024.0);
  const double per_word_hour =
      per_bit_hour * static_cast<double>(codeword_bits) * spec.accel;
  return per_word_hour / (spec.freq_mhz * 1e6) / 3600.0;
}

ecc::TrialSchedule draw_trial_schedule(
    const std::vector<mem::AccessWindow>& windows, double lambda_scale,
    const ecc::MbuPatternTable& patterns, unsigned word_bits, u64 seed) {
  ecc::TrialSchedule s;
  Rng rng(seed);
  u64 consult = 0;
  for (const mem::AccessWindow& w : windows) {
    const double lam = lambda_scale * static_cast<double>(w.gap_cycles);
    // Zero-gap windows (back-to-back touches in one cycle) draw nothing and
    // consume no RNG: Rng::chance(0) is a no-draw false, so the stream stays
    // aligned no matter how many such windows the trace produces.
    if (rng.chance(-std::expm1(-lam))) {
      const unsigned events = ecc::FaultInjector::draw_event_count(rng, lam);
      if (w.live) {
        ecc::FlipSet flips;
        for (unsigned e = 0; e < events; ++e) {
          // Mirror the injector's per-access budget: a clustered event
          // needs up to 4 slots; overflow is counted, never silently lost.
          if (flips.size() + 4u <= ecc::FlipSet::kMax) {
            if (ecc::FaultInjector::draw_pattern_event(rng, patterns,
                                                       word_bits, flips)) {
              ++s.events;
            }
          } else {
            ++s.dropped_events;
          }
        }
        if (!flips.empty()) s.deliveries.emplace_back(consult, flips);
      } else {
        // Dead window: the upsets happened, but the word is overwritten or
        // discarded before any read — count them (they belong in the AVF
        // denominator), deliver nothing, draw no shapes.
        s.events += events;
      }
    }
    if (w.live) ++consult;
  }
  return s;
}

}  // namespace laec::reliability
