// Statistics layer of the reliability campaign engine: binomial confidence
// intervals and the FIT/MTTF estimators derived from Monte Carlo trials.
//
// A campaign cell observes f failures in n independent trials. The failure
// probability is estimated with a Wilson score interval (well-behaved at
// f = 0 and f = n, where the naive Wald interval collapses), and the
// physical rates follow from the de-accelerated device-hours the trials
// represent:
//
//     FIT  = 1e9 * failures / device_hours        (failures / 10^9 h)
//     MTTF = device_hours / failures              (hours)
//
// with the CI endpoints propagated through the same linear map. Everything
// here is pure arithmetic — deterministic, allocation-free, trivially
// unit-testable — so the campaign engine proper only orchestrates trials.
#pragma once

#include "common/types.hpp"

namespace laec::reliability {

/// Two-sided confidence interval on a proportion.
struct Interval {
  double lo = 0.0;
  double hi = 1.0;
  [[nodiscard]] double half_width() const { return (hi - lo) / 2.0; }
};

/// Upper-tail standard-normal quantile for a two-sided confidence level,
/// e.g. confidence 0.95 -> z ~= 1.95996. Acklam's rational approximation
/// (|relative error| < 1.2e-9) — deterministic, no tables.
[[nodiscard]] double z_for_confidence(double confidence);

/// Wilson score interval for `successes` out of `trials` at the two-sided
/// `confidence` level. trials == 0 returns the vacuous [0, 1].
[[nodiscard]] Interval wilson_interval(u64 successes, u64 trials,
                                       double confidence);

/// Physical-rate digest of one campaign cell. device_hours is the REAL
/// (de-accelerated) device time the cell's trials represent; failures = 0
/// yields fit = 0 and mttf_hours = +inf, while fit_hi (from the Wilson
/// upper bound) stays finite and positive — the honest "no failure seen
/// yet" statement.
struct RateEstimate {
  double p_fail = 0.0;  ///< failures / trials
  double p_lo = 0.0;    ///< Wilson bounds on p_fail
  double p_hi = 1.0;
  double fit = 0.0;  ///< failures per 1e9 device-hours
  double fit_lo = 0.0;
  double fit_hi = 0.0;
  double mttf_hours = 0.0;  ///< +inf when no failure was observed
};

[[nodiscard]] RateEstimate estimate_rates(u64 failures, u64 trials,
                                          double device_hours,
                                          double confidence);

}  // namespace laec::reliability
