// Pass 2 of the two-pass campaign accelerator: pre-draw a trial's whole
// Poisson fault storm over the golden run's recorded exposure windows,
// without simulating anything.
//
// Soundness: a campaign cell's trials all execute the identical trace (the
// replicate index mixes only into the fault seed), so the golden run's
// per-word exposure windows — and the injector-consultation ordinal of each
// live window — are exact for every trial. Walking the windows in recorded
// order with the trial's own RNG reproduces, event for event, the storm the
// trial would draw: each window suffers >= 1 upset with probability
// 1 - exp(-lambda_w), lambda_w = rate * bits * accel * gap_cycles; live
// windows (closed by a read) draw their events' MBU shapes and deliver them
// at that read; dead windows (closed by a write / eviction / end of run)
// only count their events — they are architecturally masked, no read can
// ever observe them. A trial whose storm has NO live delivery is therefore
// provably masked end to end and needs no simulation; anything else is
// replayed through the full simulator with the pre-drawn schedule, so the
// classification (and every CSV byte) is identical with pruning on or off.
#pragma once

#include <vector>

#include "ecc/injector.hpp"
#include "mem/residency.hpp"
#include "reliability/campaign.hpp"

namespace laec::reliability {

/// Accelerated Poisson mean per cycle of exposure for one codeword:
/// multiply by a window's gap_cycles to get that window's event rate.
/// Same FIT -> device-time normalization as event_lambda_for, with the
/// fixed spec.exposure_cycles stand-in replaced by true per-window gaps.
[[nodiscard]] double window_lambda_scale(const CampaignSpec& spec,
                                         double fit_per_mbit,
                                         unsigned codeword_bits);

/// Draw one trial's storm over `windows` (in recorded order) from a fresh
/// Rng(seed). Deterministic: depends only on the arguments.
[[nodiscard]] ecc::TrialSchedule draw_trial_schedule(
    const std::vector<mem::AccessWindow>& windows, double lambda_scale,
    const ecc::MbuPatternTable& patterns, unsigned word_bits, u64 seed);

}  // namespace laec::reliability
