#include "reliability/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/deployment.hpp"
#include "ecc/registry.hpp"
#include "mem/residency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reliability/schedule.hpp"
#include "runner/multiproc.hpp"
#include "sim/snapshot.hpp"
#include "workloads/eembc.hpp"

namespace laec::reliability {

namespace {

std::string fmt_u64(u64 v) { return std::to_string(v); }

std::string fmt_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

const std::vector<RatePoint>& tech_presets() {
  // Raw per-bit SER shrinks with the node while the multi-cell-upset share
  // grows — the published scaling trend, in placeholder absolute units.
  static const std::vector<RatePoint> kPresets = {
      {"65nm", 1400.0, {0.88, 0.09, 0.02, 0.01}},
      {"40nm", 1100.0, {0.72, 0.18, 0.07, 0.03}},
      {"28nm", 900.0, {0.55, 0.25, 0.13, 0.07}},
  };
  return kPresets;
}

std::optional<RatePoint> tech_preset(std::string_view name) {
  for (const auto& p : tech_presets()) {
    if (p.label == name) return p;
  }
  return std::nullopt;
}

std::optional<RatePoint> parse_rate(
    std::string_view token, const ecc::MbuPatternTable& default_patterns) {
  if (auto p = tech_preset(token); p.has_value()) return p;
  try {
    std::size_t used = 0;
    const std::string s(token);
    const double fit = std::stod(s, &used);
    if (used != s.size() || !(fit > 0.0)) return std::nullopt;
    RatePoint r;
    r.label = s;
    r.fit_per_mbit = fit;
    r.patterns = default_patterns;
    return r;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

CampaignGrid& CampaignGrid::workloads(std::vector<std::string> names) {
  workloads_ = std::move(names);
  return *this;
}

CampaignGrid& CampaignGrid::all_workloads() {
  workloads_.clear();
  for (const auto& k : workloads::eembc_kernels()) {
    workloads_.push_back(k.name);
  }
  return *this;
}

CampaignGrid& CampaignGrid::schemes(std::vector<std::string> keys) {
  schemes_ = std::move(keys);
  return *this;
}

CampaignGrid& CampaignGrid::rates(std::vector<RatePoint> rates) {
  rates_ = std::move(rates);
  return *this;
}

std::vector<CampaignCell> CampaignGrid::cells() const {
  if (rates_.empty()) {
    throw std::invalid_argument("CampaignGrid: the rates axis is empty");
  }
  for (const auto& r : rates_) {
    if (!(r.fit_per_mbit > 0.0) || !(r.patterns.total() > 0.0)) {
      throw std::invalid_argument("CampaignGrid: rate \"" + r.label +
                                  "\" needs a positive FIT rate and a "
                                  "non-empty pattern table");
    }
  }
  // Parse every scheme key once up front (throws for unknown keys).
  for (const auto& s : schemes_) {
    (void)core::HierarchyDeployment::parse(s);
  }
  std::vector<CampaignCell> out;
  out.reserve(workloads_.size() * schemes_.size() * rates_.size());
  for (const auto& w : workloads_) {
    for (const auto& s : schemes_) {
      for (const auto& r : rates_) {
        CampaignCell c;
        c.index = out.size();
        c.workload = w;
        c.scheme = s;
        c.rate = r;
        out.push_back(std::move(c));
      }
    }
  }
  return out;
}

TrialOutcome classify_trial(const runner::PointResult& r) {
  const core::RunStats& s = r.stats;
  // Severity precedence, worst first. Detected-but-lost beats SDC: a trial
  // with data-loss accounting had its failure FLAGGED even when the
  // self-check also caught it.
  if (s.data_loss_events + s.l2_data_loss_events > 0) {
    return TrialOutcome::kDataLoss;
  }
  if (!r.self_check_ok || !s.completed) return TrialOutcome::kSdc;
  if (s.ecc_detected_uncorrectable + s.parity_refetches +
          s.l1i_detected_uncorrectable + s.l1i_refetches +
          s.l2_detected_uncorrectable + s.l2_refetches >
      0) {
    return TrialOutcome::kDueRecovered;
  }
  if (s.ecc_corrected + s.l1i_corrected + s.l2_corrected > 0) {
    return TrialOutcome::kCorrected;
  }
  return TrialOutcome::kMasked;
}

double event_lambda_for(const CampaignSpec& spec, double fit_per_mbit,
                        unsigned codeword_bits) {
  // FIT/Mbit -> upsets per bit-hour -> accelerated upsets per word-hour.
  const double per_bit_hour = fit_per_mbit * 1e-9 / (1024.0 * 1024.0);
  const double per_word_hour =
      per_bit_hour * static_cast<double>(codeword_bits) * spec.accel;
  const double exposure_hours = static_cast<double>(spec.exposure_cycles) /
                                (spec.freq_mhz * 1e6) / 3600.0;
  return per_word_hour * exposure_hours;
}

double event_prob_for(const CampaignSpec& spec, double fit_per_mbit,
                      unsigned codeword_bits) {
  // P(at least one Poisson arrival during the exposure window). expm1
  // keeps precision where 1 - exp(-x) would cancel to 0 for tiny rates;
  // saturation to exactly 1.0 at extreme acceleration is the correct limit
  // (the event COUNT then comes from InjectorConfig::event_lambda).
  return -std::expm1(-event_lambda_for(spec, fit_per_mbit, codeword_bits));
}

unsigned target_codeword_bits(const core::SimConfig& cfg) {
  // The one definition attach_injector also uses: the Poisson rate is
  // normalized over exactly the bits the injector can flip.
  return core::injector_word_bits(cfg);
}

const std::vector<std::string>& campaign_row_headers() {
  static const std::vector<std::string> kHeaders = {
      "workload",      "ecc",       "codec_dl1", "codec_l1i",
      "codec_l2",      "target",    "rate",      "fit_mbit_raw",
      "trials",        "events",    "events_dropped", "masked", "corrected",
      "due_recovered", "sdc",       "data_loss", "p_fail",
      "ci_lo",         "ci_hi",     "avf",       "fit",
      "fit_lo",        "fit_hi",    "mttf_hours", "device_hours",
      "cycles",        "pruned",    "fast_forwarded",
      "mean_exposure_cycles"};
  return kHeaders;
}

std::vector<std::string> campaign_to_row(const CellResult& r) {
  const core::HierarchyDeployment dep =
      core::HierarchyDeployment::parse(r.cell.scheme);
  return {r.cell.workload,
          dep.name,
          dep.codec,
          dep.l1i.codec,
          dep.l2.codec,
          std::string(to_string(r.target)),
          r.cell.rate.label,
          fmt_g(r.cell.rate.fit_per_mbit),
          fmt_u64(r.trials),
          fmt_u64(r.events),
          fmt_u64(r.events_dropped),
          fmt_u64(r.masked),
          fmt_u64(r.corrected),
          fmt_u64(r.due_recovered),
          fmt_u64(r.sdc),
          fmt_u64(r.data_loss),
          fmt_g(r.est.p_fail),
          fmt_g(r.est.p_lo),
          fmt_g(r.est.p_hi),
          fmt_g(r.avf),
          fmt_g(r.est.fit),
          fmt_g(r.est.fit_lo),
          fmt_g(r.est.fit_hi),
          fmt_g(r.est.mttf_hours),
          fmt_g(r.device_hours),
          fmt_u64(r.total_cycles),
          fmt_u64(r.pruned),
          fmt_u64(r.fast_forwarded),
          fmt_g(r.mean_exposure_cycles)};
}

namespace {

/// Pass-1 artifacts of one (workload, scheme), produced once by a fault-free
/// run: the recorded exposure windows every trial's storm is drawn over, the
/// golden result a provably-masked trial is classified/accounted from, and
/// the full-state snapshots fast-forwarded trials resume from. Rate cells of
/// the same (workload, scheme) SHARE one GoldenCell — the golden run clears
/// faults and the point seed excludes the rate label, so the pass-1 run (and
/// everything derived from it) is rate-invariant by construction.
struct GoldenCell {
  explicit GoldenCell(const CampaignSpec& spec)
      : snapshots(spec.snapshot_every,
                  static_cast<u64>(spec.snapshot_mem_mb) << 20) {}
  std::vector<mem::AccessWindow> windows;
  runner::PointResult result;
  double mean_exposure = 0.0;
  /// Captured unconditionally (with fast-forward on OR off, as long as
  /// snapshot_every > 0) so the fast_forwarded column counts identically in
  /// both modes; --no-ff differs only in whether trials actually restore.
  sim::SnapshotStore snapshots;
};

/// Pass-1 dedup across the rate axis, keyed (workload, scheme).
using GoldenCache = std::map<std::pair<std::string, std::string>,
                             std::shared_ptr<const GoldenCell>>;

/// Per-cell running state of the campaign engine.
struct CellState {
  CellResult res;
  core::SimConfig cfg;  ///< scheme + faults applied, seed left to run_sweep
  unsigned done = 0;
  bool finished = false;
  std::shared_ptr<const GoldenCell> golden;  ///< lazily built, once per cell
  double lambda_scale = 0.0;  ///< accelerated upsets per exposure cycle
  unsigned word_bits = 0;     ///< targeted codec's codeword width
};

CellProgress cell_progress(const CellState& st) {
  CellProgress p;
  p.index = st.res.cell.index;
  p.done = st.done;
  p.finished = st.finished;
  p.trials = st.res.trials;
  p.events = st.res.events;
  p.events_dropped = st.res.events_dropped;
  p.masked = st.res.masked;
  p.corrected = st.res.corrected;
  p.due_recovered = st.res.due_recovered;
  p.sdc = st.res.sdc;
  p.data_loss = st.res.data_loss;
  p.total_cycles = st.res.total_cycles;
  p.pruned = st.res.pruned;
  p.fast_forwarded = st.res.fast_forwarded;
  p.cycles_skipped = st.res.cycles_skipped;
  p.device_hours = st.res.device_hours;
  return p;
}

void restore_progress(CellState& st, const CellProgress& p,
                      const CampaignSpec& spec) {
  if (p.done > spec.trials || p.trials != p.done || p.pruned > p.trials ||
      p.fast_forwarded + p.pruned > p.trials ||
      p.masked + p.corrected + p.due_recovered + p.sdc + p.data_loss !=
          p.trials) {
    throw std::invalid_argument(
        "run_campaign: resume cursor for cell " + std::to_string(p.index) +
        " is inconsistent with this campaign (corrupt checkpoint or "
        "changed spec?)");
  }
  st.done = p.done;
  st.finished = p.finished || p.done >= spec.trials;
  st.res.trials = p.trials;
  st.res.events = p.events;
  st.res.events_dropped = p.events_dropped;
  st.res.masked = p.masked;
  st.res.corrected = p.corrected;
  st.res.due_recovered = p.due_recovered;
  st.res.sdc = p.sdc;
  st.res.data_loss = p.data_loss;
  st.res.total_cycles = p.total_cycles;
  st.res.pruned = p.pruned;
  st.res.fast_forwarded = p.fast_forwarded;
  st.res.cycles_skipped = p.cycles_skipped;
  st.res.device_hours = p.device_hours;
}

/// Fold one classified trial into the cell. Shared by the simulated and
/// analytic paths so the accumulation arithmetic (including the
/// device-hours floating-point expression) cannot diverge between them.
void fold_outcome(CellState& st, TrialOutcome o, u64 events, u64 dropped,
                  u64 cycles, const CampaignSpec& spec) {
  st.res.trials += 1;
  st.res.events += events;
  st.res.events_dropped += dropped;
  switch (o) {
    case TrialOutcome::kMasked: st.res.masked += 1; break;
    case TrialOutcome::kCorrected: st.res.corrected += 1; break;
    case TrialOutcome::kDueRecovered: st.res.due_recovered += 1; break;
    case TrialOutcome::kSdc: st.res.sdc += 1; break;
    case TrialOutcome::kDataLoss: st.res.data_loss += 1; break;
  }
  st.res.total_cycles += cycles;
  st.res.device_hours += static_cast<double>(cycles) /
                         (spec.freq_mhz * 1e6) / 3600.0 * spec.accel;
}

void fold_trial(CellState& st, const runner::PointResult& r,
                const CampaignSpec& spec) {
  fold_outcome(st, classify_trial(r), r.faults_injected, r.faults_dropped,
               r.stats.cycles, spec);
}

/// Fold a pruned trial: every event is provably masked, so the trial's
/// classification, cycle count and device-hours are the golden run's. The
/// storm's events still count (they are real upsets the AVF denominator
/// must see — exactly what the injector reports when the same schedule is
/// simulated instead).
void fold_pruned(CellState& st, const ecc::TrialSchedule& sched,
                 const CampaignSpec& spec) {
  const GoldenCell& g = *st.golden;
  fold_outcome(st, classify_trial(g.result), sched.events,
               sched.dropped_events, g.result.stats.cycles, spec);
  st.res.pruned += 1;
}

/// The SweepPoint of one of this cell's trials.
runner::SweepPoint cell_point(const CellState& st, unsigned replicate) {
  runner::SweepPoint p;
  p.workload = st.res.cell.workload;
  p.variant = st.res.cell.rate.label;
  p.config = st.cfg;
  p.mode = runner::RunMode::kProgram;
  p.replicate = replicate;
  return p;
}

/// Pass 1, lazily: one fault-free run of the (workload, scheme)'s kernel
/// with the residency recorder on the targeted array, dropping full-state
/// snapshots at the spec's cadence. Runs at most once per (workload, scheme)
/// per process — every rate cell reuses the cached artifacts (trials
/// amortize it further); deterministic, so every process of a sharded
/// campaign reconstructs the identical windows and snapshots.
void ensure_golden(CellState& st, const CampaignSpec& spec,
                   const CampaignOptions& opts, GoldenCache& cache) {
  if (st.golden != nullptr) return;
  const auto key =
      std::make_pair(st.res.cell.workload, st.res.cell.scheme);
  if (const auto it = cache.find(key); it != cache.end()) {
    obs::Registry::global().counter("campaign.golden_cache_hits").add();
    st.golden = it->second;
    return;
  }
  obs::Span span("golden-run");
  span.arg("workload", st.res.cell.workload);
  span.arg("scheme", st.res.cell.scheme);
  auto g = std::make_shared<GoldenCell>(spec);
  mem::ResidencyRecorder rec;
  g->result = runner::run_golden_point(cell_point(st, 0), opts.base_seed,
                                       &rec, &g->snapshots);
  g->windows = rec.take_windows();
  g->mean_exposure = mem::mean_exposure_cycles(g->windows);
  auto& reg = obs::Registry::global();
  reg.counter("campaign.golden_runs").add();
  auto& window_hist = reg.histogram("campaign.exposure_window_cycles");
  for (const mem::AccessWindow& w : g->windows) {
    window_hist.record(w.gap_cycles);
  }
  span.arg("windows", static_cast<u64>(g->windows.size()));
  span.arg("snapshots", static_cast<u64>(g->snapshots.size()));
  span.arg("snapshot_bytes", g->snapshots.bytes());
  st.golden = g;
  cache.emplace(key, std::move(g));
}

/// One trial's disposition within a round.
struct TrialPlan {
  bool prunable = false;  ///< storm has no live delivery (provably masked)
  /// Set when the trial is folded analytically (prune mode, prunable).
  std::shared_ptr<const ecc::TrialSchedule> schedule;
  /// The golden snapshot at-or-before this trial's FIRST live delivery
  /// ordinal — the fast_forwarded column's evidence. Non-prunable trials
  /// only, and computed with fast-forward on AND off (only whether the
  /// restore happens differs), so the count is mode-invariant.
  std::shared_ptr<const sim::SnapshotStore::Entry> snapshot;
  std::size_t result_index = 0;  ///< into the round's sweep results otherwise
};

}  // namespace

CampaignSummary run_campaign(const std::vector<CampaignCell>& cells,
                             const CampaignSpec& spec,
                             const CampaignOptions& opts) {
  if (opts.shard_count == 0 || opts.shard_index >= opts.shard_count) {
    throw std::invalid_argument(
        "run_campaign: shard_index/shard_count invalid");
  }
  if (spec.trials == 0) {
    throw std::invalid_argument("run_campaign: spec.trials must be >= 1");
  }
  const unsigned batch = std::max(1u, spec.batch);
  const unsigned min_trials =
      std::min(std::max(1u, spec.min_trials), spec.trials);

  // This shard's slice, in grid order. Each cell's SimConfig is built once:
  // scheme applied, storm targeted, per-cycle Poisson rate derived from the
  // rate and the targeted codec's codeword width. The InjectorConfig holds
  // only the pattern table — every trial's storm is pre-drawn over the
  // golden run's exposure windows and attached as a replay schedule, with
  // pruning on AND off (the two modes differ only in which trials simulate).
  std::vector<CellState> states;
  for (const auto& c : cells) {
    if (c.index % opts.shard_count != opts.shard_index) continue;
    CellState st;
    st.res.cell = c;
    st.res.target = spec.target;
    st.cfg = spec.base;
    st.cfg.set_scheme(c.scheme);
    st.cfg.inject_target = spec.target;
    ecc::InjectorConfig inj;
    inj.patterns = c.rate.patterns;
    st.cfg.faults = inj;
    st.word_bits = target_codeword_bits(st.cfg);
    st.lambda_scale =
        window_lambda_scale(spec, c.rate.fit_per_mbit, st.word_bits);
    states.push_back(std::move(st));
  }

  // Restore resume cursors (grid-index-matched). A cursor that names a
  // cell outside this shard's slice means the checkpoint belongs to a
  // different campaign/shard — hard error, never mixed statistics.
  if (opts.resume_from != nullptr) {
    for (const CellProgress& p : *opts.resume_from) {
      CellState* match = nullptr;
      for (CellState& st : states) {
        if (st.res.cell.index == p.index) {
          match = &st;
          break;
        }
      }
      if (match == nullptr) {
        throw std::invalid_argument(
            "run_campaign: resume cursor names cell " +
            std::to_string(p.index) +
            ", which is not in this campaign shard");
      }
      restore_progress(*match, p, spec);
    }
  }

  CampaignSummary summary;
  GoldenCache golden_cache;

  const auto snapshot_progress = [&states] {
    std::vector<CellProgress> out;
    out.reserve(states.size());
    for (const CellState& st : states) out.push_back(cell_progress(st));
    return out;
  };

  // Publish this shard's cursor totals as registry gauges, so the
  // --progress heartbeat (and any other observer) renders purely from a
  // metrics snapshot. Gauges are set, not added: a resumed campaign's
  // restored counts are included because they live in the cursors.
  const auto publish_metrics = [&states, &golden_cache, &spec] {
    auto& reg = obs::Registry::global();
    u64 finished = 0, trials = 0, pruned = 0, ff = 0, skipped = 0,
        events = 0, snap_bytes = 0, budget_done = 0;
    for (const CellState& st : states) {
      if (st.finished) ++finished;
      trials += st.res.trials;
      pruned += st.res.pruned;
      ff += st.res.fast_forwarded;
      skipped += st.res.cycles_skipped;
      events += st.res.events;
      // A cell the stopping rule ended early counts as its full budget
      // towards the ETA denominator: its remaining trials never run.
      budget_done += st.finished ? spec.trials : st.done;
    }
    for (const auto& [key, g] : golden_cache) {
      snap_bytes += g->snapshots.bytes();
    }
    reg.gauge("snapshot.bytes_in_use").set(snap_bytes);
    reg.gauge("campaign.cells_total").set(states.size());
    reg.gauge("campaign.cells_finished").set(finished);
    reg.gauge("campaign.trials_done").set(trials);
    reg.gauge("campaign.trials_pruned").set(pruned);
    reg.gauge("campaign.trials_fast_forwarded").set(ff);
    reg.gauge("campaign.cycles_skipped").set(skipped);
    reg.gauge("campaign.fault_events").set(events);
    reg.gauge("campaign.trials_budget_done").set(budget_done);
    reg.gauge("campaign.trials_target")
        .set(static_cast<u64>(states.size()) * spec.trials);
  };

  // Batched rounds: every unfinished cell contributes its next `batch`
  // trials to ONE run_sweep call (one thread pool over the whole round),
  // then the stopping rule is evaluated per cell. A cell's trajectory
  // depends only on its own trial outcomes — deterministic under any
  // thread count or shard layout. Interruption (should_stop) is only
  // honoured at round boundaries, so every resume cursor sits on the same
  // batch grid an uninterrupted run walks.
  bool any_round = false;
  for (;;) {
    obs::Span round_span("campaign.round");
    // Pass 2, per round: pre-draw every pending trial's storm over the
    // cell's golden windows. A storm with no live delivery is provably
    // masked — under pruning it folds analytically and never simulates;
    // otherwise the trial carries its schedule into the sweep, so the
    // simulated storm is the drawn storm, event for event.
    obs::Span plan_span("prune-plan");
    std::vector<runner::SweepPoint> points;
    std::vector<std::pair<std::size_t, std::vector<TrialPlan>>> slices;
    for (std::size_t si = 0; si < states.size(); ++si) {
      CellState& st = states[si];
      if (st.finished) continue;
      ensure_golden(st, spec, opts, golden_cache);
      const unsigned bn =
          std::min<unsigned>(batch, spec.trials - st.done);
      std::vector<TrialPlan> plans;
      plans.reserve(bn);
      for (unsigned t = 0; t < bn; ++t) {
        runner::SweepPoint p = cell_point(st, st.done + t);
        auto sched = std::make_shared<ecc::TrialSchedule>(draw_trial_schedule(
            st.golden->windows, st.lambda_scale, st.res.cell.rate.patterns,
            st.word_bits, runner::fault_seed(opts.base_seed, p)));
        TrialPlan plan;
        plan.prunable = !sched->has_live();
        if (!plan.prunable) {
          plan.snapshot = st.golden->snapshots.best_at_or_before(
              sched->deliveries.front().first);
        }
        if (spec.prune && plan.prunable) {
          plan.schedule = std::move(sched);
        } else {
          if (spec.fast_forward) {
            // Skip the fault-free prefix. A dead-storm trial simulated in
            // no-prune mode delivers nothing at all, so ANY snapshot is
            // before its (nonexistent) first delivery — resume from the
            // last one. Such restores are pure speed: they are NOT counted
            // as fast_forwarded, keeping the column prune-mode-invariant.
            p.resume_from =
                plan.prunable
                    ? st.golden->snapshots.best_at_or_before(~u64{0})
                    : plan.snapshot;
          }
          p.config.faults->schedule = std::move(sched);
          p.index = points.size();
          plan.result_index = points.size();
          points.push_back(std::move(p));
        }
        plans.push_back(std::move(plan));
      }
      slices.emplace_back(si, std::move(plans));
    }
    if (plan_span.live()) {
      u64 planned = 0;
      for (const auto& [si, plans] : slices) planned += plans.size();
      plan_span.arg("trials", planned);
      plan_span.arg("pruned_analytic",
                    planned - static_cast<u64>(points.size()));
      plan_span.arg("simulated", static_cast<u64>(points.size()));
    }
    plan_span.close();
    if (slices.empty()) break;

    runner::SweepSummary sum;
    if (!points.empty()) {
      runner::SweepOptions sopts;
      sopts.threads = opts.threads;
      sopts.base_seed = opts.base_seed;
      sum = runner::run_sweep(points, sopts);
    }

    for (const auto& [si, plans] : slices) {
      CellState& st = states[si];
      // Fold in strict trial order, interleaving analytic and simulated
      // results exactly as an unpruned run would fold them.
      for (const TrialPlan& plan : plans) {
        if (plan.schedule != nullptr) {
          fold_pruned(st, *plan.schedule, spec);
        } else {
          fold_trial(st, sum.results[plan.result_index], spec);
          // Unpruned reference mode still REPORTS the prunable count, so
          // the column is byte-identical across modes.
          if (plan.prunable) st.res.pruned += 1;
          if (plan.snapshot != nullptr) {
            st.res.fast_forwarded += 1;
            st.res.cycles_skipped += plan.snapshot->cycle;
          }
        }
      }
      st.done += static_cast<unsigned>(plans.size());
      if (st.done >= spec.trials) {
        st.finished = true;
      } else if (spec.target_half_width > 0.0 && st.done >= min_trials) {
        const Interval ci = wilson_interval(st.res.failures(), st.done,
                                            spec.confidence);
        st.finished = ci.half_width() <= spec.target_half_width;
      }
    }

    any_round = true;
    publish_metrics();
    if (opts.on_round) opts.on_round(snapshot_progress());
    if (opts.should_stop && opts.should_stop()) {
      summary.interrupted = true;
      return summary;
    }
  }

  // A resume that had nothing left to run still reports its cursors once
  // (the CLI heartbeat and checkpoint writer see the final state).
  if (!any_round) {
    publish_metrics();
    if (opts.on_round) opts.on_round(snapshot_progress());
  }

  // Finalize and emit in grid order.
  summary.cells.reserve(states.size());
  if (opts.sink != nullptr) opts.sink->begin(campaign_row_headers());
  for (CellState& st : states) {
    // A cell restored fully-finished never entered a round; its exposure
    // column still comes from the (deterministic) golden run.
    ensure_golden(st, spec, opts, golden_cache);
    st.res.mean_exposure_cycles = st.golden->mean_exposure;
    st.res.avf = st.res.events == 0
                     ? 0.0
                     : static_cast<double>(st.res.failures()) /
                           static_cast<double>(st.res.events);
    st.res.est = estimate_rates(st.res.failures(), st.res.trials,
                                st.res.device_hours, spec.confidence);
    summary.cells_run += 1;
    summary.trials_run += st.res.trials;
    summary.failures += st.res.failures();
    if (opts.sink != nullptr) opts.sink->row(campaign_to_row(st.res));
    summary.cells.push_back(std::move(st.res));
  }
  if (opts.sink != nullptr) opts.sink->end();
  return summary;
}

namespace {

/// The slice worker j runs: the sweep driver's shared subdivision policy,
/// at cell rather than point granularity.
CampaignOptions worker_options(const CampaignProcOptions& opts, unsigned j) {
  CampaignOptions o = opts.worker;
  const runner::WorkerShard ws = runner::proc_worker_shard(
      opts.worker.shard_index, opts.worker.shard_count, opts.worker.threads,
      opts.procs, j);
  o.shard_index = ws.shard_index;
  o.shard_count = ws.shard_count;
  o.threads = ws.threads;
  o.sink = nullptr;
  return o;
}

int run_campaign_worker(const std::vector<CampaignCell>& cells,
                        const CampaignSpec& spec,
                        const CampaignProcOptions& opts, unsigned j,
                        const std::string& rows_path,
                        const std::string& meta_path) {
  std::ofstream rows(rows_path, std::ios::trunc);
  if (!rows) return 2;
  const auto sink = report::make_row_writer(opts.format, rows);
  if (sink == nullptr) return 2;

  CampaignOptions o = worker_options(opts, j);
  o.sink = sink.get();
  const CampaignSummary sum = run_campaign(cells, spec, o);
  rows.flush();
  if (!rows) return 2;

  std::ofstream meta(meta_path, std::ios::trunc);
  meta << sum.cells_run << ' ' << sum.trials_run << ' ' << sum.failures
       << '\n';
  meta.flush();
  if (!meta) return 2;
  return 0;
}

}  // namespace

CampaignProcSummary run_campaign_procs(const std::vector<CampaignCell>& cells,
                                       const CampaignSpec& spec,
                                       const CampaignProcOptions& opts,
                                       std::ostream& rows_out) {
  if (opts.procs == 0) {
    throw std::invalid_argument("run_campaign_procs: procs must be >= 1");
  }
  if (opts.worker.sink != nullptr) {
    throw std::invalid_argument(
        "run_campaign_procs: rows flow through shard files; worker.sink "
        "must be unset");
  }
  if (opts.worker.resume_from != nullptr || opts.worker.on_round ||
      opts.worker.should_stop) {
    throw std::invalid_argument(
        "run_campaign_procs: checkpoint/resume hooks are single-process "
        "(run the checkpointed campaign with procs=1)");
  }

  CampaignProcSummary summary;

  if (opts.procs == 1) {
    // No fork, no scratch files: the classic in-process path.
    const auto sink = report::make_row_writer(opts.format, rows_out);
    if (sink == nullptr) {
      throw std::invalid_argument(
          "run_campaign_procs: unknown row format \"" + opts.format + "\"");
    }
    CampaignOptions o = opts.worker;
    o.sink = sink.get();
    const CampaignSummary sum = run_campaign(cells, spec, o);
    summary.cells_run = sum.cells_run;
    summary.trials_run = sum.trials_run;
    summary.failures = sum.failures;
    return summary;
  }

  if (report::make_row_writer(opts.format, rows_out) == nullptr) {
    throw std::invalid_argument("run_campaign_procs: unknown row format \"" +
                                opts.format + "\"");
  }

  runner::ForkMergeOptions fm;
  fm.procs = opts.procs;
  fm.scratch_prefix = opts.scratch_prefix;
  fm.csv_header = opts.format == "csv";
  fm.trace_path = opts.trace_path;
  const runner::ForkMergeSummary fms = runner::fork_workers_and_merge(
      fm,
      [&](unsigned j, const std::string& rows_path,
          const std::string& meta_path) {
        return run_campaign_worker(cells, spec, opts, j, rows_path,
                                   meta_path);
      },
      rows_out);
  summary.cells_run = static_cast<std::size_t>(fms.meta[0]);
  summary.trials_run = fms.meta[1];
  summary.failures = fms.meta[2];
  summary.failed_workers = fms.failed_workers;
  summary.worker_diagnostics = fms.diagnostics;
  return summary;
}

}  // namespace laec::reliability
