#include "reliability/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/deployment.hpp"
#include "ecc/registry.hpp"
#include "runner/multiproc.hpp"
#include "workloads/eembc.hpp"

namespace laec::reliability {

namespace {

std::string fmt_u64(u64 v) { return std::to_string(v); }

std::string fmt_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

const std::vector<RatePoint>& tech_presets() {
  // Raw per-bit SER shrinks with the node while the multi-cell-upset share
  // grows — the published scaling trend, in placeholder absolute units.
  static const std::vector<RatePoint> kPresets = {
      {"65nm", 1400.0, {0.88, 0.09, 0.02, 0.01}},
      {"40nm", 1100.0, {0.72, 0.18, 0.07, 0.03}},
      {"28nm", 900.0, {0.55, 0.25, 0.13, 0.07}},
  };
  return kPresets;
}

std::optional<RatePoint> tech_preset(std::string_view name) {
  for (const auto& p : tech_presets()) {
    if (p.label == name) return p;
  }
  return std::nullopt;
}

std::optional<RatePoint> parse_rate(
    std::string_view token, const ecc::MbuPatternTable& default_patterns) {
  if (auto p = tech_preset(token); p.has_value()) return p;
  try {
    std::size_t used = 0;
    const std::string s(token);
    const double fit = std::stod(s, &used);
    if (used != s.size() || !(fit > 0.0)) return std::nullopt;
    RatePoint r;
    r.label = s;
    r.fit_per_mbit = fit;
    r.patterns = default_patterns;
    return r;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

CampaignGrid& CampaignGrid::workloads(std::vector<std::string> names) {
  workloads_ = std::move(names);
  return *this;
}

CampaignGrid& CampaignGrid::all_workloads() {
  workloads_.clear();
  for (const auto& k : workloads::eembc_kernels()) {
    workloads_.push_back(k.name);
  }
  return *this;
}

CampaignGrid& CampaignGrid::schemes(std::vector<std::string> keys) {
  schemes_ = std::move(keys);
  return *this;
}

CampaignGrid& CampaignGrid::rates(std::vector<RatePoint> rates) {
  rates_ = std::move(rates);
  return *this;
}

std::vector<CampaignCell> CampaignGrid::cells() const {
  if (rates_.empty()) {
    throw std::invalid_argument("CampaignGrid: the rates axis is empty");
  }
  for (const auto& r : rates_) {
    if (!(r.fit_per_mbit > 0.0) || !(r.patterns.total() > 0.0)) {
      throw std::invalid_argument("CampaignGrid: rate \"" + r.label +
                                  "\" needs a positive FIT rate and a "
                                  "non-empty pattern table");
    }
  }
  // Parse every scheme key once up front (throws for unknown keys).
  for (const auto& s : schemes_) {
    (void)core::HierarchyDeployment::parse(s);
  }
  std::vector<CampaignCell> out;
  out.reserve(workloads_.size() * schemes_.size() * rates_.size());
  for (const auto& w : workloads_) {
    for (const auto& s : schemes_) {
      for (const auto& r : rates_) {
        CampaignCell c;
        c.index = out.size();
        c.workload = w;
        c.scheme = s;
        c.rate = r;
        out.push_back(std::move(c));
      }
    }
  }
  return out;
}

TrialOutcome classify_trial(const runner::PointResult& r) {
  const core::RunStats& s = r.stats;
  // Severity precedence, worst first. Detected-but-lost beats SDC: a trial
  // with data-loss accounting had its failure FLAGGED even when the
  // self-check also caught it.
  if (s.data_loss_events + s.l2_data_loss_events > 0) {
    return TrialOutcome::kDataLoss;
  }
  if (!r.self_check_ok || !s.completed) return TrialOutcome::kSdc;
  if (s.ecc_detected_uncorrectable + s.parity_refetches +
          s.l1i_detected_uncorrectable + s.l1i_refetches +
          s.l2_detected_uncorrectable + s.l2_refetches >
      0) {
    return TrialOutcome::kDueRecovered;
  }
  if (s.ecc_corrected + s.l1i_corrected + s.l2_corrected > 0) {
    return TrialOutcome::kCorrected;
  }
  return TrialOutcome::kMasked;
}

double event_lambda_for(const CampaignSpec& spec, double fit_per_mbit,
                        unsigned codeword_bits) {
  // FIT/Mbit -> upsets per bit-hour -> accelerated upsets per word-hour.
  const double per_bit_hour = fit_per_mbit * 1e-9 / (1024.0 * 1024.0);
  const double per_word_hour =
      per_bit_hour * static_cast<double>(codeword_bits) * spec.accel;
  const double exposure_hours = static_cast<double>(spec.exposure_cycles) /
                                (spec.freq_mhz * 1e6) / 3600.0;
  return per_word_hour * exposure_hours;
}

double event_prob_for(const CampaignSpec& spec, double fit_per_mbit,
                      unsigned codeword_bits) {
  // P(at least one Poisson arrival during the exposure window). expm1
  // keeps precision where 1 - exp(-x) would cancel to 0 for tiny rates;
  // saturation to exactly 1.0 at extreme acceleration is the correct limit
  // (the event COUNT then comes from InjectorConfig::event_lambda).
  return -std::expm1(-event_lambda_for(spec, fit_per_mbit, codeword_bits));
}

unsigned target_codeword_bits(const core::SimConfig& cfg) {
  // The one definition attach_injector also uses: the Poisson rate is
  // normalized over exactly the bits the injector can flip.
  return core::injector_word_bits(cfg);
}

const std::vector<std::string>& campaign_row_headers() {
  static const std::vector<std::string> kHeaders = {
      "workload",      "ecc",       "codec_dl1", "codec_l1i",
      "codec_l2",      "target",    "rate",      "fit_mbit_raw",
      "trials",        "events",    "events_dropped", "masked", "corrected",
      "due_recovered", "sdc",       "data_loss", "p_fail",
      "ci_lo",         "ci_hi",     "avf",       "fit",
      "fit_lo",        "fit_hi",    "mttf_hours", "device_hours",
      "cycles"};
  return kHeaders;
}

std::vector<std::string> campaign_to_row(const CellResult& r) {
  const core::HierarchyDeployment dep =
      core::HierarchyDeployment::parse(r.cell.scheme);
  return {r.cell.workload,
          dep.name,
          dep.codec,
          dep.l1i.codec,
          dep.l2.codec,
          std::string(to_string(r.target)),
          r.cell.rate.label,
          fmt_g(r.cell.rate.fit_per_mbit),
          fmt_u64(r.trials),
          fmt_u64(r.events),
          fmt_u64(r.events_dropped),
          fmt_u64(r.masked),
          fmt_u64(r.corrected),
          fmt_u64(r.due_recovered),
          fmt_u64(r.sdc),
          fmt_u64(r.data_loss),
          fmt_g(r.est.p_fail),
          fmt_g(r.est.p_lo),
          fmt_g(r.est.p_hi),
          fmt_g(r.avf),
          fmt_g(r.est.fit),
          fmt_g(r.est.fit_lo),
          fmt_g(r.est.fit_hi),
          fmt_g(r.est.mttf_hours),
          fmt_g(r.device_hours),
          fmt_u64(r.total_cycles)};
}

namespace {

/// Per-cell running state of the campaign engine.
struct CellState {
  CellResult res;
  core::SimConfig cfg;  ///< scheme + faults applied, seed left to run_sweep
  unsigned done = 0;
  bool finished = false;
};

CellProgress cell_progress(const CellState& st) {
  CellProgress p;
  p.index = st.res.cell.index;
  p.done = st.done;
  p.finished = st.finished;
  p.trials = st.res.trials;
  p.events = st.res.events;
  p.events_dropped = st.res.events_dropped;
  p.masked = st.res.masked;
  p.corrected = st.res.corrected;
  p.due_recovered = st.res.due_recovered;
  p.sdc = st.res.sdc;
  p.data_loss = st.res.data_loss;
  p.total_cycles = st.res.total_cycles;
  p.device_hours = st.res.device_hours;
  return p;
}

void restore_progress(CellState& st, const CellProgress& p,
                      const CampaignSpec& spec) {
  if (p.done > spec.trials || p.trials != p.done ||
      p.masked + p.corrected + p.due_recovered + p.sdc + p.data_loss !=
          p.trials) {
    throw std::invalid_argument(
        "run_campaign: resume cursor for cell " + std::to_string(p.index) +
        " is inconsistent with this campaign (corrupt checkpoint or "
        "changed spec?)");
  }
  st.done = p.done;
  st.finished = p.finished || p.done >= spec.trials;
  st.res.trials = p.trials;
  st.res.events = p.events;
  st.res.events_dropped = p.events_dropped;
  st.res.masked = p.masked;
  st.res.corrected = p.corrected;
  st.res.due_recovered = p.due_recovered;
  st.res.sdc = p.sdc;
  st.res.data_loss = p.data_loss;
  st.res.total_cycles = p.total_cycles;
  st.res.device_hours = p.device_hours;
}

void fold_trial(CellState& st, const runner::PointResult& r,
                const CampaignSpec& spec) {
  const TrialOutcome o = classify_trial(r);
  st.res.trials += 1;
  st.res.events += r.faults_injected;
  st.res.events_dropped += r.faults_dropped;
  switch (o) {
    case TrialOutcome::kMasked: st.res.masked += 1; break;
    case TrialOutcome::kCorrected: st.res.corrected += 1; break;
    case TrialOutcome::kDueRecovered: st.res.due_recovered += 1; break;
    case TrialOutcome::kSdc: st.res.sdc += 1; break;
    case TrialOutcome::kDataLoss: st.res.data_loss += 1; break;
  }
  st.res.total_cycles += r.stats.cycles;
  st.res.device_hours += static_cast<double>(r.stats.cycles) /
                         (spec.freq_mhz * 1e6) / 3600.0 * spec.accel;
}

}  // namespace

CampaignSummary run_campaign(const std::vector<CampaignCell>& cells,
                             const CampaignSpec& spec,
                             const CampaignOptions& opts) {
  if (opts.shard_count == 0 || opts.shard_index >= opts.shard_count) {
    throw std::invalid_argument(
        "run_campaign: shard_index/shard_count invalid");
  }
  if (spec.trials == 0) {
    throw std::invalid_argument("run_campaign: spec.trials must be >= 1");
  }
  const unsigned batch = std::max(1u, spec.batch);
  const unsigned min_trials =
      std::min(std::max(1u, spec.min_trials), spec.trials);

  // This shard's slice, in grid order. Each cell's SimConfig is built once:
  // scheme applied, storm targeted, event probability derived from the
  // rate and the targeted codec's codeword width.
  std::vector<CellState> states;
  for (const auto& c : cells) {
    if (c.index % opts.shard_count != opts.shard_index) continue;
    CellState st;
    st.res.cell = c;
    st.res.target = spec.target;
    st.cfg = spec.base;
    st.cfg.set_scheme(c.scheme);
    st.cfg.inject_target = spec.target;
    ecc::InjectorConfig inj;
    inj.patterns = c.rate.patterns;
    const unsigned bits = target_codeword_bits(st.cfg);
    inj.event_prob = event_prob_for(spec, c.rate.fit_per_mbit, bits);
    inj.event_lambda = event_lambda_for(spec, c.rate.fit_per_mbit, bits);
    st.cfg.faults = inj;
    states.push_back(std::move(st));
  }

  // Restore resume cursors (grid-index-matched). A cursor that names a
  // cell outside this shard's slice means the checkpoint belongs to a
  // different campaign/shard — hard error, never mixed statistics.
  if (opts.resume_from != nullptr) {
    for (const CellProgress& p : *opts.resume_from) {
      CellState* match = nullptr;
      for (CellState& st : states) {
        if (st.res.cell.index == p.index) {
          match = &st;
          break;
        }
      }
      if (match == nullptr) {
        throw std::invalid_argument(
            "run_campaign: resume cursor names cell " +
            std::to_string(p.index) +
            ", which is not in this campaign shard");
      }
      restore_progress(*match, p, spec);
    }
  }

  CampaignSummary summary;

  const auto snapshot_progress = [&states] {
    std::vector<CellProgress> out;
    out.reserve(states.size());
    for (const CellState& st : states) out.push_back(cell_progress(st));
    return out;
  };

  // Batched rounds: every unfinished cell contributes its next `batch`
  // trials to ONE run_sweep call (one thread pool over the whole round),
  // then the stopping rule is evaluated per cell. A cell's trajectory
  // depends only on its own trial outcomes — deterministic under any
  // thread count or shard layout. Interruption (should_stop) is only
  // honoured at round boundaries, so every resume cursor sits on the same
  // batch grid an uninterrupted run walks.
  bool any_round = false;
  for (;;) {
    std::vector<runner::SweepPoint> points;
    std::vector<std::pair<std::size_t, unsigned>> slices;  // (state, count)
    for (std::size_t si = 0; si < states.size(); ++si) {
      CellState& st = states[si];
      if (st.finished) continue;
      const unsigned bn =
          std::min<unsigned>(batch, spec.trials - st.done);
      slices.emplace_back(si, bn);
      for (unsigned t = 0; t < bn; ++t) {
        runner::SweepPoint p;
        p.index = points.size();
        p.workload = st.res.cell.workload;
        p.variant = st.res.cell.rate.label;
        p.config = st.cfg;
        p.mode = runner::RunMode::kProgram;
        p.replicate = st.done + t;
        points.push_back(std::move(p));
      }
    }
    if (points.empty()) break;

    runner::SweepOptions sopts;
    sopts.threads = opts.threads;
    sopts.base_seed = opts.base_seed;
    const runner::SweepSummary sum = runner::run_sweep(points, sopts);

    std::size_t ri = 0;
    for (const auto& [si, bn] : slices) {
      CellState& st = states[si];
      for (unsigned t = 0; t < bn; ++t, ++ri) {
        fold_trial(st, sum.results[ri], spec);
      }
      st.done += bn;
      if (st.done >= spec.trials) {
        st.finished = true;
      } else if (spec.target_half_width > 0.0 && st.done >= min_trials) {
        const Interval ci = wilson_interval(st.res.failures(), st.done,
                                            spec.confidence);
        st.finished = ci.half_width() <= spec.target_half_width;
      }
    }

    any_round = true;
    if (opts.on_round) opts.on_round(snapshot_progress());
    if (opts.should_stop && opts.should_stop()) {
      summary.interrupted = true;
      return summary;
    }
  }

  // A resume that had nothing left to run still reports its cursors once
  // (the CLI heartbeat and checkpoint writer see the final state).
  if (!any_round && opts.on_round) opts.on_round(snapshot_progress());

  // Finalize and emit in grid order.
  summary.cells.reserve(states.size());
  if (opts.sink != nullptr) opts.sink->begin(campaign_row_headers());
  for (CellState& st : states) {
    st.res.avf = st.res.events == 0
                     ? 0.0
                     : static_cast<double>(st.res.failures()) /
                           static_cast<double>(st.res.events);
    st.res.est = estimate_rates(st.res.failures(), st.res.trials,
                                st.res.device_hours, spec.confidence);
    summary.cells_run += 1;
    summary.trials_run += st.res.trials;
    summary.failures += st.res.failures();
    if (opts.sink != nullptr) opts.sink->row(campaign_to_row(st.res));
    summary.cells.push_back(std::move(st.res));
  }
  if (opts.sink != nullptr) opts.sink->end();
  return summary;
}

namespace {

/// The slice worker j runs: the sweep driver's shared subdivision policy,
/// at cell rather than point granularity.
CampaignOptions worker_options(const CampaignProcOptions& opts, unsigned j) {
  CampaignOptions o = opts.worker;
  const runner::WorkerShard ws = runner::proc_worker_shard(
      opts.worker.shard_index, opts.worker.shard_count, opts.worker.threads,
      opts.procs, j);
  o.shard_index = ws.shard_index;
  o.shard_count = ws.shard_count;
  o.threads = ws.threads;
  o.sink = nullptr;
  return o;
}

int run_campaign_worker(const std::vector<CampaignCell>& cells,
                        const CampaignSpec& spec,
                        const CampaignProcOptions& opts, unsigned j,
                        const std::string& rows_path,
                        const std::string& meta_path) {
  std::ofstream rows(rows_path, std::ios::trunc);
  if (!rows) return 2;
  const auto sink = report::make_row_writer(opts.format, rows);
  if (sink == nullptr) return 2;

  CampaignOptions o = worker_options(opts, j);
  o.sink = sink.get();
  const CampaignSummary sum = run_campaign(cells, spec, o);
  rows.flush();
  if (!rows) return 2;

  std::ofstream meta(meta_path, std::ios::trunc);
  meta << sum.cells_run << ' ' << sum.trials_run << ' ' << sum.failures
       << '\n';
  meta.flush();
  if (!meta) return 2;
  return 0;
}

}  // namespace

CampaignProcSummary run_campaign_procs(const std::vector<CampaignCell>& cells,
                                       const CampaignSpec& spec,
                                       const CampaignProcOptions& opts,
                                       std::ostream& rows_out) {
  if (opts.procs == 0) {
    throw std::invalid_argument("run_campaign_procs: procs must be >= 1");
  }
  if (opts.worker.sink != nullptr) {
    throw std::invalid_argument(
        "run_campaign_procs: rows flow through shard files; worker.sink "
        "must be unset");
  }
  if (opts.worker.resume_from != nullptr || opts.worker.on_round ||
      opts.worker.should_stop) {
    throw std::invalid_argument(
        "run_campaign_procs: checkpoint/resume hooks are single-process "
        "(run the checkpointed campaign with procs=1)");
  }

  CampaignProcSummary summary;

  if (opts.procs == 1) {
    // No fork, no scratch files: the classic in-process path.
    const auto sink = report::make_row_writer(opts.format, rows_out);
    if (sink == nullptr) {
      throw std::invalid_argument(
          "run_campaign_procs: unknown row format \"" + opts.format + "\"");
    }
    CampaignOptions o = opts.worker;
    o.sink = sink.get();
    const CampaignSummary sum = run_campaign(cells, spec, o);
    summary.cells_run = sum.cells_run;
    summary.trials_run = sum.trials_run;
    summary.failures = sum.failures;
    return summary;
  }

  if (report::make_row_writer(opts.format, rows_out) == nullptr) {
    throw std::invalid_argument("run_campaign_procs: unknown row format \"" +
                                opts.format + "\"");
  }

  runner::ForkMergeOptions fm;
  fm.procs = opts.procs;
  fm.scratch_prefix = opts.scratch_prefix;
  fm.csv_header = opts.format == "csv";
  const runner::ForkMergeSummary fms = runner::fork_workers_and_merge(
      fm,
      [&](unsigned j, const std::string& rows_path,
          const std::string& meta_path) {
        return run_campaign_worker(cells, spec, opts, j, rows_path,
                                   meta_path);
      },
      rows_out);
  summary.cells_run = static_cast<std::size_t>(fms.meta[0]);
  summary.trials_run = fms.meta[1];
  summary.failures = fms.meta[2];
  summary.failed_workers = fms.failed_workers;
  summary.worker_diagnostics = fms.diagnostics;
  return summary;
}

}  // namespace laec::reliability
