#include "reliability/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace laec::reliability {

namespace {

/// Inverse standard-normal CDF, Acklam's rational approximation.
double inverse_normal_cdf(double p) {
  // Coefficients in rational approximations.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;

  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double z_for_confidence(double confidence) {
  const double conf = std::clamp(confidence, 0.0, 0.999999999);
  return inverse_normal_cdf(0.5 + conf / 2.0);
}

Interval wilson_interval(u64 successes, u64 trials, double confidence) {
  // Degenerate inputs get the vacuous interval rather than NaN: a NaN
  // half-width would make the sequential stopping rule's "narrow enough"
  // comparison silently false forever.
  if (trials == 0 || !std::isfinite(confidence)) return {0.0, 1.0};
  // A caller folding counters can momentarily hand successes > trials
  // (e.g. multi-event trials); saturate rather than launch p above 1,
  // where p*(1-p) goes negative and the sqrt returns NaN.
  successes = std::min(successes, trials);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = z_for_confidence(confidence);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  // successes == 0 or == trials: p*(1-p) collapses to 0 and the margin is
  // the pure z2/(4n^2) continuity term — well-defined, no special case.
  const double margin =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  Interval ci;
  ci.lo = std::max(0.0, center - margin);
  ci.hi = std::min(1.0, center + margin);
  if (!std::isfinite(ci.lo)) ci.lo = 0.0;
  if (!std::isfinite(ci.hi)) ci.hi = 1.0;
  return ci;
}

RateEstimate estimate_rates(u64 failures, u64 trials, double device_hours,
                            double confidence) {
  RateEstimate e;
  const Interval ci = wilson_interval(failures, trials, confidence);
  e.p_lo = ci.lo;
  e.p_hi = ci.hi;
  // p_fail is defined whenever there are trials, even when the time base is
  // degenerate — an early return that skipped it used to report p_fail = 0
  // for cells with real failures.
  if (trials > 0) {
    e.p_fail = static_cast<double>(failures) / static_cast<double>(trials);
  }
  if (trials == 0 || device_hours <= 0.0) {
    e.mttf_hours = std::numeric_limits<double>::infinity();
    return e;
  }
  // The linear map p -> rate: the cell's n trials together represent
  // device_hours of real time, so a per-trial failure probability p is a
  // rate of p * n / device_hours failures per hour.
  const double per_hour = static_cast<double>(trials) / device_hours;
  e.fit = e.p_fail * per_hour * 1e9;
  e.fit_lo = e.p_lo * per_hour * 1e9;
  e.fit_hi = e.p_hi * per_hour * 1e9;
  e.mttf_hours = e.fit > 0.0 ? 1e9 / e.fit
                             : std::numeric_limits<double>::infinity();
  return e;
}

}  // namespace laec::reliability
