#include <cassert>

#include "common/bitops.hpp"
#include "isa/isa.hpp"

namespace laec::isa {

std::string_view mnemonic(Op op) {
  switch (op) {
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kSll: return "sll";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kMul: return "mul";
    case Op::kMulh: return "mulh";
    case Op::kDiv: return "div";
    case Op::kRem: return "rem";
    case Op::kLui: return "lui";
    case Op::kLw: return "lw";
    case Op::kLh: return "lh";
    case Op::kLhu: return "lhu";
    case Op::kLb: return "lb";
    case Op::kLbu: return "lbu";
    case Op::kSw: return "sw";
    case Op::kSh: return "sh";
    case Op::kSb: return "sb";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    case Op::kNop: return "nop";
    case Op::kHalt: return "halt";
    case Op::kOpCount: break;
  }
  return "?";
}

OpClass op_class(Op op) {
  switch (op) {
    case Op::kLw:
    case Op::kLh:
    case Op::kLhu:
    case Op::kLb:
    case Op::kLbu:
      return OpClass::kLoad;
    case Op::kSw:
    case Op::kSh:
    case Op::kSb:
      return OpClass::kStore;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return OpClass::kBranch;
    case Op::kJal:
    case Op::kJalr:
      return OpClass::kJump;
    case Op::kNop:
      return OpClass::kNop;
    case Op::kHalt:
      return OpClass::kHalt;
    default:
      return OpClass::kAlu;
  }
}

unsigned mem_access_bytes(Op op) {
  switch (op) {
    case Op::kLw:
    case Op::kSw:
      return 4;
    case Op::kLh:
    case Op::kLhu:
    case Op::kSh:
      return 2;
    case Op::kLb:
    case Op::kLbu:
    case Op::kSb:
      return 1;
    default:
      return 0;
  }
}

std::optional<u8> DecodedInst::dest() const {
  switch (cls()) {
    case OpClass::kAlu:
    case OpClass::kLoad:
    case OpClass::kJump:
      return (rd == 0) ? std::nullopt : std::optional<u8>(rd);
    default:
      return std::nullopt;
  }
}

std::array<std::optional<u8>, 2> DecodedInst::exec_srcs() const {
  std::array<std::optional<u8>, 2> s{std::nullopt, std::nullopt};
  switch (cls()) {
    case OpClass::kAlu:
      if (op == Op::kLui) return s;
      s[0] = rs1;
      if (!uses_imm) s[1] = rs2;
      return s;
    case OpClass::kLoad:
    case OpClass::kStore:
      s[0] = rs1;
      if (!uses_imm) s[1] = rs2;
      return s;
    case OpClass::kBranch:
      s[0] = rs1;
      s[1] = rs2;
      return s;
    case OpClass::kJump:
      if (op == Op::kJalr) s[0] = rs1;
      return s;
    default:
      return s;
  }
}

std::optional<u8> DecodedInst::store_data_src() const {
  if (!is_store()) return std::nullopt;
  return rd;
}

u32 encode(const DecodedInst& d) {
  u32 w = static_cast<u32>(d.op) << 26;
  if (d.op == Op::kLui || d.op == Op::kJal) {
    assert(d.imm >= kImm20Min && d.imm <= kImm20Max);
    w |= (static_cast<u32>(d.rd) & 0x1f) << 20;
    w |= static_cast<u32>(d.imm) & 0xfffffu;
    w |= 1u << 25;
    return w;
  }
  if (op_class(d.op) == OpClass::kBranch) {
    // Branch format: rs1, rs2 compared; 15-bit word displacement split
    // across the rd field (high 5 bits) and bits [9:0].
    assert(d.imm >= kBranchDispMin && d.imm <= kBranchDispMax);
    const u32 disp = static_cast<u32>(d.imm) & 0x7fffu;
    w |= ((disp >> 10) & 0x1f) << 20;
    w |= (static_cast<u32>(d.rs1) & 0x1f) << 15;
    w |= (static_cast<u32>(d.rs2) & 0x1f) << 10;
    w |= disp & 0x3ffu;
    return w;
  }
  w |= (static_cast<u32>(d.rd) & 0x1f) << 20;
  w |= (static_cast<u32>(d.rs1) & 0x1f) << 15;
  if (d.uses_imm) {
    assert(d.imm >= kImmMin && d.imm <= kImmMax);
    w |= 1u << 25;
    w |= static_cast<u32>(d.imm) & 0x1fffu;
  } else {
    w |= (static_cast<u32>(d.rs2) & 0x1f) << 10;
  }
  return w;
}

DecodedInst decode(u32 word) {
  DecodedInst d;
  const u32 opc = word >> 26;
  if (opc >= static_cast<u32>(Op::kOpCount)) {
    d.op = Op::kHalt;
    return d;
  }
  d.op = static_cast<Op>(opc);
  if (d.op == Op::kLui || d.op == Op::kJal) {
    d.rd = static_cast<u8>((word >> 20) & 0x1f);
    d.uses_imm = true;
    d.imm = sign_extend(word & 0xfffffu, 20);
    return d;
  }
  if (op_class(d.op) == OpClass::kBranch) {
    d.rs1 = static_cast<u8>((word >> 15) & 0x1f);
    d.rs2 = static_cast<u8>((word >> 10) & 0x1f);
    const u32 disp = (((word >> 20) & 0x1f) << 10) | (word & 0x3ffu);
    d.imm = sign_extend(disp, 15);
    d.uses_imm = true;
    return d;
  }
  d.rd = static_cast<u8>((word >> 20) & 0x1f);
  d.rs1 = static_cast<u8>((word >> 15) & 0x1f);
  if ((word >> 25) & 1u) {
    d.uses_imm = true;
    d.imm = sign_extend(word & 0x1fffu, 13);
  } else {
    d.rs2 = static_cast<u8>((word >> 10) & 0x1f);
  }
  return d;
}

}  // namespace laec::isa
