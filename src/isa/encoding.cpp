#include <cassert>

#include "common/bitops.hpp"
#include "isa/isa.hpp"

namespace laec::isa {

std::string_view mnemonic(Op op) {
  switch (op) {
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kSll: return "sll";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kMul: return "mul";
    case Op::kMulh: return "mulh";
    case Op::kDiv: return "div";
    case Op::kRem: return "rem";
    case Op::kLui: return "lui";
    case Op::kLw: return "lw";
    case Op::kLh: return "lh";
    case Op::kLhu: return "lhu";
    case Op::kLb: return "lb";
    case Op::kLbu: return "lbu";
    case Op::kSw: return "sw";
    case Op::kSh: return "sh";
    case Op::kSb: return "sb";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    case Op::kNop: return "nop";
    case Op::kHalt: return "halt";
    case Op::kOpCount: break;
  }
  return "?";
}

u32 encode(const DecodedInst& d) {
  u32 w = static_cast<u32>(d.op) << 26;
  if (d.op == Op::kLui || d.op == Op::kJal) {
    assert(d.imm >= kImm20Min && d.imm <= kImm20Max);
    w |= (static_cast<u32>(d.rd) & 0x1f) << 20;
    w |= static_cast<u32>(d.imm) & 0xfffffu;
    w |= 1u << 25;
    return w;
  }
  if (op_class(d.op) == OpClass::kBranch) {
    // Branch format: rs1, rs2 compared; 15-bit word displacement split
    // across the rd field (high 5 bits) and bits [9:0].
    assert(d.imm >= kBranchDispMin && d.imm <= kBranchDispMax);
    const u32 disp = static_cast<u32>(d.imm) & 0x7fffu;
    w |= ((disp >> 10) & 0x1f) << 20;
    w |= (static_cast<u32>(d.rs1) & 0x1f) << 15;
    w |= (static_cast<u32>(d.rs2) & 0x1f) << 10;
    w |= disp & 0x3ffu;
    return w;
  }
  w |= (static_cast<u32>(d.rd) & 0x1f) << 20;
  w |= (static_cast<u32>(d.rs1) & 0x1f) << 15;
  if (d.uses_imm) {
    assert(d.imm >= kImmMin && d.imm <= kImmMax);
    w |= 1u << 25;
    w |= static_cast<u32>(d.imm) & 0x1fffu;
  } else {
    w |= (static_cast<u32>(d.rs2) & 0x1f) << 10;
  }
  return w;
}

DecodedInst decode(u32 word) {
  DecodedInst d;
  const u32 opc = word >> 26;
  if (opc >= static_cast<u32>(Op::kOpCount)) {
    d.op = Op::kHalt;
    return d;
  }
  d.op = static_cast<Op>(opc);
  if (d.op == Op::kLui || d.op == Op::kJal) {
    d.rd = static_cast<u8>((word >> 20) & 0x1f);
    d.uses_imm = true;
    d.imm = sign_extend(word & 0xfffffu, 20);
    return d;
  }
  if (op_class(d.op) == OpClass::kBranch) {
    d.rs1 = static_cast<u8>((word >> 15) & 0x1f);
    d.rs2 = static_cast<u8>((word >> 10) & 0x1f);
    const u32 disp = (((word >> 20) & 0x1f) << 10) | (word & 0x3ffu);
    d.imm = sign_extend(disp, 15);
    d.uses_imm = true;
    return d;
  }
  d.rd = static_cast<u8>((word >> 20) & 0x1f);
  d.rs1 = static_cast<u8>((word >> 15) & 0x1f);
  if ((word >> 25) & 1u) {
    d.uses_imm = true;
    d.imm = sign_extend(word & 0x1fffu, 13);
  } else {
    d.rs2 = static_cast<u8>((word >> 10) & 0x1f);
  }
  return d;
}

}  // namespace laec::isa
