// SRV8 — the small SPARC-V8-flavoured RISC ISA executed by the simulated
// LEON4/NGMP-like cores.
//
// Design points that matter for the reproduction:
//  * 32 general-purpose 32-bit registers, r0 hardwired to zero;
//  * loads/stores address memory as [rs1 + rs2] or [rs1 + simm13], the SPARC
//    register+register form the paper's chronograms use (`r3 = load(r1+r2)`);
//  * stores read their data from rd (SPARC `st rd, [..]` convention);
//  * fixed 32-bit encodings so the instruction cache is exercised honestly.
#pragma once

#include <array>
#include <optional>
#include <string_view>

#include "common/types.hpp"

namespace laec::isa {

inline constexpr unsigned kNumRegs = 32;

/// Opcode space. Keep the enumerators stable: they are the upper bits of the
/// binary encoding.
enum class Op : u8 {
  // ALU, register or immediate second operand (see DecodedInst::uses_imm).
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kSll,
  kSrl,
  kSra,
  kSlt,   // signed set-less-than
  kSltu,  // unsigned set-less-than
  kMul,   // low 32 bits of product
  kMulh,  // high 32 bits of signed product
  kDiv,   // signed division (div by zero yields all-ones, no trap)
  kRem,   // signed remainder (rem by zero yields dividend)
  kLui,   // rd = imm << 12

  // Memory. Effective address = rs1 + (rs2 | simm13).
  kLw,
  kLh,
  kLhu,
  kLb,
  kLbu,
  kSw,
  kSh,
  kSb,

  // Control. Branch displacement is in instruction words relative to the
  // branch's own PC.
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kJal,   // rd = pc + 4; pc += 4 * disp
  kJalr,  // rd = pc + 4; pc = (rs1 + imm) & ~3

  kNop,
  kHalt,  // stops the core when it retires

  kOpCount,
};

[[nodiscard]] std::string_view mnemonic(Op op);

/// Coarse classes used by the pipeline's hazard/stat logic.
enum class OpClass : u8 { kAlu, kLoad, kStore, kBranch, kJump, kNop, kHalt };

/// Defined inline: the pipeline classifies every in-flight instruction
/// several times per simulated cycle, so this must compile down to a jump
/// table the caller can inline rather than an out-of-line call.
[[nodiscard]] constexpr OpClass op_class(Op op) {
  switch (op) {
    case Op::kLw:
    case Op::kLh:
    case Op::kLhu:
    case Op::kLb:
    case Op::kLbu:
      return OpClass::kLoad;
    case Op::kSw:
    case Op::kSh:
    case Op::kSb:
      return OpClass::kStore;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return OpClass::kBranch;
    case Op::kJal:
    case Op::kJalr:
      return OpClass::kJump;
    case Op::kNop:
      return OpClass::kNop;
    case Op::kHalt:
      return OpClass::kHalt;
    default:
      return OpClass::kAlu;
  }
}

/// A fully decoded instruction. This is also the form synthetic traces
/// inject directly into the pipeline, bypassing fetch/decode of encodings.
struct DecodedInst {
  Op op = Op::kNop;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i32 imm = 0;
  bool uses_imm = false;

  [[nodiscard]] constexpr OpClass cls() const { return op_class(op); }
  [[nodiscard]] constexpr bool is_load() const {
    return cls() == OpClass::kLoad;
  }
  [[nodiscard]] constexpr bool is_store() const {
    return cls() == OpClass::kStore;
  }
  [[nodiscard]] constexpr bool is_mem() const {
    return is_load() || is_store();
  }
  [[nodiscard]] constexpr bool is_branch() const {
    return cls() == OpClass::kBranch || cls() == OpClass::kJump;
  }

  /// Destination register, or nullopt when the instruction writes none
  /// (stores, branches, nop, halt; writes to r0 are also discarded).
  /// Inline: the hazard scans call this for every pipeline slot, every
  /// cycle.
  [[nodiscard]] constexpr std::optional<u8> dest() const {
    switch (cls()) {
      case OpClass::kAlu:
      case OpClass::kLoad:
      case OpClass::kJump:
        return (rd == 0) ? std::nullopt : std::optional<u8>(rd);
      default:
        return std::nullopt;
    }
  }

  /// Source registers whose values feed address computation / the ALU /
  /// the branch comparison — i.e. values needed at the start of EX (or RA
  /// when a load is anticipated). Excludes the store-data register.
  [[nodiscard]] constexpr std::array<std::optional<u8>, 2> exec_srcs() const {
    std::array<std::optional<u8>, 2> s{std::nullopt, std::nullopt};
    switch (cls()) {
      case OpClass::kAlu:
        if (op == Op::kLui) return s;
        s[0] = rs1;
        if (!uses_imm) s[1] = rs2;
        return s;
      case OpClass::kLoad:
      case OpClass::kStore:
        s[0] = rs1;
        if (!uses_imm) s[1] = rs2;
        return s;
      case OpClass::kBranch:
        s[0] = rs1;
        s[1] = rs2;
        return s;
      case OpClass::kJump:
        if (op == Op::kJalr) s[0] = rs1;
        return s;
      default:
        return s;
    }
  }

  /// The store-data register (SPARC rd convention), needed by the time the
  /// store enters the write buffer.
  [[nodiscard]] constexpr std::optional<u8> store_data_src() const {
    if (!is_store()) return std::nullopt;
    return rd;
  }

  bool operator==(const DecodedInst&) const = default;
};

/// Number of bytes a memory op transfers.
[[nodiscard]] constexpr unsigned mem_access_bytes(Op op) {
  switch (op) {
    case Op::kLw:
    case Op::kSw:
      return 4;
    case Op::kLh:
    case Op::kLhu:
    case Op::kSh:
      return 2;
    case Op::kLb:
    case Op::kLbu:
    case Op::kSb:
      return 1;
    default:
      return 0;
  }
}

// ---------------------------------------------------------------------------
// Binary encoding (32-bit words).
//
//   [31:26] opcode   [25] i (immediate form)   [24:20] rd   [19:15] rs1
//   i=0: [14:10] rs2
//   i=1: [12:0] simm13 (sign-extended)
//   kLui / kJal: [19:0] simm20 (sign-extended), rs1 unused
// ---------------------------------------------------------------------------

/// Encode to the 32-bit binary form. Immediates out of range are a bug in
/// the caller (asserted).
[[nodiscard]] u32 encode(const DecodedInst& d);

/// Decode a 32-bit word. Unknown opcodes decode to kHalt so a runaway core
/// stops instead of executing garbage.
[[nodiscard]] DecodedInst decode(u32 word);

/// Immediate range limits of the 13-bit form.
inline constexpr i32 kImmMin = -4096;
inline constexpr i32 kImmMax = 4095;
inline constexpr i32 kImm20Min = -(1 << 19);
inline constexpr i32 kImm20Max = (1 << 19) - 1;
/// Branch word-displacement limits (15-bit signed field).
inline constexpr i32 kBranchDispMin = -(1 << 14);
inline constexpr i32 kBranchDispMax = (1 << 14) - 1;

}  // namespace laec::isa
