#include "isa/program.hpp"

#include <cassert>
#include <stdexcept>

namespace laec::isa {

Addr Program::symbol(const std::string& s) const {
  auto it = symbols.find(s);
  if (it == symbols.end()) {
    throw std::out_of_range("Program::symbol: unknown symbol '" + s + "'");
  }
  return it->second;
}

bool Program::contains_pc(Addr pc) const {
  return pc >= text_base && pc < text_base + 4 * text.size() &&
         (pc & 3u) == 0;
}

DecodedInst Program::inst_at(Addr pc) const {
  assert(contains_pc(pc));
  return decode(text[(pc - text_base) / 4]);
}

}  // namespace laec::isa
