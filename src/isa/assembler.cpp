#include "isa/assembler.hpp"

#include <cassert>
#include <stdexcept>

#include "common/bitops.hpp"

namespace laec::isa {

Assembler::Assembler(std::string program_name, Addr text_base,
                     Addr data_base) {
  prog_.name = std::move(program_name);
  prog_.text_base = text_base;
  prog_.data_base = data_base;
  prog_.entry = text_base;
}

Addr Assembler::here() const {
  return prog_.text_base + static_cast<Addr>(4 * insts_.size());
}

Addr Assembler::data_cursor() const {
  return prog_.data_base + static_cast<Addr>(prog_.data.size());
}

Assembler& Assembler::label(const std::string& name) {
  if (!prog_.symbols.emplace(name, here()).second) {
    throw std::runtime_error("Assembler: duplicate label '" + name + "'");
  }
  return *this;
}

Assembler& Assembler::data_label(const std::string& name) {
  if (!prog_.symbols.emplace(name, data_cursor()).second) {
    throw std::runtime_error("Assembler: duplicate label '" + name + "'");
  }
  return *this;
}

Assembler& Assembler::rrr(Op op, R rd, R rs1, R rs2) {
  DecodedInst d;
  d.op = op;
  d.rd = rd;
  d.rs1 = rs1;
  d.rs2 = rs2;
  d.uses_imm = false;
  insts_.push_back(d);
  return *this;
}

Assembler& Assembler::rri(Op op, R rd, R rs1, i32 imm) {
  if (imm < kImmMin || imm > kImmMax) {
    throw std::runtime_error("Assembler: 13-bit immediate out of range");
  }
  DecodedInst d;
  d.op = op;
  d.rd = rd;
  d.rs1 = rs1;
  d.imm = imm;
  d.uses_imm = true;
  insts_.push_back(d);
  return *this;
}

Assembler& Assembler::lui(R rd, i32 imm20) {
  if (imm20 < kImm20Min || imm20 > kImm20Max) {
    throw std::runtime_error("Assembler: 20-bit immediate out of range");
  }
  DecodedInst d;
  d.op = Op::kLui;
  d.rd = rd;
  d.imm = imm20;
  d.uses_imm = true;
  insts_.push_back(d);
  return *this;
}

Assembler& Assembler::li(R rd, u32 value) {
  const i32 sv = static_cast<i32>(value);
  if (sv >= kImmMin && sv <= kImmMax) {
    return addi(rd, R{0}, sv);
  }
  // lui loads value[31:12]; ori fills value[11:0] (ori immediate must be
  // non-negative, so use the low 12 bits only).
  const u32 low = value & 0xfffu;
  const u32 high = value >> 12;
  lui(rd, sign_extend(high, 20));
  if (low != 0) ori(rd, rd, static_cast<i32>(low));
  return *this;
}

Assembler& Assembler::nop() {
  DecodedInst d;
  d.op = Op::kNop;
  insts_.push_back(d);
  return *this;
}

Assembler& Assembler::branch(Op op, R rs1, R rs2, const std::string& target) {
  DecodedInst d;
  d.op = op;
  d.rs1 = rs1;
  d.rs2 = rs2;
  d.uses_imm = true;
  fixups_.push_back({insts_.size(), target});
  insts_.push_back(d);
  return *this;
}

Assembler& Assembler::beq(R a, R b, const std::string& t) { return branch(Op::kBeq, a, b, t); }
Assembler& Assembler::bne(R a, R b, const std::string& t) { return branch(Op::kBne, a, b, t); }
Assembler& Assembler::blt(R a, R b, const std::string& t) { return branch(Op::kBlt, a, b, t); }
Assembler& Assembler::bge(R a, R b, const std::string& t) { return branch(Op::kBge, a, b, t); }
Assembler& Assembler::bltu(R a, R b, const std::string& t) { return branch(Op::kBltu, a, b, t); }
Assembler& Assembler::bgeu(R a, R b, const std::string& t) { return branch(Op::kBgeu, a, b, t); }

Assembler& Assembler::jal(R rd, const std::string& target) {
  DecodedInst d;
  d.op = Op::kJal;
  d.rd = rd;
  d.uses_imm = true;
  fixups_.push_back({insts_.size(), target});
  insts_.push_back(d);
  return *this;
}

Assembler& Assembler::jalr(R rd, R rs1, i32 imm) {
  DecodedInst d;
  d.op = Op::kJalr;
  d.rd = rd;
  d.rs1 = rs1;
  d.imm = imm;
  d.uses_imm = true;
  insts_.push_back(d);
  return *this;
}

Assembler& Assembler::halt() {
  DecodedInst d;
  d.op = Op::kHalt;
  insts_.push_back(d);
  return *this;
}

Assembler& Assembler::raw(const DecodedInst& d) {
  insts_.push_back(d);
  return *this;
}

Addr Assembler::data_word(u32 value) {
  const Addr at = data_align(4);
  prog_.data.push_back(static_cast<u8>(value & 0xff));
  prog_.data.push_back(static_cast<u8>((value >> 8) & 0xff));
  prog_.data.push_back(static_cast<u8>((value >> 16) & 0xff));
  prog_.data.push_back(static_cast<u8>((value >> 24) & 0xff));
  return at;
}

Addr Assembler::data_fill(std::size_t count, u32 value) {
  const Addr at = data_align(4);
  for (std::size_t i = 0; i < count; ++i) data_word(value);
  return at;
}

Addr Assembler::data_words(const std::vector<u32>& values) {
  const Addr at = data_align(4);
  for (u32 v : values) data_word(v);
  return at;
}

Addr Assembler::data_bytes(const std::vector<u8>& bytes) {
  const Addr at = data_cursor();
  prog_.data.insert(prog_.data.end(), bytes.begin(), bytes.end());
  return at;
}

Addr Assembler::data_align(unsigned alignment) {
  assert(is_pow2(alignment));
  while ((data_cursor() & (alignment - 1)) != 0) prog_.data.push_back(0);
  return data_cursor();
}

Program Assembler::finish() {
  if (finished_) throw std::runtime_error("Assembler: finish() called twice");
  finished_ = true;
  for (const Fixup& f : fixups_) {
    auto it = prog_.symbols.find(f.target);
    if (it == prog_.symbols.end()) {
      throw std::runtime_error("Assembler: undefined label '" + f.target + "'");
    }
    DecodedInst& d = insts_[f.inst_index];
    const Addr pc = prog_.text_base + static_cast<Addr>(4 * f.inst_index);
    const i64 disp_bytes =
        static_cast<i64>(it->second) - static_cast<i64>(pc);
    assert(disp_bytes % 4 == 0);
    const i64 disp = disp_bytes / 4;
    const bool is_jal = d.op == Op::kJal;
    const i64 lo = is_jal ? kImm20Min : kBranchDispMin;
    const i64 hi = is_jal ? kImm20Max : kBranchDispMax;
    if (disp < lo || disp > hi) {
      throw std::runtime_error("Assembler: branch displacement overflow to '" +
                               f.target + "'");
    }
    d.imm = static_cast<i32>(disp);
  }
  prog_.text.reserve(insts_.size());
  for (const DecodedInst& d : insts_) prog_.text.push_back(encode(d));
  return std::move(prog_);
}

}  // namespace laec::isa
