// Textual rendering of decoded instructions.
#pragma once

#include <string>

#include "isa/isa.hpp"

namespace laec::isa {

/// Conventional disassembly, e.g. "lw r3, [r1+r2]" / "add r5, r3, r4".
[[nodiscard]] std::string disassemble(const DecodedInst& d);

/// Paper-figure style used by the chronogram renderer, e.g.
/// "r3 = load(r1+r2)" / "r5 = r3 + r4".
[[nodiscard]] std::string paper_style(const DecodedInst& d);

}  // namespace laec::isa
