// A linked program image: text + data segments plus symbols, ready to be
// loaded into simulated memory.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/isa.hpp"

namespace laec::isa {

/// Default memory map used by the assembler and the workloads. The simulated
/// machine is single-address-space with no MMU, like the NGMP.
inline constexpr Addr kDefaultTextBase = 0x0000'1000;
inline constexpr Addr kDefaultDataBase = 0x0010'0000;
inline constexpr Addr kDefaultStackTop = 0x0020'0000;

class Program {
 public:
  Addr text_base = kDefaultTextBase;
  Addr data_base = kDefaultDataBase;
  Addr entry = kDefaultTextBase;

  std::vector<u32> text;  ///< encoded instructions
  std::vector<u8> data;   ///< initialized data segment

  std::map<std::string, Addr> symbols;  ///< labels (text and data)

  std::string name;  ///< human-readable program name (for reports)

  [[nodiscard]] Addr symbol(const std::string& s) const;
  [[nodiscard]] std::size_t num_instructions() const { return text.size(); }

  /// Decoded view of instruction at `pc` (must lie in text).
  [[nodiscard]] DecodedInst inst_at(Addr pc) const;
  [[nodiscard]] bool contains_pc(Addr pc) const;
};

}  // namespace laec::isa
