// Two-pass programmatic assembler for SRV8.
//
// Workload kernels are C++ functions that build programs through this fluent
// API; labels may be referenced before they are defined and are resolved in
// `finish()`. Example:
//
//   Assembler a("dot");
//   a.li(R{1}, a.data_word(0))       // pointer to vector
//    .li(R{2}, 16)                   // length
//    .label("loop")
//    .lw(R{3}, R{1}, 0)
//    .add(R{4}, R{4}, R{3})
//    .addi(R{1}, R{1}, 4)
//    .addi(R{2}, R{2}, -1)
//    .bne(R{2}, R{0}, "loop")
//    .halt();
//   Program p = a.finish();
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "isa/program.hpp"

namespace laec::isa {

/// Strongly-typed register index to keep builder call sites readable.
struct R {
  u8 idx;
  constexpr explicit R(unsigned i) : idx(static_cast<u8>(i)) {}
  constexpr operator u8() const { return idx; }  // NOLINT: deliberate
};

class Assembler {
 public:
  explicit Assembler(std::string program_name = "program",
                     Addr text_base = kDefaultTextBase,
                     Addr data_base = kDefaultDataBase);

  // --- labels -------------------------------------------------------------
  /// Define a text label at the current instruction position.
  Assembler& label(const std::string& name);

  // --- ALU, register-register ---------------------------------------------
  Assembler& add(R rd, R rs1, R rs2) { return rrr(Op::kAdd, rd, rs1, rs2); }
  Assembler& sub(R rd, R rs1, R rs2) { return rrr(Op::kSub, rd, rs1, rs2); }
  Assembler& and_(R rd, R rs1, R rs2) { return rrr(Op::kAnd, rd, rs1, rs2); }
  Assembler& or_(R rd, R rs1, R rs2) { return rrr(Op::kOr, rd, rs1, rs2); }
  Assembler& xor_(R rd, R rs1, R rs2) { return rrr(Op::kXor, rd, rs1, rs2); }
  Assembler& sll(R rd, R rs1, R rs2) { return rrr(Op::kSll, rd, rs1, rs2); }
  Assembler& srl(R rd, R rs1, R rs2) { return rrr(Op::kSrl, rd, rs1, rs2); }
  Assembler& sra(R rd, R rs1, R rs2) { return rrr(Op::kSra, rd, rs1, rs2); }
  Assembler& slt(R rd, R rs1, R rs2) { return rrr(Op::kSlt, rd, rs1, rs2); }
  Assembler& sltu(R rd, R rs1, R rs2) { return rrr(Op::kSltu, rd, rs1, rs2); }
  Assembler& mul(R rd, R rs1, R rs2) { return rrr(Op::kMul, rd, rs1, rs2); }
  Assembler& mulh(R rd, R rs1, R rs2) { return rrr(Op::kMulh, rd, rs1, rs2); }
  Assembler& div(R rd, R rs1, R rs2) { return rrr(Op::kDiv, rd, rs1, rs2); }
  Assembler& rem(R rd, R rs1, R rs2) { return rrr(Op::kRem, rd, rs1, rs2); }

  // --- ALU, register-immediate ----------------------------------------------
  Assembler& addi(R rd, R rs1, i32 imm) { return rri(Op::kAdd, rd, rs1, imm); }
  Assembler& subi(R rd, R rs1, i32 imm) { return rri(Op::kSub, rd, rs1, imm); }
  Assembler& andi(R rd, R rs1, i32 imm) { return rri(Op::kAnd, rd, rs1, imm); }
  Assembler& ori(R rd, R rs1, i32 imm) { return rri(Op::kOr, rd, rs1, imm); }
  Assembler& xori(R rd, R rs1, i32 imm) { return rri(Op::kXor, rd, rs1, imm); }
  Assembler& slli(R rd, R rs1, i32 imm) { return rri(Op::kSll, rd, rs1, imm); }
  Assembler& srli(R rd, R rs1, i32 imm) { return rri(Op::kSrl, rd, rs1, imm); }
  Assembler& srai(R rd, R rs1, i32 imm) { return rri(Op::kSra, rd, rs1, imm); }
  Assembler& slti(R rd, R rs1, i32 imm) { return rri(Op::kSlt, rd, rs1, imm); }
  Assembler& muli(R rd, R rs1, i32 imm) { return rri(Op::kMul, rd, rs1, imm); }
  Assembler& lui(R rd, i32 imm20);

  /// Load a full 32-bit constant (expands to lui+ori or a single addi).
  Assembler& li(R rd, u32 value);
  /// Register move (or with r0).
  Assembler& mv(R rd, R rs) { return rrr(Op::kOr, rd, rs, R{0}); }
  Assembler& nop();

  // --- memory ----------------------------------------------------------------
  // Register+register form (the SPARC-style form the paper's figures use).
  Assembler& lw(R rd, R rs1, R rs2) { return rrr(Op::kLw, rd, rs1, rs2); }
  Assembler& lh(R rd, R rs1, R rs2) { return rrr(Op::kLh, rd, rs1, rs2); }
  Assembler& lhu(R rd, R rs1, R rs2) { return rrr(Op::kLhu, rd, rs1, rs2); }
  Assembler& lb(R rd, R rs1, R rs2) { return rrr(Op::kLb, rd, rs1, rs2); }
  Assembler& lbu(R rd, R rs1, R rs2) { return rrr(Op::kLbu, rd, rs1, rs2); }
  // Register+immediate form.
  Assembler& lw(R rd, R rs1, i32 off) { return rri(Op::kLw, rd, rs1, off); }
  Assembler& lh(R rd, R rs1, i32 off) { return rri(Op::kLh, rd, rs1, off); }
  Assembler& lhu(R rd, R rs1, i32 off) { return rri(Op::kLhu, rd, rs1, off); }
  Assembler& lb(R rd, R rs1, i32 off) { return rri(Op::kLb, rd, rs1, off); }
  Assembler& lbu(R rd, R rs1, i32 off) { return rri(Op::kLbu, rd, rs1, off); }
  // Stores: data register first (SPARC `st rd, [rs1+rs2]`).
  Assembler& sw(R rdata, R rs1, R rs2) { return rrr(Op::kSw, rdata, rs1, rs2); }
  Assembler& sh(R rdata, R rs1, R rs2) { return rrr(Op::kSh, rdata, rs1, rs2); }
  Assembler& sb(R rdata, R rs1, R rs2) { return rrr(Op::kSb, rdata, rs1, rs2); }
  Assembler& sw(R rdata, R rs1, i32 off) { return rri(Op::kSw, rdata, rs1, off); }
  Assembler& sh(R rdata, R rs1, i32 off) { return rri(Op::kSh, rdata, rs1, off); }
  Assembler& sb(R rdata, R rs1, i32 off) { return rri(Op::kSb, rdata, rs1, off); }

  // --- control ----------------------------------------------------------------
  Assembler& beq(R rs1, R rs2, const std::string& target);
  Assembler& bne(R rs1, R rs2, const std::string& target);
  Assembler& blt(R rs1, R rs2, const std::string& target);
  Assembler& bge(R rs1, R rs2, const std::string& target);
  Assembler& bltu(R rs1, R rs2, const std::string& target);
  Assembler& bgeu(R rs1, R rs2, const std::string& target);
  Assembler& jal(R rd, const std::string& target);
  Assembler& j(const std::string& target) { return jal(R{0}, target); }
  Assembler& jalr(R rd, R rs1, i32 imm = 0);
  Assembler& halt();

  /// Escape hatch: append an arbitrary decoded instruction.
  Assembler& raw(const DecodedInst& d);

  // --- data segment -------------------------------------------------------
  /// Append a 32-bit little-endian word; returns its absolute address.
  Addr data_word(u32 value);
  /// Append `count` words of `value`; returns address of the first.
  Addr data_fill(std::size_t count, u32 value);
  /// Append a block of words; returns address of the first.
  Addr data_words(const std::vector<u32>& values);
  /// Append raw bytes; returns address of the first.
  Addr data_bytes(const std::vector<u8>& bytes);
  /// Align the data cursor to `alignment` bytes (power of two).
  Addr data_align(unsigned alignment);
  /// Name the current data cursor.
  Assembler& data_label(const std::string& name);

  /// Current data cursor (next data address to be assigned).
  [[nodiscard]] Addr data_cursor() const;
  /// Address of the instruction that will be emitted next.
  [[nodiscard]] Addr here() const;

  /// Resolve all label references and produce the program. Throws
  /// std::runtime_error on undefined labels or displacement overflow.
  Program finish();

 private:
  Assembler& rrr(Op op, R rd, R rs1, R rs2);
  Assembler& rri(Op op, R rd, R rs1, i32 imm);
  Assembler& branch(Op op, R rs1, R rs2, const std::string& target);

  struct Fixup {
    std::size_t inst_index;
    std::string target;
  };

  Program prog_;
  std::vector<DecodedInst> insts_;
  std::vector<Fixup> fixups_;
  bool finished_ = false;
};

}  // namespace laec::isa
