#include "isa/disasm.hpp"

#include <sstream>

namespace laec::isa {

namespace {

std::string reg(u8 r) { return "r" + std::to_string(r); }

std::string addr_expr(const DecodedInst& d) {
  std::ostringstream os;
  os << "[" << reg(d.rs1);
  if (d.uses_imm) {
    if (d.imm >= 0) {
      os << "+" << d.imm;
    } else {
      os << d.imm;
    }
  } else {
    os << "+" << reg(d.rs2);
  }
  os << "]";
  return os.str();
}

const char* alu_symbol(Op op) {
  switch (op) {
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kAnd: return "&";
    case Op::kOr: return "|";
    case Op::kXor: return "^";
    case Op::kSll: return "<<";
    case Op::kSrl: return ">>";
    case Op::kSra: return ">>>";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kRem: return "%";
    default: return nullptr;
  }
}

}  // namespace

std::string disassemble(const DecodedInst& d) {
  std::ostringstream os;
  os << mnemonic(d.op);
  switch (d.cls()) {
    case OpClass::kAlu:
      if (d.op == Op::kLui) {
        os << " " << reg(d.rd) << ", " << d.imm;
      } else if (d.uses_imm) {
        os << "i " << reg(d.rd) << ", " << reg(d.rs1) << ", " << d.imm;
      } else {
        os << " " << reg(d.rd) << ", " << reg(d.rs1) << ", " << reg(d.rs2);
      }
      break;
    case OpClass::kLoad:
      os << " " << reg(d.rd) << ", " << addr_expr(d);
      break;
    case OpClass::kStore:
      os << " " << reg(d.rd) << ", " << addr_expr(d);
      break;
    case OpClass::kBranch:
      os << " " << reg(d.rs1) << ", " << reg(d.rs2) << ", " << d.imm;
      break;
    case OpClass::kJump:
      if (d.op == Op::kJal) {
        os << " " << reg(d.rd) << ", " << d.imm;
      } else {
        os << " " << reg(d.rd) << ", " << reg(d.rs1) << ", " << d.imm;
      }
      break;
    case OpClass::kNop:
    case OpClass::kHalt:
      break;
  }
  return os.str();
}

std::string paper_style(const DecodedInst& d) {
  std::ostringstream os;
  const auto second_term = [&]() -> std::string {
    if (!d.uses_imm) return "+" + reg(d.rs2);
    if (d.imm >= 0) return "+" + std::to_string(d.imm);
    return std::to_string(d.imm);
  };
  switch (d.cls()) {
    case OpClass::kLoad:
      os << reg(d.rd) << " = load(" << reg(d.rs1) << second_term() << ")";
      return os.str();
    case OpClass::kStore:
      os << "store(" << reg(d.rs1) << second_term() << ") = " << reg(d.rd);
      return os.str();
    case OpClass::kAlu: {
      const char* sym = alu_symbol(d.op);
      if (sym != nullptr) {
        os << reg(d.rd) << " = " << reg(d.rs1) << " " << sym << " ";
        if (d.uses_imm) {
          os << d.imm;
        } else {
          os << reg(d.rs2);
        }
        return os.str();
      }
      return disassemble(d);
    }
    default:
      return disassemble(d);
  }
}

}  // namespace laec::isa
