#include "service/protocol.hpp"

#include <stdexcept>

#include "service/wire.hpp"

#if !defined(_WIN32)
#include <cerrno>
#include <unistd.h>
#define LAEC_HAVE_SOCKETS 1
#else
#define LAEC_HAVE_SOCKETS 0
#endif

namespace laec::service {

#if LAEC_HAVE_SOCKETS

namespace {

void write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("socket write failed (peer gone?)");
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

void read_all(int fd, char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("socket read failed");
    }
    if (r == 0) {
      throw std::runtime_error("socket closed mid-frame");
    }
    data += r;
    n -= static_cast<std::size_t>(r);
  }
}

}  // namespace

void write_frame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw WireError("frame payload exceeds protocol cap");
  }
  ByteWriter head;
  head.put_u32(static_cast<u32>(payload.size()));
  head.put_u8(static_cast<u8>(type));
  write_all(fd, head.bytes().data(), head.bytes().size());
  write_all(fd, payload.data(), payload.size());
}

Frame read_frame(int fd) {
  char head[5];
  read_all(fd, head, sizeof head);
  ByteReader r(std::string_view(head, sizeof head));
  const u32 len = r.get_u32();
  const u8 type = r.get_u8();
  if (len > kMaxFramePayload) {
    throw WireError("frame length " + std::to_string(len) +
                    " exceeds protocol cap");
  }
  Frame f;
  f.type = static_cast<FrameType>(type);
  f.payload.resize(len);
  read_all(fd, f.payload.data(), len);
  return f;
}

#else  // !LAEC_HAVE_SOCKETS

void write_frame(int, FrameType, std::string_view) {
  throw std::runtime_error("sockets are unavailable on this platform");
}

Frame read_frame(int) {
  throw std::runtime_error("sockets are unavailable on this platform");
}

#endif

std::string hello_payload() {
  ByteWriter w;
  ByteWriter magic;
  for (const char c : kProtocolMagic) magic.put_u8(static_cast<u8>(c));
  w.put_string(magic.bytes());
  w.put_u32(kProtocolVersion);
  return w.take();
}

void check_hello(std::string_view payload) {
  ByteReader r(payload);
  const std::string magic = r.get_string();
  if (magic.size() != sizeof kProtocolMagic ||
      magic.compare(0, sizeof kProtocolMagic, kProtocolMagic,
                    sizeof kProtocolMagic) != 0) {
    throw WireError("peer is not a laec campaign daemon (bad hello magic)");
  }
  const u32 version = r.get_u32();
  if (version != kProtocolVersion) {
    throw WireError("daemon speaks protocol version " +
                    std::to_string(version) + "; this build speaks " +
                    std::to_string(kProtocolVersion));
  }
  r.expect_end();
}

std::string encode_string_list(const std::vector<std::string>& items) {
  ByteWriter w;
  w.put_u32(static_cast<u32>(items.size()));
  for (const auto& s : items) w.put_string(s);
  return w.take();
}

std::vector<std::string> decode_string_list(std::string_view payload) {
  ByteReader r(payload);
  const u32 n = r.get_u32();
  if (n > payload.size()) {
    throw WireError("string list claims an implausible item count");
  }
  std::vector<std::string> items;
  items.reserve(n);
  for (u32 i = 0; i < n; ++i) items.push_back(r.get_string());
  r.expect_end();
  return items;
}

std::string encode_done(const DoneSummary& d) {
  ByteWriter w;
  w.put_u64(d.cells);
  w.put_u64(d.trials);
  w.put_u64(d.failures);
  return w.take();
}

DoneSummary decode_done(std::string_view payload) {
  ByteReader r(payload);
  DoneSummary d;
  d.cells = r.get_u64();
  d.trials = r.get_u64();
  d.failures = r.get_u64();
  r.expect_end();
  return d;
}

std::string encode_status(const DaemonStatus& s) {
  ByteWriter w;
  w.put_u64(s.uptime_ms);
  w.put_u32(s.workers);
  w.put_u64(s.queue_depth);
  w.put_u64(s.inflight_cells);
  w.put_u64(s.jobs_accepted);
  w.put_u64(s.jobs_rejected);
  w.put_u64(s.cells_done);
  w.put_u64(s.trials_done);
  w.put_u64(s.rows_streamed);
  w.put_u32(static_cast<u32>(s.per_worker.size()));
  for (const WorkerStatus& ws : s.per_worker) {
    w.put_u64(ws.cells_done);
    w.put_u64(ws.trials_done);
  }
  w.put_u32(static_cast<u32>(s.metrics.size()));
  for (const StatusMetric& m : s.metrics) {
    w.put_string(m.name);
    w.put_u8(m.kind);
    w.put_u64(m.value);
    w.put_u64(m.sum);
    w.put_u64(m.p50);
    w.put_u64(m.p99);
  }
  return w.take();
}

DaemonStatus decode_status(std::string_view payload) {
  ByteReader r(payload);
  DaemonStatus s;
  s.uptime_ms = r.get_u64();
  s.workers = r.get_u32();
  s.queue_depth = r.get_u64();
  s.inflight_cells = r.get_u64();
  s.jobs_accepted = r.get_u64();
  s.jobs_rejected = r.get_u64();
  s.cells_done = r.get_u64();
  s.trials_done = r.get_u64();
  s.rows_streamed = r.get_u64();
  const u32 nw = r.get_u32();
  if (nw > payload.size()) {
    throw WireError("status claims an implausible worker count");
  }
  s.per_worker.reserve(nw);
  for (u32 i = 0; i < nw; ++i) {
    WorkerStatus ws;
    ws.cells_done = r.get_u64();
    ws.trials_done = r.get_u64();
    s.per_worker.push_back(ws);
  }
  const u32 nm = r.get_u32();
  if (nm > payload.size()) {
    throw WireError("status claims an implausible metric count");
  }
  s.metrics.reserve(nm);
  for (u32 i = 0; i < nm; ++i) {
    StatusMetric m;
    m.name = r.get_string();
    m.kind = r.get_u8();
    m.value = r.get_u64();
    m.sum = r.get_u64();
    m.p50 = r.get_u64();
    m.p99 = r.get_u64();
    s.metrics.push_back(std::move(m));
  }
  r.expect_end();
  return s;
}

}  // namespace laec::service
