#include "service/columnar.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <unordered_map>

#include "service/wire.hpp"

namespace laec::service {

namespace {

/// Reject hostile/corrupt length fields before allocating. Generous: a
/// real 4096-row chunk of campaign rows is a few hundred KB.
constexpr u32 kMaxChunkBytes = 1u << 30;
constexpr u32 kMaxColumns = 1u << 16;

enum : u8 { kKindDict = 0, kKindU64 = 1 };
enum : char { kTagChunk = 'C', kTagEnd = 'E' };

std::string read_exact(std::istream& in, std::size_t n,
                       const char* what) {
  std::string buf(n, '\0');
  in.read(buf.data(), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n) {
    throw WireError(std::string("columnar: truncated while reading ") + what);
  }
  return buf;
}

u32 read_u32(std::istream& in, const char* what) {
  const std::string b = read_exact(in, 4, what);
  ByteReader r(b);
  return r.get_u32();
}

u64 read_u64(std::istream& in, const char* what) {
  const std::string b = read_exact(in, 8, what);
  ByteReader r(b);
  return r.get_u64();
}

}  // namespace

bool is_canonical_u64(const std::string& s) {
  if (s.empty() || s.size() > 20) return false;
  if (s.size() > 1 && s[0] == '0') return false;  // "007" must stay text
  u64 v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const u64 d = static_cast<u64>(c - '0');
    if (v > (std::numeric_limits<u64>::max() - d) / 10) return false;
    v = v * 10 + d;
  }
  return true;
}

ColumnarWriter::ColumnarWriter(std::ostream& out, std::size_t chunk_rows)
    : out_(out), chunk_rows_(chunk_rows == 0 ? 1 : chunk_rows) {}

void ColumnarWriter::begin(const std::vector<std::string>& headers) {
  begun_ = true;
  ncols_ = headers.size();
  ByteWriter w;
  w.put_u32(kColumnarVersion);
  w.put_u32(static_cast<u32>(headers.size()));
  for (const auto& h : headers) w.put_string(h);
  out_.write(kColumnarMagic, sizeof kColumnarMagic);
  out_.write(w.bytes().data(),
             static_cast<std::streamsize>(w.bytes().size()));
}

void ColumnarWriter::row(const std::vector<std::string>& cells) {
  pending_.push_back(cells);
  if (pending_.size() >= chunk_rows_) flush_chunk();
}

void ColumnarWriter::flush_chunk() {
  if (pending_.empty()) return;
  const std::size_t nrows = pending_.size();
  ByteWriter payload;
  payload.put_u32(static_cast<u32>(nrows));
  for (std::size_t c = 0; c < ncols_; ++c) {
    bool all_u64 = true;
    for (const auto& r : pending_) {
      if (c >= r.size() || !is_canonical_u64(r[c])) {
        all_u64 = false;
        break;
      }
    }
    if (all_u64) {
      payload.put_u8(kKindU64);
      for (const auto& r : pending_) {
        payload.put_u64(std::stoull(r[c]));
      }
    } else {
      payload.put_u8(kKindDict);
      // First-appearance dictionary order keeps the encoding deterministic
      // for a given row stream (no hash-iteration order leaks).
      std::vector<const std::string*> dict;
      std::unordered_map<std::string, u32> ids;
      std::vector<u32> idx(nrows);
      static const std::string kEmpty;
      for (std::size_t i = 0; i < nrows; ++i) {
        const std::string& v =
            c < pending_[i].size() ? pending_[i][c] : kEmpty;
        const auto [it, inserted] =
            ids.emplace(v, static_cast<u32>(dict.size()));
        if (inserted) dict.push_back(&it->first);
        idx[i] = it->second;
      }
      payload.put_u32(static_cast<u32>(dict.size()));
      for (const auto* s : dict) payload.put_string(*s);
      for (const u32 i : idx) payload.put_u32(i);
    }
  }
  ByteWriter frame;
  frame.put_u8(static_cast<u8>(kTagChunk));
  frame.put_u32(static_cast<u32>(payload.bytes().size()));
  out_.write(frame.bytes().data(),
             static_cast<std::streamsize>(frame.bytes().size()));
  out_.write(payload.bytes().data(),
             static_cast<std::streamsize>(payload.bytes().size()));
  ByteWriter sum;
  sum.put_u64(fnv1a(payload.bytes()));
  out_.write(sum.bytes().data(),
             static_cast<std::streamsize>(sum.bytes().size()));
  total_rows_ += nrows;
  pending_.clear();
}

void ColumnarWriter::end() {
  if (ended_ || !begun_) return;
  ended_ = true;
  flush_chunk();
  ByteWriter w;
  w.put_u8(static_cast<u8>(kTagEnd));
  w.put_u64(total_rows_);
  out_.write(w.bytes().data(),
             static_cast<std::streamsize>(w.bytes().size()));
  out_.flush();
}

bool ColumnarWriter::ok() const { return out_.good(); }

u64 read_columnar(std::istream& in, report::RowWriter& out) {
  const std::string magic = read_exact(in, sizeof kColumnarMagic, "magic");
  if (magic.compare(0, sizeof kColumnarMagic, kColumnarMagic,
                    sizeof kColumnarMagic) != 0) {
    throw WireError("columnar: bad magic (not a .col file)");
  }
  const u32 version = read_u32(in, "version");
  if (version != kColumnarVersion) {
    throw WireError("columnar: unsupported version " +
                    std::to_string(version) + " (this build reads " +
                    std::to_string(kColumnarVersion) + ")");
  }
  const u32 ncols = read_u32(in, "column count");
  if (ncols == 0 || ncols > kMaxColumns) {
    throw WireError("columnar: implausible column count " +
                    std::to_string(ncols));
  }
  std::vector<std::string> headers;
  headers.reserve(ncols);
  for (u32 c = 0; c < ncols; ++c) {
    const u32 len = read_u32(in, "column name length");
    if (len > kMaxChunkBytes) {
      throw WireError("columnar: implausible column name length");
    }
    headers.push_back(read_exact(in, len, "column name"));
  }
  out.begin(headers);

  u64 rows = 0;
  for (;;) {
    char tag = 0;
    if (!in.get(tag)) {
      throw WireError("columnar: truncated (missing end-of-file footer)");
    }
    if (tag == kTagEnd) {
      const u64 claimed = read_u64(in, "footer row count");
      if (claimed != rows) {
        throw WireError("columnar: footer claims " + std::to_string(claimed) +
                        " rows but file holds " + std::to_string(rows));
      }
      // Nothing may follow the footer.
      char extra = 0;
      if (in.get(extra)) {
        throw WireError("columnar: trailing bytes after footer");
      }
      break;
    }
    if (tag != kTagChunk) {
      throw WireError("columnar: unknown frame tag " +
                      std::to_string(static_cast<int>(tag)));
    }
    const u32 len = read_u32(in, "chunk length");
    if (len > kMaxChunkBytes) {
      throw WireError("columnar: implausible chunk length");
    }
    const std::string payload = read_exact(in, len, "chunk payload");
    const u64 sum = read_u64(in, "chunk checksum");
    if (sum != fnv1a(payload)) {
      throw WireError("columnar: chunk checksum mismatch (corrupt file)");
    }

    ByteReader r(payload);
    const u32 nrows = r.get_u32();
    std::vector<std::vector<std::string>> cols(ncols);
    for (u32 c = 0; c < ncols; ++c) {
      const u8 kind = r.get_u8();
      auto& col = cols[c];
      col.reserve(nrows);
      if (kind == kKindU64) {
        for (u32 i = 0; i < nrows; ++i) {
          col.push_back(std::to_string(r.get_u64()));
        }
      } else if (kind == kKindDict) {
        const u32 dict_size = r.get_u32();
        if (dict_size > nrows && dict_size > kMaxColumns) {
          throw WireError("columnar: implausible dictionary size");
        }
        std::vector<std::string> dict;
        dict.reserve(dict_size);
        for (u32 d = 0; d < dict_size; ++d) dict.push_back(r.get_string());
        for (u32 i = 0; i < nrows; ++i) {
          const u32 id = r.get_u32();
          if (id >= dict.size()) {
            throw WireError("columnar: dictionary index out of range");
          }
          col.push_back(dict[id]);
        }
      } else {
        throw WireError("columnar: unknown column kind " +
                        std::to_string(static_cast<int>(kind)));
      }
    }
    r.expect_end();

    std::vector<std::string> cells(ncols);
    for (u32 i = 0; i < nrows; ++i) {
      for (u32 c = 0; c < ncols; ++c) cells[c] = std::move(cols[c][i]);
      out.row(cells);
      for (u32 c = 0; c < ncols; ++c) cols[c][i] = std::move(cells[c]);
    }
    rows += nrows;
  }
  out.end();
  return rows;
}

u64 csv_to_rows(std::istream& csv, report::RowWriter& out) {
  // Character-level parser for CsvWriter's canonical output: fields with
  // ',', '"', '\n' or '\r' arrive quoted with '"' doubled; rows end in a
  // bare '\n'. A quoted field may therefore span physical lines.
  std::vector<std::string> cells;
  std::string field;
  bool in_quotes = false;
  bool field_open = false;  // any char (or quote) seen for current field
  bool header_done = false;
  bool row_open = false;  // current row has at least one field started
  u64 rows = 0;

  const auto finish_row = [&] {
    cells.push_back(std::move(field));
    field.clear();
    field_open = false;
    row_open = false;
    if (!header_done) {
      out.begin(cells);
      header_done = true;
    } else {
      out.row(cells);
      rows += 1;
    }
    cells.clear();
  };

  char c = 0;
  while (csv.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        char next = 0;
        if (csv.get(next)) {
          if (next == '"') {
            field += '"';  // doubled quote -> literal
          } else {
            in_quotes = false;
            csv.unget();
          }
        } else {
          in_quotes = false;  // closing quote at EOF
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && !field_open) {
      in_quotes = true;
      field_open = true;
      row_open = true;
    } else if (c == ',') {
      cells.push_back(std::move(field));
      field.clear();
      field_open = false;
      row_open = true;
    } else if (c == '\n') {
      finish_row();
    } else {
      field += c;
      field_open = true;
      row_open = true;
    }
  }
  if (in_quotes) {
    throw WireError("csv: unterminated quoted field (torn row?)");
  }
  if (row_open || field_open || !field.empty() || !cells.empty()) {
    // RowWriters terminate every row with '\n'; a trailing fragment is a
    // torn tail, and silently absorbing it would corrupt the conversion.
    throw WireError("csv: final row not newline-terminated (torn row?)");
  }
  out.end();
  return rows;
}

}  // namespace laec::service
