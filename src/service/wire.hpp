// Byte-level wire codec shared by the service subsystem's on-disk and
// on-socket formats (checkpoint files, the columnar sink, the daemon's
// framing protocol).
//
// Everything is explicit little-endian regardless of host byte order, so a
// checkpoint written on one host resumes on another and a submit client
// can talk to a daemon across machine types. Doubles travel as their IEEE
// bit patterns (std::bit_cast), never as formatted text — the campaign's
// byte-identical-resume contract needs exact accumulator round-trips.
//
// ByteReader is bounds-checked and throws service::WireError instead of
// reading past the end: every consumer (checkpoint load, columnar cat,
// daemon frame decode) treats truncated or hostile input as a hard error,
// never as garbage values.
#pragma once

#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace laec::service {

/// Malformed / truncated wire data (bad magic, short buffer, oversized
/// length field). Deliberately a distinct type so callers can map it to
/// "this file/peer is corrupt" rather than a programming error.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian encoder over a std::string buffer.
class ByteWriter {
 public:
  void put_u8(u8 v) { buf_.push_back(static_cast<char>(v)); }

  void put_u32(u32 v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void put_u64(u64 v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  /// IEEE-754 bit pattern: exact round-trip, no formatting loss.
  void put_double(double v) { put_u64(std::bit_cast<u64>(v)); }

  /// u32 length prefix + raw bytes.
  void put_string(std::string_view s) {
    put_u32(static_cast<u32>(s.size()));
    buf_.append(s.data(), s.size());
  }

  /// Bulk little-endian u32 array (no length prefix — the caller's framing
  /// carries the count). One memcpy on little-endian hosts; the element
  /// loop elsewhere. Snapshot capture serializes whole cache arrays through
  /// this, so it must not cost a call per word.
  void put_u32_block(const u32* v, std::size_t n) {
    if constexpr (std::endian::native == std::endian::little) {
      buf_.append(reinterpret_cast<const char*>(v), n * sizeof(u32));
    } else {
      for (std::size_t i = 0; i < n; ++i) put_u32(v[i]);
    }
  }

  /// Bulk little-endian u16 array; same contract as put_u32_block.
  void put_u16_block(const u16* v, std::size_t n) {
    if constexpr (std::endian::native == std::endian::little) {
      buf_.append(reinterpret_cast<const char*>(v), n * sizeof(u16));
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        buf_.push_back(static_cast<char>(v[i] & 0xff));
        buf_.push_back(static_cast<char>((v[i] >> 8) & 0xff));
      }
    }
  }

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a byte view.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] u8 get_u8() {
    need(1);
    return static_cast<u8>(data_[pos_++]);
  }

  [[nodiscard]] u32 get_u32() {
    need(4);
    u32 v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<u32>(static_cast<u8>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  [[nodiscard]] u64 get_u64() {
    need(8);
    u64 v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<u64>(static_cast<u8>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  [[nodiscard]] double get_double() { return std::bit_cast<double>(get_u64()); }

  [[nodiscard]] std::string get_string() {
    const u32 n = get_u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// Bulk inverse of ByteWriter::put_u32_block.
  void get_u32_block(u32* out, std::size_t n) {
    need(n * sizeof(u32));
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out, data_.data() + pos_, n * sizeof(u32));
      pos_ += n * sizeof(u32);
    } else {
      for (std::size_t i = 0; i < n; ++i) out[i] = get_u32();
    }
  }

  /// Bulk inverse of ByteWriter::put_u16_block.
  void get_u16_block(u16* out, std::size_t n) {
    need(n * sizeof(u16));
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out, data_.data() + pos_, n * sizeof(u16));
      pos_ += n * sizeof(u16);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const u16 lo = get_u8();
        out[i] = static_cast<u16>(lo | (static_cast<u16>(get_u8()) << 8));
      }
    }
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

  /// Consumers that expect to use the WHOLE payload call this last, so a
  /// frame with trailing junk is rejected rather than silently accepted.
  void expect_end() const {
    if (!at_end()) throw WireError("trailing bytes after decoded payload");
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw WireError("truncated wire data (wanted " + std::to_string(n) +
                      " more bytes, have " +
                      std::to_string(data_.size() - pos_) + ")");
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// FNV-1a over a byte string: the integrity/identity hash of checkpoint
/// files and campaign configurations. Not cryptographic — it guards
/// against truncation, bit rot and resuming under a changed configuration,
/// not against an adversary.
[[nodiscard]] inline u64 fnv1a(std::string_view data, u64 seed = 0) {
  u64 h = 1469598103934665603ull ^ seed;
  for (const char c : data) {
    h ^= static_cast<u8>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace laec::service
