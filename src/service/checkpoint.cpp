#include "service/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/wire.hpp"

namespace laec::service {

void save_checkpoint(const std::string& path, u64 identity,
                     const std::vector<reliability::CellProgress>& cells) {
  obs::Span span("checkpoint-write");
  span.arg("path", path);
  span.arg("cells", static_cast<u64>(cells.size()));
  ByteWriter payload;
  payload.put_u32(kCheckpointVersion);
  payload.put_u64(identity);
  payload.put_u32(static_cast<u32>(cells.size()));
  for (const auto& c : cells) {
    payload.put_u64(static_cast<u64>(c.index));
    payload.put_u32(c.done);
    payload.put_u8(c.finished ? 1 : 0);
    payload.put_u64(c.trials);
    payload.put_u64(c.events);
    payload.put_u64(c.events_dropped);
    payload.put_u64(c.masked);
    payload.put_u64(c.corrected);
    payload.put_u64(c.due_recovered);
    payload.put_u64(c.sdc);
    payload.put_u64(c.data_loss);
    payload.put_u64(c.total_cycles);
    payload.put_u64(c.pruned);
    payload.put_u64(c.fast_forwarded);
    payload.put_u64(c.cycles_skipped);
    payload.put_double(c.device_hours);
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot create " + tmp);
    }
    ByteWriter head;
    head.put_u64(fnv1a(payload.bytes()));
    out.write(kCheckpointMagic, sizeof kCheckpointMagic);
    out.write(head.bytes().data(),
              static_cast<std::streamsize>(head.bytes().size()));
    out.write(payload.bytes().data(),
              static_cast<std::streamsize>(payload.bytes().size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("checkpoint: write to " + tmp +
                               " failed (disk full?)");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: cannot rename " + tmp + " to " +
                             path + ": " + ec.message());
  }
  auto& reg = obs::Registry::global();
  reg.counter("checkpoint.writes").add();
  reg.counter("checkpoint.bytes_written")
      .add(sizeof kCheckpointMagic + 8 + payload.bytes().size());
  obs::log_debug("laec-checkpoint",
                 "wrote " + path + " (" +
                     std::to_string(payload.bytes().size()) +
                     " payload bytes, " + std::to_string(cells.size()) +
                     " cells)");
}

std::vector<reliability::CellProgress> load_checkpoint(
    const std::string& path, u64 identity) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw WireError("checkpoint: cannot open " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof kCheckpointMagic + 8) {
    throw WireError("checkpoint: " + path + " is truncated");
  }
  if (bytes.compare(0, sizeof kCheckpointMagic, kCheckpointMagic,
                    sizeof kCheckpointMagic) != 0) {
    throw WireError("checkpoint: " + path + " is not a checkpoint file");
  }
  ByteReader head(
      std::string_view(bytes).substr(sizeof kCheckpointMagic, 8));
  const u64 sum = head.get_u64();
  const std::string_view payload =
      std::string_view(bytes).substr(sizeof kCheckpointMagic + 8);
  if (fnv1a(payload) != sum) {
    throw WireError("checkpoint: " + path +
                    " checksum mismatch (corrupt or torn write)");
  }

  ByteReader r(payload);
  const u32 version = r.get_u32();
  if (version != kCheckpointVersion) {
    throw WireError("checkpoint: " + path + " is version " +
                    std::to_string(version) + "; this build reads " +
                    std::to_string(kCheckpointVersion));
  }
  const u64 file_identity = r.get_u64();
  if (file_identity != identity) {
    throw WireError(
        "checkpoint: " + path +
        " was taken under a different campaign configuration (grid, "
        "spec, seed, shard or geometry changed); refusing to resume");
  }
  const u32 n = r.get_u32();
  std::vector<reliability::CellProgress> cells;
  cells.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    reliability::CellProgress c;
    c.index = static_cast<std::size_t>(r.get_u64());
    c.done = r.get_u32();
    c.finished = r.get_u8() != 0;
    c.trials = r.get_u64();
    c.events = r.get_u64();
    c.events_dropped = r.get_u64();
    c.masked = r.get_u64();
    c.corrected = r.get_u64();
    c.due_recovered = r.get_u64();
    c.sdc = r.get_u64();
    c.data_loss = r.get_u64();
    c.total_cycles = r.get_u64();
    c.pruned = r.get_u64();
    c.fast_forwarded = r.get_u64();
    c.cycles_skipped = r.get_u64();
    c.device_hours = r.get_double();
    cells.push_back(c);
  }
  r.expect_end();
  return cells;
}

}  // namespace laec::service
