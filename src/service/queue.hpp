// Bounded MPMC work queue — the daemon's in-process cell queue.
//
// A fixed-capacity ring buffer guarded by one mutex and two condition
// variables (modelled on the classic bounded-buffer shape of the
// atomic_queue exemplar in the related-work set, with the lock-free
// subtleties traded for obvious correctness: the daemon's unit of work is
// an entire campaign cell — thousands of simulated trials — so queue
// overhead is noise). Multiple connection threads push cell batches;
// multiple worker threads pop. close() wakes everyone: pushes start
// failing, pops drain the remaining items and then return nullopt, which
// is the workers' shutdown signal.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace laec::service {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Block until there is room, then enqueue. Returns false (item
  /// dropped) if the queue was closed before room appeared.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(m_);
    not_full_.wait(lock, [&] { return closed_ || size_ < ring_.size(); });
    if (closed_) return false;
    ring_[(head_ + size_) % ring_.size()] = std::move(item);
    size_ += 1;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available and dequeue it. After close(),
  /// drains the remaining items, then returns nullopt forever.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(m_);
    not_empty_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return std::nullopt;  // closed and drained
    std::optional<T> item(std::move(ring_[head_].value()));
    ring_[head_].reset();
    head_ = (head_ + 1) % ring_.size();
    size_ -= 1;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Reject future pushes and wake every waiter. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(m_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(m_);
    return size_;
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(m_);
    return closed_;
  }

 private:
  mutable std::mutex m_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<std::optional<T>> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace laec::service
