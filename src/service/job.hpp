// CampaignJob — the portable description of a reliability campaign.
//
// One serialization, two consumers: the work-queue daemon receives a job
// over the socket (protocol.hpp) and must rebuild exactly the campaign a
// local `laec_cli campaign` run would execute, and the checkpoint layer
// hashes the same canonical bytes into the identity that guards resumes
// (resuming under a changed grid, seed, shard or machine geometry is a
// hard error, not silently mixed statistics).
//
// The SimConfig portion covers the CLI-settable surface (geometry,
// latencies, hazard rule, LUT/stride toggles). Per-cell scheme and fault
// configuration are NOT part of it — run_campaign derives those from each
// cell's scheme key and rate point, which the cells carry themselves.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "reliability/campaign.hpp"

namespace laec::service {

/// v2: spec.prune + recorder version; v3: fast-forward mode (flag, snapshot
/// cadence/budget, snapshot frame version).
inline constexpr u32 kJobVersion = 3;

struct CampaignJob {
  reliability::CampaignSpec spec;            ///< incl. base SimConfig subset
  std::vector<reliability::CampaignCell> cells;  ///< full expanded grid
  u64 base_seed = 0x1aec;
  /// Shard slice this job covers: cells with index % count == index are
  /// run, exactly like CampaignOptions sharding — so N submit clients
  /// with --shard=0/N .. (N-1)/N together cover the grid once.
  unsigned shard_index = 0;
  unsigned shard_count = 1;
};

/// Canonical byte serialization (versioned, little-endian).
[[nodiscard]] std::string serialize_job(const CampaignJob& job);

/// Inverse of serialize_job. Throws WireError for truncated/alien bytes
/// or an unsupported job version.
[[nodiscard]] CampaignJob parse_job(std::string_view bytes);

/// Identity hash of a campaign configuration: FNV-1a over the canonical
/// serialization. Two runs with the same identity produce the same rows;
/// checkpoints embed it and refuse to resume under any other.
[[nodiscard]] u64 campaign_identity(const CampaignJob& job);

}  // namespace laec::service
