// Compact binary columnar result sink ("--format=col").
//
// Million-row campaigns spend real time re-parsing CSV text on every
// aggregation pass; the columnar sink stores the same rows as typed
// columns instead. Layout:
//
//   magic "LAECCOL1"                         (8 bytes)
//   u32 version (=1)
//   u32 ncols, ncols x (u32 len + bytes)     column names
//   chunk*:                                  ('C' frames)
//     u8 'C', u32 payload_len, payload, u64 fnv1a(payload)
//     payload: u32 nrows, then per column:
//       u8 kind 0 (dictionary strings): u32 dict_size,
//          dict_size x (u32 len + bytes), nrows x u32 dict index
//       u8 kind 1 (fixed-width u64):    nrows x u64 little-endian
//   footer: u8 'E', u64 total_rows
//
// A column is stored fixed-width (kind 1) for a chunk when EVERY cell in
// that chunk is a canonical decimal u64 (digits only, no leading zeros,
// fits in 64 bits) — counters and cycle columns compress to 8 bytes flat
// and decode with std::to_string, reproducing the original text EXACTLY.
// Everything else (workload names, scheme keys, %.6g floats) is
// dictionary-encoded: campaign columns like "workload" or "rate" carry a
// handful of distinct values over millions of rows, so each row costs a
// u32 index. The hard contract, enforced by tests and a CI gate: decoding
// a .col file back to CSV is byte-identical to having written CSV
// directly.
//
// Per-chunk checksums plus the row-count footer mean truncation, bit rot
// and foreign files surface as service::WireError, never as silently
// wrong rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "report/sink.hpp"

namespace laec::service {

inline constexpr char kColumnarMagic[8] = {'L', 'A', 'E', 'C',
                                           'C', 'O', 'L', '1'};
inline constexpr u32 kColumnarVersion = 1;

/// Is `s` a canonical decimal u64 (round-trips through std::to_string)?
/// Exposed for tests; this predicate decides fixed-width vs dictionary
/// encoding per chunk.
[[nodiscard]] bool is_canonical_u64(const std::string& s);

/// report::RowWriter emitting the columnar format. The stream must be
/// binary-clean (open files with std::ios::binary). Not thread-safe, like
/// every RowWriter. end() flushes the last partial chunk and the footer;
/// forgetting it truncates the file, which readers then reject.
class ColumnarWriter final : public report::RowWriter {
 public:
  static constexpr std::size_t kDefaultChunkRows = 4096;

  explicit ColumnarWriter(std::ostream& out,
                          std::size_t chunk_rows = kDefaultChunkRows);

  void begin(const std::vector<std::string>& headers) override;
  void row(const std::vector<std::string>& cells) override;
  void end() override;
  [[nodiscard]] bool ok() const override;

 private:
  void flush_chunk();

  std::ostream& out_;
  std::size_t chunk_rows_;
  std::size_t ncols_ = 0;
  std::vector<std::vector<std::string>> pending_;
  u64 total_rows_ = 0;
  bool begun_ = false;
  bool ended_ = false;
};

/// Decode a columnar stream, replaying header + rows into `out` (any
/// RowWriter: CsvWriter for `laec_cli cat`, JsonLinesWriter, even another
/// ColumnarWriter). Returns the decoded row count. Throws WireError for
/// bad magic, unsupported version, checksum mismatch, truncation, or a
/// dictionary index out of range.
u64 read_columnar(std::istream& in, report::RowWriter& out);

/// Parse canonical CSV (as report::CsvWriter emits it: minimal quoting,
/// '"'-doubling, '\n' row terminator) and replay header + rows into
/// `out`. The exact inverse of CsvWriter's escaping, so
/// csv -> csv_to_rows -> CsvWriter reproduces the input byte-for-byte;
/// it is how merged multi-process CSV streams convert to columnar.
/// Returns the data-row count. Throws WireError on malformed CSV.
u64 csv_to_rows(std::istream& csv, report::RowWriter& out);

}  // namespace laec::service
