// Length-prefixed framing protocol of the campaign work-queue daemon.
//
// Transport is a Unix-domain stream socket; every message is one frame:
//
//   u32 payload length (little-endian) | u8 frame type | payload
//
// Conversation ("submit" client):
//   server -> client   kHello   "LAECSRV" + u32 protocol version
//   client -> server   kSubmit  serialize_job(CampaignJob)
//   server -> client   kRowHeader  string list (column names)
//   server -> client   kRow ...    string list (one row's cells), in grid
//                                  order — byte-identical to a local run
//   server -> client   kDone    u64 cells, u64 trials, u64 failures
// or
//   server -> client   kError   human-readable message (job rejected or
//                               failed; connection closes after)
//
// Shutdown: a client sends kShutdown instead of kSubmit; the server
// acknowledges with kDone (zeros) and stops accepting. Rows travel as
// CELL STRINGS, not formatted text — the client renders them through any
// report::RowWriter (csv, jsonl, columnar), so one daemon serves every
// output format and the bytes match the equivalent local run exactly.
//
// Status ("status" client, protocol v2): a client sends kStatus (empty
// payload) instead of kSubmit; the server replies with one kStatus frame
// carrying a DaemonStatus snapshot (uptime, queue depth, in-flight cells,
// per-worker cell/trial counts, plus the daemon process's metrics
// registry rendered as name/kind/value triples) and the connection
// closes. Purely observational — a status probe never perturbs job
// scheduling or row bytes.
//
// Frame payloads are capped (kMaxFramePayload) and decoded with the
// bounds-checked wire reader: truncated, oversized or trailing-garbage
// frames raise WireError instead of desynchronizing the stream.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace laec::service {

inline constexpr char kProtocolMagic[7] = {'L', 'A', 'E', 'C',
                                           'S', 'R', 'V'};
inline constexpr u32 kProtocolVersion = 2;  ///< v2: kStatus frame

/// Frames bigger than this are rejected before allocation. Jobs scale
/// with grid size (tens of bytes per cell); 64 MiB is ~1M cells.
inline constexpr u32 kMaxFramePayload = 64u << 20;

enum class FrameType : u8 {
  kHello = 1,
  kSubmit = 2,
  kRowHeader = 3,
  kRow = 4,
  kDone = 5,
  kError = 6,
  kShutdown = 7,
  kStatus = 8,
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Blocking full-frame write to a connected socket fd. Throws
/// std::runtime_error on EOF/error (peer went away).
void write_frame(int fd, FrameType type, std::string_view payload);

/// Blocking full-frame read. Throws WireError for oversized/corrupt
/// length fields and std::runtime_error for EOF mid-frame.
[[nodiscard]] Frame read_frame(int fd);

/// The kHello payload this build emits.
[[nodiscard]] std::string hello_payload();
/// Validate a received kHello payload (magic + compatible version).
void check_hello(std::string_view payload);

/// String-list payloads (kRowHeader / kRow cells).
[[nodiscard]] std::string encode_string_list(
    const std::vector<std::string>& items);
[[nodiscard]] std::vector<std::string> decode_string_list(
    std::string_view payload);

/// kDone payload.
struct DoneSummary {
  u64 cells = 0;
  u64 trials = 0;
  u64 failures = 0;
};
[[nodiscard]] std::string encode_done(const DoneSummary& d);
[[nodiscard]] DoneSummary decode_done(std::string_view payload);

/// One metric in a kStatus reply. Counters and gauges carry `value`;
/// histograms carry count in `value` plus sum and the p50/p99 estimates
/// (the full bucket vector stays daemon-side — the probe wants the
/// digest, not the raw buckets).
struct StatusMetric {
  std::string name;
  u8 kind = 0;  ///< obs::MetricKind as u8
  u64 value = 0;
  u64 sum = 0;
  u64 p50 = 0;
  u64 p99 = 0;
};

/// Per-worker progress counters in a kStatus reply.
struct WorkerStatus {
  u64 cells_done = 0;
  u64 trials_done = 0;
};

/// kStatus reply payload: one self-describing snapshot of the daemon.
struct DaemonStatus {
  u64 uptime_ms = 0;
  u32 workers = 0;
  u64 queue_depth = 0;      ///< cells waiting in the MPMC queue
  u64 inflight_cells = 0;   ///< cells currently being simulated
  u64 jobs_accepted = 0;
  u64 jobs_rejected = 0;
  u64 cells_done = 0;
  u64 trials_done = 0;
  u64 rows_streamed = 0;
  std::vector<WorkerStatus> per_worker;
  std::vector<StatusMetric> metrics;  ///< daemon-side registry digest
};
[[nodiscard]] std::string encode_status(const DaemonStatus& s);
[[nodiscard]] DaemonStatus decode_status(std::string_view payload);

}  // namespace laec::service
