#include "service/job.hpp"

#include "mem/residency.hpp"
#include "service/wire.hpp"
#include "sim/snapshot.hpp"

namespace laec::service {

namespace {

void put_config(ByteWriter& w, const core::SimConfig& c) {
  // The CLI-settable SimConfig surface, in a fixed order. Fields the
  // campaign overwrites per cell (scheme/deployment, faults,
  // inject_target) are deliberately absent.
  w.put_u8(static_cast<u8>(c.hazard_rule));
  w.put_u8(c.stride_predictor ? 1 : 0);
  w.put_u8(c.lut_decode ? 1 : 0);
  w.put_u8(c.force_generic_ecc_path ? 1 : 0);
  w.put_u32(c.dl1_size_bytes);
  w.put_u32(c.dl1_ways);
  w.put_u32(c.dl1_line_bytes);
  w.put_u32(c.l1i_size_bytes);
  w.put_u32(c.write_buffer_depth);
  w.put_u32(c.mul_latency);
  w.put_u32(c.div_latency);
  w.put_u32(c.bus_request_cycles);
  w.put_u32(c.bus_response_cycles);
  w.put_u32(c.l2_hit_cycles);
  w.put_u32(c.l2_write_cycles);
  w.put_u32(c.memory_cycles);
  w.put_u32(c.num_cores);
  w.put_u64(c.max_cycles);
}

void get_config(ByteReader& r, core::SimConfig& c) {
  c.hazard_rule = static_cast<cpu::HazardRule>(r.get_u8());
  c.stride_predictor = r.get_u8() != 0;
  c.lut_decode = r.get_u8() != 0;
  c.force_generic_ecc_path = r.get_u8() != 0;
  c.dl1_size_bytes = r.get_u32();
  c.dl1_ways = r.get_u32();
  c.dl1_line_bytes = r.get_u32();
  c.l1i_size_bytes = r.get_u32();
  c.write_buffer_depth = r.get_u32();
  c.mul_latency = r.get_u32();
  c.div_latency = r.get_u32();
  c.bus_request_cycles = r.get_u32();
  c.bus_response_cycles = r.get_u32();
  c.l2_hit_cycles = r.get_u32();
  c.l2_write_cycles = r.get_u32();
  c.memory_cycles = r.get_u32();
  c.num_cores = r.get_u32();
  c.max_cycles = r.get_u64();
}

void put_cell(ByteWriter& w, const reliability::CampaignCell& c) {
  w.put_u64(static_cast<u64>(c.index));
  w.put_string(c.workload);
  w.put_string(c.scheme);
  w.put_string(c.rate.label);
  w.put_double(c.rate.fit_per_mbit);
  w.put_double(c.rate.patterns.single);
  w.put_double(c.rate.patterns.adjacent_double);
  w.put_double(c.rate.patterns.adjacent_triple);
  w.put_double(c.rate.patterns.clustered);
}

reliability::CampaignCell get_cell(ByteReader& r) {
  reliability::CampaignCell c;
  c.index = static_cast<std::size_t>(r.get_u64());
  c.workload = r.get_string();
  c.scheme = r.get_string();
  c.rate.label = r.get_string();
  c.rate.fit_per_mbit = r.get_double();
  c.rate.patterns.single = r.get_double();
  c.rate.patterns.adjacent_double = r.get_double();
  c.rate.patterns.adjacent_triple = r.get_double();
  c.rate.patterns.clustered = r.get_double();
  return c;
}

}  // namespace

std::string serialize_job(const CampaignJob& job) {
  ByteWriter w;
  w.put_u32(kJobVersion);
  w.put_u64(job.base_seed);
  w.put_u32(job.shard_index);
  w.put_u32(job.shard_count);

  const reliability::CampaignSpec& s = job.spec;
  w.put_double(s.accel);
  w.put_u32(s.exposure_cycles);
  w.put_double(s.freq_mhz);
  w.put_u32(s.trials);
  w.put_u32(s.min_trials);
  w.put_u32(s.batch);
  w.put_double(s.confidence);
  w.put_double(s.target_half_width);
  w.put_u8(static_cast<u8>(s.target));
  // The prune mode is part of the identity (a --prune run never silently
  // resumes a --no-prune checkpoint), and so is the recorder revision: the
  // recorded windows define every trial's RNG stream, so cursors taken
  // under different recording semantics are a different campaign.
  w.put_u8(s.prune ? 1 : 0);
  w.put_u32(mem::ResidencyRecorder::kVersion);
  // Fast-forward mode is identity the same way prune is (a --ff run never
  // silently resumes a --no-ff checkpoint — the rows are byte-identical but
  // the operator asked for a specific reference mode), and the snapshot
  // cadence/budget and frame revision pin WHICH snapshots existed.
  w.put_u8(s.fast_forward ? 1 : 0);
  w.put_u32(s.snapshot_every);
  w.put_u32(s.snapshot_mem_mb);
  w.put_u32(sim::kSnapshotVersion);
  put_config(w, s.base);

  w.put_u64(static_cast<u64>(job.cells.size()));
  for (const auto& c : job.cells) put_cell(w, c);
  return w.take();
}

CampaignJob parse_job(std::string_view bytes) {
  ByteReader r(bytes);
  const u32 version = r.get_u32();
  if (version != kJobVersion) {
    throw WireError("campaign job version " + std::to_string(version) +
                    " unsupported (this build speaks " +
                    std::to_string(kJobVersion) + ")");
  }
  CampaignJob job;
  job.base_seed = r.get_u64();
  job.shard_index = r.get_u32();
  job.shard_count = r.get_u32();

  reliability::CampaignSpec& s = job.spec;
  s.accel = r.get_double();
  s.exposure_cycles = r.get_u32();
  s.freq_mhz = r.get_double();
  s.trials = r.get_u32();
  s.min_trials = r.get_u32();
  s.batch = r.get_u32();
  s.confidence = r.get_double();
  s.target_half_width = r.get_double();
  s.target = static_cast<core::InjectTarget>(r.get_u8());
  s.prune = r.get_u8() != 0;
  const u32 recorder_version = r.get_u32();
  if (recorder_version != mem::ResidencyRecorder::kVersion) {
    throw WireError("campaign job recorded with residency recorder v" +
                    std::to_string(recorder_version) +
                    " (this build records v" +
                    std::to_string(mem::ResidencyRecorder::kVersion) + ")");
  }
  s.fast_forward = r.get_u8() != 0;
  s.snapshot_every = r.get_u32();
  s.snapshot_mem_mb = r.get_u32();
  const u32 snapshot_version = r.get_u32();
  if (snapshot_version != sim::kSnapshotVersion) {
    throw WireError("campaign job built against snapshot frame v" +
                    std::to_string(snapshot_version) +
                    " (this build captures v" +
                    std::to_string(sim::kSnapshotVersion) + ")");
  }
  get_config(r, s.base);

  const u64 n = r.get_u64();
  // A cell costs tens of bytes on the wire; anything claiming more cells
  // than remaining bytes is corrupt, not big.
  if (n > r.remaining()) {
    throw WireError("campaign job claims an implausible cell count");
  }
  job.cells.reserve(static_cast<std::size_t>(n));
  for (u64 i = 0; i < n; ++i) job.cells.push_back(get_cell(r));
  r.expect_end();
  return job;
}

u64 campaign_identity(const CampaignJob& job) {
  return fnv1a(serialize_job(job));
}

}  // namespace laec::service
