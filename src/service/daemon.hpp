// Campaign work-queue daemon over Unix-domain sockets.
//
// `laec_cli serve --socket=PATH` runs a persistent daemon: a pool of
// worker threads pulls campaign CELLS from one in-process MPMC queue
// (queue.hpp); each connection thread parses a submitted CampaignJob,
// enqueues its shard's cells, and streams the finished rows back in grid
// order. Because every cell is independently deterministic (trial seeds
// derive from workload identity + trial index, and the stopping rule sees
// only the cell's own trials), a cell computed by any daemon worker is
// bit-identical to the same cell in a local `laec_cli campaign` run — so
// the streamed rows are byte-identical to `--procs=N` local output, and
// multiple client hosts/processes can shard one campaign by submitting
// complementary --shard slices to the same daemon.
//
// In-order emission IS the determinism contract: workers finish cells in
// any order, but the connection thread emits slot g only after slots
// 0..g-1 — the same round-robin discipline runner::fork_workers_and_merge
// uses for shard files, applied to a socket.
#pragma once

#include <atomic>
#include <string>

#include "report/sink.hpp"
#include "service/job.hpp"
#include "service/protocol.hpp"

namespace laec::service {

struct ServeOptions {
  std::string socket_path;
  /// Worker threads running cells; 0 = hardware concurrency.
  unsigned workers = 0;
  /// Optional external stop flag (tests); SIGTERM-style shutdown also
  /// arrives as a kShutdown frame from `laec_cli stop`.
  std::atomic<bool>* stop = nullptr;
  /// Heartbeat / lifecycle messages (nullptr silences the daemon).
  bool verbose = true;
};

/// Run the daemon until a kShutdown frame (or *stop) arrives. Returns 0
/// on clean shutdown. Throws std::runtime_error when the socket cannot
/// be created/bound. Removes the socket file on exit.
int run_daemon(const ServeOptions& opts);

struct SubmitSummary {
  u64 cells_run = 0;
  u64 trials_run = 0;
  u64 failures = 0;
};

/// Submit a campaign job to a daemon and stream its rows into `rows`
/// (begin/row/end called exactly as a local run would). Throws
/// std::runtime_error / WireError on connection or protocol failure, or
/// when the daemon rejects the job (kError).
SubmitSummary submit_job(const std::string& socket_path,
                         const CampaignJob& job, report::RowWriter& rows);

/// Ask a daemon to shut down (waits for acknowledgement).
void request_shutdown(const std::string& socket_path);

/// Probe a daemon's observable state (kStatus frame): uptime, queue depth,
/// in-flight cells, per-worker progress, and the daemon-side metrics
/// digest. Purely observational — never perturbs scheduling or rows.
[[nodiscard]] DaemonStatus request_status(const std::string& socket_path);

}  // namespace laec::service
