#include "service/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "service/wire.hpp"
#include "workloads/eembc.hpp"

#if !defined(_WIN32)
#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define LAEC_HAVE_SOCKETS 1
#else
#define LAEC_HAVE_SOCKETS 0
#endif

namespace laec::service {

#if LAEC_HAVE_SOCKETS

namespace {

/// RAII fd.
struct Fd {
  int fd = -1;
  Fd() = default;
  explicit Fd(int f) : fd(f) {}
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd(o.fd) { o.fd = -1; }
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

/// One submitted campaign: shared between the connection thread that
/// streams rows and the workers that compute cells.
struct JobState {
  reliability::CampaignSpec spec;
  std::vector<reliability::CampaignCell> cells;  ///< this job's slice
  u64 base_seed = 0x1aec;

  std::mutex m;
  std::condition_variable cv;
  std::vector<std::optional<reliability::CellResult>> results;
  bool failed = false;
  std::string failure;

  void deliver(std::size_t slot, reliability::CellResult r) {
    {
      std::lock_guard<std::mutex> lock(m);
      results[slot] = std::move(r);
    }
    cv.notify_all();
  }

  void fail(const std::string& why) {
    {
      std::lock_guard<std::mutex> lock(m);
      failed = true;
      failure = why;
    }
    cv.notify_all();
  }
};

struct WorkItem {
  std::shared_ptr<JobState> job;
  std::size_t slot = 0;
};

/// Per-worker progress counters (status frame columns).
struct WorkerCounters {
  std::atomic<u64> cells{0};
  std::atomic<u64> trials{0};
};

/// Shared observable state of one daemon instance: everything the kStatus
/// frame reports. Counters are relaxed atomics — a status probe reads a
/// near-consistent snapshot, never blocks a worker.
struct DaemonState {
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<WorkerCounters>> per_worker;
  std::atomic<u64> jobs_accepted{0};
  std::atomic<u64> jobs_rejected{0};
  std::atomic<u64> cells_done{0};
  std::atomic<u64> trials_done{0};
  std::atomic<u64> rows_streamed{0};
  std::atomic<u64> inflight{0};

  [[nodiscard]] u64 uptime_ms() const {
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
};

void worker_loop(MpmcQueue<WorkItem>& queue, DaemonState& state,
                 unsigned widx) {
  WorkerCounters& mine = *state.per_worker[widx];
  obs::Histogram& wait_us =
      obs::Registry::global().histogram("daemon.queue_wait_us");
  for (;;) {
    std::optional<WorkItem> item;
    {
      obs::Span wait("queue-wait");
      const auto t0 = std::chrono::steady_clock::now();
      item = queue.pop();
      wait_us.record(static_cast<u64>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
    if (!item.has_value()) return;  // queue closed and drained
    state.inflight.fetch_add(1, std::memory_order_relaxed);
    JobState& job = *item->job;
    const reliability::CampaignCell& cell = job.cells[item->slot];
    obs::Span span("daemon-cell");
    span.arg("cell", static_cast<u64>(cell.index));
    span.arg("workload", cell.workload);
    span.arg("scheme", cell.scheme);
    try {
      reliability::CampaignOptions copts;
      copts.threads = 1;
      copts.base_seed = job.base_seed;
      const reliability::CampaignSummary sum = reliability::run_campaign(
          {cell}, job.spec, copts);
      if (sum.cells.size() != 1) {
        throw std::runtime_error("cell produced no result");
      }
      mine.cells.fetch_add(1, std::memory_order_relaxed);
      mine.trials.fetch_add(sum.cells.front().trials,
                            std::memory_order_relaxed);
      state.cells_done.fetch_add(1, std::memory_order_relaxed);
      state.trials_done.fetch_add(sum.cells.front().trials,
                                  std::memory_order_relaxed);
      job.deliver(item->slot, sum.cells.front());
    } catch (const std::exception& e) {
      job.fail("cell " + std::to_string(cell.index) + " failed: " + e.what());
    }
    state.inflight.fetch_sub(1, std::memory_order_relaxed);
  }
}

void log_line(const ServeOptions& opts, const std::string& msg) {
  if (!opts.verbose) return;
  obs::log_info("laec-serve", msg);
}

/// Assemble the kStatus reply: daemon counters plus a digest of the
/// process-wide metrics registry (histograms reduced to count/sum/p50/p99).
DaemonStatus collect_status(const DaemonState& state,
                            const MpmcQueue<WorkItem>& queue) {
  DaemonStatus s;
  s.uptime_ms = state.uptime_ms();
  s.workers = static_cast<u32>(state.per_worker.size());
  s.queue_depth = queue.size();
  s.inflight_cells = state.inflight.load(std::memory_order_relaxed);
  s.jobs_accepted = state.jobs_accepted.load(std::memory_order_relaxed);
  s.jobs_rejected = state.jobs_rejected.load(std::memory_order_relaxed);
  s.cells_done = state.cells_done.load(std::memory_order_relaxed);
  s.trials_done = state.trials_done.load(std::memory_order_relaxed);
  s.rows_streamed = state.rows_streamed.load(std::memory_order_relaxed);
  s.per_worker.reserve(state.per_worker.size());
  for (const auto& w : state.per_worker) {
    WorkerStatus ws;
    ws.cells_done = w->cells.load(std::memory_order_relaxed);
    ws.trials_done = w->trials.load(std::memory_order_relaxed);
    s.per_worker.push_back(ws);
  }
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  s.metrics.reserve(snap.metrics.size());
  for (const obs::MetricValue& m : snap.metrics) {
    StatusMetric sm;
    sm.name = m.name;
    sm.kind = static_cast<u8>(m.kind);
    if (m.kind == obs::MetricKind::kHistogram) {
      sm.value = m.hist.count;
      sm.sum = m.hist.sum;
      sm.p50 = m.hist.percentile(0.50);
      sm.p99 = m.hist.percentile(0.99);
    } else {
      sm.value = m.value;
    }
    s.metrics.push_back(std::move(sm));
  }
  return s;
}

/// Serve one connection: hello, read a frame, dispatch. Returns true if
/// the client requested daemon shutdown.
bool serve_connection(int fd, MpmcQueue<WorkItem>& queue,
                      DaemonState& state, const ServeOptions& opts) {
  write_frame(fd, FrameType::kHello, hello_payload());
  const Frame req = read_frame(fd);
  obs::Span frame_span("daemon-frame");
  frame_span.arg("type", static_cast<u64>(req.type));

  if (req.type == FrameType::kShutdown) {
    write_frame(fd, FrameType::kDone, encode_done({}));
    return true;
  }
  if (req.type == FrameType::kStatus) {
    write_frame(fd, FrameType::kStatus,
                encode_status(collect_status(state, queue)));
    return false;
  }
  if (req.type != FrameType::kSubmit) {
    write_frame(fd, FrameType::kError,
                "expected a submit, status or stop frame");
    return false;
  }

  auto job = std::make_shared<JobState>();
  try {
    CampaignJob parsed = parse_job(req.payload);
    if (parsed.shard_count == 0 ||
        parsed.shard_index >= parsed.shard_count) {
      throw WireError("job shard_index/shard_count invalid");
    }
    job->spec = parsed.spec;
    job->base_seed = parsed.base_seed;
    for (auto& c : parsed.cells) {
      if (c.index % parsed.shard_count == parsed.shard_index) {
        job->cells.push_back(std::move(c));
      }
    }
    // Build each cell's config once up front so an unknown scheme or
    // workload is rejected as kError BEFORE any cell is enqueued.
    for (const auto& c : job->cells) {
      core::SimConfig probe = job->spec.base;
      probe.set_scheme(c.scheme);
      (void)workloads::kernel_by_name(c.workload);
    }
  } catch (const std::exception& e) {
    state.jobs_rejected.fetch_add(1, std::memory_order_relaxed);
    obs::log_warn("laec-serve", std::string("job rejected: ") + e.what());
    write_frame(fd, FrameType::kError,
                std::string("job rejected: ") + e.what());
    return false;
  }

  state.jobs_accepted.fetch_add(1, std::memory_order_relaxed);
  log_line(opts, "job accepted: " + std::to_string(job->cells.size()) +
                     " cells");
  job->results.resize(job->cells.size());
  for (std::size_t i = 0; i < job->cells.size(); ++i) {
    if (!queue.push(WorkItem{job, i})) {
      write_frame(fd, FrameType::kError, "daemon is shutting down");
      return false;
    }
  }

  // Stream rows in grid order: wait for slot g, emit, advance. This is
  // the fork_workers_and_merge round-robin discipline over a socket.
  write_frame(fd, FrameType::kRowHeader,
              encode_string_list(reliability::campaign_row_headers()));
  DoneSummary done;
  for (std::size_t g = 0; g < job->cells.size(); ++g) {
    reliability::CellResult res;
    {
      std::unique_lock<std::mutex> lock(job->m);
      job->cv.wait(lock, [&] {
        return job->failed || job->results[g].has_value();
      });
      if (job->failed) {
        lock.unlock();
        write_frame(fd, FrameType::kError, job->failure);
        return false;
      }
      res = std::move(*job->results[g]);
      job->results[g].reset();
    }
    done.cells += 1;
    done.trials += res.trials;
    done.failures += res.failures();
    write_frame(fd, FrameType::kRow,
                encode_string_list(reliability::campaign_to_row(res)));
    state.rows_streamed.fetch_add(1, std::memory_order_relaxed);
  }
  write_frame(fd, FrameType::kDone, encode_done(done));
  log_line(opts, "job done: " + std::to_string(done.cells) + " cells, " +
                     std::to_string(done.trials) + " trials");
  return false;
}

Fd connect_to(const std::string& socket_path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (fd.fd < 0) {
    throw std::runtime_error("cannot create unix socket");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd.fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    throw std::runtime_error("cannot connect to daemon at " + socket_path +
                             " (is `laec_cli serve` running?)");
  }
  return fd;
}

}  // namespace

int run_daemon(const ServeOptions& opts) {
  if (opts.socket_path.empty()) {
    throw std::invalid_argument("run_daemon: socket path is empty");
  }
  Fd listener(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (listener.fd < 0) {
    throw std::runtime_error("cannot create unix socket");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts.socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + opts.socket_path);
  }
  std::memcpy(addr.sun_path, opts.socket_path.c_str(),
              opts.socket_path.size() + 1);
  ::unlink(opts.socket_path.c_str());  // stale socket from a dead daemon
  if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    throw std::runtime_error("cannot bind " + opts.socket_path);
  }
  if (::listen(listener.fd, 16) < 0) {
    throw std::runtime_error("cannot listen on " + opts.socket_path);
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned n_workers = opts.workers == 0 ? hw : opts.workers;

  // Queue capacity bounds in-flight memory: connection threads block in
  // push() once workers fall behind, which is exactly the backpressure a
  // work queue should exert on its clients.
  MpmcQueue<WorkItem> queue(std::max(4u, n_workers * 4u));
  DaemonState state;
  state.per_worker.reserve(n_workers);
  for (unsigned i = 0; i < n_workers; ++i) {
    state.per_worker.push_back(std::make_unique<WorkerCounters>());
  }
  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  for (unsigned i = 0; i < n_workers; ++i) {
    workers.emplace_back([&queue, &state, i] { worker_loop(queue, state, i); });
  }

  log_line(opts, "listening on " + opts.socket_path + " with " +
                     std::to_string(n_workers) + " workers");

  std::atomic<bool> shutdown{false};
  std::vector<std::thread> connections;
  while (!shutdown.load(std::memory_order_acquire) &&
         (opts.stop == nullptr ||
          !opts.stop->load(std::memory_order_acquire))) {
    pollfd pfd{listener.fd, POLLIN, 0};
    const int rv = ::poll(&pfd, 1, 200);  // wake to re-check stop flags
    if (rv < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rv == 0) continue;
    const int conn = ::accept(listener.fd, nullptr, nullptr);
    if (conn < 0) continue;
    connections.emplace_back([conn, &queue, &state, &shutdown, &opts] {
      Fd guard(conn);
      try {
        if (serve_connection(conn, queue, state, opts)) {
          shutdown.store(true, std::memory_order_release);
        }
      } catch (const std::exception& e) {
        // Peer vanished mid-conversation; the daemon itself lives on.
        if (opts.verbose) {
          obs::log_warn("laec-serve",
                        std::string("connection dropped: ") + e.what());
        }
      }
    });
  }

  for (auto& t : connections) t.join();
  queue.close();
  for (auto& t : workers) t.join();
  ::unlink(opts.socket_path.c_str());
  log_line(opts, "shut down cleanly");
  return 0;
}

SubmitSummary submit_job(const std::string& socket_path,
                         const CampaignJob& job, report::RowWriter& rows) {
  Fd fd = connect_to(socket_path);
  const Frame hello = read_frame(fd.fd);
  if (hello.type != FrameType::kHello) {
    throw WireError("daemon did not greet with a hello frame");
  }
  check_hello(hello.payload);
  write_frame(fd.fd, FrameType::kSubmit, serialize_job(job));

  SubmitSummary sum;
  bool begun = false;
  for (;;) {
    const Frame f = read_frame(fd.fd);
    switch (f.type) {
      case FrameType::kRowHeader:
        rows.begin(decode_string_list(f.payload));
        begun = true;
        break;
      case FrameType::kRow:
        if (!begun) throw WireError("daemon sent a row before the header");
        rows.row(decode_string_list(f.payload));
        break;
      case FrameType::kDone: {
        const DoneSummary d = decode_done(f.payload);
        sum.cells_run = d.cells;
        sum.trials_run = d.trials;
        sum.failures = d.failures;
        if (begun) rows.end();
        return sum;
      }
      case FrameType::kError:
        throw std::runtime_error("daemon: " + f.payload);
      default:
        throw WireError("unexpected frame type from daemon");
    }
  }
}

void request_shutdown(const std::string& socket_path) {
  Fd fd = connect_to(socket_path);
  const Frame hello = read_frame(fd.fd);
  if (hello.type != FrameType::kHello) {
    throw WireError("daemon did not greet with a hello frame");
  }
  check_hello(hello.payload);
  write_frame(fd.fd, FrameType::kShutdown, {});
  (void)read_frame(fd.fd);  // wait for the kDone acknowledgement
}

DaemonStatus request_status(const std::string& socket_path) {
  Fd fd = connect_to(socket_path);
  const Frame hello = read_frame(fd.fd);
  if (hello.type != FrameType::kHello) {
    throw WireError("daemon did not greet with a hello frame");
  }
  check_hello(hello.payload);
  write_frame(fd.fd, FrameType::kStatus, {});
  const Frame reply = read_frame(fd.fd);
  if (reply.type == FrameType::kError) {
    throw std::runtime_error("daemon: " + reply.payload);
  }
  if (reply.type != FrameType::kStatus) {
    throw WireError("unexpected frame type from daemon");
  }
  return decode_status(reply.payload);
}

#else  // !LAEC_HAVE_SOCKETS

int run_daemon(const ServeOptions&) {
  throw std::runtime_error(
      "the campaign daemon needs Unix-domain sockets, which this platform "
      "lacks");
}

SubmitSummary submit_job(const std::string&, const CampaignJob&,
                         report::RowWriter&) {
  throw std::runtime_error(
      "the campaign daemon needs Unix-domain sockets, which this platform "
      "lacks");
}

void request_shutdown(const std::string&) {
  throw std::runtime_error(
      "the campaign daemon needs Unix-domain sockets, which this platform "
      "lacks");
}

DaemonStatus request_status(const std::string&) {
  throw std::runtime_error(
      "the campaign daemon needs Unix-domain sockets, which this platform "
      "lacks");
}

#endif

}  // namespace laec::service
