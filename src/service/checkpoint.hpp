// Versioned campaign checkpoint files: durable per-cell trial cursors.
//
// A campaign checkpoint is the set of reliability::CellProgress cursors a
// run_campaign on_round hook last reported, bound to the campaign's
// identity hash (service::campaign_identity — grid, spec, seed, shard,
// machine geometry). Because trial seeds derive from (base_seed, workload
// identity, trial index) and never from wall-clock or layout, restoring
// the cursors and continuing is bit-for-bit the run that was interrupted:
// the hard contract is that an interrupted-then-resumed campaign emits
// byte-identical rows to an uninterrupted one.
//
// File layout ("LAECCKP1", little-endian):
//   magic (8 bytes) | u64 fnv1a(payload) | payload
//   payload: u32 version | u64 identity | u32 ncells | cells
//   cell: u64 index | u32 done | u8 finished | 12 x u64 counters
//         | u64 device_hours IEEE bits
//   (version 2 appended the `pruned` counter to the u64 block; version 3
//   appended `fast_forwarded` and `cycles_skipped`)
//
// Writes are atomic (tmp file + rename), so a power cut mid-save leaves
// the previous checkpoint intact. Loads verify magic, checksum, version
// and identity and throw service::WireError on any mismatch — a corrupt
// or foreign checkpoint can never silently seed a campaign.
#pragma once

#include <string>
#include <vector>

#include "reliability/campaign.hpp"

namespace laec::service {

inline constexpr char kCheckpointMagic[8] = {'L', 'A', 'E', 'C',
                                             'C', 'K', 'P', '1'};
inline constexpr u32 kCheckpointVersion = 3;

/// Serialize cursors to `path` atomically (write `path`.tmp, rename).
/// Throws std::runtime_error when the file cannot be written.
void save_checkpoint(const std::string& path, u64 identity,
                     const std::vector<reliability::CellProgress>& cells);

/// Load and validate a checkpoint. Throws WireError for a missing/corrupt/
/// truncated file, an unsupported version, or an identity mismatch
/// (checkpoint was taken under a different campaign configuration).
[[nodiscard]] std::vector<reliability::CellProgress> load_checkpoint(
    const std::string& path, u64 identity);

}  // namespace laec::service
