#include "runner/multiproc.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "report/sink.hpp"

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#define LAEC_HAVE_FORK 1
#else
#define LAEC_HAVE_FORK 0
#endif

namespace laec::runner {

namespace {

std::string shard_row_path(const std::string& prefix, unsigned j) {
  return prefix + ".shard" + std::to_string(j) + ".rows";
}

std::string shard_meta_path(const std::string& prefix, unsigned j) {
  return prefix + ".shard" + std::to_string(j) + ".meta";
}

std::string shard_events_path(const std::string& prefix, unsigned j) {
  return prefix + ".shard" + std::to_string(j) + ".events";
}

/// Default scratch prefix: unique per process under the system tmp dir
/// (two concurrent drivers must not clobber each other's shard files).
std::string default_prefix() {
  static unsigned counter = 0;
  const auto dir = std::filesystem::temp_directory_path();
#if LAEC_HAVE_FORK
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return (dir / ("laec-procs-" + std::to_string(pid) + "-" +
                 std::to_string(counter++)))
      .string();
}

/// The slice worker j runs, via the shared subdivision policy.
SweepOptions worker_options(const ProcOptions& opts, unsigned j) {
  SweepOptions o = opts.worker;
  const WorkerShard ws =
      proc_worker_shard(opts.worker.shard_index, opts.worker.shard_count,
                        opts.worker.threads, opts.procs, j);
  o.shard_index = ws.shard_index;
  o.shard_count = ws.shard_count;
  o.threads = ws.threads;
  o.sink = nullptr;
  o.on_result = nullptr;
  return o;
}

/// Run one worker's slice to its shard row + meta files. Returns the
/// sweep's exit status (0 ok, 1 self-check failures). Used by the forked
/// child on POSIX and by the sequential fallback elsewhere.
int run_worker(const std::vector<SweepPoint>& points, const ProcOptions& opts,
               unsigned j, const std::string& rows_path,
               const std::string& meta_path) {
  std::ofstream rows(rows_path, std::ios::trunc);
  if (!rows) return 2;
  const auto sink = report::make_row_writer(opts.format, rows);
  if (sink == nullptr) return 2;

  SweepOptions o = worker_options(opts, j);
  o.sink = sink.get();
  const SweepSummary sum = run_sweep(points, o);
  rows.flush();
  if (!rows) return 2;

  std::ofstream meta(meta_path, std::ios::trunc);
  meta << sum.points_run << ' ' << sum.totals.value("cycles") << ' '
       << sum.self_check_failures << '\n';
  meta.flush();
  if (!meta) return 2;
  return sum.self_check_failures == 0 ? 0 : 1;
}

}  // namespace

WorkerShard proc_worker_shard(unsigned parent_index, unsigned parent_count,
                              unsigned threads, unsigned procs, unsigned j) {
  WorkerShard ws;
  ws.shard_index = parent_index + j * parent_count;
  ws.shard_count = parent_count * procs;
  // threads == 0 means "hardware concurrency" — per process; split the
  // auto budget across the workers. (Thread count never affects rows.)
  ws.threads = threads;
  if (ws.threads == 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    ws.threads = std::max(1u, hw / procs);
  }
  return ws;
}

ForkMergeSummary fork_workers_and_merge(const ForkMergeOptions& opts,
                                        const ProcWorkerFn& worker,
                                        std::ostream& rows_out) {
  if (opts.procs == 0) {
    throw std::invalid_argument(
        "fork_workers_and_merge: procs must be >= 1");
  }
  const std::string prefix =
      opts.scratch_prefix.empty() ? default_prefix() : opts.scratch_prefix;

  // Pre-create every shard row file so the merge can always open them,
  // even for a worker that dies before its first row.
  for (unsigned j = 0; j < opts.procs; ++j) {
    std::ofstream touch(shard_row_path(prefix, j), std::ios::trunc);
    if (!touch) {
      throw std::runtime_error("fork_workers_and_merge: cannot create " +
                               shard_row_path(prefix, j));
    }
  }

  ForkMergeSummary summary;
  std::vector<char> worker_failed(opts.procs, 0);
  const auto fail = [&](unsigned j, const std::string& why) {
    worker_failed[j] = 1;
    obs::log_warn("laec-procs", "worker " + std::to_string(j) + ": " + why);
    summary.diagnostics.push_back("worker " + std::to_string(j) + ": " + why);
  };
  const bool tracing =
      !opts.trace_path.empty() && obs::Tracer::global().enabled();
  obs::Span workers_span("procs.workers");
  workers_span.arg("procs", static_cast<u64>(opts.procs));
#if LAEC_HAVE_FORK
  std::vector<pid_t> pids(opts.procs, -1);
  for (unsigned j = 0; j < opts.procs; ++j) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error("fork_workers_and_merge: fork failed");
    }
    if (pid == 0) {
      // Worker: run the slice, then leave WITHOUT unwinding the parent's
      // state (no atexit handlers, no double-flushed stdio buffers).
      if (tracing) {
        // Drop the flight-recorder events inherited from the parent's
        // ring (the parent emits them itself) and restart the clock.
        obs::Tracer::global().enable();
      }
      int code = 2;
      try {
        code = worker(j, shard_row_path(prefix, j), shard_meta_path(prefix, j));
      } catch (...) {
        code = 2;
      }
      if (tracing) {
        (void)obs::write_shard_events_file(shard_events_path(prefix, j),
                                           j + 1);
      }
      std::_Exit(code);
    }
    pids[j] = pid;
  }
  for (unsigned j = 0; j < opts.procs; ++j) {
    int status = 0;
    if (::waitpid(pids[j], &status, 0) < 0) {
      fail(j, "waitpid failed: " + std::string(std::strerror(errno)));
    } else if (WIFSIGNALED(status)) {
      const int sig = WTERMSIG(status);
      const char* name = ::strsignal(sig);
      fail(j, "killed by signal " + std::to_string(sig) +
                  (name != nullptr ? " (" + std::string(name) + ")"
                                   : std::string()));
    } else if (!WIFEXITED(status)) {
      fail(j, "did not exit normally");
    } else if (WEXITSTATUS(status) >= 2) {
      fail(j, "exited with status " + std::to_string(WEXITSTATUS(status)));
    }
  }
#else
  // No fork on this platform: run the shards sequentially in-process. Same
  // shard files, same merge, same bytes — just no parallelism.
  for (unsigned j = 0; j < opts.procs; ++j) {
    int code = 2;
    try {
      code = worker(j, shard_row_path(prefix, j), shard_meta_path(prefix, j));
    } catch (...) {
      code = 2;
    }
    if (code >= 2) fail(j, "exited with status " + std::to_string(code));
  }
#endif
  workers_span.close();
  obs::Span merge_span("procs.merge");

  // Sum the meta digests (a failed worker may not have written one).
  std::vector<std::string> row_paths;
  std::vector<u64> claimed_rows(opts.procs, 0);
  std::vector<char> meta_ok(opts.procs, 0);
  row_paths.reserve(opts.procs);
  for (unsigned j = 0; j < opts.procs; ++j) {
    row_paths.push_back(shard_row_path(prefix, j));
    std::ifstream meta(shard_meta_path(prefix, j));
    u64 a = 0, b = 0, c = 0;
    if (meta >> a >> b >> c) {
      meta_ok[j] = 1;
      claimed_rows[j] = a;
      summary.meta[0] += a;
      summary.meta[1] += b;
      summary.meta[2] += c;
    } else if (!worker_failed[j]) {
      fail(j, "exited cleanly but left no readable meta digest");
    }
  }

  std::vector<std::size_t> rows_per_file;
  merge_shard_rows(row_paths, opts.csv_header, rows_out, &rows_per_file);

  // Cross-check each shard file against its own meta digest: slot 0 is the
  // worker's row count (both drivers' contract), so a short or truncated
  // shard file can never slip into the merge unnoticed even when the
  // worker itself exited cleanly.
  for (unsigned j = 0; j < opts.procs; ++j) {
    if (worker_failed[j] || !meta_ok[j]) continue;
    if (rows_per_file[j] != claimed_rows[j]) {
      fail(j, "shard file holds " + std::to_string(rows_per_file[j]) +
                  " rows but its meta digest claims " +
                  std::to_string(claimed_rows[j]));
    }
  }
  for (const char f : worker_failed) {
    summary.failed_workers += static_cast<unsigned>(f);
  }

  for (unsigned j = 0; j < opts.procs; ++j) {
    std::remove(shard_row_path(prefix, j).c_str());
    std::remove(shard_meta_path(prefix, j).c_str());
  }
  merge_span.close();

  // Stitch the shard flight recorders plus the parent's own events into
  // one Chrome trace document. Workers that never wrote an events file
  // (sequential fallback, early death) are simply absent from the trace.
  if (tracing) {
    std::vector<std::string> shard_events;
    shard_events.reserve(opts.procs);
    for (unsigned j = 0; j < opts.procs; ++j) {
      shard_events.push_back(shard_events_path(prefix, j));
    }
    std::vector<std::string> parent_lines;
    for (const obs::TraceEvent& ev : obs::Tracer::global().events()) {
      parent_lines.push_back(obs::event_to_json(ev, 0));
    }
    if (!obs::merge_trace_files(shard_events, parent_lines,
                                opts.trace_path)) {
      obs::log_warn("laec-procs",
                    "cannot write trace file " + opts.trace_path);
    }
    for (unsigned j = 0; j < opts.procs; ++j) {
      std::remove(shard_events_path(prefix, j).c_str());
    }
  }
  return summary;
}

void merge_shard_rows(const std::vector<std::string>& shard_paths,
                      bool csv_header, std::ostream& out,
                      std::vector<std::size_t>* rows_per_file) {
  std::vector<std::ifstream> files;
  files.reserve(shard_paths.size());
  for (const auto& p : shard_paths) {
    files.emplace_back(p);
    if (!files.back()) {
      throw std::runtime_error("merge_shard_rows: cannot open " + p);
    }
  }
  if (rows_per_file != nullptr) {
    rows_per_file->assign(files.size(), 0);
  }
  std::string line;
  if (csv_header) {
    // Every shard wrote the same header; emit the first one that exists
    // (shard 0's file can be empty when its worker died before flushing).
    bool emitted = false;
    for (std::size_t j = 0; j < files.size(); ++j) {
      if (std::getline(files[j], line) && !emitted) {
        out << line << '\n';
        emitted = true;
      }
    }
  }
  // Round-robin: the g-th row of the merged slice lives in shard g mod P.
  // In a complete run the files exhaust together (the partition guarantees
  // it); an exhausted file is skipped rather than ending the merge, so a
  // worker that died early still contributes every row it finished and the
  // survivors' rows are all kept.
  std::vector<char> exhausted(files.size(), 0);
  std::size_t remaining = files.size();
  for (std::size_t g = 0; remaining > 0; ++g) {
    const std::size_t j = g % files.size();
    if (exhausted[j]) continue;
    if (!std::getline(files[j], line)) {
      exhausted[j] = 1;
      --remaining;
      continue;
    }
    if (files[j].eof()) {
      // The row writers terminate every line with '\n'; a final line with
      // no newline is the torn tail of a worker killed mid-write. Drop it
      // rather than merging a corrupt row.
      exhausted[j] = 1;
      --remaining;
      continue;
    }
    out << line << '\n';
    if (rows_per_file != nullptr) {
      ++(*rows_per_file)[j];
    }
  }
}

ProcSummary run_sweep_procs(const std::vector<SweepPoint>& points,
                            const ProcOptions& opts, std::ostream& rows_out) {
  if (opts.procs == 0) {
    throw std::invalid_argument("run_sweep_procs: procs must be >= 1");
  }
  if (opts.worker.sink != nullptr || opts.worker.on_result) {
    throw std::invalid_argument(
        "run_sweep_procs: rows flow through shard files; worker.sink and "
        "worker.on_result must be unset");
  }

  ProcSummary summary;

  if (opts.procs == 1) {
    // No fork, no scratch files: the classic in-process path.
    const auto sink = report::make_row_writer(opts.format, rows_out);
    if (sink == nullptr) {
      throw std::invalid_argument("run_sweep_procs: unknown row format \"" +
                                  opts.format + "\"");
    }
    SweepOptions o = opts.worker;
    o.sink = sink.get();
    const SweepSummary sum = run_sweep(points, o);
    summary.points_run = sum.points_run;
    summary.cycles = sum.totals.value("cycles");
    summary.self_check_failures = sum.self_check_failures;
    return summary;
  }

  // Validate the format (and the points — run_sweep would only throw
  // inside the children otherwise, which reports poorly).
  if (report::make_row_writer(opts.format, rows_out) == nullptr) {
    throw std::invalid_argument("run_sweep_procs: unknown row format \"" +
                                opts.format + "\"");
  }

  ForkMergeOptions fm;
  fm.procs = opts.procs;
  fm.scratch_prefix = opts.scratch_prefix;
  fm.csv_header = opts.format == "csv";
  fm.trace_path = opts.trace_path;
  const ForkMergeSummary fms = fork_workers_and_merge(
      fm,
      [&](unsigned j, const std::string& rows_path,
          const std::string& meta_path) {
        return run_worker(points, opts, j, rows_path, meta_path);
      },
      rows_out);
  summary.points_run = static_cast<std::size_t>(fms.meta[0]);
  summary.cycles = fms.meta[1];
  summary.self_check_failures = static_cast<std::size_t>(fms.meta[2]);
  summary.failed_workers = fms.failed_workers;
  summary.worker_diagnostics = fms.diagnostics;
  return summary;
}

}  // namespace laec::runner
