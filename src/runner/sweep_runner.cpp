#include "runner/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "ecc/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/system.hpp"
#include "workloads/synthetic.hpp"

namespace laec::runner {

namespace {

u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

u64 fnv1a(const std::string& s) {
  u64 h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string fmt_u64(u64 v) { return std::to_string(v); }

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

/// Run a single point to completion. The caller has already validated the
/// workload name, so kernel_by_name cannot throw here.
PointResult run_point(const SweepPoint& point, u64 base_seed,
                      mem::ResidencyRecorder* recorder = nullptr,
                      sim::SnapshotStore* snapshots = nullptr) {
  PointResult r;
  r.point = point;

  core::SimConfig cfg = point.config;
  const u64 seed = point_seed(base_seed, point);
  if (cfg.faults.has_value()) {
    cfg.faults->seed = fault_seed(base_seed, point);
  }

  const auto& entry = workloads::kernel_by_name(point.workload);
  if (point.mode == RunMode::kTrace) {
    auto params = workloads::SyntheticParams::from_kernel(entry,
                                                          point.trace_ops);
    // Trace mode has no fault storm for the replicate to vary, so it
    // varies the TRACE instead — each replicate is an independent
    // synthetic-workload sample. Replicate 0 keeps the historical seed.
    params.seed =
        point.replicate == 0
            ? seed
            : splitmix64(seed ^
                         (point.replicate * 0x9e3779b97f4a7c15ull));
    workloads::SyntheticTrace trace(params);
    r.stats = core::run_trace(cfg, trace);
    return r;
  }

  const auto built = entry.build();
  // Fast-forward: a replay trial with a golden snapshot at-or-before its
  // first delivery restores it and simulates only the suffix. The restored
  // state already contains the program image and the full fault-free prefix,
  // so the rows are byte-identical with the from-reset path (the ff-equiv
  // suite and CI gate hold this contract).
  auto run = point.resume_from != nullptr
                 ? core::run_program_resume(cfg, *point.resume_from->blob,
                                            point.resume_from->ordinal)
                 : core::run_program_keep_system(cfg, built.program, recorder,
                                                 snapshots);
  r.stats = std::move(run.stats);
  if (run.injector != nullptr) {
    r.faults_injected = run.injector->injected_total();
    r.faults_dropped = run.injector->faults_dropped();
  }
  for (const auto& [addr, expect] : built.expected) {
    if (run.system->read_word_final(addr) != expect) {
      r.self_check_ok = false;
      break;
    }
  }
  return r;
}

void accumulate(StatSet& totals, const PointResult& r) {
  totals.counter("points") += 1;
  totals.counter("self_check_failures") += r.self_check_ok ? 0 : 1;
  totals.counter("completed") += r.stats.completed ? 1 : 0;
  totals.counter("cycles") += r.stats.cycles;
  totals.counter("instructions") += r.stats.instructions;
  totals.counter("loads") += r.stats.loads;
  totals.counter("load_hits") += r.stats.load_hits;
  totals.counter("stores") += r.stats.stores;
  totals.counter("dep_loads") += r.stats.dep_loads;
  totals.counter("laec_anticipated") += r.stats.laec_anticipated;
  totals.counter("laec_data_hazard") += r.stats.laec_data_hazard;
  totals.counter("laec_resource_hazard") += r.stats.laec_resource_hazard;
  totals.counter("ecc_corrected") += r.stats.ecc_corrected;
  totals.counter("ecc_corrected_adjacent") += r.stats.ecc_corrected_adjacent;
  totals.counter("ecc_detected_uncorrectable") +=
      r.stats.ecc_detected_uncorrectable;
  totals.counter("parity_refetches") += r.stats.parity_refetches;
  totals.counter("data_loss_events") += r.stats.data_loss_events;
  totals.counter("l1i_corrected") += r.stats.l1i_corrected;
  totals.counter("l1i_detected_uncorrectable") +=
      r.stats.l1i_detected_uncorrectable;
  totals.counter("l1i_refetches") += r.stats.l1i_refetches;
  totals.counter("l2_corrected") += r.stats.l2_corrected;
  totals.counter("l2_corrected_adjacent") += r.stats.l2_corrected_adjacent;
  totals.counter("l2_detected_uncorrectable") +=
      r.stats.l2_detected_uncorrectable;
  totals.counter("l2_refetches") += r.stats.l2_refetches;
  totals.counter("l2_data_loss_events") += r.stats.l2_data_loss_events;
  totals.counter("bus_transactions") += r.stats.bus_transactions;
  totals.counter("bus_wait_cycles") += r.stats.bus_wait_cycles;
  for (const auto& sub :
       {std::make_pair("pipeline.", &r.stats.pipeline_stats),
        std::make_pair("dl1.", &r.stats.dl1_stats),
        std::make_pair("l1i.", &r.stats.l1i_stats),
        std::make_pair("l2.", &r.stats.l2_stats),
        std::make_pair("bus.", &r.stats.bus_stats)}) {
    for (const auto& [name, value] : sub.second->items()) {
      totals.counter(std::string(sub.first) + name) += value;
    }
  }
}

}  // namespace

SweepGrid& SweepGrid::workloads(std::vector<std::string> names) {
  workloads_ = std::move(names);
  return *this;
}

SweepGrid& SweepGrid::all_workloads() {
  workloads_.clear();
  for (const auto& k : workloads::eembc_kernels()) {
    workloads_.push_back(k.name);
  }
  return *this;
}

SweepGrid& SweepGrid::schemes(std::vector<std::string> keys) {
  schemes_ = std::move(keys);
  return *this;
}

SweepGrid& SweepGrid::eccs(const std::vector<cpu::EccPolicy>& policies) {
  schemes_.clear();
  for (const auto p : policies) {
    schemes_.emplace_back(to_string(p));
  }
  return *this;
}

SweepGrid& SweepGrid::hazards(std::vector<cpu::HazardRule> rules) {
  hazards_ = std::move(rules);
  return *this;
}

SweepGrid& SweepGrid::variants(std::vector<ConfigVariant> variants) {
  variants_ = std::move(variants);
  return *this;
}

SweepGrid& SweepGrid::base_config(core::SimConfig cfg) {
  base_ = std::move(cfg);
  return *this;
}

SweepGrid& SweepGrid::mode(RunMode m) {
  mode_ = m;
  return *this;
}

SweepGrid& SweepGrid::trace_ops(u64 ops) {
  trace_ops_ = ops;
  return *this;
}

SweepGrid& SweepGrid::replicates(u64 n) {
  if (n == 0) {
    throw std::invalid_argument("SweepGrid::replicates: n must be >= 1");
  }
  replicates_ = n;
  return *this;
}

std::vector<SweepPoint> SweepGrid::points() const {
  // A single identity variant keeps the expansion uniform.
  static const ConfigVariant kIdentity{"default", nullptr};
  const std::vector<ConfigVariant>* variants = &variants_;
  const std::vector<ConfigVariant> identity{kIdentity};
  if (variants->empty()) variants = &identity;

  // Parse every scheme key once up front (throws for unknown keys before
  // any simulation runs).
  std::vector<core::EccDeployment> deployments;
  deployments.reserve(schemes_.size());
  for (const auto& s : schemes_) {
    deployments.push_back(core::EccDeployment::parse(s));
  }

  std::vector<SweepPoint> out;
  out.reserve(workloads_.size() * variants->size() * deployments.size() *
              hazards_.size() * replicates_);
  for (const auto& w : workloads_) {
    for (const auto& v : *variants) {
      for (const auto& dep : deployments) {
        for (const auto hz : hazards_) {
          for (u64 rep = 0; rep < replicates_; ++rep) {
            SweepPoint p;
            p.index = out.size();
            p.workload = w;
            p.variant = v.name;
            p.config = base_;
            if (v.tweak) v.tweak(p.config);
            p.config.deployment = dep;
            p.config.ecc = dep.timing;
            p.config.hazard_rule = hz;
            p.mode = mode_;
            p.trace_ops = trace_ops_;
            p.replicate = rep;
            out.push_back(std::move(p));
          }
        }
      }
    }
  }
  return out;
}

u64 point_seed(u64 base_seed, const SweepPoint& point) {
  u64 h = splitmix64(base_seed);
  h = splitmix64(h ^ fnv1a(point.workload));
  h = splitmix64(h ^ point.trace_ops);
  return h;
}

u64 fault_seed(u64 base_seed, const SweepPoint& point) {
  // Mixing the replicate index here (and only here) keeps the trace
  // identical across a cell's trials while giving each trial its own
  // fault sequence; replicate 0 reproduces the historical seed exactly.
  return splitmix64(point_seed(base_seed, point) ^ 0xfa17u ^
                    (point.replicate * 0x9e3779b97f4a7c15ull));
}

PointResult run_golden_point(const SweepPoint& point, u64 base_seed,
                             mem::ResidencyRecorder* recorder,
                             sim::SnapshotStore* snapshots) {
  if (point.mode != RunMode::kProgram) {
    throw std::invalid_argument(
        "run_golden_point requires program mode: trace-mode points keep no "
        "arrays to record residency in");
  }
  SweepPoint golden = point;
  golden.config.faults.reset();
  golden.replicate = 0;  // the shared trace; replicates differ only in storms
  golden.resume_from = nullptr;
  return run_point(golden, base_seed, recorder, snapshots);
}

const std::vector<cpu::EccPolicy>& fig8_schemes() {
  static const std::vector<cpu::EccPolicy> kSchemes = {
      cpu::EccPolicy::kNoEcc, cpu::EccPolicy::kExtraCycle,
      cpu::EccPolicy::kExtraStage, cpu::EccPolicy::kLaec};
  return kSchemes;
}

const std::vector<std::string>& fig8_scheme_keys() {
  static const std::vector<std::string> kKeys = [] {
    std::vector<std::string> keys;
    for (const auto p : fig8_schemes()) keys.emplace_back(to_string(p));
    return keys;
  }();
  return kKeys;
}

const std::vector<std::string>& row_headers() {
  // The ecc_* columns are the DL1's (original names retained); the l1i_*/
  // l2_* blocks carry the other levels of the hierarchy deployment.
  static const std::vector<std::string> kHeaders = {
      "workload", "variant", "mode", "ecc", "codec_dl1", "codec_l1i",
      "codec_l2", "hazard", "completed", "cycles", "instructions", "cpi",
      "loads", "load_hits", "dep_loads", "stores", "laec_anticipated",
      "laec_data_hazard", "laec_resource_hazard", "ecc_corrected",
      "ecc_corrected_adjacent", "ecc_detected_uncorrectable",
      "parity_refetches", "l1i_corrected", "l1i_due", "l1i_refetches",
      "l2_corrected", "l2_corrected_adjacent", "l2_due", "l2_refetches",
      "l2_data_loss", "bus_transactions", "bus_wait_cycles", "self_check"};
  return kHeaders;
}

std::vector<std::string> to_row(const PointResult& r) {
  const auto& s = r.stats;
  const core::HierarchyDeployment dep =
      r.point.config.effective_deployment();
  return {r.point.workload,
          r.point.variant,
          std::string(to_string(r.point.mode)),
          dep.name,
          dep.codec,
          dep.l1i.codec,
          dep.l2.codec,
          std::string(to_string(r.point.config.hazard_rule)),
          s.completed ? "1" : "0",
          fmt_u64(s.cycles),
          fmt_u64(s.instructions),
          fmt_double(s.cpi),
          fmt_u64(s.loads),
          fmt_u64(s.load_hits),
          fmt_u64(s.dep_loads),
          fmt_u64(s.stores),
          fmt_u64(s.laec_anticipated),
          fmt_u64(s.laec_data_hazard),
          fmt_u64(s.laec_resource_hazard),
          fmt_u64(s.ecc_corrected),
          fmt_u64(s.ecc_corrected_adjacent),
          fmt_u64(s.ecc_detected_uncorrectable),
          fmt_u64(s.parity_refetches),
          fmt_u64(s.l1i_corrected),
          fmt_u64(s.l1i_detected_uncorrectable),
          fmt_u64(s.l1i_refetches),
          fmt_u64(s.l2_corrected),
          fmt_u64(s.l2_corrected_adjacent),
          fmt_u64(s.l2_detected_uncorrectable),
          fmt_u64(s.l2_refetches),
          fmt_u64(s.l2_data_loss_events),
          fmt_u64(s.bus_transactions),
          fmt_u64(s.bus_wait_cycles),
          r.self_check_ok ? "ok" : "FAIL"};
}

SweepSummary run_sweep(const std::vector<SweepPoint>& points,
                       const SweepOptions& opts) {
  if (opts.shard_count == 0 || opts.shard_index >= opts.shard_count) {
    throw std::invalid_argument("run_sweep: shard_index/shard_count invalid");
  }
  // Validate every point up front so worker threads cannot throw: workload
  // names must resolve, and trace (oracle) points cannot carry fault
  // injection (there are no arrays to inject into).
  {
    std::set<std::string> seen;
    for (const auto& p : points) {
      if (seen.insert(p.workload).second) {
        (void)workloads::kernel_by_name(p.workload);  // throws if unknown
      }
      if (p.mode == RunMode::kTrace && p.config.faults.has_value()) {
        throw std::invalid_argument(
            "run_sweep: point " + std::to_string(p.index) +
            " combines trace mode with fault injection, which requires "
            "program mode (the oracle keeps no arrays to inject into)");
      }
      if (p.resume_from != nullptr &&
          (p.mode != RunMode::kProgram || !p.config.faults.has_value() ||
           p.config.faults->schedule == nullptr)) {
        throw std::invalid_argument(
            "run_sweep: point " + std::to_string(p.index) +
            " carries a fast-forward snapshot without a program-mode replay "
            "schedule (snapshots are only sound for pre-drawn storms)");
      }
    }
  }

  // This shard's slice, in grid order.
  std::vector<const SweepPoint*> mine;
  for (const auto& p : points) {
    if (p.index % opts.shard_count == opts.shard_index) mine.push_back(&p);
  }

  SweepSummary summary;
  summary.results.resize(mine.size());
  if (opts.sink != nullptr) opts.sink->begin(row_headers());

  std::vector<char> done(mine.size(), 0);
  std::size_t next_emit = 0;
  std::mutex emit_mutex;

  // Emit (sink + callback + aggregate) every contiguous finished prefix.
  // Called with emit_mutex held; emission is therefore in grid order and
  // byte-identical for any thread count.
  const auto drain = [&] {
    while (next_emit < mine.size() && done[next_emit]) {
      const PointResult& r = summary.results[next_emit];
      accumulate(summary.totals, r);
      summary.points_run += 1;
      if (!r.self_check_ok) summary.self_check_failures += 1;
      if (opts.sink != nullptr) opts.sink->row(to_row(r));
      if (opts.on_result) opts.on_result(r);
      ++next_emit;
    }
  };

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned requested = opts.threads == 0 ? hw : opts.threads;
  const unsigned n_threads = static_cast<unsigned>(
      std::min<std::size_t>(requested, std::max<std::size_t>(1, mine.size())));

  std::atomic<std::size_t> cursor{0};
  // Per-point wall time feeds the heartbeat's p50/p99 (tracer on or off);
  // the clock reads sit at point granularity, never inside the sim loop.
  obs::Histogram& point_us =
      obs::Registry::global().histogram("sweep.point_us");
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= mine.size()) return;
      const SweepPoint& p = *mine[i];
      obs::Span span("trial");
      if (span.live()) {
        span.arg("workload", p.workload);
        span.arg("replicate", static_cast<u64>(p.replicate));
        if (p.resume_from != nullptr) {
          span.arg("ff_ordinal", p.resume_from->ordinal);
        }
      }
      const auto t0 = std::chrono::steady_clock::now();
      PointResult r = run_point(p, opts.base_seed);
      point_us.record(static_cast<u64>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
      span.close();
      std::lock_guard<std::mutex> lock(emit_mutex);
      summary.results[i] = std::move(r);
      done[i] = 1;
      drain();
    }
  };

  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  if (opts.sink != nullptr) opts.sink->end();
  return summary;
}

}  // namespace laec::runner
