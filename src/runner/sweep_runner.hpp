// SweepRunner — batched, sharded execution of SimConfig grids.
//
// Every headline result of the paper (Fig. 8 exec-time ratios, Table II
// characterization, the ablation sensitivity tables) is an embarrassingly
// parallel sweep: run each (workload × ecc policy × hazard rule × machine
// geometry) point, digest the stats, tabulate. SweepRunner is the one
// engine behind all of them:
//
//   * a SweepGrid builder expands the cross product into a deterministic,
//     stable list of SweepPoints (grid order never depends on threading);
//   * run_sweep() shards the points over a std::thread pool — workers pull
//     indices from an atomic cursor, so load-imbalanced kernels do not
//     leave threads idle;
//   * each point gets a deterministic RNG seed derived from (base_seed,
//     grid index) by splitmix64, so trace generation and fault injection
//     reproduce bit-for-bit at any thread count and on any shard;
//   * results are batched into StatSet aggregates and streamed to an
//     optional report::RowWriter in grid order (a small reorder window
//     holds completed rows until their predecessors finish).
//
// Multi-machine scaling uses shard_count/shard_index: shard k of N runs the
// points with index % N == k; the union of all shards is the full grid.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/simulator.hpp"
#include "report/sink.hpp"
#include "sim/snapshot.hpp"
#include "workloads/eembc.hpp"

namespace laec::runner {

/// How a point's workload drives the simulated system.
enum class RunMode {
  kProgram,  ///< assemble + run the self-checking kernel on the real caches
  kTrace,    ///< calibrated synthetic trace (oracle DL1 outcomes)
};

[[nodiscard]] constexpr std::string_view to_string(RunMode m) {
  return m == RunMode::kProgram ? "program" : "trace";
}

/// One experiment: a workload under one fully-specified configuration.
struct SweepPoint {
  std::size_t index = 0;   ///< position in the expanded grid (stable)
  std::string workload;    ///< kernel name (workloads::kernel_by_name)
  std::string variant;     ///< human label of the config variant
  core::SimConfig config;
  RunMode mode = RunMode::kProgram;
  u64 trace_ops = 120'000;
  /// Monte Carlo trial index (the reliability campaign's trials axis).
  /// Replicates share the point's workload-identity seed — so every scheme
  /// sees the identical trace — but the FAULT storm's seed mixes this in,
  /// giving each trial an independent fault stream that is still
  /// seed-paired across schemes (trial t of scheme A and scheme B seed the
  /// same storm; the realized sequences diverge where codeword widths or
  /// recovery paths differ). 0 (the default) reproduces the pre-replicate
  /// seeding exactly.
  u64 replicate = 0;
  /// Fast-forward: restore this golden snapshot instead of simulating the
  /// fault-free prefix. Program-mode replay points only (config.faults with
  /// a pre-drawn schedule whose first delivery ordinal is >= the snapshot's
  /// ordinal — the campaign engine picks entries that satisfy this). Null =
  /// run from reset.
  std::shared_ptr<const sim::SnapshotStore::Entry> resume_from;
};

struct PointResult {
  SweepPoint point;
  core::RunStats stats;
  /// Program mode: did every architecturally-final word match the kernel's
  /// C++ reference model? (Trace mode has no checks; stays true.)
  bool self_check_ok = true;
  /// Fault events the point's injector delivered (0 when faults unset).
  u64 faults_injected = 0;
  /// Fault events the injector sampled but could not deliver (per-access
  /// flip budget exhausted under extreme acceleration).
  u64 faults_dropped = 0;
};

/// Named SimConfig mutation (geometry / latency variants for ablations).
struct ConfigVariant {
  std::string name;
  std::function<void(core::SimConfig&)> tweak;
};

/// Cross-product grid builder. Order of expansion is fixed:
/// workload (outer) × variant × scheme × hazard × replicate (inner).
class SweepGrid {
 public:
  SweepGrid& workloads(std::vector<std::string> names);
  /// All 16 EEMBC-like kernels, Table II order.
  SweepGrid& all_workloads();
  /// The scheme axis, string-keyed: each entry is a HierarchyDeployment
  /// key — a policy name ("laec"), a registered codec name
  /// ("sec-daec-39-32"), "placement:codec", or a compound hierarchy key
  /// ("laec+l2:sec-daec-39-32"). This is the native axis; eccs() is the
  /// enum shim.
  SweepGrid& schemes(std::vector<std::string> keys);
  /// Enum shim: forwards the policies' canonical keys to schemes().
  SweepGrid& eccs(const std::vector<cpu::EccPolicy>& policies);
  SweepGrid& hazards(std::vector<cpu::HazardRule> rules);
  SweepGrid& variants(std::vector<ConfigVariant> variants);
  SweepGrid& base_config(core::SimConfig cfg);
  SweepGrid& mode(RunMode m);
  SweepGrid& trace_ops(u64 ops);
  /// Monte Carlo trials axis: expand every point into `n` replicates
  /// (innermost, replicate = 0..n-1). Program mode varies the FAULT
  /// stream per replicate (see SweepPoint::replicate); trace mode varies
  /// the synthetic TRACE itself (there is no storm to vary). n must
  /// be >= 1.
  SweepGrid& replicates(u64 n);

  /// Expand into the deterministic point list. Throws std::invalid_argument
  /// when a scheme key does not parse (unknown codec/placement).
  [[nodiscard]] std::vector<SweepPoint> points() const;

 private:
  std::vector<std::string> workloads_;
  std::vector<std::string> schemes_{"laec"};
  std::vector<cpu::HazardRule> hazards_{cpu::HazardRule::kExact};
  std::vector<ConfigVariant> variants_;
  core::SimConfig base_;
  RunMode mode_ = RunMode::kProgram;
  u64 trace_ops_ = 120'000;
  u64 replicates_ = 1;
};

struct SweepOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Horizontal sharding: this process runs points with
  /// index % shard_count == shard_index.
  unsigned shard_count = 1;
  unsigned shard_index = 0;
  /// Base of the per-point deterministic seed derivation.
  u64 base_seed = 0x1aec;
  /// Optional streaming sink; rows arrive in grid order.
  report::RowWriter* sink = nullptr;
  /// Optional per-point callback, invoked in grid order under the emission
  /// lock (keep it cheap).
  std::function<void(const PointResult&)> on_result;
};

/// Digest of a whole sweep (this shard's slice).
struct SweepSummary {
  std::vector<PointResult> results;  ///< grid order
  /// Batched counter aggregates over every point (cycles, instructions,
  /// loads, ... plus the merged pipeline/DL1/bus StatSets).
  StatSet totals;
  std::size_t points_run = 0;
  std::size_t self_check_failures = 0;
};

/// The paper's four-scheme comparison axis, baseline FIRST. Folding code
/// (fig8, ablations, CLI sweeps) relies on kNoEcc leading each workload
/// block to form overhead ratios — always sweep via this list.
[[nodiscard]] const std::vector<cpu::EccPolicy>& fig8_schemes();

/// String-keyed spelling of fig8_schemes(), for SweepGrid::schemes().
[[nodiscard]] const std::vector<std::string>& fig8_scheme_keys();

/// Column names of the per-point result row, in emission order.
[[nodiscard]] const std::vector<std::string>& row_headers();

/// Render one result as a row matching row_headers().
[[nodiscard]] std::vector<std::string> to_row(const PointResult& r);

/// Deterministic per-point seed, mixed from base_seed and the point's
/// *workload identity* (name + trace length) — NOT its grid index or the
/// thread that happens to run it. Points that differ only in ECC policy,
/// hazard rule or geometry variant therefore replay the identical trace /
/// fault sequence, which keeps scheme-vs-scheme ratios (Fig. 8) fair.
[[nodiscard]] u64 point_seed(u64 base_seed, const SweepPoint& point);

/// The fault-storm seed a program-mode point's injector runs with:
/// point_seed mixed with the replicate index (and only here), so a cell's
/// trials share one trace but draw independent storms. Exposed so the
/// campaign pruner can pre-draw a trial's storm without simulating it.
[[nodiscard]] u64 fault_seed(u64 base_seed, const SweepPoint& point);

/// Run `point` fault-free (cfg.faults cleared, replicate pinned to 0 — the
/// golden trace every trial in the cell shares), with `recorder` observing
/// the array cfg.inject_target names. Program mode only. `snapshots`, when
/// non-null, receives full-state checkpoints at its configured consultation
/// cadence (see core::run_program_keep_system).
[[nodiscard]] PointResult run_golden_point(
    const SweepPoint& point, u64 base_seed, mem::ResidencyRecorder* recorder,
    sim::SnapshotStore* snapshots = nullptr);

/// Run `points` under `opts`. Throws std::out_of_range for unknown
/// workload names and std::invalid_argument for bad shard options.
[[nodiscard]] SweepSummary run_sweep(const std::vector<SweepPoint>& points,
                                     const SweepOptions& opts = {});

/// Convenience: expand the grid and run it.
[[nodiscard]] inline SweepSummary run_sweep(const SweepGrid& grid,
                                            const SweepOptions& opts = {}) {
  return run_sweep(grid.points(), opts);
}

}  // namespace laec::runner
