// Multi-process sweep sharding: one worker process per shard.
//
// run_sweep() already scales across threads inside one process;
// run_sweep_procs() is the next axis up, the ROADMAP's "spawn one process
// per shard, merge row files" driver. The parent forks opts.procs workers;
// worker j runs the existing --shard mechanism over the slice
//
//     index % (N * procs) == I + j * N
//
// where (I, N) is the parent's own shard assignment — so --procs composes
// with --shard, and the union of every worker's slice is exactly the
// parent's slice. Each worker streams its rows to a private shard file
// (CSV or JSONL, the same RowWriter formats the in-process path uses) plus
// a tiny meta digest; the parent waits for all of them, merges the row
// files deterministically and sums the digests.
//
// Determinism: the g-th row of the parent's slice (grid order) has index
// I + g*N, which lands in worker (g mod procs) — so a round-robin merge
// over the shard files in worker order reconstructs grid order exactly,
// and the merged stream is byte-identical to a --procs=1 run of the same
// slice. The per-point RNG seeds derive from workload identity, never from
// shard layout, so the rows themselves are identical too.
//
// Process isolation is the point: workers share nothing after the fork, so
// sweeps scale past the allocator/cache contention a single address space
// hits, and one crashing point cannot take down the whole experiment (the
// parent reports the dead worker and still merges the survivors).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "runner/sweep_runner.hpp"

namespace laec::runner {

// --- generic fork-and-merge engine -----------------------------------------
// The process-level machinery is identical for every row-producing driver
// (the sweep runner here, the reliability campaign in src/reliability):
// pre-create one row file per worker so the merge can always open them,
// fork the workers (sequential fallback without fork), wait, sum the
// workers' three-counter meta digests, round-robin-merge the row files
// byte-identically and clean the scratch files up. Only the worker body
// differs, so it is a callback.

struct ForkMergeOptions {
  unsigned procs = 1;
  /// Path prefix for the per-worker row/meta files. Empty picks a unique
  /// prefix under the system temp directory.
  std::string scratch_prefix;
  /// CSV: every worker writes the same header; emit exactly one.
  bool csv_header = true;
  /// When nonempty AND the global tracer is armed, each forked worker
  /// resets its inherited flight recorder, records its slice, and writes
  /// `<prefix>.shard<j>.events` (JSON-lines, pid = j+1); after the row
  /// merge the parent stitches the shard files plus its own events
  /// (pid 0) into one Chrome trace document at this path. Purely
  /// observational — rows and merge order are untouched.
  std::string trace_path;
};

struct ForkMergeSummary {
  /// Sum of the workers' meta digests ("a b c" per file); what each slot
  /// means is the caller's contract with its worker.
  u64 meta[3] = {0, 0, 0};
  /// Workers that died (signal), exited >= 2, left no readable meta, or
  /// whose shard row file disagrees with the row count their meta claims.
  unsigned failed_workers = 0;
  /// One human-readable line per worker failure ("worker 2: killed by
  /// signal 11 (Segmentation fault)", "worker 0: shard file holds 3 rows
  /// but its meta digest claims 7"). A failed worker's completed rows are
  /// still merged, so callers MUST surface these and fail loudly — the
  /// merged stream is incomplete, never a silently partial result.
  std::vector<std::string> diagnostics;
};

/// Worker body, run in the CHILD process (or sequentially where fork is
/// unavailable): write rows to `rows_path`, the "a b c" digest to
/// `meta_path`, return 0/1 (business outcome) or >= 2 (worker failure).
/// Digest slot `a` MUST be the worker's row count — the merge cross-checks
/// it against the shard file so truncated row files fail loudly.
using ProcWorkerFn = std::function<int(
    unsigned j, const std::string& rows_path, const std::string& meta_path)>;

ForkMergeSummary fork_workers_and_merge(const ForkMergeOptions& opts,
                                        const ProcWorkerFn& worker,
                                        std::ostream& rows_out);

/// The slice worker j of `procs` runs: the parent's (index, count) shard
/// subdivided P ways — index + j*count of count*procs — with an auto
/// thread budget (`threads` == 0) split across the workers so --procs=N
/// saturates the machine once, not N times over. One definition keeps the
/// sweep and campaign drivers' merge orderings locked together: the g-th
/// row of the parent's slice lands in worker g mod procs, which is
/// exactly what the round-robin merge assumes.
struct WorkerShard {
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  unsigned threads = 0;
};
[[nodiscard]] WorkerShard proc_worker_shard(unsigned parent_index,
                                            unsigned parent_count,
                                            unsigned threads, unsigned procs,
                                            unsigned j);

struct ProcOptions {
  /// Worker processes. 1 runs the sweep in-process (no fork) — byte-for-
  /// byte the classic path.
  unsigned procs = 1;
  /// Per-worker options: threads, base_seed, and the parent's own
  /// shard_index/shard_count (further subdivided across the workers).
  /// `sink` and `on_result` must be null — rows flow through shard files.
  SweepOptions worker;
  /// Row format of the shard files and the merged stream: "csv" or
  /// "jsonl"/"json".
  std::string format = "csv";
  /// Path prefix for the shard row/meta files. Empty picks a unique prefix
  /// under the system temp directory. Files are removed after the merge.
  std::string scratch_prefix;
  /// Merged Chrome trace output path (see ForkMergeOptions::trace_path).
  std::string trace_path;
};

struct ProcSummary {
  std::size_t points_run = 0;
  u64 cycles = 0;  ///< summed simulated cycles across every point
  std::size_t self_check_failures = 0;
  /// Workers that died (signal) or exited with an internal error. Their
  /// rows are merged as far as they got; the caller should treat the sweep
  /// as failed.
  unsigned failed_workers = 0;
  /// One human-readable line per failed worker (see ForkMergeSummary).
  std::vector<std::string> worker_diagnostics;
};

/// Run `points` across opts.procs forked worker processes and write the
/// merged row stream (header included for CSV) to `rows_out`. Throws
/// std::invalid_argument for bad options and std::runtime_error when a
/// scratch file cannot be created.
ProcSummary run_sweep_procs(const std::vector<SweepPoint>& points,
                            const ProcOptions& opts, std::ostream& rows_out);

/// Deterministic round-robin merge of per-shard row files (exposed for
/// tests). With `csv_header` true, the first line of every file is a
/// header; shard 0's is emitted once and the others are dropped. When
/// `rows_per_file` is non-null it receives the count of data rows each
/// file contributed (headers and dropped torn tails excluded).
void merge_shard_rows(const std::vector<std::string>& shard_paths,
                      bool csv_header, std::ostream& out,
                      std::vector<std::size_t>* rows_per_file = nullptr);

}  // namespace laec::runner
