// Generic set-associative cache array with per-word ECC side-arrays.
//
// One class backs all three simulated caches (L1I, DL1, L2). It stores real
// data words and real check bits (any registered ecc::Codec at 32-bit word
// granularity), runs the real codec on every word read, and applies injected
// faults to the stored arrays — so a flipped bit persists until the word is
// rewritten, exactly like a soft error in SRAM.
//
// Hot-path structure (the simulator spends most of its time here):
//  * the array stores 32-bit words directly, so a word read is one indexed
//    load — no per-access byte reassembly;
//  * controllers locate a line once via find_line() and then read/write
//    through the returned LineRef, instead of re-walking the set for every
//    contains()/read()/line_dirty() question about the same access;
//  * the per-read clean test is a devirtualized re-encode (a plain function
//    pointer snapshotted from the codec at construction) compared against
//    the stored check bits; only a mismatch — or an active fault storm —
//    takes the cold slow path that runs the full decoder, accounts ECC
//    events and scrubs;
//  * line fills encode through the codec's span API: one virtual call per
//    line, not one per word;
//  * statistics are plain struct members on the hot path, folded into the
//    named StatSet whenever stats() is read (the batch boundary).
//
// Timing is *not* modeled here: the pipeline decides in which stage the data
// read and the ECC check happen (that placement is the entire subject of the
// paper). This class only answers "hit?", moves bytes, and reports per-word
// check outcomes.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <memory>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "ecc/code.hpp"
#include "ecc/codec.hpp"
#include "ecc/injector.hpp"

namespace laec::mem {

class ResidencyRecorder;

enum class WritePolicy { kWriteBack, kWriteThrough };
enum class AllocPolicy { kWriteAllocate, kNoWriteAllocate };

/// How a protected array's controller handles errors the codec reports.
///  * kCorrectInPlace: trust the codec's in-line correction (SECDED and
///    stronger); only a detected-uncorrectable word forces a refetch.
///  * kInvalidateRefetch: treat any reported error as grounds to drop the
///    line and refetch the clean copy from the next level — the only option
///    for detect-only codes (parity), and the conservative arrangement the
///    LEON family uses even where correction would be possible. A dirty
///    line has no clean copy anywhere, so its corrections are always used
///    and its uncorrectable errors are data-loss events.
enum class RecoveryPolicy { kCorrectInPlace, kInvalidateRefetch };

[[nodiscard]] constexpr std::string_view to_string(RecoveryPolicy p) {
  return p == RecoveryPolicy::kCorrectInPlace ? "correct-in-place"
                                              : "invalidate-refetch";
}

/// The one recovery predicate every cache controller applies to a word
/// read: refetch on a detected-uncorrectable word always, and on a merely
/// corrected word when the policy distrusts in-place correction — unless
/// the line is dirty, in which case the correction is the only good copy.
[[nodiscard]] constexpr bool needs_refetch(ecc::CheckStatus status,
                                           RecoveryPolicy recovery,
                                           bool line_dirty) {
  if (status == ecc::CheckStatus::kDetectedUncorrectable) return true;
  return ecc::is_corrected(status) &&
         recovery == RecoveryPolicy::kInvalidateRefetch && !line_dirty;
}

struct CacheConfig {
  std::string name = "cache";
  u32 size_bytes = 16 * 1024;
  u32 line_bytes = 32;
  u32 ways = 4;
  WritePolicy write_policy = WritePolicy::kWriteBack;
  AllocPolicy alloc_policy = AllocPolicy::kWriteAllocate;
  /// Word codec; nullptr means unprotected. Construct by registry name
  /// (ecc::make_codec("secded-39-32")) or via the CodecKind enum shim.
  /// Must protect 32-bit words (the array's word granularity).
  std::shared_ptr<const ecc::Codec> codec;
  /// Write the corrected word back into the array after a correction
  /// (scrubbing); prevents a second strike from accumulating.
  bool scrub_on_correct = true;
  /// Error-recovery arrangement of the owning controller (carried here so
  /// every consumer of the array sees one coherent per-cache descriptor).
  RecoveryPolicy recovery = RecoveryPolicy::kCorrectInPlace;
  /// Instruction-cache arrangement: the array is never written after a
  /// fill and never holds dirty lines. write() and dirty fills throw.
  bool read_only = false;
  /// Validation knob: route EVERY word read through the generic decode
  /// (slow) path, skipping the devirtualized clean-word fast test. The
  /// fast-path equivalence suite runs reference points through this and
  /// asserts bit-identical stats/rows; production configs never set it.
  bool force_generic_path = false;
  /// Decode words through the codec's precomputed syndrome LUT when it has
  /// one (every built-in linear codec does). Off = the codec's matrix-math
  /// decode(), the reference implementation; the equivalence suite asserts
  /// the two produce bit-identical rows. Orthogonal to force_generic_path
  /// (which picks WHEN to decode, not HOW).
  bool use_lut_decode = true;

  [[nodiscard]] u32 num_sets() const {
    return size_bytes / (line_bytes * ways);
  }
};

/// Outcome of reading one protected word from the array.
struct WordRead {
  u32 value = 0;
  ecc::CheckStatus check = ecc::CheckStatus::kOk;
};

/// A line evicted by a fill.
struct Eviction {
  Addr line_addr = 0;
  bool dirty = false;
  std::vector<u8> data;  ///< line contents (corrected view)
};

class SetAssocCache {
 private:
  struct Way {
    bool valid = false;
    bool dirty = false;
    Addr tag_addr = 0;  ///< line base address
    u64 lru_stamp = 0;
    std::vector<u32> words;  ///< line data, one 32-bit word per entry
    std::vector<u16> check;  ///< per-32-bit-word check bits
  };

 public:
  /// Largest supported line size; bounds the stack scratch used by the
  /// bulk (span) decode on writebacks.
  static constexpr u32 kMaxLineBytes = 256;
  static constexpr u32 kMaxLineWords = kMaxLineBytes / 4;

  explicit SetAssocCache(const CacheConfig& cfg);

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

  /// Opaque handle to a resident line, returned by find_line(). Lets a
  /// controller resolve the set walk once per access and then ask
  /// dirty()/read()/write() questions without re-searching. Invalidated by
  /// the next fill() or invalidate() on this cache.
  class LineRef {
   public:
    LineRef() = default;
    explicit operator bool() const { return way_ != nullptr; }
    [[nodiscard]] bool dirty() const { return way_->dirty; }

   private:
    friend class SetAssocCache;
    explicit LineRef(Way* w) : way_(w) {}
    Way* way_ = nullptr;
  };

  /// Attach a fault injector (not owned). Pass nullptr to detach.
  void set_injector(ecc::FaultInjector* inj) {
    injector_ = inj;
    ever_injected_ = ever_injected_ || inj != nullptr;
  }

  /// Attach a residency recorder (not owned; golden runs only). Pass
  /// nullptr to detach. Off the hot path: every hook is null-gated.
  void set_recorder(ResidencyRecorder* rec) { recorder_ = rec; }

  // --- presence ------------------------------------------------------------
  /// Locate the resident line containing `a`; a null handle means miss.
  /// No LRU update, no fault injection, no stats.
  [[nodiscard]] LineRef find_line(Addr a) { return LineRef{find(a)}; }

  [[nodiscard]] bool contains(Addr a) const;
  [[nodiscard]] bool line_dirty(Addr a) const;

  // --- word access (address must be inside a resident line) ----------------
  /// Read `bytes` (1/2/4, naturally aligned) at `a` through a resident-line
  /// handle. Runs fault injection and the codec on the containing 32-bit
  /// word. Updates LRU.
  WordRead read(LineRef line, Addr a, unsigned bytes);

  /// Convenience form: find_line + read (single-shot callers and tests).
  WordRead read(Addr a, unsigned bytes) {
    LineRef line = find_line(a);
    return read(line, a, bytes);
  }

  /// Write `bytes` of `value` at `a` through a resident-line handle;
  /// recomputes the word's check bits. Marks the line dirty under
  /// write-back policy. Updates LRU.
  void write(LineRef line, Addr a, unsigned bytes, u32 value, bool mark_dirty);

  /// Convenience form: find_line + write.
  void write(Addr a, unsigned bytes, u32 value, bool mark_dirty) {
    LineRef line = find_line(a);
    write(line, a, bytes, value, mark_dirty);
  }

  // --- line management -------------------------------------------------------
  /// Install the line containing `a` with `line_bytes()` bytes of data.
  /// Returns the eviction (if a valid line was displaced).
  std::optional<Eviction> fill(Addr a, const u8* data, bool dirty);

  /// Invalidate the line containing `a` (no writeback). Used for parity
  /// recovery-by-refetch. Returns true when a line was present.
  bool invalidate(Addr a);

  /// Invalidate through a handle (the controller already resolved the
  /// line). The handle is dead afterwards.
  void invalidate(LineRef line);

  /// Read a whole resident line (corrected view; no LRU update, no
  /// injection — used for writebacks and tests).
  std::vector<u8> peek_line(Addr a) const;

  /// Flush every dirty line through `sink(line_addr, data)`; leaves the
  /// cache clean. Used at end-of-run to make memory architecturally final.
  /// Like hardware, the writeback read runs the codec: lines leave in
  /// their corrected view even when scrubbing is off.
  template <typename Sink>
  void flush_dirty(Sink&& sink) {
    for (u32 set = 0; set < cfg_.num_sets(); ++set) {
      for (u32 w = 0; w < cfg_.ways; ++w) {
        Way& way = ways_[set * cfg_.ways + w];
        if (way.valid && way.dirty) {
          sink(way.tag_addr, corrected_line_copy(way).data());
          way.dirty = false;
        }
      }
    }
  }

  /// Snapshot support: serialize/restore the array's full deterministic
  /// state (ways, LRU clock, folded stat counters). Codec wiring, injector
  /// and recorder attachments are NOT covered — the restore target must be
  /// constructed from the same CacheConfig, and attachments are re-made by
  /// the caller afterwards. Throws service::WireError on geometry mismatch.
  void save_state(service::ByteWriter& w) const;
  void restore_state(service::ByteReader& r);

  /// Named counters of this array. Reading the set is the batch boundary:
  /// the plain hot-path counters are folded into it here.
  [[nodiscard]] StatSet& stats() {
    flush_counters();
    return stats_;
  }
  [[nodiscard]] const StatSet& stats() const {
    flush_counters();
    return stats_;
  }

  [[nodiscard]] u32 line_bytes() const { return cfg_.line_bytes; }
  [[nodiscard]] Addr line_base(Addr a) const {
    return a & ~static_cast<Addr>(cfg_.line_bytes - 1);
  }

 private:
  /// Hot-path event counts: plain members (one increment, no indirection),
  /// folded into stats_ by flush_counters() at batch boundaries.
  struct Counters {
    u64 reads = 0;
    u64 writes = 0;
    u64 fills = 0;
    u64 dirty_evictions = 0;
    u64 corrected = 0;
    u64 corrected_adjacent = 0;
    u64 detected_uncorrectable = 0;
    u64 rmw_laundered = 0;
  };

  [[nodiscard]] u32 set_index(Addr a) const;
  [[nodiscard]] Way* find(Addr a);
  [[nodiscard]] const Way* find(Addr a) const;
  /// Is a fault storm live right now? (Attached AND has flips to deliver.)
  [[nodiscard]] bool inject_active() const {
    return injector_ != nullptr && injector_->enabled();
  }
  void recompute_check(Way& way, u32 word_idx);
  /// Global word index used to key fault injection (unique per line-word).
  [[nodiscard]] u64 word_key(const Way& way, u32 word_idx) const;
  /// Cold slow path: apply injector flips (when active), then run the full
  /// decoder on the stored word — ECC event accounting, scrubbing, status
  /// reporting. Everything read() does beyond the clean-word test.
  void inject_and_check(Way& way, u32 word_idx, WordRead& out);
  /// Decode + account + scrub, without the injection step (standing faults
  /// hit by the fast test after a storm was detached).
  void decode_and_account(Way& way, u32 word_idx, WordRead& out);
  /// One stored word through the selected decode implementation: the
  /// codec's syndrome LUT when enabled and available, its matrix-math
  /// decode() otherwise. The two are bit-identical by contract.
  [[nodiscard]] ecc::LutDecoded decode_word(u32 data, u16 check) const {
    if (lut_ != nullptr) return lut_->decode(data, check);
    const auto r = codec_->decode(data, check);
    return {r.status, r.data, r.check};
  }
  /// The line as the codec delivers it: every correctable word repaired
  /// (uncorrectable words stay as stored). The writeback/eviction view —
  /// hardware re-decodes on the writeback read, so corrupted raw bytes
  /// never escape just because scrubbing is off. No stats, no injection.
  [[nodiscard]] std::vector<u8> corrected_line_copy(const Way& way) const;
  /// Retire every word of a valid line with the recorder (eviction or
  /// invalidation). No-op when no recorder is attached.
  void retire_line(const Way& way);
  /// Fold the plain counters' deltas into the named StatSet.
  void flush_counters() const;

  CacheConfig cfg_;
  const ecc::Codec* codec_ = nullptr;  ///< raw view of cfg_.codec (hot path)
  /// Devirtualized encoder snapshot (codec_->encode_thunk()); the per-read
  /// clean test calls it through a plain function pointer.
  ecc::Codec::EncodeFn encode_fn_ = nullptr;
  /// Syndrome-LUT snapshot (codec_->decode_lut()); nullptr when disabled
  /// via CacheConfig::use_lut_decode or the codec has no table.
  const ecc::DecodeLut* lut_ = nullptr;
  std::vector<Way> ways_;
  u64 lru_clock_ = 1;
  ecc::FaultInjector* injector_ = nullptr;
  ResidencyRecorder* recorder_ = nullptr;  ///< golden-run observer; usually null
  /// An injector has been attached at some point, so stored words may hold
  /// unscrubbed faults. Sticky (survives detach): gates the re-decode work
  /// on writeback/RMW paths so fault-free runs skip it entirely.
  bool ever_injected_ = false;

  mutable Counters live_;     ///< bumped on the hot path
  mutable Counters flushed_;  ///< portion already folded into stats_
  mutable StatSet stats_;

  // Registered StatSet slots the counters fold into.
  u64* n_read_ = nullptr;
  u64* n_write_ = nullptr;
  u64* n_fill_ = nullptr;
  u64* n_evict_dirty_ = nullptr;
  u64* n_corrected_ = nullptr;
  u64* n_corrected_adjacent_ = nullptr;
  u64* n_detected_uncorrectable_ = nullptr;
  /// Sub-word RMW merged over a word with a standing uncorrectable error,
  /// re-encoding it under valid check bits (also counted as detected-
  /// uncorrectable — this splits out the silent-laundering subset).
  u64* n_rmw_laundered_ = nullptr;
};

}  // namespace laec::mem
