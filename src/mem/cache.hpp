// Generic set-associative cache array with per-word ECC side-arrays.
//
// One class backs all three simulated caches (L1I, DL1, L2). It stores real
// data bytes and real check bits (any registered ecc::Codec at 32-bit word
// granularity), runs the real codec on every word read, and applies injected
// faults to the stored arrays — so a flipped bit persists until the word is
// rewritten, exactly like a soft error in SRAM.
//
// Timing is *not* modeled here: the pipeline decides in which stage the data
// read and the ECC check happen (that placement is the entire subject of the
// paper). This class only answers "hit?", moves bytes, and reports per-word
// check outcomes.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <memory>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "ecc/code.hpp"
#include "ecc/codec.hpp"
#include "ecc/injector.hpp"

namespace laec::mem {

enum class WritePolicy { kWriteBack, kWriteThrough };
enum class AllocPolicy { kWriteAllocate, kNoWriteAllocate };

/// How a protected array's controller handles errors the codec reports.
///  * kCorrectInPlace: trust the codec's in-line correction (SECDED and
///    stronger); only a detected-uncorrectable word forces a refetch.
///  * kInvalidateRefetch: treat any reported error as grounds to drop the
///    line and refetch the clean copy from the next level — the only option
///    for detect-only codes (parity), and the conservative arrangement the
///    LEON family uses even where correction would be possible. A dirty
///    line has no clean copy anywhere, so its corrections are always used
///    and its uncorrectable errors are data-loss events.
enum class RecoveryPolicy { kCorrectInPlace, kInvalidateRefetch };

[[nodiscard]] constexpr std::string_view to_string(RecoveryPolicy p) {
  return p == RecoveryPolicy::kCorrectInPlace ? "correct-in-place"
                                              : "invalidate-refetch";
}

/// The one recovery predicate every cache controller applies to a word
/// read: refetch on a detected-uncorrectable word always, and on a merely
/// corrected word when the policy distrusts in-place correction — unless
/// the line is dirty, in which case the correction is the only good copy.
[[nodiscard]] constexpr bool needs_refetch(ecc::CheckStatus status,
                                           RecoveryPolicy recovery,
                                           bool line_dirty) {
  if (status == ecc::CheckStatus::kDetectedUncorrectable) return true;
  return ecc::is_corrected(status) &&
         recovery == RecoveryPolicy::kInvalidateRefetch && !line_dirty;
}

struct CacheConfig {
  std::string name = "cache";
  u32 size_bytes = 16 * 1024;
  u32 line_bytes = 32;
  u32 ways = 4;
  WritePolicy write_policy = WritePolicy::kWriteBack;
  AllocPolicy alloc_policy = AllocPolicy::kWriteAllocate;
  /// Word codec; nullptr means unprotected. Construct by registry name
  /// (ecc::make_codec("secded-39-32")) or via the CodecKind enum shim.
  /// Must protect 32-bit words (the array's word granularity).
  std::shared_ptr<const ecc::Codec> codec;
  /// Write the corrected word back into the array after a correction
  /// (scrubbing); prevents a second strike from accumulating.
  bool scrub_on_correct = true;
  /// Error-recovery arrangement of the owning controller (carried here so
  /// every consumer of the array sees one coherent per-cache descriptor).
  RecoveryPolicy recovery = RecoveryPolicy::kCorrectInPlace;
  /// Instruction-cache arrangement: the array is never written after a
  /// fill and never holds dirty lines. write() and dirty fills throw.
  bool read_only = false;

  [[nodiscard]] u32 num_sets() const {
    return size_bytes / (line_bytes * ways);
  }
};

/// Outcome of reading one protected word from the array.
struct WordRead {
  u32 value = 0;
  ecc::CheckStatus check = ecc::CheckStatus::kOk;
};

/// A line evicted by a fill.
struct Eviction {
  Addr line_addr = 0;
  bool dirty = false;
  std::vector<u8> data;  ///< line contents (corrected view)
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

  /// Attach a fault injector (not owned). Pass nullptr to detach.
  void set_injector(ecc::FaultInjector* inj) {
    injector_ = inj;
    ever_injected_ = ever_injected_ || inj != nullptr;
  }

  // --- presence ------------------------------------------------------------
  [[nodiscard]] bool contains(Addr a) const;
  [[nodiscard]] bool line_dirty(Addr a) const;

  // --- word access (address must be inside a resident line) ----------------
  /// Read `bytes` (1/2/4, naturally aligned) at `a`. Runs fault injection
  /// and the codec on the containing 32-bit word. Updates LRU.
  WordRead read(Addr a, unsigned bytes);

  /// Write `bytes` of `value` at `a`; recomputes the word's check bits.
  /// Marks the line dirty under write-back policy. Updates LRU.
  void write(Addr a, unsigned bytes, u32 value, bool mark_dirty);

  // --- line management -------------------------------------------------------
  /// Install the line containing `a` with `line_bytes()` bytes of data.
  /// Returns the eviction (if a valid line was displaced).
  std::optional<Eviction> fill(Addr a, const u8* data, bool dirty);

  /// Invalidate the line containing `a` (no writeback). Used for parity
  /// recovery-by-refetch. Returns true when a line was present.
  bool invalidate(Addr a);

  /// Read a whole resident line (corrected view; no LRU update, no
  /// injection — used for writebacks and tests).
  std::vector<u8> peek_line(Addr a) const;

  /// Flush every dirty line through `sink(line_addr, data)`; leaves the
  /// cache clean. Used at end-of-run to make memory architecturally final.
  /// Like hardware, the writeback read runs the codec: lines leave in
  /// their corrected view even when scrubbing is off.
  template <typename Sink>
  void flush_dirty(Sink&& sink) {
    for (u32 set = 0; set < cfg_.num_sets(); ++set) {
      for (u32 w = 0; w < cfg_.ways; ++w) {
        Way& way = ways_[set * cfg_.ways + w];
        if (way.valid && way.dirty) {
          sink(way.tag_addr, corrected_line_copy(way).data());
          way.dirty = false;
        }
      }
    }
  }

  [[nodiscard]] StatSet& stats() { return stats_; }
  [[nodiscard]] const StatSet& stats() const { return stats_; }

  [[nodiscard]] u32 line_bytes() const { return cfg_.line_bytes; }
  [[nodiscard]] Addr line_base(Addr a) const {
    return a & ~static_cast<Addr>(cfg_.line_bytes - 1);
  }

 private:
  struct Way {
    bool valid = false;
    bool dirty = false;
    Addr tag_addr = 0;  ///< line base address
    u64 lru_stamp = 0;
    std::vector<u8> data;
    std::vector<u16> check;  ///< per-32-bit-word check bits
  };

  [[nodiscard]] u32 set_index(Addr a) const;
  [[nodiscard]] Way* find(Addr a);
  [[nodiscard]] const Way* find(Addr a) const;
  void recompute_check(Way& way, u32 word_idx);
  /// Global word index used to key fault injection (unique per line-word).
  [[nodiscard]] u64 word_key(const Way& way, u32 word_idx) const;
  void inject_and_check(Way& way, u32 word_idx, WordRead& out);
  /// The line as the codec delivers it: every correctable word repaired
  /// (uncorrectable words stay as stored). The writeback/eviction view —
  /// hardware re-decodes on the writeback read, so corrupted raw bytes
  /// never escape just because scrubbing is off. No stats, no injection.
  [[nodiscard]] std::vector<u8> corrected_line_copy(const Way& way) const;

  CacheConfig cfg_;
  const ecc::Codec* codec_ = nullptr;  ///< raw view of cfg_.codec (hot path)
  std::vector<Way> ways_;
  u64 lru_clock_ = 1;
  ecc::FaultInjector* injector_ = nullptr;
  /// An injector has been attached at some point, so stored words may hold
  /// unscrubbed faults. Sticky (survives detach): gates the re-decode work
  /// on writeback/RMW paths so fault-free runs skip it entirely.
  bool ever_injected_ = false;
  StatSet stats_;

  // Hot-path counters.
  u64* n_read_ = nullptr;
  u64* n_write_ = nullptr;
  u64* n_fill_ = nullptr;
  u64* n_evict_dirty_ = nullptr;
  u64* n_corrected_ = nullptr;
  u64* n_corrected_adjacent_ = nullptr;
  u64* n_detected_uncorrectable_ = nullptr;
  /// Sub-word RMW merged over a word with a standing uncorrectable error,
  /// re-encoding it under valid check bits (also counted as detected-
  /// uncorrectable — this splits out the silent-laundering subset).
  u64* n_rmw_laundered_ = nullptr;
};

}  // namespace laec::mem
