#include "mem/cache.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/bitops.hpp"
#include "mem/residency.hpp"
#include "service/wire.hpp"

// The correction/recovery/scrub machinery is deliberately out of the
// instruction stream of the clean-hit fast path: annotate it cold so the
// compiler keeps read()'s happy path branch-light and fall-through.
#if defined(__GNUC__) || defined(__clang__)
#define LAEC_COLD __attribute__((cold, noinline))
#else
#define LAEC_COLD
#endif

namespace laec::mem {

SetAssocCache::SetAssocCache(const CacheConfig& cfg)
    : cfg_(cfg), codec_(cfg.codec.get()) {
  assert(is_pow2(cfg_.size_bytes) && is_pow2(cfg_.line_bytes));
  assert(cfg_.size_bytes % (cfg_.line_bytes * cfg_.ways) == 0);
  assert(cfg_.line_bytes % 4 == 0);
  // Hard runtime bound (line_bytes is user-settable through SimConfig):
  // the bulk-decode scratch on the writeback path is a fixed stack array.
  if (cfg_.line_bytes > kMaxLineBytes) {
    throw std::invalid_argument(
        "cache \"" + cfg_.name + "\": line_bytes " +
        std::to_string(cfg_.line_bytes) + " exceeds the supported maximum " +
        std::to_string(kMaxLineBytes));
  }
  assert((codec_ == nullptr || codec_->data_bits() == 32) &&
         "cache arrays protect 32-bit words");
  assert((codec_ == nullptr || codec_->check_bits() <= 16) &&
         "check side-array stores at most 16 bits per word");
  // A codec with no check bits is the same as no codec; drop it so the hot
  // path has a single "unprotected" test.
  if (codec_ != nullptr && codec_->check_bits() == 0) codec_ = nullptr;
  if (codec_ != nullptr) {
    encode_fn_ = codec_->encode_thunk();
    if (cfg_.use_lut_decode) lut_ = codec_->decode_lut();
  }
  ways_.resize(static_cast<std::size_t>(cfg_.num_sets()) * cfg_.ways);
  for (Way& w : ways_) {
    w.words.assign(cfg_.line_bytes / 4, 0);
    w.check.assign(cfg_.line_bytes / 4, 0);
  }
  n_read_ = &stats_.counter("reads");
  n_write_ = &stats_.counter("writes");
  n_fill_ = &stats_.counter("fills");
  n_evict_dirty_ = &stats_.counter("dirty_evictions");
  n_corrected_ = &stats_.counter("ecc_corrected");
  n_corrected_adjacent_ = &stats_.counter("ecc_corrected_adjacent");
  n_detected_uncorrectable_ = &stats_.counter("ecc_detected_uncorrectable");
  n_rmw_laundered_ = &stats_.counter("ecc_rmw_laundered");
}

void SetAssocCache::flush_counters() const {
  *n_read_ += live_.reads - flushed_.reads;
  *n_write_ += live_.writes - flushed_.writes;
  *n_fill_ += live_.fills - flushed_.fills;
  *n_evict_dirty_ += live_.dirty_evictions - flushed_.dirty_evictions;
  *n_corrected_ += live_.corrected - flushed_.corrected;
  *n_corrected_adjacent_ +=
      live_.corrected_adjacent - flushed_.corrected_adjacent;
  *n_detected_uncorrectable_ +=
      live_.detected_uncorrectable - flushed_.detected_uncorrectable;
  *n_rmw_laundered_ += live_.rmw_laundered - flushed_.rmw_laundered;
  flushed_ = live_;
}

u32 SetAssocCache::set_index(Addr a) const {
  return (a / cfg_.line_bytes) & (cfg_.num_sets() - 1);
}

SetAssocCache::Way* SetAssocCache::find(Addr a) {
  const Addr base = line_base(a);
  const u32 set = set_index(a);
  Way* ways = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (ways[w].valid && ways[w].tag_addr == base) return &ways[w];
  }
  return nullptr;
}

const SetAssocCache::Way* SetAssocCache::find(Addr a) const {
  return const_cast<SetAssocCache*>(this)->find(a);
}

bool SetAssocCache::contains(Addr a) const { return find(a) != nullptr; }

bool SetAssocCache::line_dirty(Addr a) const {
  const Way* w = find(a);
  return w != nullptr && w->dirty;
}

u64 SetAssocCache::word_key(const Way& way, u32 word_idx) const {
  return (static_cast<u64>(way.tag_addr) / 4) + word_idx;
}

void SetAssocCache::recompute_check(Way& way, u32 word_idx) {
  way.check[word_idx] =
      codec_ == nullptr
          ? u16{0}
          : static_cast<u16>(encode_fn_(codec_, way.words[word_idx]));
}

LAEC_COLD void SetAssocCache::decode_and_account(Way& way, u32 word_idx,
                                                 WordRead& out) {
  const auto r = decode_word(way.words[word_idx], way.check[word_idx]);
  out.value = static_cast<u32>(r.data);
  out.check = r.status;
  if (ecc::is_corrected(r.status)) {
    ++live_.corrected;
    if (r.status == ecc::CheckStatus::kCorrectedAdjacent) {
      ++live_.corrected_adjacent;
    }
    if (cfg_.scrub_on_correct) {
      way.words[word_idx] = static_cast<u32>(r.data);
      way.check[word_idx] = static_cast<u16>(r.check);
    }
  } else if (r.status == ecc::CheckStatus::kDetectedUncorrectable) {
    ++live_.detected_uncorrectable;
  }
}

LAEC_COLD void SetAssocCache::inject_and_check(Way& way, u32 word_idx,
                                               WordRead& out) {
  if (injector_ != nullptr && injector_->enabled()) {
    // Codeword layout for injection: bits [0,32) data, [32, 32+r) check.
    const auto flips = injector_->flips_for_access(word_key(way, word_idx));
    if (!flips.empty()) {
      u32 stored = way.words[word_idx];
      u32 check = way.check[word_idx];
      for (unsigned b : flips) {
        if (b < 32) {
          stored = static_cast<u32>(flip_bit(stored, b));
        } else {
          check = static_cast<u32>(flip_bit(check, b - 32));
        }
      }
      way.words[word_idx] = stored;
      way.check[word_idx] = static_cast<u16>(check);
    }
  }

  if (codec_ == nullptr) {
    out.value = way.words[word_idx];
    out.check = ecc::CheckStatus::kOk;
    return;
  }
  decode_and_account(way, word_idx, out);
}

WordRead SetAssocCache::read(LineRef line, Addr a, unsigned bytes) {
  assert(bytes == 1 || bytes == 2 || bytes == 4);
  assert((a & (bytes - 1)) == 0 && "misaligned access");
  Way* way = line.way_;
  assert(way != nullptr && "read() requires a resident line");
  ++live_.reads;
  way->lru_stamp = lru_clock_++;

  const u32 off = a & (cfg_.line_bytes - 1);
  const u32 word_idx = off / 4;
  if (recorder_ != nullptr) recorder_->on_read(word_key(*way, word_idx));
  WordRead word;
  if (!inject_active() && !cfg_.force_generic_path) [[likely]] {
    // Clean-hit fast path: re-encode the stored word through the
    // devirtualized encoder and compare against the stored check bits. A
    // zero syndrome delivers the word as stored; anything else (a standing
    // fault left by a detached storm) drops to the cold decode path.
    const u32 stored = way->words[word_idx];
    if (codec_ == nullptr ||
        encode_fn_(codec_, stored) == way->check[word_idx]) [[likely]] {
      word.value = stored;
    } else {
      decode_and_account(*way, word_idx, word);
    }
  } else {
    inject_and_check(*way, word_idx, word);
  }

  // Extract the addressed bytes from the (corrected) word.
  const u32 shift = (off & 3u) * 8;
  word.value = (word.value >> shift) & static_cast<u32>(low_mask(bytes * 8));
  return word;
}

void SetAssocCache::write(LineRef line, Addr a, unsigned bytes, u32 value,
                          bool mark_dirty) {
  if (cfg_.read_only) {
    throw std::logic_error("cache \"" + cfg_.name +
                           "\" is read-only: lines are refilled, never "
                           "written (invalidate-and-refetch is the only "
                           "recovery path)");
  }
  assert(bytes == 1 || bytes == 2 || bytes == 4);
  assert((a & (bytes - 1)) == 0 && "misaligned access");
  Way* way = line.way_;
  assert(way != nullptr && "write() requires a resident line");
  ++live_.writes;
  way->lru_stamp = lru_clock_++;

  const u32 off = a & (cfg_.line_bytes - 1);
  const u32 word_idx = off / 4;
  if (recorder_ != nullptr) recorder_->on_write(word_key(*way, word_idx));

  // Sub-word writes are read-modify-write on the protected word (the check
  // bits cover 32 bits, so hardware must merge before re-encoding). That
  // read runs the codec: with scrubbing off a standing correctable error
  // may sit in the array, and merging into the raw word would re-encode
  // the flip under fresh check bits — corruption laundered into a valid
  // codeword. Full-word writes overwrite everything, so only sub-word
  // merges pay for the decode — and only in runs that ever saw a fault
  // source (a clean run's stored words always re-encode to their stored
  // check bits).
  u32 word = way->words[word_idx];
  if (codec_ != nullptr && ever_injected_ && bytes < 4) {
    const auto r = decode_word(word, way->check[word_idx]);
    if (ecc::is_corrected(r.status)) {
      word = static_cast<u32>(r.data);
    } else if (r.status == ecc::CheckStatus::kDetectedUncorrectable) {
      // The store's bytes are architecturally new and the merge must
      // proceed, but the untouched bytes are known-bad and about to be
      // re-encoded under valid check bits — account the laundering so it
      // can never be mistaken for a clean word downstream.
      ++live_.detected_uncorrectable;
      ++live_.rmw_laundered;
    }
  }
  const u32 shift = (off & 3u) * 8;
  const u32 mask = static_cast<u32>(low_mask(bytes * 8)) << shift;
  word = (word & ~mask) | ((value << shift) & mask);
  way->words[word_idx] = word;
  recompute_check(*way, word_idx);
  if (mark_dirty && cfg_.write_policy == WritePolicy::kWriteBack) {
    way->dirty = true;
  }
}

std::optional<Eviction> SetAssocCache::fill(Addr a, const u8* data,
                                            bool dirty) {
  if (cfg_.read_only && dirty) {
    throw std::logic_error("cache \"" + cfg_.name +
                           "\" is read-only: it cannot hold dirty lines");
  }
  const Addr base = line_base(a);
  const u32 set = set_index(a);
  ++live_.fills;

  Way* victim = nullptr;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[static_cast<std::size_t>(set) * cfg_.ways + w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru_stamp < victim->lru_stamp) victim = &way;
  }

  std::optional<Eviction> ev;
  if (victim->valid && victim->dirty) {
    ev.emplace();
    ev->line_addr = victim->tag_addr;
    ev->dirty = true;
    ev->data = corrected_line_copy(*victim);
    ++live_.dirty_evictions;
  }
  if (victim->valid) retire_line(*victim);

  victim->valid = true;
  victim->dirty = dirty;
  victim->tag_addr = base;
  victim->lru_stamp = lru_clock_++;
  const u32 nwords = cfg_.line_bytes / 4;
  std::memcpy(victim->words.data(), data, cfg_.line_bytes);
  if (codec_ != nullptr) {
    // One virtual call per line, not one per word.
    codec_->encode_line(victim->words.data(), victim->check.data(), nwords);
  }
  if (recorder_ != nullptr) {
    for (u32 i = 0; i < nwords; ++i) recorder_->on_install(word_key(*victim, i));
  }
  return ev;
}

bool SetAssocCache::invalidate(Addr a) {
  Way* way = find(a);
  if (way == nullptr) return false;
  retire_line(*way);
  way->valid = false;
  way->dirty = false;
  return true;
}

void SetAssocCache::invalidate(LineRef line) {
  retire_line(*line.way_);
  line.way_->valid = false;
  line.way_->dirty = false;
}

void SetAssocCache::retire_line(const Way& way) {
  if (recorder_ == nullptr) return;
  const u32 nwords = cfg_.line_bytes / 4;
  for (u32 i = 0; i < nwords; ++i) recorder_->on_retire(word_key(way, i));
}

std::vector<u8> SetAssocCache::corrected_line_copy(const Way& way) const {
  std::vector<u8> out(cfg_.line_bytes);
  const u32 nwords = cfg_.line_bytes / 4;
  // Without a fault source the array only ever holds words it encoded
  // itself, so every decode would be a no-op — skip the whole pass (dirty
  // evictions are on the simulator's hot path).
  if (codec_ == nullptr || !ever_injected_) {
    std::memcpy(out.data(), way.words.data(), cfg_.line_bytes);
    return out;
  }
  u32 fixed[kMaxLineWords];
  if (lut_ != nullptr) {
    // The built-in codecs' decode_line IS the LUT span decoder; one call.
    codec_->decode_line(way.words.data(), way.check.data(), fixed, nwords);
  } else {
    // Matrix reference path: the base-class decode_line default, inlined so
    // a --no-lut run never routes through the table-backed override.
    for (u32 i = 0; i < nwords; ++i) {
      const auto r = codec_->decode(way.words[i], way.check[i]);
      fixed[i] = ecc::is_corrected(r.status) ? static_cast<u32>(r.data)
                                             : way.words[i];
    }
  }
  std::memcpy(out.data(), fixed, cfg_.line_bytes);
  return out;
}

std::vector<u8> SetAssocCache::peek_line(Addr a) const {
  const Way* way = find(a);
  assert(way != nullptr);
  return corrected_line_copy(*way);
}

void SetAssocCache::save_state(service::ByteWriter& w) const {
  // Fold the hot-path deltas first so the StatSet alone carries the counts;
  // a restored cache starts with zeroed live_/flushed_ deltas, which keeps
  // the delta-folding arithmetic exact after restore.
  flush_counters();
  w.put_u64(lru_clock_);
  w.put_u32(static_cast<u32>(ways_.size()));
  for (const Way& way : ways_) {
    w.put_u8(way.valid ? 1 : 0);
    w.put_u8(way.dirty ? 1 : 0);
    w.put_u32(way.tag_addr);
    w.put_u64(way.lru_stamp);
    w.put_u32_block(way.words.data(), way.words.size());
    w.put_u16_block(way.check.data(), way.check.size());
  }
  stats_.save_state(w);
}

void SetAssocCache::restore_state(service::ByteReader& r) {
  lru_clock_ = r.get_u64();
  const u32 n = r.get_u32();
  if (n != ways_.size()) {
    throw service::WireError("snapshot: cache \"" + cfg_.name +
                             "\" geometry mismatch");
  }
  const u32 nwords = cfg_.line_bytes / 4;
  for (Way& way : ways_) {
    way.valid = r.get_u8() != 0;
    way.dirty = r.get_u8() != 0;
    way.tag_addr = r.get_u32();
    way.lru_stamp = r.get_u64();
    r.get_u32_block(way.words.data(), nwords);
    r.get_u16_block(way.check.data(), nwords);
  }
  live_ = Counters{};
  flushed_ = Counters{};
  stats_.restore_state(r);
}

}  // namespace laec::mem
