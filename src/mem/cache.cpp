#include "mem/cache.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/bitops.hpp"

namespace laec::mem {

SetAssocCache::SetAssocCache(const CacheConfig& cfg)
    : cfg_(cfg), codec_(cfg.codec.get()) {
  assert(is_pow2(cfg_.size_bytes) && is_pow2(cfg_.line_bytes));
  assert(cfg_.size_bytes % (cfg_.line_bytes * cfg_.ways) == 0);
  assert(cfg_.line_bytes % 4 == 0);
  assert((codec_ == nullptr || codec_->data_bits() == 32) &&
         "cache arrays protect 32-bit words");
  assert((codec_ == nullptr || codec_->check_bits() <= 16) &&
         "check side-array stores at most 16 bits per word");
  // A codec with no check bits is the same as no codec; drop it so the hot
  // path has a single "unprotected" test.
  if (codec_ != nullptr && codec_->check_bits() == 0) codec_ = nullptr;
  ways_.resize(static_cast<std::size_t>(cfg_.num_sets()) * cfg_.ways);
  for (Way& w : ways_) {
    w.data.assign(cfg_.line_bytes, 0);
    w.check.assign(cfg_.line_bytes / 4, 0);
  }
  n_read_ = &stats_.counter("reads");
  n_write_ = &stats_.counter("writes");
  n_fill_ = &stats_.counter("fills");
  n_evict_dirty_ = &stats_.counter("dirty_evictions");
  n_corrected_ = &stats_.counter("ecc_corrected");
  n_corrected_adjacent_ = &stats_.counter("ecc_corrected_adjacent");
  n_detected_uncorrectable_ = &stats_.counter("ecc_detected_uncorrectable");
  n_rmw_laundered_ = &stats_.counter("ecc_rmw_laundered");
}

u32 SetAssocCache::set_index(Addr a) const {
  return (a / cfg_.line_bytes) & (cfg_.num_sets() - 1);
}

SetAssocCache::Way* SetAssocCache::find(Addr a) {
  const Addr base = line_base(a);
  const u32 set = set_index(a);
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[static_cast<std::size_t>(set) * cfg_.ways + w];
    if (way.valid && way.tag_addr == base) return &way;
  }
  return nullptr;
}

const SetAssocCache::Way* SetAssocCache::find(Addr a) const {
  return const_cast<SetAssocCache*>(this)->find(a);
}

bool SetAssocCache::contains(Addr a) const { return find(a) != nullptr; }

bool SetAssocCache::line_dirty(Addr a) const {
  const Way* w = find(a);
  return w != nullptr && w->dirty;
}

u64 SetAssocCache::word_key(const Way& way, u32 word_idx) const {
  return (static_cast<u64>(way.tag_addr) / 4) + word_idx;
}

void SetAssocCache::recompute_check(Way& way, u32 word_idx) {
  if (codec_ == nullptr) {
    way.check[word_idx] = 0;
    return;
  }
  u32 v;
  std::memcpy(&v, way.data.data() + word_idx * 4, 4);
  way.check[word_idx] = static_cast<u16>(codec_->encode(v));
}

void SetAssocCache::inject_and_check(Way& way, u32 word_idx, WordRead& out) {
  u32 stored;
  std::memcpy(&stored, way.data.data() + word_idx * 4, 4);

  if (injector_ != nullptr && injector_->enabled()) {
    // Codeword layout for injection: bits [0,32) data, [32, 32+r) check.
    const auto flips = injector_->flips_for_access(word_key(way, word_idx));
    u32 check = way.check[word_idx];
    for (unsigned b : flips) {
      if (b < 32) {
        stored = static_cast<u32>(flip_bit(stored, b));
      } else {
        check = static_cast<u32>(flip_bit(check, b - 32));
      }
    }
    if (!flips.empty()) {
      std::memcpy(way.data.data() + word_idx * 4, &stored, 4);
      way.check[word_idx] = static_cast<u16>(check);
    }
  }

  if (codec_ == nullptr) {
    out.value = stored;
    out.check = ecc::CheckStatus::kOk;
    return;
  }
  const auto r = codec_->decode(stored, way.check[word_idx]);
  out.value = static_cast<u32>(r.data);
  out.check = r.status;
  if (ecc::is_corrected(r.status)) {
    ++*n_corrected_;
    if (r.status == ecc::CheckStatus::kCorrectedAdjacent) {
      ++*n_corrected_adjacent_;
    }
    if (cfg_.scrub_on_correct) {
      const u32 fixed = static_cast<u32>(r.data);
      std::memcpy(way.data.data() + word_idx * 4, &fixed, 4);
      way.check[word_idx] = static_cast<u16>(r.check);
    }
  } else if (r.status == ecc::CheckStatus::kDetectedUncorrectable) {
    ++*n_detected_uncorrectable_;
  }
}

WordRead SetAssocCache::read(Addr a, unsigned bytes) {
  assert(bytes == 1 || bytes == 2 || bytes == 4);
  assert((a & (bytes - 1)) == 0 && "misaligned access");
  Way* way = find(a);
  assert(way != nullptr && "read() requires a resident line");
  ++*n_read_;
  way->lru_stamp = lru_clock_++;

  const u32 off = a & (cfg_.line_bytes - 1);
  const u32 word_idx = off / 4;
  WordRead word;
  inject_and_check(*way, word_idx, word);

  // Extract the addressed bytes from the (corrected) word.
  const u32 shift = (off & 3u) * 8;
  word.value = (word.value >> shift) & static_cast<u32>(low_mask(bytes * 8));
  return word;
}

void SetAssocCache::write(Addr a, unsigned bytes, u32 value, bool mark_dirty) {
  if (cfg_.read_only) {
    throw std::logic_error("cache \"" + cfg_.name +
                           "\" is read-only: lines are refilled, never "
                           "written (invalidate-and-refetch is the only "
                           "recovery path)");
  }
  assert(bytes == 1 || bytes == 2 || bytes == 4);
  assert((a & (bytes - 1)) == 0 && "misaligned access");
  Way* way = find(a);
  assert(way != nullptr && "write() requires a resident line");
  ++*n_write_;
  way->lru_stamp = lru_clock_++;

  const u32 off = a & (cfg_.line_bytes - 1);
  const u32 word_idx = off / 4;

  // Sub-word writes are read-modify-write on the protected word (the check
  // bits cover 32 bits, so hardware must merge before re-encoding). That
  // read runs the codec: with scrubbing off a standing correctable error
  // may sit in the array, and merging into the raw word would re-encode
  // the flip under fresh check bits — corruption laundered into a valid
  // codeword. Full-word writes overwrite everything, so only sub-word
  // merges pay for the decode.
  u32 word;
  std::memcpy(&word, way->data.data() + word_idx * 4, 4);
  if (codec_ != nullptr && ever_injected_ && bytes < 4) {
    const auto r = codec_->decode(word, way->check[word_idx]);
    if (ecc::is_corrected(r.status)) {
      word = static_cast<u32>(r.data);
    } else if (r.status == ecc::CheckStatus::kDetectedUncorrectable) {
      // The store's bytes are architecturally new and the merge must
      // proceed, but the untouched bytes are known-bad and about to be
      // re-encoded under valid check bits — account the laundering so it
      // can never be mistaken for a clean word downstream.
      ++*n_detected_uncorrectable_;
      ++*n_rmw_laundered_;
    }
  }
  const u32 shift = (off & 3u) * 8;
  const u32 mask = static_cast<u32>(low_mask(bytes * 8)) << shift;
  word = (word & ~mask) | ((value << shift) & mask);
  std::memcpy(way->data.data() + word_idx * 4, &word, 4);
  recompute_check(*way, word_idx);
  if (mark_dirty && cfg_.write_policy == WritePolicy::kWriteBack) {
    way->dirty = true;
  }
}

std::optional<Eviction> SetAssocCache::fill(Addr a, const u8* data,
                                            bool dirty) {
  if (cfg_.read_only && dirty) {
    throw std::logic_error("cache \"" + cfg_.name +
                           "\" is read-only: it cannot hold dirty lines");
  }
  const Addr base = line_base(a);
  const u32 set = set_index(a);
  ++*n_fill_;

  Way* victim = nullptr;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[static_cast<std::size_t>(set) * cfg_.ways + w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru_stamp < victim->lru_stamp) victim = &way;
  }

  std::optional<Eviction> ev;
  if (victim->valid && victim->dirty) {
    ev.emplace();
    ev->line_addr = victim->tag_addr;
    ev->dirty = true;
    ev->data = corrected_line_copy(*victim);
    ++*n_evict_dirty_;
  }

  victim->valid = true;
  victim->dirty = dirty;
  victim->tag_addr = base;
  victim->lru_stamp = lru_clock_++;
  std::memcpy(victim->data.data(), data, cfg_.line_bytes);
  for (u32 w = 0; w < cfg_.line_bytes / 4; ++w) recompute_check(*victim, w);
  return ev;
}

bool SetAssocCache::invalidate(Addr a) {
  Way* way = find(a);
  if (way == nullptr) return false;
  way->valid = false;
  way->dirty = false;
  return true;
}

std::vector<u8> SetAssocCache::corrected_line_copy(const Way& way) const {
  std::vector<u8> out = way.data;
  // Without a fault source the array only ever holds words it encoded
  // itself, so every decode would be a no-op — skip the whole pass (dirty
  // evictions are on the simulator's hot path).
  if (codec_ == nullptr || !ever_injected_) return out;
  for (u32 w = 0; w < cfg_.line_bytes / 4; ++w) {
    u32 v;
    std::memcpy(&v, out.data() + w * 4, 4);
    const auto r = codec_->decode(v, way.check[w]);
    if (ecc::is_corrected(r.status)) {
      const u32 fixed = static_cast<u32>(r.data);
      std::memcpy(out.data() + w * 4, &fixed, 4);
    }
  }
  return out;
}

std::vector<u8> SetAssocCache::peek_line(Addr a) const {
  const Way* way = find(a);
  assert(way != nullptr);
  return corrected_line_copy(*way);
}

}  // namespace laec::mem
