// The store (write) buffer sitting between the pipeline's Memory stage and
// the DL1, with the exact semantics the paper gives for the NGMP (§III.B):
//
//  * stores are deposited here by the Memory stage and drain to the DL1 (or,
//    under write-through, across the bus to the L2) when the port is idle;
//  * a load must wait until the buffer is *completely empty* before it may
//    access the DL1 ("to avoid consistency issues");
//  * when the buffer fills up, further stores stall with backpressure until
//    the buffer fully drains (hysteresis, not one-free-slot).
#pragma once

#include <deque>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "service/wire.hpp"

namespace laec::mem {

struct PendingStore {
  Addr addr = 0;
  unsigned bytes = 4;
  u32 value = 0;
  /// Oracle-mode (synthetic trace) stores carry a pre-classified outcome.
  bool forced = false;
  bool forced_hit = true;
};

struct WriteBufferParams {
  unsigned depth = 8;
};

class WriteBuffer {
 public:
  explicit WriteBuffer(const WriteBufferParams& p = {}) : params_(p) {
    occupancy_max_ = &stats_.counter("max_occupancy");
    pushes_ = &stats_.counter("pushes");
    full_stall_events_ = &stats_.counter("full_stall_events");
  }

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] unsigned depth() const { return params_.depth; }

  /// May the Memory stage deposit a store this cycle? False while the
  /// buffer is in drain-until-empty backpressure mode.
  [[nodiscard]] bool can_push() const {
    return !block_until_empty_ && q_.size() < params_.depth;
  }

  /// Deposit a store. Call only when can_push().
  void push(const PendingStore& s) {
    q_.push_back(s);
    ++*pushes_;
    if (q_.size() > *occupancy_max_) *occupancy_max_ = q_.size();
    if (q_.size() == params_.depth) block_until_empty_ = true;
  }

  /// Record that a store wanted to push but could not (stat only).
  void note_blocked_push() { ++*full_stall_events_; }

  [[nodiscard]] const PendingStore& front() const { return q_.front(); }

  void pop() {
    q_.pop_front();
    if (q_.empty()) block_until_empty_ = false;
  }

  [[nodiscard]] StatSet& stats() { return stats_; }
  [[nodiscard]] const StatSet& stats() const { return stats_; }

  /// Snapshot support: queue contents, backpressure latch, counters.
  void save_state(service::ByteWriter& w) const {
    w.put_u32(static_cast<u32>(q_.size()));
    for (const PendingStore& s : q_) {
      w.put_u32(s.addr);
      w.put_u32(s.bytes);
      w.put_u32(s.value);
      w.put_u8(s.forced ? 1 : 0);
      w.put_u8(s.forced_hit ? 1 : 0);
    }
    w.put_u8(block_until_empty_ ? 1 : 0);
    stats_.save_state(w);
  }
  void restore_state(service::ByteReader& r) {
    q_.clear();
    const u32 n = r.get_u32();
    for (u32 i = 0; i < n; ++i) {
      PendingStore s;
      s.addr = r.get_u32();
      s.bytes = r.get_u32();
      s.value = r.get_u32();
      s.forced = r.get_u8() != 0;
      s.forced_hit = r.get_u8() != 0;
      q_.push_back(s);  // raw deposit: counters come from the StatSet below
    }
    block_until_empty_ = r.get_u8() != 0;
    stats_.restore_state(r);
  }

 private:
  WriteBufferParams params_;
  std::deque<PendingStore> q_;
  bool block_until_empty_ = false;
  StatSet stats_;
  u64* occupancy_max_ = nullptr;
  u64* pushes_ = nullptr;
  u64* full_stall_events_ = nullptr;
};

}  // namespace laec::mem
