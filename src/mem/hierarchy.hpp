// MemorySystem: the far side of the bus — shared write-back L2 (SECDED) plus
// main memory — and the factory for the bus itself.
//
// Matches the NGMP arrangement the paper simulates: private L1s per core, a
// shared bus, a shared L2, then off-chip memory (paper §III.B, §IV).
#pragma once

#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "ecc/registry.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/memory.hpp"

namespace laec::mem {

struct L2Params {
  CacheConfig cache{
      .name = "l2",
      .size_bytes = 256 * 1024,
      .line_bytes = 32,
      .ways = 4,
      .write_policy = WritePolicy::kWriteBack,
      .alloc_policy = AllocPolicy::kWriteAllocate,
      .codec = ecc::make_codec("secded-39-32"),
      .scrub_on_correct = true,
  };
  /// Array access latency for a hit; the SECDED check latency is folded in,
  /// which is cheap at L2 because overall miss latencies dominate (§II.A).
  unsigned hit_cycles = 4;
  unsigned write_cycles = 2;
  /// Main-memory access on an L2 miss.
  unsigned memory_cycles = 26;
  /// Installing the refilled line into the L2 array.
  unsigned refill_cycles = 2;
};

struct MemorySystemParams {
  BusParams bus;
  L2Params l2;
  unsigned num_requesters = 4;
};

class MemorySystem final : public BusTarget {
 public:
  explicit MemorySystem(const MemorySystemParams& params);

  [[nodiscard]] Bus& bus() { return *bus_; }
  [[nodiscard]] MainMemory& memory() { return memory_; }
  [[nodiscard]] SetAssocCache& l2() { return l2_; }

  /// Memory-side recovery events: "l2_refetches" (lines dropped and
  /// refetched from memory after a detected error), "l2_data_loss_events"
  /// (uncorrectable error on a dirty line — the writeback copy is gone;
  /// the refetch restores the stale memory image), and
  /// "l2_unrecovered_reads" (every recovery retry was itself struck — the
  /// word was served with a standing detected error).
  [[nodiscard]] StatSet& stats() { return stats_; }
  [[nodiscard]] const StatSet& stats() const { return stats_; }

  /// Advance one cycle (drives bus arbitration). Call after the cores.
  void tick(Cycle now) { bus_->tick(now); }

  /// Write every dirty L2 line back to memory (end-of-run finalization).
  void flush_l2();

  /// Snapshot support: memory pages, L2 array, bus, recovery counters.
  /// (The refill staging buffer is transient scratch and not covered.)
  void save_state(service::ByteWriter& w) const;
  void restore_state(service::ByteReader& r);

  // BusTarget: execute a granted transaction, return service latency.
  unsigned service(BusTransaction& t) override;

 private:
  /// Ensure the line containing `a` is resident in L2; returns the extra
  /// latency incurred (0 when it already hit).
  unsigned ensure_l2_line(Addr a);

  /// Read one protected word from the L2, applying the configured recovery
  /// on detected errors (invalidate + refetch from memory; a dirty line is
  /// a data-loss event). Adds any recovery latency to `lat`.
  WordRead read_l2_word(Addr a, unsigned& lat);

  MemorySystemParams params_;
  MainMemory memory_;
  SetAssocCache l2_;
  /// Refill staging buffer, reused across misses (no per-miss allocation).
  std::vector<u8> refill_buf_;
  std::unique_ptr<Bus> bus_;
  StatSet stats_;
  u64* n_l2_refetch_ = nullptr;
  u64* n_l2_data_loss_ = nullptr;
  u64* n_l2_unrecovered_ = nullptr;
};

}  // namespace laec::mem
