// Shared processor bus (NGMP-style AMBA-like, non-split).
//
// One transaction occupies the bus end-to-end: request phase, target service
// (L2 and, on an L2 miss, main memory), response phase. Requesters are
// granted round-robin. This is the shared resource whose contention makes
// write-through DL1 caches so expensive in multicores (paper §II.A and
// ref [9]) — every WT store becomes a kWriteWord transaction here.
#pragma once

#include <deque>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace laec::mem {

struct BusParams {
  unsigned request_cycles = 2;   ///< address/command phase on the bus
  unsigned response_cycles = 2;  ///< data return phase on the bus
};

enum class BusOp : u8 {
  kReadLine,   ///< L1 refill (I or D)
  kWriteLine,  ///< dirty L1 line writeback
  kWriteWord,  ///< write-through store (word or sub-word)
};

struct BusTransaction {
  unsigned requester = 0;  ///< core id (or traffic-generator id)
  BusOp op = BusOp::kReadLine;
  Addr addr = 0;
  unsigned bytes = 4;    ///< kWriteWord only
  u32 value = 0;         ///< kWriteWord only
  std::vector<u8> line;  ///< kWriteLine: payload; kReadLine: filled on service

  // Filled in by the bus.
  Cycle submitted_at = 0;
  Cycle granted_at = kNeverCycle;
  Cycle completes_at = kNeverCycle;
  bool done = false;
};

/// The device at the far end of the bus (our MemorySystem: L2 + DRAM).
/// `service` performs the data movement and returns the service latency in
/// cycles (excluding the bus request/response phases).
class BusTarget {
 public:
  virtual ~BusTarget() = default;
  virtual unsigned service(BusTransaction& t) = 0;
};

class Bus {
 public:
  using Token = u64;

  Bus(const BusParams& params, BusTarget& target, unsigned num_requesters);

  /// Queue a transaction for `t.requester`. FIFO order per requester.
  Token submit(BusTransaction t, Cycle now);

  [[nodiscard]] bool done(Token token) const;
  [[nodiscard]] const BusTransaction& peek(Token token) const;

  /// Retrieve a completed transaction and free its slot.
  BusTransaction take(Token token);

  /// Advance arbitration/timing. Call once per cycle, after the cores.
  void tick(Cycle now);

  [[nodiscard]] bool idle() const { return active_ == kNoToken; }

  [[nodiscard]] StatSet& stats() { return stats_; }
  [[nodiscard]] const StatSet& stats() const { return stats_; }

  /// Snapshot support: queues, slots, arbitration state, counters. The
  /// restore target must have the same requester count.
  void save_state(service::ByteWriter& w) const;
  void restore_state(service::ByteReader& r);

 private:
  static constexpr Token kNoToken = ~Token{0};

  BusParams params_;
  BusTarget& target_;
  unsigned num_requesters_;

  std::vector<std::deque<Token>> queues_;  // per requester
  std::vector<BusTransaction> slots_;
  std::vector<bool> slot_live_;
  Token active_ = kNoToken;
  unsigned rr_next_ = 0;  // round-robin pointer

  StatSet stats_;
  u64* n_transactions_ = nullptr;
  u64* busy_cycles_ = nullptr;
  u64* wait_cycles_ = nullptr;
};

}  // namespace laec::mem
