#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace laec::mem {

/// One exposure window of one cached word, as seen by the golden (fault-free)
/// run: the stretch of device time between two consecutive touches of the
/// word while it is resident.
///
/// A window is **live** when it ends in a read — an upset landing anywhere in
/// it would be consulted (and possibly delivered) at that read. It is **dead**
/// when it ends in a write, an eviction, an invalidation, or the end of the
/// run — an upset landing in it is overwritten or discarded before any read
/// could observe it, i.e. architecturally masked.
struct AccessWindow {
  u64 gap_cycles = 0;  ///< device cycles between the touch opening and closing it
  bool live = false;   ///< true iff the window is closed by a read
};

/// Records per-word access events from one or more `SetAssocCache` instances
/// during a golden run and finalizes them into the flat, deterministic window
/// sequence (`windows()`) that pass 2 replays trial RNG streams over.
///
/// Because every trial in a campaign cell executes the identical instruction
/// trace (the replicate index mixes only into the fault seed), the recorded
/// sequence is exact for all of them: the i-th live window corresponds to the
/// i-th injector consultation of any zero-delivery trial.
class ResidencyRecorder {
 public:
  /// Bump when the recording semantics change; serialized into the campaign
  /// identity hash so stale checkpoints cannot resume across recorder revisions.
  static constexpr u32 kVersion = 1;

  /// Point the recorder at the simulator's cycle counter. Must be called
  /// before any cache hook fires.
  void bind_clock(const Cycle* now) { now_ = now; }

  // --- hooks called by SetAssocCache (null-gated at the call site) ----------

  /// A word was read while resident: closes a live window.
  void on_read(u64 word_key);

  /// A word was (partially or fully) overwritten while resident: closes a
  /// dead window and re-opens residency at the new value.
  void on_write(u64 word_key);

  /// A word became resident via a line fill; opens residency, no window.
  void on_install(u64 word_key);

  /// A word left the cache (eviction, writeback, invalidation): closes a
  /// dead window and ends residency.
  void on_retire(u64 word_key);

  /// Close the trailing window of every still-resident word (dead: the run
  /// ended before another read). Retires in sorted word-key order so the
  /// window sequence — and hence every trial's RNG stream — is deterministic.
  void finalize();

  [[nodiscard]] const std::vector<AccessWindow>& windows() const { return windows_; }

  /// Move the recorded windows out (recorder is spent afterwards).
  [[nodiscard]] std::vector<AccessWindow> take_windows() { return std::move(windows_); }

  [[nodiscard]] u64 live_windows() const { return live_windows_; }

 private:
  void close_window(u64 word_key, bool live, bool retire);

  const Cycle* now_ = nullptr;
  std::unordered_map<u64, Cycle> last_touch_;  ///< resident words -> last touch time
  std::vector<AccessWindow> windows_;
  u64 live_windows_ = 0;
};

/// Mean per-word inter-access gap in cycles over a golden run's windows
/// (resident-time-weighted fault exposure). 0 when no window was recorded.
[[nodiscard]] double mean_exposure_cycles(const std::vector<AccessWindow>& windows);

}  // namespace laec::mem
