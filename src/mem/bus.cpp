#include "mem/bus.hpp"

#include <cassert>

#include "service/wire.hpp"

namespace laec::mem {

namespace {

void save_transaction(service::ByteWriter& w, const BusTransaction& t) {
  w.put_u32(t.requester);
  w.put_u8(static_cast<u8>(t.op));
  w.put_u32(t.addr);
  w.put_u32(t.bytes);
  w.put_u32(t.value);
  w.put_string(std::string_view(reinterpret_cast<const char*>(t.line.data()),
                                t.line.size()));
  w.put_u64(t.submitted_at);
  w.put_u64(t.granted_at);
  w.put_u64(t.completes_at);
  w.put_u8(t.done ? 1 : 0);
}

BusTransaction restore_transaction(service::ByteReader& r) {
  BusTransaction t;
  t.requester = r.get_u32();
  t.op = static_cast<BusOp>(r.get_u8());
  t.addr = r.get_u32();
  t.bytes = r.get_u32();
  t.value = r.get_u32();
  const std::string line = r.get_string();
  t.line.assign(line.begin(), line.end());
  t.submitted_at = r.get_u64();
  t.granted_at = r.get_u64();
  t.completes_at = r.get_u64();
  t.done = r.get_u8() != 0;
  return t;
}

}  // namespace

Bus::Bus(const BusParams& params, BusTarget& target, unsigned num_requesters)
    : params_(params), target_(target), num_requesters_(num_requesters) {
  queues_.resize(num_requesters);
  n_transactions_ = &stats_.counter("transactions");
  busy_cycles_ = &stats_.counter("busy_cycles");
  wait_cycles_ = &stats_.counter("wait_cycles");
}

Bus::Token Bus::submit(BusTransaction t, Cycle now) {
  assert(t.requester < num_requesters_);
  t.submitted_at = now;
  Token tok;
  // Reuse a dead slot when available to bound memory in long runs.
  for (tok = 0; tok < slots_.size(); ++tok) {
    if (!slot_live_[static_cast<std::size_t>(tok)]) break;
  }
  if (tok == slots_.size()) {
    slots_.push_back(std::move(t));
    slot_live_.push_back(true);
  } else {
    slots_[static_cast<std::size_t>(tok)] = std::move(t);
    slot_live_[static_cast<std::size_t>(tok)] = true;
  }
  queues_[slots_[static_cast<std::size_t>(tok)].requester].push_back(tok);
  return tok;
}

bool Bus::done(Token token) const {
  assert(slot_live_.at(static_cast<std::size_t>(token)));
  return slots_[static_cast<std::size_t>(token)].done;
}

const BusTransaction& Bus::peek(Token token) const {
  assert(slot_live_.at(static_cast<std::size_t>(token)));
  return slots_[static_cast<std::size_t>(token)];
}

BusTransaction Bus::take(Token token) {
  assert(slot_live_.at(static_cast<std::size_t>(token)));
  assert(slots_[static_cast<std::size_t>(token)].done);
  slot_live_[static_cast<std::size_t>(token)] = false;
  return std::move(slots_[static_cast<std::size_t>(token)]);
}

void Bus::tick(Cycle now) {
  if (active_ != kNoToken) {
    ++*busy_cycles_;
    BusTransaction& t = slots_[static_cast<std::size_t>(active_)];
    if (now >= t.completes_at) {
      t.done = true;
      active_ = kNoToken;
    } else {
      return;
    }
  }
  // Round-robin grant among requesters with pending work.
  for (unsigned i = 0; i < num_requesters_; ++i) {
    const unsigned r = (rr_next_ + i) % num_requesters_;
    if (queues_[r].empty()) continue;
    const Token tok = queues_[r].front();
    queues_[r].pop_front();
    rr_next_ = (r + 1) % num_requesters_;

    BusTransaction& t = slots_[static_cast<std::size_t>(tok)];
    t.granted_at = now;
    *wait_cycles_ += now - t.submitted_at;
    ++*n_transactions_;
    stats_.counter(t.op == BusOp::kReadLine    ? "read_line"
                   : t.op == BusOp::kWriteLine ? "write_line"
                                               : "write_word")++;
    // Data movement happens at grant time; the transaction then occupies
    // the bus for its full latency. With blocking requesters this is
    // indistinguishable from movement-at-completion.
    const unsigned service = target_.service(t);
    const unsigned total =
        params_.request_cycles + service + params_.response_cycles;
    t.completes_at = now + total;
    active_ = tok;
    ++*busy_cycles_;
    return;
  }
}

void Bus::save_state(service::ByteWriter& w) const {
  w.put_u32(num_requesters_);
  for (const auto& q : queues_) {
    w.put_u32(static_cast<u32>(q.size()));
    for (const Token tok : q) w.put_u64(tok);
  }
  w.put_u32(static_cast<u32>(slots_.size()));
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    w.put_u8(slot_live_[i] ? 1 : 0);
    save_transaction(w, slots_[i]);
  }
  w.put_u64(active_);
  w.put_u32(rr_next_);
  stats_.save_state(w);
}

void Bus::restore_state(service::ByteReader& r) {
  if (r.get_u32() != num_requesters_) {
    throw service::WireError("snapshot: bus requester count mismatch");
  }
  for (auto& q : queues_) {
    q.clear();
    const u32 n = r.get_u32();
    for (u32 i = 0; i < n; ++i) q.push_back(r.get_u64());
  }
  const u32 nslots = r.get_u32();
  slots_.clear();
  slot_live_.clear();
  slots_.reserve(nslots);
  slot_live_.reserve(nslots);
  for (u32 i = 0; i < nslots; ++i) {
    slot_live_.push_back(r.get_u8() != 0);
    slots_.push_back(restore_transaction(r));
  }
  active_ = r.get_u64();
  rr_next_ = r.get_u32();
  stats_.restore_state(r);
}

}  // namespace laec::mem
