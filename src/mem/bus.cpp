#include "mem/bus.hpp"

#include <cassert>

namespace laec::mem {

Bus::Bus(const BusParams& params, BusTarget& target, unsigned num_requesters)
    : params_(params), target_(target), num_requesters_(num_requesters) {
  queues_.resize(num_requesters);
  n_transactions_ = &stats_.counter("transactions");
  busy_cycles_ = &stats_.counter("busy_cycles");
  wait_cycles_ = &stats_.counter("wait_cycles");
}

Bus::Token Bus::submit(BusTransaction t, Cycle now) {
  assert(t.requester < num_requesters_);
  t.submitted_at = now;
  Token tok;
  // Reuse a dead slot when available to bound memory in long runs.
  for (tok = 0; tok < slots_.size(); ++tok) {
    if (!slot_live_[static_cast<std::size_t>(tok)]) break;
  }
  if (tok == slots_.size()) {
    slots_.push_back(std::move(t));
    slot_live_.push_back(true);
  } else {
    slots_[static_cast<std::size_t>(tok)] = std::move(t);
    slot_live_[static_cast<std::size_t>(tok)] = true;
  }
  queues_[slots_[static_cast<std::size_t>(tok)].requester].push_back(tok);
  return tok;
}

bool Bus::done(Token token) const {
  assert(slot_live_.at(static_cast<std::size_t>(token)));
  return slots_[static_cast<std::size_t>(token)].done;
}

const BusTransaction& Bus::peek(Token token) const {
  assert(slot_live_.at(static_cast<std::size_t>(token)));
  return slots_[static_cast<std::size_t>(token)];
}

BusTransaction Bus::take(Token token) {
  assert(slot_live_.at(static_cast<std::size_t>(token)));
  assert(slots_[static_cast<std::size_t>(token)].done);
  slot_live_[static_cast<std::size_t>(token)] = false;
  return std::move(slots_[static_cast<std::size_t>(token)]);
}

void Bus::tick(Cycle now) {
  if (active_ != kNoToken) {
    ++*busy_cycles_;
    BusTransaction& t = slots_[static_cast<std::size_t>(active_)];
    if (now >= t.completes_at) {
      t.done = true;
      active_ = kNoToken;
    } else {
      return;
    }
  }
  // Round-robin grant among requesters with pending work.
  for (unsigned i = 0; i < num_requesters_; ++i) {
    const unsigned r = (rr_next_ + i) % num_requesters_;
    if (queues_[r].empty()) continue;
    const Token tok = queues_[r].front();
    queues_[r].pop_front();
    rr_next_ = (r + 1) % num_requesters_;

    BusTransaction& t = slots_[static_cast<std::size_t>(tok)];
    t.granted_at = now;
    *wait_cycles_ += now - t.submitted_at;
    ++*n_transactions_;
    stats_.counter(t.op == BusOp::kReadLine    ? "read_line"
                   : t.op == BusOp::kWriteLine ? "write_line"
                                               : "write_word")++;
    // Data movement happens at grant time; the transaction then occupies
    // the bus for its full latency. With blocking requesters this is
    // indistinguishable from movement-at-completion.
    const unsigned service = target_.service(t);
    const unsigned total =
        params_.request_cycles + service + params_.response_cycles;
    t.completes_at = now + total;
    active_ = tok;
    ++*busy_cycles_;
    return;
  }
}

}  // namespace laec::mem
