#include "mem/l1.hpp"

#include <cassert>

#include "service/wire.hpp"

namespace laec::mem {

// ---------------------------------------------------------------------------
// DL1Controller
// ---------------------------------------------------------------------------

DL1Controller::DL1Controller(const L1Params& params, Bus& bus,
                             unsigned core_id)
    : params_(params), bus_(bus), core_id_(core_id), cache_(params.cache) {
  n_loads_ = &stats_.counter("loads");
  n_load_hits_ = &stats_.counter("load_hits");
  n_stores_ = &stats_.counter("stores");
  n_store_hits_ = &stats_.counter("store_hits");
  n_parity_refetch_ = &stats_.counter("parity_refetches");
  n_data_loss_ = &stats_.counter("data_loss_events");
}

bool DL1Controller::would_hit(Addr a) const { return cache_.contains(a); }

void DL1Controller::start_read_line(Addr a, Cycle now, State next) {
  BusTransaction t;
  t.requester = core_id_;
  t.op = BusOp::kReadLine;
  t.addr = cache_.line_base(a);
  t.bytes = cache_.line_bytes();
  token_ = bus_.submit(std::move(t), now);
  token_live_ = true;
  miss_addr_ = a;
  state_ = next;
}

void DL1Controller::finish_fill(Cycle now) {
  BusTransaction t = bus_.take(token_);
  token_live_ = false;
  assert(t.line.size() == cache_.line_bytes());
  auto ev = cache_.fill(t.addr, t.line.data(), /*dirty=*/false);
  if (ev.has_value() && ev->dirty) {
    BusTransaction wb;
    wb.requester = core_id_;
    wb.op = BusOp::kWriteLine;
    wb.addr = ev->line_addr;
    wb.line = ev->data;
    pending_evict_copy_.emplace(ev->line_addr, std::move(ev->data));
    wb_token_ = bus_.submit(std::move(wb), now);
    wb_live_ = true;
  }
}

L1LoadReply DL1Controller::load(Addr a, unsigned bytes, Cycle now,
                                std::optional<bool> forced_hit) {
  L1LoadReply r;

  // Retire a completed eviction writeback opportunistically.
  if (wb_live_ && bus_.done(wb_token_)) {
    bus_.take(wb_token_);
    wb_live_ = false;
    pending_evict_copy_.reset();  // safely in the L2 now
  }

  if (params_.oracle.enabled) {
    switch (state_) {
      case State::kIdle: {
        ++*n_loads_;
        const bool hit = forced_hit.value_or(true);
        if (hit) {
          ++*n_load_hits_;
          r.complete = true;
          r.hit = true;
          return r;
        }
        state_ = State::kOracleMiss;
        oracle_done_ = now + params_.oracle.miss_cycles;
        return r;
      }
      case State::kOracleMiss:
        if (now >= oracle_done_) {
          state_ = State::kIdle;
          r.complete = true;
          r.hit = false;
        }
        return r;
      default:
        return r;
    }
  }

  switch (state_) {
    case State::kIdle: {
      if (SetAssocCache::LineRef line = cache_.find_line(a)) {
        WordRead w = cache_.read(line, a, bytes);
        // Parity (or SECDED double error): recover by refetch. A dirty
        // line has no clean copy anywhere -> data loss event.
        if (needs_refetch(w.check, params_.cache.recovery, line.dirty())) {
          if (w.check == ecc::CheckStatus::kDetectedUncorrectable &&
              line.dirty()) {
            ++*n_data_loss_;
          }
          ++*n_parity_refetch_;
          cache_.invalidate(line);
          ++*n_loads_;  // counts as a (miss) access
          start_read_line(a, now, State::kLoadMiss);
          return r;
        }
        ++*n_loads_;
        ++*n_load_hits_;
        r.complete = true;
        r.hit = true;
        r.value = w.value;
        r.check = w.check;
        return r;
      }
      // A pending dirty-eviction writeback must finish before a new miss
      // can use the transaction slot.
      if (wb_live_) return r;
      ++*n_loads_;
      start_read_line(a, now, State::kLoadMiss);
      return r;
    }
    case State::kLoadMiss: {
      if (bus_.done(token_)) {
        finish_fill(now);
        state_ = State::kIdle;
        SetAssocCache::LineRef line = cache_.find_line(a);
        WordRead w = cache_.read(line, a, bytes);
        // The freshly refilled line is clean, but a new fault can strike
        // this very read — apply the same recovery as the hit path: drop
        // the line and let the next poll replay the miss.
        if (needs_refetch(w.check, params_.cache.recovery, line.dirty())) {
          ++*n_parity_refetch_;
          cache_.invalidate(line);
          return r;
        }
        r.complete = true;
        r.hit = false;
        r.value = w.value;
        r.check = w.check;
      }
      return r;
    }
    default:
      return r;  // store machinery busy; caller keeps polling
  }
}

L1StoreReply DL1Controller::store(Addr a, unsigned bytes, u32 value, Cycle now,
                                  std::optional<bool> forced_hit) {
  L1StoreReply r;

  if (wb_live_ && bus_.done(wb_token_)) {
    bus_.take(wb_token_);
    wb_live_ = false;
    pending_evict_copy_.reset();  // safely in the L2 now
  }

  if (params_.oracle.enabled) {
    switch (state_) {
      case State::kIdle: {
        ++*n_stores_;
        const bool hit = forced_hit.value_or(true);
        if (hit) {
          ++*n_store_hits_;
          r.complete = true;
          r.hit = true;
          return r;
        }
        state_ = State::kOracleMiss;
        oracle_done_ = now + params_.oracle.miss_cycles;
        return r;
      }
      case State::kOracleMiss:
        if (now >= oracle_done_) {
          state_ = State::kIdle;
          r.complete = true;
        }
        return r;
      default:
        return r;
    }
  }

  const bool write_through =
      params_.cache.write_policy == WritePolicy::kWriteThrough;

  switch (state_) {
    case State::kIdle: {
      if (write_through) {
        // Update the local copy when present (clean), then post the word
        // write to the L2 over the bus.
        ++*n_stores_;
        if (SetAssocCache::LineRef line = cache_.find_line(a)) {
          ++*n_store_hits_;
          cache_.write(line, a, bytes, value, /*mark_dirty=*/false);
        }
        BusTransaction t;
        t.requester = core_id_;
        t.op = BusOp::kWriteWord;
        t.addr = a;
        t.bytes = bytes;
        t.value = value;
        token_ = bus_.submit(std::move(t), now);
        token_live_ = true;
        state_ = State::kWriteThrough;
        return r;
      }
      // Write-back, write-allocate.
      if (SetAssocCache::LineRef line = cache_.find_line(a)) {
        ++*n_stores_;
        ++*n_store_hits_;
        cache_.write(line, a, bytes, value, /*mark_dirty=*/true);
        r.complete = true;
        r.hit = true;
        return r;
      }
      if (wb_live_) return r;  // wait for eviction slot
      ++*n_stores_;
      start_read_line(a, now, State::kStoreMiss);
      return r;
    }
    case State::kStoreMiss: {
      if (bus_.done(token_)) {
        finish_fill(now);
        cache_.write(a, bytes, value, /*mark_dirty=*/true);
        state_ = State::kIdle;
        r.complete = true;
        r.hit = false;
      }
      return r;
    }
    case State::kWriteThrough: {
      if (bus_.done(token_)) {
        bus_.take(token_);
        token_live_ = false;
        state_ = State::kIdle;
        r.complete = true;
        r.hit = true;
      }
      return r;
    }
    default:
      return r;
  }
}

// ---------------------------------------------------------------------------
// L1IController
// ---------------------------------------------------------------------------

namespace {

/// The instruction cache is architecturally read-only: no store path, no
/// dirty lines, invalidate-and-refetch as the only recovery. Enforced in
/// the array itself so a stray write throws instead of corrupting state.
L1Params read_only_l1i(L1Params p) {
  p.cache.read_only = true;
  return p;
}

}  // namespace

L1IController::L1IController(const L1Params& params, Bus& bus,
                             unsigned core_id)
    : params_(read_only_l1i(params)),
      bus_(bus),
      core_id_(core_id),
      cache_(params_.cache) {
  n_fetches_ = &stats_.counter("fetches");
  n_hits_ = &stats_.counter("hits");
  n_parity_refetch_ = &stats_.counter("parity_refetches");
}

L1IController::FetchReply L1IController::fetch(Addr a, Cycle now) {
  FetchReply r;
  if (!miss_pending_) {
    if (SetAssocCache::LineRef line = cache_.find_line(a)) {
      WordRead w = cache_.read(line, a, 4);
      if (needs_refetch(w.check, params_.cache.recovery,
                        /*line_dirty=*/false)) {
        // Instruction lines are always clean: recover by refetch (the only
        // path — the array rejects in-place writes).
        ++*n_parity_refetch_;
        cache_.invalidate(line);
      } else {
        ++*n_fetches_;
        ++*n_hits_;
        r.complete = true;
        r.hit = true;
        r.word = w.value;
        return r;
      }
    }
    ++*n_fetches_;
    BusTransaction t;
    t.requester = core_id_;
    t.op = BusOp::kReadLine;
    t.addr = cache_.line_base(a);
    t.bytes = cache_.line_bytes();
    token_ = bus_.submit(std::move(t), now);
    miss_pending_ = true;
    miss_addr_ = a;
    return r;
  }
  if (bus_.done(token_)) {
    BusTransaction t = bus_.take(token_);
    cache_.fill(t.addr, t.line.data(), /*dirty=*/false);
    miss_pending_ = false;
    SetAssocCache::LineRef line = cache_.find_line(a);
    WordRead w = cache_.read(line, a, 4);
    // A fault can strike the post-refill read itself; recover exactly like
    // the hit path (drop the line, replay the fetch as a fresh miss)
    // rather than handing a known-bad instruction word to the pipeline.
    if (needs_refetch(w.check, params_.cache.recovery,
                      /*line_dirty=*/false)) {
      ++*n_parity_refetch_;
      cache_.invalidate(line);
      return r;
    }
    r.complete = true;
    r.hit = false;
    r.word = w.value;
  }
  return r;
}

void DL1Controller::save_state(service::ByteWriter& w) const {
  w.put_u8(static_cast<u8>(state_));
  w.put_u32(miss_addr_);
  w.put_u64(token_);
  w.put_u8(token_live_ ? 1 : 0);
  w.put_u64(oracle_done_);
  w.put_u64(wb_token_);
  w.put_u8(wb_live_ ? 1 : 0);
  w.put_u8(pending_evict_copy_.has_value() ? 1 : 0);
  if (pending_evict_copy_.has_value()) {
    w.put_u32(pending_evict_copy_->first);
    const auto& data = pending_evict_copy_->second;
    w.put_string(std::string_view(reinterpret_cast<const char*>(data.data()),
                                  data.size()));
  }
  cache_.save_state(w);
  stats_.save_state(w);
}

void DL1Controller::restore_state(service::ByteReader& r) {
  state_ = static_cast<State>(r.get_u8());
  miss_addr_ = r.get_u32();
  token_ = r.get_u64();
  token_live_ = r.get_u8() != 0;
  oracle_done_ = r.get_u64();
  wb_token_ = r.get_u64();
  wb_live_ = r.get_u8() != 0;
  pending_evict_copy_.reset();
  if (r.get_u8() != 0) {
    const Addr addr = r.get_u32();
    const std::string data = r.get_string();
    pending_evict_copy_.emplace(addr, std::vector<u8>(data.begin(), data.end()));
  }
  cache_.restore_state(r);
  stats_.restore_state(r);
}

void L1IController::save_state(service::ByteWriter& w) const {
  w.put_u8(miss_pending_ ? 1 : 0);
  w.put_u32(miss_addr_);
  w.put_u64(token_);
  cache_.save_state(w);
  stats_.save_state(w);
}

void L1IController::restore_state(service::ByteReader& r) {
  miss_pending_ = r.get_u8() != 0;
  miss_addr_ = r.get_u32();
  token_ = r.get_u64();
  cache_.restore_state(r);
  stats_.restore_state(r);
}

}  // namespace laec::mem
