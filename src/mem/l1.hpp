// Per-core L1 controllers: blocking DL1 (data) and L1I (instruction).
//
// The controllers own the miss state machines. Timing of the *hit path*
// (which pipeline stage reads the array, where the ECC check lands) is the
// pipeline's business; the controllers answer hits combinationally and turn
// misses into bus transactions that the pipeline polls to completion.
//
// Error handling on the hit path:
//  * SECDED single-bit errors are corrected in-line (and scrubbed);
//  * parity errors on a clean line are recovered by invalidate + refetch
//    (the LEON WT scheme, paper §II.A) — the access is replayed as a miss;
//  * uncorrectable errors on a *dirty* line mean data loss; they are counted
//    as `data_loss_events` and recovered by refetch of the stale copy, which
//    mirrors what a real safety-critical system would log as a DUE.
#pragma once

#include <optional>

#include "ecc/injector.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"

namespace laec::mem {

struct OracleParams {
  /// Synthetic-trace mode: outcomes are pre-classified, no arrays are kept.
  bool enabled = false;
  /// Cycles from miss initiation until the (pretend) refill completes.
  unsigned miss_cycles = 12;
};

struct L1Params {
  CacheConfig cache;
  OracleParams oracle;
};

/// Common reply shape for pipeline-visible accesses.
struct L1LoadReply {
  bool complete = false;
  bool hit = false;  ///< valid when complete: did the *original* access hit?
  u32 value = 0;
  ecc::CheckStatus check = ecc::CheckStatus::kOk;
};

struct L1StoreReply {
  bool complete = false;
  bool hit = false;
};

class DL1Controller {
 public:
  DL1Controller(const L1Params& params, Bus& bus, unsigned core_id);

  /// Attempt a load. Call once per cycle while it returns !complete.
  /// `forced_hit` drives oracle mode (ignored otherwise).
  L1LoadReply load(Addr a, unsigned bytes, Cycle now,
                   std::optional<bool> forced_hit = std::nullopt);

  /// Attempt a store (invoked by the write-buffer drain).
  /// Under write-back: write-allocate; under write-through: bus word write
  /// plus in-place update when the line is resident (no allocate).
  L1StoreReply store(Addr a, unsigned bytes, u32 value, Cycle now,
                     std::optional<bool> forced_hit = std::nullopt);

  /// Nonbinding probe: would `a` hit right now? (No LRU update, no faults.)
  [[nodiscard]] bool would_hit(Addr a) const;

  /// True while a miss/writeback transaction is outstanding.
  [[nodiscard]] bool busy() const { return state_ != State::kIdle; }

  /// Flush all dirty lines straight into `sink` (end-of-run finalization).
  template <typename Sink>
  void flush_dirty(Sink&& sink) {
    cache_.flush_dirty(sink);
  }

  /// Emit a dirty eviction whose bus writeback is still in flight (the line
  /// is no longer in the cache, so this copy is the only one). Part of
  /// end-of-run finalization; cleared afterwards.
  template <typename Sink>
  void flush_pending_writeback(Sink&& sink) {
    if (pending_evict_copy_.has_value()) {
      sink(pending_evict_copy_->first, pending_evict_copy_->second.data());
      pending_evict_copy_.reset();
    }
  }

  [[nodiscard]] SetAssocCache& cache() { return cache_; }
  [[nodiscard]] StatSet& stats() { return stats_; }
  [[nodiscard]] const StatSet& stats() const { return stats_; }

  void set_injector(ecc::FaultInjector* inj) { cache_.set_injector(inj); }

  /// Snapshot support: miss state machine, in-flight tokens, cache array.
  void save_state(service::ByteWriter& w) const;
  void restore_state(service::ByteReader& r);

 private:
  enum class State { kIdle, kLoadMiss, kStoreMiss, kWriteThrough, kOracleMiss };

  void start_read_line(Addr a, Cycle now, State next);
  /// Install a completed refill; queue the dirty victim for writeback.
  void finish_fill(Cycle now);

  L1Params params_;
  Bus& bus_;
  unsigned core_id_;
  SetAssocCache cache_;

  State state_ = State::kIdle;
  Addr miss_addr_ = 0;
  Bus::Token token_ = 0;
  bool token_live_ = false;
  Cycle oracle_done_ = 0;
  Bus::Token wb_token_ = 0;
  bool wb_live_ = false;
  // Retained copy of an in-flight dirty eviction for end-of-run flushing.
  std::optional<std::pair<Addr, std::vector<u8>>> pending_evict_copy_;

  StatSet stats_;
  u64* n_loads_ = nullptr;
  u64* n_load_hits_ = nullptr;
  u64* n_stores_ = nullptr;
  u64* n_store_hits_ = nullptr;
  u64* n_parity_refetch_ = nullptr;
  u64* n_data_loss_ = nullptr;
};

class L1IController {
 public:
  L1IController(const L1Params& params, Bus& bus, unsigned core_id);

  struct FetchReply {
    bool complete = false;
    bool hit = false;
    u32 word = 0;
  };

  /// Attempt an instruction fetch. Call once per cycle while !complete.
  FetchReply fetch(Addr a, Cycle now);

  [[nodiscard]] SetAssocCache& cache() { return cache_; }
  [[nodiscard]] StatSet& stats() { return stats_; }
  [[nodiscard]] const StatSet& stats() const { return stats_; }

  void set_injector(ecc::FaultInjector* inj) { cache_.set_injector(inj); }

  /// Snapshot support: miss state, in-flight token, cache array.
  void save_state(service::ByteWriter& w) const;
  void restore_state(service::ByteReader& r);

 private:
  L1Params params_;
  Bus& bus_;
  unsigned core_id_;
  SetAssocCache cache_;

  bool miss_pending_ = false;
  Addr miss_addr_ = 0;
  Bus::Token token_ = 0;

  StatSet stats_;
  u64* n_fetches_ = nullptr;
  u64* n_hits_ = nullptr;
  u64* n_parity_refetch_ = nullptr;
};

}  // namespace laec::mem
