#include "mem/residency.hpp"

#include <algorithm>
#include <stdexcept>

namespace laec::mem {

void ResidencyRecorder::close_window(u64 word_key, bool live, bool retire) {
  if (now_ == nullptr) throw std::logic_error("ResidencyRecorder: clock not bound");
  auto it = last_touch_.find(word_key);
  if (it == last_touch_.end()) return;  // not resident (e.g. traffic outside the recorded cache)
  AccessWindow w;
  w.gap_cycles = *now_ - it->second;
  w.live = live;
  windows_.push_back(w);
  if (live) ++live_windows_;
  if (retire) {
    last_touch_.erase(it);
  } else {
    it->second = *now_;
  }
}

void ResidencyRecorder::on_read(u64 word_key) { close_window(word_key, /*live=*/true, /*retire=*/false); }

void ResidencyRecorder::on_write(u64 word_key) {
  if (now_ == nullptr) throw std::logic_error("ResidencyRecorder: clock not bound");
  auto it = last_touch_.find(word_key);
  if (it == last_touch_.end()) {
    // Write to a non-resident word (write-through store into a line the
    // recorder never saw fill, e.g. before bind): open residency.
    last_touch_.emplace(word_key, *now_);
    return;
  }
  close_window(word_key, /*live=*/false, /*retire=*/false);
}

void ResidencyRecorder::on_install(u64 word_key) {
  if (now_ == nullptr) throw std::logic_error("ResidencyRecorder: clock not bound");
  last_touch_[word_key] = *now_;
}

void ResidencyRecorder::on_retire(u64 word_key) { close_window(word_key, /*live=*/false, /*retire=*/true); }

void ResidencyRecorder::finalize() {
  std::vector<u64> keys;
  keys.reserve(last_touch_.size());
  for (const auto& [k, t] : last_touch_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  for (u64 k : keys) close_window(k, /*live=*/false, /*retire=*/true);
}

double mean_exposure_cycles(const std::vector<AccessWindow>& windows) {
  if (windows.empty()) return 0.0;
  double sum = 0.0;
  for (const AccessWindow& w : windows) sum += static_cast<double>(w.gap_cycles);
  return sum / static_cast<double>(windows.size());
}

}  // namespace laec::mem
