// WriteBuffer is header-only; this TU anchors the target.
#include "mem/write_buffer.hpp"
