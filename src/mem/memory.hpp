// Sparse byte-addressable main memory.
//
// Main memory (and everything beyond the bus) is assumed ECC-clean: the
// paper's fault model concerns the on-chip L1 arrays, and L2/memory are
// SECDED-protected substrates whose check latency is folded into their
// access latency (paper §II.A).
#pragma once

#include <memory>
#include <unordered_map>

#include "common/types.hpp"

namespace laec::service {
class ByteWriter;
class ByteReader;
}  // namespace laec::service

namespace laec::mem {

class MainMemory {
 public:
  static constexpr unsigned kPageBits = 12;  // 4 KiB pages
  static constexpr Addr kPageSize = 1u << kPageBits;

  [[nodiscard]] u8 read_u8(Addr a) const;
  [[nodiscard]] u16 read_u16(Addr a) const;
  [[nodiscard]] u32 read_u32(Addr a) const;
  void write_u8(Addr a, u8 v);
  void write_u16(Addr a, u16 v);
  void write_u32(Addr a, u32 v);

  /// Bulk ops used by cache line refills/writebacks.
  void read_block(Addr a, u8* dst, unsigned len) const;
  void write_block(Addr a, const u8* src, unsigned len);

  /// Number of resident 4 KiB pages (for tests).
  [[nodiscard]] std::size_t resident_pages() const { return pages_.size(); }

  /// Snapshot support: resident pages, serialized in ascending page order
  /// so the blob is byte-stable regardless of hash-map iteration order.
  void save_state(service::ByteWriter& w) const;
  void restore_state(service::ByteReader& r);

 private:
  [[nodiscard]] const u8* page_for_read(Addr a) const;
  [[nodiscard]] u8* page_for_write(Addr a);

  std::unordered_map<Addr, std::unique_ptr<u8[]>> pages_;
  static const u8 kZeroPage[kPageSize];
};

}  // namespace laec::mem
