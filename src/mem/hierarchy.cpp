#include "mem/hierarchy.hpp"

#include <cassert>

#include "service/wire.hpp"

namespace laec::mem {

MemorySystem::MemorySystem(const MemorySystemParams& params)
    : params_(params), l2_(params.l2.cache) {
  bus_ = std::make_unique<Bus>(params.bus, *this, params.num_requesters);
  n_l2_refetch_ = &stats_.counter("l2_refetches");
  n_l2_data_loss_ = &stats_.counter("l2_data_loss_events");
  n_l2_unrecovered_ = &stats_.counter("l2_unrecovered_reads");
}

unsigned MemorySystem::ensure_l2_line(Addr a) {
  if (l2_.contains(a)) return 0;
  const Addr base = l2_.line_base(a);
  refill_buf_.resize(l2_.line_bytes());  // no-op after the first miss
  memory_.read_block(base, refill_buf_.data(), l2_.line_bytes());
  auto ev = l2_.fill(base, refill_buf_.data(), /*dirty=*/false);
  unsigned extra = params_.l2.memory_cycles + params_.l2.refill_cycles;
  if (ev.has_value() && ev->dirty) {
    memory_.write_block(ev->line_addr, ev->data.data(),
                        static_cast<unsigned>(ev->data.size()));
    // The dirty victim's writeback overlaps the refill on real systems;
    // we charge the array write only.
    extra += params_.l2.write_cycles;
  }
  return extra;
}

WordRead MemorySystem::read_l2_word(Addr a, unsigned& lat) {
  SetAssocCache::LineRef line = l2_.find_line(a);
  WordRead w = l2_.read(line, a, 4);
  // Recovery on a detected error: drop the line and refetch the copy in
  // memory. For an uncorrectable error on a CLEAN line that copy is good
  // (lossless, like the L1 parity refetch); on a DIRTY line the writeback
  // data exists nowhere else — the refetch restores a stale image and the
  // event is logged as data loss (what a safety-critical system reports as
  // a DUE). Under kInvalidateRefetch even corrected clean words are
  // re-fetched rather than trusted. A fresh fault can strike the refetched
  // word too (random storms inject per access), so recovery loops — the
  // cap only bounds the pathological always-struck case, where the last
  // read's status is surfaced to the caller rather than retried forever.
  for (int attempt = 0; attempt < 4; ++attempt) {
    if (!needs_refetch(w.check, l2_.config().recovery, line.dirty())) {
      break;
    }
    if (w.check == ecc::CheckStatus::kDetectedUncorrectable &&
        line.dirty()) {
      ++*n_l2_data_loss_;
    }
    ++*n_l2_refetch_;
    l2_.invalidate(line);
    lat += ensure_l2_line(a);
    line = l2_.find_line(a);
    w = l2_.read(line, a, 4);
  }
  if (needs_refetch(w.check, l2_.config().recovery, line.dirty())) {
    // Every retry was re-struck (only reachable under pathological
    // injection rates): the word goes out as read, and the event is
    // accounted so the corruption is never mistaken for a clean serve.
    ++*n_l2_unrecovered_;
  }
  return w;
}

unsigned MemorySystem::service(BusTransaction& t) {
  switch (t.op) {
    case BusOp::kReadLine: {
      // Serve the requester's line size (L1 lines may be smaller or larger
      // than L2 lines); every spanned L2 line is made resident first.
      unsigned lat = params_.l2.hit_cycles;
      const u32 n = t.bytes >= 4 ? t.bytes : l2_.line_bytes();
      t.line.resize(n);
      // Read through the protected array word by word so the L2 codec (and
      // any injected L2 faults) take effect.
      for (u32 off = 0; off < n; off += 4) {
        lat += ensure_l2_line(t.addr + off);
        const WordRead w = read_l2_word(t.addr + off, lat);
        t.line[off + 0] = static_cast<u8>(w.value & 0xff);
        t.line[off + 1] = static_cast<u8>((w.value >> 8) & 0xff);
        t.line[off + 2] = static_cast<u8>((w.value >> 16) & 0xff);
        t.line[off + 3] = static_cast<u8>((w.value >> 24) & 0xff);
      }
      return lat;
    }
    case BusOp::kWriteLine: {
      // Dirty L1 eviction. When the payload exactly covers an L2 line,
      // write-validate: a full-line overwrite needs no memory fetch even
      // on an L2 miss. Otherwise merge through resident lines.
      unsigned lat = params_.l2.write_cycles;
      const u32 n = static_cast<u32>(t.line.size());
      if (n == l2_.line_bytes() && !l2_.contains(t.addr)) {
        auto ev = l2_.fill(t.addr, t.line.data(), /*dirty=*/true);
        if (ev.has_value() && ev->dirty) {
          memory_.write_block(ev->line_addr, ev->data.data(),
                              static_cast<unsigned>(ev->data.size()));
          lat += params_.l2.write_cycles;
        }
        return lat;
      }
      for (u32 off = 0; off < n; off += 4) {
        lat += ensure_l2_line(t.addr + off);
        u32 v = static_cast<u32>(t.line[off]) |
                (static_cast<u32>(t.line[off + 1]) << 8) |
                (static_cast<u32>(t.line[off + 2]) << 16) |
                (static_cast<u32>(t.line[off + 3]) << 24);
        l2_.write(t.addr + off, 4, v, /*mark_dirty=*/true);
      }
      return lat;
    }
    case BusOp::kWriteWord: {
      // Write-through store. The L2 is write-back write-allocate.
      unsigned lat = params_.l2.write_cycles;
      lat += ensure_l2_line(t.addr);
      l2_.write(t.addr, t.bytes, t.value, /*mark_dirty=*/true);
      return lat;
    }
  }
  assert(false && "unreachable");
  return 0;
}

void MemorySystem::flush_l2() {
  l2_.flush_dirty([this](Addr base, const u8* data) {
    memory_.write_block(base, data, l2_.line_bytes());
  });
}

void MemorySystem::save_state(service::ByteWriter& w) const {
  memory_.save_state(w);
  l2_.save_state(w);
  bus_->save_state(w);
  stats_.save_state(w);
}

void MemorySystem::restore_state(service::ByteReader& r) {
  memory_.restore_state(r);
  l2_.restore_state(r);
  bus_->restore_state(r);
  stats_.restore_state(r);
}

}  // namespace laec::mem
