#include "mem/memory.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "service/wire.hpp"

namespace laec::mem {

const u8 MainMemory::kZeroPage[MainMemory::kPageSize] = {};

const u8* MainMemory::page_for_read(Addr a) const {
  const Addr key = a >> kPageBits;
  auto it = pages_.find(key);
  return it == pages_.end() ? kZeroPage : it->second.get();
}

u8* MainMemory::page_for_write(Addr a) {
  const Addr key = a >> kPageBits;
  auto it = pages_.find(key);
  if (it == pages_.end()) {
    auto page = std::make_unique<u8[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    it = pages_.emplace(key, std::move(page)).first;
  }
  return it->second.get();
}

u8 MainMemory::read_u8(Addr a) const {
  return page_for_read(a)[a & (kPageSize - 1)];
}

u16 MainMemory::read_u16(Addr a) const {
  return static_cast<u16>(read_u8(a) | (read_u8(a + 1) << 8));
}

u32 MainMemory::read_u32(Addr a) const {
  return static_cast<u32>(read_u8(a)) | (static_cast<u32>(read_u8(a + 1)) << 8) |
         (static_cast<u32>(read_u8(a + 2)) << 16) |
         (static_cast<u32>(read_u8(a + 3)) << 24);
}

void MainMemory::write_u8(Addr a, u8 v) {
  page_for_write(a)[a & (kPageSize - 1)] = v;
}

void MainMemory::write_u16(Addr a, u16 v) {
  write_u8(a, static_cast<u8>(v & 0xff));
  write_u8(a + 1, static_cast<u8>(v >> 8));
}

void MainMemory::write_u32(Addr a, u32 v) {
  write_u8(a, static_cast<u8>(v & 0xff));
  write_u8(a + 1, static_cast<u8>((v >> 8) & 0xff));
  write_u8(a + 2, static_cast<u8>((v >> 16) & 0xff));
  write_u8(a + 3, static_cast<u8>((v >> 24) & 0xff));
}

void MainMemory::read_block(Addr a, u8* dst, unsigned len) const {
  for (unsigned i = 0; i < len; ++i) dst[i] = read_u8(a + i);
}

void MainMemory::write_block(Addr a, const u8* src, unsigned len) {
  for (unsigned i = 0; i < len; ++i) write_u8(a + i, src[i]);
}

void MainMemory::save_state(service::ByteWriter& w) const {
  std::vector<Addr> keys;
  keys.reserve(pages_.size());
  for (const auto& [key, page] : pages_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  w.put_u32(static_cast<u32>(keys.size()));
  for (const Addr key : keys) {
    w.put_u32(key);
    const u8* page = pages_.at(key).get();
    w.put_string(
        std::string_view(reinterpret_cast<const char*>(page), kPageSize));
  }
}

void MainMemory::restore_state(service::ByteReader& r) {
  pages_.clear();
  const u32 n = r.get_u32();
  for (u32 i = 0; i < n; ++i) {
    const Addr key = r.get_u32();
    const std::string data = r.get_string();
    if (data.size() != kPageSize) {
      throw service::WireError("snapshot: memory page size mismatch");
    }
    auto page = std::make_unique<u8[]>(kPageSize);
    std::memcpy(page.get(), data.data(), kPageSize);
    pages_.emplace(key, std::move(page));
  }
}

}  // namespace laec::mem
