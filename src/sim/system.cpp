#include "sim/system.hpp"

#include <cassert>

#include "service/wire.hpp"

namespace laec::sim {

Core::Core(unsigned id, const CoreConfig& cfg, mem::Bus& bus,
           cpu::TraceSource* trace)
    : id_(id), wbuf_(cfg.wbuf), trace_mode_(trace != nullptr) {
  dl1_ = std::make_unique<mem::DL1Controller>(cfg.dl1, bus, id);
  if (!trace_mode_) {
    l1i_ = std::make_unique<mem::L1IController>(cfg.l1i, bus, id);
  }
  pipe_ = std::make_unique<cpu::Pipeline>(cfg.pipeline, *dl1_, l1i_.get(),
                                          wbuf_, trace);
}

void Core::tick(Cycle now) {
  if (!pipe_->halted()) pipe_->cycle(now);

  // Write-buffer drain: one store progresses whenever the DL1 port was not
  // claimed by a load this cycle. Loads never overlap a drain because they
  // wait for the buffer to be empty (paper §III.B).
  if (!wbuf_.empty() && !pipe_->dl1_port_claimed(now)) {
    const mem::PendingStore& ps = wbuf_.front();
    const auto reply =
        dl1_->store(ps.addr, ps.bytes, ps.value, now,
                    ps.forced ? std::optional<bool>(ps.forced_hit)
                              : std::nullopt);
    if (reply.complete) wbuf_.pop();
  }
}

System::System(const SystemConfig& cfg, cpu::TraceSource* trace) : cfg_(cfg) {
  mem::MemorySystemParams mp = cfg.memsys;
  mp.num_requesters =
      cfg.num_cores + static_cast<unsigned>(cfg.traffic.size());
  memsys_ = std::make_unique<mem::MemorySystem>(mp);
  for (unsigned i = 0; i < cfg.num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(i, cfg.core, memsys_->bus(),
                                            i == 0 ? trace : nullptr));
  }
  for (std::size_t i = 0; i < cfg.traffic.size(); ++i) {
    traffic_.push_back(std::make_unique<TrafficGenerator>(
        cfg.num_cores + static_cast<unsigned>(i), memsys_->bus(),
        cfg.traffic[i]));
  }
}

void System::load_program(const isa::Program& p, unsigned core_id) {
  mem::MainMemory& m = memsys_->memory();
  for (std::size_t i = 0; i < p.text.size(); ++i) {
    m.write_u32(p.text_base + static_cast<Addr>(4 * i), p.text[i]);
  }
  for (std::size_t i = 0; i < p.data.size(); ++i) {
    m.write_u8(p.data_base + static_cast<Addr>(i), p.data[i]);
  }
  cores_[core_id]->start(p.entry);
}

void System::tick() {
  for (auto& c : cores_) c->tick(now_);
  for (auto& t : traffic_) t->tick(now_);
  memsys_->tick(now_);
  ++now_;
  flushed_ = false;  // simulation resumed; memory is no longer final
}

System::RunResult System::run(unsigned core_id) {
  RunResult r;
  while (!cores_[core_id]->halted() && now_ < cfg_.max_cycles) {
    tick();
  }
  r.completed = cores_[core_id]->halted();
  r.cycles = cores_[core_id]->pipeline().stats().value("cycles");
  return r;
}

void System::flush_all() {
  // Flushing is idempotent — after one pass every line is clean, the write
  // buffers are empty and the pending-writeback copies are retired — so a
  // repeat call (the self-check loop reads hundreds of words back to back)
  // would only re-walk every cache array to find nothing. Skip it until
  // the simulation advances again.
  if (flushed_) return;
  flushed_ = true;
  mem::MainMemory& m = memsys_->memory();
  // Age order, oldest copies first: L2 dirty lines, then dirty evictions
  // whose bus writeback is still in flight, then resident dirty DL1 lines,
  // and finally stores still sitting in the write buffers (a halted core
  // may stop simulating before its last stores drain).
  memsys_->flush_l2();
  for (auto& c : cores_) {
    const auto line_sink = [&](Addr base, const u8* data) {
      m.write_block(base, data, c->dl1().cache().line_bytes());
    };
    c->dl1().flush_pending_writeback(line_sink);
    c->dl1().flush_dirty(line_sink);
    while (!c->wbuf().empty()) {
      const mem::PendingStore& s = c->wbuf().front();
      switch (s.bytes) {
        case 1: m.write_u8(s.addr, static_cast<u8>(s.value)); break;
        case 2: m.write_u16(s.addr, static_cast<u16>(s.value)); break;
        default: m.write_u32(s.addr, s.value); break;
      }
      c->wbuf().pop();
    }
  }
}

u32 System::read_word_final(Addr a) {
  flush_all();
  return memsys_->memory().read_u32(a);
}

void Core::save_state(service::ByteWriter& w) const {
  dl1_->save_state(w);
  w.put_u8(l1i_ != nullptr ? 1 : 0);
  if (l1i_ != nullptr) l1i_->save_state(w);
  wbuf_.save_state(w);
  pipe_->save_state(w);
}

void Core::restore_state(service::ByteReader& r) {
  dl1_->restore_state(r);
  const bool has_l1i = r.get_u8() != 0;
  if (has_l1i != (l1i_ != nullptr)) {
    throw service::WireError("snapshot: core L1I presence mismatch");
  }
  if (l1i_ != nullptr) l1i_->restore_state(r);
  wbuf_.restore_state(r);
  pipe_->restore_state(r);
}

void System::save_state(service::ByteWriter& w) const {
  w.put_u64(now_);
  w.put_u32(static_cast<u32>(cores_.size()));
  for (const auto& c : cores_) c->save_state(w);
  w.put_u32(static_cast<u32>(traffic_.size()));
  for (const auto& t : traffic_) t->save_state(w);
  memsys_->save_state(w);
}

void System::restore_state(service::ByteReader& r) {
  now_ = r.get_u64();
  if (r.get_u32() != cores_.size()) {
    throw service::WireError("snapshot: core count mismatch");
  }
  for (auto& c : cores_) c->restore_state(r);
  if (r.get_u32() != traffic_.size()) {
    throw service::WireError("snapshot: traffic-generator count mismatch");
  }
  for (auto& t : traffic_) t->restore_state(r);
  memsys_->restore_state(r);
  flushed_ = false;  // restored state is mid-run; memory is not final
}

}  // namespace laec::sim
