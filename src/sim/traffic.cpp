#include "sim/traffic.hpp"

#include "service/wire.hpp"

namespace laec::sim {

TrafficGenerator::TrafficGenerator(unsigned requester_id, mem::Bus& bus,
                                   const TrafficPattern& pattern)
    : id_(requester_id), bus_(bus), pattern_(pattern) {}

void TrafficGenerator::tick(Cycle now) {
  if (pending_) {
    if (bus_.done(token_)) {
      bus_.take(token_);
      pending_ = false;
      ++completed_;
      next_submit_ = now + pattern_.gap_cycles;
    }
    return;
  }
  if (now < next_submit_) return;
  mem::BusTransaction t;
  t.requester = id_;
  t.op = pattern_.op;
  t.addr = pattern_.base + cursor_;
  if (t.op == mem::BusOp::kWriteLine) {
    t.line.assign(32, 0xa5);
  } else if (t.op == mem::BusOp::kWriteWord) {
    t.bytes = 4;
    t.value = 0xdeadbeef;
  }
  cursor_ = (cursor_ + pattern_.stride) % pattern_.footprint_bytes;
  token_ = bus_.submit(std::move(t), now);
  pending_ = true;
}

void TrafficGenerator::save_state(service::ByteWriter& w) const {
  w.put_u8(pending_ ? 1 : 0);
  w.put_u64(token_);
  w.put_u64(next_submit_);
  w.put_u32(cursor_);
  w.put_u64(completed_);
}

void TrafficGenerator::restore_state(service::ByteReader& r) {
  pending_ = r.get_u8() != 0;
  token_ = r.get_u64();
  next_submit_ = r.get_u64();
  cursor_ = r.get_u32();
  completed_ = r.get_u64();
}

}  // namespace laec::sim
