// Synthetic bus traffic generators.
//
// They model the *other* cores of the NGMP for contention studies (the
// paper's own experiments run a single active core, §IV; the motivation
// experiment E6 needs co-runners hammering the shared bus).
#pragma once

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "mem/bus.hpp"

namespace laec::sim {

struct TrafficPattern {
  /// Cycles between the completion of one transaction and the submission of
  /// the next (0 = back-to-back, maximum pressure).
  unsigned gap_cycles = 0;
  mem::BusOp op = mem::BusOp::kReadLine;
  Addr base = 0x4000'0000;
  u32 stride = 32;
  u32 footprint_bytes = 1u << 20;  ///< wrap the address stream
};

class TrafficGenerator {
 public:
  TrafficGenerator(unsigned requester_id, mem::Bus& bus,
                   const TrafficPattern& pattern);

  /// Advance one cycle: submit a new transaction when idle and the gap has
  /// elapsed; reap completed ones.
  void tick(Cycle now);

  [[nodiscard]] u64 transactions() const { return completed_; }

  /// Snapshot support: pending transaction token, pacing, address cursor.
  void save_state(service::ByteWriter& w) const;
  void restore_state(service::ByteReader& r);

 private:
  unsigned id_;
  mem::Bus& bus_;
  TrafficPattern pattern_;
  bool pending_ = false;
  mem::Bus::Token token_ = 0;
  Cycle next_submit_ = 0;
  Addr cursor_ = 0;
  u64 completed_ = 0;
};

}  // namespace laec::sim
