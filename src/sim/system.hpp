// Core and System: the full NGMP-like machine.
//
// A Core bundles one pipeline with its private L1I, DL1 and write buffer and
// runs the write-buffer drain state machine. A System instantiates N cores
// around the shared bus + L2 + memory, plus optional synthetic traffic
// generators, and owns the global cycle loop.
#pragma once

#include <memory>
#include <vector>

#include "cpu/pipeline.hpp"
#include "ecc/registry.hpp"
#include "mem/hierarchy.hpp"
#include "sim/traffic.hpp"

namespace laec::sim {

struct CoreConfig {
  cpu::PipelineParams pipeline;
  mem::L1Params dl1{
      .cache = {.name = "dl1",
                .size_bytes = 16 * 1024,
                .line_bytes = 32,
                .ways = 4,
                .write_policy = mem::WritePolicy::kWriteBack,
                .alloc_policy = mem::AllocPolicy::kWriteAllocate,
                .codec = ecc::make_codec("secded-39-32"),
                .scrub_on_correct = true},
      .oracle = {}};
  // The instruction cache is read-only: lines are refilled, never written,
  // so it carries no write/alloc policy — L1IController marks the array
  // read_only and recovers every detected error by invalidate-and-refetch.
  mem::L1Params l1i{
      .cache = {.name = "l1i",
                .size_bytes = 16 * 1024,
                .line_bytes = 32,
                .ways = 4,
                .codec = ecc::make_codec("parity-32"),
                .scrub_on_correct = false,
                .recovery = mem::RecoveryPolicy::kInvalidateRefetch},
      .oracle = {}};
  mem::WriteBufferParams wbuf;
};

class Core {
 public:
  Core(unsigned id, const CoreConfig& cfg, mem::Bus& bus,
       cpu::TraceSource* trace = nullptr);

  void start(Addr entry) { pipe_->start(entry); }
  void tick(Cycle now);
  [[nodiscard]] bool halted() const { return pipe_->halted(); }

  [[nodiscard]] cpu::Pipeline& pipeline() { return *pipe_; }
  [[nodiscard]] const cpu::Pipeline& pipeline() const { return *pipe_; }
  [[nodiscard]] mem::DL1Controller& dl1() { return *dl1_; }
  [[nodiscard]] mem::L1IController& l1i() { return *l1i_; }
  /// Trace (oracle) mode cores fetch from a synthetic source and keep no
  /// instruction cache; l1i() is only valid when this returns true.
  [[nodiscard]] bool has_l1i() const { return l1i_ != nullptr; }
  [[nodiscard]] mem::WriteBuffer& wbuf() { return wbuf_; }
  [[nodiscard]] unsigned id() const { return id_; }

  /// Snapshot support: DL1, L1I (when present), write buffer, pipeline.
  void save_state(service::ByteWriter& w) const;
  void restore_state(service::ByteReader& r);

 private:
  unsigned id_;
  std::unique_ptr<mem::DL1Controller> dl1_;
  std::unique_ptr<mem::L1IController> l1i_;
  mem::WriteBuffer wbuf_;
  std::unique_ptr<cpu::Pipeline> pipe_;
  bool trace_mode_ = false;
};

struct SystemConfig {
  unsigned num_cores = 1;
  CoreConfig core;
  mem::MemorySystemParams memsys;
  /// Co-runner traffic generators (requester ids follow the cores).
  std::vector<TrafficPattern> traffic;
  u64 max_cycles = 500'000'000;
};

class System {
 public:
  /// `trace` (optional) feeds core 0 synthetic operations instead of a
  /// program image fetched through its L1I.
  explicit System(const SystemConfig& cfg, cpu::TraceSource* trace = nullptr);

  [[nodiscard]] Core& core(unsigned i) { return *cores_[i]; }
  [[nodiscard]] unsigned num_cores() const {
    return static_cast<unsigned>(cores_.size());
  }
  [[nodiscard]] mem::MemorySystem& memsys() { return *memsys_; }

  /// Copy a program image into simulated memory and point core `core_id`'s
  /// fetch at its entry.
  void load_program(const isa::Program& p, unsigned core_id = 0);

  struct RunResult {
    u64 cycles = 0;       ///< cycles simulated by core 0's pipeline
    bool completed = false;  ///< halted before the max_cycles safety stop
  };

  /// Run until core `core_id` halts (or the cycle limit trips).
  RunResult run(unsigned core_id = 0);

  /// Advance the whole system one cycle.
  void tick();

  [[nodiscard]] Cycle now() const { return now_; }

  /// Stable pointer to the cycle counter, for observers (e.g. the residency
  /// recorder) that need to timestamp cache events without a System reference.
  [[nodiscard]] const Cycle* cycle_counter() const { return &now_; }

  /// Architecturally final word at `a`: flushes DL1s and the L2 into memory
  /// the first time it is called after a run, then reads memory.
  u32 read_word_final(Addr a);

  /// Flush every dirty line (all DL1s, then L2) into main memory. A no-op
  /// when nothing has simulated since the last flush (the state is already
  /// final); tick() re-arms it.
  void flush_all();

  /// Snapshot support (sim/snapshot.hpp wraps these in a versioned,
  /// checksummed frame): the cycle counter, every core, every traffic
  /// generator, and the memory system. The restore target must be built
  /// from the same configuration; injector/recorder attachments are not
  /// covered and must be re-made afterwards.
  void save_state(service::ByteWriter& w) const;
  void restore_state(service::ByteReader& r);

 private:
  SystemConfig cfg_;
  std::unique_ptr<mem::MemorySystem> memsys_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<TrafficGenerator>> traffic_;
  Cycle now_ = 0;
  bool flushed_ = false;  ///< memory is architecturally final right now
};

}  // namespace laec::sim
