#include "sim/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "service/wire.hpp"
#include "sim/system.hpp"

namespace laec::sim {

namespace {

// 8-byte frame magic; distinct from the checkpoint magic ("LAECCKP1") so a
// mixed-up file path fails loudly rather than parsing as garbage.
constexpr char kMagic[8] = {'L', 'A', 'E', 'C', 'S', 'N', 'P', '1'};

// FNV-1a folded over 8-byte little-endian chunks instead of single bytes
// (tail bytes one at a time). NOT the canonical byte-wise service::fnv1a —
// this frame has its own checksum definition, pinned by kSnapshotVersion.
// The golden run serializes hundreds of half-megabyte snapshots; a
// byte-at-a-time hash was the single largest capture cost, and corruption
// detection only needs mixing, not the canonical constant walk.
u64 chunked_fnv1a(std::string_view data) {
  u64 h = 1469598103934665603ull;
  const std::size_t whole = data.size() / 8;
  const char* p = data.data();
  for (std::size_t i = 0; i < whole; ++i) {
    u64 chunk;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&chunk, p + i * 8, 8);
    } else {
      chunk = 0;
      for (int j = 0; j < 8; ++j) {
        chunk |= static_cast<u64>(static_cast<u8>(p[i * 8 + j])) << (8 * j);
      }
    }
    h ^= chunk;
    h *= 1099511628211ull;
  }
  for (std::size_t i = whole * 8; i < data.size(); ++i) {
    h ^= static_cast<u8>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string save_system_state(const System& system) {
  service::ByteWriter payload;
  system.save_state(payload);

  service::ByteWriter head;
  head.put_u32(kSnapshotVersion);
  head.put_u64(chunked_fnv1a(payload.bytes()));

  std::string out;
  out.reserve(sizeof(kMagic) + head.bytes().size() + payload.bytes().size());
  out.append(kMagic, sizeof(kMagic));
  out += head.bytes();
  out += payload.bytes();
  return out;
}

void restore_system_state(System& system, std::string_view blob) {
  if (blob.size() < sizeof(kMagic) ||
      std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    throw service::WireError("snapshot: bad magic");
  }
  service::ByteReader head(blob.substr(sizeof(kMagic)));
  const u32 version = head.get_u32();
  if (version != kSnapshotVersion) {
    throw service::WireError("snapshot: version mismatch (blob v" +
                             std::to_string(version) + ", expected v" +
                             std::to_string(kSnapshotVersion) + ")");
  }
  const u64 checksum = head.get_u64();
  const std::string_view payload =
      blob.substr(sizeof(kMagic) + sizeof(u32) + sizeof(u64));
  if (chunked_fnv1a(payload) != checksum) {
    throw service::WireError("snapshot: checksum mismatch (corrupt blob)");
  }
  service::ByteReader r(payload);
  system.restore_state(r);
  r.expect_end();
}

void SnapshotStore::add(u64 ordinal, Cycle cycle, std::string blob) {
  auto entry = std::make_shared<Entry>();
  entry->seq = seq_ == 0 ? 0 : seq_ - 1;  // gate already advanced past us
  entry->ordinal = ordinal;
  entry->cycle = cycle;
  bytes_ += blob.size();
  entry->blob = std::make_shared<const std::string>(std::move(blob));
  entries_.push_back(std::move(entry));

  // Keep-every-k thinning: double the stride until the survivors fit. The
  // single-entry guard keeps one snapshot alive even when a lone blob
  // exceeds the whole budget (a useless store would be worse).
  while (budget_ != 0 && bytes_ > budget_ && entries_.size() > 1) {
    stride_ *= 2;
    std::vector<std::shared_ptr<const Entry>> kept;
    kept.reserve(entries_.size() / 2 + 1);
    u64 kept_bytes = 0;
    for (auto& e : entries_) {
      if (e->seq % stride_ == 0) {
        kept_bytes += e->blob->size();
        kept.push_back(std::move(e));
      }
    }
    entries_ = std::move(kept);
    bytes_ = kept_bytes;
  }
}

std::shared_ptr<const SnapshotStore::Entry> SnapshotStore::best_at_or_before(
    u64 ordinal) const {
  // Entries are ordinal-ascending; find the last one at or before.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), ordinal,
      [](u64 v, const std::shared_ptr<const Entry>& e) { return v < e->ordinal; });
  if (it == entries_.begin()) return nullptr;
  return *std::prev(it);
}

}  // namespace laec::sim
