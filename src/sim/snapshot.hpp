// Simulation state snapshots: capture/restore the complete deterministic
// state of a sim::System, and a budgeted store of golden-run checkpoints.
//
// The campaign engine's soundness argument (reliability/schedule.hpp) says
// every trial in a cell replays the identical instruction/traffic stream and
// pre-draws its whole fault storm, so a faulty trial's architectural state is
// bit-identical to the golden run's up to the trial's first live delivery.
// A snapshot taken by the golden run at consultation ordinal C therefore IS
// the state of any trial whose first delivery ordinal d satisfies C <= d:
// restoring it and fast-forwarding the injector cursor to C simulates only
// the suffix, and the rows stay byte-identical with fast-forward on or off.
//
// A snapshot covers everything that evolves during a run: cache arrays
// (words, check bits, tags, valid/dirty, LRU state) for DL1/L1I/L2, the
// write buffer, bus slots/queues, main-memory pages, pipeline slots and
// registers, the stride predictor, traffic generators, the cycle counter,
// and every per-component stat counter. It deliberately excludes wiring
// that the constructor re-derives from the config (codecs, LUTs, hot
// counter pointers) and the injector/recorder attachments, which the
// resume path re-attaches after restore.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace laec::sim {

class System;

/// Bumped whenever the serialized layout changes; restore rejects blobs
/// from any other version. Part of the service-job identity so a daemon
/// never resumes a campaign across a layout change.
inline constexpr u32 kSnapshotVersion = 1;

/// Serialize the full deterministic state of `system` into a framed blob
/// (magic + version + checksum + payload). Throws std::logic_error when the
/// system holds state the format cannot carry (chronogram recording on).
[[nodiscard]] std::string save_system_state(const System& system);

/// Restore a blob produced by save_system_state into `system`, which must
/// have been constructed from the same configuration (geometry mismatches
/// are detected and rejected). Throws service::WireError on bad magic,
/// version mismatch, checksum mismatch, or layout/geometry mismatch.
void restore_system_state(System& system, std::string_view blob);

/// Budgeted store of golden-run snapshots, ordered by consultation ordinal.
///
/// The golden run calls begin_capture() at every `every`-th consultation
/// threshold crossing and add()s the serialized state when the gate says
/// keep. When the byte budget would be exceeded the store thins itself to
/// keep-every-k: the keep stride doubles and every entry whose capture
/// sequence is off-stride is dropped, so density degrades uniformly over
/// the whole run (past and future captures alike) and deterministically —
/// the surviving set depends only on the capture sequence, never on timing.
class SnapshotStore {
 public:
  struct Entry {
    u64 seq = 0;      ///< capture sequence number (threshold-crossing index)
    u64 ordinal = 0;  ///< injector consultation ordinal at capture
    Cycle cycle = 0;  ///< system cycle at capture
    std::shared_ptr<const std::string> blob;
  };

  /// `every` = snapshot cadence in consultation ordinals (0 disables
  /// capture entirely); `budget_bytes` = total blob budget (0 = unlimited).
  explicit SnapshotStore(u64 every = 0, u64 budget_bytes = 0)
      : every_(every), budget_(budget_bytes) {}

  /// Capture cadence in consultation ordinals (0 = capture disabled).
  [[nodiscard]] u64 every() const { return every_; }

  /// The capture gate: advances the capture sequence and returns whether
  /// this threshold crossing should be serialized (i.e. it is on-stride).
  /// The caller serializes and add()s only when this returns true, so the
  /// cost of an off-stride crossing is one modulo.
  [[nodiscard]] bool begin_capture() {
    const bool keep = seq_ % stride_ == 0;
    ++seq_;
    return keep;
  }

  /// Record a captured snapshot; entries must arrive in ascending ordinal
  /// order (the golden run is sequential). Thins to budget afterwards.
  void add(u64 ordinal, Cycle cycle, std::string blob);

  /// Latest entry with entry->ordinal <= ordinal, or null when none exists.
  [[nodiscard]] std::shared_ptr<const Entry> best_at_or_before(
      u64 ordinal) const;

  /// Surviving entries, ordinal-ascending (tests and diagnostics walk this).
  [[nodiscard]] const std::vector<std::shared_ptr<const Entry>>& entries()
      const {
    return entries_;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] u64 bytes() const { return bytes_; }
  /// Current keep-every-k stride (1 until the budget forces thinning).
  [[nodiscard]] u64 stride() const { return stride_; }

 private:
  u64 every_ = 0;
  u64 budget_ = 0;
  u64 seq_ = 0;     // capture sequence counter (counts every gate call)
  u64 stride_ = 1;  // keep captures whose seq % stride_ == 0
  u64 bytes_ = 0;
  std::vector<std::shared_ptr<const Entry>> entries_;
};

}  // namespace laec::sim
