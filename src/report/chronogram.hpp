// Pipeline chronogram recording and paper-style rendering.
//
// The recorder is fed one (instruction, stage) cell per simulated cycle by
// the pipeline; the renderer reproduces the figures of the paper (Figs. 2-5
// and 7) either as the compact stage sequence ("F D RA Exe Exe M Exc WB") or
// as a cycle-aligned grid.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace laec::report {

struct ChronoRow {
  Seq seq = 0;
  std::string label;                                  ///< e.g. "r3 = load(r1+r2)"
  std::vector<std::pair<Cycle, std::string>> cells;   ///< (cycle, stage name)
};

class ChronogramRecorder {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Record that instruction `seq` (described by `label` on first sighting)
  /// occupied stage `stage` during `cycle`.
  void record(Seq seq, const std::string& label, Cycle cycle,
              const std::string& stage);

  /// Drop rows of squashed (wrong-path) instructions.
  void erase(Seq seq);

  [[nodiscard]] const std::vector<ChronoRow>& rows() const { return rows_; }

  /// Compact stage string of instruction `seq`, e.g. "F D RA Exe Exe M Exc WB".
  [[nodiscard]] std::string compact(Seq seq) const;

  void clear() { rows_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<ChronoRow> rows_;  // ordered by seq (appended in order)
};

/// Cycle-aligned grid rendering of all recorded rows (paper-figure style).
[[nodiscard]] std::string render_grid(const ChronogramRecorder& rec,
                                      unsigned label_width = 24);

}  // namespace laec::report
