#include "report/chronogram.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace laec::report {

void ChronogramRecorder::record(Seq seq, const std::string& label, Cycle cycle,
                                const std::string& stage) {
  if (!enabled_) return;
  auto it = std::find_if(rows_.rbegin(), rows_.rend(),
                         [&](const ChronoRow& r) { return r.seq == seq; });
  if (it == rows_.rend()) {
    rows_.push_back({seq, label, {{cycle, stage}}});
  } else {
    if (it->label == "(fetch)" && label != "(fetch)") it->label = label;
    it->cells.emplace_back(cycle, stage);
  }
}

void ChronogramRecorder::erase(Seq seq) {
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                             [&](const ChronoRow& r) { return r.seq == seq; }),
              rows_.end());
}

std::string ChronogramRecorder::compact(Seq seq) const {
  for (const ChronoRow& r : rows_) {
    if (r.seq != seq) continue;
    std::string out;
    for (const auto& [cycle, stage] : r.cells) {
      if (!out.empty()) out += " ";
      out += stage;
    }
    return out;
  }
  return "";
}

std::string render_grid(const ChronogramRecorder& rec, unsigned label_width) {
  Cycle min_c = kNeverCycle;
  Cycle max_c = 0;
  for (const ChronoRow& r : rec.rows()) {
    for (const auto& [cycle, stage] : r.cells) {
      min_c = std::min(min_c, cycle);
      max_c = std::max(max_c, cycle);
    }
  }
  if (rec.rows().empty() || min_c == kNeverCycle) return "";

  constexpr unsigned kCellW = 4;  // "Exe " is the widest stage name
  std::ostringstream os;
  os << std::left << std::setw(static_cast<int>(label_width)) << "cycle";
  for (Cycle c = min_c; c <= max_c; ++c) {
    os << std::left << std::setw(kCellW) << (c - min_c + 1);
  }
  os << "\n";
  for (const ChronoRow& r : rec.rows()) {
    std::string label = r.label;
    if (label.size() > label_width - 1) label.resize(label_width - 1);
    os << std::left << std::setw(static_cast<int>(label_width)) << label;
    std::vector<std::string> cells(static_cast<std::size_t>(max_c - min_c + 1));
    for (const auto& [cycle, stage] : r.cells) {
      cells[static_cast<std::size_t>(cycle - min_c)] = stage;
    }
    for (const auto& cell : cells) {
      os << std::left << std::setw(kCellW) << (cell.empty() ? "." : cell);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace laec::report
