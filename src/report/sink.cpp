#include "report/sink.hpp"

#include <cstdio>

namespace laec::report {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::begin(const std::vector<std::string>& headers) {
  line(headers);
}

void CsvWriter::row(const std::vector<std::string>& cells) { line(cells); }

namespace {

/// Length of a well-formed UTF-8 sequence starting at s[i] (2-4 bytes,
/// shortest-form, no surrogates, <= U+10FFFF), or 0 when the bytes are not
/// valid UTF-8. Continuation-range narrowing per the Unicode table: the
/// FIRST continuation byte's legal range depends on the lead byte (rejects
/// overlongs like C0 AF, surrogates ED A0.., and F4 90.. > U+10FFFF).
std::size_t utf8_sequence_len(const std::string& s, std::size_t i) {
  const auto at = [&s](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char lead = at(i);
  std::size_t cont = 0;
  unsigned char lo = 0x80, hi = 0xbf;
  if (lead >= 0xc2 && lead <= 0xdf) {
    cont = 1;
  } else if (lead == 0xe0) {
    cont = 2, lo = 0xa0;
  } else if ((lead >= 0xe1 && lead <= 0xec) || lead == 0xee || lead == 0xef) {
    cont = 2;
  } else if (lead == 0xed) {
    cont = 2, hi = 0x9f;
  } else if (lead == 0xf0) {
    cont = 3, lo = 0x90;
  } else if (lead >= 0xf1 && lead <= 0xf3) {
    cont = 3;
  } else if (lead == 0xf4) {
    cont = 3, hi = 0x8f;
  } else {
    return 0;  // lone continuation byte, overlong lead (C0/C1), F5..FF
  }
  if (i + cont >= s.size()) return 0;  // truncated sequence
  if (at(i + 1) < lo || at(i + 1) > hi) return 0;
  for (std::size_t k = 2; k <= cont; ++k) {
    if (at(i + k) < 0x80 || at(i + k) > 0xbf) return 0;
  }
  return cont + 1;
}

}  // namespace

std::string JsonLinesWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    const unsigned char uc = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    if (uc < 0x20 || uc == 0x7f) {
      // Control characters INCLUDING DEL escape numerically. The cast
      // matters: a signed char would sign-extend and print garbage hex.
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(uc));
      out += buf;
      ++i;
    } else if (uc < 0x80) {
      out += c;
      ++i;
    } else if (const std::size_t len = utf8_sequence_len(s, i); len > 0) {
      // Well-formed multi-byte UTF-8 passes through verbatim.
      out.append(s, i, len);
      i += len;
    } else {
      // Invalid byte: substitute U+FFFD (as an escape, so the emitted line
      // is pure ASCII JSON) and resync at the next byte. Emitting the raw
      // byte would make the whole row malformed JSON.
      out += "\\ufffd";
      ++i;
    }
  }
  return out;
}

void JsonLinesWriter::begin(const std::vector<std::string>& headers) {
  headers_ = headers;
}

void JsonLinesWriter::row(const std::vector<std::string>& cells) {
  out_ << '{';
  for (std::size_t i = 0; i < cells.size() && i < headers_.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << '"' << escape(headers_[i]) << "\":\"" << escape(cells[i]) << '"';
  }
  out_ << "}\n";
}

std::unique_ptr<RowWriter> make_row_writer(const std::string& format,
                                           std::ostream& out) {
  if (format == "csv") return std::make_unique<CsvWriter>(out);
  if (format == "json" || format == "jsonl") {
    return std::make_unique<JsonLinesWriter>(out);
  }
  return nullptr;
}

}  // namespace laec::report
