#include "report/sink.hpp"

#include <cstdio>

namespace laec::report {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::begin(const std::vector<std::string>& headers) {
  line(headers);
}

void CsvWriter::row(const std::vector<std::string>& cells) { line(cells); }

std::string JsonLinesWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonLinesWriter::begin(const std::vector<std::string>& headers) {
  headers_ = headers;
}

void JsonLinesWriter::row(const std::vector<std::string>& cells) {
  out_ << '{';
  for (std::size_t i = 0; i < cells.size() && i < headers_.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << '"' << escape(headers_[i]) << "\":\"" << escape(cells[i]) << '"';
  }
  out_ << "}\n";
}

std::unique_ptr<RowWriter> make_row_writer(const std::string& format,
                                           std::ostream& out) {
  if (format == "csv") return std::make_unique<CsvWriter>(out);
  if (format == "json" || format == "jsonl") {
    return std::make_unique<JsonLinesWriter>(out);
  }
  return nullptr;
}

}  // namespace laec::report
