// Streaming row sinks for experiment results.
//
// A RowWriter receives a header once and then one row at a time; CsvWriter
// emits RFC-4180-style CSV and JsonLinesWriter one JSON object per row
// (easy to cat into pandas / jq). Writers are not thread-safe: drivers that
// run points concurrently (runner::run_sweep) serialize emission and keep
// rows in deterministic grid order regardless of thread count.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace laec::report {

class RowWriter {
 public:
  virtual ~RowWriter() = default;

  /// Emit the header. Must be called exactly once, before any row.
  virtual void begin(const std::vector<std::string>& headers) = 0;

  /// Emit one row; `cells` must match the header arity.
  virtual void row(const std::vector<std::string>& cells) = 0;

  /// Flush any trailing output (idempotent; called by destructor-sites).
  virtual void end() {}

  /// Has every write so far actually reached the stream? ENOSPC/EIO set
  /// the underlying ostream's badbit, which is sticky — drivers check
  /// this after a run and turn a silently truncated result file into a
  /// hard error. Writers over healthy streams always return true.
  [[nodiscard]] virtual bool ok() const { return true; }
};

/// CSV with minimal quoting (fields containing `,` `"` or newlines are
/// quoted, embedded quotes doubled).
class CsvWriter final : public RowWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}
  void begin(const std::vector<std::string>& headers) override;
  void row(const std::vector<std::string>& cells) override;
  void end() override { out_.flush(); }
  [[nodiscard]] bool ok() const override { return out_.good(); }

  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  void line(const std::vector<std::string>& cells);
  std::ostream& out_;
};

/// One JSON object per line ("JSON Lines"); keys come from the header.
class JsonLinesWriter final : public RowWriter {
 public:
  explicit JsonLinesWriter(std::ostream& out) : out_(out) {}
  void begin(const std::vector<std::string>& headers) override;
  void row(const std::vector<std::string>& cells) override;
  void end() override { out_.flush(); }
  [[nodiscard]] bool ok() const override { return out_.good(); }

  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  std::ostream& out_;
  std::vector<std::string> headers_;
};

/// Factory: `format` is "csv" or "jsonl"/"json". Returns nullptr for an
/// unknown format.
[[nodiscard]] std::unique_ptr<RowWriter> make_row_writer(
    const std::string& format, std::ostream& out);

}  // namespace laec::report
