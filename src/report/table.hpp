// Small table formatter used by the benchmark harnesses to print paper-style
// tables (fixed-width text, markdown, CSV).
#pragma once

#include <string>
#include <vector>

namespace laec::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_markdown() const;
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Format a double with `prec` decimals.
  [[nodiscard]] static std::string num(double v, int prec = 2);
  /// Format a ratio as a percentage string, e.g. 0.173 -> "17.3%".
  [[nodiscard]] static std::string pct(double ratio, int prec = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace laec::report
