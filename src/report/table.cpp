#include "report/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace laec::report {

Table& Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(width[c], '-') + "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  os << "|";
  for (const auto& h : headers_) os << " " << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << "\n";
  for (const auto& row : rows_) {
    os << "|";
    for (const auto& cell : row) os << " " << cell << " |";
    os << "\n";
  }
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string Table::pct(double ratio, int prec) {
  return num(ratio * 100.0, prec) + "%";
}

}  // namespace laec::report
