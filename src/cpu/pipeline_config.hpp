// Configuration vocabulary for the in-order pipeline and its DL1 ECC
// deployment — the four schemes the paper compares plus the write-through
// baseline from the motivation section.
#pragma once

#include <optional>
#include <string_view>

#include "common/types.hpp"
#include "isa/program.hpp"

namespace laec::cpu {

/// How DL1 error protection is deployed (paper §II.B, §III).
enum class EccPolicy : u8 {
  /// Ideal unprotected write-back DL1 (the paper's baseline; 7 stages).
  kNoEcc,
  /// Memory stage spans two cycles on DL1 load hits (§III.C; 7 stages).
  kExtraCycle,
  /// Eighth pipeline stage checks DL1 load-hit data (§III.D; 8 stages).
  kExtraStage,
  /// Look-Ahead Error Correction: anticipate address generation, DL1 access
  /// and ECC check by one cycle when hazards allow (§III.E; 8 stages).
  kLaec,
  /// Write-through DL1 + parity, SECDED in L2 — the classic LEON arrangement
  /// (§II.A; 7 stages). Loads behave like kNoEcc; every store crosses the bus.
  kWtParity,
};

[[nodiscard]] constexpr std::string_view to_string(EccPolicy p) {
  switch (p) {
    case EccPolicy::kNoEcc: return "no-ecc";
    case EccPolicy::kExtraCycle: return "extra-cycle";
    case EccPolicy::kExtraStage: return "extra-stage";
    case EccPolicy::kLaec: return "laec";
    case EccPolicy::kWtParity: return "wt-parity";
  }
  // Every enumerator is handled above; reaching here is a caller bug.
  return "invalid-ecc-policy";
}

/// Inverse of to_string(EccPolicy); nullopt for unknown spellings.
[[nodiscard]] constexpr std::optional<EccPolicy> ecc_policy_from_string(
    std::string_view s) {
  if (s == "no-ecc") return EccPolicy::kNoEcc;
  if (s == "extra-cycle") return EccPolicy::kExtraCycle;
  if (s == "extra-stage") return EccPolicy::kExtraStage;
  if (s == "laec") return EccPolicy::kLaec;
  if (s == "wt-parity") return EccPolicy::kWtParity;
  return std::nullopt;
}

/// Does the policy add an 8th (ECC) pipeline stage?
[[nodiscard]] constexpr bool has_ecc_stage(EccPolicy p) {
  return p == EccPolicy::kExtraStage || p == EccPolicy::kLaec;
}

/// When may LAEC anticipate a load (DESIGN.md §2)?
enum class HazardRule : u8 {
  /// Operand-earliness model: anticipate iff every address source is
  /// available (register file or bypass) by the end of the cycle before RA.
  /// Subsumes and refines the paper's stated rule.
  kExact,
  /// kExact plus the paper's literal distance-1 producer check only —
  /// anticipation is additionally denied when the immediately preceding
  /// instruction writes an address source, even if (through bubbles) its
  /// value would arrive in time.
  kPaperLiteral,
};

[[nodiscard]] constexpr std::string_view to_string(HazardRule r) {
  switch (r) {
    case HazardRule::kExact: return "exact";
    case HazardRule::kPaperLiteral: return "paper";
  }
  return "invalid-hazard-rule";
}

/// Inverse of to_string(HazardRule); nullopt for unknown spellings.
[[nodiscard]] constexpr std::optional<HazardRule> hazard_rule_from_string(
    std::string_view s) {
  if (s == "exact") return HazardRule::kExact;
  if (s == "paper") return HazardRule::kPaperLiteral;
  return std::nullopt;
}

/// Whether non-memory instructions traverse the ECC stage slot in LAEC mode
/// (the paper's Figs. 7a/7b disagree on this cell; timing is unaffected).
enum class EccSlotPolicy : u8 {
  kAuto,    ///< skip the ECC slot when the Exception stage is free (Fig. 7a)
  kAlways,  ///< always traverse (Fig. 7b's first row)
};

struct PipelineParams {
  EccPolicy ecc = EccPolicy::kNoEcc;
  HazardRule hazard_rule = HazardRule::kExact;
  EccSlotPolicy ecc_slot = EccSlotPolicy::kAuto;

  /// EX-stage occupancy of multiply / divide (the LEON4 divider is iterative
  /// and non-pipelined; divide-heavy EEMBC kernels feel this).
  unsigned mul_latency = 1;
  unsigned div_latency = 12;

  /// Extension (beyond the paper, which mentions but does not evaluate
  /// prefetcher-style prediction in §III.A): when the exact look-ahead is
  /// blocked by a data hazard, let a confident stride prediction read the
  /// DL1 early anyway, verified against the real address in the same EX
  /// cycle (no flush hardware; a mispredict merely replays from M).
  bool stride_predictor = false;

  /// Allow LAEC anticipation while an older unresolved branch is in EX.
  /// The anticipated DL1 read happens in the load's own EX stage, one cycle
  /// after any distance-1 branch resolves, so this is safe; disable to model
  /// a conservative implementation that also suppresses the early *address
  /// computation* under a branch shadow.
  bool lookahead_under_branch_shadow = true;

  bool record_chronogram = false;

  /// Safety stop for runaway simulations (0 = unlimited).
  u64 max_cycles = 0;
};

}  // namespace laec::cpu
