#include "cpu/pipeline.hpp"

#include <cassert>
#include <stdexcept>

#include "core/lookahead.hpp"
#include "core/predictor.hpp"
#include "isa/disasm.hpp"
#include "service/wire.hpp"

namespace laec::cpu {

std::string_view stage_name(Stage s) {
  switch (s) {
    case kF: return "F";
    case kD: return "D";
    case kRA: return "RA";
    case kEX: return "Exe";
    case kM: return "M";
    case kEC: return "ECC";
    case kXC: return "Exc";
    case kWB: return "WB";
    default: return "?";
  }
}

Pipeline::Pipeline(const PipelineParams& params, mem::DL1Controller& dl1,
                   mem::L1IController* l1i, mem::WriteBuffer& wbuf,
                   TraceSource* trace)
    : params_(params), dl1_(dl1), l1i_(l1i), wbuf_(wbuf), trace_(trace) {
  assert((trace_ != nullptr || l1i_ != nullptr) &&
         "need an L1I (program mode) or a trace source");
  lookahead_ = std::make_unique<core::LookaheadUnit>(params_);
  if (params_.stride_predictor) {
    predictor_ = std::make_unique<core::StridePredictor>();
  }
  chrono_.set_enabled(params_.record_chronogram);

  c_cycles_ = &stats_.counter("cycles");
  c_instructions_ = &stats_.counter("instructions");
  c_loads_ = &stats_.counter("loads");
  c_load_hits_ = &stats_.counter("load_hits");
  c_stores_ = &stats_.counter("stores");
  c_branches_ = &stats_.counter("branches");
  c_taken_ = &stats_.counter("taken_branches");
  c_squashed_ = &stats_.counter("squashed");
  c_dep_loads_ = &stats_.counter("dep_loads");
  c_stall_operand_ = &stats_.counter("stall_ex_operand");
  c_stall_load_use_ = &stats_.counter("stall_ex_load_use");
  c_stall_struct_m_ = &stats_.counter("stall_ex_structural_m");
  c_stall_wb_drain_ = &stats_.counter("stall_wb_drain");
  c_stall_wb_full_ = &stats_.counter("stall_wb_full");
  c_stall_miss_ = &stats_.counter("stall_dl1_miss");
  c_stall_imiss_ = &stats_.counter("stall_l1i_miss");
  c_la_anticipated_ = &stats_.counter("laec_anticipated");
  c_la_data_hazard_ = &stats_.counter("laec_data_hazard");
  c_la_resource_hazard_ = &stats_.counter("laec_resource_hazard");
  c_la_fallback_ = &stats_.counter("laec_dynamic_fallback");
  c_la_miss_cancel_ = &stats_.counter("laec_miss_cancel");
  c_la_shadow_ = &stats_.counter("laec_branch_shadow");
  c_due_events_ = &stats_.counter("due_events");
  c_pred_used_ = &stats_.counter("pred_used");
  c_pred_wrong_ = &stats_.counter("pred_mispredict");
  c_pred_blocked_ = &stats_.counter("pred_blocked");
}

void Pipeline::train_predictor(Slot& s) {
  if (predictor_ == nullptr || s.predictor_trained) return;
  s.predictor_trained = true;
  predictor_->train(s.pc, s.eff_addr);
}

Pipeline::~Pipeline() = default;

void Pipeline::start(Addr entry) {
  for (Slot& s : slots_) s = Slot{};
  regs_.fill(0);
  reg_write_stamp_.fill(0);
  fetch_pc_ = entry;
  next_seq_ = 0;
  fetch_stopped_ = false;
  ifetch_inflight_ = false;
  ifetch_discard_ = false;
  halted_ = false;
  dl1_port_cycle_ = kNeverCycle;
  dep_watch_ = {};
}

const Pipeline::Slot* Pipeline::find_seq(Seq seq) const {
  for (const Slot& s : slots_) {
    if (s.valid && s.seq == seq) return &s;
  }
  return nullptr;
}

const Pipeline::Slot* Pipeline::youngest_writer(u8 r, Seq reader_seq) const {
  if (r == 0) return nullptr;  // r0 is constant
  const Slot* best = nullptr;
  for (const Slot& s : slots_) {
    if (!s.valid || s.seq >= reader_seq) continue;
    const auto dest = s.inst.dest();
    if (!dest.has_value() || *dest != r) continue;
    if (best == nullptr || s.seq > best->seq) best = &s;
  }
  return best;
}

bool Pipeline::operand_ready(u8 r, Seq reader_seq, Cycle use_cycle) const {
  const Slot* w = youngest_writer(r, reader_seq);
  if (w == nullptr) return true;  // value is architectural
  return w->ready_end != kNeverCycle && w->ready_end + 1 <= use_cycle;
}

bool Pipeline::all_exec_srcs_ready(const Slot& s, Cycle use_cycle) const {
  for (const auto& src : s.inst.exec_srcs()) {
    if (src.has_value() && !operand_ready(*src, s.seq, use_cycle)) {
      return false;
    }
  }
  return true;
}

void Pipeline::write_result(Slot& s, u32 value, Cycle ready_end) {
  const auto dest = s.inst.dest();
  if (dest.has_value() && s.seq + 1 >= reg_write_stamp_[*dest]) {
    regs_[*dest] = value;
    reg_write_stamp_[*dest] = s.seq + 1;
  }
  s.ready_end = ready_end;
}

u32 Pipeline::extend_load(const isa::DecodedInst& d, u32 raw) {
  switch (d.op) {
    case isa::Op::kLb:
      return static_cast<u32>(static_cast<i32>(static_cast<i8>(raw & 0xff)));
    case isa::Op::kLbu:
      return raw & 0xff;
    case isa::Op::kLh:
      return static_cast<u32>(
          static_cast<i32>(static_cast<i16>(raw & 0xffff)));
    case isa::Op::kLhu:
      return raw & 0xffff;
    default:
      return raw;
  }
}

void Pipeline::finish_load(Slot& s, u32 raw, Cycle ready_end) {
  write_result(s, extend_load(s.inst, raw), ready_end);
}

u32 Pipeline::compute_alu(const isa::DecodedInst& d) const {
  const u32 a = src_value(d.rs1);
  const u32 b = d.uses_imm ? static_cast<u32>(d.imm) : src_value(d.rs2);
  switch (d.op) {
    case isa::Op::kAdd: return a + b;
    case isa::Op::kSub: return a - b;
    case isa::Op::kAnd: return a & b;
    case isa::Op::kOr: return a | b;
    case isa::Op::kXor: return a ^ b;
    case isa::Op::kSll: return a << (b & 31u);
    case isa::Op::kSrl: return a >> (b & 31u);
    case isa::Op::kSra:
      return static_cast<u32>(static_cast<i32>(a) >> (b & 31u));
    case isa::Op::kSlt:
      return static_cast<i32>(a) < static_cast<i32>(b) ? 1u : 0u;
    case isa::Op::kSltu: return a < b ? 1u : 0u;
    case isa::Op::kMul:
      return static_cast<u32>(static_cast<u64>(a) * static_cast<u64>(b));
    case isa::Op::kMulh:
      return static_cast<u32>(
          (static_cast<i64>(static_cast<i32>(a)) *
           static_cast<i64>(static_cast<i32>(b))) >> 32);
    case isa::Op::kDiv: {
      if (b == 0) return ~u32{0};
      const i64 q = static_cast<i64>(static_cast<i32>(a)) /
                    static_cast<i64>(static_cast<i32>(b));
      return static_cast<u32>(q);
    }
    case isa::Op::kRem: {
      if (b == 0) return a;
      const i64 r = static_cast<i64>(static_cast<i32>(a)) %
                    static_cast<i64>(static_cast<i32>(b));
      return static_cast<u32>(r);
    }
    case isa::Op::kLui:
      return static_cast<u32>(d.imm) << 12;
    default:
      return 0;
  }
}

bool Pipeline::branch_taken(const isa::DecodedInst& d) const {
  const u32 a = src_value(d.rs1);
  const u32 b = src_value(d.rs2);
  switch (d.op) {
    case isa::Op::kBeq: return a == b;
    case isa::Op::kBne: return a != b;
    case isa::Op::kBlt: return static_cast<i32>(a) < static_cast<i32>(b);
    case isa::Op::kBge: return static_cast<i32>(a) >= static_cast<i32>(b);
    case isa::Op::kBltu: return a < b;
    case isa::Op::kBgeu: return a >= b;
    default: return false;
  }
}

void Pipeline::squash_younger_than(Seq seq, Addr new_pc, Cycle now) {
  (void)now;
  for (unsigned st = kF; st <= kRA; ++st) {
    Slot& s = slots_[st];
    if (s.valid && s.seq > seq) {
      chrono_.erase(s.seq);
      ++*c_squashed_;
      if (st == kF && !s.fetch_done && ifetch_inflight_) {
        ifetch_inflight_ = false;
        ifetch_discard_ = true;  // keep polling the L1I until it settles
        ifetch_discard_addr_ = s.pc;
      }
      s.release();
    }
  }
  fetch_pc_ = new_pc;
  fetch_stopped_ = false;  // a wrong-path HALT may have stopped fetch
  redirect_cycle_ = now;   // fetch restarts at the target next cycle
}

void Pipeline::record_all(Cycle now) {
  if (!chrono_.enabled()) return;
  for (unsigned st = kF; st < kNumStages; ++st) {
    Slot& s = slots_[st];
    if (!s.valid) continue;
    if (s.label.empty()) {
      s.label = s.fetch_done ? isa::paper_style(s.inst) : "(fetch)";
    } else if (s.fetch_done && s.label == "(fetch)") {
      s.label = isa::paper_style(s.inst);
    }
    chrono_.record(s.seq, s.label, now, std::string(stage_name(
        static_cast<Stage>(st))));
  }
}

// ---------------------------------------------------------------------------
// Stage processing
// ---------------------------------------------------------------------------

void Pipeline::retire_characterize(const Slot& s) {
  // Watch expiry / consumption for Table II's "% of dependent loads".
  for (DepWatch& w : dep_watch_) {
    if (w.remaining <= 0) continue;
    bool consumes = false;
    for (const auto& src : s.inst.exec_srcs()) {
      if (src.has_value() && *src == w.reg) consumes = true;
    }
    const auto sd = s.inst.store_data_src();
    if (sd.has_value() && *sd == w.reg) consumes = true;
    if (consumes && !w.counted) {
      w.counted = true;
      ++*c_dep_loads_;
    }
    // A redefinition kills the watched value (unless this instruction also
    // consumed it, which we already counted).
    const auto dest = s.inst.dest();
    if (dest.has_value() && *dest == w.reg) {
      w.remaining = 0;
      continue;
    }
    --w.remaining;
  }

  if (s.inst.is_load()) {
    const auto dest = s.inst.dest();
    if (dest.has_value()) {
      // Reuse the expired (or least-recent) watch slot.
      DepWatch* victim = &dep_watch_[0];
      for (DepWatch& w : dep_watch_) {
        if (w.remaining <= 0) {
          victim = &w;
          break;
        }
      }
      *victim = DepWatch{*dest, 2, false, false};
    }
  }
}

void Pipeline::do_retire(Cycle now) {
  (void)now;
  Slot& s = slots_[kWB];
  if (!s.valid) return;
  ++*c_instructions_;
  retire_characterize(s);
  switch (s.inst.cls()) {
    case isa::OpClass::kLoad:
      ++*c_loads_;
      if (s.load_hit) ++*c_load_hits_;
      switch (s.la_outcome) {
        case LookaheadOutcome::kAnticipated: ++*c_la_anticipated_; break;
        case LookaheadOutcome::kDataHazard: ++*c_la_data_hazard_; break;
        case LookaheadOutcome::kResourceHazard: ++*c_la_resource_hazard_; break;
        case LookaheadOutcome::kBranchShadow: ++*c_la_shadow_; break;
        case LookaheadOutcome::kDynamicFallback: ++*c_la_fallback_; break;
        case LookaheadOutcome::kPolicyOff: break;
      }
      break;
    case isa::OpClass::kStore:
      ++*c_stores_;
      break;
    case isa::OpClass::kBranch:
    case isa::OpClass::kJump:
      ++*c_branches_;
      break;
    case isa::OpClass::kHalt:
      halted_ = true;
      break;
    default:
      break;
  }
  s.release();
}

void Pipeline::do_xc(Cycle now) {
  (void)now;
  Slot& s = slots_[kXC];
  if (!s.valid) return;
  // The exception stage reports detected-uncorrectable errors; data loss
  // accounting happens in the DL1 controller. Pass through.
  if (!slots_[kWB].valid) {
    slots_[kWB] = std::move(s);
    s.release();
  }
}

void Pipeline::do_ec(Cycle now) {
  Slot& s = slots_[kEC];
  if (!s.valid) return;
  // The ECC stage: checked load-hit data becomes bypassable at the end of
  // this cycle (Extra Stage / LAEC fallback path).
  if (s.inst.is_load() && s.mem_done && !s.ecc_checked) {
    finish_load(s, s.store_data /*holds raw load value*/, now);
    s.ecc_checked = true;
  }
  if (!slots_[kXC].valid) {
    slots_[kXC] = std::move(s);
    s.release();
  }
}

void Pipeline::do_m(Cycle now) {
  Slot& s = slots_[kM];
  if (!s.valid) return;

  if (!s.mem_done) {
    if (s.inst.is_load()) {
      assert(!s.anticipated && "anticipated loads access DL1 in EX");
      if (!wbuf_.empty()) {
        ++*c_stall_wb_drain_;
        return;
      }
      claim_dl1_port(now);
      const auto reply = dl1_.load(
          s.eff_addr, isa::mem_access_bytes(s.inst.op), now,
          s.forced_mem ? std::optional<bool>(s.forced_hit) : std::nullopt);
      if (!reply.complete) {
        ++*c_stall_miss_;
        return;
      }
      s.mem_done = true;
      s.load_hit = reply.hit;
      if (reply.check == ecc::CheckStatus::kDetectedUncorrectable) {
        ++*c_due_events_;
      }
      if (reply.hit) {
        switch (params_.ecc) {
          case EccPolicy::kNoEcc:
          case EccPolicy::kWtParity:
            // Delivered (and, for WT+parity, detect-checked) within M.
            finish_load(s, reply.value, now);
            s.ecc_checked = true;
            break;
          case EccPolicy::kExtraCycle:
            // The check consumes a second, non-pipelined M cycle.
            s.store_data = reply.value;  // stash raw value
            s.m_extra_cycles = 1;
            break;
          case EccPolicy::kExtraStage:
          case EccPolicy::kLaec:
            // Checked in the EC stage; stash the raw value until then.
            s.store_data = reply.value;
            break;
        }
      } else {
        // Miss: the refill arrived checked from L2/memory — no DL1 ECC
        // penalty in any scheme (paper §III.D).
        finish_load(s, reply.value, now);
        s.ecc_checked = true;
      }
    } else if (s.inst.is_store()) {
      if (!wbuf_.can_push()) {
        wbuf_.note_blocked_push();
        ++*c_stall_wb_full_;
        return;
      }
      mem::PendingStore ps;
      ps.addr = s.eff_addr;
      ps.bytes = isa::mem_access_bytes(s.inst.op);
      ps.value = s.store_data;
      ps.forced = s.forced_mem;
      ps.forced_hit = s.forced_hit;
      wbuf_.push(ps);
      s.mem_done = true;
    } else {
      s.mem_done = true;  // non-memory ops do nothing in M
    }
  } else if (s.m_extra_cycles > 0) {
    // Second M cycle of the Extra Cache Cycle scheme: the check completes
    // at the end of this cycle and the load may then leave M.
    --s.m_extra_cycles;
    if (s.m_extra_cycles > 0) return;
    finish_load(s, s.store_data, now);
    s.ecc_checked = true;
  }

  if (!s.mem_done) return;
  if (s.m_extra_cycles > 0) return;  // first of the two M cycles
  if (s.inst.is_load() && s.anticipated && !s.ecc_checked) {
    // LAEC look-ahead: the SECDED check runs in M, one cycle early — data
    // is bypassable exactly as in the unprotected design.
    finish_load(s, s.store_data, now);
    s.ecc_checked = true;
  }

  // Advance to EC or XC.
  bool want_ec;
  if (!uses_ec_stage()) {
    want_ec = false;
  } else if (params_.ecc == EccPolicy::kExtraStage) {
    want_ec = true;  // rigid 8-stage flow (paper Figs. 4-5)
  } else {
    // LAEC: memory ops traverse the EC slot; others per EccSlotPolicy.
    if (s.inst.is_mem()) {
      want_ec = true;
    } else if (params_.ecc_slot == EccSlotPolicy::kAlways) {
      want_ec = true;
    } else {
      want_ec = slots_[kXC].valid;  // skip when XC is free (Fig. 7a)
    }
  }
  if (want_ec) {
    if (!slots_[kEC].valid) {
      slots_[kEC] = std::move(s);
      s.release();
    }
  } else {
    if (!slots_[kXC].valid) {
      slots_[kXC] = std::move(s);
      s.release();
    } else if (uses_ec_stage() && !slots_[kEC].valid) {
      slots_[kEC] = std::move(s);
      s.release();
    }
  }
}

void Pipeline::do_ex(Cycle now) {
  Slot& s = slots_[kEX];
  if (!s.valid) return;

  if (!s.ex_done) {
    switch (s.inst.cls()) {
      case isa::OpClass::kAlu: {
        if (!s.ex_started) {
          if (!all_exec_srcs_ready(s, now)) {
            // Attribute the stall to its producer kind.
            bool load_block = false;
            for (const auto& src : s.inst.exec_srcs()) {
              if (!src.has_value()) continue;
              const Slot* w = youngest_writer(*src, s.seq);
              if (w != nullptr &&
                  (w->ready_end == kNeverCycle || w->ready_end + 1 > now) &&
                  w->inst.is_load()) {
                load_block = true;
              }
            }
            ++*(load_block ? c_stall_load_use_ : c_stall_operand_);
            return;
          }
          s.ex_started = true;
          s.ex_cycles_left =
              (s.inst.op == isa::Op::kDiv || s.inst.op == isa::Op::kRem)
                  ? params_.div_latency
                  : (s.inst.op == isa::Op::kMul || s.inst.op == isa::Op::kMulh)
                        ? params_.mul_latency
                        : 1;
        }
        --s.ex_cycles_left;
        if (s.ex_cycles_left > 0) return;  // iterative unit occupies EX
        write_result(s, compute_alu(s.inst), now);
        s.ex_done = true;
        break;
      }
      case isa::OpClass::kBranch: {
        if (!all_exec_srcs_ready(s, now)) {
          bool load_block = false;
          for (const auto& src : s.inst.exec_srcs()) {
            if (!src.has_value()) continue;
            const Slot* w = youngest_writer(*src, s.seq);
            if (w != nullptr && w->inst.is_load()) load_block = true;
          }
          ++*(load_block ? c_stall_load_use_ : c_stall_operand_);
          return;
        }
        s.branch_done = true;
        s.branch_resolve_cycle = now;
        s.ex_done = true;
        if (branch_taken(s.inst)) {
          ++*c_taken_;
          squash_younger_than(
              s.seq, s.pc + 4 * static_cast<u32>(s.inst.imm), now);
        }
        break;
      }
      case isa::OpClass::kJump: {
        if (!all_exec_srcs_ready(s, now)) {
          ++*c_stall_operand_;
          return;
        }
        write_result(s, s.pc + 4, now);
        s.branch_done = true;
        s.branch_resolve_cycle = now;
        s.ex_done = true;
        ++*c_taken_;
        const Addr target =
            s.inst.op == isa::Op::kJal
                ? s.pc + 4 * static_cast<u32>(s.inst.imm)
                : (src_value(s.inst.rs1) + static_cast<u32>(s.inst.imm)) & ~3u;
        squash_younger_than(s.seq, target, now);
        break;
      }
      case isa::OpClass::kLoad: {
        if (s.anticipated && !s.mem_done && !s.ex_started) {
          // Dynamic resource check: an older load claimed the port this
          // cycle (stall skew) — fall back to the Extra Stage path.
          if (!dl1_port_free(now)) {
            s.anticipated = false;
            s.la_outcome = LookaheadOutcome::kDynamicFallback;
          } else if (!wbuf_.empty() || dl1_.busy()) {
            // The anticipated access cannot issue this cycle (write buffer
            // draining, or an older transaction holds the blocking DL1).
            // Stalling here in EX would hold the pipe one stage earlier
            // than Extra Stage does — strictly worse. Fall back instead:
            // the M stage will wait out the same conditions, at identical
            // cost to Extra Stage.
            s.anticipated = false;
            s.la_outcome = LookaheadOutcome::kDynamicFallback;
          } else if (const bool probe_hit =
                         s.forced_mem ? s.forced_hit
                                      : dl1_.would_hit(s.eff_addr);
                     !probe_hit) {
            // The EX-stage tag probe misses: cancel the look-ahead and let
            // the Memory stage run the miss exactly as Extra Stage would.
            // (Misses carry no ECC penalty anywhere, §III.D, and keeping
            // miss timing identical preserves the paper's "never slower
            // than Extra Stage" guarantee even through bus arbitration.)
            s.anticipated = false;
            ++*c_la_miss_cancel_;
          } else {
            claim_dl1_port(now);
            const auto reply = dl1_.load(
                s.eff_addr, isa::mem_access_bytes(s.inst.op), now,
                s.forced_mem ? std::optional<bool>(s.forced_hit)
                             : std::nullopt);
            if (!reply.complete) {
              // Tag probe said hit but the access turned into a refetch
              // (parity/SECDED uncorrectable recovery): keep polling the
              // controller from EX.
              s.ex_started = true;
              ++*c_stall_miss_;
              return;
            }
            s.mem_done = true;
            s.load_hit = reply.hit;
            if (reply.check == ecc::CheckStatus::kDetectedUncorrectable) {
              ++*c_due_events_;
            }
            if (reply.hit) {
              s.store_data = reply.value;  // checked next cycle, in M
            } else {
              finish_load(s, reply.value, now);
              s.ecc_checked = true;
            }
            s.ex_done = true;
            break;
          }
        }
        if (s.anticipated && s.ex_started && !s.mem_done) {
          // Polling an anticipated miss started from EX.
          const auto reply = dl1_.load(
              s.eff_addr, isa::mem_access_bytes(s.inst.op), now,
              s.forced_mem ? std::optional<bool>(s.forced_hit) : std::nullopt);
          if (!reply.complete) {
            ++*c_stall_miss_;
            return;
          }
          s.mem_done = true;
          s.load_hit = reply.hit;
          finish_load(s, reply.value, now);
          s.ecc_checked = true;
          s.ex_done = true;
          break;
        }
        if (!s.anticipated) {
          // Normal path: compute the effective address here; the DL1 is
          // accessed from M.
          if (!s.addr_known) {
            if (!all_exec_srcs_ready(s, now)) {
              ++*c_stall_operand_;
              return;
            }
            if (!s.forced_mem) {
              s.eff_addr = src_value(s.inst.rs1) +
                           (s.inst.uses_imm ? static_cast<u32>(s.inst.imm)
                                            : src_value(s.inst.rs2));
            }
            const unsigned bytes = isa::mem_access_bytes(s.inst.op);
            s.eff_addr &= ~static_cast<Addr>(bytes - 1);
            s.addr_known = true;
            train_predictor(s);

            // Stride-predictor extension: the predicted DL1 read happens
            // during this same EX cycle, in parallel with the address add;
            // the comparison below is the (combinational) verification.
            if (s.addr_predicted) {
              const bool match = s.predicted_addr == s.eff_addr;
              const bool issuable =
                  match && dl1_port_free(now) && wbuf_.empty() &&
                  !dl1_.busy() &&
                  (s.forced_mem ? s.forced_hit : dl1_.would_hit(s.eff_addr));
              if (!match) {
                ++*c_pred_wrong_;
              } else if (!issuable) {
                ++*c_pred_blocked_;
              } else {
                claim_dl1_port(now);
                const auto reply = dl1_.load(
                    s.eff_addr, isa::mem_access_bytes(s.inst.op), now,
                    s.forced_mem ? std::optional<bool>(s.forced_hit)
                                 : std::nullopt);
                if (reply.complete) {
                  ++*c_pred_used_;
                  s.anticipated = true;  // SECDED check lands in M
                  s.mem_done = true;
                  s.load_hit = reply.hit;
                  s.store_data = reply.value;
                  if (reply.check ==
                      ecc::CheckStatus::kDetectedUncorrectable) {
                    ++*c_due_events_;
                  }
                }
              }
            }
          }
          s.ex_done = true;
        } else if (s.mem_done) {
          s.ex_done = true;
        }
        break;
      }
      case isa::OpClass::kStore: {
        // Address operands are needed at EX entry; the store datum may
        // arrive through an end-of-cycle bypass (needed at M entry).
        if (!all_exec_srcs_ready(s, now)) {
          ++*c_stall_operand_;
          return;
        }
        const auto sd = s.inst.store_data_src();
        if (sd.has_value() && !operand_ready(*sd, s.seq, now + 1)) {
          const Slot* w = youngest_writer(*sd, s.seq);
          ++*((w != nullptr && w->inst.is_load()) ? c_stall_load_use_
                                                  : c_stall_operand_);
          return;
        }
        if (!s.forced_mem) {
          s.eff_addr = src_value(s.inst.rs1) +
                       (s.inst.uses_imm ? static_cast<u32>(s.inst.imm)
                                        : src_value(s.inst.rs2));
        }
        const unsigned bytes = isa::mem_access_bytes(s.inst.op);
        s.eff_addr &= ~static_cast<Addr>(bytes - 1);
        s.addr_known = true;
        if (sd.has_value()) s.store_data = src_value(*sd);
        s.store_data_latched = true;
        s.ex_done = true;
        break;
      }
      case isa::OpClass::kNop:
      case isa::OpClass::kHalt:
        s.ex_done = true;
        break;
    }
  }

  if (!s.ex_done) return;
  if (!slots_[kM].valid) {
    slots_[kM] = std::move(s);
    s.release();
  } else {
    ++*c_stall_struct_m_;
  }
}

void Pipeline::do_ra(Cycle now) {
  Slot& s = slots_[kRA];
  if (!s.valid) return;

  // LAEC decision point: re-evaluated every RA cycle until dispatch.
  if (params_.ecc == EccPolicy::kLaec && s.inst.is_load() && !s.anticipated) {
    const auto d = lookahead_->decide(*this, s.seq, now);
    s.la_outcome = d.outcome;
    if (d.anticipate) {
      s.anticipated = true;
      s.addr_predicted = false;
      if (!s.forced_mem) {
        // The RA-stage adder computes the address one cycle early, using
        // the two extra register-file ports / existing bypasses (Fig. 6).
        s.eff_addr = src_value(s.inst.rs1) +
                     (s.inst.uses_imm ? static_cast<u32>(s.inst.imm)
                                      : src_value(s.inst.rs2));
      }
      const unsigned bytes = isa::mem_access_bytes(s.inst.op);
      s.eff_addr &= ~static_cast<Addr>(bytes - 1);
      s.addr_known = true;
      train_predictor(s);
    } else if (predictor_ != nullptr && !s.addr_predicted &&
               d.outcome == LookaheadOutcome::kDataHazard) {
      // Extension: the exact look-ahead is blocked, but a confident stride
      // prediction can still drive an early (EX-stage) DL1 read, verified
      // against the real address in the same cycle.
      const auto predicted = predictor_->predict(s.pc);
      if (predicted.has_value()) {
        s.addr_predicted = true;
        const unsigned bytes = isa::mem_access_bytes(s.inst.op);
        s.predicted_addr = *predicted & ~static_cast<Addr>(bytes - 1);
      }
    }
  }

  if (!slots_[kEX].valid) {
    slots_[kEX] = std::move(s);
    s.release();
  }
}

void Pipeline::do_d(Cycle now) {
  (void)now;
  Slot& s = slots_[kD];
  if (!s.valid) return;
  if (!slots_[kRA].valid) {
    slots_[kRA] = std::move(s);
    s.release();
  }
}

void Pipeline::do_f(Cycle now) {
  Slot& s = slots_[kF];
  if (s.valid) {
    // An instruction parked in F: either still fetching (L1I miss) or
    // waiting for D to free up.
    if (!s.fetch_done) {
      assert(l1i_ != nullptr);
      const auto reply = l1i_->fetch(s.pc, now);
      if (!reply.complete) {
        ++*c_stall_imiss_;
        return;
      }
      s.inst = isa::decode(reply.word);
      s.fetch_done = true;
      ifetch_inflight_ = false;
      if (chrono_.enabled()) s.label = isa::paper_style(s.inst);
      if (s.inst.op == isa::Op::kHalt) fetch_stopped_ = true;
    }
    if (slots_[kD].valid) return;  // D stalled; hold in F
    slots_[kD] = std::move(s);
    s.release();
    return;  // F freed at end of cycle; the next fetch starts next cycle
  }

  if (fetch_stopped_ || halted_) return;
  if (redirect_cycle_ == now) return;  // redirect lands; fetch resumes next cycle

  // Drain a discarded (squashed) in-flight instruction fetch first.
  if (ifetch_discard_) {
    assert(l1i_ != nullptr);
    const auto reply = l1i_->fetch(ifetch_discard_addr_, now);
    if (!reply.complete) return;
    ifetch_discard_ = false;
    return;  // one dead cycle to restart fetch at the redirect target
  }

  Slot ns;
  ns.valid = true;
  ns.seq = next_seq_++;
  ns.pc = fetch_pc_;

  if (trace_ != nullptr) {
    auto op = trace_->next();
    if (!op.has_value()) {
      fetch_stopped_ = true;
      --next_seq_;
      return;
    }
    ns.inst = op->inst;
    ns.fetch_done = true;
    ns.forced_mem = op->forced_mem;
    ns.forced_hit = op->forced_hit;
    ns.eff_addr = op->eff_addr;
    fetch_pc_ += 4;
    if (ns.inst.op == isa::Op::kHalt) fetch_stopped_ = true;
  } else {
    const auto reply = l1i_->fetch(ns.pc, now);
    fetch_pc_ += 4;
    if (reply.complete) {
      ns.inst = isa::decode(reply.word);
      ns.fetch_done = true;
      if (ns.inst.op == isa::Op::kHalt) fetch_stopped_ = true;
    } else {
      ifetch_inflight_ = true;
      ++*c_stall_imiss_;
    }
  }

  if (chrono_.enabled()) {
    ns.label = ns.fetch_done ? isa::paper_style(ns.inst) : "(fetch)";
    chrono_.record(ns.seq, ns.label, now, "F");
  }
  // The instruction occupies F *this* cycle; if it already has its word and
  // D is free it advances at the end of the cycle (D next cycle), keeping
  // one-instruction-per-cycle fetch throughput.
  if (ns.fetch_done && !slots_[kD].valid) {
    slots_[kD] = std::move(ns);
  } else {
    slots_[kF] = std::move(ns);
  }
}

bool Pipeline::cycle(Cycle now) {
  if (halted_) return false;
  ++*c_cycles_;
  if (params_.max_cycles != 0 && *c_cycles_ > params_.max_cycles) {
    halted_ = true;
    return false;
  }

  record_all(now);

  do_retire(now);
  if (halted_) return false;
  do_xc(now);
  do_ec(now);
  do_m(now);
  do_ex(now);
  do_ra(now);
  do_d(now);
  do_f(now);

  if (fetch_stopped_) {
    bool any = false;
    for (const Slot& s : slots_) any = any || s.valid;
    if (!any) halted_ = true;
  }
  return !halted_;
}

namespace {

void save_slot(service::ByteWriter& w, const isa::DecodedInst& d) {
  w.put_u8(static_cast<u8>(d.op));
  w.put_u8(d.rd);
  w.put_u8(d.rs1);
  w.put_u8(d.rs2);
  w.put_u32(static_cast<u32>(d.imm));
  w.put_u8(d.uses_imm ? 1 : 0);
}

void restore_slot(service::ByteReader& r, isa::DecodedInst& d) {
  d.op = static_cast<isa::Op>(r.get_u8());
  d.rd = r.get_u8();
  d.rs1 = r.get_u8();
  d.rs2 = r.get_u8();
  d.imm = static_cast<i32>(r.get_u32());
  d.uses_imm = r.get_u8() != 0;
}

}  // namespace

void Pipeline::save_state(service::ByteWriter& w) const {
  if (chrono_.enabled()) {
    throw std::logic_error(
        "pipeline snapshots do not cover chronogram recording");
  }
  for (const Slot& s : slots_) {
    w.put_u8(s.valid ? 1 : 0);
    save_slot(w, s.inst);
    w.put_u64(s.seq);
    w.put_u32(s.pc);
    w.put_string(s.label);
    w.put_u8(s.fetch_done ? 1 : 0);
    w.put_u64(s.ready_end);
    w.put_u8(s.ex_started ? 1 : 0);
    w.put_u32(s.ex_cycles_left);
    w.put_u8(s.ex_done ? 1 : 0);
    w.put_u8(s.anticipated ? 1 : 0);
    w.put_u8(static_cast<u8>(s.la_outcome));
    w.put_u8(s.addr_known ? 1 : 0);
    w.put_u32(s.eff_addr);
    w.put_u8(s.addr_predicted ? 1 : 0);
    w.put_u32(s.predicted_addr);
    w.put_u8(s.predictor_trained ? 1 : 0);
    w.put_u8(s.mem_done ? 1 : 0);
    w.put_u8(s.load_hit ? 1 : 0);
    w.put_u8(s.ecc_checked ? 1 : 0);
    w.put_u32(s.m_extra_cycles);
    w.put_u32(s.store_data);
    w.put_u8(s.store_data_latched ? 1 : 0);
    w.put_u8(s.branch_done ? 1 : 0);
    w.put_u64(s.branch_resolve_cycle);
    w.put_u8(s.forced_mem ? 1 : 0);
    w.put_u8(s.forced_hit ? 1 : 0);
  }
  for (const u32 v : regs_) w.put_u32(v);
  for (const Seq st : reg_write_stamp_) w.put_u64(st);
  w.put_u32(fetch_pc_);
  w.put_u64(next_seq_);
  w.put_u8(fetch_stopped_ ? 1 : 0);
  w.put_u8(ifetch_inflight_ ? 1 : 0);
  w.put_u8(ifetch_discard_ ? 1 : 0);
  w.put_u32(ifetch_discard_addr_);
  w.put_u64(redirect_cycle_);
  w.put_u8(halted_ ? 1 : 0);
  w.put_u64(dl1_port_cycle_);
  w.put_u64(last_anticipated_seq_);
  for (const DepWatch& d : dep_watch_) {
    w.put_u8(d.reg);
    w.put_u32(static_cast<u32>(d.remaining));
    w.put_u8(d.consumed ? 1 : 0);
    w.put_u8(d.counted ? 1 : 0);
  }
  w.put_u8(predictor_ != nullptr ? 1 : 0);
  if (predictor_ != nullptr) predictor_->save_state(w);
  stats_.save_state(w);
}

void Pipeline::restore_state(service::ByteReader& r) {
  for (Slot& s : slots_) {
    s.valid = r.get_u8() != 0;
    restore_slot(r, s.inst);
    s.seq = r.get_u64();
    s.pc = r.get_u32();
    s.label = r.get_string();
    s.fetch_done = r.get_u8() != 0;
    s.ready_end = r.get_u64();
    s.ex_started = r.get_u8() != 0;
    s.ex_cycles_left = r.get_u32();
    s.ex_done = r.get_u8() != 0;
    s.anticipated = r.get_u8() != 0;
    s.la_outcome = static_cast<LookaheadOutcome>(r.get_u8());
    s.addr_known = r.get_u8() != 0;
    s.eff_addr = r.get_u32();
    s.addr_predicted = r.get_u8() != 0;
    s.predicted_addr = r.get_u32();
    s.predictor_trained = r.get_u8() != 0;
    s.mem_done = r.get_u8() != 0;
    s.load_hit = r.get_u8() != 0;
    s.ecc_checked = r.get_u8() != 0;
    s.m_extra_cycles = r.get_u32();
    s.store_data = r.get_u32();
    s.store_data_latched = r.get_u8() != 0;
    s.branch_done = r.get_u8() != 0;
    s.branch_resolve_cycle = r.get_u64();
    s.forced_mem = r.get_u8() != 0;
    s.forced_hit = r.get_u8() != 0;
  }
  for (u32& v : regs_) v = r.get_u32();
  for (Seq& st : reg_write_stamp_) st = r.get_u64();
  fetch_pc_ = r.get_u32();
  next_seq_ = r.get_u64();
  fetch_stopped_ = r.get_u8() != 0;
  ifetch_inflight_ = r.get_u8() != 0;
  ifetch_discard_ = r.get_u8() != 0;
  ifetch_discard_addr_ = r.get_u32();
  redirect_cycle_ = r.get_u64();
  halted_ = r.get_u8() != 0;
  dl1_port_cycle_ = r.get_u64();
  last_anticipated_seq_ = r.get_u64();
  for (DepWatch& d : dep_watch_) {
    d.reg = r.get_u8();
    d.remaining = static_cast<int>(static_cast<i32>(r.get_u32()));
    d.consumed = r.get_u8() != 0;
    d.counted = r.get_u8() != 0;
  }
  const bool has_predictor = r.get_u8() != 0;
  if (has_predictor != (predictor_ != nullptr)) {
    throw service::WireError("snapshot: stride-predictor presence mismatch");
  }
  if (predictor_ != nullptr) predictor_->restore_state(r);
  stats_.restore_state(r);
}

}  // namespace laec::cpu
