// TraceSource is an interface; this TU anchors the vtable.
#include "cpu/trace_source.hpp"

namespace laec::cpu {}  // namespace laec::cpu
