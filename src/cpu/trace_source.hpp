// Synthetic instruction supply for trace-driven simulation.
//
// In trace mode the pipeline consumes pre-decoded operations instead of
// fetching encodings through the L1I, and memory operations carry an oracle
// hit/miss classification. This is how the calibrated Table II workloads are
// injected (DESIGN.md §4): dependences are expressed through real register
// assignments, so every hazard path in the pipeline is exercised, while the
// cache outcome is forced to match the characterized rates.
#pragma once

#include <optional>

#include "isa/isa.hpp"

namespace laec::cpu {

struct TraceOp {
  isa::DecodedInst inst;
  /// Memory ops only: pre-classified DL1 outcome and effective address.
  bool forced_mem = false;
  bool forced_hit = true;
  Addr eff_addr = 0;
};

class TraceSource {
 public:
  virtual ~TraceSource() = default;
  /// Next dynamic operation, or nullopt at end of trace.
  virtual std::optional<TraceOp> next() = 0;
};

}  // namespace laec::cpu
