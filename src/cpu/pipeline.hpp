// Cycle-accurate in-order single-issue pipeline (NGMP/LEON4-like).
//
// Stage order (paper Fig. 1): F D RA EX M [EC] XC WB — seven stages, eight
// when the DL1 ECC deployment adds the ECC stage (Extra Stage / LAEC).
//
// Timing contract (DESIGN.md §2):
//  * a result with `ready_end = t` is usable by a stage executing in t+1;
//  * instructions stall *in EX* until their operands are available
//    (chronograms show repeated "Exe" cells, matching the paper's figures);
//  * checked load-hit data becomes available at the end of M (no-ECC,
//    LAEC-anticipated), of the second M cycle (Extra Cycle), or of the EC
//    stage (Extra Stage, LAEC fallback);
//  * DL1 misses are checked at the L2/memory level and carry no ECC penalty;
//  * loads wait at their access stage until the write buffer is fully empty;
//    stores stall when the buffer is full, until it fully drains (§III.B).
//
// LAEC (the paper's contribution) is implemented in core/lookahead.hpp; the
// pipeline consults it when a load enters the RA stage and, on success, reads
// the DL1 during EX and checks the code during M.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "cpu/pipeline_config.hpp"
#include "cpu/trace_source.hpp"
#include "isa/program.hpp"
#include "mem/l1.hpp"
#include "mem/write_buffer.hpp"
#include "report/chronogram.hpp"

namespace laec::core {
class LookaheadUnit;  // the paper's mechanism; owned by the pipeline
class StridePredictor;  // optional extension (PipelineParams::stride_predictor)
}

namespace laec::cpu {

/// Pipeline stage indices. kEC exists only under 8-stage policies.
enum Stage : unsigned { kF, kD, kRA, kEX, kM, kEC, kXC, kWB, kNumStages };

[[nodiscard]] std::string_view stage_name(Stage s);

/// Why a load was (not) anticipated; recorded per dynamic load.
enum class LookaheadOutcome : u8 {
  kAnticipated,
  kDataHazard,      ///< address operands not available one cycle early
  kResourceHazard,  ///< previous instruction is a non-anticipated load
  kBranchShadow,    ///< suppressed under an unresolved branch (optional rule)
  kPolicyOff,       ///< not running LAEC
  kDynamicFallback, ///< anticipated at RA but port collision at EX
};

class Pipeline {
 public:
  Pipeline(const PipelineParams& params, mem::DL1Controller& dl1,
           mem::L1IController* l1i, mem::WriteBuffer& wbuf,
           TraceSource* trace = nullptr);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Point fetch at the program entry (the image itself must already be in
  /// simulated memory — see sim::System).
  void start(Addr entry);

  /// Advance one cycle. Returns false once the core has halted.
  bool cycle(Cycle now);

  [[nodiscard]] bool halted() const { return halted_; }

  /// Did a load claim the DL1 port this cycle? (Write-buffer drain yields.)
  [[nodiscard]] bool dl1_port_claimed(Cycle now) const {
    return dl1_port_cycle_ == now;
  }

  [[nodiscard]] u32 reg(unsigned i) const { return regs_[i]; }
  void set_reg(unsigned i, u32 v) {
    if (i != 0) regs_[i] = v;
  }

  [[nodiscard]] StatSet& stats() { return stats_; }
  [[nodiscard]] const StatSet& stats() const { return stats_; }
  [[nodiscard]] report::ChronogramRecorder& chronogram() { return chrono_; }
  [[nodiscard]] const report::ChronogramRecorder& chronogram() const {
    return chrono_;
  }
  [[nodiscard]] const PipelineParams& params() const { return params_; }

  /// Snapshot support: slots, register file, fetch/redirect state, the
  /// stride predictor and counters. Throws std::logic_error when chronogram
  /// recording is enabled (event history is not snapshot state).
  void save_state(service::ByteWriter& w) const;
  void restore_state(service::ByteReader& r);

 private:
  friend class laec::core::LookaheadUnit;

  struct Slot {
    bool valid = false;
    isa::DecodedInst inst;
    Seq seq = 0;
    Addr pc = 0;
    std::string label;  // chronogram label (filled lazily)

    // Fetch state.
    bool fetch_done = false;

    // Result availability: end-of-cycle at which the destination value is
    // bypassable; kNeverCycle until known.
    Cycle ready_end = kNeverCycle;

    // EX state.
    bool ex_started = false;
    unsigned ex_cycles_left = 0;
    bool ex_done = false;

    // Memory state.
    bool anticipated = false;
    LookaheadOutcome la_outcome = LookaheadOutcome::kPolicyOff;
    bool addr_known = false;
    Addr eff_addr = 0;
    // Stride-predictor extension state.
    bool addr_predicted = false;
    Addr predicted_addr = 0;
    bool predictor_trained = false;
    bool mem_done = false;   // DL1 access resolved (load) / WB push done (store)
    bool load_hit = false;
    bool ecc_checked = false;  // checked data available (miss refills arrive checked)
    unsigned m_extra_cycles = 0;  // Extra Cycle second-M bookkeeping
    u32 store_data = 0;
    bool store_data_latched = false;

    // Branch state.
    bool branch_done = false;
    Cycle branch_resolve_cycle = kNeverCycle;

    // Trace mode.
    bool forced_mem = false;
    bool forced_hit = true;

    /// Cheap empty-marking for the stage-advance hot path. Every other
    /// field is only ever read behind `valid`, and every new instruction
    /// enters as a freshly-constructed Slot moved in by do_f, so dropping
    /// the flag is equivalent to — and much cheaper than — assigning a
    /// default-constructed Slot over ~100 bytes of state.
    void release() { valid = false; }
  };

  // --- per-cycle stage processing, called in WB -> F order ------------------
  void do_retire(Cycle now);
  void do_xc(Cycle now);
  void do_ec(Cycle now);
  void do_m(Cycle now);
  void do_ex(Cycle now);
  void do_ra(Cycle now);
  void do_d(Cycle now);
  void do_f(Cycle now);

  // --- helpers ---------------------------------------------------------------
  [[nodiscard]] bool uses_ec_stage() const {
    return has_ecc_stage(params_.ecc);
  }
  /// Is the value of register `r` available to a consumer executing in
  /// `use_cycle` for instruction `reader_seq`? (Scans in-flight writers.)
  [[nodiscard]] bool operand_ready(u8 r, Seq reader_seq, Cycle use_cycle) const;
  /// Youngest in-flight writer of `r` older than `reader_seq`, or nullptr.
  [[nodiscard]] const Slot* youngest_writer(u8 r, Seq reader_seq) const;
  [[nodiscard]] bool all_exec_srcs_ready(const Slot& s, Cycle use_cycle) const;
  void write_result(Slot& s, u32 value, Cycle ready_end);
  [[nodiscard]] u32 compute_alu(const isa::DecodedInst& d) const;
  [[nodiscard]] bool branch_taken(const isa::DecodedInst& d) const;
  void squash_younger_than(Seq seq, Addr new_pc, Cycle now);
  void record_all(Cycle now);
  void claim_dl1_port(Cycle now) { dl1_port_cycle_ = now; }
  [[nodiscard]] bool dl1_port_free(Cycle now) const {
    return dl1_port_cycle_ != now;
  }
  /// Read-for-execute value of a source register (regfile + eager updates).
  [[nodiscard]] u32 src_value(u8 r) const { return regs_[r]; }
  void finish_load(Slot& s, u32 raw, Cycle ready_end);
  [[nodiscard]] static u32 extend_load(const isa::DecodedInst& d, u32 raw);
  /// The slot holding dynamic instruction seq, if still in flight.
  [[nodiscard]] const Slot* find_seq(Seq seq) const;
  [[nodiscard]] const Slot& slot(unsigned stage) const { return slots_[stage]; }
  [[nodiscard]] Stage stage_of(const Slot* s) const {
    return static_cast<Stage>(s - slots_.data());
  }

  PipelineParams params_;
  mem::DL1Controller& dl1_;
  mem::L1IController* l1i_;  // null in trace mode
  mem::WriteBuffer& wbuf_;
  TraceSource* trace_;
  std::unique_ptr<laec::core::LookaheadUnit> lookahead_;
  std::unique_ptr<laec::core::StridePredictor> predictor_;
  /// Train the stride table once per load, when its address resolves.
  void train_predictor(Slot& s);

  std::array<Slot, kNumStages> slots_{};
  std::array<u32, isa::kNumRegs> regs_{};
  // The register file is updated eagerly as results become available, which
  // can be out of program order across registers AND within one register
  // (an older load checked late in EC may complete after a younger ALU op).
  // Writes carry the writer's seq; an older write never clobbers a younger
  // one. Stamp is seq+1 (0 = never written).
  std::array<Seq, isa::kNumRegs> reg_write_stamp_{};

  Addr fetch_pc_ = 0;
  Seq next_seq_ = 0;
  bool fetch_stopped_ = false;  // HALT decoded or trace exhausted
  bool ifetch_inflight_ = false;
  bool ifetch_discard_ = false;
  Addr ifetch_discard_addr_ = 0;
  Cycle redirect_cycle_ = kNeverCycle;
  bool halted_ = false;
  Cycle dl1_port_cycle_ = kNeverCycle;
  Seq last_anticipated_seq_ = kNoSeq;

  // Dependent-load characterization (Table II): remember the destinations of
  // the two most recently retired loads and watch the next two retirees.
  struct DepWatch {
    u8 reg = 0;
    int remaining = 0;
    bool consumed = false;
    bool counted = false;
  };
  std::array<DepWatch, 2> dep_watch_{};
  void retire_characterize(const Slot& s);

  StatSet stats_;
  report::ChronogramRecorder chrono_;

  // Hot counters.
  u64* c_cycles_ = nullptr;
  u64* c_instructions_ = nullptr;
  u64* c_loads_ = nullptr;
  u64* c_load_hits_ = nullptr;
  u64* c_stores_ = nullptr;
  u64* c_branches_ = nullptr;
  u64* c_taken_ = nullptr;
  u64* c_squashed_ = nullptr;
  u64* c_dep_loads_ = nullptr;
  u64* c_stall_operand_ = nullptr;
  u64* c_stall_load_use_ = nullptr;
  u64* c_stall_struct_m_ = nullptr;
  u64* c_stall_wb_drain_ = nullptr;
  u64* c_stall_wb_full_ = nullptr;
  u64* c_stall_miss_ = nullptr;
  u64* c_stall_imiss_ = nullptr;
  u64* c_la_anticipated_ = nullptr;
  u64* c_la_data_hazard_ = nullptr;
  u64* c_la_resource_hazard_ = nullptr;
  u64* c_la_fallback_ = nullptr;
  u64* c_la_miss_cancel_ = nullptr;
  u64* c_la_shadow_ = nullptr;
  u64* c_due_events_ = nullptr;
  u64* c_pred_used_ = nullptr;
  u64* c_pred_wrong_ = nullptr;
  u64* c_pred_blocked_ = nullptr;
};

}  // namespace laec::cpu
