// Event-based energy model supporting the paper's §IV.A power paragraph:
//
//  * the proposal's *dynamic* power adder (two extra register-file read
//    ports and a 32-bit adder, exercised only on anticipated loads) is
//    under 1% of core energy;
//  * *leakage* energy grows proportionally to execution time, so each
//    scheme's leakage overhead mirrors its slowdown (~17% / ~10% / <4%).
//
// The per-event energies are synthetic but proportioned like CACTI 65 nm
// numbers for a 16 KB 4-way SRAM and a 1 KB register file (the technology
// point the paper cites); DESIGN.md records this substitution. Absolute
// joules are not meaningful — ratios are.
#pragma once

#include "core/simulator.hpp"
#include "cpu/pipeline_config.hpp"

namespace laec::energy {

struct EnergyParams {
  double freq_mhz = 150.0;        ///< LEON4-class clock (Table I)
  double leak_core_mw = 18.0;     ///< core + L1 arrays leakage power

  // Per-event dynamic energies (pJ).
  double dl1_read_pj = 18.0;
  double dl1_write_pj = 22.0;
  double secded_check_pj = 1.8;   ///< 7 syndrome XOR trees + corrector
  double secded_encode_pj = 1.5;
  double parity_pj = 0.35;
  double rf_read_port_pj = 0.45;  ///< one extra early register read
  double agen_adder_pj = 0.25;    ///< the dedicated RA-stage adder
  double base_inst_pj = 24.0;     ///< everything else per instruction
};

struct EnergyBreakdown {
  double dynamic_uj = 0.0;
  double leakage_uj = 0.0;
  double laec_adder_uj = 0.0;  ///< dynamic energy added by LAEC hardware
  /// Per-level ECC (check + encode) energy, already folded into dynamic_uj.
  double dl1_ecc_uj = 0.0;
  double l1i_ecc_uj = 0.0;
  double l2_ecc_uj = 0.0;
  [[nodiscard]] double total_uj() const { return dynamic_uj + leakage_uj; }
  /// LAEC hardware adder as a fraction of total dynamic energy.
  [[nodiscard]] double laec_dynamic_fraction() const {
    return dynamic_uj <= 0 ? 0.0 : laec_adder_uj / dynamic_uj;
  }
};

/// Per-access check / encode energies of one codec. Known registry codecs
/// use a calibrated table (gate-counted relative to the 7-tree (39,32)
/// SECDED reference the CACTI-like numbers were drawn for); anything else
/// falls back to scaling the reference linearly by check-bit (syndrome
/// XOR tree) count.
struct CodecEnergy {
  double check_pj = 0.0;
  double encode_pj = 0.0;
};
[[nodiscard]] CodecEnergy codec_energy(const EnergyParams& p,
                                       const ecc::Codec& codec);

/// Deployment-aware energy digest across the hierarchy: each cache level's
/// codec sets that level's per-access check/encode energies (calibrated
/// table, geometry-scaling fallback — see codec_energy), and the LAEC
/// placement adds the look-ahead hardware energy.
[[nodiscard]] EnergyBreakdown compute(const EnergyParams& p,
                                      const core::RunStats& stats,
                                      const core::HierarchyDeployment& deployment);

/// Legacy enum shim: expands `policy` to its canonical deployment.
[[nodiscard]] EnergyBreakdown compute(const EnergyParams& p,
                                      const core::RunStats& stats,
                                      cpu::EccPolicy policy);

}  // namespace laec::energy
