#include "energy/energy.hpp"

#include <string_view>

#include "ecc/registry.hpp"

namespace laec::energy {

namespace {

/// Calibrated per-codec check/encode energies, as multipliers of the
/// (39,32) SECDED reference numbers in EnergyParams. Gate-level intuition:
/// the encoder is the same XOR-tree forest for SECDED and SEC-DAEC (the
/// H-matrix row weights match), while the SEC-DAEC checker adds the
/// adjacent-pair syndrome comparators (~25% on top of the 7-tree checker);
/// the 64-bit geometries amortize tree sharing slightly below the linear
/// 8/7 check-bit ratio. Interleaved parity is two independent parity
/// trees. Keyed by Codec::name() — NOT the registry key, so the legacy
/// aliases resolve to their canonical row ("secded" constructs a codec
/// named "secded-39-32"); anything unknown scales linearly by check-bit
/// count (the pre-calibration behavior).
struct Calibration {
  std::string_view name;
  double check_mult;
  double encode_mult;
};
constexpr Calibration kCalibrated[] = {
    {"secded-39-32", 1.00, 1.00},
    {"secded-72-64", 1.10, 1.06},
    {"sec-daec-39-32", 1.25, 1.00},
    {"sec-daec-72-64", 1.38, 1.06},
    // 13 syndrome trees (~13/7 of the SECDED forest) plus the adjacent-pair
    // AND adjacent-triple comparator banks on the checker side (~20% over
    // the scaled trees); the encoder is the 13-tree forest alone.
    {"sec-daec-taec-45-32", 2.23, 1.86},
    // DEC-TED BCH: 13 trees like the TAEC code but with the DENSE
    // alpha^3-derived rows of the systematized H (~16-per-row vs the
    // Hsiao-style minimum-weight forests), and a two-error locator on the
    // checker side in place of the burst comparators (~30% over the
    // trees). NOTE (provenance): like every row here, gate-count
    // proportions relative to the (39,32) SECDED reference — pending
    // calibration against real CACTI / gate-level synthesis numbers.
    {"dec-bch-45-32", 2.95, 2.27},
};

}  // namespace

CodecEnergy codec_energy(const EnergyParams& p, const ecc::Codec& codec) {
  if (codec.check_bits() == 0) return {0.0, 0.0};
  if (!codec.corrects_single()) {
    // Parity-class detectors (no corrector logic): one independent parity
    // tree per check bit, at any interleave width.
    const double trees = static_cast<double>(codec.check_bits());
    return {trees * p.parity_pj, trees * p.parity_pj};
  }
  for (const auto& c : kCalibrated) {
    if (c.name == codec.name()) {
      return {c.check_mult * p.secded_check_pj,
              c.encode_mult * p.secded_encode_pj};
    }
  }
  // Fallback: the reference energies are sized for the 7-tree (39,32)
  // SECDED checker; unknown geometries scale with their check-bit
  // (syndrome XOR tree) count.
  const double scale = static_cast<double>(codec.check_bits()) / 7.0;
  return {scale * p.secded_check_pj, scale * p.secded_encode_pj};
}

EnergyBreakdown compute(const EnergyParams& p, const core::RunStats& stats,
                        const core::HierarchyDeployment& deployment) {
  EnergyBreakdown b;
  const double insts = static_cast<double>(stats.instructions);
  const double loads = static_cast<double>(stats.loads);
  const double stores = static_cast<double>(stats.stores);
  const double anticipated = static_cast<double>(stats.laec_anticipated);

  double pj = insts * p.base_inst_pj;
  pj += loads * p.dl1_read_pj;
  pj += stores * p.dl1_write_pj;

  // DL1: one check per load, one encode per store or refilled word (the
  // fill-word counter accounts for the configured line size).
  const CodecEnergy dl1 = codec_energy(p, *ecc::make_codec(deployment.codec));
  const double dl1_pj =
      loads * dl1.check_pj +
      (stores + static_cast<double>(stats.dl1_fill_words)) * dl1.encode_pj;
  pj += dl1_pj;

  // L1I: one check per fetch, one encode per refilled word (the fill-word
  // counters already account for the configured line size).
  const CodecEnergy l1i =
      codec_energy(p, *ecc::make_codec(deployment.l1i.codec));
  const double l1i_pj =
      static_cast<double>(stats.l1i_fetches) * l1i.check_pj +
      static_cast<double>(stats.l1i_fill_words) * l1i.encode_pj;
  pj += l1i_pj;

  // L2: one check per word read, one encode per word write or refill.
  const CodecEnergy l2 =
      codec_energy(p, *ecc::make_codec(deployment.l2.codec));
  const double l2_pj =
      static_cast<double>(stats.l2_reads) * l2.check_pj +
      (static_cast<double>(stats.l2_writes) +
       static_cast<double>(stats.l2_fill_words)) *
          l2.encode_pj;
  pj += l2_pj;

  double laec_pj = 0.0;
  if (deployment.timing == cpu::EccPolicy::kLaec) {
    // Two early register-file reads plus the dedicated address adder per
    // anticipated load (Fig. 6 hardware).
    laec_pj = anticipated * (2.0 * p.rf_read_port_pj + p.agen_adder_pj);
    pj += laec_pj;
  }

  const double seconds =
      static_cast<double>(stats.cycles) / (p.freq_mhz * 1e6);
  b.dynamic_uj = pj * 1e-6;
  b.leakage_uj = p.leak_core_mw * 1e-3 * seconds * 1e6;
  b.laec_adder_uj = laec_pj * 1e-6;
  b.dl1_ecc_uj = dl1_pj * 1e-6;
  b.l1i_ecc_uj = l1i_pj * 1e-6;
  b.l2_ecc_uj = l2_pj * 1e-6;
  return b;
}

EnergyBreakdown compute(const EnergyParams& p, const core::RunStats& stats,
                        cpu::EccPolicy policy) {
  return compute(p, stats, core::HierarchyDeployment::from_policy(policy));
}

}  // namespace laec::energy
