#include "energy/energy.hpp"

#include "ecc/registry.hpp"

namespace laec::energy {

EnergyBreakdown compute(const EnergyParams& p, const core::RunStats& stats,
                        const core::EccDeployment& deployment) {
  EnergyBreakdown b;
  const double insts = static_cast<double>(stats.instructions);
  const double loads = static_cast<double>(stats.loads);
  const double stores = static_cast<double>(stats.stores);
  const double anticipated = static_cast<double>(stats.laec_anticipated);

  double pj = insts * p.base_inst_pj;
  pj += loads * p.dl1_read_pj;
  pj += stores * p.dl1_write_pj;

  const auto codec = ecc::make_codec(deployment.codec);
  if (codec->check_bits() == 1 && !codec->corrects_single()) {
    // Single-parity detector.
    pj += loads * p.parity_pj + stores * p.parity_pj;
  } else if (codec->check_bits() > 0) {
    // Syndrome-decoder codecs: the reference energies are sized for the
    // 7-tree (39,32) SECDED checker; other geometries scale with their
    // check-bit (syndrome XOR tree) count.
    const double scale = static_cast<double>(codec->check_bits()) / 7.0;
    pj += loads * p.secded_check_pj * scale;
    pj += stores * p.secded_encode_pj * scale;
  }

  double laec_pj = 0.0;
  if (deployment.timing == cpu::EccPolicy::kLaec) {
    // Two early register-file reads plus the dedicated address adder per
    // anticipated load (Fig. 6 hardware).
    laec_pj = anticipated * (2.0 * p.rf_read_port_pj + p.agen_adder_pj);
    pj += laec_pj;
  }

  const double seconds =
      static_cast<double>(stats.cycles) / (p.freq_mhz * 1e6);
  b.dynamic_uj = pj * 1e-6;
  b.leakage_uj = p.leak_core_mw * 1e-3 * seconds * 1e6;
  b.laec_adder_uj = laec_pj * 1e-6;
  return b;
}

EnergyBreakdown compute(const EnergyParams& p, const core::RunStats& stats,
                        cpu::EccPolicy policy) {
  return compute(p, stats, core::EccDeployment::from_policy(policy));
}

}  // namespace laec::energy
