// Lightweight named-counter registry used by every simulated structure.
//
// A StatSet owns an ordered collection of counters; structures register
// counters once at construction and bump them on the hot path through a
// plain u64 reference, so instrumentation costs one increment.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace laec::service {
class ByteWriter;
class ByteReader;
}  // namespace laec::service

namespace laec {

/// Ordered set of named 64-bit counters.
class StatSet {
 public:
  /// Returns a stable reference to the counter named `name`, creating it
  /// (zero-initialized) on first use. References remain valid for the
  /// lifetime of the StatSet.
  u64& counter(const std::string& name);

  /// Value of a counter, or 0 when it was never registered.
  [[nodiscard]] u64 value(const std::string& name) const;

  /// All counters in registration order.
  [[nodiscard]] std::vector<std::pair<std::string, u64>> items() const;

  /// Reset every counter to zero (registrations are kept).
  void clear();

  /// Merge: add every counter of `other` into this set.
  void add(const StatSet& other);

  /// Snapshot serialization: counters in registration order as
  /// (name, value) pairs, so a restore into a freshly constructed owner
  /// reproduces both the values and the registration order (required for
  /// byte-stable re-serialization, and for sets whose counters are
  /// registered lazily on the hot path, e.g. the bus per-op counters).
  void save_state(service::ByteWriter& w) const;
  void restore_state(service::ByteReader& r);

 private:
  // Deque-like stability: counters are stored in a list of chunks so that
  // `counter()` references never dangle as the set grows.
  static constexpr std::size_t kChunk = 64;
  std::vector<std::unique_ptr<u64[]>> chunks_;
  std::vector<std::string> names_;           // registration order
  std::map<std::string, std::size_t> index_; // name -> slot
  u64& slot(std::size_t i);
  [[nodiscard]] const u64& slot(std::size_t i) const;
};

/// Fixed-bucket histogram for small integer samples (e.g. stall lengths).
class Histogram {
 public:
  explicit Histogram(std::size_t buckets = 16) : buckets_(buckets, 0) {}

  void record(u64 v) {
    ++count_;
    sum_ += v;
    if (v >= buckets_.size()) {
      ++overflow_;
    } else {
      ++buckets_[v];
    }
  }

  [[nodiscard]] u64 count() const { return count_; }
  [[nodiscard]] u64 sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] u64 bucket(std::size_t i) const { return buckets_.at(i); }
  [[nodiscard]] u64 overflow() const { return overflow_; }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }

 private:
  std::vector<u64> buckets_;
  u64 overflow_ = 0;
  u64 count_ = 0;
  u64 sum_ = 0;
};

}  // namespace laec
