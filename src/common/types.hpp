// Fixed-width integer aliases and small shared vocabulary types used across
// every laec module.
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>

namespace laec {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulated cycle count. Cycle 0 is the first simulated cycle.
using Cycle = u64;

/// Sentinel for "never happens" / "not yet known" cycle values.
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Physical byte address in the simulated machine (32-bit machine).
using Addr = u32;

/// Dynamic-instruction sequence number (program order, starting at 0).
using Seq = u64;

inline constexpr Seq kNoSeq = std::numeric_limits<Seq>::max();

}  // namespace laec
