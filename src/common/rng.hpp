// Deterministic xoshiro256** PRNG. Simulation results must be reproducible
// bit-for-bit across runs and platforms, so we do not use std::mt19937 (whose
// distributions are not portable) anywhere in the library.
#pragma once

#include <cassert>

#include "common/types.hpp"

namespace laec {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded via splitmix64 so that any 64-bit seed gives a good state.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(u64 seed) {
    u64 x = seed;
    for (auto& w : s_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      w = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  u64 next_u64() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform 32-bit value.
  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform integer in [0, bound). bound must be nonzero.
  u64 below(u64 bound) {
    assert(bound != 0);
    // Debiased multiply-shift (Lemire); the retry loop terminates quickly.
    for (;;) {
      const u64 x = next_u64();
      const auto m = static_cast<unsigned __int128>(x) * bound;
      const u64 l = static_cast<u64>(m);
      if (l >= bound || l >= (u64{0} - bound) % bound) {
        return static_cast<u64>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi) {
    assert(lo <= hi);
    return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  u64 s_[4]{};
};

}  // namespace laec
