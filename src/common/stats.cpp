#include "common/stats.hpp"

#include <cassert>

#include "service/wire.hpp"

namespace laec {

u64& StatSet::slot(std::size_t i) {
  return chunks_[i / kChunk][i % kChunk];
}

const u64& StatSet::slot(std::size_t i) const {
  return chunks_[i / kChunk][i % kChunk];
}

u64& StatSet::counter(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return slot(it->second);
  const std::size_t i = names_.size();
  if (i % kChunk == 0) {
    chunks_.push_back(std::make_unique<u64[]>(kChunk));
    for (std::size_t j = 0; j < kChunk; ++j) chunks_.back()[j] = 0;
  }
  names_.push_back(name);
  index_.emplace(name, i);
  return slot(i);
}

u64 StatSet::value(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0 : slot(it->second);
}

std::vector<std::pair<std::string, u64>> StatSet::items() const {
  std::vector<std::pair<std::string, u64>> out;
  out.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    out.emplace_back(names_[i], slot(i));
  }
  return out;
}

void StatSet::clear() {
  for (std::size_t i = 0; i < names_.size(); ++i) slot(i) = 0;
}

void StatSet::add(const StatSet& other) {
  for (const auto& [name, v] : other.items()) counter(name) += v;
}

void StatSet::save_state(service::ByteWriter& w) const {
  w.put_u32(static_cast<u32>(names_.size()));
  for (std::size_t i = 0; i < names_.size(); ++i) {
    w.put_string(names_[i]);
    w.put_u64(slot(i));
  }
}

void StatSet::restore_state(service::ByteReader& r) {
  const u32 n = r.get_u32();
  for (u32 i = 0; i < n; ++i) {
    const std::string name = r.get_string();
    counter(name) = r.get_u64();
  }
}

}  // namespace laec
