// Bit-manipulation helpers shared by the ECC codecs and the cache arrays.
#pragma once

#include <bit>
#include <cassert>

#include "common/types.hpp"

namespace laec {

/// Number of set bits.
[[nodiscard]] constexpr int popcount64(u64 v) { return std::popcount(v); }

/// Even parity of a word: 0 when the number of set bits is even.
[[nodiscard]] constexpr u32 parity64(u64 v) {
  return static_cast<u32>(std::popcount(v) & 1);
}

/// Extract bit `pos` (0 = LSB).
[[nodiscard]] constexpr u32 get_bit(u64 v, unsigned pos) {
  assert(pos < 64);
  return static_cast<u32>((v >> pos) & 1u);
}

/// Return `v` with bit `pos` set to `bit` (0/1).
[[nodiscard]] constexpr u64 set_bit(u64 v, unsigned pos, u32 bit) {
  assert(pos < 64);
  const u64 mask = u64{1} << pos;
  return bit ? (v | mask) : (v & ~mask);
}

/// Return `v` with bit `pos` flipped.
[[nodiscard]] constexpr u64 flip_bit(u64 v, unsigned pos) {
  assert(pos < 64);
  return v ^ (u64{1} << pos);
}

/// Mask with the low `n` bits set (n in [0,64]).
[[nodiscard]] constexpr u64 low_mask(unsigned n) {
  assert(n <= 64);
  return n == 64 ? ~u64{0} : (u64{1} << n) - 1;
}

/// True when `v` is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(u64 v) { return std::has_single_bit(v); }

/// log2 of a power of two.
[[nodiscard]] constexpr unsigned log2_pow2(u64 v) {
  assert(is_pow2(v));
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Sign-extend the low `bits` bits of `v` to 32 bits.
[[nodiscard]] constexpr i32 sign_extend(u32 v, unsigned bits) {
  assert(bits >= 1 && bits <= 32);
  const u32 m = u32{1} << (bits - 1);
  const u32 x = v & static_cast<u32>(low_mask(bits));
  return static_cast<i32>((x ^ m) - m);
}

}  // namespace laec
