#include "model/analytical.hpp"

#include <algorithm>

namespace laec::model {

OverheadPrediction predict(const WorkloadParams& w, double ec_structural) {
  OverheadPrediction p;
  const double d1 = w.dep_frac * w.d1_share;
  const double d2 = w.dep_frac * (1.0 - w.d1_share);
  const double per_hit = w.load_frac * w.hit_frac / std::max(w.base_cpi, 1e-9);

  const double delta_es = d1 + d2;
  const double delta_ec = d1 + d2 + ec_structural;
  const double delta_laec = w.addr_dep_frac * (d1 + d2);

  p.extra_stage = per_hit * delta_es;
  p.extra_cycle = per_hit * delta_ec;
  p.laec = per_hit * delta_laec;
  return p;
}

}  // namespace laec::model
