// Closed-form overhead model.
//
// The paper's entire effect is load-use scheduling, so the execution-time
// increase of each scheme can be predicted from the Table II
// characterization alone:
//
//   f   loads per instruction
//   h   DL1 load hit fraction
//   d1  fraction of loads whose consumer retires at distance 1
//   d2  ... at distance 2 (Table II reports d = d1 + d2)
//   a   fraction of loads whose address producer is the immediately
//       preceding instruction (not in Table II; the free parameter
//       estimated from Fig. 8 — see EXPERIMENTS.md)
//
// Extra stall cycles per load hit relative to the unprotected design
// (DESIGN.md §2 stall table: no-ECC already pays d1 * 1):
//
//   Extra Stage:  d1 + d2
//   Extra Cycle:  d1 + d2 + s        (s = structural second-M-cycle factor:
//                                      probability the *next* pipelined
//                                      instruction is delayed by the busy M)
//   LAEC:         a * (d1 + d2)      (anticipated loads behave like no-ECC)
//
// and execution-time increase = f * h * delta / CPI_base.
//
// Benchmark A2 (bench/ablation_analytical) compares these predictions with
// full simulation.
#pragma once

namespace laec::model {

struct WorkloadParams {
  double load_frac = 0.25;   ///< f
  double hit_frac = 0.89;    ///< h
  double dep_frac = 0.60;    ///< d1 + d2
  double d1_share = 2.0 / 3.0;  ///< d1 / (d1 + d2) split assumption
  double addr_dep_frac = 0.39;  ///< a
  double base_cpi = 1.33;       ///< CPI of the unprotected design
};

struct OverheadPrediction {
  double extra_cycle = 0.0;  ///< predicted exec-time increase (e.g. 0.17)
  double extra_stage = 0.0;
  double laec = 0.0;
};

/// `ec_structural` is the s factor above (calibrated default 0.5).
[[nodiscard]] OverheadPrediction predict(const WorkloadParams& w,
                                         double ec_structural = 0.5);

}  // namespace laec::model
