// Kernels: aifftr, aiifft, aifirf, iirflt.
#include <cmath>

#include "workloads/kernel_util.hpp"

namespace laec::workloads {

using detail::expect_word;
using detail::expect_words;
using detail::q15_mul;
using isa::Assembler;
using isa::R;

namespace {

// ---------------------------------------------------------------------------
// Shared fixed-point radix-2 FFT builder (forward / inverse differ only in
// the twiddle sign). N = 128, Q15 twiddles, per-stage >>1 scaling so values
// never overflow the low-32 product window of q15_mul.
//
// Twiddle index generation (j << shift) lands immediately before the twiddle
// loads — the address-producer pattern that blocks LAEC anticipation on
// these benchmarks (Fig. 8: aifftr/aiifft show LAEC ~= Extra Stage).
// ---------------------------------------------------------------------------
constexpr int kFftN = 128;
constexpr int kFftLogN = 7;

BuiltKernel build_fft(const char* name, bool inverse, u64 seed) {
  Assembler a(name);

  // Input data and twiddle tables.
  const auto re_in = detail::random_words(kFftN, seed, -1000, 1000);
  const auto im_in = detail::random_words(kFftN, seed ^ 0xff, -1000, 1000);
  std::vector<u32> wre(kFftN / 2), wim(kFftN / 2), revt(kFftN);
  for (int j = 0; j < kFftN / 2; ++j) {
    const double ang = 2.0 * 3.14159265358979323846 * j / kFftN;
    const double s = inverse ? 1.0 : -1.0;
    wre[j] = static_cast<u32>(static_cast<i32>(std::lround(32767 * std::cos(ang))));
    wim[j] = static_cast<u32>(static_cast<i32>(std::lround(32767 * s * std::sin(ang))));
  }
  for (int i = 0; i < kFftN; ++i) {
    u32 r = 0;
    for (int b = 0; b < kFftLogN; ++b) {
      r |= ((static_cast<u32>(i) >> b) & 1u) << (kFftLogN - 1 - b);
    }
    revt[i] = r * 4;  // byte offset
  }
  const Addr aRe = a.data_words(re_in);
  const Addr aIm = a.data_words(im_in);
  const Addr aWre = a.data_words(wre);
  const Addr aWim = a.data_words(wim);
  const Addr aRev = a.data_words(revt);

  // --- C++ reference (mirrors the assembly op-for-op) ---------------------
  std::vector<i32> re(kFftN), im(kFftN);
  for (int i = 0; i < kFftN; ++i) {
    re[i] = static_cast<i32>(re_in[i]);
    im[i] = static_cast<i32>(im_in[i]);
  }
  for (int i = 0; i < kFftN; ++i) {
    const int r = static_cast<int>(revt[i] / 4);
    if (i < r) {
      std::swap(re[i], re[r]);
      std::swap(im[i], im[r]);
    }
  }
  for (int len = 2; len <= kFftN; len <<= 1) {
    const int half = len / 2;
    const int shift = kFftLogN - static_cast<int>(std::log2(len));
    for (int i = 0; i < kFftN; i += len) {
      for (int j = 0; j < half; ++j) {
        const int tw = j << shift;
        const i32 wr = static_cast<i32>(wre[tw]);
        const i32 wi = static_cast<i32>(wim[tw]);
        const i32 br = re[i + j + half], bi = im[i + j + half];
        const i32 ar = re[i + j], ai = im[i + j];
        const i32 tr = q15_mul(wr, br) - q15_mul(wi, bi);
        const i32 ti = q15_mul(wr, bi) + q15_mul(wi, br);
        re[i + j] = (ar + tr) >> 1;
        im[i + j] = (ai + ti) >> 1;
        re[i + j + half] = (ar - tr) >> 1;
        im[i + j + half] = (ai - ti) >> 1;
      }
    }
  }

  // --- assembly -------------------------------------------------------------
  // Bit-reverse permutation: swap when i < rev[i].
  // r1=&re r2=&im r3=&rev r4=i*4
  a.li(R{1}, aRe).li(R{2}, aIm).li(R{3}, aRev).li(R{4}, 0);
  a.label("rev");
  a.add(R{5}, R{3}, R{4});       // &rev[i]  (address producer)
  a.lw(R{6}, R{5}, 0);           // r = rev[i]*4
  a.bge(R{4}, R{6}, "norev");    // consumer at distance 1
  a.lw(R{7}, R{1}, R{4});        // re[i]
  a.lw(R{8}, R{1}, R{6});        // re[r]
  a.sw(R{8}, R{1}, R{4});
  a.sw(R{7}, R{1}, R{6});
  a.lw(R{7}, R{2}, R{4});
  a.lw(R{8}, R{2}, R{6});
  a.sw(R{8}, R{2}, R{4});
  a.sw(R{7}, R{2}, R{6});
  a.label("norev");
  a.addi(R{4}, R{4}, 4);
  a.slti(R{5}, R{4}, 4 * kFftN);
  a.bne(R{5}, R{0}, "rev");

  // Butterflies. r9=len*4, r10=half*4, r11=tw shift, r12=i*4, r13=j*4.
  a.li(R{3}, aWre).li(R{4}, aWim);
  a.li(R{9}, 8).li(R{11}, kFftLogN - 1);
  a.label("stage");
  a.srli(R{10}, R{9}, 1);        // half*4
  a.li(R{12}, 0);
  a.label("group");
  a.li(R{13}, 0);
  a.label("bfly");
  a.add(R{14}, R{12}, R{13});    // a index bytes
  a.add(R{15}, R{14}, R{10});    // b index bytes
  a.lw(R{16}, R{1}, R{14});      // a_re
  a.lw(R{17}, R{2}, R{14});      // a_im
  a.lw(R{18}, R{1}, R{15});      // b_re
  a.lw(R{19}, R{2}, R{15});      // b_im
  a.sll(R{20}, R{13}, R{11});    // twiddle byte offset (address producer)
  a.lw(R{21}, R{3}, R{20});      // w_re  <- blocked look-ahead
  a.lw(R{22}, R{4}, R{20});      // w_im
  a.mul(R{23}, R{21}, R{18});    // wr*br
  a.srai(R{23}, R{23}, 15);
  a.mul(R{24}, R{22}, R{19});    // wi*bi
  a.srai(R{24}, R{24}, 15);
  a.sub(R{23}, R{23}, R{24});    // t_re
  a.mul(R{24}, R{21}, R{19});    // wr*bi
  a.srai(R{24}, R{24}, 15);
  a.mul(R{25}, R{22}, R{18});    // wi*br
  a.srai(R{25}, R{25}, 15);
  a.add(R{24}, R{24}, R{25});    // t_im
  a.add(R{26}, R{16}, R{23});
  a.srai(R{26}, R{26}, 1);
  a.sw(R{26}, R{1}, R{14});      // re[a]
  a.sub(R{26}, R{16}, R{23});
  a.srai(R{26}, R{26}, 1);
  a.sw(R{26}, R{1}, R{15});      // re[b]
  a.add(R{26}, R{17}, R{24});
  a.srai(R{26}, R{26}, 1);
  a.sw(R{26}, R{2}, R{14});      // im[a]
  a.sub(R{26}, R{17}, R{24});
  a.srai(R{26}, R{26}, 1);
  a.sw(R{26}, R{2}, R{15});      // im[b]
  a.addi(R{13}, R{13}, 4);
  a.blt(R{13}, R{10}, "bfly");
  a.add(R{12}, R{12}, R{9});
  a.slti(R{5}, R{12}, 4 * kFftN);
  a.bne(R{5}, R{0}, "group");
  a.slli(R{9}, R{9}, 1);
  a.subi(R{11}, R{11}, 1);
  a.slti(R{5}, R{9}, 4 * kFftN * 2);
  a.bne(R{5}, R{0}, "stage");
  a.halt();

  BuiltKernel k{a.finish(), {}};
  std::vector<u32> exp_re(kFftN), exp_im(kFftN);
  for (int i = 0; i < kFftN; ++i) {
    exp_re[i] = static_cast<u32>(re[i]);
    exp_im[i] = static_cast<u32>(im[i]);
  }
  expect_words(k, aRe, exp_re);
  expect_words(k, aIm, exp_im);
  return k;
}

}  // namespace

BuiltKernel build_aifftr() { return build_fft("aifftr", false, 0x61); }
BuiltKernel build_aiifft() { return build_fft("aiifft", true, 0x62); }

// ---------------------------------------------------------------------------
// aifirf — 32-tap Q15 FIR filter over 256 samples.
// One operand streams through a plain pointer (anticipatable), the other
// through a computed address (producer at distance 1): a moderate
// addr-dep mix, like the paper's aifirf.
// ---------------------------------------------------------------------------
BuiltKernel build_aifirf() {
  constexpr int kTaps = 32, kOut = 256;
  Assembler a("aifirf");
  const auto x = detail::random_words(kOut + kTaps, 0x71, -8000, 8000);
  const auto h = detail::random_words(kTaps, 0x72, -2000, 2000);
  const Addr aX = a.data_words(x);
  const Addr aH = a.data_words(h);
  const Addr aY = a.data_fill(kOut, 0);

  std::vector<u32> y(kOut);
  for (int n = 0; n < kOut; ++n) {
    i32 acc = 0;
    for (int t = 0; t < kTaps; ++t) {
      acc += q15_mul(static_cast<i32>(h[t]), static_cast<i32>(x[n + t]));
    }
    y[n] = static_cast<u32>(acc);
  }

  // r1=&x[n] r2=&h r3=&y r4=n r5=t*4 r6=acc
  a.li(R{1}, aX).li(R{2}, aH).li(R{3}, aY).li(R{4}, kOut);
  a.label("sample");
  a.li(R{5}, 0).li(R{6}, 0);
  a.label("tap");
  a.lw(R{7}, R{2}, R{5});        // h[t] (plain stream)
  a.add(R{8}, R{1}, R{5});       // &x[n+t] (address producer)
  a.lw(R{9}, R{8}, 0);           // blocked look-ahead
  a.mul(R{10}, R{7}, R{9});      // consumer at distance 1
  a.srai(R{10}, R{10}, 15);
  a.add(R{6}, R{6}, R{10});
  a.addi(R{5}, R{5}, 4);
  a.slti(R{11}, R{5}, 4 * kTaps);
  a.bne(R{11}, R{0}, "tap");
  a.sw(R{6}, R{3}, 0);
  a.addi(R{1}, R{1}, 4);
  a.addi(R{3}, R{3}, 4);
  a.subi(R{4}, R{4}, 1);
  a.bne(R{4}, R{0}, "sample");
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_words(k, aY, y);
  return k;
}

// ---------------------------------------------------------------------------
// iirflt — cascade of 4 biquad sections (memory-resident coefficients and
// state, Q14 feed-forward, damped Q16 feedback so values stay bounded).
// ---------------------------------------------------------------------------
BuiltKernel build_iirflt() {
  constexpr int kSections = 4, kSamples = 256;
  Assembler a("iirflt");
  const auto xin = detail::random_words(kSamples, 0x81, -2000, 2000);
  const auto b0 = detail::random_words(kSections, 0x82, -12000, 12000);
  const auto b1 = detail::random_words(kSections, 0x83, -12000, 12000);
  const auto b2 = detail::random_words(kSections, 0x84, -12000, 12000);
  const auto a1 = detail::random_words(kSections, 0x85, -4000, 4000);
  const auto a2 = detail::random_words(kSections, 0x86, -4000, 4000);
  const Addr aXin = a.data_words(xin);
  // Coefficient block: per section [b0 b1 b2 a1 a2], then state [x1 x2 y1 y2].
  std::vector<u32> coeff, state(4 * kSections, 0);
  for (int s = 0; s < kSections; ++s) {
    coeff.push_back(b0[s]);
    coeff.push_back(b1[s]);
    coeff.push_back(b2[s]);
    coeff.push_back(a1[s]);
    coeff.push_back(a2[s]);
  }
  const Addr aCoef = a.data_words(coeff);
  const Addr aState = a.data_words(state);
  const Addr aYout = a.data_fill(kSamples, 0);

  // Reference.
  std::vector<i32> st(4 * kSections, 0);
  std::vector<u32> yout(kSamples);
  for (int n = 0; n < kSamples; ++n) {
    i32 v = static_cast<i32>(xin[n]);
    for (int s = 0; s < kSections; ++s) {
      i32* S = &st[4 * s];  // x1 x2 y1 y2
      // Sums in u32 so any wraparound matches the machine's modular adds.
      const auto m = [](u32 c, i32 x) {
        return static_cast<u32>(static_cast<i32>(c) * x);
      };
      i32 acc = static_cast<i32>(m(b0[s], v) + m(b1[s], S[0]) +
                                 m(b2[s], S[1]));
      acc >>= 14;
      i32 fb = static_cast<i32>(m(a1[s], S[2]) + m(a2[s], S[3]));
      fb >>= 16;
      const i32 y = acc + fb;
      S[1] = S[0];
      S[0] = v;
      S[3] = S[2];
      S[2] = y;
      v = y;
    }
    yout[n] = static_cast<u32>(v);
  }

  // r1=&x r2=n r3=&y r4=&coef r5=&state r6=section r7=v
  a.li(R{1}, aXin).li(R{2}, kSamples).li(R{3}, aYout);
  a.label("sample");
  a.lw(R{7}, R{1}, 0);           // v = x[n]
  a.li(R{4}, aCoef).li(R{5}, aState).li(R{6}, kSections);
  a.label("section");
  a.lw(R{8}, R{4}, 0);           // b0
  a.mul(R{15}, R{8}, R{7});      // b0*v
  a.lw(R{9}, R{4}, 4);           // b1
  a.lw(R{10}, R{5}, 0);          // x1
  a.mul(R{16}, R{9}, R{10});     // consumer at distance 1
  a.add(R{15}, R{15}, R{16});
  a.lw(R{11}, R{4}, 8);          // b2
  a.lw(R{12}, R{5}, 4);          // x2
  a.mul(R{16}, R{11}, R{12});
  a.add(R{15}, R{15}, R{16});
  a.srai(R{15}, R{15}, 14);      // acc
  a.lw(R{13}, R{4}, 12);         // a1c
  a.lw(R{14}, R{5}, 8);          // y1
  a.mul(R{16}, R{13}, R{14});
  a.lw(R{17}, R{4}, 16);         // a2c
  a.lw(R{18}, R{5}, 12);         // y2
  a.mul(R{19}, R{17}, R{18});
  a.add(R{16}, R{16}, R{19});
  a.srai(R{16}, R{16}, 16);      // fb
  a.add(R{15}, R{15}, R{16});    // y
  a.sw(R{10}, R{5}, 4);          // x2 = x1
  a.sw(R{7}, R{5}, 0);           // x1 = v
  a.sw(R{14}, R{5}, 12);         // y2 = y1
  a.sw(R{15}, R{5}, 8);          // y1 = y
  a.mv(R{7}, R{15});             // v = y
  a.addi(R{4}, R{4}, 20);
  a.addi(R{5}, R{5}, 16);
  a.subi(R{6}, R{6}, 1);
  a.bne(R{6}, R{0}, "section");
  a.sw(R{7}, R{3}, 0);
  a.addi(R{1}, R{1}, 4);
  a.addi(R{3}, R{3}, 4);
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "sample");
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_words(k, aYout, yout);
  return k;
}

}  // namespace laec::workloads
