#include "workloads/eembc.hpp"

#include <stdexcept>

namespace laec::workloads {

// Table II percentages transcribed from the paper; addr_dep_frac is the
// free calibration parameter estimated from Fig. 8 (high for the four
// benchmarks where LAEC ~= Extra Stage, low where LAEC < 1%).
const std::vector<KernelEntry>& eembc_kernels() {
  static const std::vector<KernelEntry> k = {
      {"a2time", "angle-to-time ignition conversion", &build_a2time,
       {89, 68, 23}, 0.45},
      {"aifftr", "fixed-point radix-2 FFT", &build_aifftr,
       {97, 53, 21}, 0.90},
      {"aifirf", "FIR filter bank", &build_aifirf, {90, 66, 26}, 0.35},
      {"aiifft", "fixed-point inverse FFT", &build_aiifft,
       {97, 54, 21}, 0.90},
      {"basefp", "basic arithmetic (fixed-point substitution)", &build_basefp,
       {84, 80, 24}, 0.08},
      {"bitmnp", "bit manipulation", &build_bitmnp, {98, 65, 20}, 0.85},
      {"cacheb", "cache buster (streaming, few consumers)", &build_cacheb,
       {77, 13, 18}, 0.10},
      {"canrdr", "CAN remote data request parsing", &build_canrdr,
       {86, 67, 29}, 0.10},
      {"idctrn", "inverse DCT", &build_idctrn, {92, 59, 21}, 0.40},
      {"iirflt", "IIR filter cascade", &build_iirflt, {86, 63, 26}, 0.35},
      {"matrix", "matrix arithmetic", &build_matrix, {99, 64, 20}, 0.88},
      {"pntrch", "pointer chase", &build_pntrch, {90, 61, 25}, 0.40},
      {"puwmod", "pulse-width modulation", &build_puwmod, {85, 66, 31}, 0.08},
      {"rspeed", "road speed calculation", &build_rspeed, {84, 66, 29}, 0.08},
      {"tblook", "table lookup and interpolation", &build_tblook,
       {88, 68, 29}, 0.30},
      {"ttsprk", "tooth-to-spark timing", &build_ttsprk, {84, 61, 31}, 0.08},
  };
  return k;
}

const KernelEntry& kernel_by_name(const std::string& name) {
  for (const KernelEntry& e : eembc_kernels()) {
    if (name == e.name) return e;
  }
  throw std::out_of_range("unknown kernel '" + name + "'");
}

}  // namespace laec::workloads
