// Kernels: matrix, idctrn, basefp, bitmnp.
#include "workloads/kernel_util.hpp"

namespace laec::workloads {

using detail::expect_word;
using detail::expect_words;
using detail::isa_div;
using isa::Assembler;
using isa::R;

// ---------------------------------------------------------------------------
// matrix — dense 16x16 integer matrix multiply C = A*B.
//
// The inner loop computes both operand addresses with an explicit add right
// before each load, the codegen shape that makes LAEC ~= Extra Stage on this
// benchmark in Fig. 8 (address producer at distance 1).
// ---------------------------------------------------------------------------
BuiltKernel build_matrix() {
  constexpr int N = 16;
  Assembler a("matrix");
  const auto av = detail::random_words(N * N, 0x11, -99, 99);
  const auto bv = detail::random_words(N * N, 0x22, -99, 99);
  const Addr aA = a.data_words(av);
  const Addr aB = a.data_words(bv);
  const Addr aC = a.data_fill(N * N, 0);

  // Reference result.
  std::vector<u32> cv(N * N, 0);
  for (int i = 0; i < N; ++i) {
    for (int j = 0; j < N; ++j) {
      u32 acc = 0;
      for (int k = 0; k < N; ++k) {
        acc += av[i * N + k] * bv[k * N + j];
      }
      cv[i * N + j] = acc;
    }
  }

  // r1=i*4N (row byte offset), r2=j*4, r3=k*4, r4=acc, r5..r10 temps,
  // r11=&A, r12=&B, r13=&C, r14=k*4N (B row byte offset).
  a.li(R{11}, aA).li(R{12}, aB).li(R{13}, aC);
  a.li(R{1}, 0);
  a.label("loop_i");
  a.li(R{2}, 0);
  a.label("loop_j");
  a.li(R{3}, 0).li(R{4}, 0).li(R{14}, 0);
  a.label("loop_k");
  a.add(R{5}, R{11}, R{1});     // &A[i][0]
  a.add(R{5}, R{5}, R{3});      // address producer ...
  a.lw(R{6}, R{5}, 0);          // ... for this load (LAEC data hazard)
  a.add(R{7}, R{12}, R{14});    // &B[k][0]
  a.add(R{7}, R{7}, R{2});
  a.lw(R{8}, R{7}, 0);
  a.mul(R{9}, R{6}, R{8});      // consumer at distance 1
  a.add(R{4}, R{4}, R{9});
  a.addi(R{3}, R{3}, 4);
  a.addi(R{14}, R{14}, 4 * N);
  a.slti(R{10}, R{3}, 4 * N);
  a.bne(R{10}, R{0}, "loop_k");
  a.add(R{5}, R{13}, R{1});
  a.add(R{5}, R{5}, R{2});
  a.sw(R{4}, R{5}, 0);          // C[i][j]
  a.addi(R{2}, R{2}, 4);
  a.slti(R{10}, R{2}, 4 * N);
  a.bne(R{10}, R{0}, "loop_j");
  a.addi(R{1}, R{1}, 4 * N);
  a.slti(R{10}, R{1}, 4 * N * N);
  a.bne(R{10}, R{0}, "loop_i");
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_words(k, aC, cv);
  return k;
}

// ---------------------------------------------------------------------------
// idctrn — 2-D 8x8 inverse-DCT-like transform (fixed point, Q7 coefficients)
// over a sequence of blocks: out = T * block, row pass then column pass.
// ---------------------------------------------------------------------------
BuiltKernel build_idctrn() {
  constexpr int kBlocks = 12;
  Assembler a("idctrn");
  // Q7 "basis" matrix and input blocks.
  const auto tv = detail::random_words(64, 0x31, -127, 127);
  const auto blocks = detail::random_words(64 * kBlocks, 0x32, -255, 255);
  const Addr aT = a.data_words(tv);
  const Addr aIn = a.data_words(blocks);
  const Addr aOut = a.data_fill(64 * kBlocks, 0);

  // Reference: per block, out[i][j] = (sum_k T[i][k]*in[k][j]) >> 7.
  std::vector<u32> ov(64 * kBlocks, 0);
  for (int b = 0; b < kBlocks; ++b) {
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 8; ++j) {
        i32 acc = 0;
        for (int kk = 0; kk < 8; ++kk) {
          acc += static_cast<i32>(tv[i * 8 + kk]) *
                 static_cast<i32>(blocks[b * 64 + kk * 8 + j]);
        }
        ov[b * 64 + i * 8 + j] = static_cast<u32>(acc >> 7);
      }
    }
  }

  // r1=&T r2=&in(block) r3=&out(block) r4=block counter
  // r5=i*32 r6=j*4 r7=k*32 r8=acc r9..r12 temps
  a.li(R{1}, aT).li(R{2}, aIn).li(R{3}, aOut).li(R{4}, kBlocks);
  a.label("blk");
  a.li(R{5}, 0);
  a.label("row");
  a.li(R{6}, 0);
  a.label("col");
  a.li(R{7}, 0).li(R{8}, 0);
  a.label("mac");
  a.srli(R{9}, R{7}, 3);        // k*4
  a.add(R{9}, R{5}, R{9});      // i*32 + k*4 (address producer)
  a.add(R{9}, R{1}, R{9});
  a.lw(R{10}, R{9}, 0);         // T[i][k]
  a.add(R{11}, R{7}, R{6});     // k*32 + j*4
  a.add(R{11}, R{2}, R{11});
  a.lw(R{12}, R{11}, 0);        // in[k][j], consumer next
  a.mul(R{12}, R{10}, R{12});
  a.add(R{8}, R{8}, R{12});
  a.addi(R{7}, R{7}, 32);
  a.slti(R{9}, R{7}, 256);
  a.bne(R{9}, R{0}, "mac");
  a.srai(R{8}, R{8}, 7);
  a.add(R{9}, R{5}, R{6});
  a.add(R{9}, R{3}, R{9});
  a.sw(R{8}, R{9}, 0);
  a.addi(R{6}, R{6}, 4);
  a.slti(R{9}, R{6}, 32);
  a.bne(R{9}, R{0}, "col");
  a.addi(R{5}, R{5}, 32);
  a.slti(R{9}, R{5}, 256);
  a.bne(R{9}, R{0}, "row");
  a.addi(R{2}, R{2}, 256);
  a.addi(R{3}, R{3}, 256);
  a.subi(R{4}, R{4}, 1);
  a.bne(R{4}, R{0}, "blk");
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_words(k, aOut, ov);
  return k;
}

// ---------------------------------------------------------------------------
// basefp — "basic floating point" substituted with Q16.16 fixed point
// (DESIGN.md §4): element-wise a*b/c accumulation plus running min/max.
// Loads walk pointers linearly (no address producers: LAEC anticipates
// nearly everything, matching its <1% Fig. 8 overhead).
// ---------------------------------------------------------------------------
BuiltKernel build_basefp() {
  constexpr int N = 1024;
  Assembler a("basefp");
  const auto xv = detail::random_words(N, 0x41, 1, 1 << 18);
  const auto yv = detail::random_words(N, 0x42, 1, 1 << 14);
  const auto zv = detail::random_words(N, 0x43, 1, 255);
  const Addr aX = a.data_words(xv);
  const Addr aY = a.data_words(yv);
  const Addr aZ = a.data_words(zv);
  const Addr aOut = a.data_fill(4, 0);

  u32 acc = 0;
  u32 mx = 0;
  for (int i = 0; i < N; ++i) {
    const i32 p = detail::isa_div(
        static_cast<i32>(static_cast<u32>(
            static_cast<i64>(xv[i]) * static_cast<i64>(yv[i]) >> 16)),
        static_cast<i32>(zv[i]));
    acc += static_cast<u32>(p);
    if (static_cast<i32>(xv[i]) > static_cast<i32>(mx)) mx = xv[i];
  }

  // r1=&x r2=&y r3=&z r4=count r5=acc r6=max
  a.li(R{1}, aX).li(R{2}, aY).li(R{3}, aZ).li(R{4}, N);
  a.li(R{5}, 0).li(R{6}, 0);
  a.label("loop");
  a.lw(R{7}, R{1}, 0);
  a.lw(R{8}, R{2}, 0);     // consumer of neither; r7 consumed at distance 2
  a.mul(R{9}, R{7}, R{8});
  a.mulh(R{10}, R{7}, R{8});
  a.srli(R{9}, R{9}, 16);
  a.slli(R{10}, R{10}, 16);
  a.or_(R{9}, R{9}, R{10});    // (x*y) >> 16 in 32 bits
  a.lw(R{11}, R{3}, 0);
  a.div(R{12}, R{9}, R{11});   // consumer at distance 1 (div!)
  a.add(R{5}, R{5}, R{12});
  a.slt(R{13}, R{6}, R{7});
  a.beq(R{13}, R{0}, "no_max");
  a.mv(R{6}, R{7});
  a.label("no_max");
  a.addi(R{1}, R{1}, 4);
  a.addi(R{2}, R{2}, 4);
  a.addi(R{3}, R{3}, 4);
  a.subi(R{4}, R{4}, 1);
  a.bne(R{4}, R{0}, "loop");
  a.li(R{20}, aOut);
  a.sw(R{5}, R{20}, 0);
  a.sw(R{6}, R{20}, 4);
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_word(k, aOut, acc);
  expect_word(k, aOut + 4, mx);
  return k;
}

// ---------------------------------------------------------------------------
// bitmnp — bit manipulation: per word, reverse bits via table lookups of
// nibbles and count set bits; indices are computed (shift+mask) immediately
// before each table load (high address-producer fraction, like Fig. 8).
// ---------------------------------------------------------------------------
BuiltKernel build_bitmnp() {
  constexpr int N = 1024;
  Assembler a("bitmnp");
  // 16-entry nibble-reverse and popcount tables.
  std::vector<u32> rev16(16), pop16(16);
  for (u32 i = 0; i < 16; ++i) {
    rev16[i] = ((i & 1) << 3) | ((i & 2) << 1) | ((i & 4) >> 1) | (i >> 3);
    pop16[i] = static_cast<u32>(__builtin_popcount(i));
  }
  const auto input = detail::random_words(N, 0x51, 0, 0xffff);
  const Addr aRev = a.data_words(rev16);
  const Addr aPop = a.data_words(pop16);
  const Addr aIn = a.data_words(input);
  const Addr aOut = a.data_fill(2, 0);

  u32 acc_rev = 0, acc_pop = 0;
  for (int i = 0; i < N; ++i) {
    const u32 v = input[i];
    const u32 lo = v & 0xf, hi = (v >> 4) & 0xf;
    acc_rev += (rev16[lo] << 4) | rev16[hi];
    acc_pop += pop16[lo] + pop16[hi] + pop16[(v >> 8) & 0xf];
  }

  // r1=&in r2=count r3=&rev r4=&pop r5=acc_rev r6=acc_pop
  a.li(R{1}, aIn).li(R{2}, N).li(R{3}, aRev).li(R{4}, aPop);
  a.li(R{5}, 0).li(R{6}, 0);
  a.label("loop");
  a.lw(R{7}, R{1}, 0);           // v
  a.andi(R{8}, R{7}, 0xf);
  a.slli(R{8}, R{8}, 2);
  a.add(R{8}, R{3}, R{8});       // address producer
  a.lw(R{9}, R{8}, 0);           // rev16[lo]
  a.srli(R{10}, R{7}, 4);
  a.andi(R{10}, R{10}, 0xf);
  a.slli(R{10}, R{10}, 2);
  a.add(R{10}, R{3}, R{10});
  a.lw(R{11}, R{10}, 0);         // rev16[hi], consumed next
  a.slli(R{12}, R{9}, 4);
  a.or_(R{12}, R{12}, R{11});
  a.add(R{5}, R{5}, R{12});
  a.andi(R{13}, R{7}, 0xf);
  a.slli(R{13}, R{13}, 2);
  a.add(R{13}, R{4}, R{13});
  a.lw(R{14}, R{13}, 0);         // pop16[lo]
  a.srli(R{15}, R{7}, 4);
  a.andi(R{15}, R{15}, 0xf);
  a.slli(R{15}, R{15}, 2);
  a.add(R{15}, R{4}, R{15});
  a.lw(R{16}, R{15}, 0);         // pop16[hi]
  a.add(R{14}, R{14}, R{16});
  a.srli(R{17}, R{7}, 8);
  a.andi(R{17}, R{17}, 0xf);
  a.slli(R{17}, R{17}, 2);
  a.add(R{17}, R{4}, R{17});
  a.lw(R{18}, R{17}, 0);         // pop16[mid]
  a.add(R{14}, R{14}, R{18});
  a.add(R{6}, R{6}, R{14});
  a.addi(R{1}, R{1}, 4);
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "loop");
  a.li(R{20}, aOut);
  a.sw(R{5}, R{20}, 0);
  a.sw(R{6}, R{20}, 4);
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_word(k, aOut, acc_rev);
  expect_word(k, aOut + 4, acc_pop);
  return k;
}

}  // namespace laec::workloads
