// Calibrated synthetic trace generator.
//
// Produces an instruction stream whose Table II characterization matches a
// requested parameter set *by construction*: instruction-kind mix, DL1 load
// hit ratio (oracle-classified), consumer-at-distance-1/2 fraction, and
// address-producer-at-distance-1 fraction (the LAEC blocker). Dependences
// are realized through real register assignments, so the pipeline's hazard
// logic — not the generator — produces the stalls.
//
// Register discipline (so no accidental dependences arise):
//   r1..r7    "cold" sources: never written, always ready
//   r8..r23   destination pool, round-robin (redefinition distance 16)
//   r24..r27  address-producer pool for addr-dep pairs
#pragma once

#include <deque>

#include "common/rng.hpp"
#include "cpu/trace_source.hpp"
#include "workloads/eembc.hpp"

namespace laec::workloads {

struct SyntheticParams {
  double load_frac = 0.25;
  double store_frac = 0.08;
  double branch_frac = 0.10;
  double hit_frac = 0.89;        ///< load hits (stores use store_hit_frac)
  double store_hit_frac = 0.90;
  double dep_frac = 0.60;        ///< consumer at distance 1 or 2
  double d1_share = 2.0 / 3.0;   ///< of dependent loads, share at distance 1
  double addr_dep_frac = 0.39;   ///< producer of the base register at distance 1
  u64 num_ops = 200'000;
  u64 seed = 0xeeb;

  /// Derive parameters from a kernel's Table II row.
  [[nodiscard]] static SyntheticParams from_kernel(const KernelEntry& k,
                                                   u64 num_ops = 200'000);
};

class SyntheticTrace final : public cpu::TraceSource {
 public:
  explicit SyntheticTrace(const SyntheticParams& p);

  std::optional<cpu::TraceOp> next() override;

  [[nodiscard]] const SyntheticParams& params() const { return params_; }

 private:
  void refill_block();

  SyntheticParams params_;
  Rng rng_;
  u64 remaining_;
  std::deque<cpu::TraceOp> q_;
  unsigned dest_rr_ = 0;  // round-robin cursor into the destination pool
  unsigned addr_rr_ = 0;  // round-robin cursor into the address pool
  Addr addr_cursor_ = 0x0020'0000;
};

}  // namespace laec::workloads
