// Kernels: cacheb, pntrch, tblook, canrdr.
#include "workloads/kernel_util.hpp"

namespace laec::workloads {

using detail::expect_word;
using detail::expect_words;
using detail::isa_div;
using isa::Assembler;
using isa::R;

// ---------------------------------------------------------------------------
// cacheb — cache buster: a line-stride streaming pass over a 64 KB buffer
// (every streaming load misses the 16 KB DL1) interleaved with hits into a
// small resident buffer. Very few loads have nearby consumers — the paper's
// outlier benchmark (dep = 13%), which is why Extra Stage costs it almost
// nothing (Fig. 8).
// ---------------------------------------------------------------------------
BuiltKernel build_cacheb() {
  constexpr u32 kBig = 64 * 1024;      // streamed footprint (bytes)
  constexpr u32 kStride = 32;          // one DL1 line
  constexpr int kLocal = 64;           // resident words
  Assembler a("cacheb");
  const auto big = detail::random_words(kBig / 4, 0x91, 0, 0xffff);
  const auto local = detail::random_words(kLocal, 0x92, 0, 0xffff);
  const Addr aBig = a.data_words(big);
  const Addr aLoc = a.data_words(local);
  const Addr aOut = a.data_fill(2, 0);

  u32 acc = 0, lacc = 0;
  for (u32 off = 0; off < kBig; off += kStride) {
    acc += big[off / 4];
    const u32 li = (off / kStride) % kLocal;
    // Three independent local reads; results folded in much later.
    lacc += local[li] ^ local[(li + 7) % kLocal] ^ local[(li + 13) % kLocal];
  }

  // r1=&big r2=offset r3=&local r4=acc r5=lacc
  a.li(R{1}, aBig).li(R{2}, 0).li(R{3}, aLoc);
  a.li(R{4}, 0).li(R{5}, 0);
  a.label("loop");
  a.lw(R{6}, R{1}, R{2});        // streaming load (miss); no nearby consumer
  a.srli(R{7}, R{2}, 5);         // line index
  a.andi(R{7}, R{7}, kLocal - 1);
  a.slli(R{7}, R{7}, 2);
  a.lw(R{8}, R{3}, R{7});        // local[li]
  a.addi(R{9}, R{7}, 28);
  a.andi(R{9}, R{9}, (kLocal - 1) * 4);
  a.lw(R{10}, R{3}, R{9});       // local[(li+7)%64]
  a.addi(R{11}, R{7}, 52);
  a.andi(R{11}, R{11}, (kLocal - 1) * 4);
  a.lw(R{12}, R{3}, R{11});      // local[(li+13)%64]
  a.add(R{4}, R{4}, R{6});       // the streaming value, distance 6
  a.xor_(R{13}, R{8}, R{10});
  a.xor_(R{13}, R{13}, R{12});
  a.add(R{5}, R{5}, R{13});
  a.addi(R{2}, R{2}, kStride);
  a.li(R{14}, kBig);
  a.bltu(R{2}, R{14}, "loop");
  a.li(R{20}, aOut);
  a.sw(R{4}, R{20}, 0);
  a.sw(R{5}, R{20}, 4);
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_word(k, aOut, acc);
  expect_word(k, aOut + 4, lacc);
  return k;
}

// ---------------------------------------------------------------------------
// pntrch — pointer chase through a shuffled singly-linked ring of 512
// 8-byte nodes {next, value}; three full traversals accumulating values and
// tracking the maximum.
// ---------------------------------------------------------------------------
BuiltKernel build_pntrch() {
  constexpr int kNodes = 512;
  Assembler a("pntrch");

  // Build a random ring permutation.
  Rng rng(0xa1);
  std::vector<u32> order(kNodes);
  for (int i = 0; i < kNodes; ++i) order[static_cast<std::size_t>(i)] = static_cast<u32>(i);
  for (std::size_t i = kNodes; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  const auto values = detail::random_words(kNodes, 0xa2, 0, 100000);

  // Nodes at aNodes + 8*i : word0 = address of next node, word1 = value.
  std::vector<u32> nodes(2 * kNodes, 0);
  const Addr aNodes = a.data_cursor();
  for (int i = 0; i < kNodes; ++i) {
    const u32 cur = order[static_cast<std::size_t>(i)];
    const u32 nxt = order[static_cast<std::size_t>((i + 1) % kNodes)];
    nodes[2 * cur] = aNodes + 8 * nxt;
    nodes[2 * cur + 1] = values[cur];
  }
  a.data_words(nodes);
  const Addr aOut = a.data_fill(2, 0);

  u32 acc = 0, mx = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < kNodes; ++i) {
      acc += values[static_cast<std::size_t>(i)];
      if (values[static_cast<std::size_t>(i)] > mx) mx = values[static_cast<std::size_t>(i)];
    }
  }

  // r1=ptr r2=remaining r3=acc r4=max
  a.li(R{1}, aNodes + 8 * order[0]);
  a.li(R{2}, 3 * kNodes).li(R{3}, 0).li(R{4}, 0);
  a.label("walk");
  a.lw(R{5}, R{1}, 4);           // value
  a.add(R{3}, R{3}, R{5});       // consumer at distance 1
  a.lw(R{1}, R{1}, 0);           // ptr = ptr->next (serialising load)
  a.bltu(R{4}, R{5}, "newmax");
  a.j("cont");
  a.label("newmax");
  a.mv(R{4}, R{5});
  a.label("cont");
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "walk");
  a.li(R{20}, aOut);
  a.sw(R{3}, R{20}, 0);
  a.sw(R{4}, R{20}, 4);
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_word(k, aOut, acc);
  expect_word(k, aOut + 4, mx);
  return k;
}

// ---------------------------------------------------------------------------
// tblook — table lookup with linear interpolation: 256 probes into a sorted
// 64-entry (x, y) curve; the scan's comparison consumes each loaded x at
// distance 1, and the interpolation divides (multi-cycle EX).
// ---------------------------------------------------------------------------
BuiltKernel build_tblook() {
  constexpr int kEntries = 64, kProbes = 256;
  Assembler a("tblook");

  std::vector<u32> xs(kEntries), ys(kEntries);
  Rng rng(0xb1);
  u32 x = 100;
  for (int i = 0; i < kEntries; ++i) {
    x += 50 + static_cast<u32>(rng.below(200));
    xs[static_cast<std::size_t>(i)] = x;
    ys[static_cast<std::size_t>(i)] = static_cast<u32>(rng.below(50000));
  }
  std::vector<u32> keys(kProbes);
  for (auto& kv : keys) {
    kv = 150 + static_cast<u32>(rng.below(x));  // spread over the table
  }
  const Addr aXs = a.data_words(xs);
  const Addr aYs = a.data_words(ys);
  const Addr aKeys = a.data_words(keys);
  const Addr aOut = a.data_fill(kProbes, 0);

  // Reference: first i with xs[i] >= key (clamped), then interpolate
  // between i-1 and i.
  std::vector<u32> out(kProbes);
  for (int p = 0; p < kProbes; ++p) {
    const u32 key = keys[static_cast<std::size_t>(p)];
    int i = 0;
    while (i < kEntries - 1 &&
           xs[static_cast<std::size_t>(i)] < key) {
      ++i;
    }
    if (i == 0) {
      out[static_cast<std::size_t>(p)] = ys[0];
    } else {
      const i32 x0 = static_cast<i32>(xs[static_cast<std::size_t>(i - 1)]);
      const i32 x1 = static_cast<i32>(xs[static_cast<std::size_t>(i)]);
      const i32 y0 = static_cast<i32>(ys[static_cast<std::size_t>(i - 1)]);
      const i32 y1 = static_cast<i32>(ys[static_cast<std::size_t>(i)]);
      const i32 num = (y1 - y0) * (static_cast<i32>(key) - x0);
      out[static_cast<std::size_t>(p)] =
          static_cast<u32>(y0 + isa_div(num, x1 - x0));
    }
  }

  // r1=&keys r2=probe count r3=&out
  a.li(R{1}, aKeys).li(R{2}, kProbes).li(R{3}, aOut);
  a.li(R{10}, aXs).li(R{11}, aYs);
  a.label("probe");
  a.lw(R{4}, R{1}, 0);           // key
  a.li(R{5}, 0);                 // i*4
  a.label("scan");
  a.li(R{6}, (kEntries - 1) * 4);
  a.bge(R{5}, R{6}, "found");
  a.lw(R{6}, R{10}, R{5});       // xs[i]
  a.bgeu(R{6}, R{4}, "found");   // consumer at distance 1
  a.addi(R{5}, R{5}, 4);
  a.j("scan");
  a.label("found");
  a.bne(R{5}, R{0}, "interp");
  a.lw(R{7}, R{11}, 0);          // ys[0]
  a.j("emit");
  a.label("interp");
  a.subi(R{8}, R{5}, 4);         // (i-1)*4
  a.lw(R{12}, R{10}, R{8});      // x0
  a.lw(R{13}, R{10}, R{5});      // x1
  a.lw(R{14}, R{11}, R{8});      // y0
  a.lw(R{15}, R{11}, R{5});      // y1
  a.sub(R{16}, R{15}, R{14});    // y1-y0 (consumer at distance 1)
  a.sub(R{17}, R{4}, R{12});     // key-x0
  a.mul(R{16}, R{16}, R{17});
  a.sub(R{18}, R{13}, R{12});    // x1-x0
  a.div(R{16}, R{16}, R{18});
  a.add(R{7}, R{14}, R{16});
  a.label("emit");
  a.sw(R{7}, R{3}, 0);
  a.addi(R{1}, R{1}, 4);
  a.addi(R{3}, R{3}, 4);
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "probe");
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_words(k, aOut, out);
  return k;
}

// ---------------------------------------------------------------------------
// canrdr — CAN remote-data-request handling: parse 256 16-byte frames
// (id/flags word, DLC, 8 payload bytes), answer matching remote requests and
// checksum payloads with byte loads.
// ---------------------------------------------------------------------------
BuiltKernel build_canrdr() {
  constexpr int kFrames = 256;
  constexpr u32 kMyId = 0x2a5;
  Assembler a("canrdr");

  Rng rng(0xc1);
  std::vector<u32> frames;  // per frame: [id|rtr<<11? packed], dlc, 8 bytes in 2 words
  std::vector<u8> payload_bytes;
  for (int f = 0; f < kFrames; ++f) {
    const u32 id = (f % 7 == 0) ? kMyId : static_cast<u32>(rng.below(0x7ff));
    const u32 rtr = rng.chance(0.3) ? 1 : 0;
    const u32 dlc = static_cast<u32>(rng.below(9));
    frames.push_back(id | (rtr << 16));
    frames.push_back(dlc);
    u32 w0 = 0, w1 = 0;
    for (int b = 0; b < 4; ++b) w0 |= static_cast<u32>(rng.below(256)) << (8 * b);
    for (int b = 0; b < 4; ++b) w1 |= static_cast<u32>(rng.below(256)) << (8 * b);
    frames.push_back(w0);
    frames.push_back(w1);
  }
  (void)payload_bytes;
  const Addr aFrames = a.data_words(frames);
  const Addr aOut = a.data_fill(3, 0);

  u32 matches = 0, rtr_answers = 0, checksum = 0;
  for (int f = 0; f < kFrames; ++f) {
    const u32 idw = frames[static_cast<std::size_t>(4 * f)];
    const u32 dlc = frames[static_cast<std::size_t>(4 * f + 1)];
    if ((idw & 0x7ff) == kMyId) {
      ++matches;
      if ((idw >> 16) & 1) ++rtr_answers;
    }
    for (u32 b = 0; b < dlc; ++b) {
      const u32 w = frames[static_cast<std::size_t>(4 * f + 2 + b / 4)];
      checksum += (w >> (8 * (b % 4))) & 0xff;
    }
  }

  // r1=&frame r2=count r4=matches r5=rtr r6=checksum r15=kMyId
  a.li(R{1}, aFrames).li(R{2}, kFrames);
  a.li(R{4}, 0).li(R{5}, 0).li(R{6}, 0);
  a.li(R{15}, kMyId);
  a.label("frame");
  a.lw(R{7}, R{1}, 0);           // id word
  a.andi(R{8}, R{7}, 0x7ff);     // consumer at distance 1
  a.bne(R{8}, R{15}, "noid");
  a.addi(R{4}, R{4}, 1);
  a.srli(R{9}, R{7}, 16);
  a.andi(R{9}, R{9}, 1);
  a.beq(R{9}, R{0}, "noid");
  a.addi(R{5}, R{5}, 1);
  a.label("noid");
  a.lw(R{10}, R{1}, 4);          // dlc
  a.li(R{11}, 0);                // byte index
  a.label("byte");
  a.bge(R{11}, R{10}, "done_bytes");
  a.addi(R{12}, R{1}, 8);        // payload base (address producer)
  a.lbu(R{13}, R{12}, R{11});    // payload byte (blocked look-ahead)
  a.add(R{6}, R{6}, R{13});      // consumer at distance 1
  a.addi(R{11}, R{11}, 1);
  a.j("byte");
  a.label("done_bytes");
  a.addi(R{1}, R{1}, 16);
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "frame");
  a.li(R{20}, aOut);
  a.sw(R{4}, R{20}, 0);
  a.sw(R{5}, R{20}, 4);
  a.sw(R{6}, R{20}, 8);
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_word(k, aOut, matches);
  expect_word(k, aOut + 4, rtr_answers);
  expect_word(k, aOut + 8, checksum);
  return k;
}

}  // namespace laec::workloads
