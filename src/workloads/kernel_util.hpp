// Shared helpers for the EEMBC-like kernel builders.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "workloads/eembc.hpp"

namespace laec::workloads::detail {

using isa::Assembler;
using isa::R;

/// Deterministic input data: n words uniform in [lo, hi].
inline std::vector<u32> random_words(std::size_t n, u64 seed, i64 lo, i64 hi) {
  Rng rng(seed);
  std::vector<u32> v(n);
  for (auto& w : v) w = static_cast<u32>(rng.range(lo, hi));
  return v;
}

/// Q15 multiply exactly as the kernels compute it: low 32 bits of the
/// product, then arithmetic shift right by 15. Operands must fit in the
/// ranges the kernels use so the low-32 product is exact.
inline i32 q15_mul(i32 a, i32 b) {
  const u32 lo = static_cast<u32>(static_cast<i64>(a) * static_cast<i64>(b));
  return static_cast<i32>(lo) >> 15;
}

/// Division with the ISA's semantics (divide by zero -> all-ones).
inline i32 isa_div(i32 a, i32 b) {
  if (b == 0) return -1;
  return static_cast<i32>(static_cast<i64>(a) / static_cast<i64>(b));
}

/// Register expected words starting at `base`.
inline void expect_words(BuiltKernel& k, Addr base,
                         const std::vector<u32>& words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    k.expected.emplace_back(base + static_cast<Addr>(4 * i), words[i]);
  }
}

inline void expect_word(BuiltKernel& k, Addr a, u32 w) {
  k.expected.emplace_back(a, w);
}

}  // namespace laec::workloads::detail
