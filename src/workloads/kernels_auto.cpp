// Kernels: a2time, puwmod, rspeed, ttsprk.
#include "workloads/kernel_util.hpp"

namespace laec::workloads {

using detail::expect_word;
using detail::expect_words;
using detail::isa_div;
using isa::Assembler;
using isa::R;

// ---------------------------------------------------------------------------
// a2time — angle-to-time conversion: per tooth event, compute the period
// from successive timestamps, derive an rpm-like figure with a division and
// look up the ignition advance from a table indexed by the period.
// ---------------------------------------------------------------------------
BuiltKernel build_a2time() {
  constexpr int kEvents = 512, kTab = 64;
  Assembler a("a2time");

  Rng rng(0xd1);
  std::vector<u32> stamps(kEvents + 1);
  u32 t = 1000;
  for (auto& s : stamps) {
    t += 200 + static_cast<u32>(rng.below(800));
    s = t;
  }
  const auto advance = detail::random_words(kTab, 0xd2, 0, 599);
  const Addr aStamps = a.data_words(stamps);
  const Addr aAdv = a.data_words(advance);
  const Addr aOut = a.data_fill(2, 0);

  constexpr i32 kClock = 6'000'000;
  u32 sum_adv = 0, sum_rpm = 0;
  for (int i = 0; i < kEvents; ++i) {
    const i32 dt = static_cast<i32>(stamps[i + 1] - stamps[i]);
    const i32 rpm = isa_div(kClock, dt);
    const u32 idx = (static_cast<u32>(rpm) >> 4) & (kTab - 1);
    sum_rpm += static_cast<u32>(rpm);
    sum_adv += advance[idx];
  }

  // r1=&stamps r2=count r3=sum_adv r4=sum_rpm r5=K r6=&advance
  a.li(R{1}, aStamps).li(R{2}, kEvents).li(R{3}, 0).li(R{4}, 0);
  a.li(R{5}, kClock).li(R{6}, aAdv);
  a.label("ev");
  a.lw(R{7}, R{1}, 0);           // t[i]
  a.lw(R{8}, R{1}, 4);           // t[i+1], consumed at distance 1
  a.sub(R{9}, R{8}, R{7});       // dt
  a.div(R{10}, R{5}, R{9});      // rpm (iterative divide)
  a.add(R{4}, R{4}, R{10});
  a.srli(R{11}, R{10}, 4);
  a.andi(R{11}, R{11}, kTab - 1);
  a.slli(R{11}, R{11}, 2);       // table offset (address producer)
  a.lw(R{12}, R{6}, R{11});      // advance[idx] (blocked look-ahead)
  a.add(R{3}, R{3}, R{12});      // consumer at distance 1
  a.addi(R{1}, R{1}, 4);
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "ev");
  a.li(R{20}, aOut);
  a.sw(R{3}, R{20}, 0);
  a.sw(R{4}, R{20}, 4);
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_word(k, aOut, sum_adv);
  expect_word(k, aOut + 4, sum_rpm);
  return k;
}

// ---------------------------------------------------------------------------
// puwmod — pulse-width modulation: a software PWM state machine stepping a
// counter against per-channel duty setpoints held in memory, emitting edge
// events to an output ring. Load-heavy (31% of instructions) with plain
// pointer addressing (LAEC anticipates nearly all of it).
// ---------------------------------------------------------------------------
BuiltKernel build_puwmod() {
  constexpr int kSteps = 2048, kChannels = 4, kRing = 64;
  Assembler a("puwmod");
  const auto duty = detail::random_words(kChannels, 0xe1, 10, 240);
  const Addr aDuty = a.data_words(duty);
  const Addr aState = a.data_fill(kChannels, 0);  // previous output level
  const Addr aRing = a.data_fill(kRing, 0);
  const Addr aOut = a.data_fill(2, 0);

  std::vector<u32> ring(kRing, 0);
  std::vector<u32> state(kChannels, 0);
  u32 edges = 0, high_cycles = 0;
  for (int s = 0; s < kSteps; ++s) {
    const u32 cnt = static_cast<u32>(s) & 0xff;
    for (int c = 0; c < kChannels; ++c) {
      const u32 level = cnt < duty[c] ? 1u : 0u;
      high_cycles += level;
      if (level != state[c]) {
        ++edges;
        ring[edges % kRing] = (static_cast<u32>(s) << 3) |
                              (static_cast<u32>(c) << 1) | level;
        state[c] = level;
      }
    }
  }

  // r1=step r2=&duty r3=&state r4=&ring r5=edges r6=high_cycles
  a.li(R{1}, 0).li(R{2}, aDuty).li(R{3}, aState).li(R{4}, aRing);
  a.li(R{5}, 0).li(R{6}, 0);
  a.label("step");
  a.andi(R{7}, R{1}, 0xff);      // cnt
  a.li(R{8}, 0);                 // channel byte offset
  a.label("chan");
  a.lw(R{9}, R{2}, R{8});        // duty[c]
  a.sltu(R{10}, R{7}, R{9});     // level, consumer at distance 1
  a.add(R{6}, R{6}, R{10});
  a.lw(R{11}, R{3}, R{8});       // state[c]
  a.beq(R{11}, R{10}, "noedge"); // consumer at distance 1
  a.addi(R{5}, R{5}, 1);
  a.andi(R{12}, R{5}, kRing - 1);
  a.slli(R{12}, R{12}, 2);
  a.slli(R{13}, R{1}, 3);
  a.srli(R{14}, R{8}, 2);
  a.slli(R{14}, R{14}, 1);
  a.or_(R{13}, R{13}, R{14});
  a.or_(R{13}, R{13}, R{10});
  a.sw(R{13}, R{4}, R{12});      // ring entry
  a.sw(R{10}, R{3}, R{8});       // state[c] = level
  a.label("noedge");
  a.addi(R{8}, R{8}, 4);
  a.slti(R{15}, R{8}, 4 * kChannels);
  a.bne(R{15}, R{0}, "chan");
  a.addi(R{1}, R{1}, 1);
  a.slti(R{15}, R{1}, kSteps);
  a.bne(R{15}, R{0}, "step");
  a.li(R{20}, aOut);
  a.sw(R{5}, R{20}, 0);
  a.sw(R{6}, R{20}, 4);
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_word(k, aOut, edges);
  expect_word(k, aOut + 4, high_cycles);
  expect_words(k, aRing, ring);
  return k;
}

// ---------------------------------------------------------------------------
// rspeed — road speed: per wheel-sensor pulse pair, period -> speed via
// division, exponential smoothing, and over-speed event counting.
// ---------------------------------------------------------------------------
BuiltKernel build_rspeed() {
  constexpr int kPulses = 512;
  Assembler a("rspeed");
  Rng rng(0xf1);
  std::vector<u32> periods(kPulses);
  for (auto& p : periods) p = 400 + static_cast<u32>(rng.below(4000));
  const Addr aPer = a.data_words(periods);
  const Addr aOut = a.data_fill(3, 0);

  constexpr i32 kScale = 9'000'000;
  constexpr u32 kLimit = 11'000;
  u32 avg = 0, overs = 0, last = 0;
  for (int i = 0; i < kPulses; ++i) {
    const i32 speed = isa_div(kScale, static_cast<i32>(periods[i]));
    avg = (avg * 7 + static_cast<u32>(speed)) >> 3;
    if (avg > kLimit) ++overs;
    last = static_cast<u32>(speed);
  }

  // r1=&periods r2=count r3=avg r4=overs r5=K r6=limit
  a.li(R{1}, aPer).li(R{2}, kPulses).li(R{3}, 0).li(R{4}, 0);
  a.li(R{5}, kScale).li(R{6}, kLimit);
  a.label("pulse");
  a.lw(R{7}, R{1}, 0);           // period
  a.div(R{8}, R{5}, R{7});       // speed, consumer at distance 1
  a.muli(R{9}, R{3}, 7);
  a.add(R{9}, R{9}, R{8});
  a.srli(R{3}, R{9}, 3);         // avg
  a.bgeu(R{6}, R{3}, "noover");
  a.addi(R{4}, R{4}, 1);
  a.label("noover");
  a.addi(R{1}, R{1}, 4);
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "pulse");
  a.li(R{20}, aOut);
  a.sw(R{3}, R{20}, 0);
  a.sw(R{4}, R{20}, 4);
  a.sw(R{8}, R{20}, 8);          // last speed
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_word(k, aOut, avg);
  expect_word(k, aOut + 4, overs);
  expect_word(k, aOut + 8, last);
  return k;
}

// ---------------------------------------------------------------------------
// ttsprk — tooth-to-spark: fuses a tooth-angle table with a dwell table,
// scanning for the firing window per event and accumulating spark timing
// corrections; branch- and load-heavy with simple addressing.
// ---------------------------------------------------------------------------
BuiltKernel build_ttsprk() {
  constexpr int kEvents = 512, kTeeth = 36;
  Assembler a("ttsprk");
  Rng rng(0x101);
  std::vector<u32> tooth_angle(kTeeth);
  for (int i = 0; i < kTeeth; ++i) {
    tooth_angle[static_cast<std::size_t>(i)] = static_cast<u32>(i * 10);
  }
  const auto dwell = detail::random_words(kTeeth, 0x102, 5, 95);
  std::vector<u32> target(kEvents);
  for (auto& tg : target) tg = static_cast<u32>(rng.below(360));
  const Addr aAngle = a.data_words(tooth_angle);
  const Addr aDwell = a.data_words(dwell);
  const Addr aTgt = a.data_words(target);
  const Addr aOut = a.data_fill(2, 0);

  u32 sum_dwell = 0, sum_err = 0;
  for (int e = 0; e < kEvents; ++e) {
    const u32 tgt = target[static_cast<std::size_t>(e)];
    int i = 0;
    while (i < kTeeth - 1 &&
           tooth_angle[static_cast<std::size_t>(i)] < tgt) {
      ++i;
    }
    sum_dwell += dwell[static_cast<std::size_t>(i)];
    sum_err += tooth_angle[static_cast<std::size_t>(i)] - tgt;
  }

  // r1=&target r2=count r3=sum_dwell r4=sum_err r5=&angle r6=&dwell
  a.li(R{1}, aTgt).li(R{2}, kEvents).li(R{3}, 0).li(R{4}, 0);
  a.li(R{5}, aAngle).li(R{6}, aDwell);
  a.label("event");
  a.lw(R{7}, R{1}, 0);           // target angle
  a.li(R{8}, 0);                 // i*4
  a.label("scan");
  a.li(R{9}, (kTeeth - 1) * 4);
  a.bge(R{8}, R{9}, "fire");
  a.lw(R{9}, R{5}, R{8});        // tooth_angle[i]
  a.bgeu(R{9}, R{7}, "fire");    // consumer at distance 1
  a.addi(R{8}, R{8}, 4);
  a.j("scan");
  a.label("fire");
  a.lw(R{10}, R{6}, R{8});       // dwell[i]
  a.add(R{3}, R{3}, R{10});      // consumer at distance 1
  a.lw(R{11}, R{5}, R{8});       // tooth_angle[i]
  a.sub(R{12}, R{11}, R{7});
  a.add(R{4}, R{4}, R{12});
  a.addi(R{1}, R{1}, 4);
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "event");
  a.li(R{20}, aOut);
  a.sw(R{3}, R{20}, 0);
  a.sw(R{4}, R{20}, 4);
  a.halt();

  BuiltKernel k{a.finish(), {}};
  expect_word(k, aOut, sum_dwell);
  expect_word(k, aOut + 4, sum_err);
  return k;
}

}  // namespace laec::workloads
