// EEMBC-Automotive-like kernel suite.
//
// The real EEMBC suite is proprietary, so each benchmark is replaced by a
// self-checking kernel written in our ISA that mirrors its computational
// pattern (DESIGN.md §4): the FFT kernels do real fixed-point radix-2
// butterflies, `pntrch` really chases pointers, `tblook` really interpolates
// tables, and so on. Every kernel embeds its input data deterministically
// and reports a list of (address, expected word) checks computed by a C++
// reference implementation of the same algorithm — the integration tests
// verify them under every ECC scheme.
//
// The Table II row transcribed from the paper accompanies each kernel so the
// characterization harness can print paper-vs-measured side by side.
#pragma once

#include <string>
#include <vector>

#include "isa/program.hpp"

namespace laec::workloads {

/// A built kernel: the program image plus its self-check expectations.
struct BuiltKernel {
  isa::Program program;
  /// Architecturally-final (address, expected word) pairs.
  std::vector<std::pair<Addr, u32>> expected;
};

/// Paper Table II row (percentages as published).
struct PaperRow {
  int hit_pct = 0;   ///< % of loads that hit in DL1
  int dep_pct = 0;   ///< % of loads with a consumer at distance 1-2
  int load_pct = 0;  ///< loads as % of all instructions
};

struct KernelEntry {
  const char* name;
  const char* description;
  BuiltKernel (*build)();
  PaperRow paper;
  /// Address-producer-at-distance-1 fraction used by the calibrated trace
  /// generator (not in Table II; estimated from Fig. 8 — EXPERIMENTS.md).
  double addr_dep_frac;
};

/// The 16 kernels in the paper's Table II order.
[[nodiscard]] const std::vector<KernelEntry>& eembc_kernels();

/// Find a kernel by name (throws std::out_of_range when unknown).
[[nodiscard]] const KernelEntry& kernel_by_name(const std::string& name);

// Individual builders (registered in eembc.cpp; exposed for targeted tests).
BuiltKernel build_a2time();
BuiltKernel build_aifftr();
BuiltKernel build_aifirf();
BuiltKernel build_aiifft();
BuiltKernel build_basefp();
BuiltKernel build_bitmnp();
BuiltKernel build_cacheb();
BuiltKernel build_canrdr();
BuiltKernel build_idctrn();
BuiltKernel build_iirflt();
BuiltKernel build_matrix();
BuiltKernel build_pntrch();
BuiltKernel build_puwmod();
BuiltKernel build_rspeed();
BuiltKernel build_tblook();
BuiltKernel build_ttsprk();

}  // namespace laec::workloads
