#include "workloads/synthetic.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace laec::workloads {

namespace {

constexpr unsigned kColdBase = 1, kColdCount = 7;
constexpr unsigned kDestBase = 8, kDestCount = 16;
constexpr unsigned kAddrBase = 24, kAddrCount = 4;
constexpr std::size_t kBlock = 512;

enum class Kind : u8 { kAlu, kLoad, kStore, kBranch };

template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.below(i)]);
  }
}

}  // namespace

SyntheticParams SyntheticParams::from_kernel(const KernelEntry& k,
                                             u64 num_ops) {
  SyntheticParams p;
  p.load_frac = k.paper.load_pct / 100.0;
  p.hit_frac = k.paper.hit_pct / 100.0;
  p.dep_frac = k.paper.dep_pct / 100.0;
  p.addr_dep_frac = k.addr_dep_frac;
  p.num_ops = num_ops;
  // Distinct deterministic seed per benchmark row.
  p.seed = 0x1000 + static_cast<u64>(k.paper.hit_pct) * 131 +
           static_cast<u64>(k.paper.dep_pct) * 17 +
           static_cast<u64>(k.paper.load_pct);
  return p;
}

SyntheticTrace::SyntheticTrace(const SyntheticParams& p)
    : params_(p), rng_(p.seed), remaining_(p.num_ops) {}

std::optional<cpu::TraceOp> SyntheticTrace::next() {
  if (q_.empty()) {
    if (remaining_ == 0) return std::nullopt;
    refill_block();
  }
  cpu::TraceOp op = q_.front();
  q_.pop_front();
  return op;
}

void SyntheticTrace::refill_block() {
  const std::size_t n = static_cast<std::size_t>(
      std::min<u64>(kBlock, remaining_));
  remaining_ -= n;

  // 1. Exact-count instruction mix, shuffled.
  std::vector<Kind> kinds;
  const auto count = [&](double f) {
    return static_cast<std::size_t>(f * static_cast<double>(n) + 0.5);
  };
  const std::size_t n_load = count(params_.load_frac);
  const std::size_t n_store = count(params_.store_frac);
  const std::size_t n_branch = count(params_.branch_frac);
  for (std::size_t i = 0; i < n_load; ++i) kinds.push_back(Kind::kLoad);
  for (std::size_t i = 0; i < n_store && kinds.size() < n; ++i) {
    kinds.push_back(Kind::kStore);
  }
  for (std::size_t i = 0; i < n_branch && kinds.size() < n; ++i) {
    kinds.push_back(Kind::kBranch);
  }
  while (kinds.size() < n) kinds.push_back(Kind::kAlu);
  shuffle(kinds, rng_);

  // 2. Materialize default ops: cold sources, round-robin destinations.
  struct Pending {
    cpu::TraceOp op;
    bool rs1_taken = false;   // sources already claimed by a dependence
    bool rs2_taken = false;
    bool rd_taken = false;    // store-data slot claimed
    bool dest_repurposed = false;  // ALU turned into an address producer
  };
  std::vector<Pending> block(n);

  auto cold = [&] {
    return static_cast<u8>(kColdBase + rng_.below(kColdCount));
  };
  auto next_dest = [&] {
    const u8 r = static_cast<u8>(kDestBase + dest_rr_);
    dest_rr_ = (dest_rr_ + 1) % kDestCount;
    return r;
  };

  for (std::size_t i = 0; i < n; ++i) {
    isa::DecodedInst& d = block[i].op.inst;
    switch (kinds[i]) {
      case Kind::kAlu:
        d.op = isa::Op::kAdd;
        d.rd = next_dest();
        d.rs1 = cold();
        if (rng_.chance(0.5)) {
          d.uses_imm = true;
          d.imm = static_cast<i32>(rng_.below(256));
        } else {
          d.rs2 = cold();
        }
        break;
      case Kind::kLoad:
        d.op = isa::Op::kLw;
        d.rd = next_dest();
        d.rs1 = cold();
        d.uses_imm = true;
        d.imm = 0;
        block[i].op.forced_mem = true;
        block[i].op.forced_hit = false;  // hit set selectively below
        block[i].op.eff_addr = addr_cursor_;
        addr_cursor_ += 4;
        break;
      case Kind::kStore:
        d.op = isa::Op::kSw;
        d.rd = cold();  // store data (SPARC convention)
        d.rs1 = cold();
        d.uses_imm = true;
        d.imm = 0;
        block[i].op.forced_mem = true;
        block[i].op.forced_hit = rng_.chance(params_.store_hit_frac);
        block[i].op.eff_addr = addr_cursor_;
        addr_cursor_ += 4;
        break;
      case Kind::kBranch:
        // kBne over cold registers (all zero): never taken, so the trace
        // stays linear while still exercising branch operand hazards.
        d.op = isa::Op::kBne;
        d.rs1 = cold();
        d.rs2 = cold();
        d.uses_imm = true;
        d.imm = 4;
        break;
    }
  }

  // 3. Pick which loads get hits / consumers / address producers.
  std::vector<std::size_t> load_idx;
  for (std::size_t i = 0; i < n; ++i) {
    if (kinds[i] == Kind::kLoad) load_idx.push_back(i);
  }
  const auto pick = [&](double frac) {
    std::vector<std::size_t> v = load_idx;
    shuffle(v, rng_);
    v.resize(static_cast<std::size_t>(
        frac * static_cast<double>(load_idx.size()) + 0.5));
    return v;
  };

  for (std::size_t i : pick(params_.hit_frac)) {
    block[i].op.forced_hit = true;
  }

  // Consumers at distance 1 or 2. Walk a shuffled load order and keep
  // placing until the exact target count is reached — some candidates are
  // unusable (block edge, neighbouring load, operand slots taken), so a
  // fixed pre-selection would systematically undershoot the Table II rate.
  {
    std::vector<std::size_t> order = load_idx;
    shuffle(order, rng_);
    std::size_t target = static_cast<std::size_t>(
        params_.dep_frac * static_cast<double>(load_idx.size()) + 0.5);
    for (std::size_t i : order) {
      if (target == 0) break;
      const std::size_t d_first = rng_.chance(params_.d1_share) ? 1 : 2;
      bool placed = false;
      for (std::size_t attempt = 0; attempt < 2 && !placed; ++attempt) {
        const std::size_t dist = attempt == 0 ? d_first : 3 - d_first;
        const std::size_t j = i + dist;
        if (j >= n) continue;
        Pending& c = block[j];
        const u8 dest = block[i].op.inst.rd;
        switch (kinds[j]) {
          case Kind::kAlu:
            if (!c.dest_repurposed && !c.rs1_taken) {
              c.op.inst.rs1 = dest;
              c.rs1_taken = true;
              placed = true;
            } else if (!c.dest_repurposed && !c.op.inst.uses_imm &&
                       !c.rs2_taken) {
              c.op.inst.rs2 = dest;
              c.rs2_taken = true;
              placed = true;
            }
            break;
          case Kind::kStore:
            if (!c.rd_taken) {
              c.op.inst.rd = dest;  // store data source
              c.rd_taken = true;
              placed = true;
            }
            break;
          case Kind::kBranch:
            // Loaded values are zero in oracle mode: bne stays not-taken.
            if (!c.rs1_taken) {
              c.op.inst.rs1 = dest;
              c.rs1_taken = true;
              placed = true;
            }
            break;
          case Kind::kLoad:
            break;  // would turn the consumer into an address dependence
        }
      }
      if (placed) --target;
    }
  }

  // Address producers at distance 1 (the LAEC data hazard).
  for (std::size_t i : pick(params_.addr_dep_frac)) {
    if (i == 0) continue;
    Pending& p = block[i - 1];
    if (kinds[i - 1] != Kind::kAlu) continue;
    const u8 r = static_cast<u8>(kAddrBase + addr_rr_);
    addr_rr_ = (addr_rr_ + 1) % kAddrCount;
    p.op.inst.rd = r;
    p.dest_repurposed = true;
    block[i].op.inst.rs1 = r;
  }

  for (Pending& p : block) q_.push_back(p.op);
}

}  // namespace laec::workloads
