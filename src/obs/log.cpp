#include "obs/log.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

namespace laec::obs {
namespace {

LogLevel threshold_from_env() {
  const char* env = std::getenv("LAEC_LOG");
  if (env != nullptr) {
    if (auto lvl = log_level_from_string(env)) return *lvl;
  }
  return LogLevel::kInfo;
}

std::atomic<int>& threshold_slot() {
  static std::atomic<int> slot{static_cast<int>(threshold_from_env())};
  return slot;
}

}  // namespace

std::optional<LogLevel> log_level_from_string(std::string_view s) {
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return std::nullopt;
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

LogLevel log_threshold() {
  return static_cast<LogLevel>(
      threshold_slot().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  threshold_slot().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log(LogLevel level, std::string_view component, std::string_view msg) {
  if (!log_enabled(level) || level == LogLevel::kOff) return;

  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);

  char stamp[80];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));

  std::string line;
  line.reserve(48 + component.size() + msg.size());
  line += stamp;
  line += ' ';
  line += log_level_name(level);
  line.append(6 - log_level_name(level).size(), ' ');  // pad to column
  line.append(component.data(), component.size());
  line += ": ";
  line.append(msg.data(), msg.size());
  line += '\n';
  // One write() so concurrent forked workers interleave per line, not
  // per character (stdio buffering would not guarantee that on stderr).
  (void)!::write(STDERR_FILENO, line.data(), line.size());
}

}  // namespace laec::obs
