#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>

namespace laec::obs {
namespace {

/// Minimal JSON string escaper (same rules as the JSONL sink: quote,
/// backslash, and control characters; everything else passes through).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

u32 trace_thread_id() {
  static std::atomic<u32> next{0};
  thread_local u32 id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::enable(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
  head_ = 0;
  total_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

u64 Tracer::now_us() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - epoch_)
                              .count());
}

void Tracer::record(TraceEvent ev) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  // Flight-recorder overwrite: replace the oldest event.
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
}

void Tracer::instant(std::string name, std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.phase = 'i';
  ev.ts_us = now_us();
  ev.tid = trace_thread_id();
  ev.args = std::move(args);
  record(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest-first: once the ring wrapped, head_ is the oldest slot.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

u64 Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

u64 Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

std::string event_to_json(const TraceEvent& ev, u32 pid) {
  std::string out = "{\"name\":\"" + json_escape(ev.name) +
                    "\",\"cat\":\"laec\",\"ph\":\"";
  out += ev.phase;
  out += "\",\"ts\":" + std::to_string(ev.ts_us);
  if (ev.phase == 'X') {
    out += ",\"dur\":" + std::to_string(ev.dur_us);
  }
  if (ev.phase == 'i') {
    out += ",\"s\":\"t\"";  // instant scope: thread
  }
  out += ",\"pid\":" + std::to_string(pid);
  out += ",\"tid\":" + std::to_string(ev.tid);
  if (!ev.args.empty()) {
    out += ",\"args\":{";
    bool first = true;
    for (const TraceArg& a : ev.args) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += json_escape(a.key);
      out += "\":";
      if (a.is_num) {
        out += std::to_string(a.num);
      } else {
        out += '"';
        out += json_escape(a.str);
        out += '"';
      }
    }
    out += '}';
  }
  out += '}';
  return out;
}

void Tracer::write_chrome_trace(std::ostream& out, u32 pid) const {
  const std::vector<TraceEvent> evs = events();
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < evs.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << event_to_json(evs[i], pid);
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":\""
      << dropped() << "\"}}\n";
}

void Tracer::write_events_jsonl(std::ostream& out, u32 pid) const {
  for (const TraceEvent& ev : events()) {
    out << event_to_json(ev, pid) << '\n';
  }
}

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

Span::Span(std::string_view name) {
  Tracer& t = Tracer::global();
  if (!t.enabled()) return;
  live_ = true;
  ev_.name = std::string(name);
  ev_.phase = 'X';
  ev_.ts_us = t.now_us();
  ev_.tid = trace_thread_id();
}

Span::~Span() { close(); }

void Span::close() {
  if (!live_) return;
  live_ = false;
  Tracer& t = Tracer::global();
  const u64 end = t.now_us();
  ev_.dur_us = end > ev_.ts_us ? end - ev_.ts_us : 0;
  t.record(std::move(ev_));
}

void Span::arg(std::string_view key, u64 v) {
  if (!live_) return;
  ev_.args.push_back(TraceArg{std::string(key), {}, v, true});
}

void Span::arg(std::string_view key, std::string_view v) {
  if (!live_) return;
  ev_.args.push_back(TraceArg{std::string(key), std::string(v), 0, false});
}

bool write_trace_file(const std::string& path, u32 pid) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  Tracer::global().write_chrome_trace(out, pid);
  out.flush();
  return static_cast<bool>(out);
}

bool write_shard_events_file(const std::string& path, u32 pid) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  Tracer::global().write_events_jsonl(out, pid);
  out.flush();
  return static_cast<bool>(out);
}

bool merge_trace_files(const std::vector<std::string>& shards,
                       const std::vector<std::string>& parent_events,
                       const std::string& out_path) {
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (line.empty()) return;
    out << (first ? "\n" : ",\n") << line;
    first = false;
  };
  for (const std::string& line : parent_events) emit(line);
  for (const std::string& shard : shards) {
    std::ifstream in(shard, std::ios::binary);
    if (!in) continue;  // worker recorded nothing
    std::string line;
    while (std::getline(in, line)) emit(line);
  }
  out << "\n]}\n";
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace laec::obs
