// Structured event tracer: spans and instants with args, recorded into a
// thread-safe in-memory ring buffer ("flight recorder") and rendered as
// Chrome trace-event JSON that chrome://tracing and Perfetto open directly.
//
// Cost model: the tracer is OFF by default; every instrumentation site
// guards on one relaxed atomic load (Span's constructor / Tracer::enabled),
// so an untraced run pays a predicted-not-taken branch per span. When the
// tracer is on, recording takes a short mutex push into a pre-sized ring;
// instrumentation sits at trial/frame/round granularity — never inside the
// per-access simulation loop — so even a traced run's rows and results are
// untouched (tracing reads the clock, never the RNG or the row stream).
//
// When the ring fills, the oldest events are overwritten (flight-recorder
// semantics) and dropped() reports how many were lost.
//
// Multi-process campaigns: each forked worker writes its events to
// `<trace>.shard<j>.events` as JSON-lines (one complete Chrome event object
// per line, pid = shard index + 1), and the parent stitches the shard files
// plus its own events (pid 0) into one {"traceEvents":[...]} document with
// merge_trace_files — concatenation, no JSON parsing, same spirit as the
// row merge in runner/multiproc.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace laec::obs {

/// One span/instant argument; rendered as a JSON number or string.
struct TraceArg {
  std::string key;
  std::string str;
  u64 num = 0;
  bool is_num = false;
};

/// One Chrome trace event. phase 'X' = complete span (ts + dur),
/// 'i' = instant.
struct TraceEvent {
  std::string name;
  char phase = 'X';
  u64 ts_us = 0;
  u64 dur_us = 0;
  u32 tid = 0;
  std::vector<TraceArg> args;
};

/// Stable small integer id for the calling thread (assigned on first use,
/// process-wide). Rendered as the Chrome "tid" field.
[[nodiscard]] u32 trace_thread_id();

/// The flight recorder. One process-wide instance behind global().
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 18;

  /// Arm the tracer: clears the ring, re-zeroes the time epoch, and sets
  /// the ring capacity (events beyond it overwrite the oldest).
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since enable() (steady clock).
  [[nodiscard]] u64 now_us() const;

  /// Record a fully-formed event (no-op when disabled).
  void record(TraceEvent ev);

  /// Record an instant event stamped now on the calling thread.
  void instant(std::string name, std::vector<TraceArg> args = {});

  /// Events currently in the ring, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Total events recorded since enable() (including overwritten ones).
  [[nodiscard]] u64 total_recorded() const;
  /// Events lost to ring overwrite since enable().
  [[nodiscard]] u64 dropped() const;

  /// Render the ring as one complete Chrome trace JSON document.
  void write_chrome_trace(std::ostream& out, u32 pid = 0) const;

  /// Render the ring as JSON-lines: one complete Chrome event object per
  /// line (the multi-process shard interchange format).
  void write_events_jsonl(std::ostream& out, u32 pid) const;

  [[nodiscard]] static Tracer& global();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // next write slot once the ring is full
  u64 total_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII complete-span: stamps start on construction, records an 'X' event
/// with the measured duration on destruction. Free when the tracer is
/// disabled (one relaxed load, no allocation).
class Span {
 public:
  explicit Span(std::string_view name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Attach an argument (no-op on a disabled span).
  void arg(std::string_view key, u64 v);
  void arg(std::string_view key, std::string_view v);

  /// End the span now (records the event); the destructor then no-ops.
  void close();

  [[nodiscard]] bool live() const { return live_; }

 private:
  bool live_ = false;
  TraceEvent ev_;
};

/// Serialize one event as a single-line JSON object (no trailing newline).
[[nodiscard]] std::string event_to_json(const TraceEvent& ev, u32 pid);

/// Write the global tracer's ring to `path` as a complete Chrome trace
/// document. Returns false (and leaves errno from the failed stream) on
/// I/O error.
[[nodiscard]] bool write_trace_file(const std::string& path, u32 pid = 0);

/// Write the global tracer's ring to `path` in shard interchange form
/// (JSON-lines of event objects with the given pid).
[[nodiscard]] bool write_shard_events_file(const std::string& path, u32 pid);

/// Stitch shard event files (JSON-lines, already carrying their pids) plus
/// `parent_events` (pre-rendered JSON lines) into one Chrome trace document
/// at `out_path`. Missing shard files are skipped (a worker that recorded
/// nothing writes nothing). Returns false on I/O error writing `out_path`.
[[nodiscard]] bool merge_trace_files(const std::vector<std::string>& shards,
                                     const std::vector<std::string>& parent_events,
                                     const std::string& out_path);

}  // namespace laec::obs
