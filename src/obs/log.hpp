// Leveled stderr logger for the service-side components (daemon, checkpoint
// writer, multiproc worker diagnostics).
//
// Format (one write() per line, so concurrent processes interleave at line
// granularity):
//
//   2026-08-08T14:03:12.481Z info  laec-serve: listening on /tmp/laec.sock
//
// The threshold comes from the LAEC_LOG environment variable
// (debug|info|warn|error|off; default info), read once on first use;
// set_log_threshold overrides it programmatically (tests, --verbose flags).
#pragma once

#include <optional>
#include <string_view>

namespace laec::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Parse "debug"/"info"/"warn"/"error"/"off" (nullopt on anything else).
[[nodiscard]] std::optional<LogLevel> log_level_from_string(
    std::string_view s);

[[nodiscard]] std::string_view log_level_name(LogLevel level);

/// Current threshold: messages below it are dropped.
[[nodiscard]] LogLevel log_threshold();
void set_log_threshold(LogLevel level);

[[nodiscard]] inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_threshold());
}

/// Emit one line to stderr: UTC timestamp, level, component, message.
/// Formatting cost is paid only when the level passes the threshold.
void log(LogLevel level, std::string_view component, std::string_view msg);

inline void log_debug(std::string_view component, std::string_view msg) {
  log(LogLevel::kDebug, component, msg);
}
inline void log_info(std::string_view component, std::string_view msg) {
  log(LogLevel::kInfo, component, msg);
}
inline void log_warn(std::string_view component, std::string_view msg) {
  log(LogLevel::kWarn, component, msg);
}
inline void log_error(std::string_view component, std::string_view msg) {
  log(LogLevel::kError, component, msg);
}

}  // namespace laec::obs
