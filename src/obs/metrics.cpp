#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace laec::obs {

std::size_t histogram_bucket(u64 v) {
  return static_cast<std::size_t>(std::bit_width(v));
}

u64 histogram_bucket_max(std::size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~u64{0};
  return (u64{1} << b) - 1;
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
  sum += other.sum;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
}

u64 HistogramData::percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; q=0 -> first, q=1 -> last.
  const u64 rank = std::max<u64>(
      1, static_cast<u64>(q * static_cast<double>(count) + 0.5));
  u64 seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= rank) {
      const u64 hi = histogram_bucket_max(b);
      const u64 lo = b == 0 ? 0 : histogram_bucket_max(b - 1) + 1;
      // Linear interpolation by rank position inside the bucket.
      const double frac = buckets[b] <= 1
                              ? 1.0
                              : static_cast<double>(rank - seen - 1) /
                                    static_cast<double>(buckets[b] - 1);
      u64 est = lo + static_cast<u64>(frac * static_cast<double>(hi - lo));
      return std::clamp(est, min, max);
    }
    seen += buckets[b];
  }
  return max;
}

void Histogram::record(u64 v) {
  buckets_[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  u64 cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::data() const {
  HistogramData d;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    d.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  d.min = d.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  d.max = max_.load(std::memory_order_relaxed);
  return d;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~u64{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const MetricValue& m : other.metrics) {
    auto it = std::lower_bound(
        metrics.begin(), metrics.end(), m,
        [](const MetricValue& a, const MetricValue& b) {
          return a.name < b.name;
        });
    if (it == metrics.end() || it->name != m.name) {
      metrics.insert(it, m);
      continue;
    }
    if (it->kind != m.kind) {
      throw std::logic_error("metrics merge: kind mismatch for " + m.name);
    }
    if (m.kind == MetricKind::kHistogram) {
      it->hist.merge(m.hist);
    } else {
      it->value += m.value;
    }
  }
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

u64 MetricsSnapshot::value(std::string_view name) const {
  const MetricValue* m = find(name);
  return m == nullptr ? 0 : m->value;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it != slots_.end()) {
    if (it->second.kind != MetricKind::kCounter) {
      throw std::logic_error("metric registered with a different kind: " +
                             std::string(name));
    }
    return *it->second.counter;
  }
  Counter& c = counters_.emplace_back();
  slots_.emplace(std::string(name),
                 Slot{MetricKind::kCounter, &c, nullptr, nullptr});
  return c;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it != slots_.end()) {
    if (it->second.kind != MetricKind::kGauge) {
      throw std::logic_error("metric registered with a different kind: " +
                             std::string(name));
    }
    return *it->second.gauge;
  }
  Gauge& g = gauges_.emplace_back();
  slots_.emplace(std::string(name),
                 Slot{MetricKind::kGauge, nullptr, &g, nullptr});
  return g;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it != slots_.end()) {
    if (it->second.kind != MetricKind::kHistogram) {
      throw std::logic_error("metric registered with a different kind: " +
                             std::string(name));
    }
    return *it->second.histogram;
  }
  Histogram& h = histograms_.emplace_back();
  slots_.emplace(std::string(name),
                 Slot{MetricKind::kHistogram, nullptr, nullptr, &h});
  return h;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.metrics.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {  // std::map: name-ordered
    MetricValue m;
    m.name = name;
    m.kind = slot.kind;
    switch (slot.kind) {
      case MetricKind::kCounter:
        m.value = slot.counter->value();
        break;
      case MetricKind::kGauge:
        m.value = slot.gauge->value();
        break;
      case MetricKind::kHistogram:
        m.hist = slot.histogram->data();
        break;
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counters_) c.reset();
  for (auto& g : gauges_) g.reset();
  for (auto& h : histograms_) h.reset();
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

}  // namespace laec::obs
