// Observability metrics: a lock-cheap registry of named Counters, Gauges,
// and log2-bucketed Histograms, with deterministic snapshot + merge.
//
// Design contract (mirrors the StatSet fold discipline in common/stats.hpp):
//
//  * Updates are relaxed atomics — a counter bump on the trial hot path is
//    one `fetch_add(relaxed)`, never a lock. Registration (first lookup of
//    a name) takes a mutex, so callers cache the returned reference.
//  * References returned by counter()/gauge()/histogram() are stable for
//    the registry's lifetime (metrics live in node-stable storage).
//  * snapshot() produces a plain-data MetricsSnapshot ordered by metric
//    name; merge() folds snapshots element-wise. Because every aggregate is
//    a sum (or min/max) of u64s, the fold is associative and commutative:
//    merging per-worker snapshots in any order yields identical bytes,
//    the same discipline that keeps campaign rows layout-independent.
//  * Metrics NEVER feed back into simulation: no RNG, no row content, no
//    control flow depends on a metric value. Rows are byte-identical with
//    metrics hot or cold by construction.
//
// Histogram buckets: bucket b holds values v with bit_width(v) == b, i.e.
// bucket 0 = {0}, bucket 1 = {1}, bucket 2 = {2,3}, bucket 3 = {4..7}, ...
// up to bucket 64 = {2^63 .. 2^64-1}. Percentile extraction walks the
// cumulative counts and interpolates linearly inside the winning bucket —
// an estimate with bounded relative error (one octave), deterministic
// given the bucket counts.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace laec::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(u64 n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] u64 value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

/// Instantaneous level. set() overwrites; add()/sub() adjust (the
/// snapshot-store memory gauge is maintained by many stores adjusting a
/// shared total).
class Gauge {
 public:
  void set(u64 v) { v_.store(v, std::memory_order_relaxed); }
  void add(u64 n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(u64 n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] u64 value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

/// Number of log2 buckets: bit_width of a u64 is in [0, 64].
inline constexpr std::size_t kHistogramBuckets = 65;

/// Bucket index for a recorded value: std::bit_width(v).
[[nodiscard]] std::size_t histogram_bucket(u64 v);

/// Inclusive upper bound of bucket b (the largest value it can hold).
[[nodiscard]] u64 histogram_bucket_max(std::size_t b);

/// Plain-data histogram aggregate: what a snapshot carries and what merge
/// and percentile extraction operate on.
struct HistogramData {
  u64 buckets[kHistogramBuckets] = {};
  u64 count = 0;
  u64 sum = 0;
  u64 min = 0;  ///< meaningful only when count > 0
  u64 max = 0;  ///< meaningful only when count > 0

  /// Element-wise fold; associative and commutative.
  void merge(const HistogramData& other);

  /// Estimated value at quantile q in [0, 1]. Returns 0 for an empty
  /// histogram. Exact when the winning bucket spans a single value
  /// (buckets 0 and 1); otherwise linearly interpolated within the
  /// bucket and clamped to [min, max].
  [[nodiscard]] u64 percentile(double q) const;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Concurrent histogram: relaxed-atomic bucket counters plus CAS-maintained
/// min/max. record() is wait-free except for the (rare) min/max update loop.
class Histogram {
 public:
  void record(u64 v);
  [[nodiscard]] HistogramData data() const;
  [[nodiscard]] u64 count() const {
    return count_.load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<u64> buckets_[kHistogramBuckets] = {};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
  std::atomic<u64> min_{~u64{0}};
  std::atomic<u64> max_{0};
};

enum class MetricKind : u8 { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// One metric in a snapshot. For counters/gauges `value` carries the
/// reading; for histograms `hist` does.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  u64 value = 0;
  HistogramData hist;
};

/// Ordered (by name), plain-data view of a registry at one instant.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /// Fold `other` into this snapshot: counters and gauges add, histograms
  /// merge. Metrics present only in `other` are inserted (order by name is
  /// preserved). Kind mismatches on the same name throw std::logic_error.
  void merge(const MetricsSnapshot& other);

  /// Pointer into metrics for `name`, or nullptr.
  [[nodiscard]] const MetricValue* find(std::string_view name) const;

  /// Convenience: counter/gauge value by name (0 when absent).
  [[nodiscard]] u64 value(std::string_view name) const;
};

/// Named-metric registry. Lookup-or-create takes a mutex; the returned
/// references are stable (deque storage) and all subsequent updates are
/// lock-free. One process-wide instance lives behind global().
class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Name-ordered plain-data view; safe to call while writers are hot
  /// (each reading is atomic per-field, not cross-metric consistent).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every registered metric (tests and bench passes isolate runs
  /// with this; names stay registered so cached references stay valid).
  void reset();

  [[nodiscard]] static Registry& global();

 private:
  struct Slot {
    MetricKind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable std::mutex mu_;
  std::map<std::string, Slot, std::less<>> slots_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace laec::obs
