// Soft-error demonstration: the same single-bit-upset storm against three
// DL1 protection schemes.
//
//   - SECDED write-back DL1 (LAEC): corrected in-line, results intact;
//   - parity write-through DL1: recovered by refetch from the clean L2;
//   - unprotected DL1: silent data corruption.
//
//   $ ./build/examples/fault_injection
#include <cstdio>

#include "core/simulator.hpp"
#include "report/table.hpp"
#include "sim/system.hpp"
#include "workloads/eembc.hpp"

int main() {
  using namespace laec;

  const auto kernel = workloads::kernel_by_name("tblook").build();

  report::Table table({"DL1 scheme", "corrected", "parity refetches",
                       "detected-uncorrectable", "self-check"});

  for (cpu::EccPolicy policy :
       {cpu::EccPolicy::kLaec, cpu::EccPolicy::kWtParity,
        cpu::EccPolicy::kNoEcc}) {
    core::SimConfig cfg;
    cfg.ecc = policy;
    ecc::InjectorConfig inj;
    inj.single_flip_prob = 0.002;  // one flip every ~500 word reads
    inj.seed = 2024;
    cfg.faults = inj;

    sim::System sys(core::make_system_config(cfg));
    const auto injector = core::attach_injector(sys, cfg);
    sys.load_program(kernel.program);
    sys.run();
    const auto stats = core::collect_stats(sys, true);

    int bad = 0;
    for (const auto& [addr, expect] : kernel.expected) {
      bad += sys.read_word_final(addr) != expect;
    }
    table.add_row({std::string(to_string(policy)),
                   std::to_string(stats.ecc_corrected),
                   std::to_string(stats.parity_refetches),
                   std::to_string(stats.ecc_detected_uncorrectable),
                   bad == 0 ? "PASS"
                            : "FAIL (" + std::to_string(bad) + " words)"});
  }

  std::printf("Single-bit soft-error storm vs DL1 protection "
              "(kernel: tblook, p_flip=0.002/word-read)\n\n%s\n",
              table.to_text().c_str());
  std::printf("SECDED corrects transparently; parity+WT recovers by "
              "refetch; an unprotected WB cache silently corrupts.\n");
  return 0;
}
