// Two ways to bring your own workload:
//   1. assemble a program with isa::Assembler (runs on the real caches);
//   2. synthesize a calibrated trace with workloads::SyntheticTrace
//      (oracle DL1 outcomes, exact Table II-style parameters).
//
//   $ ./build/examples/custom_workload
#include <cstdio>

#include "core/simulator.hpp"
#include "isa/assembler.hpp"
#include "report/table.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace laec;
using isa::R;

// A histogram kernel: data-dependent table update (load-add-store chains).
isa::Program histogram_program() {
  isa::Assembler a("histogram");
  std::vector<u32> samples;
  Rng rng(99);
  for (int i = 0; i < 512; ++i) {
    samples.push_back(static_cast<u32>(rng.below(16)));
  }
  const Addr data = a.data_words(samples);
  const Addr bins = a.data_fill(16, 0);
  a.li(R{1}, data);
  a.li(R{2}, 512);
  a.li(R{3}, bins);
  a.label("loop");
  a.lw(R{4}, R{1}, 0);       // sample
  a.slli(R{5}, R{4}, 2);     // bin offset (address producer...)
  a.add(R{5}, R{3}, R{5});
  a.lw(R{6}, R{5}, 0);       // ...for this load: LAEC falls back
  a.addi(R{6}, R{6}, 1);
  a.sw(R{6}, R{5}, 0);
  a.addi(R{1}, R{1}, 4);
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "loop");
  a.halt();
  return a.finish();
}

}  // namespace

int main() {
  using cpu::EccPolicy;

  std::printf("=== 1. Assembled workload (histogram) across schemes ===\n\n");
  report::Table t1({"scheme", "cycles", "CPI", "vs no-ECC"});
  u64 base = 0;
  for (EccPolicy p : {EccPolicy::kNoEcc, EccPolicy::kExtraCycle,
                      EccPolicy::kExtraStage, EccPolicy::kLaec}) {
    core::SimConfig cfg;
    cfg.ecc = p;
    const auto s = core::run_program(cfg, histogram_program());
    if (p == EccPolicy::kNoEcc) base = s.cycles;
    t1.add_row({std::string(to_string(p)), std::to_string(s.cycles),
                report::Table::num(s.cpi, 2),
                report::Table::num(100.0 * (static_cast<double>(s.cycles) /
                                                static_cast<double>(base) -
                                            1.0),
                                   1) +
                    "%"});
  }
  std::printf("%s\n", t1.to_text().c_str());

  std::printf("=== 2. Synthetic trace with chosen characteristics ===\n\n");
  workloads::SyntheticParams sp;
  sp.load_frac = 0.30;   // make it load-heavy
  sp.hit_frac = 0.95;
  sp.dep_frac = 0.70;    // most loads immediately consumed
  sp.addr_dep_frac = 0.20;
  sp.num_ops = 50'000;

  report::Table t2({"scheme", "cycles", "anticipated", "vs no-ECC"});
  base = 0;
  for (EccPolicy p : {EccPolicy::kNoEcc, EccPolicy::kExtraCycle,
                      EccPolicy::kExtraStage, EccPolicy::kLaec}) {
    core::SimConfig cfg;
    cfg.ecc = p;
    workloads::SyntheticTrace trace(sp);
    const auto s = core::run_trace(cfg, trace);
    if (p == EccPolicy::kNoEcc) base = s.cycles;
    t2.add_row({std::string(to_string(p)), std::to_string(s.cycles),
                std::to_string(s.laec_anticipated),
                report::Table::num(100.0 * (static_cast<double>(s.cycles) /
                                                static_cast<double>(base) -
                                            1.0),
                                   1) +
                    "%"});
  }
  std::printf("%s\n", t2.to_text().c_str());
  return 0;
}
