// Motivation experiment (paper §II.A, ref [9]): on a shared bus, a
// write-through DL1 turns every store into bus traffic, so co-runner
// contention inflates execution time far more than under write-back —
// the reason the paper insists on WB DL1 + SECDED in the first place.
//
//   $ ./build/examples/wcet_contention
#include <cstdio>

#include "core/simulator.hpp"
#include "isa/assembler.hpp"
#include "report/table.hpp"
#include "sim/system.hpp"

namespace {

using namespace laec;
using isa::R;

isa::Program store_loop(int iters) {
  isa::Assembler a("stores");
  const Addr buf = a.data_fill(256, 0);
  a.li(R{1}, buf);
  a.li(R{2}, static_cast<u32>(iters));
  a.label("loop");
  a.andi(R{3}, R{2}, 0xff);
  a.slli(R{4}, R{3}, 2);
  a.add(R{4}, R{1}, R{4});
  a.sw(R{2}, R{4}, 0);
  a.lw(R{5}, R{4}, 0);
  a.add(R{6}, R{6}, R{5});
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "loop");
  a.halt();
  return a.finish();
}

u64 run(cpu::EccPolicy ecc, unsigned co_runners) {
  core::SimConfig cfg;
  cfg.ecc = ecc;
  for (unsigned i = 0; i < co_runners; ++i) {
    sim::TrafficPattern t;
    t.gap_cycles = 0;  // saturating co-runner (worst-case-style pressure)
    t.base = 0x4000'0000 + i * 0x0100'0000;
    cfg.traffic.push_back(t);
  }
  const auto stats = core::run_program(cfg, store_loop(400));
  return stats.cycles;
}

}  // namespace

int main() {
  std::printf(
      "Store-heavy task on core 0; 0-3 saturating co-runners on the bus.\n"
      "WCET-style slowdown = cycles(contended) / cycles(alone).\n\n");

  report::Table t({"co-runners", "WB+SECDED (LAEC) cycles", "slowdown",
                   "WT+parity cycles", "slowdown"});
  const u64 wb0 = run(cpu::EccPolicy::kLaec, 0);
  const u64 wt0 = run(cpu::EccPolicy::kWtParity, 0);
  for (unsigned n = 0; n <= 3; ++n) {
    const u64 wb = run(cpu::EccPolicy::kLaec, n);
    const u64 wt = run(cpu::EccPolicy::kWtParity, n);
    t.add_row({std::to_string(n), std::to_string(wb),
               report::Table::num(static_cast<double>(wb) / wb0, 2) + "x",
               std::to_string(wt),
               report::Table::num(static_cast<double>(wt) / wt0, 2) + "x"});
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "The WT column degrades several times faster: contention on every\n"
      "store is what the paper's WB-DL1 (and hence LAEC) eliminates.\n");
  return 0;
}
