// Quickstart: assemble a small program, run it on the LAEC-protected core,
// and read back results and statistics.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/simulator.hpp"
#include "isa/assembler.hpp"
#include "sim/system.hpp"

int main() {
  using namespace laec;
  using isa::R;

  // 1. Write a program: sum an array of 32 words through the DL1.
  isa::Assembler a("quickstart");
  std::vector<u32> values;
  for (u32 i = 1; i <= 32; ++i) values.push_back(i * i);
  const Addr array = a.data_words(values);
  const Addr result = a.data_fill(1, 0);

  a.li(R{1}, array);       // cursor
  a.li(R{2}, 32);          // remaining
  a.li(R{3}, 0);           // accumulator
  a.label("loop");
  a.lw(R{4}, R{1}, 0);     // load through the SECDED-protected DL1
  a.add(R{3}, R{3}, R{4}); // consumer at distance 1 — the paper's hot case
  a.addi(R{1}, R{1}, 4);
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "loop");
  a.li(R{10}, result);
  a.sw(R{3}, R{10}, 0);
  a.halt();
  const isa::Program program = a.finish();

  // 2. Configure the machine. EccPolicy picks the DL1 protection scheme:
  //    kNoEcc / kExtraCycle / kExtraStage / kLaec / kWtParity.
  core::SimConfig cfg;
  cfg.ecc = cpu::EccPolicy::kLaec;

  // 3. Run (run_program builds the NGMP-like system, loads, and simulates).
  const core::RunStats stats = core::run_program(cfg, program);

  // 4. Inspect. For memory readback keep the system alive instead:
  sim::System system(core::make_system_config(cfg));
  system.load_program(program);
  system.run();
  const u32 sum = system.read_word_final(result);

  std::printf("sum(1..32 squares)      = %u (expect 11440)\n", sum);
  std::printf("cycles                  = %llu\n",
              static_cast<unsigned long long>(stats.cycles));
  std::printf("instructions            = %llu (CPI %.2f)\n",
              static_cast<unsigned long long>(stats.instructions), stats.cpi);
  std::printf("loads                   = %llu (%.1f%% hits)\n",
              static_cast<unsigned long long>(stats.loads),
              100.0 * stats.hit_fraction());
  std::printf("LAEC anticipated loads  = %llu\n",
              static_cast<unsigned long long>(stats.laec_anticipated));
  std::printf("LAEC blocked (data dep) = %llu\n",
              static_cast<unsigned long long>(stats.laec_data_hazard));
  return sum == 11440 ? 0 : 1;
}
