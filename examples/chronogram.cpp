// Reproduces the paper's pipeline chronograms (Figs. 2, 3, 4, 5, 7a, 7b)
// as cycle-aligned text grids — experiment E4.
//
//   $ ./build/examples/chronogram
#include <cstdio>
#include <memory>
#include <string>

#include "core/simulator.hpp"
#include "isa/assembler.hpp"
#include "report/chronogram.hpp"
#include "sim/system.hpp"

namespace {

using namespace laec;
using isa::R;

void show(const char* title, cpu::EccPolicy ecc, bool addr_producer,
          bool dependent_consumer,
          cpu::EccSlotPolicy slot = cpu::EccSlotPolicy::kAuto) {
  isa::Assembler a("fig");
  a.data_words({0x1234, 0, 0, 0, 0, 0, 0, 0});
  if (addr_producer) a.add(R{1}, R{4}, R{6});
  a.lw(R{3}, R{1}, R{2});
  if (dependent_consumer) {
    a.add(R{5}, R{3}, R{4});
  } else {
    a.add(R{5}, R{6}, R{4});
  }
  a.halt();
  const isa::Program p = a.finish();

  core::SimConfig cfg;
  cfg.ecc = ecc;
  cfg.ecc_slot = slot;
  cfg.record_chronogram = true;
  sim::System sys(core::make_system_config(cfg));
  sys.load_program(p);

  // Warm the caches: the figures assume L1 hits.
  {
    auto& icache = sys.core(0).l1i().cache();
    std::vector<u8> line(icache.line_bytes());
    for (Addr addr = p.text_base;
         addr < p.text_base + 4 * p.text.size();
         addr += icache.line_bytes()) {
      sys.memsys().memory().read_block(addr, line.data(), icache.line_bytes());
      icache.fill(addr, line.data(), false);
    }
    auto& dcache = sys.core(0).dl1().cache();
    std::vector<u8> dline(dcache.line_bytes());
    sys.memsys().memory().read_block(p.data_base, dline.data(),
                                     dcache.line_bytes());
    dcache.fill(p.data_base, dline.data(), false);
  }
  auto& pipe = sys.core(0).pipeline();
  pipe.set_reg(1, p.data_base);
  pipe.set_reg(2, 0);
  pipe.set_reg(4, addr_producer ? p.data_base : 7);
  pipe.set_reg(6, 0);
  for (int i = 0; i < 200 && !sys.core(0).halted(); ++i) sys.tick();

  std::printf("%s  [%s]\n", title, std::string(to_string(ecc)).c_str());
  std::printf("%s\n", report::render_grid(pipe.chronogram()).c_str());
}

}  // namespace

int main() {
  std::printf("Pipeline chronograms reproducing the paper's figures.\n");
  std::printf("(Stage names: F D RA Exe M ECC Exc WB; '.' = not in pipe)\n\n");

  show("Fig. 2 - data dependency stall on the baseline (no ECC)",
       cpu::EccPolicy::kNoEcc, false, true);
  show("Fig. 3 - Extra Cache Cycle: M spans two cycles on load hits",
       cpu::EccPolicy::kExtraCycle, false, true);
  show("Fig. 4 - Extra Stage: dependent consumer stalls two cycles",
       cpu::EccPolicy::kExtraStage, false, true);
  show("Fig. 5 - Extra Stage: independent instructions flow freely",
       cpu::EccPolicy::kExtraStage, false, false);
  show("Fig. 7a - LAEC look-ahead: DL1 read in Exe, ECC in M;\n"
       "          the consumer sees baseline timing",
       cpu::EccPolicy::kLaec, false, true);
  show("Fig. 7b - LAEC blocked by an address producer at distance 1",
       cpu::EccPolicy::kLaec, true, true, cpu::EccSlotPolicy::kAlways);
  return 0;
}
