// Experiment E6 (motivation, paper §II.A and ref [9]): WT DL1 stores all
// cross the shared bus, so multicore contention inflates a store-heavy
// task's execution time by multiples, while the WB configuration barely
// notices. (Ref [9] reports WCET inflation up to ~6x from bus contention.)
#include <cstdio>

#include "core/simulator.hpp"
#include "isa/assembler.hpp"
#include "report/table.hpp"

namespace {

using namespace laec;
using isa::R;

isa::Program worker(int iters, int store_period) {
  isa::Assembler a("worker");
  const Addr buf = a.data_fill(512, 0);
  a.li(R{1}, buf);
  a.li(R{2}, static_cast<u32>(iters));
  a.label("loop");
  a.andi(R{3}, R{2}, 0x1ff & ~3);
  a.add(R{4}, R{1}, R{3});
  a.lw(R{5}, R{4}, 0);
  a.add(R{6}, R{6}, R{5});
  if (store_period <= 1) {
    a.sw(R{6}, R{4}, 0);
  } else {
    a.andi(R{7}, R{2}, static_cast<i32>(store_period - 1));
    a.bne(R{7}, R{0}, "nostore");
    a.sw(R{6}, R{4}, 0);
    a.label("nostore");
  }
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "loop");
  a.halt();
  return a.finish();
}

u64 run(cpu::EccPolicy ecc, unsigned co_runners, int store_period) {
  core::SimConfig cfg;
  cfg.ecc = ecc;
  for (unsigned i = 0; i < co_runners; ++i) {
    sim::TrafficPattern t;
    t.gap_cycles = 0;
    t.base = 0x4000'0000 + i * 0x0100'0000;
    cfg.traffic.push_back(t);
  }
  return core::run_program(cfg, worker(600, store_period)).cycles;
}

}  // namespace

int main() {
  std::printf(
      "Motivation (paper §II.A): execution-time inflation under shared-bus\n"
      "contention, WB+SECDED vs WT+parity DL1, for store densities from\n"
      "every-iteration to 1-in-8.\n\n");

  for (int period : {1, 4, 8}) {
    report::Table t({"co-runners", "WB cycles", "WB slowdown", "WT cycles",
                     "WT slowdown", "WT/WB"});
    const u64 wb0 = run(cpu::EccPolicy::kLaec, 0, period);
    const u64 wt0 = run(cpu::EccPolicy::kWtParity, 0, period);
    for (unsigned n = 0; n <= 3; ++n) {
      const u64 wb = run(cpu::EccPolicy::kLaec, n, period);
      const u64 wt = run(cpu::EccPolicy::kWtParity, n, period);
      t.add_row(
          {std::to_string(n), std::to_string(wb),
           report::Table::num(static_cast<double>(wb) / wb0, 2) + "x",
           std::to_string(wt),
           report::Table::num(static_cast<double>(wt) / wt0, 2) + "x",
           report::Table::num(static_cast<double>(wt) / wb, 2) + "x"});
    }
    std::printf("stores every %d iteration(s):\n%s\n", period,
                t.to_text().c_str());
  }
  std::printf(
      "Shape check vs ref [9]: WT slowdown grows with co-runners towards\n"
      "multiples of the solo run; WB stays nearly flat.\n");
  return 0;
}
