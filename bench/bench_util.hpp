// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "runner/sweep_runner.hpp"
#include "workloads/eembc.hpp"
#include "workloads/synthetic.hpp"

namespace laec::bench {

/// Shared argv loop for the bench mains: consumes the sweep flags every
/// bench accepts (--threads=N) into `opts` and hands anything else to
/// `extra` (return false to reject). Prints `usage` and returns false on a
/// bad or malformed flag.
template <typename ExtraFn>
[[nodiscard]] inline bool parse_bench_args(int argc, char** argv,
                                           runner::SweepOptions& opts,
                                           const char* usage,
                                           ExtraFn&& extra) {
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--threads=", 0) == 0) {
        opts.threads = static_cast<unsigned>(std::stoul(arg.substr(10)));
      } else if (!extra(arg)) {
        throw std::invalid_argument(arg);
      }
    }
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s", usage);
    return false;
  }
  return true;
}

[[nodiscard]] inline bool parse_bench_args(int argc, char** argv,
                                           runner::SweepOptions& opts,
                                           const char* usage) {
  return parse_bench_args(argc, argv, opts, usage,
                          [](const std::string&) { return false; });
}

inline core::SimConfig config_for(cpu::EccPolicy ecc) {
  core::SimConfig cfg;
  cfg.ecc = ecc;
  return cfg;
}

/// Run one kernel under one scheme (program mode: real caches).
inline core::RunStats run_kernel(const workloads::KernelEntry& k,
                                 cpu::EccPolicy ecc) {
  const auto built = k.build();
  auto cfg = config_for(ecc);
  return core::run_program(cfg, built.program);
}

/// Run one benchmark's calibrated synthetic trace under one scheme.
inline core::RunStats run_calibrated(const workloads::KernelEntry& k,
                                     cpu::EccPolicy ecc,
                                     u64 num_ops = 120'000) {
  auto cfg = config_for(ecc);
  workloads::SyntheticTrace trace(
      workloads::SyntheticParams::from_kernel(k, num_ops));
  return core::run_trace(cfg, trace);
}

inline double ratio(u64 num, u64 den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

/// Append `grid`'s points to an existing point list, re-indexing them to
/// follow on (one run_sweep call = one pool, one header, grid-ordered
/// rows). Returns the offset of the appended block.
inline std::size_t append_points(std::vector<runner::SweepPoint>& points,
                                 const runner::SweepGrid& grid) {
  const std::size_t split = points.size();
  for (auto& p : grid.points()) {
    p.index = points.size();
    points.push_back(std::move(p));
  }
  return split;
}

}  // namespace laec::bench
