// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures.
#pragma once

#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "workloads/eembc.hpp"
#include "workloads/synthetic.hpp"

namespace laec::bench {

inline core::SimConfig config_for(cpu::EccPolicy ecc) {
  core::SimConfig cfg;
  cfg.ecc = ecc;
  return cfg;
}

/// Run one kernel under one scheme (program mode: real caches).
inline core::RunStats run_kernel(const workloads::KernelEntry& k,
                                 cpu::EccPolicy ecc) {
  const auto built = k.build();
  auto cfg = config_for(ecc);
  return core::run_program(cfg, built.program);
}

/// Run one benchmark's calibrated synthetic trace under one scheme.
inline core::RunStats run_calibrated(const workloads::KernelEntry& k,
                                     cpu::EccPolicy ecc,
                                     u64 num_ops = 120'000) {
  auto cfg = config_for(ecc);
  workloads::SyntheticTrace trace(
      workloads::SyntheticParams::from_kernel(k, num_ops));
  return core::run_trace(cfg, trace);
}

inline double ratio(u64 num, u64 den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace laec::bench
