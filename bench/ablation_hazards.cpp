// Ablation A1: why does LAEC still lose cycles? Decompose every load's
// look-ahead outcome per benchmark (anticipated / data hazard / resource
// hazard / dynamic fallback) and compare the HazardRule variants.
//
// Both tables fold out of ONE batched sweep through runner::run_sweep:
// 16 workloads x {no-ecc, laec} x {exact, paper} calibrated-trace points.
// Grid order is workload-major with (scheme x hazard) inner, so each
// workload block is [no-ecc/exact, no-ecc/paper, laec/exact, laec/paper].
// Pass --threads=N to pin the pool size.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_util.hpp"
#include "report/table.hpp"
#include "runner/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace laec;

  runner::SweepOptions opts;
  if (!bench::parse_bench_args(argc, argv, opts,
                               "usage: ablation_hazards [--threads=N]\n")) {
    return 2;
  }

  std::printf(
      "LAEC outcome decomposition per benchmark (calibrated traces).\n"
      "The paper (§IV.A): \"Out of the two potential conditions ... most of\n"
      "them are due to data hazards.\"\n\n");

  runner::SweepGrid grid;
  grid.all_workloads()
      .schemes({"no-ecc", "laec"})
      .hazards({cpu::HazardRule::kExact, cpu::HazardRule::kPaperLiteral})
      .mode(runner::RunMode::kTrace)
      .trace_ops(120'000);
  const auto summary = runner::run_sweep(grid, opts);
  const auto& rs = summary.results;
  constexpr std::size_t kPerWorkload = 4;  // 2 schemes x 2 hazard rules

  report::Table t({"benchmark", "%anticipated", "%data hazard",
                   "%resource hazard", "%fallback"});
  double sa = 0, sd = 0, sr = 0, sf = 0;
  double n = 0;
  for (std::size_t i = 0; i + kPerWorkload <= rs.size(); i += kPerWorkload) {
    const auto& s = rs[i + 2].stats;  // laec / exact
    const double loads = static_cast<double>(s.loads);
    const double a = 100.0 * static_cast<double>(s.laec_anticipated) / loads;
    const double d = 100.0 * static_cast<double>(s.laec_data_hazard) / loads;
    const double r =
        100.0 * static_cast<double>(s.laec_resource_hazard) / loads;
    const double f = 100.0 *
                     static_cast<double>(s.pipeline_stats.value(
                         "laec_dynamic_fallback")) /
                     loads;
    t.add_row({rs[i].point.workload, report::Table::num(a, 1),
               report::Table::num(d, 1), report::Table::num(r, 1),
               report::Table::num(f, 1)});
    sa += a;
    sd += d;
    sr += r;
    sf += f;
    n += 1;
  }
  t.add_row({"average", report::Table::num(sa / n, 1),
             report::Table::num(sd / n, 1), report::Table::num(sr / n, 1),
             report::Table::num(sf / n, 1)});
  std::printf("%s\n", t.to_text().c_str());

  // HazardRule ablation: the paper's literal distance-1 rule vs the exact
  // operand-earliness rule the hardware could implement. The no-ECC
  // baseline is hazard-rule-independent; use each workload's exact-rule
  // baseline row.
  std::printf("HazardRule ablation (average over benchmarks):\n\n");
  report::Table h({"rule", "avg exec-time increase vs no-ECC",
                   "avg %anticipated"});
  for (const auto rule :
       {cpu::HazardRule::kExact, cpu::HazardRule::kPaperLiteral}) {
    const std::size_t off = rule == cpu::HazardRule::kExact ? 2 : 3;
    double overhead = 0, ant = 0;
    for (std::size_t i = 0; i + kPerWorkload <= rs.size();
         i += kPerWorkload) {
      const auto& base = rs[i].stats;     // no-ecc / exact
      const auto& s = rs[i + off].stats;  // laec / rule
      overhead += bench::ratio(s.cycles, base.cycles) - 1.0;
      ant += bench::ratio(s.laec_anticipated, s.loads);
    }
    h.add_row({rule == cpu::HazardRule::kExact ? "exact (operand earliness)"
                                               : "paper-literal (distance 1)",
               report::Table::pct(overhead / n),
               report::Table::pct(ant / n)});
  }
  std::printf("%s\n", h.to_text().c_str());
  return 0;
}
