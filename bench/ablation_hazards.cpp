// Ablation A1: why does LAEC still lose cycles? Decompose every load's
// look-ahead outcome per benchmark (anticipated / data hazard / resource
// hazard / dynamic fallback) and compare the HazardRule variants.
#include <cstdio>

#include "bench_util.hpp"
#include "report/table.hpp"

int main() {
  using namespace laec;
  using cpu::EccPolicy;

  std::printf(
      "LAEC outcome decomposition per benchmark (calibrated traces).\n"
      "The paper (§IV.A): \"Out of the two potential conditions ... most of\n"
      "them are due to data hazards.\"\n\n");

  report::Table t({"benchmark", "%anticipated", "%data hazard",
                   "%resource hazard", "%fallback"});
  double sa = 0, sd = 0, sr = 0, sf = 0;
  for (const auto& k : workloads::eembc_kernels()) {
    const auto s = bench::run_calibrated(k, EccPolicy::kLaec);
    const double loads = static_cast<double>(s.loads);
    const double a = 100.0 * static_cast<double>(s.laec_anticipated) / loads;
    const double d = 100.0 * static_cast<double>(s.laec_data_hazard) / loads;
    const double r =
        100.0 * static_cast<double>(s.laec_resource_hazard) / loads;
    const double f = 100.0 *
                     static_cast<double>(s.pipeline_stats.value(
                         "laec_dynamic_fallback")) /
                     loads;
    t.add_row({k.name, report::Table::num(a, 1), report::Table::num(d, 1),
               report::Table::num(r, 1), report::Table::num(f, 1)});
    sa += a;
    sd += d;
    sr += r;
    sf += f;
  }
  t.add_row({"average", report::Table::num(sa / 16, 1),
             report::Table::num(sd / 16, 1), report::Table::num(sr / 16, 1),
             report::Table::num(sf / 16, 1)});
  std::printf("%s\n", t.to_text().c_str());

  // HazardRule ablation: the paper's literal distance-1 rule vs the exact
  // operand-earliness rule the hardware could implement.
  std::printf("HazardRule ablation (average over benchmarks):\n\n");
  report::Table h({"rule", "avg exec-time increase vs no-ECC",
                   "avg %anticipated"});
  for (auto rule : {cpu::HazardRule::kExact, cpu::HazardRule::kPaperLiteral}) {
    double overhead = 0, ant = 0;
    for (const auto& k : workloads::eembc_kernels()) {
      auto cfg = bench::config_for(EccPolicy::kNoEcc);
      workloads::SyntheticTrace base_trace(
          workloads::SyntheticParams::from_kernel(k, 120'000));
      const auto base = core::run_trace(cfg, base_trace);

      auto cfg2 = bench::config_for(EccPolicy::kLaec);
      cfg2.hazard_rule = rule;
      workloads::SyntheticTrace trace(
          workloads::SyntheticParams::from_kernel(k, 120'000));
      const auto s = core::run_trace(cfg2, trace);
      overhead += bench::ratio(s.cycles, base.cycles) - 1.0;
      ant += bench::ratio(s.laec_anticipated, s.loads);
    }
    h.add_row({rule == cpu::HazardRule::kExact ? "exact (operand earliness)"
                                               : "paper-literal (distance 1)",
               report::Table::pct(overhead / 16),
               report::Table::pct(ant / 16)});
  }
  std::printf("%s\n", h.to_text().c_str());
  return 0;
}
