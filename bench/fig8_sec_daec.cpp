// Headline extension: Fig. 8-style exec-time comparison with SEC-DAEC rows
// next to the paper's four schemes, under ADJACENT double-bit fault
// injection — the MBU geometry that dominates scaled SRAM and the exact
// case where SEC-DAEC out-corrects Hsiao SECDED.
//
// Per kernel, ONE batched sweep runs a clean no-ECC baseline (timing
// denominator) plus five schemes under the storm:
//
//   no-ecc            unprotected write-back (silent corruption expected)
//   extra-cycle       SECDED, M-stage spans 2 cycles
//   extra-stage       SECDED, 8th pipeline stage
//   laec              SECDED, look-ahead placement (the paper's proposal)
//   sec-daec-39-32    SEC-DAEC under the same look-ahead placement
//
// Timing: SEC-DAEC matches laec (same placement, same hazards).
// Reliability: SECDED can only *detect* an injected adjacent pair; the
// refetch recovers clean lines, but on a dirty write-back line the only
// copy is lost (a DUE data-loss event, visible as a self-check FAIL).
// SEC-DAEC corrects the same pairs in place and stays clean — that is the
// experiment's headline column.
//
// Pass --threads=N to pin the pool size, --rate=P to change the per-access
// double-upset probability (default 2e-4), --csv to stream raw rows.
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "report/sink.hpp"
#include "report/table.hpp"
#include "runner/sweep_runner.hpp"

namespace {

using namespace laec;

const std::vector<std::string>& storm_schemes() {
  static const std::vector<std::string> kSchemes = {
      "no-ecc", "extra-cycle", "extra-stage", "laec", "sec-daec-39-32"};
  return kSchemes;
}

}  // namespace

int main(int argc, char** argv) {
  runner::SweepOptions opts;
  double rate = 2e-4;
  bool csv = false;
  if (!bench::parse_bench_args(
          argc, argv, opts,
          "usage: fig8_sec_daec [--threads=N] [--rate=P] [--csv]\n",
          [&](const std::string& arg) {
            if (arg.rfind("--rate=", 0) == 0) {
              rate = std::stod(arg.substr(7));
              return true;
            }
            if (arg == "--csv") return csv = true;
            return false;
          })) {
    return 2;
  }
  report::CsvWriter csv_sink(std::cout);
  if (csv) opts.sink = &csv_sink;
  std::FILE* txt = csv ? stderr : stdout;

  std::fprintf(
      txt,
      "Fig. 8 extension — execution time vs a CLEAN no-ECC baseline, with\n"
      "SEC-DAEC beside the paper's schemes, under adjacent double-bit\n"
      "upsets (p=%g per DL1 word access).\n\n",
      rate);

  core::SimConfig stormy;
  ecc::InjectorConfig inj;
  inj.double_flip_prob = rate;
  inj.adjacent_doubles = true;
  stormy.faults = inj;

  // Clean baseline first, storm grid second — one thread pool, one header.
  runner::SweepGrid clean;
  clean.all_workloads().schemes({"no-ecc"}).mode(runner::RunMode::kProgram);
  runner::SweepGrid storm;
  storm.all_workloads()
      .schemes(storm_schemes())
      .base_config(stormy)
      .mode(runner::RunMode::kProgram);

  auto points = clean.points();
  const std::size_t split = bench::append_points(points, storm);
  const auto summary = runner::run_sweep(points, opts);
  const auto& rs = summary.results;
  const std::size_t ns = storm_schemes().size();

  report::Table t({"benchmark", "Extra Cycle", "Extra Stage", "LAEC",
                   "SEC-DAEC", "no-ECC", "SECDED", "SEC-DAEC"});
  std::fprintf(txt,
               "(last three columns: self-check under the storm — silent\n"
               " corruption / DUE data loss / corrected in place)\n\n");
  double sec = 0, ses = 0, sla = 0, sda = 0;
  u64 due = 0, fixed = 0;
  bool daec_all_ok = true;
  double n = 0;
  for (std::size_t k = 0; split + (k + 1) * ns <= rs.size(); ++k) {
    const u64 base_cycles = rs[k].stats.cycles;  // clean no-ecc
    const auto* row = &rs[split + k * ns];       // storm block
    const double ec = bench::ratio(row[1].stats.cycles, base_cycles) - 1.0;
    const double es = bench::ratio(row[2].stats.cycles, base_cycles) - 1.0;
    const double la = bench::ratio(row[3].stats.cycles, base_cycles) - 1.0;
    const double da = bench::ratio(row[4].stats.cycles, base_cycles) - 1.0;
    const u64 k_due = row[3].stats.ecc_detected_uncorrectable;
    const u64 k_fixed = row[4].stats.ecc_corrected_adjacent;
    const bool secded_ok = row[1].self_check_ok && row[2].self_check_ok &&
                           row[3].self_check_ok;
    daec_all_ok = daec_all_ok && row[4].self_check_ok;
    t.add_row({row[0].point.workload, report::Table::pct(ec),
               report::Table::pct(es), report::Table::pct(la),
               report::Table::pct(da),
               row[0].self_check_ok ? "ok" : "CORRUPT",
               secded_ok ? "ok" : "DATA LOSS",
               row[4].self_check_ok ? "ok" : "FAIL"});
    sec += ec;
    ses += es;
    sla += la;
    sda += da;
    due += k_due;
    fixed += k_fixed;
    n += 1;
  }
  t.add_row({"average", report::Table::pct(sec / n),
             report::Table::pct(ses / n), report::Table::pct(sla / n),
             report::Table::pct(sda / n), "-", "-", "-"});
  std::fprintf(txt, "%s\n", t.to_text().c_str());
  std::fprintf(
      txt,
      "Injected adjacent pairs hitting the LAEC/SECDED DL1: %llu detected-\n"
      "uncorrectable (refetch; data loss when the line was dirty). The same\n"
      "storm under SEC-DAEC: %llu corrected in place, zero data loss.\n",
      static_cast<unsigned long long>(due),
      static_cast<unsigned long long>(fixed));

  // SEC-DAEC must ride out the storm; SECDED/no-ecc failures are the
  // expected result, not an error.
  return daec_all_ok ? 0 : 1;
}
