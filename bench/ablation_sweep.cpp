// Ablation A3: sensitivity of the Fig. 8 result to machine parameters —
// DL1 geometry, write-buffer depth, divide latency and L2/memory latency.
// Uses three representative kernels on the real hierarchy.
//
// The whole (kernel x variant x scheme) grid — 120 points — runs in one
// parallel runner::run_sweep call; rows are folded back into the paper-style
// sensitivity table afterwards. --threads=N pins the pool size.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "report/table.hpp"
#include "runner/sweep_runner.hpp"

namespace {

using namespace laec;

// matrix: 3 KB resident; tblook: tiny tables + divides; cacheb: streams
// 64 KB (smashes any DL1) — together they expose geometry sensitivity.
const std::vector<std::string> kKernels = {"matrix", "tblook", "cacheb"};

std::vector<runner::ConfigVariant> variants() {
  return {
      {"defaults", [](core::SimConfig&) {}},
      {"DL1 1KB", [](core::SimConfig& c) { c.dl1_size_bytes = 1 * 1024; }},
      {"DL1 128KB",
       [](core::SimConfig& c) { c.dl1_size_bytes = 128 * 1024; }},
      {"DL1 direct-mapped", [](core::SimConfig& c) { c.dl1_ways = 1; }},
      {"write buffer depth 1",
       [](core::SimConfig& c) { c.write_buffer_depth = 1; }},
      {"write buffer depth 32",
       [](core::SimConfig& c) { c.write_buffer_depth = 32; }},
      {"div latency 1", [](core::SimConfig& c) { c.div_latency = 1; }},
      {"div latency 34", [](core::SimConfig& c) { c.div_latency = 34; }},
      {"memory 80 cycles", [](core::SimConfig& c) { c.memory_cycles = 80; }},
      {"memory 8 cycles", [](core::SimConfig& c) { c.memory_cycles = 8; }},
  };
}

}  // namespace

int main(int argc, char** argv) {
  runner::SweepOptions opts;
  if (!bench::parse_bench_args(argc, argv, opts,
                               "usage: ablation_sweep [--threads=N]\n")) {
    return 2;
  }

  std::printf(
      "Parameter sensitivity of the scheme overheads (avg over matrix,\n"
      "tblook, cacheb; real hierarchy). Each row changes one parameter\n"
      "from the defaults (16KB 4-way DL1, depth-8 WB, div=12, mem=26).\n\n");

  const auto vars = variants();
  runner::SweepGrid grid;
  grid.workloads(kKernels).variants(vars).eccs(runner::fig8_schemes()).mode(
      runner::RunMode::kProgram);
  const auto summary = runner::run_sweep(grid, opts);

  // Grid order is workload-major (kernel x variant x scheme); fold into
  // per-variant average overheads over the three kernels.
  const std::size_t ns = runner::fig8_schemes().size();
  const std::size_t nv = vars.size();
  std::vector<double> sum_ec(nv, 0), sum_es(nv, 0), sum_la(nv, 0);
  for (std::size_t k = 0; k < kKernels.size(); ++k) {
    for (std::size_t v = 0; v < nv; ++v) {
      const std::size_t base_idx = (k * nv + v) * ns;
      const u64 base = summary.results[base_idx].stats.cycles;
      const auto over = [&](std::size_t scheme) {
        return bench::ratio(summary.results[base_idx + scheme].stats.cycles,
                            base) -
               1.0;
      };
      sum_ec[v] += over(1);
      sum_es[v] += over(2);
      sum_la[v] += over(3);
    }
  }

  const double n = static_cast<double>(kKernels.size());
  report::Table t({"configuration", "Extra Cycle", "Extra Stage", "LAEC"});
  for (std::size_t v = 0; v < nv; ++v) {
    t.add_row({vars[v].name, report::Table::pct(sum_ec[v] / n),
               report::Table::pct(sum_es[v] / n),
               report::Table::pct(sum_la[v] / n)});
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "Reading: larger caches / faster memory increase the *relative*\n"
      "weight of load-use stalls, widening the gap LAEC recovers; slow\n"
      "dividers and tiny caches dilute it.\n");
  return summary.self_check_failures == 0 ? 0 : 1;
}
