// Ablation A3: sensitivity of the Fig. 8 result to machine parameters —
// DL1 geometry, write-buffer depth, divide latency and L2/memory latency.
// Uses three representative kernels on the real hierarchy.
#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "report/table.hpp"

namespace {

using namespace laec;
using cpu::EccPolicy;

double avg_overhead(const std::function<void(core::SimConfig&)>& tweak,
                    EccPolicy policy) {
  // matrix: 3 KB resident; tblook: tiny tables + divides; cacheb: streams
  // 64 KB (smashes any DL1) — together they expose geometry sensitivity.
  const char* names[] = {"matrix", "tblook", "cacheb"};
  double sum = 0;
  for (const char* n : names) {
    const auto built = workloads::kernel_by_name(n).build();
    core::SimConfig base_cfg = bench::config_for(EccPolicy::kNoEcc);
    tweak(base_cfg);
    core::SimConfig cfg = bench::config_for(policy);
    tweak(cfg);
    const auto base = core::run_program(base_cfg, built.program);
    const auto s = core::run_program(cfg, built.program);
    sum += bench::ratio(s.cycles, base.cycles) - 1.0;
  }
  return sum / 3.0;
}

void sweep_row(report::Table& t, const std::string& label,
               const std::function<void(core::SimConfig&)>& tweak) {
  t.add_row({label,
             report::Table::pct(avg_overhead(tweak, EccPolicy::kExtraCycle)),
             report::Table::pct(avg_overhead(tweak, EccPolicy::kExtraStage)),
             report::Table::pct(avg_overhead(tweak, EccPolicy::kLaec))});
}

}  // namespace

int main() {
  std::printf(
      "Parameter sensitivity of the scheme overheads (avg over matrix,\n"
      "tblook, cacheb; real hierarchy). Each row changes one parameter\n"
      "from the defaults (16KB 4-way DL1, depth-8 WB, div=12, mem=26).\n\n");

  report::Table t({"configuration", "Extra Cycle", "Extra Stage", "LAEC"});
  sweep_row(t, "defaults", [](core::SimConfig&) {});
  sweep_row(t, "DL1 1KB", [](core::SimConfig& c) {
    c.dl1_size_bytes = 1 * 1024;
  });
  sweep_row(t, "DL1 128KB", [](core::SimConfig& c) {
    c.dl1_size_bytes = 128 * 1024;
  });
  sweep_row(t, "DL1 direct-mapped", [](core::SimConfig& c) { c.dl1_ways = 1; });
  sweep_row(t, "write buffer depth 1",
            [](core::SimConfig& c) { c.write_buffer_depth = 1; });
  sweep_row(t, "write buffer depth 32",
            [](core::SimConfig& c) { c.write_buffer_depth = 32; });
  sweep_row(t, "div latency 1", [](core::SimConfig& c) { c.div_latency = 1; });
  sweep_row(t, "div latency 34",
            [](core::SimConfig& c) { c.div_latency = 34; });
  sweep_row(t, "memory 80 cycles",
            [](core::SimConfig& c) { c.memory_cycles = 80; });
  sweep_row(t, "memory 8 cycles",
            [](core::SimConfig& c) { c.memory_cycles = 8; });
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "Reading: larger caches / faster memory increase the *relative*\n"
      "weight of load-use stalls, widening the gap LAEC recovers; slow\n"
      "dividers and tiny caches dilute it.\n");
  return 0;
}
