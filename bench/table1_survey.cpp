// Table I (experiment E1): commercial processors and their L1 protection,
// as published — plus, quantitatively from our own codecs, the logic-depth
// argument behind the table: why parity rides along with the L1 access but
// SECDED wants its own cycle/stage.
#include <cstdio>

#include "ecc/xor_tree.hpp"
#include "report/table.hpp"

int main() {
  using namespace laec;

  report::Table t({"Processor", "Frequency", "L1 WT", "L1 WB"});
  t.add_row({"ARM Cortex R5", "160MHz", "Yes, ECC/parity", "Yes, ECC/parity"});
  t.add_row({"ARM Cortex M7", "200MHz", "Yes, ECC", "Yes, ECC"});
  t.add_row({"Freescale PowerQUICC", "250MHz", "Yes, Parity", "Yes, parity"});
  t.add_row({"Cobham LEON 3", "100MHz", "Yes, parity", "No"});
  t.add_row({"Cobham LEON 4", "150MHz", "Yes, parity", "No"});
  std::printf("Table I — commercial processors and their characteristics "
              "(transcribed from the paper):\n\n%s\n",
              t.to_text().c_str());

  // The quantitative argument, from our gate-level estimator (65 nm-class
  // 35 ps/level): SECDED check >> parity check, but still under a cycle —
  // which is exactly why it lands in an extra stage/cycle rather than in
  // a frequency derating (paper §II.B options 1-3).
  report::Table g({"logic", "XOR2", "AND2", "depth (levels)", "delay (ps)",
                   "@150MHz cycle %"});
  const double cycle_ps = 1e6 / 150.0;  // 6666 ps
  auto add = [&](const char* name, const ecc::GateEstimate& e) {
    g.add_row({name, std::to_string(e.xor2_gates), std::to_string(e.and2_gates),
               std::to_string(e.depth_levels),
               report::Table::num(ecc::estimate_delay_ps(e), 0),
               report::Table::num(100.0 * ecc::estimate_delay_ps(e) / cycle_ps,
                                  1) +
                   "%"});
  };
  add("parity-32 check", ecc::estimate_parity(32));
  add("SECDED(39,32) encode", ecc::estimate_encoder(ecc::secded32()));
  add("SECDED(39,32) check+correct", ecc::estimate_checker(ecc::secded32()));
  add("SECDED(72,64) check+correct", ecc::estimate_checker(ecc::secded64()));
  std::printf("Why the table looks like this — codec logic costs:\n\n%s\n",
              g.to_text().c_str());
  return 0;
}
