// Microbenchmark M1: throughput of the real codec implementations plus the
// gate-level latency estimates that justify the pipeline-stage placement.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "ecc/parity.hpp"
#include "ecc/sec_daec.hpp"
#include "ecc/secded.hpp"
#include "ecc/xor_tree.hpp"

namespace {

using namespace laec;

void BM_Secded32Encode(benchmark::State& state) {
  const auto& c = ecc::secded32();
  Rng rng(1);
  u64 v = rng.next_u64() & 0xffffffff;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.encode(v));
    v = (v * 2862933555777941757ull + 3037000493ull) & 0xffffffff;
  }
}
BENCHMARK(BM_Secded32Encode);

void BM_Secded32CheckClean(benchmark::State& state) {
  const auto& c = ecc::secded32();
  const u64 v = 0xdeadbeef;
  const u64 chk = c.encode(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.check(v, chk));
  }
}
BENCHMARK(BM_Secded32CheckClean);

void BM_Secded32CheckCorrecting(benchmark::State& state) {
  const auto& c = ecc::secded32();
  const u64 v = 0xdeadbeef;
  const u64 chk = c.encode(v);
  const u64 bad = v ^ 0x40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.check(bad, chk));
  }
}
BENCHMARK(BM_Secded32CheckCorrecting);

void BM_Secded64Check(benchmark::State& state) {
  const auto& c = ecc::secded64();
  const u64 v = 0x0123456789abcdefull;
  const u64 chk = c.encode(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.check(v, chk));
  }
}
BENCHMARK(BM_Secded64Check);

void BM_SecDaec32CheckClean(benchmark::State& state) {
  const auto& c = ecc::sec_daec32();
  const u64 v = 0xdeadbeef;
  const u64 chk = c.encode(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.check(v, chk));
  }
}
BENCHMARK(BM_SecDaec32CheckClean);

void BM_SecDaec32CheckAdjacentPair(benchmark::State& state) {
  const auto& c = ecc::sec_daec32();
  const u64 v = 0xdeadbeef;
  const u64 chk = c.encode(v);
  const u64 bad = v ^ 0x60;  // bits 5 and 6: adjacent double error
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.check(bad, chk));
  }
}
BENCHMARK(BM_SecDaec32CheckAdjacentPair);

void BM_Parity32(benchmark::State& state) {
  ecc::ParityCode c(32);
  const u64 v = 0x5aa5f00f;
  const u64 p = c.encode(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.check(v, p));
  }
}
BENCHMARK(BM_Parity32);

}  // namespace

int main(int argc, char** argv) {
  using namespace laec;
  std::printf("Gate-level estimates (65nm-class, 35 ps/level):\n");
  const auto par = ecc::estimate_parity(32);
  const auto enc = ecc::estimate_encoder(ecc::secded32());
  const auto chk = ecc::estimate_checker(ecc::secded32());
  std::printf("  parity-32 check:      depth %2u  (%4.0f ps)\n",
              par.depth_levels, ecc::estimate_delay_ps(par));
  std::printf("  SECDED(39,32) encode: depth %2u  (%4.0f ps)\n",
              enc.depth_levels, ecc::estimate_delay_ps(enc));
  std::printf("  SECDED(39,32) check:  depth %2u  (%4.0f ps)\n",
              chk.depth_levels, ecc::estimate_delay_ps(chk));
  const auto daec = ecc::estimate_checker(ecc::sec_daec32());
  std::printf("  SEC-DAEC(39,32) check: depth %2u  (%4.0f ps)\n\n",
              daec.depth_levels, ecc::estimate_delay_ps(daec));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
