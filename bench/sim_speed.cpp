// Microbenchmark M2: host-side simulator throughput (simulated cycles per
// wall second).
//
// Five angles on the hot path:
//  * BM_KernelMatrixLaec        — program mode, clean run (the devirtualized
//                                 fast path end to end);
//  * BM_KernelMatrixLaecInject  — program mode under an adjacent-MBU storm
//                                 (every access may take the cold
//                                 handle-error path: injection, decode,
//                                 scrub, refetch recovery);
//  * BM_KernelMatrixSelfCheck   — program mode plus the architectural
//                                 self-check readback (flush + final-memory
//                                 comparison, the sweep runner's per-point
//                                 shape);
//  * BM_SyntheticTraceLaec      — trace (oracle) mode;
//  * BM_FullSuiteCharacterization — all 16 kernels, calibrated traces.
//
// The committed BENCH_sim_speed.json tracks these numbers per PR
// (baseline vs refactor); CI's perf-smoke job re-runs them on every push.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "ecc/registry.hpp"

namespace {

using namespace laec;

// Codec-level decode throughput: the syndrome-LUT line decode against the
// per-word virtual matrix decode (exactly the two paths CacheConfig::
// use_lut_decode switches between). A quarter of the words carry a random
// error syndrome so both correction and the clean path are exercised.
// Counter is words decoded per second. arg 0 = LUT, 1 = matrix.
void BM_DecodeLineThroughput(benchmark::State& state,
                             const std::string& codec_key) {
  const auto codec = ecc::make_codec(codec_key);
  constexpr std::size_t kWords = 4096;
  std::vector<u32> data(kWords);
  std::vector<u16> check(kWords);
  std::vector<u32> out(kWords);
  Rng rng(0xbe9c4ull);
  const u64 cmask = (u64{1} << codec->check_bits()) - 1;
  for (std::size_t i = 0; i < kWords; ++i) {
    data[i] = static_cast<u32>(rng.next_u64());
    u64 s = 0;
    if (i % 4 == 0) s = rng.next_u64() & cmask;
    check[i] = static_cast<u16>((codec->encode(data[i]) ^ s) & cmask);
  }
  const bool matrix = state.range(0) != 0;
  u64 words = 0;
  for (auto _ : state) {
    if (matrix) {
      for (std::size_t i = 0; i < kWords; ++i) {
        const auto r = codec->decode(data[i], check[i]);
        out[i] = ecc::is_corrected(r.status) ? static_cast<u32>(r.data)
                                             : data[i];
      }
    } else {
      codec->decode_line(data.data(), check.data(), out.data(), kWords);
    }
    words += kWords;
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.counters["words_per_s"] = benchmark::Counter(
      static_cast<double>(words), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_DecodeLineThroughput, secded_39_32, "secded-39-32")
    ->Arg(0)
    ->Arg(1)
    ->ArgName("matrix_decode");
BENCHMARK_CAPTURE(BM_DecodeLineThroughput, dec_bch_45_32, "dec-bch-45-32")
    ->Arg(0)
    ->Arg(1)
    ->ArgName("matrix_decode");

void BM_KernelMatrixLaec(benchmark::State& state) {
  const auto built = workloads::kernel_by_name("matrix").build();
  u64 cycles = 0;
  for (auto _ : state) {
    auto cfg = bench::config_for(cpu::EccPolicy::kLaec);
    const auto s = core::run_program(cfg, built.program);
    cycles += s.cycles;
    benchmark::DoNotOptimize(s.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelMatrixLaec)->Unit(benchmark::kMillisecond);

// Injection-heavy configuration: the slow path is what is being measured.
// Rates are far above any physical storm so that a meaningful fraction of
// accesses take the cold path (injection RNG, full decode, scrubbing, and
// the occasional invalidate-and-refetch recovery).
void BM_KernelMatrixLaecInject(benchmark::State& state) {
  const auto built = workloads::kernel_by_name("matrix").build();
  u64 cycles = 0;
  u64 ecc_events = 0;
  for (auto _ : state) {
    auto cfg = bench::config_for(cpu::EccPolicy::kLaec);
    cfg.faults.emplace();
    cfg.faults->single_flip_prob = 0.01;
    cfg.faults->double_flip_prob = 0.005;
    cfg.faults->adjacent_doubles = true;
    const auto s = core::run_program(cfg, built.program);
    cycles += s.cycles;
    ecc_events += s.ecc_corrected + s.ecc_detected_uncorrectable;
    benchmark::DoNotOptimize(s.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["ecc_events_per_iter"] = benchmark::Counter(
      static_cast<double>(ecc_events), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_KernelMatrixLaecInject)->Unit(benchmark::kMillisecond);

// Same storm with the syndrome-LUT decode layer disabled
// (SimConfig::lut_decode=false, the --no-lut CLI path): every cold decode
// pays the full parity-matrix reduction instead of one table load. The
// LUT/matrix pair isolates the decode cost from the rest of the cold path.
void BM_KernelMatrixLaecInjectNoLut(benchmark::State& state) {
  const auto built = workloads::kernel_by_name("matrix").build();
  u64 cycles = 0;
  for (auto _ : state) {
    auto cfg = bench::config_for(cpu::EccPolicy::kLaec);
    cfg.lut_decode = false;
    cfg.faults.emplace();
    cfg.faults->single_flip_prob = 0.01;
    cfg.faults->double_flip_prob = 0.005;
    cfg.faults->adjacent_doubles = true;
    const auto s = core::run_program(cfg, built.program);
    cycles += s.cycles;
    benchmark::DoNotOptimize(s.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelMatrixLaecInjectNoLut)->Unit(benchmark::kMillisecond);

// Decode-bound pair under the widest registered code (DEC BCH (45,32),
// r=13): the matrix decode walks 13 parity reductions plus a double-error
// search, the LUT path is one 8K-entry table load. arg 0 = LUT, 1 = matrix.
void BM_KernelMatrixBchInject(benchmark::State& state) {
  const auto built = workloads::kernel_by_name("matrix").build();
  u64 cycles = 0;
  for (auto _ : state) {
    auto cfg = bench::config_for(cpu::EccPolicy::kLaec);
    cfg.set_scheme("dec-bch-45-32");
    cfg.lut_decode = state.range(0) == 0;
    cfg.faults.emplace();
    cfg.faults->single_flip_prob = 0.01;
    cfg.faults->double_flip_prob = 0.005;
    cfg.faults->adjacent_doubles = true;
    const auto s = core::run_program(cfg, built.program);
    cycles += s.cycles;
    benchmark::DoNotOptimize(s.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelMatrixBchInject)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("matrix_decode")
    ->Unit(benchmark::kMillisecond);

// The sweep runner's per-point shape: simulate, then verify every
// architecturally-final word against the kernel's reference model (which
// flushes the whole hierarchy into memory first).
void BM_KernelMatrixSelfCheck(benchmark::State& state) {
  const auto built = workloads::kernel_by_name("matrix").build();
  u64 cycles = 0;
  for (auto _ : state) {
    auto cfg = bench::config_for(cpu::EccPolicy::kLaec);
    auto run = core::run_program_keep_system(cfg, built.program);
    bool ok = true;
    for (const auto& [addr, expect] : built.expected) {
      ok = ok && run.system->read_word_final(addr) == expect;
    }
    if (!ok) state.SkipWithError("self-check failed");
    cycles += run.stats.cycles;
    benchmark::DoNotOptimize(ok);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelMatrixSelfCheck)->Unit(benchmark::kMillisecond);

void BM_SyntheticTraceLaec(benchmark::State& state) {
  const auto& k = workloads::kernel_by_name("a2time");
  u64 cycles = 0;
  for (auto _ : state) {
    const auto s = bench::run_calibrated(k, cpu::EccPolicy::kLaec, 50'000);
    cycles += s.cycles;
    benchmark::DoNotOptimize(s.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SyntheticTraceLaec)->Unit(benchmark::kMillisecond);

void BM_FullSuiteCharacterization(benchmark::State& state) {
  u64 cycles = 0;
  for (auto _ : state) {
    u64 total = 0;
    for (const auto& k : workloads::eembc_kernels()) {
      total += bench::run_calibrated(k, cpu::EccPolicy::kNoEcc, 10'000).cycles;
    }
    cycles += total;
    benchmark::DoNotOptimize(total);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullSuiteCharacterization)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
