// Microbenchmark M2: host-side simulator throughput (simulated cycles per
// wall second) for program mode and trace mode.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace laec;

void BM_KernelMatrixLaec(benchmark::State& state) {
  const auto built = workloads::kernel_by_name("matrix").build();
  u64 cycles = 0;
  for (auto _ : state) {
    auto cfg = bench::config_for(cpu::EccPolicy::kLaec);
    const auto s = core::run_program(cfg, built.program);
    cycles += s.cycles;
    benchmark::DoNotOptimize(s.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelMatrixLaec)->Unit(benchmark::kMillisecond);

void BM_SyntheticTraceLaec(benchmark::State& state) {
  const auto& k = workloads::kernel_by_name("a2time");
  u64 cycles = 0;
  for (auto _ : state) {
    const auto s = bench::run_calibrated(k, cpu::EccPolicy::kLaec, 50'000);
    cycles += s.cycles;
    benchmark::DoNotOptimize(s.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SyntheticTraceLaec)->Unit(benchmark::kMillisecond);

void BM_FullSuiteCharacterization(benchmark::State& state) {
  for (auto _ : state) {
    u64 total = 0;
    for (const auto& k : workloads::eembc_kernels()) {
      total += bench::run_calibrated(k, cpu::EccPolicy::kNoEcc, 10'000).cycles;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_FullSuiteCharacterization)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
