// Microbenchmark M2: host-side simulator throughput (simulated cycles per
// wall second).
//
// Five angles on the hot path:
//  * BM_KernelMatrixLaec        — program mode, clean run (the devirtualized
//                                 fast path end to end);
//  * BM_KernelMatrixLaecInject  — program mode under an adjacent-MBU storm
//                                 (every access may take the cold
//                                 handle-error path: injection, decode,
//                                 scrub, refetch recovery);
//  * BM_KernelMatrixSelfCheck   — program mode plus the architectural
//                                 self-check readback (flush + final-memory
//                                 comparison, the sweep runner's per-point
//                                 shape);
//  * BM_SyntheticTraceLaec      — trace (oracle) mode;
//  * BM_FullSuiteCharacterization — all 16 kernels, calibrated traces.
//
// The committed BENCH_sim_speed.json tracks these numbers per PR
// (baseline vs refactor); CI's perf-smoke job re-runs them on every push.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace laec;

void BM_KernelMatrixLaec(benchmark::State& state) {
  const auto built = workloads::kernel_by_name("matrix").build();
  u64 cycles = 0;
  for (auto _ : state) {
    auto cfg = bench::config_for(cpu::EccPolicy::kLaec);
    const auto s = core::run_program(cfg, built.program);
    cycles += s.cycles;
    benchmark::DoNotOptimize(s.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelMatrixLaec)->Unit(benchmark::kMillisecond);

// Injection-heavy configuration: the slow path is what is being measured.
// Rates are far above any physical storm so that a meaningful fraction of
// accesses take the cold path (injection RNG, full decode, scrubbing, and
// the occasional invalidate-and-refetch recovery).
void BM_KernelMatrixLaecInject(benchmark::State& state) {
  const auto built = workloads::kernel_by_name("matrix").build();
  u64 cycles = 0;
  u64 ecc_events = 0;
  for (auto _ : state) {
    auto cfg = bench::config_for(cpu::EccPolicy::kLaec);
    cfg.faults.emplace();
    cfg.faults->single_flip_prob = 0.01;
    cfg.faults->double_flip_prob = 0.005;
    cfg.faults->adjacent_doubles = true;
    const auto s = core::run_program(cfg, built.program);
    cycles += s.cycles;
    ecc_events += s.ecc_corrected + s.ecc_detected_uncorrectable;
    benchmark::DoNotOptimize(s.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["ecc_events_per_iter"] = benchmark::Counter(
      static_cast<double>(ecc_events), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_KernelMatrixLaecInject)->Unit(benchmark::kMillisecond);

// The sweep runner's per-point shape: simulate, then verify every
// architecturally-final word against the kernel's reference model (which
// flushes the whole hierarchy into memory first).
void BM_KernelMatrixSelfCheck(benchmark::State& state) {
  const auto built = workloads::kernel_by_name("matrix").build();
  u64 cycles = 0;
  for (auto _ : state) {
    auto cfg = bench::config_for(cpu::EccPolicy::kLaec);
    auto run = core::run_program_keep_system(cfg, built.program);
    bool ok = true;
    for (const auto& [addr, expect] : built.expected) {
      ok = ok && run.system->read_word_final(addr) == expect;
    }
    if (!ok) state.SkipWithError("self-check failed");
    cycles += run.stats.cycles;
    benchmark::DoNotOptimize(ok);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelMatrixSelfCheck)->Unit(benchmark::kMillisecond);

void BM_SyntheticTraceLaec(benchmark::State& state) {
  const auto& k = workloads::kernel_by_name("a2time");
  u64 cycles = 0;
  for (auto _ : state) {
    const auto s = bench::run_calibrated(k, cpu::EccPolicy::kLaec, 50'000);
    cycles += s.cycles;
    benchmark::DoNotOptimize(s.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SyntheticTraceLaec)->Unit(benchmark::kMillisecond);

void BM_FullSuiteCharacterization(benchmark::State& state) {
  u64 cycles = 0;
  for (auto _ : state) {
    u64 total = 0;
    for (const auto& k : workloads::eembc_kernels()) {
      total += bench::run_calibrated(k, cpu::EccPolicy::kNoEcc, 10'000).cycles;
    }
    cycles += total;
    benchmark::DoNotOptimize(total);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullSuiteCharacterization)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
