// Campaign-throughput benchmark: the two-pass accelerators vs
// simulate-everything, at both operating points that matter.
//
// Scenario 1 ("pruning point", --accel, default 1e15): golden-run pruning
// vs the full-simulation floor, fast-forward off in both passes so the
// number isolates pruning. At the 28nm raw rate this is the regime where
// most storms land entirely on dead exposure windows (roughly 90% of
// trials classified without simulation).
//
// Scenario 2 ("saturated point", --accel-saturated, default 1e16): the
// windows saturate and pruning classifies almost nothing, so snapshot
// fast-forward carries the load. Three passes — the full-simulation floor
// (prune and ff both off), prune-only (ff off), and the default
// accelerator stack (prune + ff) — yield ff_speedup (ff's marginal win
// over prune-only) and total_speedup (the whole stack vs the floor).
//
// Every pass of a scenario must produce byte-identical CSV rows first (the
// equivalence contract), so the numbers measure acceleration, not
// divergence. CI runs this with the --min-* floors as a perf-smoke
// regression gate; measured numbers are tracked in
// BENCH_campaign_speed.json.
//
// Flags: --threads=N (default 1), --trials=N per cell (default 48),
// --accel=A (scenario 1 point, default 1e15), --accel-saturated=A
// (scenario 2 point, default 1e16), --min-speedup=S (scenario 1 floor),
// --min-ff-speedup=S / --min-total-speedup=S (scenario 2 floors; all
// floors default 0 = report only, exit 1 below), --json.
//
// --trace=FILE re-runs the scenario-2 full stack with the flight recorder
// armed (and a per-round checkpoint write, so checkpoint spans appear),
// asserts the rows stay byte-identical to the untraced pass, writes the
// Chrome trace document, and reports the tracing overhead. The untraced
// passes above ARE the instrumented-but-off baseline — the perf-smoke
// floors gate the disabled-path cost.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/trace.hpp"
#include "reliability/campaign.hpp"
#include "report/sink.hpp"
#include "service/checkpoint.hpp"

namespace {

using namespace laec;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Pass {
  reliability::CampaignSummary sum;
  double secs = 0.0;
  std::string csv;
};

}  // namespace

int main(int argc, char** argv) {
  runner::SweepOptions popts;
  popts.threads = 1;
  u64 trials = 48;
  double accel = 1e15;
  double accel_saturated = 1e16;
  double min_speedup = 0.0;
  double min_ff_speedup = 0.0;
  double min_total_speedup = 0.0;
  std::string trace_path;
  bool json = false;
  if (!bench::parse_bench_args(
          argc, argv, popts,
          "usage: campaign_speed [--threads=N] [--trials=N] [--accel=A]\n"
          "                      [--accel-saturated=A] [--min-speedup=S]\n"
          "                      [--min-ff-speedup=S] "
          "[--min-total-speedup=S]\n"
          "                      [--trace=FILE] [--json]\n",
          [&](const std::string& arg) {
            if (arg.rfind("--trials=", 0) == 0) {
              trials = std::stoull(arg.substr(9));
            } else if (arg.rfind("--accel-saturated=", 0) == 0) {
              accel_saturated = std::stod(arg.substr(18));
            } else if (arg.rfind("--accel=", 0) == 0) {
              accel = std::stod(arg.substr(8));
            } else if (arg.rfind("--min-speedup=", 0) == 0) {
              min_speedup = std::stod(arg.substr(14));
            } else if (arg.rfind("--min-ff-speedup=", 0) == 0) {
              min_ff_speedup = std::stod(arg.substr(17));
            } else if (arg.rfind("--min-total-speedup=", 0) == 0) {
              min_total_speedup = std::stod(arg.substr(20));
            } else if (arg.rfind("--trace=", 0) == 0) {
              trace_path = arg.substr(8);
            } else if (arg == "--json") {
              json = true;
            } else {
              return false;
            }
            return true;
          })) {
    return 2;
  }

  // Scenario 1 keeps the PR-8 grid so its speedup series stays comparable.
  // Scenario 2 swaps rspeed for iirflt: rspeed's windows stay ~96% dead
  // even at 1e16 (pruning still wins), while puwmod and iirflt saturate —
  // ~50-80% of their trials carry live storms, which is the regime the
  // fast-forward path exists for.
  reliability::CampaignGrid grid1;
  grid1.workloads({"puwmod", "rspeed"})
      .schemes({"laec", "sec-daec-39-32"})
      .rates({*reliability::tech_preset("28nm")});
  reliability::CampaignGrid grid2;
  grid2.workloads({"puwmod", "iirflt"})
      .schemes({"laec", "sec-daec-39-32"})
      .rates({*reliability::tech_preset("28nm")});

  reliability::CampaignSpec base;
  base.trials = static_cast<unsigned>(trials);
  base.base.dl1_size_bytes = 2 * 1024;

  const auto run = [&](const reliability::CampaignGrid& grid, double a,
                       bool prune, bool ff) {
    reliability::CampaignSpec s = base;
    s.accel = a;
    s.prune = prune;
    s.fast_forward = ff;
    std::ostringstream out;
    report::CsvWriter sink(out);
    reliability::CampaignOptions opts;
    opts.threads = popts.threads;
    opts.sink = &sink;
    const auto t0 = std::chrono::steady_clock::now();
    Pass p;
    p.sum = run_campaign(grid, s, opts);
    p.secs = seconds_since(t0);
    p.csv = out.str();
    return p;
  };

  // Warm-up golden runs / code paths once so the timed passes are fair.
  {
    reliability::CampaignSpec warm = base;
    warm.trials = 1;
    (void)run_campaign(grid1, warm);
    (void)run_campaign(grid2, warm);
  }

  bool rows_identical = true;

  // Scenario 1: pruning point, fast-forward off in both passes.
  const Pass p1_full = run(grid1, accel, /*prune=*/false, /*ff=*/false);
  const Pass p1_pruned = run(grid1, accel, /*prune=*/true, /*ff=*/false);
  if (p1_pruned.csv != p1_full.csv) {
    std::fprintf(
        stderr,
        "campaign_speed: FAIL — pruned and full CSV rows differ (S1)\n");
    rows_identical = false;
  }

  // Scenario 2: saturated point, floor / prune-only / full stack.
  const Pass p2_floor =
      run(grid2, accel_saturated, /*prune=*/false, /*ff=*/false);
  const Pass p2_noff = run(grid2, accel_saturated, /*prune=*/true, /*ff=*/false);
  const Pass p2_ff = run(grid2, accel_saturated, /*prune=*/true, /*ff=*/true);
  if (p2_ff.csv != p2_noff.csv || p2_ff.csv != p2_floor.csv) {
    std::fprintf(stderr,
                 "campaign_speed: FAIL — ff / no-ff / floor CSV rows "
                 "differ (S2)\n");
    rows_identical = false;
  }
  if (!rows_identical) return 1;

  // Traced pass: scenario-2 full stack again with the flight recorder on
  // and a per-round checkpoint write. The contract is twofold: the rows
  // must stay byte-identical to the untraced pass, and the wall-clock
  // delta IS the tracing overhead (reported, not gated — the gated floors
  // above already price the instrumented-but-off path).
  if (!trace_path.empty()) {
    obs::Tracer::global().enable();
    reliability::CampaignSpec s = base;
    s.accel = accel_saturated;
    s.prune = true;
    s.fast_forward = true;
    std::ostringstream out;
    report::CsvWriter sink(out);
    reliability::CampaignOptions opts;
    opts.threads = popts.threads;
    opts.sink = &sink;
    const std::string ckpt = trace_path + ".ckpt";
    opts.on_round = [&](const std::vector<reliability::CellProgress>& p) {
      service::save_checkpoint(ckpt, /*identity=*/0x1aec, p);
    };
    const auto t0 = std::chrono::steady_clock::now();
    (void)run_campaign(grid2, s, opts);
    const double traced_secs = seconds_since(t0);
    std::remove(ckpt.c_str());
    if (out.str() != p2_ff.csv) {
      std::fprintf(stderr,
                   "campaign_speed: FAIL — traced rows differ from "
                   "untraced\n");
      return 1;
    }
    const auto& tracer = obs::Tracer::global();
    const u64 recorded = tracer.total_recorded();
    const u64 dropped = tracer.dropped();
    if (!obs::write_trace_file(trace_path)) {
      std::fprintf(stderr, "campaign_speed: cannot write trace file %s\n",
                   trace_path.c_str());
      return 1;
    }
    obs::Tracer::global().disable();
    std::fprintf(stderr,
                 "campaign_speed: traced pass %.3f s vs %.3f s untraced "
                 "(%+.1f%%), %llu events (%llu dropped), rows identical — "
                 "wrote %s\n",
                 traced_secs, p2_ff.secs,
                 p2_ff.secs > 0.0
                     ? (traced_secs / p2_ff.secs - 1.0) * 100.0
                     : 0.0,
                 static_cast<unsigned long long>(recorded),
                 static_cast<unsigned long long>(dropped),
                 trace_path.c_str());
  }

  const auto totals = [](const reliability::CampaignSummary& s) {
    u64 trials_total = 0, pruned = 0, ff = 0;
    for (const auto& c : s.cells) {
      trials_total += c.trials;
      pruned += c.pruned;
      ff += c.fast_forwarded;
    }
    return std::tuple{trials_total, pruned, ff};
  };
  const auto frac = [](u64 num, u64 den) {
    return den > 0 ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
  };
  const auto ratio = [](double num, double den) {
    return den > 0.0 ? num / den : 0.0;
  };

  const auto [s1_total, s1_pruned, s1_ff] = totals(p1_pruned.sum);
  const double s1_speedup = ratio(p1_full.secs, p1_pruned.secs);

  const auto [s2_total, s2_pruned, s2_ffwd] = totals(p2_ff.sum);
  const double ff_speedup = ratio(p2_noff.secs, p2_ff.secs);
  const double total_speedup = ratio(p2_floor.secs, p2_ff.secs);

  if (json) {
    std::printf("{\n");
    std::printf("  \"threads\": %u,\n", popts.threads);
    std::printf("  \"trials_per_cell\": %llu,\n",
                static_cast<unsigned long long>(trials));
    std::printf("  \"rows_identical\": true,\n");
    std::printf("  \"pruning_point\": {\n");
    std::printf("    \"accel\": %g,\n", accel);
    std::printf("    \"trials_total\": %llu,\n",
                static_cast<unsigned long long>(s1_total));
    std::printf("    \"pruned_fraction\": %.4f,\n", frac(s1_pruned, s1_total));
    std::printf("    \"pruned_trials_per_s\": %.1f,\n",
                frac(s1_total, 1) / p1_pruned.secs);
    std::printf("    \"full_trials_per_s\": %.1f,\n",
                frac(s1_total, 1) / p1_full.secs);
    std::printf("    \"speedup\": %.2f\n", s1_speedup);
    std::printf("  },\n");
    std::printf("  \"saturated_point\": {\n");
    std::printf("    \"accel\": %g,\n", accel_saturated);
    std::printf("    \"trials_total\": %llu,\n",
                static_cast<unsigned long long>(s2_total));
    std::printf("    \"pruned_fraction\": %.4f,\n", frac(s2_pruned, s2_total));
    std::printf("    \"fast_forwarded_fraction\": %.4f,\n",
                frac(s2_ffwd, s2_total));
    std::printf("    \"floor_trials_per_s\": %.1f,\n",
                frac(s2_total, 1) / p2_floor.secs);
    std::printf("    \"no_ff_trials_per_s\": %.1f,\n",
                frac(s2_total, 1) / p2_noff.secs);
    std::printf("    \"ff_trials_per_s\": %.1f,\n",
                frac(s2_total, 1) / p2_ff.secs);
    std::printf("    \"ff_speedup\": %.2f,\n", ff_speedup);
    std::printf("    \"total_speedup\": %.2f\n", total_speedup);
    std::printf("  },\n");
    std::printf("  \"cells\": [\n");
    for (std::size_t i = 0; i < p2_ff.sum.cells.size(); ++i) {
      const auto& c = p2_ff.sum.cells[i];
      std::printf("    {\"workload\": \"%s\", \"ecc\": \"%s\", "
                  "\"pruned\": %llu, \"fast_forwarded\": %llu, "
                  "\"trials\": %llu}%s\n",
                  c.cell.workload.c_str(), c.cell.scheme.c_str(),
                  static_cast<unsigned long long>(c.pruned),
                  static_cast<unsigned long long>(c.fast_forwarded),
                  static_cast<unsigned long long>(c.trials),
                  i + 1 < p2_ff.sum.cells.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("campaign_speed: %llu trials/cell-pass, 28nm, %u thread(s)\n",
                static_cast<unsigned long long>(s1_total), popts.threads);
    std::printf("scenario 1 — pruning point (accel=%g):\n", accel);
    std::printf("  pruned:  %8.1f trials/s (%.3f s, %.0f%% pruned)\n",
                frac(s1_total, 1) / p1_pruned.secs, p1_pruned.secs,
                frac(s1_pruned, s1_total) * 100.0);
    std::printf("  full:    %8.1f trials/s (%.3f s)\n",
                frac(s1_total, 1) / p1_full.secs, p1_full.secs);
    std::printf("  speedup: %.2fx, rows identical\n", s1_speedup);
    std::printf("scenario 2 — saturated point (accel=%g):\n", accel_saturated);
    for (const auto& c : p2_ff.sum.cells) {
      std::printf("  %-8s %-18s pruned %llu, fast-forwarded %llu / %llu\n",
                  c.cell.workload.c_str(), c.cell.scheme.c_str(),
                  static_cast<unsigned long long>(c.pruned),
                  static_cast<unsigned long long>(c.fast_forwarded),
                  static_cast<unsigned long long>(c.trials));
    }
    std::printf("  stack:   %8.1f trials/s (%.3f s, prune + ff)\n",
                frac(s2_total, 1) / p2_ff.secs, p2_ff.secs);
    std::printf("  no-ff:   %8.1f trials/s (%.3f s, prune only)\n",
                frac(s2_total, 1) / p2_noff.secs, p2_noff.secs);
    std::printf("  floor:   %8.1f trials/s (%.3f s, simulate everything)\n",
                frac(s2_total, 1) / p2_floor.secs, p2_floor.secs);
    std::printf("  ff speedup: %.2fx, total speedup: %.2fx, rows identical\n",
                ff_speedup, total_speedup);
  }

  bool fail = false;
  if (min_speedup > 0.0 && s1_speedup < min_speedup) {
    std::fprintf(
        stderr,
        "campaign_speed: FAIL — pruning speedup %.2fx below floor %.2fx\n",
        s1_speedup, min_speedup);
    fail = true;
  }
  if (min_ff_speedup > 0.0 && ff_speedup < min_ff_speedup) {
    std::fprintf(stderr,
                 "campaign_speed: FAIL — ff speedup %.2fx below floor %.2fx\n",
                 ff_speedup, min_ff_speedup);
    fail = true;
  }
  if (min_total_speedup > 0.0 && total_speedup < min_total_speedup) {
    std::fprintf(
        stderr,
        "campaign_speed: FAIL — total speedup %.2fx below floor %.2fx\n",
        total_speedup, min_total_speedup);
    fail = true;
  }
  return fail ? 1 : 0;
}
