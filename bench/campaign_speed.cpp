// Campaign-throughput benchmark: golden-run pruning vs simulate-everything.
//
// Runs the same campaign grid twice — spec.prune on and off — at the
// default 28nm tech preset, and reports trials/s for both passes, the
// pruned-trial fraction per cell, and the end-to-end speedup. The two
// passes' CSV rows are asserted byte-identical first (the equivalence
// contract), so the number measures acceleration, not divergence.
//
// The operating point matters: pruning pays off when the accelerated
// per-window event rate leaves most storms entirely on dead exposure
// windows. At the 28nm raw rate that is the accel ~1e15 regime (roughly
// 90% of trials classified without simulation); the CLI default 1e16
// saturates the windows and prunes nothing. CI runs this with
// --min-speedup as a perf-smoke regression gate; the measured numbers are
// tracked in BENCH_campaign_speed.json.
//
// Flags: --threads=N (default 1), --trials=N per cell (default 48),
// --accel=A (default 1e15), --min-speedup=S (exit 1 below it, default 0 =
// report only), --json (machine-readable summary to stdout).
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "reliability/campaign.hpp"
#include "report/sink.hpp"

namespace {

using namespace laec;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  runner::SweepOptions popts;
  popts.threads = 1;
  u64 trials = 48;
  double accel = 1e15;
  double min_speedup = 0.0;
  bool json = false;
  if (!bench::parse_bench_args(
          argc, argv, popts,
          "usage: campaign_speed [--threads=N] [--trials=N] [--accel=A]\n"
          "                      [--min-speedup=S] [--json]\n",
          [&](const std::string& arg) {
            if (arg.rfind("--trials=", 0) == 0) {
              trials = std::stoull(arg.substr(9));
            } else if (arg.rfind("--accel=", 0) == 0) {
              accel = std::stod(arg.substr(8));
            } else if (arg.rfind("--min-speedup=", 0) == 0) {
              min_speedup = std::stod(arg.substr(14));
            } else if (arg == "--json") {
              json = true;
            } else {
              return false;
            }
            return true;
          })) {
    return 2;
  }

  reliability::CampaignGrid grid;
  grid.workloads({"puwmod", "rspeed"})
      .schemes({"laec", "sec-daec-39-32"})
      .rates({*reliability::tech_preset("28nm")});

  reliability::CampaignSpec spec;
  spec.accel = accel;
  spec.trials = static_cast<unsigned>(trials);
  spec.base.dl1_size_bytes = 2 * 1024;

  const auto run = [&](bool prune, std::string* csv) {
    reliability::CampaignSpec s = spec;
    s.prune = prune;
    std::ostringstream out;
    report::CsvWriter sink(out);
    reliability::CampaignOptions opts;
    opts.threads = popts.threads;
    opts.sink = &sink;
    const auto t0 = std::chrono::steady_clock::now();
    const auto sum = run_campaign(grid, s, opts);
    const double secs = seconds_since(t0);
    *csv = out.str();
    return std::pair{sum, secs};
  };

  // Warm-up golden runs / code paths once so both timed passes are fair.
  {
    reliability::CampaignSpec warm = spec;
    warm.trials = 1;
    (void)run_campaign(grid, warm);
  }

  std::string csv_pruned, csv_full;
  const auto [sum_p, secs_p] = run(true, &csv_pruned);
  const auto [sum_f, secs_f] = run(false, &csv_full);

  if (csv_pruned != csv_full) {
    std::fprintf(stderr,
                 "campaign_speed: FAIL — pruned and full CSV rows differ\n");
    return 1;
  }

  u64 total = 0, pruned = 0;
  for (const auto& c : sum_p.cells) {
    total += c.trials;
    pruned += c.pruned;
  }
  const double tps_pruned = static_cast<double>(total) / secs_p;
  const double tps_full = static_cast<double>(total) / secs_f;
  const double speedup = secs_p > 0.0 ? secs_f / secs_p : 0.0;
  const double frac =
      total > 0 ? static_cast<double>(pruned) / static_cast<double>(total) : 0.0;

  if (json) {
    std::printf("{\n");
    std::printf("  \"threads\": %u,\n", popts.threads);
    std::printf("  \"trials_per_cell\": %llu,\n",
                static_cast<unsigned long long>(trials));
    std::printf("  \"accel\": %g,\n", accel);
    std::printf("  \"rows_identical\": true,\n");
    std::printf("  \"trials_total\": %llu,\n",
                static_cast<unsigned long long>(total));
    std::printf("  \"pruned_fraction\": %.4f,\n", frac);
    std::printf("  \"pruned_trials_per_s\": %.1f,\n", tps_pruned);
    std::printf("  \"full_trials_per_s\": %.1f,\n", tps_full);
    std::printf("  \"speedup\": %.2f,\n", speedup);
    std::printf("  \"cells\": [\n");
    for (std::size_t i = 0; i < sum_p.cells.size(); ++i) {
      const auto& c = sum_p.cells[i];
      std::printf("    {\"workload\": \"%s\", \"ecc\": \"%s\", "
                  "\"pruned\": %llu, \"trials\": %llu}%s\n",
                  c.cell.workload.c_str(), c.cell.scheme.c_str(),
                  static_cast<unsigned long long>(c.pruned),
                  static_cast<unsigned long long>(c.trials),
                  i + 1 < sum_p.cells.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("campaign_speed: %llu trials, 28nm, accel=%g, %u thread(s)\n",
                static_cast<unsigned long long>(total), accel, popts.threads);
    for (const auto& c : sum_p.cells) {
      std::printf("  %-8s %-18s pruned %llu/%llu\n", c.cell.workload.c_str(),
                  c.cell.scheme.c_str(),
                  static_cast<unsigned long long>(c.pruned),
                  static_cast<unsigned long long>(c.trials));
    }
    std::printf("  pruned:  %8.1f trials/s (%.3f s)\n", tps_pruned, secs_p);
    std::printf("  full:    %8.1f trials/s (%.3f s)\n", tps_full, secs_f);
    std::printf("  speedup: %.2fx (pruned fraction %.0f%%), rows identical\n",
                speedup, frac * 100.0);
  }

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "campaign_speed: FAIL — speedup %.2fx below floor %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
