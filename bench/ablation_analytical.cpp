// Ablation A2: closed-form model vs full simulation. The analytical model
// (src/model) predicts every scheme's overhead from the Table II numbers
// alone; here it is checked against the simulator per benchmark.
#include <cstdio>

#include "bench_util.hpp"
#include "model/analytical.hpp"
#include "report/table.hpp"

int main() {
  using namespace laec;
  using cpu::EccPolicy;

  report::Table t({"benchmark", "ES sim", "ES model", "EC sim", "EC model",
                   "LAEC sim", "LAEC model"});
  double mae_es = 0, mae_ec = 0, mae_la = 0;
  for (const auto& k : workloads::eembc_kernels()) {
    const auto base = bench::run_calibrated(k, EccPolicy::kNoEcc);
    const double es =
        bench::ratio(bench::run_calibrated(k, EccPolicy::kExtraStage).cycles,
                     base.cycles) -
        1.0;
    const double ec =
        bench::ratio(bench::run_calibrated(k, EccPolicy::kExtraCycle).cycles,
                     base.cycles) -
        1.0;
    const double la =
        bench::ratio(bench::run_calibrated(k, EccPolicy::kLaec).cycles,
                     base.cycles) -
        1.0;

    model::WorkloadParams w;
    w.load_frac = k.paper.load_pct / 100.0;
    w.hit_frac = k.paper.hit_pct / 100.0;
    w.dep_frac = k.paper.dep_pct / 100.0;
    w.addr_dep_frac = k.addr_dep_frac;
    w.base_cpi = base.cpi;
    const auto pred = model::predict(w);

    t.add_row({k.name, report::Table::pct(es),
               report::Table::pct(pred.extra_stage), report::Table::pct(ec),
               report::Table::pct(pred.extra_cycle), report::Table::pct(la),
               report::Table::pct(pred.laec)});
    mae_es += std::abs(es - pred.extra_stage);
    mae_ec += std::abs(ec - pred.extra_cycle);
    mae_la += std::abs(la - pred.laec);
  }
  std::printf(
      "Analytical model vs simulation (calibrated traces, overhead vs\n"
      "no-ECC):\n\n%s\nMean absolute error: ES %.2fpp  EC %.2fpp  "
      "LAEC %.2fpp\n",
      t.to_text().c_str(), 100.0 * mae_es / 16, 100.0 * mae_ec / 16,
      100.0 * mae_la / 16);
  return 0;
}
