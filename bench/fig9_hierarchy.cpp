// Headline extension (fig9): per-cache ECC deployment as a swept axis —
// SEC-DAEC at the SHARED L2 under adjacent double-bit upsets striking the
// L2 array.
//
// The paper deploys its codes in the DL1 only; the hierarchy axis asks
// what the right code is for the other arrays. The L2 is where dirty DL1
// writebacks live as the ONLY copy of completed stores, so an L2 word that
// SECDED can merely *detect* as corrupted is a DUE data-loss event: the
// recovery refetch restores the stale memory image and the program's
// stores are gone. SEC-DAEC corrects the same adjacent pairs in place.
//
// Per kernel, ONE batched sweep runs four points:
//
//   laec                       clean     (timing denominator)
//   laec+l2:sec-daec-39-32     clean     (must match: L2 codec choice is
//                                         timing-neutral for the DL1 figure)
//   laec                       L2 storm  (SECDED L2: DUEs, data loss)
//   laec+l2:sec-daec-39-32     L2 storm  (SEC-DAEC L2: corrected in place)
//
// A deliberately small DL1 (1 KB) keeps dirty evictions and refills
// flowing through the L2. The per-level counters land in the sweep CSV
// (codec_l2, l2_corrected_adjacent, l2_due, l2_refetches, l2_data_loss).
//
// Pass --threads=N to pin the pool size, --rate=P to change the per-access
// adjacent-double probability (default 1e-3), --csv to stream raw rows.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "report/sink.hpp"
#include "report/table.hpp"
#include "runner/sweep_runner.hpp"

namespace {

using namespace laec;

const std::string kSecdedL2 = "laec";  // canonical L2 is secded-39-32
const std::string kDaecL2 = "laec+l2:sec-daec-39-32";

core::SimConfig small_dl1_config() {
  core::SimConfig cfg;
  cfg.dl1_size_bytes = 1024;  // stress the writeback path through the L2
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  runner::SweepOptions opts;
  double rate = 1e-3;
  bool csv = false;
  if (!bench::parse_bench_args(
          argc, argv, opts,
          "usage: fig9_hierarchy [--threads=N] [--rate=P] [--csv]\n",
          [&](const std::string& arg) {
            if (arg.rfind("--rate=", 0) == 0) {
              rate = std::stod(arg.substr(7));
              return true;
            }
            if (arg == "--csv") return csv = true;
            return false;
          })) {
    return 2;
  }
  report::CsvWriter csv_sink(std::cout);
  if (csv) opts.sink = &csv_sink;
  std::FILE* txt = csv ? stderr : stdout;

  std::fprintf(
      txt,
      "fig9 — hierarchy deployment axis: SEC-DAEC vs SECDED at the shared\n"
      "L2 under adjacent double-bit upsets striking the L2 array\n"
      "(p=%g per L2 word access; DL1 1 KB to stress the writeback path).\n\n",
      rate);

  core::SimConfig clean = small_dl1_config();
  core::SimConfig stormy = small_dl1_config();
  ecc::InjectorConfig inj;
  inj.double_flip_prob = rate;
  inj.adjacent_doubles = true;
  stormy.faults = inj;
  stormy.inject_target = core::InjectTarget::kL2;

  const std::vector<std::string> schemes = {kSecdedL2, kDaecL2};
  runner::SweepGrid clean_grid;
  clean_grid.all_workloads().schemes(schemes).base_config(clean).mode(
      runner::RunMode::kProgram);
  runner::SweepGrid storm_grid;
  storm_grid.all_workloads().schemes(schemes).base_config(stormy).mode(
      runner::RunMode::kProgram);

  auto points = clean_grid.points();
  const std::size_t split = bench::append_points(points, storm_grid);
  const auto summary = runner::run_sweep(points, opts);
  const auto& rs = summary.results;

  report::Table t({"benchmark", "cycles =", "L2 DUE", "data loss", "SECDED",
                   "DAEC fixed", "data loss", "SEC-DAEC"});
  std::fprintf(
      txt,
      "(cycles =: clean-run DL1 timing identical across L2 codecs;\n"
      " SECDED block: detected-uncorrectable L2 words / dirty-line data\n"
      " losses / self-check under the storm; SEC-DAEC block: adjacent\n"
      " pairs corrected in place / data losses / self-check)\n\n");
  u64 due = 0, lost = 0, fixed = 0, daec_lost = 0;
  bool timing_neutral = true, daec_all_ok = true;
  std::size_t secded_failures = 0, kernels = 0;
  for (std::size_t k = 0; split + 2 * k + 1 < rs.size(); ++k) {
    const auto& clean_secded = rs[2 * k];
    const auto& clean_daec = rs[2 * k + 1];
    const auto& storm_secded = rs[split + 2 * k];
    const auto& storm_daec = rs[split + 2 * k + 1];
    const bool same_cycles =
        clean_secded.stats.cycles == clean_daec.stats.cycles;
    timing_neutral = timing_neutral && same_cycles;
    const bool secded_ok = storm_secded.self_check_ok;
    daec_all_ok = daec_all_ok && storm_daec.self_check_ok;
    secded_failures += secded_ok ? 0 : 1;
    t.add_row({clean_secded.point.workload, same_cycles ? "yes" : "NO",
               std::to_string(storm_secded.stats.l2_detected_uncorrectable),
               std::to_string(storm_secded.stats.l2_data_loss_events),
               secded_ok ? "ok" : "DATA LOSS",
               std::to_string(storm_daec.stats.l2_corrected_adjacent),
               std::to_string(storm_daec.stats.l2_data_loss_events),
               storm_daec.self_check_ok ? "ok" : "FAIL"});
    due += storm_secded.stats.l2_detected_uncorrectable;
    lost += storm_secded.stats.l2_data_loss_events;
    fixed += storm_daec.stats.l2_corrected_adjacent;
    daec_lost += storm_daec.stats.l2_data_loss_events;
    ++kernels;
  }
  std::fprintf(txt, "%s\n", t.to_text().c_str());
  std::fprintf(
      txt,
      "Across %zu kernels: SECDED-at-L2 flagged %llu adjacent pairs as DUE\n"
      "(%llu on dirty writeback lines -> data lost, %zu kernel self-checks\n"
      "failed). SEC-DAEC-at-L2 under the identical storm: %llu pairs\n"
      "corrected in place, %llu data-loss events, clean-run DL1 timing\n"
      "%s.\n",
      kernels, static_cast<unsigned long long>(due),
      static_cast<unsigned long long>(lost), secded_failures,
      static_cast<unsigned long long>(fixed),
      static_cast<unsigned long long>(daec_lost),
      timing_neutral ? "unchanged" : "CHANGED (unexpected)");

  // The experiment's claim: the L2 codec upgrade is timing-neutral for the
  // DL1 results, eliminates the storm's data loss, and rides it out with
  // every self-check green. SECDED data loss is the expected result, not
  // an error — but the storm must actually land DUEs for the comparison to
  // mean anything.
  const bool demonstrated =
      timing_neutral && daec_all_ok && daec_lost == 0 && due > 0 && lost > 0;
  return demonstrated ? 0 : 1;
}
