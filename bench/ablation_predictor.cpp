// Ablation A4 (extension): stride-predicted look-ahead.
//
// The paper's §III.A names prefetcher-style address prediction as the
// alternative it does not pursue ("LAEC avoids mispredictions by
// anticipating address calculation only when it is guaranteed..."). Here
// the alternative is built and measured: when the exact look-ahead is
// blocked by a data hazard, a confident stride prediction reads the DL1
// early anyway, verified against the real address in the same EX cycle.
// Strided benchmarks (matrix, FFT, FIR) should recover most of the gap
// between LAEC and the no-ECC baseline; pointer-chasing ones should not.
#include <cstdio>

#include "bench_util.hpp"
#include "report/table.hpp"

int main() {
  using namespace laec;
  using cpu::EccPolicy;

  report::Table t({"benchmark", "LAEC", "LAEC+stride", "pred used",
                   "pred wrong", "gap closed"});
  double s_la = 0, s_pr = 0;
  for (const auto& k : workloads::eembc_kernels()) {
    const auto built = k.build();
    auto base_cfg = bench::config_for(EccPolicy::kNoEcc);
    const auto base = core::run_program(base_cfg, built.program);

    auto la_cfg = bench::config_for(EccPolicy::kLaec);
    const auto la = core::run_program(la_cfg, built.program);

    auto pr_cfg = bench::config_for(EccPolicy::kLaec);
    pr_cfg.stride_predictor = true;
    const auto pr = core::run_program(pr_cfg, built.program);

    const double ola = bench::ratio(la.cycles, base.cycles) - 1.0;
    const double opr = bench::ratio(pr.cycles, base.cycles) - 1.0;
    const double closed = ola <= 1e-9 ? 0.0 : (ola - opr) / ola;
    t.add_row({k.name, report::Table::pct(ola), report::Table::pct(opr),
               std::to_string(pr.pipeline_stats.value("pred_used")),
               std::to_string(pr.pipeline_stats.value("pred_mispredict")),
               report::Table::pct(closed, 0)});
    s_la += ola;
    s_pr += opr;
  }
  t.add_row({"average", report::Table::pct(s_la / 16),
             report::Table::pct(s_pr / 16), "-", "-",
             report::Table::pct(s_la <= 0 ? 0 : (s_la - s_pr) / s_la, 0)});
  std::printf(
      "Stride-predicted look-ahead (extension; real kernels, overhead vs\n"
      "no-ECC). Verification is same-cycle, so mispredictions cost only a\n"
      "wasted DL1 read — never a flush.\n\n%s\n",
      t.to_text().c_str());
  return 0;
}
