// Ablation A4 (extension): stride-predicted look-ahead.
//
// The paper's §III.A names prefetcher-style address prediction as the
// alternative it does not pursue ("LAEC avoids mispredictions by
// anticipating address calculation only when it is guaranteed..."). Here
// the alternative is built and measured: when the exact look-ahead is
// blocked by a data hazard, a confident stride prediction reads the DL1
// early anyway, verified against the real address in the same EX cycle.
// Strided benchmarks (matrix, FFT, FIR) should recover most of the gap
// between LAEC and the no-ECC baseline; pointer-chasing ones should not.
//
// All three configurations per kernel — no-ECC baseline, plain LAEC,
// LAEC+stride — run as ONE batched sweep through runner::run_sweep
// (the {no-ecc, laec} grid first, the stride-variant grid appended).
// Pass --threads=N to pin the pool size.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_util.hpp"
#include "report/table.hpp"
#include "runner/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace laec;

  runner::SweepOptions opts;
  if (!bench::parse_bench_args(argc, argv, opts,
                               "usage: ablation_predictor [--threads=N]\n")) {
    return 2;
  }

  runner::SweepGrid plain;
  plain.all_workloads()
      .schemes({"no-ecc", "laec"})
      .mode(runner::RunMode::kProgram);
  runner::SweepGrid stride;
  stride.all_workloads()
      .schemes({"laec"})
      .variants({{"stride",
                  [](core::SimConfig& c) { c.stride_predictor = true; }}})
      .mode(runner::RunMode::kProgram);

  auto points = plain.points();
  const std::size_t split = bench::append_points(points, stride);
  const auto summary = runner::run_sweep(points, opts);
  const auto& rs = summary.results;
  const std::size_t kernels = split / 2;

  report::Table t({"benchmark", "LAEC", "LAEC+stride", "pred used",
                   "pred wrong", "gap closed"});
  double s_la = 0, s_pr = 0;
  for (std::size_t k = 0; k < kernels; ++k) {
    const auto& base = rs[2 * k].stats;      // no-ecc
    const auto& la = rs[2 * k + 1].stats;    // laec
    const auto& pr = rs[split + k].stats;    // laec + stride predictor

    const double ola = bench::ratio(la.cycles, base.cycles) - 1.0;
    const double opr = bench::ratio(pr.cycles, base.cycles) - 1.0;
    const double closed = ola <= 1e-9 ? 0.0 : (ola - opr) / ola;
    t.add_row({rs[2 * k].point.workload, report::Table::pct(ola),
               report::Table::pct(opr),
               std::to_string(pr.pipeline_stats.value("pred_used")),
               std::to_string(pr.pipeline_stats.value("pred_mispredict")),
               report::Table::pct(closed, 0)});
    s_la += ola;
    s_pr += opr;
  }
  const double n = static_cast<double>(kernels);
  t.add_row({"average", report::Table::pct(s_la / n),
             report::Table::pct(s_pr / n), "-", "-",
             report::Table::pct(s_la <= 0 ? 0 : (s_la - s_pr) / s_la, 0)});
  std::printf(
      "Stride-predicted look-ahead (extension; real kernels, overhead vs\n"
      "no-ECC). Verification is same-cycle, so mispredictions cost only a\n"
      "wasted DL1 read — never a flush.\n\n%s\n",
      t.to_text().c_str());
  return summary.self_check_failures == 0 ? 0 : 1;
}
