// Table II (experiment E2): per-benchmark workload characterization —
// % of loads that hit in DL1, % of loads consumed at distance 1-2, and
// loads as % of all instructions — measured by the pipeline's retirement
// monitor, printed against the paper's published row.
#include <cstdio>

#include "bench_util.hpp"
#include "report/table.hpp"

namespace {

using namespace laec;

void print_sweep(const char* title, bool calibrated) {
  report::Table t({"benchmark", "%hit (paper)", "%hit", "%dep (paper)",
                   "%dep", "%load (paper)", "%load"});
  double sh = 0, sd = 0, sl = 0, ph = 0, pd = 0, pl = 0;
  for (const auto& k : workloads::eembc_kernels()) {
    const auto s = calibrated
                       ? bench::run_calibrated(k, cpu::EccPolicy::kNoEcc)
                       : bench::run_kernel(k, cpu::EccPolicy::kNoEcc);
    const double hit = 100.0 * s.hit_fraction();
    const double dep = 100.0 * s.dep_fraction();
    const double load = 100.0 * s.load_fraction();
    t.add_row({k.name, std::to_string(k.paper.hit_pct),
               report::Table::num(hit, 1), std::to_string(k.paper.dep_pct),
               report::Table::num(dep, 1), std::to_string(k.paper.load_pct),
               report::Table::num(load, 1)});
    sh += hit;
    sd += dep;
    sl += load;
    ph += k.paper.hit_pct;
    pd += k.paper.dep_pct;
    pl += k.paper.load_pct;
  }
  t.add_row({"average", report::Table::num(ph / 16, 0),
             report::Table::num(sh / 16, 1), report::Table::num(pd / 16, 0),
             report::Table::num(sd / 16, 1), report::Table::num(pl / 16, 0),
             report::Table::num(sl / 16, 1)});
  std::printf("%s\n%s\n", title, t.to_text().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Table II — %% of hit loads / %% of dependent loads (distance 1-2) /\n"
      "loads as %% of instructions. Paper averages: 89 / 60 / 25.\n\n");
  print_sweep("(a) calibrated traces (match by construction):", true);
  print_sweep("(b) EEMBC-like kernels on the real hierarchy:", false);
  return 0;
}
