// Table II (experiment E2): per-benchmark workload characterization —
// % of loads that hit in DL1, % of loads consumed at distance 1-2, and
// loads as % of all instructions — measured by the pipeline's retirement
// monitor, printed against the paper's published row.
//
// Both reproductions — (a) calibrated traces, (b) EEMBC-like kernels on the
// real hierarchy — run as ONE batched sweep through runner::run_sweep
// (trace points first, kernel points second), so the bench shares the
// engine's thread pool, deterministic seeding and sharding with every other
// experiment. Pass --threads=N to pin the pool size.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_util.hpp"
#include "report/table.hpp"
#include "runner/sweep_runner.hpp"

namespace {

using namespace laec;

void print_sweep(const char* title,
                 const std::vector<runner::PointResult>& rs,
                 std::size_t begin, std::size_t end) {
  report::Table t({"benchmark", "%hit (paper)", "%hit", "%dep (paper)",
                   "%dep", "%load (paper)", "%load"});
  double sh = 0, sd = 0, sl = 0, ph = 0, pd = 0, pl = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const auto& r = rs[i];
    const auto& k = workloads::kernel_by_name(r.point.workload);
    const double hit = 100.0 * r.stats.hit_fraction();
    const double dep = 100.0 * r.stats.dep_fraction();
    const double load = 100.0 * r.stats.load_fraction();
    t.add_row({k.name, std::to_string(k.paper.hit_pct),
               report::Table::num(hit, 1), std::to_string(k.paper.dep_pct),
               report::Table::num(dep, 1), std::to_string(k.paper.load_pct),
               report::Table::num(load, 1)});
    sh += hit;
    sd += dep;
    sl += load;
    ph += k.paper.hit_pct;
    pd += k.paper.dep_pct;
    pl += k.paper.load_pct;
  }
  const double n = static_cast<double>(end - begin);
  t.add_row({"average", report::Table::num(ph / n, 0),
             report::Table::num(sh / n, 1), report::Table::num(pd / n, 0),
             report::Table::num(sd / n, 1), report::Table::num(pl / n, 0),
             report::Table::num(sl / n, 1)});
  std::printf("%s\n%s\n", title, t.to_text().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  runner::SweepOptions opts;
  if (!bench::parse_bench_args(
          argc, argv, opts, "usage: table2_characterization [--threads=N]\n")) {
    return 2;
  }

  std::printf(
      "Table II — %% of hit loads / %% of dependent loads (distance 1-2) /\n"
      "loads as %% of instructions. Paper averages: 89 / 60 / 25.\n\n");

  runner::SweepGrid calibrated;
  calibrated.all_workloads()
      .schemes({"no-ecc"})
      .mode(runner::RunMode::kTrace)
      .trace_ops(120'000);
  runner::SweepGrid kernels;
  kernels.all_workloads().schemes({"no-ecc"}).mode(runner::RunMode::kProgram);

  auto points = calibrated.points();
  const std::size_t split = bench::append_points(points, kernels);

  const auto summary = runner::run_sweep(points, opts);
  print_sweep("(a) calibrated traces (match by construction):",
              summary.results, 0, split);
  print_sweep("(b) EEMBC-like kernels on the real hierarchy:",
              summary.results, split, summary.results.size());
  return summary.self_check_failures == 0 ? 0 : 1;
}
