// Figure 8 (experiment E3): execution-time increase of Extra Cycle, Extra
// Stage and LAEC over the no-ECC baseline, per benchmark and on average.
//
// Two reproductions are printed:
//   (a) calibrated-trace mode — each benchmark's Table II parameters drive
//       the synthetic generator, so the workload characteristics match the
//       paper's by construction (the addr-producer fraction is the one free
//       parameter, recorded in EXPERIMENTS.md);
//   (b) kernel mode — our EEMBC-like kernels on the real cache hierarchy.
//
// Both grids (16 benchmarks x 4 schemes) run N-way parallel through
// runner::run_sweep; pass --threads=N to pin the pool size and --csv to
// also stream the raw per-point rows to stdout.
//
// Paper anchors: Extra Cycle ~ +17% avg (up to +20%), Extra Stage ~ +10%
// (cacheb ~ +2%), LAEC < +4% avg (<1% on several; ~Extra Stage on
// aifftr/aiifft/bitmnp/matrix).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "report/sink.hpp"
#include "report/table.hpp"
#include "runner/sweep_runner.hpp"

namespace {

using namespace laec;

struct Row {
  std::string name;
  double ec, es, la;  // exec-time increase vs no-ECC
};

/// Fold one sweep's slice of results (grid order: workload-major, the
/// baseline-first runner::fig8_schemes() axis inner) into per-benchmark
/// overhead rows.
std::vector<Row> to_rows(const std::vector<runner::PointResult>& rs,
                         std::size_t begin, std::size_t end) {
  const std::size_t ns = runner::fig8_schemes().size();
  std::vector<Row> rows;
  for (std::size_t i = begin; i + ns <= end; i += ns) {
    const u64 base = rs[i].stats.cycles;
    Row r;
    r.name = rs[i].point.workload;
    r.ec = bench::ratio(rs[i + 1].stats.cycles, base) - 1.0;
    r.es = bench::ratio(rs[i + 2].stats.cycles, base) - 1.0;
    r.la = bench::ratio(rs[i + 3].stats.cycles, base) - 1.0;
    rows.push_back(r);
  }
  return rows;
}

void print(std::FILE* out, const char* title, const std::vector<Row>& rows) {
  report::Table t({"benchmark", "Extra Cycle", "Extra Stage", "LAEC"});
  double sec = 0, ses = 0, sla = 0;
  for (const auto& r : rows) {
    t.add_row({r.name, report::Table::pct(r.ec), report::Table::pct(r.es),
               report::Table::pct(r.la)});
    sec += r.ec;
    ses += r.es;
    sla += r.la;
  }
  const double n = static_cast<double>(rows.size());
  t.add_row({"average", report::Table::pct(sec / n),
             report::Table::pct(ses / n), report::Table::pct(sla / n)});
  std::fprintf(out, "%s\n%s\n", title, t.to_text().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  runner::SweepOptions opts;
  bool csv = false;
  if (!bench::parse_bench_args(argc, argv, opts,
                               "usage: fig8_exec_time [--threads=N] [--csv]\n",
                               [&](const std::string& arg) {
                                 if (arg == "--csv") return csv = true;
                                 return false;
                               })) {
    return 2;
  }
  // With --csv, stdout carries exactly one header + one row per point;
  // the human-readable report moves to stderr.
  report::CsvWriter csv_sink(std::cout);
  if (csv) opts.sink = &csv_sink;
  std::FILE* txt = csv ? stderr : stdout;

  std::fprintf(
      txt,
      "Figure 8 — execution time increase vs the no-ECC baseline.\n"
      "Paper: Extra Cycle ~17%% avg, Extra Stage ~10%% avg, LAEC <4%% avg.\n\n");

  // Both reproductions run as ONE batched sweep (one thread pool, one
  // streamed header): calibrated-trace points first, kernel points second.
  runner::SweepGrid calibrated;
  calibrated.all_workloads()
      .eccs(runner::fig8_schemes())
      .mode(runner::RunMode::kTrace)
      .trace_ops(120'000);
  runner::SweepGrid kernels;
  kernels.all_workloads()
      .eccs(runner::fig8_schemes())
      .mode(runner::RunMode::kProgram);

  auto points = calibrated.points();
  const std::size_t split = bench::append_points(points, kernels);

  const auto summary = runner::run_sweep(points, opts);
  print(txt, "(a) calibrated traces (Table II parameters by construction):",
        to_rows(summary.results, 0, split));
  print(txt, "(b) EEMBC-like kernels on the full cache hierarchy:",
        to_rows(summary.results, split, summary.results.size()));
  if (summary.self_check_failures != 0) {
    std::fprintf(stderr, "self-check failures: %zu\n",
                 summary.self_check_failures);
    return 1;
  }

  std::fprintf(
      txt,
      "Expected shape: LAEC <= Extra Stage <= Extra Cycle everywhere;\n"
      "cacheb near zero for all; LAEC ~= Extra Stage on aifftr / aiifft /\n"
      "bitmnp / matrix (address producer immediately before the load).\n");
  return 0;
}
