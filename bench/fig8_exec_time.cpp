// Figure 8 (experiment E3): execution-time increase of Extra Cycle, Extra
// Stage and LAEC over the no-ECC baseline, per benchmark and on average.
//
// Two reproductions are printed:
//   (a) calibrated-trace mode — each benchmark's Table II parameters drive
//       the synthetic generator, so the workload characteristics match the
//       paper's by construction (the addr-producer fraction is the one free
//       parameter, recorded in EXPERIMENTS.md);
//   (b) kernel mode — our EEMBC-like kernels on the real cache hierarchy.
//
// Paper anchors: Extra Cycle ~ +17% avg (up to +20%), Extra Stage ~ +10%
// (cacheb ~ +2%), LAEC < +4% avg (<1% on several; ~Extra Stage on
// aifftr/aiifft/bitmnp/matrix).
#include <cstdio>

#include "bench_util.hpp"
#include "report/table.hpp"

namespace {

using namespace laec;
using bench::run_calibrated;
using bench::run_kernel;
using cpu::EccPolicy;

struct Row {
  std::string name;
  double ec, es, la;  // exec-time increase vs no-ECC
};

template <typename RunFn>
std::vector<Row> sweep(RunFn&& run) {
  std::vector<Row> rows;
  for (const auto& k : workloads::eembc_kernels()) {
    const u64 base = run(k, EccPolicy::kNoEcc).cycles;
    Row r;
    r.name = k.name;
    r.ec = bench::ratio(run(k, EccPolicy::kExtraCycle).cycles, base) - 1.0;
    r.es = bench::ratio(run(k, EccPolicy::kExtraStage).cycles, base) - 1.0;
    r.la = bench::ratio(run(k, EccPolicy::kLaec).cycles, base) - 1.0;
    rows.push_back(r);
  }
  return rows;
}

void print(const char* title, const std::vector<Row>& rows) {
  report::Table t({"benchmark", "Extra Cycle", "Extra Stage", "LAEC"});
  double sec = 0, ses = 0, sla = 0;
  for (const auto& r : rows) {
    t.add_row({r.name, report::Table::pct(r.ec), report::Table::pct(r.es),
               report::Table::pct(r.la)});
    sec += r.ec;
    ses += r.es;
    sla += r.la;
  }
  const double n = static_cast<double>(rows.size());
  t.add_row({"average", report::Table::pct(sec / n),
             report::Table::pct(ses / n), report::Table::pct(sla / n)});
  std::printf("%s\n%s\n", title, t.to_text().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Figure 8 — execution time increase vs the no-ECC baseline.\n"
      "Paper: Extra Cycle ~17%% avg, Extra Stage ~10%% avg, LAEC <4%% avg.\n\n");

  print("(a) calibrated traces (Table II parameters by construction):",
        sweep([](const workloads::KernelEntry& k, EccPolicy p) {
          return run_calibrated(k, p);
        }));

  print("(b) EEMBC-like kernels on the full cache hierarchy:",
        sweep([](const workloads::KernelEntry& k, EccPolicy p) {
          return run_kernel(k, p);
        }));

  std::printf(
      "Expected shape: LAEC <= Extra Stage <= Extra Cycle everywhere;\n"
      "cacheb near zero for all; LAEC ~= Extra Stage on aifftr / aiifft /\n"
      "bitmnp / matrix (address producer immediately before the load).\n");
  return 0;
}
