// Experiment E5 (§IV.A power paragraph): dynamic power impact of the LAEC
// hardware (<1%) and leakage energy growth proportional to execution time
// (~17% / ~10% / <4% for Extra Cycle / Extra Stage / LAEC).
#include <cstdio>

#include "bench_util.hpp"
#include "energy/energy.hpp"
#include "report/table.hpp"

int main() {
  using namespace laec;
  using cpu::EccPolicy;

  energy::EnergyParams ep;
  report::Table t({"scheme", "cycles (avg norm)", "leakage uJ (norm)",
                   "dynamic uJ (norm)", "LAEC adder % of dynamic"});

  struct Acc {
    double cycles = 0, leak = 0, dyn = 0, adder_frac = 0;
  };
  std::vector<std::pair<EccPolicy, Acc>> accs = {
      {EccPolicy::kNoEcc, {}},
      {EccPolicy::kExtraCycle, {}},
      {EccPolicy::kExtraStage, {}},
      {EccPolicy::kLaec, {}},
  };

  const auto& kernels = workloads::eembc_kernels();
  for (const auto& k : kernels) {
    const auto base = bench::run_calibrated(k, EccPolicy::kNoEcc);
    const auto ebase = energy::compute(ep, base, EccPolicy::kNoEcc);
    for (auto& [policy, acc] : accs) {
      const auto s = bench::run_calibrated(k, policy);
      const auto e = energy::compute(ep, s, policy);
      acc.cycles += bench::ratio(s.cycles, base.cycles);
      acc.leak += e.leakage_uj / ebase.leakage_uj;
      acc.dyn += e.dynamic_uj / ebase.dynamic_uj;
      acc.adder_frac += e.laec_dynamic_fraction();
    }
  }

  const double n = static_cast<double>(kernels.size());
  for (const auto& [policy, acc] : accs) {
    t.add_row({std::string(to_string(policy)),
               report::Table::num(acc.cycles / n, 3),
               report::Table::num(acc.leak / n, 3),
               report::Table::num(acc.dyn / n, 3),
               report::Table::pct(acc.adder_frac / n, 2)});
  }

  std::printf(
      "Energy model over the 16 calibrated benchmarks (normalized to the\n"
      "no-ECC baseline). Paper claims: leakage overhead mirrors the\n"
      "slowdown (~17%% / ~10%% / <4%%); LAEC's RF-ports+adder < 1%% of\n"
      "dynamic energy.\n\n%s\n",
      t.to_text().c_str());
  return 0;
}
