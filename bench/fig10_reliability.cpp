// Headline extension (fig10): FIT-vs-codec under an adjacent-MBU-dominated
// upset process — where adjacent correction buys orders of magnitude of
// MTTF.
//
// The paper's schemes are compared on TIMING; this experiment compares the
// deployable DL1 codecs on RELIABILITY, with the Monte Carlo campaign
// engine doing the statistics. Every (kernel x codec) cell runs N
// independent fault-injection trials under the same accelerated Poisson
// upset process (raw rate in FIT/Mbit, scaled-node MBU shape mix where
// adjacent doubles dominate and triples are common), classifies each trial
// (masked / corrected / DUE-recovered / SDC / data-loss) and derives FIT
// and MTTF with Wilson confidence intervals:
//
//   laec                  SECDED (39,32): singles corrected; adjacent
//                         doubles only DETECTED (DUE), triples miscorrect
//   sec-daec-39-32        + adjacent doubles corrected in place
//   sec-daec-taec-45-32   + adjacent triples corrected in place
//   parity-i2-32          two-way interleaved parity, WT + refetch: every
//                         adjacent burst detected, clusters can slip
//   dec-bch-45-32         DEC-TED BCH: ANY double corrected, triples
//                         detected — the non-burst alternative
//
// The acceptance claim: MTTF(sec-daec-taec) >= MTTF(sec-daec) >=
// MTTF(secded), with the SECDED baseline actually failing (its FIT > 0) so
// the comparison means something. Exit 0 iff demonstrated.
//
// Pass --threads=N to pin the pool size, --trials=N per cell (default 48),
// --rate=F (FIT/Mbit, default 1000), --accel=A (default 4e15), --all for
// all 16 kernels (default: a representative trio), --csv to stream the
// campaign rows.
#include <cstdio>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "reliability/campaign.hpp"
#include "report/sink.hpp"
#include "report/table.hpp"

namespace {

using namespace laec;

const std::vector<std::string> kSchemes = {
    "laec", "sec-daec-39-32", "sec-daec-taec-45-32", "parity-i2-32",
    "dec-bch-45-32"};

}  // namespace

int main(int argc, char** argv) {
  runner::SweepOptions popts;  // only .threads is used
  u64 trials = 48;
  double rate = 1000.0;
  double accel = 4e15;
  bool all = false, csv = false;
  if (!bench::parse_bench_args(
          argc, argv, popts,
          "usage: fig10_reliability [--threads=N] [--trials=N] [--rate=F]\n"
          "                         [--accel=A] [--all] [--csv]\n",
          [&](const std::string& arg) {
            if (arg.rfind("--trials=", 0) == 0) {
              trials = std::stoull(arg.substr(9));
              return true;
            }
            if (arg.rfind("--rate=", 0) == 0) {
              rate = std::stod(arg.substr(7));
              return true;
            }
            if (arg.rfind("--accel=", 0) == 0) {
              accel = std::stod(arg.substr(8));
              return true;
            }
            if (arg == "--all") return all = true;
            if (arg == "--csv") return csv = true;
            return false;
          })) {
    return 2;
  }
  std::FILE* txt = csv ? stderr : stdout;

  // Adjacent-MBU-dominated shape mix: the scaled-node regime where burst
  // correction is the whole game.
  ecc::MbuPatternTable patterns;
  patterns.single = 0.10;
  patterns.adjacent_double = 0.70;
  patterns.adjacent_triple = 0.15;
  patterns.clustered = 0.05;

  reliability::CampaignGrid grid;
  if (all) {
    grid.all_workloads();
  } else {
    // Read-modify-write state kernels: their loads frequently hit DIRTY
    // words, the case where a write-back DL1's detected-but-uncorrectable
    // adjacent double has no clean copy to refetch (data loss) — exactly
    // the failure mode adjacent correction removes.
    grid.workloads({"puwmod", "iirflt", "aiifft"});
  }
  grid.schemes(kSchemes);
  grid.rates({{"adj-mbu", rate, patterns}});

  reliability::CampaignSpec spec;
  spec.accel = accel;
  spec.trials = static_cast<unsigned>(trials);
  // A deliberately small DL1 (fig9's trick) keeps dirty lines resident and
  // exposed: a write-back DL1's adjacent-double weakness is the DUE on a
  // DIRTY word, where refetch recovery has nothing clean to refetch.
  spec.base.dl1_size_bytes = 2 * 1024;

  std::fprintf(
      txt,
      "fig10 — reliability campaign: FIT per DL1 codec under an adjacent-\n"
      "MBU-dominated upset process (%g FIT/Mbit raw, accel %g, shape mix\n"
      "single/adj2/adj3/cluster = %.2f/%.2f/%.2f/%.2f, %llu trials/cell).\n\n",
      rate, accel, patterns.single, patterns.adjacent_double,
      patterns.adjacent_triple, patterns.clustered,
      static_cast<unsigned long long>(trials));

  reliability::CampaignOptions opts;
  opts.threads = popts.threads;
  report::CsvWriter csv_sink(std::cout);
  if (csv) opts.sink = &csv_sink;

  const auto summary = reliability::run_campaign(grid, spec, opts);

  // Per-cell table plus a per-scheme pool (failures and device-hours sum;
  // FIT is failures per 1e9 pooled device-hours).
  struct Pool {
    u64 failures = 0;
    u64 trials = 0;
    double device_hours = 0.0;
    [[nodiscard]] double fit() const {
      return device_hours <= 0.0
                 ? 0.0
                 : static_cast<double>(failures) / device_hours * 1e9;
    }
  };
  std::map<std::string, Pool> pools;

  report::Table t({"benchmark", "codec", "events", "corr", "DUE-rec", "SDC",
                   "loss", "FIT", "ci", "MTTF (h)"});
  for (const auto& c : summary.cells) {
    Pool& p = pools[c.cell.scheme];
    p.failures += c.failures();
    p.trials += c.trials;
    p.device_hours += c.device_hours;
    char fit_s[32], ci_s[48], mttf_s[32];
    std::snprintf(fit_s, sizeof fit_s, "%.3g", c.est.fit);
    std::snprintf(ci_s, sizeof ci_s, "[%.3g, %.3g]", c.est.fit_lo,
                  c.est.fit_hi);
    std::snprintf(mttf_s, sizeof mttf_s, "%.3g", c.est.mttf_hours);
    t.add_row({c.cell.workload, c.cell.scheme, std::to_string(c.events),
               std::to_string(c.corrected), std::to_string(c.due_recovered),
               std::to_string(c.sdc), std::to_string(c.data_loss), fit_s,
               ci_s, mttf_s});
  }
  std::fprintf(txt, "%s\n", t.to_text().c_str());

  report::Table pt({"codec", "trials", "failures", "pooled FIT",
                    "pooled MTTF (h)"});
  for (const auto& key : kSchemes) {
    const Pool& p = pools[key];
    char fit_s[32], mttf_s[32];
    std::snprintf(fit_s, sizeof fit_s, "%.3g", p.fit());
    std::snprintf(mttf_s, sizeof mttf_s, "%.3g",
                  p.fit() > 0.0 ? 1e9 / p.fit()
                                : std::numeric_limits<double>::infinity());
    pt.add_row({key, std::to_string(p.trials), std::to_string(p.failures),
                fit_s, mttf_s});
  }
  std::fprintf(txt, "%s\n", pt.to_text().c_str());

  // The headline ordering, on pooled FIT (lower FIT = higher MTTF; an
  // infinite MTTF is FIT 0). SECDED must actually fail for the claim to
  // have content.
  const double fit_secded = pools["laec"].fit();
  const double fit_daec = pools["sec-daec-39-32"].fit();
  const double fit_taec = pools["sec-daec-taec-45-32"].fit();
  const bool demonstrated =
      fit_secded > 0.0 && fit_taec <= fit_daec && fit_daec <= fit_secded;
  std::fprintf(
      txt,
      "MTTF ordering sec-daec-taec >= sec-daec >= secded: %s\n"
      "(pooled FIT %.3g <= %.3g <= %.3g)\n",
      demonstrated ? "DEMONSTRATED" : "NOT demonstrated", fit_taec, fit_daec,
      fit_secded);
  return demonstrated ? 0 : 1;
}
