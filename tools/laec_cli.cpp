// laec_cli — command-line driver for the simulator.
//
//   laec_cli list
//       List the built-in EEMBC-like kernels.
//   laec_cli run <kernel> [options]
//       Run a kernel and print statistics (and verify its self-checks).
//   laec_cli trace <kernel|custom> [options]
//       Run the benchmark's calibrated synthetic trace.
//   laec_cli compare <kernel> [options]
//       Run all four schemes and print the Fig. 8-style comparison row.
//
// Options:
//   --ecc=<no-ecc|extra-cycle|extra-stage|laec|wt-parity>   (default laec)
//   --hazard=<exact|paper>       LAEC hazard rule
//   --stride-predictor           enable the A4 extension
//   --dl1-kb=<n> --dl1-ways=<n> --wbuf=<n> --div=<n> --mem=<n>
//   --ops=<n>                    trace length (trace mode)
//   --csv                        machine-readable one-line output
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "report/table.hpp"
#include "workloads/eembc.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace laec;

struct CliOptions {
  std::string command;
  std::string kernel;
  core::SimConfig cfg;
  u64 trace_ops = 120'000;
  bool csv = false;
  bool ok = true;
};

cpu::EccPolicy parse_ecc(const std::string& v, bool& ok) {
  if (v == "no-ecc") return cpu::EccPolicy::kNoEcc;
  if (v == "extra-cycle") return cpu::EccPolicy::kExtraCycle;
  if (v == "extra-stage") return cpu::EccPolicy::kExtraStage;
  if (v == "laec") return cpu::EccPolicy::kLaec;
  if (v == "wt-parity") return cpu::EccPolicy::kWtParity;
  ok = false;
  return cpu::EccPolicy::kLaec;
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  if (argc < 2) {
    o.ok = false;
    return o;
  }
  o.command = argv[1];
  int i = 2;
  if ((o.command == "run" || o.command == "trace" ||
       o.command == "compare") &&
      argc >= 3 && argv[2][0] != '-') {
    o.kernel = argv[2];
    i = 3;
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* key) -> std::string {
      const std::size_t n = std::strlen(key);
      if (arg.rfind(key, 0) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.substr(n + 1);
      }
      return "";
    };
    if (auto v = value("--ecc"); !v.empty()) {
      o.cfg.ecc = parse_ecc(v, o.ok);
    } else if (auto h = value("--hazard"); !h.empty()) {
      o.cfg.hazard_rule = (h == "paper") ? cpu::HazardRule::kPaperLiteral
                                         : cpu::HazardRule::kExact;
    } else if (arg == "--stride-predictor") {
      o.cfg.stride_predictor = true;
    } else if (auto v2 = value("--dl1-kb"); !v2.empty()) {
      o.cfg.dl1_size_bytes = static_cast<u32>(std::stoul(v2)) * 1024;
    } else if (auto v3 = value("--dl1-ways"); !v3.empty()) {
      o.cfg.dl1_ways = static_cast<u32>(std::stoul(v3));
    } else if (auto v4 = value("--wbuf"); !v4.empty()) {
      o.cfg.write_buffer_depth = static_cast<unsigned>(std::stoul(v4));
    } else if (auto v5 = value("--div"); !v5.empty()) {
      o.cfg.div_latency = static_cast<unsigned>(std::stoul(v5));
    } else if (auto v6 = value("--mem"); !v6.empty()) {
      o.cfg.memory_cycles = static_cast<unsigned>(std::stoul(v6));
    } else if (auto v7 = value("--ops"); !v7.empty()) {
      o.trace_ops = std::stoull(v7);
    } else if (arg == "--csv") {
      o.csv = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      o.ok = false;
    }
  }
  return o;
}

void print_stats(const CliOptions& o, const core::RunStats& s,
                 int check_failures) {
  if (o.csv) {
    std::printf(
        "%s,%s,%llu,%llu,%.4f,%llu,%llu,%llu,%llu,%llu,%d\n",
        o.kernel.c_str(), std::string(to_string(o.cfg.ecc)).c_str(),
        static_cast<unsigned long long>(s.cycles),
        static_cast<unsigned long long>(s.instructions), s.cpi,
        static_cast<unsigned long long>(s.loads),
        static_cast<unsigned long long>(s.load_hits),
        static_cast<unsigned long long>(s.laec_anticipated),
        static_cast<unsigned long long>(s.ecc_corrected),
        static_cast<unsigned long long>(s.ecc_detected_uncorrectable),
        check_failures);
    return;
  }
  std::printf("scheme            : %s\n",
              std::string(to_string(o.cfg.ecc)).c_str());
  std::printf("cycles            : %llu\n",
              static_cast<unsigned long long>(s.cycles));
  std::printf("instructions      : %llu   (CPI %.3f)\n",
              static_cast<unsigned long long>(s.instructions), s.cpi);
  std::printf("loads             : %llu   (%.1f%% hit, %.1f%% dependent)\n",
              static_cast<unsigned long long>(s.loads),
              100.0 * s.hit_fraction(), 100.0 * s.dep_fraction());
  if (o.cfg.ecc == cpu::EccPolicy::kLaec) {
    std::printf("LAEC anticipated  : %llu   (data hz %llu, resource hz %llu)\n",
                static_cast<unsigned long long>(s.laec_anticipated),
                static_cast<unsigned long long>(s.laec_data_hazard),
                static_cast<unsigned long long>(s.laec_resource_hazard));
    if (o.cfg.stride_predictor) {
      std::printf("stride predictor  : used %llu, mispredicted %llu\n",
                  static_cast<unsigned long long>(
                      s.pipeline_stats.value("pred_used")),
                  static_cast<unsigned long long>(
                      s.pipeline_stats.value("pred_mispredict")));
    }
  }
  std::printf("ECC events        : %llu corrected, %llu detected-uncorrectable\n",
              static_cast<unsigned long long>(s.ecc_corrected),
              static_cast<unsigned long long>(s.ecc_detected_uncorrectable));
  if (check_failures >= 0) {
    std::printf("self-check        : %s\n",
                check_failures == 0
                    ? "PASS"
                    : ("FAIL (" + std::to_string(check_failures) + " words)")
                          .c_str());
  }
}

int cmd_list() {
  report::Table t({"kernel", "description", "paper %hit/%dep/%load"});
  for (const auto& k : workloads::eembc_kernels()) {
    t.add_row({k.name, k.description,
               std::to_string(k.paper.hit_pct) + "/" +
                   std::to_string(k.paper.dep_pct) + "/" +
                   std::to_string(k.paper.load_pct)});
  }
  std::printf("%s", t.to_text().c_str());
  return 0;
}

int cmd_run(const CliOptions& o) {
  const auto& entry = workloads::kernel_by_name(o.kernel);
  const auto built = entry.build();
  sim::System system(core::make_system_config(o.cfg));
  system.load_program(built.program);
  const auto res = system.run();
  const auto stats = core::collect_stats(system, res.completed);
  int bad = 0;
  for (const auto& [addr, expect] : built.expected) {
    bad += system.read_word_final(addr) != expect;
  }
  print_stats(o, stats, bad);
  return bad == 0 && res.completed ? 0 : 1;
}

int cmd_trace(const CliOptions& o) {
  const auto& entry = workloads::kernel_by_name(o.kernel);
  workloads::SyntheticTrace trace(
      workloads::SyntheticParams::from_kernel(entry, o.trace_ops));
  const auto stats = core::run_trace(o.cfg, trace);
  print_stats(o, stats, -1);
  return stats.completed ? 0 : 1;
}

int cmd_compare(const CliOptions& o) {
  const auto& entry = workloads::kernel_by_name(o.kernel);
  const auto built = entry.build();
  report::Table t({"scheme", "cycles", "CPI", "vs no-ECC"});
  u64 base = 0;
  for (cpu::EccPolicy p :
       {cpu::EccPolicy::kNoEcc, cpu::EccPolicy::kExtraCycle,
        cpu::EccPolicy::kExtraStage, cpu::EccPolicy::kLaec}) {
    core::SimConfig cfg = o.cfg;
    cfg.ecc = p;
    const auto s = core::run_program(cfg, built.program);
    if (p == cpu::EccPolicy::kNoEcc) base = s.cycles;
    t.add_row({std::string(to_string(p)), std::to_string(s.cycles),
               report::Table::num(s.cpi, 3),
               report::Table::pct(
                   base == 0 ? 0.0
                             : static_cast<double>(s.cycles) /
                                       static_cast<double>(base) -
                                   1.0)});
  }
  std::printf("%s", t.to_text().c_str());
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: laec_cli <list|run|trace|compare> [kernel] [options]\n"
      "  --ecc=no-ecc|extra-cycle|extra-stage|laec|wt-parity\n"
      "  --hazard=exact|paper  --stride-predictor  --csv\n"
      "  --dl1-kb=N --dl1-ways=N --wbuf=N --div=N --mem=N --ops=N\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions o = parse(argc, argv);
  if (!o.ok) {
    usage();
    return 2;
  }
  try {
    if (o.command == "list") return cmd_list();
    if (o.command == "run") return cmd_run(o);
    if (o.command == "trace") return cmd_trace(o);
    if (o.command == "compare") return cmd_compare(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  usage();
  return 2;
}
