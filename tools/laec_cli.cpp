// laec_cli — command-line driver for the simulator.
//
//   laec_cli list
//       List the built-in EEMBC-like kernels.
//   laec_cli schemes
//       List the ECC deployment keys and every registered codec.
//   laec_cli run <kernel> [options]
//       Run a kernel and print statistics (and verify its self-checks).
//   laec_cli trace <kernel|custom> [options]
//       Run the benchmark's calibrated synthetic trace.
//   laec_cli compare <kernel> [options]
//       Run all four schemes and print the Fig. 8-style comparison row.
//   laec_cli sweep [kernel] [options]
//       Run the full (workload x scheme) experiment grid N-way parallel
//       through runner::run_sweep and stream one row per point. Without a
//       kernel argument this is the Fig. 8 grid (16 kernels x 4 schemes).
//       --procs=N forks one worker process per shard on top of the thread
//       pool; rows merge deterministically (byte-identical to --procs=1).
//   laec_cli campaign [kernel] [options]
//       Monte Carlo reliability campaign: run N fault-injection trials per
//       (workload x scheme x rate) cell and emit one row per cell with
//       FIT / MTTF / AVF estimates and Wilson confidence intervals.
//       Composes with --threads / --shard / --procs exactly like sweep
//       (byte-identical row merges at any layout). With --checkpoint=FILE
//       the campaign persists per-cell trial cursors every round; an
//       interrupted run (SIGINT/SIGTERM, exit code 3) resumes with
//       --resume and emits rows byte-identical to an uninterrupted run.
//   laec_cli serve --socket=PATH [--workers=N]
//       Campaign work-queue daemon over a Unix-domain socket: worker
//       threads pull cells from an MPMC queue; each connection submits a
//       job and streams its rows back in grid order.
//   laec_cli submit [kernel] --socket=PATH [options]
//       Submit a campaign to a daemon and stream the rows here. Accepts
//       the campaign grid flags plus --shard (complementary clients shard
//       one campaign); rows are byte-identical to a local run.
//   laec_cli status --socket=PATH
//       Probe a running daemon: uptime, queue depth, in-flight cells,
//       per-worker trial rates and the daemon's metrics digest. Purely
//       observational — never perturbs scheduling or row bytes.
//   laec_cli stop --socket=PATH
//       Ask a daemon to shut down cleanly.
//   laec_cli cat FILE [--format=csv|jsonl] [--out=FILE]
//       Decode a --format=col columnar result file back to text;
//       bit-identical to having written CSV directly.
//
// Options:
//   --ecc=<scheme>[,<scheme>...] (default laec). A scheme key is a policy
//       name (no-ecc, extra-cycle, extra-stage, laec, wt-parity), a
//       registered codec name (e.g. secded-39-32, sec-daec-39-32),
//       placement:codec (e.g. extra-stage:sec-daec-39-32), or a compound
//       hierarchy key with per-cache segments
//       (e.g. laec+l1i:secded-39-32+l2:sec-daec-39-32). The comma list
//       is sweep-only and becomes the sweep's scheme axis.
//   --hazard=<exact|paper>       LAEC hazard rule
//   --stride-predictor           enable the A4 extension
//   --dl1-kb=<n> --dl1-ways=<n> --wbuf=<n> --div=<n> --mem=<n>
//   --ops=<n>                    trace length (trace mode)
//   --inject-single=<p>          per-access single-bit-flip probability
//   --inject-double=<p>          per-access double-bit-flip probability
//   --inject-adjacent            make double flips strike adjacent bits
//   --inject-target=<dl1|l1i|l2> which cache array the storm strikes
//   --csv                        machine-readable one-line output
//
// Sweep/campaign options:
//   --threads=<n>                worker threads (0 = hardware concurrency)
//   --procs=<n>                  fork n worker processes (shards the grid,
//                                merges rows byte-identically)
//   --shard=<i>/<n>              run shard i of n (results union to the grid)
//   --format=<csv|jsonl>         row format (default csv)
//   --out=<file>                 write rows to a file instead of stdout
//   --trace                      calibrated-trace mode (sweep only)
//   --trace=FILE                 flight recorder: write a Chrome trace-event
//                                JSON of the run (golden runs, prune plans,
//                                trials, snapshot restores, checkpoint
//                                writes ...) viewable in chrome://tracing /
//                                Perfetto. Rows stay byte-identical with
//                                tracing on or off. With --procs=N each
//                                worker records its own ring; the parent
//                                stitches them into one document
//                                (sweep / campaign / serve)
//   --seed=<n>                   base seed for per-point deterministic RNG
//
// Campaign options:
//   --rates=<r>[,<r>...]         rate axis: tech presets (65nm, 40nm, 28nm)
//                                or numeric raw FIT/Mbit values
//   --trials=<n>                 Monte Carlo trials per cell (default 96)
//   --min-trials=<n> --batch=<n> stopping-rule schedule
//   --confidence=<c>             CI level (default 0.95)
//   --ci-width=<w>               stop a cell early once the Wilson CI
//                                half-width on p_fail drops to w
//   --accel=<a> --exposure=<cyc> fault-process acceleration knobs
//   --mbu=s:W,adj2:W,adj3:W,cluster:W
//                                MBU pattern-probability table; overrides
//                                every rate's shape mix (without it,
//                                presets carry their own and numeric rates
//                                use the 40nm mix)
//   --inject-target=dl1|l1i|l2   which cache array the campaign strikes
//   --prune | --no-prune         golden-run residency pruning on (default)
//                                or off; rows are byte-identical either
//                                way, --no-prune simulates every trial
//   --ff | --no-ff               snapshot fast-forward on (default) or off;
//                                rows are byte-identical either way,
//                                --no-ff simulates every fault-free prefix
//   --snapshot-every=N           golden snapshot cadence, in injector
//                                consultations (default 256, 0 disables)
//   --snapshot-mem=MB            snapshot memory budget per golden run
//                                (default 256, keep-every-k thinning)
//   --checkpoint=FILE            persist per-cell trial cursors each round
//   --resume                     continue a checkpointed campaign
//   --stop-after-rounds=N        deterministic interruption (CI smoke)
//   --progress[=SECS]            heartbeat on stderr (default every 5 s)
//
// Service options:
//   --socket=PATH                Unix-domain socket (serve/submit/status/stop)
//   --workers=N                  daemon worker threads (0 = hw concurrency)
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "core/simulator.hpp"
#include "ecc/registry.hpp"
#include "ecc/xor_tree.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reliability/campaign.hpp"
#include "report/sink.hpp"
#include "report/table.hpp"
#include "runner/multiproc.hpp"
#include "runner/sweep_runner.hpp"
#include "service/checkpoint.hpp"
#include "service/columnar.hpp"
#include "service/daemon.hpp"
#include "service/job.hpp"
#include "workloads/eembc.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace laec;

struct CliOptions {
  std::string command;
  std::string kernel;
  core::SimConfig cfg;
  u64 trace_ops = 120'000;
  bool csv = false;
  bool ok = true;

  /// --inject-target given: must be paired with an injection rate, else
  /// the storm silently never fires.
  bool inject_target_explicit = false;

  // Sweep mode.
  bool ecc_explicit = false;  ///< --ecc given: sweep only those schemes
  std::vector<std::string> ecc_schemes;  ///< parsed --ecc comma list
  bool sweep_trace = false;
  unsigned threads = 0;
  unsigned procs = 1;
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  u64 base_seed = 0x1aec;
  std::string format = "csv";
  std::string out_path;
  /// --trace=FILE: flight-recorder output (Chrome trace-event JSON).
  /// Distinct from the bare --trace sweep-mode flag. Valid for sweep,
  /// campaign and serve (validated in main, not via a flag class).
  std::string trace_path;
  /// Sweep-only flags seen on the command line (rejected for other
  /// commands instead of being silently ignored).
  std::vector<std::string> sweep_only_flags;

  // Campaign mode.
  reliability::CampaignSpec campaign;
  std::vector<std::string> rate_tokens;
  ecc::MbuPatternTable mbu;       ///< --mbu table for numeric rates
  bool mbu_explicit = false;
  std::vector<std::string> campaign_only_flags;

  // Checkpoint / progress (local campaign runs only).
  std::string checkpoint_path;
  bool resume = false;
  unsigned stop_after_rounds = 0;
  bool progress = false;
  unsigned progress_secs = 5;
  std::vector<std::string> local_campaign_flags;

  // Service mode (serve / submit / stop).
  std::string socket_path;
  unsigned serve_workers = 0;
  bool workers_explicit = false;
  std::vector<std::string> service_flags;
};

/// Split a comma list into its non-empty items.
std::vector<std::string> split_csv(const std::string& v) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= v.size()) {
    const auto comma = v.find(',', start);
    const std::string item =
        v.substr(start, comma == std::string::npos ? v.size() - start
                                                   : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Parse a double consuming the WHOLE string ("0.7junk" is an error, not
/// 0.7). nullopt on any failure.
std::optional<double> parse_double_strict(const std::string& s) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Strict unsigned parse: the whole string must be digits ("1e3" is an
/// error, not 1). nullopt on any failure.
std::optional<unsigned long> parse_ulong_strict(const std::string& s) {
  try {
    std::size_t used = 0;
    const unsigned long v = std::stoul(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Shared handler shape for the campaign's strict numeric flags: parse or
/// report and poison the options.
bool take_ulong(const std::string& flag, const std::string& v, CliOptions& o,
                unsigned& out) {
  const auto parsed = parse_ulong_strict(v);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "%s wants a whole number, not %s\n", flag.c_str(),
                 v.c_str());
    o.ok = false;
    return false;
  }
  out = static_cast<unsigned>(*parsed);
  return true;
}

bool take_double(const std::string& flag, const std::string& v, CliOptions& o,
                 double& out) {
  const auto parsed = parse_double_strict(v);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "%s wants a number, not %s\n", flag.c_str(),
                 v.c_str());
    o.ok = false;
    return false;
  }
  out = *parsed;
  return true;
}

/// Split a comma-separated --ecc value into scheme keys and validate each
/// against EccDeployment::parse. The first key also configures the single-
/// run config (run/trace/compare use exactly one scheme).
void parse_ecc(const std::string& v, CliOptions& o) {
  for (const std::string& key : split_csv(v)) {
    try {
      (void)core::EccDeployment::parse(key);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--ecc: %s\n", e.what());
      o.ok = false;
      return;
    }
    o.ecc_schemes.push_back(key);
  }
  if (o.ecc_schemes.empty()) {
    std::fprintf(stderr, "--ecc wants at least one scheme key\n");
    o.ok = false;
    return;
  }
  o.cfg.set_scheme(o.ecc_schemes.front());
  o.ecc_explicit = true;
  if (o.ecc_schemes.size() > 1) {
    o.sweep_only_flags.push_back("--ecc=<comma list>");
  }
}

/// Parse an --mbu pattern table: comma list of key:weight pairs with keys
/// single|s, adj2, adj3, cluster|clustered. Returns false on a bad entry.
bool parse_mbu(const std::string& v, ecc::MbuPatternTable& t) {
  t = {0.0, 0.0, 0.0, 0.0};
  for (const std::string& item : split_csv(v)) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) return false;
    const std::string key = item.substr(0, colon);
    const auto w = parse_double_strict(item.substr(colon + 1));
    if (!w.has_value() || *w < 0.0) return false;
    if (key == "single" || key == "s") {
      t.single = *w;
    } else if (key == "adj2") {
      t.adjacent_double = *w;
    } else if (key == "adj3") {
      t.adjacent_triple = *w;
    } else if (key == "cluster" || key == "clustered") {
      t.clustered = *w;
    } else {
      return false;
    }
  }
  return t.total() > 0.0;
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  if (argc < 2) {
    o.ok = false;
    return o;
  }
  o.command = argv[1];
  int i = 2;
  if ((o.command == "run" || o.command == "trace" ||
       o.command == "compare" || o.command == "sweep" ||
       o.command == "campaign" || o.command == "submit" ||
       o.command == "cat") &&
      argc >= 3 && argv[2][0] != '-') {
    // For `cat` the positional argument is the columnar file path, not a
    // kernel name; it rides in the same slot.
    o.kernel = argv[2];
    i = 3;
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* key) -> std::string {
      const std::size_t n = std::strlen(key);
      if (arg.rfind(key, 0) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.substr(n + 1);
      }
      return "";
    };
    if (auto v = value("--ecc"); !v.empty()) {
      parse_ecc(v, o);
    } else if (auto h = value("--hazard"); !h.empty()) {
      const auto rule = cpu::hazard_rule_from_string(h);
      if (!rule.has_value()) {
        std::fprintf(stderr, "--hazard wants exact or paper, not %s\n",
                     h.c_str());
        o.ok = false;
      } else {
        o.cfg.hazard_rule = *rule;
      }
    } else if (arg == "--stride-predictor") {
      o.cfg.stride_predictor = true;
    } else if (arg == "--no-lut") {
      o.cfg.lut_decode = false;
    } else if (arg == "--lut") {
      o.cfg.lut_decode = true;
    } else if (arg == "--no-prune") {
      o.campaign.prune = false;
      o.campaign_only_flags.push_back(arg);
    } else if (arg == "--prune") {
      o.campaign.prune = true;
      o.campaign_only_flags.push_back(arg);
    } else if (arg == "--no-ff") {
      o.campaign.fast_forward = false;
      o.campaign_only_flags.push_back(arg);
    } else if (arg == "--ff") {
      o.campaign.fast_forward = true;
      o.campaign_only_flags.push_back(arg);
    } else if (auto se = value("--snapshot-every"); !se.empty()) {
      (void)take_ulong("--snapshot-every", se, o, o.campaign.snapshot_every);
      o.campaign_only_flags.push_back("--snapshot-every");
    } else if (auto sm = value("--snapshot-mem"); !sm.empty()) {
      (void)take_ulong("--snapshot-mem", sm, o, o.campaign.snapshot_mem_mb);
      o.campaign_only_flags.push_back("--snapshot-mem");
    } else if (auto v2 = value("--dl1-kb"); !v2.empty()) {
      o.cfg.dl1_size_bytes = static_cast<u32>(std::stoul(v2)) * 1024;
    } else if (auto v3 = value("--dl1-ways"); !v3.empty()) {
      o.cfg.dl1_ways = static_cast<u32>(std::stoul(v3));
    } else if (auto v4 = value("--wbuf"); !v4.empty()) {
      o.cfg.write_buffer_depth = static_cast<unsigned>(std::stoul(v4));
    } else if (auto v5 = value("--div"); !v5.empty()) {
      o.cfg.div_latency = static_cast<unsigned>(std::stoul(v5));
    } else if (auto v6 = value("--mem"); !v6.empty()) {
      o.cfg.memory_cycles = static_cast<unsigned>(std::stoul(v6));
    } else if (auto v7 = value("--ops"); !v7.empty()) {
      o.trace_ops = std::stoull(v7);
    } else if (auto is = value("--inject-single"); !is.empty()) {
      if (!o.cfg.faults.has_value()) o.cfg.faults.emplace();
      o.cfg.faults->single_flip_prob = std::stod(is);
    } else if (auto id = value("--inject-double"); !id.empty()) {
      if (!o.cfg.faults.has_value()) o.cfg.faults.emplace();
      o.cfg.faults->double_flip_prob = std::stod(id);
    } else if (arg == "--inject-adjacent") {
      if (!o.cfg.faults.has_value()) o.cfg.faults.emplace();
      o.cfg.faults->adjacent_doubles = true;
    } else if (auto it = value("--inject-target"); !it.empty()) {
      const auto target = core::inject_target_from_string(it);
      if (!target.has_value()) {
        std::fprintf(stderr, "--inject-target wants dl1, l1i or l2, not %s\n",
                     it.c_str());
        o.ok = false;
      } else {
        o.cfg.inject_target = *target;
        o.inject_target_explicit = true;
      }
    } else if (arg == "--csv") {
      o.csv = true;
    } else if (auto t = value("--threads"); !t.empty()) {
      o.threads = static_cast<unsigned>(std::stoul(t));
      o.sweep_only_flags.push_back("--threads");
    } else if (auto pr = value("--procs"); !pr.empty()) {
      o.procs = static_cast<unsigned>(std::stoul(pr));
      o.sweep_only_flags.push_back("--procs");
      if (o.procs == 0) {
        std::fprintf(stderr, "--procs wants at least 1 process\n");
        o.ok = false;
      }
    } else if (auto s = value("--shard"); !s.empty()) {
      o.sweep_only_flags.push_back("--shard");
      const auto slash = s.find('/');
      if (slash == std::string::npos) {
        std::fprintf(stderr, "--shard wants <index>/<count>\n");
        o.ok = false;
      } else {
        o.shard_index = static_cast<unsigned>(std::stoul(s.substr(0, slash)));
        o.shard_count =
            static_cast<unsigned>(std::stoul(s.substr(slash + 1)));
      }
    } else if (auto f = value("--format"); !f.empty()) {
      o.format = f;
      o.sweep_only_flags.push_back("--format");
    } else if (auto p = value("--out"); !p.empty()) {
      o.out_path = p;
      o.sweep_only_flags.push_back("--out");
    } else if (auto sd = value("--seed"); !sd.empty()) {
      o.base_seed = std::stoull(sd);
      o.sweep_only_flags.push_back("--seed");
    } else if (arg == "--trace") {
      o.sweep_trace = true;
      o.sweep_only_flags.push_back("--trace");
    } else if (auto tf = value("--trace"); !tf.empty()) {
      // --trace=FILE is the flight recorder; bare --trace (above) is the
      // synthetic-trace sweep mode. The '=' disambiguates.
      o.trace_path = tf;
    } else if (auto rv = value("--rates"); !rv.empty()) {
      o.campaign_only_flags.push_back("--rates");
      o.rate_tokens = split_csv(rv);
      if (o.rate_tokens.empty()) {
        std::fprintf(stderr, "--rates wants at least one preset or number\n");
        o.ok = false;
      }
    } else if (auto tv = value("--trials"); !tv.empty()) {
      (void)take_ulong("--trials", tv, o, o.campaign.trials);
      o.campaign_only_flags.push_back("--trials");
    } else if (auto mv = value("--min-trials"); !mv.empty()) {
      (void)take_ulong("--min-trials", mv, o, o.campaign.min_trials);
      o.campaign_only_flags.push_back("--min-trials");
    } else if (auto bv = value("--batch"); !bv.empty()) {
      (void)take_ulong("--batch", bv, o, o.campaign.batch);
      o.campaign_only_flags.push_back("--batch");
    } else if (auto cv = value("--confidence"); !cv.empty()) {
      (void)take_double("--confidence", cv, o, o.campaign.confidence);
      o.campaign_only_flags.push_back("--confidence");
    } else if (auto wv = value("--ci-width"); !wv.empty()) {
      (void)take_double("--ci-width", wv, o, o.campaign.target_half_width);
      o.campaign_only_flags.push_back("--ci-width");
    } else if (auto av = value("--accel"); !av.empty()) {
      (void)take_double("--accel", av, o, o.campaign.accel);
      o.campaign_only_flags.push_back("--accel");
    } else if (auto ev = value("--exposure"); !ev.empty()) {
      (void)take_ulong("--exposure", ev, o, o.campaign.exposure_cycles);
      o.campaign_only_flags.push_back("--exposure");
    } else if (auto ck = value("--checkpoint"); !ck.empty()) {
      o.checkpoint_path = ck;
      o.local_campaign_flags.push_back("--checkpoint");
    } else if (arg == "--resume") {
      o.resume = true;
      o.local_campaign_flags.push_back("--resume");
    } else if (auto sr = value("--stop-after-rounds"); !sr.empty()) {
      (void)take_ulong("--stop-after-rounds", sr, o, o.stop_after_rounds);
      o.local_campaign_flags.push_back("--stop-after-rounds");
      if (o.stop_after_rounds == 0) {
        std::fprintf(stderr, "--stop-after-rounds wants at least 1 round\n");
        o.ok = false;
      }
    } else if (arg == "--progress") {
      o.progress = true;
      o.local_campaign_flags.push_back("--progress");
    } else if (auto pg = value("--progress"); !pg.empty()) {
      o.progress = true;
      (void)take_ulong("--progress", pg, o, o.progress_secs);
      o.local_campaign_flags.push_back("--progress");
    } else if (auto sk = value("--socket"); !sk.empty()) {
      o.socket_path = sk;
      o.service_flags.push_back("--socket");
    } else if (auto wk = value("--workers"); !wk.empty()) {
      (void)take_ulong("--workers", wk, o, o.serve_workers);
      o.workers_explicit = true;
      o.service_flags.push_back("--workers");
    } else if (auto uv = value("--mbu"); !uv.empty()) {
      o.campaign_only_flags.push_back("--mbu");
      if (!parse_mbu(uv, o.mbu)) {
        std::fprintf(stderr,
                     "--mbu wants key:weight pairs (single/adj2/adj3/"
                     "cluster) with a positive total, not %s\n",
                     uv.c_str());
        o.ok = false;
      } else {
        o.mbu_explicit = true;
      }
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      o.ok = false;
    }
  }
  if (o.command == "campaign") {
    // The campaign derives its own storm from the rate axis; the Bernoulli
    // --inject-* flags would fight it.
    if (o.cfg.faults.has_value()) {
      std::fprintf(stderr,
                   "campaign samples its own faults from --rates; drop "
                   "--inject-single/--inject-double/--inject-adjacent\n");
      o.ok = false;
    }
    o.campaign.target = o.cfg.inject_target;
  } else if (o.inject_target_explicit && !o.cfg.faults.has_value()) {
    std::fprintf(stderr,
                 "--inject-target needs an injection rate "
                 "(--inject-single=P or --inject-double=P)\n");
    o.ok = false;
  }
  return o;
}

// --- service / checkpoint helpers -------------------------------------------

/// SIGINT/SIGTERM request a graceful stop: the campaign loop finishes its
/// round (checkpoint saved by on_round) and exits 3; the daemon's accept
/// loop drains and shuts down.
std::atomic<bool> g_stop_requested{false};

void handle_stop_signal(int) {
  g_stop_requested.store(true, std::memory_order_release);
}

void install_stop_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

/// Row-writer factory covering the service formats too: csv / jsonl via
/// report::make_row_writer, plus the binary columnar sink ("col").
std::unique_ptr<report::RowWriter> make_any_writer(const std::string& format,
                                                   std::ostream& out) {
  if (format == "col") return std::make_unique<service::ColumnarWriter>(out);
  return report::make_row_writer(format, out);
}

/// Where rows go: stdout, or --out=FILE (binary-clean for columnar).
struct OutputTarget {
  std::ofstream file;
  std::ostream* stream = nullptr;
  std::string label = "<stdout>";

  bool open(const CliOptions& o) {
    if (o.out_path.empty()) {
      stream = &std::cout;
      return true;
    }
    const auto mode = o.format == "col"
                          ? std::ios::trunc | std::ios::binary
                          : std::ios::openmode(std::ios::trunc);
    file.open(o.out_path, mode);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", o.out_path.c_str());
      return false;
    }
    stream = &file;
    label = o.out_path;
    return true;
  }

  /// ENOSPC/EIO leave a sticky badbit; surface it as a hard error instead
  /// of pretending a truncated result file is complete.
  int finish() {
    stream->flush();
    if (!stream->good()) {
      std::fprintf(stderr,
                   "error: writing rows to %s failed (disk full or I/O "
                   "error); the output is incomplete\n",
                   label.c_str());
      return 2;
    }
    return 0;
  }
};

void print_worker_diagnostics(const char* cmd,
                              const std::vector<std::string>& diagnostics) {
  for (const auto& d : diagnostics) {
    std::fprintf(stderr, "%s: %s\n", cmd, d.c_str());
  }
}

/// Render one --progress heartbeat from the metrics registry. run_campaign
/// publishes its cursor totals as gauges every round (so a resumed run's
/// restored counts are included), making the heartbeat a pure VIEW over
/// the registry — the same numbers any other observer reads. The ETA uses
/// the completed-trials/s rate of the LAST heartbeat window (done -
/// prev_done over window_secs), not the cumulative average: under pruning,
/// a burst of analytically-classified trials would make the since-start
/// average wildly unrepresentative of the simulated trials still to come.
/// Returns the budget-done count for the caller to carry as the next
/// window's prev_done.
u64 print_heartbeat(double elapsed, double window_secs, u64 prev_done) {
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  const auto ull = [](u64 v) { return static_cast<unsigned long long>(v); };
  const u64 done_trials = snap.value("campaign.trials_budget_done");
  const u64 target_trials = snap.value("campaign.trials_target");
  double eta = -1.0;
  if (done_trials > prev_done && window_secs > 0.0 &&
      target_trials >= done_trials) {
    const double rate =
        static_cast<double>(done_trials - prev_done) / window_secs;
    eta = static_cast<double>(target_trials - done_trials) / rate;
  }
  char eta_buf[48] = "";
  if (eta >= 0.0) {
    std::snprintf(eta_buf, sizeof eta_buf, ", ETA %.0fs", eta);
  }
  std::fprintf(stderr,
               "campaign: %llu/%llu cells, %llu trials (%llu pruned, %llu "
               "fast-forwarded, ~%llu cycles skipped), %llu "
               "faults injected, %.0fs elapsed%s\n",
               ull(snap.value("campaign.cells_finished")),
               ull(snap.value("campaign.cells_total")),
               ull(snap.value("campaign.trials_done")),
               ull(snap.value("campaign.trials_pruned")),
               ull(snap.value("campaign.trials_fast_forwarded")),
               ull(snap.value("campaign.cycles_skipped")),
               ull(snap.value("campaign.fault_events")), elapsed, eta_buf);
  // Second line: golden-run amortization, snapshot-store memory, and the
  // live trial-latency digest (sweep.point_us records every simulated
  // trial unconditionally — tracer on or off).
  char lat_buf[64] = "";
  if (const obs::MetricValue* lat = snap.find("sweep.point_us");
      lat != nullptr && lat->hist.count > 0) {
    std::snprintf(lat_buf, sizeof lat_buf,
                  ", trial p50 %lluus p99 %lluus",
                  ull(lat->hist.percentile(0.50)),
                  ull(lat->hist.percentile(0.99)));
  }
  std::fprintf(
      stderr,
      "campaign: %llu golden runs (%llu cache hits), snapshots %.1f MB%s\n",
      ull(snap.value("campaign.golden_runs")),
      ull(snap.value("campaign.golden_cache_hits")),
      static_cast<double>(snap.value("snapshot.bytes_in_use")) /
          (1024.0 * 1024.0),
      lat_buf);
  return done_trials;
}

void print_stats(const CliOptions& o, const core::RunStats& s,
                 int check_failures) {
  const core::EccDeployment dep = o.cfg.effective_deployment();
  if (o.csv) {
    std::printf(
        "%s,%s,%llu,%llu,%.4f,%llu,%llu,%llu,%llu,%llu,%d\n",
        o.kernel.c_str(), dep.name.c_str(),
        static_cast<unsigned long long>(s.cycles),
        static_cast<unsigned long long>(s.instructions), s.cpi,
        static_cast<unsigned long long>(s.loads),
        static_cast<unsigned long long>(s.load_hits),
        static_cast<unsigned long long>(s.laec_anticipated),
        static_cast<unsigned long long>(s.ecc_corrected),
        static_cast<unsigned long long>(s.ecc_detected_uncorrectable),
        check_failures);
    return;
  }
  std::printf("scheme            : %s   (codec %s)\n", dep.name.c_str(),
              dep.codec.c_str());
  std::printf("cycles            : %llu\n",
              static_cast<unsigned long long>(s.cycles));
  std::printf("instructions      : %llu   (CPI %.3f)\n",
              static_cast<unsigned long long>(s.instructions), s.cpi);
  std::printf("loads             : %llu   (%.1f%% hit, %.1f%% dependent)\n",
              static_cast<unsigned long long>(s.loads),
              100.0 * s.hit_fraction(), 100.0 * s.dep_fraction());
  if (dep.timing == cpu::EccPolicy::kLaec) {
    std::printf("LAEC anticipated  : %llu   (data hz %llu, resource hz %llu)\n",
                static_cast<unsigned long long>(s.laec_anticipated),
                static_cast<unsigned long long>(s.laec_data_hazard),
                static_cast<unsigned long long>(s.laec_resource_hazard));
    if (o.cfg.stride_predictor) {
      std::printf("stride predictor  : used %llu, mispredicted %llu\n",
                  static_cast<unsigned long long>(
                      s.pipeline_stats.value("pred_used")),
                  static_cast<unsigned long long>(
                      s.pipeline_stats.value("pred_mispredict")));
    }
  }
  std::printf(
      "ECC events (DL1)  : %llu corrected (%llu adjacent-double), "
      "%llu detected-uncorrectable\n",
      static_cast<unsigned long long>(s.ecc_corrected),
      static_cast<unsigned long long>(s.ecc_corrected_adjacent),
      static_cast<unsigned long long>(s.ecc_detected_uncorrectable));
  std::printf(
      "ECC events (L1I)  : %llu corrected, %llu DUE, %llu refetches "
      "(codec %s)\n",
      static_cast<unsigned long long>(s.l1i_corrected),
      static_cast<unsigned long long>(s.l1i_detected_uncorrectable),
      static_cast<unsigned long long>(s.l1i_refetches),
      dep.l1i.codec.c_str());
  std::printf(
      "ECC events (L2)   : %llu corrected (%llu adjacent-double), %llu DUE, "
      "%llu refetches, %llu data-loss (codec %s)\n",
      static_cast<unsigned long long>(s.l2_corrected),
      static_cast<unsigned long long>(s.l2_corrected_adjacent),
      static_cast<unsigned long long>(s.l2_detected_uncorrectable),
      static_cast<unsigned long long>(s.l2_refetches),
      static_cast<unsigned long long>(s.l2_data_loss_events),
      dep.l2.codec.c_str());
  if (check_failures >= 0) {
    std::printf("self-check        : %s\n",
                check_failures == 0
                    ? "PASS"
                    : ("FAIL (" + std::to_string(check_failures) + " words)")
                          .c_str());
  }
}

int cmd_list() {
  report::Table t({"kernel", "description", "paper %hit/%dep/%load"});
  for (const auto& k : workloads::eembc_kernels()) {
    t.add_row({k.name, k.description,
               std::to_string(k.paper.hit_pct) + "/" +
                   std::to_string(k.paper.dep_pct) + "/" +
                   std::to_string(k.paper.load_pct)});
  }
  std::printf("%s", t.to_text().c_str());
  return 0;
}

int cmd_schemes() {
  std::printf("Deployment keys (policy names):\n");
  report::Table d({"key", "codec", "write policy", "check placement"});
  for (const auto& key : core::HierarchyDeployment::policy_keys()) {
    const auto dep = core::HierarchyDeployment::parse(key);
    d.add_row({dep.name, dep.codec,
               dep.write_policy == mem::WritePolicy::kWriteBack
                   ? "write-back"
                   : "write-through",
               std::string(to_string(dep.timing))});
  }
  std::printf("%s\n", d.to_text().c_str());

  std::printf(
      "Hierarchy deployments: join per-cache segments with '+'. The first\n"
      "segment is the DL1 scheme (any key above, a codec name, or\n"
      "placement:codec); l1i:<codec> and l2:<codec> override the other\n"
      "levels (defaults: l1i parity-32, l2 secded-39-32). Segments accept\n"
      ":scrub/:no-scrub and :correct/:refetch recovery flags.\n"
      "  e.g. --ecc=laec+l1i:parity-i2-32+l2:sec-daec-39-32\n\n");

  std::printf(
      "Registered codecs (32-bit-word codecs are deployable in any cache\n"
      "level as --ecc segments; 64-bit geometries are library-only for\n"
      "now):\n");
  report::Table t({"name", "k", "r", "corrects", "adj-corr", "adj3-corr",
                   "2-corr", "adj-DED", "DED", "deployable"});
  for (const auto& name : ecc::registered_codecs()) {
    const auto c = ecc::make_codec(name);
    t.add_row({name, std::to_string(c->data_bits()),
               std::to_string(c->check_bits()),
               c->corrects_single() ? "yes" : "no",
               c->corrects_adjacent_double() ? "yes" : "no",
               c->corrects_adjacent_triple() ? "yes" : "no",
               c->corrects_double() ? "yes" : "no",
               c->detects_adjacent_double() ? "yes" : "no",
               c->detects_double() ? "yes" : "no",
               c->data_bits() == 32 ? "yes" : "no"});
  }
  std::printf("%s\n", t.to_text().c_str());

  const auto chk39 = ecc::estimate_checker(ecc::secded32());
  const auto daec39 = ecc::estimate_checker(ecc::sec_daec32());
  std::printf(
      "Checker logic (gate model): secded-39-32 depth %u (%.0f ps), "
      "sec-daec-39-32 depth %u (%.0f ps)\n",
      chk39.depth_levels, ecc::estimate_delay_ps(chk39), daec39.depth_levels,
      ecc::estimate_delay_ps(daec39));
  return 0;
}

int cmd_run(const CliOptions& o) {
  const auto& entry = workloads::kernel_by_name(o.kernel);
  const auto built = entry.build();
  const auto run = core::run_program_keep_system(o.cfg, built.program);
  int bad = 0;
  for (const auto& [addr, expect] : built.expected) {
    bad += run.system->read_word_final(addr) != expect;
  }
  print_stats(o, run.stats, bad);
  return bad == 0 && run.stats.completed ? 0 : 1;
}

int cmd_trace(const CliOptions& o) {
  const auto& entry = workloads::kernel_by_name(o.kernel);
  workloads::SyntheticTrace trace(
      workloads::SyntheticParams::from_kernel(entry, o.trace_ops));
  const auto stats = core::run_trace(o.cfg, trace);
  print_stats(o, stats, -1);
  return stats.completed ? 0 : 1;
}

int cmd_compare(const CliOptions& o) {
  const auto& entry = workloads::kernel_by_name(o.kernel);
  const auto built = entry.build();
  report::Table t({"scheme", "cycles", "CPI", "vs no-ECC"});
  u64 base = 0;
  for (const auto& key : runner::fig8_scheme_keys()) {
    core::SimConfig cfg = o.cfg;
    cfg.set_scheme(key);
    const auto s = core::run_program(cfg, built.program);
    if (key == "no-ecc") base = s.cycles;
    t.add_row({key, std::to_string(s.cycles),
               report::Table::num(s.cpi, 3),
               report::Table::pct(
                   base == 0 ? 0.0
                             : static_cast<double>(s.cycles) /
                                       static_cast<double>(base) -
                                   1.0)});
  }
  std::printf("%s", t.to_text().c_str());
  return 0;
}

int cmd_sweep(const CliOptions& o) {
  runner::SweepGrid grid;
  if (o.kernel.empty() || o.kernel == "all") {
    grid.all_workloads();
  } else {
    grid.workloads({o.kernel});
  }
  if (o.ecc_explicit) {
    grid.schemes(o.ecc_schemes);
  } else {
    grid.schemes(runner::fig8_scheme_keys());
  }
  // The hazard axis would otherwise overwrite a --hazard choice with its
  // default; sweep exactly the requested rule.
  grid.hazards({o.cfg.hazard_rule});
  grid.base_config(o.cfg)
      .mode(o.sweep_trace ? runner::RunMode::kTrace
                          : runner::RunMode::kProgram)
      .trace_ops(o.trace_ops);

  OutputTarget target;
  if (!target.open(o)) return 2;
  std::ostream& out = *target.stream;
  const bool columnar = o.format == "col";
  if (!columnar && report::make_row_writer(o.format, out) == nullptr) {
    std::fprintf(stderr, "unknown --format=%s (want csv, jsonl or col)\n",
                 o.format.c_str());
    return 2;
  }

  // One driver for both scales: --procs=1 runs the classic in-process
  // sweep; --procs=N forks workers over sub-shards and merges their row
  // files back into `out`, byte-identical either way. Columnar output
  // buffers the merged CSV and re-encodes it — csv_to_rows is the exact
  // inverse of CsvWriter, so the .col file holds exactly the CSV rows.
  runner::ProcOptions opts;
  opts.procs = o.procs;
  opts.format = columnar ? "csv" : o.format;
  opts.worker.threads = o.threads;
  opts.worker.shard_index = o.shard_index;
  opts.worker.shard_count = o.shard_count;
  opts.worker.base_seed = o.base_seed;
  opts.trace_path = o.trace_path;
  if (!o.out_path.empty()) opts.scratch_prefix = o.out_path;
  if (!o.trace_path.empty()) obs::Tracer::global().enable();

  std::ostringstream csv_buffer;
  std::ostream& engine_out = columnar ? csv_buffer : out;
  const auto summary = runner::run_sweep_procs(grid.points(), opts,
                                               engine_out);
  if (columnar) {
    std::istringstream csv_in(csv_buffer.str());
    service::ColumnarWriter writer(out);
    (void)service::csv_to_rows(csv_in, writer);
    writer.end();
  }
  // With --procs>1 the fork/merge engine stitched the shard rings into the
  // trace file already; single-process runs dump the in-process ring here.
  if (!o.trace_path.empty() && o.procs == 1 &&
      !obs::write_trace_file(o.trace_path)) {
    std::fprintf(stderr, "cannot write trace file %s\n",
                 o.trace_path.c_str());
  }

  std::fprintf(stderr,
               "sweep: %zu points, %llu cycles simulated, "
               "%zu self-check failures\n",
               summary.points_run,
               static_cast<unsigned long long>(summary.cycles),
               summary.self_check_failures);
  if (summary.failed_workers != 0) {
    print_worker_diagnostics("sweep", summary.worker_diagnostics);
    std::fprintf(stderr, "sweep: %u worker process(es) failed\n",
                 summary.failed_workers);
    return 2;
  }
  if (const int rc = target.finish(); rc != 0) return rc;
  return summary.self_check_failures == 0 ? 0 : 1;
}

/// Expand the campaign grid and spec from the CLI flags — shared between
/// the local campaign driver and the daemon submit client so both run THE
/// SAME campaign for the same flags (the byte-identity contract depends
/// on it). Returns false after printing a diagnostic.
bool build_campaign_inputs(const CliOptions& o,
                           reliability::CampaignSpec& spec,
                           std::vector<reliability::CampaignCell>& cells) {
  reliability::CampaignGrid grid;
  if (o.kernel.empty() || o.kernel == "all") {
    grid.all_workloads();
  } else {
    grid.workloads({o.kernel});
  }
  if (o.ecc_explicit) {
    grid.schemes(o.ecc_schemes);
  } else {
    grid.schemes({"laec", "sec-daec-39-32", "sec-daec-taec-45-32"});
  }

  // Rate axis: presets carry their own MBU mix, numeric rates default to
  // the 40nm mix — and an explicit --mbu table overrides BOTH (the
  // operator's storm shape always wins).
  const ecc::MbuPatternTable numeric_patterns =
      o.mbu_explicit ? o.mbu : reliability::tech_preset("40nm")->patterns;
  std::vector<std::string> tokens = o.rate_tokens;
  if (tokens.empty()) tokens.push_back("40nm");
  std::vector<reliability::RatePoint> rates;
  for (const auto& tok : tokens) {
    auto r = reliability::parse_rate(tok, numeric_patterns);
    if (!r.has_value()) {
      std::fprintf(stderr,
                   "--rates: \"%s\" is neither a tech preset (65nm, 40nm, "
                   "28nm) nor a positive FIT/Mbit number\n",
                   tok.c_str());
      return false;
    }
    if (o.mbu_explicit) r->patterns = o.mbu;
    rates.push_back(std::move(*r));
  }
  grid.rates(std::move(rates));

  spec = o.campaign;
  spec.base = o.cfg;
  cells = grid.cells();
  return true;
}

/// The CampaignJob the CLI flags describe: feeds the daemon client AND the
/// checkpoint identity hash, so a checkpoint refuses to resume under any
/// changed grid / spec / seed / shard.
service::CampaignJob campaign_job_from(
    const CliOptions& o, const reliability::CampaignSpec& spec,
    std::vector<reliability::CampaignCell> cells) {
  service::CampaignJob job;
  job.spec = spec;
  job.cells = std::move(cells);
  job.base_seed = o.base_seed;
  job.shard_index = o.shard_index;
  job.shard_count = o.shard_count;
  return job;
}

int cmd_campaign(const CliOptions& o) {
  reliability::CampaignSpec spec;
  std::vector<reliability::CampaignCell> cells;
  if (!build_campaign_inputs(o, spec, cells)) return 2;

  const bool checkpointing = !o.checkpoint_path.empty();
  if (o.resume && !checkpointing) {
    std::fprintf(stderr, "--resume needs --checkpoint=FILE\n");
    return 2;
  }
  if ((checkpointing || o.stop_after_rounds != 0 || o.progress) &&
      o.procs != 1) {
    std::fprintf(stderr,
                 "--checkpoint/--stop-after-rounds/--progress need "
                 "--procs=1 (cursors live in the campaign loop)\n");
    return 2;
  }

  OutputTarget target;
  if (!target.open(o)) return 2;
  std::ostream& out = *target.stream;
  const bool columnar = o.format == "col";

  if (o.procs == 1) {
    // Single-process path: drive run_campaign directly so the checkpoint
    // cursors, heartbeat and graceful-stop hooks see every round. Byte-
    // identical to the procs engine's in-process path (same engine, same
    // sink discipline).
    const auto writer = make_any_writer(o.format, out);
    if (writer == nullptr) {
      std::fprintf(stderr, "unknown --format=%s (want csv, jsonl or col)\n",
                   o.format.c_str());
      return 2;
    }

    const u64 identity =
        service::campaign_identity(campaign_job_from(o, spec, cells));
    std::vector<reliability::CellProgress> restored;
    reliability::CampaignOptions copts;
    copts.threads = o.threads;
    copts.shard_index = o.shard_index;
    copts.shard_count = o.shard_count;
    copts.base_seed = o.base_seed;
    copts.sink = writer.get();

    if (checkpointing) {
      if (o.resume) {
        try {
          restored = service::load_checkpoint(o.checkpoint_path, identity);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "cannot resume from %s: %s\n",
                       o.checkpoint_path.c_str(), e.what());
          return 2;
        }
        copts.resume_from = &restored;
      } else if (std::filesystem::exists(o.checkpoint_path)) {
        std::fprintf(stderr,
                     "checkpoint %s already exists; pass --resume to "
                     "continue it or remove the file\n",
                     o.checkpoint_path.c_str());
        return 2;
      }
    }

    install_stop_handlers();
    if (!o.trace_path.empty()) obs::Tracer::global().enable();
    unsigned rounds = 0;
    const auto start = std::chrono::steady_clock::now();
    auto last_beat = start;
    u64 last_done = 0;
    copts.on_round = [&](const std::vector<reliability::CellProgress>& p) {
      ++rounds;
      if (checkpointing) {
        service::save_checkpoint(o.checkpoint_path, identity, p);
      }
      if (o.progress) {
        const auto now = std::chrono::steady_clock::now();
        if (now - last_beat >= std::chrono::seconds(o.progress_secs) ||
            rounds == 1) {
          const double elapsed =
              std::chrono::duration<double>(now - start).count();
          // On the first beat last_beat == start, so the "window" spans
          // the whole run so far — still a measured rate, never stale.
          const double window =
              std::chrono::duration<double>(now - last_beat).count();
          last_done = print_heartbeat(elapsed, window, last_done);
          last_beat = now;
        }
      }
    };
    copts.should_stop = [&] {
      return g_stop_requested.load(std::memory_order_acquire) ||
             (o.stop_after_rounds != 0 && rounds >= o.stop_after_rounds);
    };

    const auto summary = reliability::run_campaign(cells, spec, copts);
    // Dump the flight recorder even for interrupted runs — a trace of the
    // rounds that DID happen is exactly what a post-mortem wants.
    if (!o.trace_path.empty() &&
        !obs::write_trace_file(o.trace_path)) {
      std::fprintf(stderr, "cannot write trace file %s\n",
                   o.trace_path.c_str());
    }
    if (summary.interrupted) {
      if (checkpointing) {
        std::fprintf(stderr,
                     "campaign: interrupted after %u round(s); cursors "
                     "saved to %s — rerun with --resume to finish\n",
                     rounds, o.checkpoint_path.c_str());
      } else {
        std::fprintf(stderr,
                     "campaign: interrupted after %u round(s); no "
                     "--checkpoint given, progress was discarded\n",
                     rounds);
      }
      return 3;
    }
    writer->end();
    if (!writer->ok()) {
      std::fprintf(stderr,
                   "error: writing rows to %s failed (disk full or I/O "
                   "error); the output is incomplete\n",
                   target.label.c_str());
      return 2;
    }
    if (const int rc = target.finish(); rc != 0) return rc;
    std::fprintf(stderr,
                 "campaign: %zu cells, %llu trials, %llu failing trials "
                 "(SDC + data-loss)\n",
                 summary.cells_run,
                 static_cast<unsigned long long>(summary.trials_run),
                 static_cast<unsigned long long>(summary.failures));
    return 0;
  }

  // Multi-process path. Columnar output buffers the merged CSV and
  // re-encodes it, like cmd_sweep.
  reliability::CampaignProcOptions popts;
  popts.procs = o.procs;
  popts.format = columnar ? "csv" : o.format;
  popts.worker.threads = o.threads;
  popts.worker.shard_index = o.shard_index;
  popts.worker.shard_count = o.shard_count;
  popts.worker.base_seed = o.base_seed;
  popts.trace_path = o.trace_path;
  if (!o.out_path.empty()) popts.scratch_prefix = o.out_path;
  if (!o.trace_path.empty()) obs::Tracer::global().enable();
  if (!columnar &&
      report::make_row_writer(popts.format, out) == nullptr) {
    std::fprintf(stderr, "unknown --format=%s (want csv, jsonl or col)\n",
                 o.format.c_str());
    return 2;
  }

  std::ostringstream csv_buffer;
  std::ostream& engine_out = columnar ? csv_buffer : out;
  const auto summary =
      reliability::run_campaign_procs(cells, spec, popts, engine_out);
  if (columnar) {
    std::istringstream csv_in(csv_buffer.str());
    service::ColumnarWriter writer(out);
    (void)service::csv_to_rows(csv_in, writer);
    writer.end();
  }

  std::fprintf(stderr,
               "campaign: %zu cells, %llu trials, %llu failing trials "
               "(SDC + data-loss)\n",
               summary.cells_run,
               static_cast<unsigned long long>(summary.trials_run),
               static_cast<unsigned long long>(summary.failures));
  if (summary.failed_workers != 0) {
    print_worker_diagnostics("campaign", summary.worker_diagnostics);
    std::fprintf(stderr, "campaign: %u worker process(es) failed\n",
                 summary.failed_workers);
    return 2;
  }
  return target.finish();
}

int cmd_serve(const CliOptions& o) {
  if (o.socket_path.empty()) {
    std::fprintf(stderr, "serve needs --socket=PATH\n");
    return 2;
  }
  install_stop_handlers();
  if (!o.trace_path.empty()) obs::Tracer::global().enable();
  service::ServeOptions so;
  so.socket_path = o.socket_path;
  so.workers = o.serve_workers;
  so.stop = &g_stop_requested;
  const int rc = service::run_daemon(so);
  if (!o.trace_path.empty() &&
      !obs::write_trace_file(o.trace_path)) {
    std::fprintf(stderr, "cannot write trace file %s\n",
                 o.trace_path.c_str());
  }
  return rc;
}

int cmd_status(const CliOptions& o) {
  if (o.socket_path.empty()) {
    std::fprintf(stderr, "status needs --socket=PATH\n");
    return 2;
  }
  const service::DaemonStatus s = service::request_status(o.socket_path);
  const auto ull = [](u64 v) { return static_cast<unsigned long long>(v); };
  const double up_secs = static_cast<double>(s.uptime_ms) / 1000.0;
  std::printf("daemon at %s: up %.1fs, %u worker thread(s)\n",
              o.socket_path.c_str(), up_secs, s.workers);
  std::printf("  queue depth %llu, in-flight cells %llu\n",
              ull(s.queue_depth), ull(s.inflight_cells));
  std::printf("  jobs: %llu accepted, %llu rejected\n",
              ull(s.jobs_accepted), ull(s.jobs_rejected));
  std::printf("  done: %llu cells, %llu trials, %llu rows streamed\n",
              ull(s.cells_done), ull(s.trials_done), ull(s.rows_streamed));
  if (!s.per_worker.empty()) {
    report::Table t({"worker", "cells", "trials", "trials/s"});
    for (std::size_t i = 0; i < s.per_worker.size(); ++i) {
      const auto& w = s.per_worker[i];
      const double rate =
          up_secs > 0.0 ? static_cast<double>(w.trials_done) / up_secs : 0.0;
      t.add_row({std::to_string(i), std::to_string(w.cells_done),
                 std::to_string(w.trials_done),
                 report::Table::num(rate, 1)});
    }
    std::printf("%s", t.to_text().c_str());
  }
  if (!s.metrics.empty()) {
    report::Table t({"metric", "kind", "value", "sum", "p50", "p99"});
    for (const auto& m : s.metrics) {
      const char* kind = m.kind == 2   ? "histogram"
                         : m.kind == 1 ? "gauge"
                                       : "counter";
      const bool hist = m.kind == 2;
      t.add_row({m.name, kind, std::to_string(m.value),
                 hist ? std::to_string(m.sum) : "-",
                 hist ? std::to_string(m.p50) : "-",
                 hist ? std::to_string(m.p99) : "-"});
    }
    std::printf("%s", t.to_text().c_str());
  }
  return 0;
}

int cmd_submit(const CliOptions& o) {
  if (o.socket_path.empty()) {
    std::fprintf(stderr, "submit needs --socket=PATH\n");
    return 2;
  }
  reliability::CampaignSpec spec;
  std::vector<reliability::CampaignCell> cells;
  if (!build_campaign_inputs(o, spec, cells)) return 2;

  OutputTarget target;
  if (!target.open(o)) return 2;
  const auto writer = make_any_writer(o.format, *target.stream);
  if (writer == nullptr) {
    std::fprintf(stderr, "unknown --format=%s (want csv, jsonl or col)\n",
                 o.format.c_str());
    return 2;
  }

  const auto summary = service::submit_job(
      o.socket_path, campaign_job_from(o, spec, std::move(cells)), *writer);
  writer->end();
  if (!writer->ok()) {
    std::fprintf(stderr,
                 "error: writing rows to %s failed (disk full or I/O "
                 "error); the output is incomplete\n",
                 target.label.c_str());
    return 2;
  }
  if (const int rc = target.finish(); rc != 0) return rc;
  std::fprintf(stderr,
               "submit: %llu cells, %llu trials, %llu failing trials "
               "(SDC + data-loss)\n",
               static_cast<unsigned long long>(summary.cells_run),
               static_cast<unsigned long long>(summary.trials_run),
               static_cast<unsigned long long>(summary.failures));
  return 0;
}

int cmd_stop(const CliOptions& o) {
  if (o.socket_path.empty()) {
    std::fprintf(stderr, "stop needs --socket=PATH\n");
    return 2;
  }
  service::request_shutdown(o.socket_path);
  std::fprintf(stderr, "daemon at %s stopped\n", o.socket_path.c_str());
  return 0;
}

int cmd_cat(const CliOptions& o) {
  if (o.kernel.empty()) {
    std::fprintf(stderr, "cat wants a columnar file path\n");
    return 2;
  }
  if (o.format == "col") {
    std::fprintf(stderr, "cat decodes columnar files; --format wants csv "
                         "or jsonl\n");
    return 2;
  }
  std::ifstream in(o.kernel, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", o.kernel.c_str());
    return 2;
  }
  OutputTarget target;
  if (!target.open(o)) return 2;
  const auto writer = report::make_row_writer(o.format, *target.stream);
  if (writer == nullptr) {
    std::fprintf(stderr, "unknown --format=%s (want csv or jsonl)\n",
                 o.format.c_str());
    return 2;
  }
  const u64 rows = service::read_columnar(in, *writer);
  writer->end();
  if (const int rc = target.finish(); rc != 0) return rc;
  std::fprintf(stderr, "cat: %llu rows\n",
               static_cast<unsigned long long>(rows));
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: laec_cli <list|schemes|run|trace|compare|sweep|campaign|"
      "serve|submit|status|stop|cat> [kernel|file] [options]\n"
      "  --ecc=SCHEME[,SCHEME...]   policy name, codec name,\n"
      "                             placement:codec, or compound hierarchy\n"
      "                             key like laec+l2:sec-daec-39-32 (see\n"
      "                             `laec_cli schemes`; comma list is\n"
      "                             sweep/campaign-only)\n"
      "  --hazard=exact|paper  --stride-predictor  --csv\n"
      "  --no-lut / --lut           matrix-math vs syndrome-LUT decode\n"
      "                             (bit-identical; --no-lut is the\n"
      "                             validation reference path)\n"
      "  --dl1-kb=N --dl1-ways=N --wbuf=N --div=N --mem=N --ops=N\n"
      "  --inject-single=P  --inject-double=P  --inject-adjacent\n"
      "  --inject-target=dl1|l1i|l2\n"
      "sweep/campaign mode:\n"
      "  --threads=N  --procs=N  --shard=I/N  --format=csv|jsonl|col\n"
      "  --out=FILE  --trace  --seed=N\n"
      "  --trace=FILE               flight recorder: Chrome trace-event\n"
      "                             JSON of the run (open in Perfetto /\n"
      "                             chrome://tracing); rows stay byte-\n"
      "                             identical traced or not (also: serve)\n"
      "campaign mode:\n"
      "  --rates=R[,R...]  (65nm|40nm|28nm or FIT/Mbit)  --trials=N\n"
      "  --min-trials=N  --batch=N  --confidence=C  --ci-width=W\n"
      "  --accel=A  --exposure=CYCLES  --mbu=single:W,adj2:W,adj3:W,"
      "cluster:W\n"
      "  --prune / --no-prune       golden-run residency pruning: classify\n"
      "                             provably-masked trials without\n"
      "                             simulating them (byte-identical rows;\n"
      "                             --no-prune is the reference path)\n"
      "  --ff / --no-ff             snapshot fast-forward: restore a golden\n"
      "                             checkpoint instead of re-simulating each\n"
      "                             trial's fault-free prefix\n"
      "                             (byte-identical rows; --no-ff is the\n"
      "                             simulate-everything reference path)\n"
      "  --snapshot-every=N         golden snapshot cadence in injector\n"
      "                             consultations (default 256; 0 disables)\n"
      "  --snapshot-mem=MB          per-(workload,scheme) snapshot budget\n"
      "                             (default 256; keep-every-k thinning)\n"
      "  --checkpoint=FILE  --resume  --stop-after-rounds=N  "
      "--progress[=SECS]\n"
      "service mode (serve/submit/status/stop):\n"
      "  --socket=PATH  --workers=N  (submit also takes the campaign "
      "grid flags)\n"
      "  laec_cli status --socket=PATH   probe a daemon: uptime, queue\n"
      "                             depth, in-flight cells, per-worker\n"
      "                             trial rates, metrics digest\n"
      "cat mode:\n"
      "  laec_cli cat FILE.col [--format=csv|jsonl] [--out=FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliOptions o = parse(argc, argv);
    if (!o.ok) {
      usage();
      return 2;
    }
    const bool grid_cmd = o.command == "sweep" || o.command == "campaign" ||
                          o.command == "submit";
    if (!grid_cmd && o.command != "cat" && !o.sweep_only_flags.empty()) {
      std::fprintf(stderr,
                   "%s only applies to the sweep/campaign/submit commands\n",
                   o.sweep_only_flags.front().c_str());
      usage();
      return 2;
    }
    if (o.command == "cat") {
      for (const auto& f : o.sweep_only_flags) {
        if (f != "--format" && f != "--out") {
          std::fprintf(stderr, "%s does not apply to the cat command\n",
                       f.c_str());
          usage();
          return 2;
        }
      }
    }
    if (o.command == "submit") {
      for (const auto& f : o.sweep_only_flags) {
        if (f == "--threads" || f == "--procs" || f == "--trace") {
          std::fprintf(stderr,
                       "%s does not apply to submit (the daemon owns its "
                       "own worker pool)\n",
                       f.c_str());
          usage();
          return 2;
        }
      }
    }
    if (o.command != "campaign" && o.command != "submit" &&
        !o.campaign_only_flags.empty()) {
      std::fprintf(stderr, "%s only applies to the campaign/submit commands\n",
                   o.campaign_only_flags.front().c_str());
      usage();
      return 2;
    }
    if (o.command != "campaign" && !o.local_campaign_flags.empty()) {
      std::fprintf(stderr,
                   "%s only applies to the (local) campaign command\n",
                   o.local_campaign_flags.front().c_str());
      usage();
      return 2;
    }
    const bool service_cmd = o.command == "serve" || o.command == "submit" ||
                             o.command == "status" || o.command == "stop";
    if (!service_cmd && !o.service_flags.empty()) {
      std::fprintf(stderr,
                   "%s only applies to the serve/submit/status/stop "
                   "commands\n",
                   o.service_flags.front().c_str());
      usage();
      return 2;
    }
    if (!o.trace_path.empty() && o.command != "sweep" &&
        o.command != "campaign" && o.command != "serve") {
      std::fprintf(stderr,
                   "--trace=FILE only applies to the sweep, campaign and "
                   "serve commands\n");
      usage();
      return 2;
    }
    if (o.command != "serve" && o.workers_explicit) {
      std::fprintf(stderr, "--workers only applies to the serve command\n");
      usage();
      return 2;
    }
    if (o.command == "campaign" && o.sweep_trace) {
      std::fprintf(stderr,
                   "--trace only applies to sweep: campaigns need program "
                   "mode (real arrays to inject into)\n");
      usage();
      return 2;
    }
    if (o.command == "list") return cmd_list();
    if (o.command == "schemes") return cmd_schemes();
    if (o.command == "run") return cmd_run(o);
    if (o.command == "trace") return cmd_trace(o);
    if (o.command == "compare") return cmd_compare(o);
    if (o.command == "sweep") return cmd_sweep(o);
    if (o.command == "campaign") return cmd_campaign(o);
    if (o.command == "serve") return cmd_serve(o);
    if (o.command == "submit") return cmd_submit(o);
    if (o.command == "status") return cmd_status(o);
    if (o.command == "stop") return cmd_stop(o);
    if (o.command == "cat") return cmd_cat(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  usage();
  return 2;
}
