// laec_cli — command-line driver for the simulator.
//
//   laec_cli list
//       List the built-in EEMBC-like kernels.
//   laec_cli schemes
//       List the ECC deployment keys and every registered codec.
//   laec_cli run <kernel> [options]
//       Run a kernel and print statistics (and verify its self-checks).
//   laec_cli trace <kernel|custom> [options]
//       Run the benchmark's calibrated synthetic trace.
//   laec_cli compare <kernel> [options]
//       Run all four schemes and print the Fig. 8-style comparison row.
//   laec_cli sweep [kernel] [options]
//       Run the full (workload x scheme) experiment grid N-way parallel
//       through runner::run_sweep and stream one row per point. Without a
//       kernel argument this is the Fig. 8 grid (16 kernels x 4 schemes).
//       --procs=N forks one worker process per shard on top of the thread
//       pool; rows merge deterministically (byte-identical to --procs=1).
//   laec_cli campaign [kernel] [options]
//       Monte Carlo reliability campaign: run N fault-injection trials per
//       (workload x scheme x rate) cell and emit one row per cell with
//       FIT / MTTF / AVF estimates and Wilson confidence intervals.
//       Composes with --threads / --shard / --procs exactly like sweep
//       (byte-identical row merges at any layout).
//
// Options:
//   --ecc=<scheme>[,<scheme>...] (default laec). A scheme key is a policy
//       name (no-ecc, extra-cycle, extra-stage, laec, wt-parity), a
//       registered codec name (e.g. secded-39-32, sec-daec-39-32),
//       placement:codec (e.g. extra-stage:sec-daec-39-32), or a compound
//       hierarchy key with per-cache segments
//       (e.g. laec+l1i:secded-39-32+l2:sec-daec-39-32). The comma list
//       is sweep-only and becomes the sweep's scheme axis.
//   --hazard=<exact|paper>       LAEC hazard rule
//   --stride-predictor           enable the A4 extension
//   --dl1-kb=<n> --dl1-ways=<n> --wbuf=<n> --div=<n> --mem=<n>
//   --ops=<n>                    trace length (trace mode)
//   --inject-single=<p>          per-access single-bit-flip probability
//   --inject-double=<p>          per-access double-bit-flip probability
//   --inject-adjacent            make double flips strike adjacent bits
//   --inject-target=<dl1|l1i|l2> which cache array the storm strikes
//   --csv                        machine-readable one-line output
//
// Sweep/campaign options:
//   --threads=<n>                worker threads (0 = hardware concurrency)
//   --procs=<n>                  fork n worker processes (shards the grid,
//                                merges rows byte-identically)
//   --shard=<i>/<n>              run shard i of n (results union to the grid)
//   --format=<csv|jsonl>         row format (default csv)
//   --out=<file>                 write rows to a file instead of stdout
//   --trace                      calibrated-trace mode (sweep only)
//   --seed=<n>                   base seed for per-point deterministic RNG
//
// Campaign options:
//   --rates=<r>[,<r>...]         rate axis: tech presets (65nm, 40nm, 28nm)
//                                or numeric raw FIT/Mbit values
//   --trials=<n>                 Monte Carlo trials per cell (default 96)
//   --min-trials=<n> --batch=<n> stopping-rule schedule
//   --confidence=<c>             CI level (default 0.95)
//   --ci-width=<w>               stop a cell early once the Wilson CI
//                                half-width on p_fail drops to w
//   --accel=<a> --exposure=<cyc> fault-process acceleration knobs
//   --mbu=s:W,adj2:W,adj3:W,cluster:W
//                                MBU pattern-probability table; overrides
//                                every rate's shape mix (without it,
//                                presets carry their own and numeric rates
//                                use the 40nm mix)
//   --inject-target=dl1|l1i|l2   which cache array the campaign strikes
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "core/simulator.hpp"
#include "ecc/registry.hpp"
#include "ecc/xor_tree.hpp"
#include "reliability/campaign.hpp"
#include "report/sink.hpp"
#include "report/table.hpp"
#include "runner/multiproc.hpp"
#include "runner/sweep_runner.hpp"
#include "workloads/eembc.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace laec;

struct CliOptions {
  std::string command;
  std::string kernel;
  core::SimConfig cfg;
  u64 trace_ops = 120'000;
  bool csv = false;
  bool ok = true;

  /// --inject-target given: must be paired with an injection rate, else
  /// the storm silently never fires.
  bool inject_target_explicit = false;

  // Sweep mode.
  bool ecc_explicit = false;  ///< --ecc given: sweep only those schemes
  std::vector<std::string> ecc_schemes;  ///< parsed --ecc comma list
  bool sweep_trace = false;
  unsigned threads = 0;
  unsigned procs = 1;
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  u64 base_seed = 0x1aec;
  std::string format = "csv";
  std::string out_path;
  /// Sweep-only flags seen on the command line (rejected for other
  /// commands instead of being silently ignored).
  std::vector<std::string> sweep_only_flags;

  // Campaign mode.
  reliability::CampaignSpec campaign;
  std::vector<std::string> rate_tokens;
  ecc::MbuPatternTable mbu;       ///< --mbu table for numeric rates
  bool mbu_explicit = false;
  std::vector<std::string> campaign_only_flags;
};

/// Split a comma list into its non-empty items.
std::vector<std::string> split_csv(const std::string& v) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= v.size()) {
    const auto comma = v.find(',', start);
    const std::string item =
        v.substr(start, comma == std::string::npos ? v.size() - start
                                                   : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Parse a double consuming the WHOLE string ("0.7junk" is an error, not
/// 0.7). nullopt on any failure.
std::optional<double> parse_double_strict(const std::string& s) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Strict unsigned parse: the whole string must be digits ("1e3" is an
/// error, not 1). nullopt on any failure.
std::optional<unsigned long> parse_ulong_strict(const std::string& s) {
  try {
    std::size_t used = 0;
    const unsigned long v = std::stoul(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Shared handler shape for the campaign's strict numeric flags: parse or
/// report and poison the options.
bool take_ulong(const std::string& flag, const std::string& v, CliOptions& o,
                unsigned& out) {
  const auto parsed = parse_ulong_strict(v);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "%s wants a whole number, not %s\n", flag.c_str(),
                 v.c_str());
    o.ok = false;
    return false;
  }
  out = static_cast<unsigned>(*parsed);
  return true;
}

bool take_double(const std::string& flag, const std::string& v, CliOptions& o,
                 double& out) {
  const auto parsed = parse_double_strict(v);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "%s wants a number, not %s\n", flag.c_str(),
                 v.c_str());
    o.ok = false;
    return false;
  }
  out = *parsed;
  return true;
}

/// Split a comma-separated --ecc value into scheme keys and validate each
/// against EccDeployment::parse. The first key also configures the single-
/// run config (run/trace/compare use exactly one scheme).
void parse_ecc(const std::string& v, CliOptions& o) {
  for (const std::string& key : split_csv(v)) {
    try {
      (void)core::EccDeployment::parse(key);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--ecc: %s\n", e.what());
      o.ok = false;
      return;
    }
    o.ecc_schemes.push_back(key);
  }
  if (o.ecc_schemes.empty()) {
    std::fprintf(stderr, "--ecc wants at least one scheme key\n");
    o.ok = false;
    return;
  }
  o.cfg.set_scheme(o.ecc_schemes.front());
  o.ecc_explicit = true;
  if (o.ecc_schemes.size() > 1) {
    o.sweep_only_flags.push_back("--ecc=<comma list>");
  }
}

/// Parse an --mbu pattern table: comma list of key:weight pairs with keys
/// single|s, adj2, adj3, cluster|clustered. Returns false on a bad entry.
bool parse_mbu(const std::string& v, ecc::MbuPatternTable& t) {
  t = {0.0, 0.0, 0.0, 0.0};
  for (const std::string& item : split_csv(v)) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) return false;
    const std::string key = item.substr(0, colon);
    const auto w = parse_double_strict(item.substr(colon + 1));
    if (!w.has_value() || *w < 0.0) return false;
    if (key == "single" || key == "s") {
      t.single = *w;
    } else if (key == "adj2") {
      t.adjacent_double = *w;
    } else if (key == "adj3") {
      t.adjacent_triple = *w;
    } else if (key == "cluster" || key == "clustered") {
      t.clustered = *w;
    } else {
      return false;
    }
  }
  return t.total() > 0.0;
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  if (argc < 2) {
    o.ok = false;
    return o;
  }
  o.command = argv[1];
  int i = 2;
  if ((o.command == "run" || o.command == "trace" ||
       o.command == "compare" || o.command == "sweep" ||
       o.command == "campaign") &&
      argc >= 3 && argv[2][0] != '-') {
    o.kernel = argv[2];
    i = 3;
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* key) -> std::string {
      const std::size_t n = std::strlen(key);
      if (arg.rfind(key, 0) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.substr(n + 1);
      }
      return "";
    };
    if (auto v = value("--ecc"); !v.empty()) {
      parse_ecc(v, o);
    } else if (auto h = value("--hazard"); !h.empty()) {
      const auto rule = cpu::hazard_rule_from_string(h);
      if (!rule.has_value()) {
        std::fprintf(stderr, "--hazard wants exact or paper, not %s\n",
                     h.c_str());
        o.ok = false;
      } else {
        o.cfg.hazard_rule = *rule;
      }
    } else if (arg == "--stride-predictor") {
      o.cfg.stride_predictor = true;
    } else if (arg == "--no-lut") {
      o.cfg.lut_decode = false;
    } else if (arg == "--lut") {
      o.cfg.lut_decode = true;
    } else if (auto v2 = value("--dl1-kb"); !v2.empty()) {
      o.cfg.dl1_size_bytes = static_cast<u32>(std::stoul(v2)) * 1024;
    } else if (auto v3 = value("--dl1-ways"); !v3.empty()) {
      o.cfg.dl1_ways = static_cast<u32>(std::stoul(v3));
    } else if (auto v4 = value("--wbuf"); !v4.empty()) {
      o.cfg.write_buffer_depth = static_cast<unsigned>(std::stoul(v4));
    } else if (auto v5 = value("--div"); !v5.empty()) {
      o.cfg.div_latency = static_cast<unsigned>(std::stoul(v5));
    } else if (auto v6 = value("--mem"); !v6.empty()) {
      o.cfg.memory_cycles = static_cast<unsigned>(std::stoul(v6));
    } else if (auto v7 = value("--ops"); !v7.empty()) {
      o.trace_ops = std::stoull(v7);
    } else if (auto is = value("--inject-single"); !is.empty()) {
      if (!o.cfg.faults.has_value()) o.cfg.faults.emplace();
      o.cfg.faults->single_flip_prob = std::stod(is);
    } else if (auto id = value("--inject-double"); !id.empty()) {
      if (!o.cfg.faults.has_value()) o.cfg.faults.emplace();
      o.cfg.faults->double_flip_prob = std::stod(id);
    } else if (arg == "--inject-adjacent") {
      if (!o.cfg.faults.has_value()) o.cfg.faults.emplace();
      o.cfg.faults->adjacent_doubles = true;
    } else if (auto it = value("--inject-target"); !it.empty()) {
      const auto target = core::inject_target_from_string(it);
      if (!target.has_value()) {
        std::fprintf(stderr, "--inject-target wants dl1, l1i or l2, not %s\n",
                     it.c_str());
        o.ok = false;
      } else {
        o.cfg.inject_target = *target;
        o.inject_target_explicit = true;
      }
    } else if (arg == "--csv") {
      o.csv = true;
    } else if (auto t = value("--threads"); !t.empty()) {
      o.threads = static_cast<unsigned>(std::stoul(t));
      o.sweep_only_flags.push_back("--threads");
    } else if (auto pr = value("--procs"); !pr.empty()) {
      o.procs = static_cast<unsigned>(std::stoul(pr));
      o.sweep_only_flags.push_back("--procs");
      if (o.procs == 0) {
        std::fprintf(stderr, "--procs wants at least 1 process\n");
        o.ok = false;
      }
    } else if (auto s = value("--shard"); !s.empty()) {
      o.sweep_only_flags.push_back("--shard");
      const auto slash = s.find('/');
      if (slash == std::string::npos) {
        std::fprintf(stderr, "--shard wants <index>/<count>\n");
        o.ok = false;
      } else {
        o.shard_index = static_cast<unsigned>(std::stoul(s.substr(0, slash)));
        o.shard_count =
            static_cast<unsigned>(std::stoul(s.substr(slash + 1)));
      }
    } else if (auto f = value("--format"); !f.empty()) {
      o.format = f;
      o.sweep_only_flags.push_back("--format");
    } else if (auto p = value("--out"); !p.empty()) {
      o.out_path = p;
      o.sweep_only_flags.push_back("--out");
    } else if (auto sd = value("--seed"); !sd.empty()) {
      o.base_seed = std::stoull(sd);
      o.sweep_only_flags.push_back("--seed");
    } else if (arg == "--trace") {
      o.sweep_trace = true;
      o.sweep_only_flags.push_back("--trace");
    } else if (auto rv = value("--rates"); !rv.empty()) {
      o.campaign_only_flags.push_back("--rates");
      o.rate_tokens = split_csv(rv);
      if (o.rate_tokens.empty()) {
        std::fprintf(stderr, "--rates wants at least one preset or number\n");
        o.ok = false;
      }
    } else if (auto tv = value("--trials"); !tv.empty()) {
      (void)take_ulong("--trials", tv, o, o.campaign.trials);
      o.campaign_only_flags.push_back("--trials");
    } else if (auto mv = value("--min-trials"); !mv.empty()) {
      (void)take_ulong("--min-trials", mv, o, o.campaign.min_trials);
      o.campaign_only_flags.push_back("--min-trials");
    } else if (auto bv = value("--batch"); !bv.empty()) {
      (void)take_ulong("--batch", bv, o, o.campaign.batch);
      o.campaign_only_flags.push_back("--batch");
    } else if (auto cv = value("--confidence"); !cv.empty()) {
      (void)take_double("--confidence", cv, o, o.campaign.confidence);
      o.campaign_only_flags.push_back("--confidence");
    } else if (auto wv = value("--ci-width"); !wv.empty()) {
      (void)take_double("--ci-width", wv, o, o.campaign.target_half_width);
      o.campaign_only_flags.push_back("--ci-width");
    } else if (auto av = value("--accel"); !av.empty()) {
      (void)take_double("--accel", av, o, o.campaign.accel);
      o.campaign_only_flags.push_back("--accel");
    } else if (auto ev = value("--exposure"); !ev.empty()) {
      (void)take_ulong("--exposure", ev, o, o.campaign.exposure_cycles);
      o.campaign_only_flags.push_back("--exposure");
    } else if (auto uv = value("--mbu"); !uv.empty()) {
      o.campaign_only_flags.push_back("--mbu");
      if (!parse_mbu(uv, o.mbu)) {
        std::fprintf(stderr,
                     "--mbu wants key:weight pairs (single/adj2/adj3/"
                     "cluster) with a positive total, not %s\n",
                     uv.c_str());
        o.ok = false;
      } else {
        o.mbu_explicit = true;
      }
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      o.ok = false;
    }
  }
  if (o.command == "campaign") {
    // The campaign derives its own storm from the rate axis; the Bernoulli
    // --inject-* flags would fight it.
    if (o.cfg.faults.has_value()) {
      std::fprintf(stderr,
                   "campaign samples its own faults from --rates; drop "
                   "--inject-single/--inject-double/--inject-adjacent\n");
      o.ok = false;
    }
    o.campaign.target = o.cfg.inject_target;
  } else if (o.inject_target_explicit && !o.cfg.faults.has_value()) {
    std::fprintf(stderr,
                 "--inject-target needs an injection rate "
                 "(--inject-single=P or --inject-double=P)\n");
    o.ok = false;
  }
  return o;
}

void print_stats(const CliOptions& o, const core::RunStats& s,
                 int check_failures) {
  const core::EccDeployment dep = o.cfg.effective_deployment();
  if (o.csv) {
    std::printf(
        "%s,%s,%llu,%llu,%.4f,%llu,%llu,%llu,%llu,%llu,%d\n",
        o.kernel.c_str(), dep.name.c_str(),
        static_cast<unsigned long long>(s.cycles),
        static_cast<unsigned long long>(s.instructions), s.cpi,
        static_cast<unsigned long long>(s.loads),
        static_cast<unsigned long long>(s.load_hits),
        static_cast<unsigned long long>(s.laec_anticipated),
        static_cast<unsigned long long>(s.ecc_corrected),
        static_cast<unsigned long long>(s.ecc_detected_uncorrectable),
        check_failures);
    return;
  }
  std::printf("scheme            : %s   (codec %s)\n", dep.name.c_str(),
              dep.codec.c_str());
  std::printf("cycles            : %llu\n",
              static_cast<unsigned long long>(s.cycles));
  std::printf("instructions      : %llu   (CPI %.3f)\n",
              static_cast<unsigned long long>(s.instructions), s.cpi);
  std::printf("loads             : %llu   (%.1f%% hit, %.1f%% dependent)\n",
              static_cast<unsigned long long>(s.loads),
              100.0 * s.hit_fraction(), 100.0 * s.dep_fraction());
  if (dep.timing == cpu::EccPolicy::kLaec) {
    std::printf("LAEC anticipated  : %llu   (data hz %llu, resource hz %llu)\n",
                static_cast<unsigned long long>(s.laec_anticipated),
                static_cast<unsigned long long>(s.laec_data_hazard),
                static_cast<unsigned long long>(s.laec_resource_hazard));
    if (o.cfg.stride_predictor) {
      std::printf("stride predictor  : used %llu, mispredicted %llu\n",
                  static_cast<unsigned long long>(
                      s.pipeline_stats.value("pred_used")),
                  static_cast<unsigned long long>(
                      s.pipeline_stats.value("pred_mispredict")));
    }
  }
  std::printf(
      "ECC events (DL1)  : %llu corrected (%llu adjacent-double), "
      "%llu detected-uncorrectable\n",
      static_cast<unsigned long long>(s.ecc_corrected),
      static_cast<unsigned long long>(s.ecc_corrected_adjacent),
      static_cast<unsigned long long>(s.ecc_detected_uncorrectable));
  std::printf(
      "ECC events (L1I)  : %llu corrected, %llu DUE, %llu refetches "
      "(codec %s)\n",
      static_cast<unsigned long long>(s.l1i_corrected),
      static_cast<unsigned long long>(s.l1i_detected_uncorrectable),
      static_cast<unsigned long long>(s.l1i_refetches),
      dep.l1i.codec.c_str());
  std::printf(
      "ECC events (L2)   : %llu corrected (%llu adjacent-double), %llu DUE, "
      "%llu refetches, %llu data-loss (codec %s)\n",
      static_cast<unsigned long long>(s.l2_corrected),
      static_cast<unsigned long long>(s.l2_corrected_adjacent),
      static_cast<unsigned long long>(s.l2_detected_uncorrectable),
      static_cast<unsigned long long>(s.l2_refetches),
      static_cast<unsigned long long>(s.l2_data_loss_events),
      dep.l2.codec.c_str());
  if (check_failures >= 0) {
    std::printf("self-check        : %s\n",
                check_failures == 0
                    ? "PASS"
                    : ("FAIL (" + std::to_string(check_failures) + " words)")
                          .c_str());
  }
}

int cmd_list() {
  report::Table t({"kernel", "description", "paper %hit/%dep/%load"});
  for (const auto& k : workloads::eembc_kernels()) {
    t.add_row({k.name, k.description,
               std::to_string(k.paper.hit_pct) + "/" +
                   std::to_string(k.paper.dep_pct) + "/" +
                   std::to_string(k.paper.load_pct)});
  }
  std::printf("%s", t.to_text().c_str());
  return 0;
}

int cmd_schemes() {
  std::printf("Deployment keys (policy names):\n");
  report::Table d({"key", "codec", "write policy", "check placement"});
  for (const auto& key : core::HierarchyDeployment::policy_keys()) {
    const auto dep = core::HierarchyDeployment::parse(key);
    d.add_row({dep.name, dep.codec,
               dep.write_policy == mem::WritePolicy::kWriteBack
                   ? "write-back"
                   : "write-through",
               std::string(to_string(dep.timing))});
  }
  std::printf("%s\n", d.to_text().c_str());

  std::printf(
      "Hierarchy deployments: join per-cache segments with '+'. The first\n"
      "segment is the DL1 scheme (any key above, a codec name, or\n"
      "placement:codec); l1i:<codec> and l2:<codec> override the other\n"
      "levels (defaults: l1i parity-32, l2 secded-39-32). Segments accept\n"
      ":scrub/:no-scrub and :correct/:refetch recovery flags.\n"
      "  e.g. --ecc=laec+l1i:parity-i2-32+l2:sec-daec-39-32\n\n");

  std::printf(
      "Registered codecs (32-bit-word codecs are deployable in any cache\n"
      "level as --ecc segments; 64-bit geometries are library-only for\n"
      "now):\n");
  report::Table t({"name", "k", "r", "corrects", "adj-corr", "adj3-corr",
                   "2-corr", "adj-DED", "DED", "deployable"});
  for (const auto& name : ecc::registered_codecs()) {
    const auto c = ecc::make_codec(name);
    t.add_row({name, std::to_string(c->data_bits()),
               std::to_string(c->check_bits()),
               c->corrects_single() ? "yes" : "no",
               c->corrects_adjacent_double() ? "yes" : "no",
               c->corrects_adjacent_triple() ? "yes" : "no",
               c->corrects_double() ? "yes" : "no",
               c->detects_adjacent_double() ? "yes" : "no",
               c->detects_double() ? "yes" : "no",
               c->data_bits() == 32 ? "yes" : "no"});
  }
  std::printf("%s\n", t.to_text().c_str());

  const auto chk39 = ecc::estimate_checker(ecc::secded32());
  const auto daec39 = ecc::estimate_checker(ecc::sec_daec32());
  std::printf(
      "Checker logic (gate model): secded-39-32 depth %u (%.0f ps), "
      "sec-daec-39-32 depth %u (%.0f ps)\n",
      chk39.depth_levels, ecc::estimate_delay_ps(chk39), daec39.depth_levels,
      ecc::estimate_delay_ps(daec39));
  return 0;
}

int cmd_run(const CliOptions& o) {
  const auto& entry = workloads::kernel_by_name(o.kernel);
  const auto built = entry.build();
  const auto run = core::run_program_keep_system(o.cfg, built.program);
  int bad = 0;
  for (const auto& [addr, expect] : built.expected) {
    bad += run.system->read_word_final(addr) != expect;
  }
  print_stats(o, run.stats, bad);
  return bad == 0 && run.stats.completed ? 0 : 1;
}

int cmd_trace(const CliOptions& o) {
  const auto& entry = workloads::kernel_by_name(o.kernel);
  workloads::SyntheticTrace trace(
      workloads::SyntheticParams::from_kernel(entry, o.trace_ops));
  const auto stats = core::run_trace(o.cfg, trace);
  print_stats(o, stats, -1);
  return stats.completed ? 0 : 1;
}

int cmd_compare(const CliOptions& o) {
  const auto& entry = workloads::kernel_by_name(o.kernel);
  const auto built = entry.build();
  report::Table t({"scheme", "cycles", "CPI", "vs no-ECC"});
  u64 base = 0;
  for (const auto& key : runner::fig8_scheme_keys()) {
    core::SimConfig cfg = o.cfg;
    cfg.set_scheme(key);
    const auto s = core::run_program(cfg, built.program);
    if (key == "no-ecc") base = s.cycles;
    t.add_row({key, std::to_string(s.cycles),
               report::Table::num(s.cpi, 3),
               report::Table::pct(
                   base == 0 ? 0.0
                             : static_cast<double>(s.cycles) /
                                       static_cast<double>(base) -
                                   1.0)});
  }
  std::printf("%s", t.to_text().c_str());
  return 0;
}

int cmd_sweep(const CliOptions& o) {
  runner::SweepGrid grid;
  if (o.kernel.empty() || o.kernel == "all") {
    grid.all_workloads();
  } else {
    grid.workloads({o.kernel});
  }
  if (o.ecc_explicit) {
    grid.schemes(o.ecc_schemes);
  } else {
    grid.schemes(runner::fig8_scheme_keys());
  }
  // The hazard axis would otherwise overwrite a --hazard choice with its
  // default; sweep exactly the requested rule.
  grid.hazards({o.cfg.hazard_rule});
  grid.base_config(o.cfg)
      .mode(o.sweep_trace ? runner::RunMode::kTrace
                          : runner::RunMode::kProgram)
      .trace_ops(o.trace_ops);

  std::ofstream file;
  if (!o.out_path.empty()) {
    file.open(o.out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", o.out_path.c_str());
      return 2;
    }
  }
  std::ostream& out = o.out_path.empty() ? std::cout : file;
  if (report::make_row_writer(o.format, out) == nullptr) {
    std::fprintf(stderr, "unknown --format=%s (want csv or jsonl)\n",
                 o.format.c_str());
    return 2;
  }

  // One driver for both scales: --procs=1 runs the classic in-process
  // sweep; --procs=N forks workers over sub-shards and merges their row
  // files back into `out`, byte-identical either way.
  runner::ProcOptions opts;
  opts.procs = o.procs;
  opts.format = o.format;
  opts.worker.threads = o.threads;
  opts.worker.shard_index = o.shard_index;
  opts.worker.shard_count = o.shard_count;
  opts.worker.base_seed = o.base_seed;
  if (!o.out_path.empty()) opts.scratch_prefix = o.out_path;
  const auto summary = runner::run_sweep_procs(grid.points(), opts, out);

  std::fprintf(stderr,
               "sweep: %zu points, %llu cycles simulated, "
               "%zu self-check failures\n",
               summary.points_run,
               static_cast<unsigned long long>(summary.cycles),
               summary.self_check_failures);
  if (summary.failed_workers != 0) {
    std::fprintf(stderr, "sweep: %u worker process(es) failed\n",
                 summary.failed_workers);
    return 2;
  }
  return summary.self_check_failures == 0 ? 0 : 1;
}

int cmd_campaign(const CliOptions& o) {
  reliability::CampaignGrid grid;
  if (o.kernel.empty() || o.kernel == "all") {
    grid.all_workloads();
  } else {
    grid.workloads({o.kernel});
  }
  if (o.ecc_explicit) {
    grid.schemes(o.ecc_schemes);
  } else {
    grid.schemes({"laec", "sec-daec-39-32", "sec-daec-taec-45-32"});
  }

  // Rate axis: presets carry their own MBU mix, numeric rates default to
  // the 40nm mix — and an explicit --mbu table overrides BOTH (the
  // operator's storm shape always wins).
  const ecc::MbuPatternTable numeric_patterns =
      o.mbu_explicit ? o.mbu : reliability::tech_preset("40nm")->patterns;
  std::vector<std::string> tokens = o.rate_tokens;
  if (tokens.empty()) tokens.push_back("40nm");
  std::vector<reliability::RatePoint> rates;
  for (const auto& tok : tokens) {
    auto r = reliability::parse_rate(tok, numeric_patterns);
    if (!r.has_value()) {
      std::fprintf(stderr,
                   "--rates: \"%s\" is neither a tech preset (65nm, 40nm, "
                   "28nm) nor a positive FIT/Mbit number\n",
                   tok.c_str());
      return 2;
    }
    if (o.mbu_explicit) r->patterns = o.mbu;
    rates.push_back(std::move(*r));
  }
  grid.rates(std::move(rates));

  reliability::CampaignSpec spec = o.campaign;
  spec.base = o.cfg;

  std::ofstream file;
  if (!o.out_path.empty()) {
    file.open(o.out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", o.out_path.c_str());
      return 2;
    }
  }
  std::ostream& out = o.out_path.empty() ? std::cout : file;
  if (report::make_row_writer(o.format, out) == nullptr) {
    std::fprintf(stderr, "unknown --format=%s (want csv or jsonl)\n",
                 o.format.c_str());
    return 2;
  }

  reliability::CampaignProcOptions popts;
  popts.procs = o.procs;
  popts.format = o.format;
  popts.worker.threads = o.threads;
  popts.worker.shard_index = o.shard_index;
  popts.worker.shard_count = o.shard_count;
  popts.worker.base_seed = o.base_seed;
  if (!o.out_path.empty()) popts.scratch_prefix = o.out_path;
  const auto summary =
      reliability::run_campaign_procs(grid.cells(), spec, popts, out);

  std::fprintf(stderr,
               "campaign: %zu cells, %llu trials, %llu failing trials "
               "(SDC + data-loss)\n",
               summary.cells_run,
               static_cast<unsigned long long>(summary.trials_run),
               static_cast<unsigned long long>(summary.failures));
  if (summary.failed_workers != 0) {
    std::fprintf(stderr, "campaign: %u worker process(es) failed\n",
                 summary.failed_workers);
    return 2;
  }
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: laec_cli <list|schemes|run|trace|compare|sweep|campaign> "
      "[kernel] [options]\n"
      "  --ecc=SCHEME[,SCHEME...]   policy name, codec name,\n"
      "                             placement:codec, or compound hierarchy\n"
      "                             key like laec+l2:sec-daec-39-32 (see\n"
      "                             `laec_cli schemes`; comma list is\n"
      "                             sweep/campaign-only)\n"
      "  --hazard=exact|paper  --stride-predictor  --csv\n"
      "  --no-lut / --lut           matrix-math vs syndrome-LUT decode\n"
      "                             (bit-identical; --no-lut is the\n"
      "                             validation reference path)\n"
      "  --dl1-kb=N --dl1-ways=N --wbuf=N --div=N --mem=N --ops=N\n"
      "  --inject-single=P  --inject-double=P  --inject-adjacent\n"
      "  --inject-target=dl1|l1i|l2\n"
      "sweep/campaign mode:\n"
      "  --threads=N  --procs=N  --shard=I/N  --format=csv|jsonl\n"
      "  --out=FILE  --trace  --seed=N\n"
      "campaign mode:\n"
      "  --rates=R[,R...]  (65nm|40nm|28nm or FIT/Mbit)  --trials=N\n"
      "  --min-trials=N  --batch=N  --confidence=C  --ci-width=W\n"
      "  --accel=A  --exposure=CYCLES  --mbu=single:W,adj2:W,adj3:W,"
      "cluster:W\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliOptions o = parse(argc, argv);
    if (!o.ok) {
      usage();
      return 2;
    }
    const bool grid_cmd = o.command == "sweep" || o.command == "campaign";
    if (!grid_cmd && !o.sweep_only_flags.empty()) {
      std::fprintf(stderr, "%s only applies to the sweep/campaign commands\n",
                   o.sweep_only_flags.front().c_str());
      usage();
      return 2;
    }
    if (o.command != "campaign" && !o.campaign_only_flags.empty()) {
      std::fprintf(stderr, "%s only applies to the campaign command\n",
                   o.campaign_only_flags.front().c_str());
      usage();
      return 2;
    }
    if (o.command == "campaign" && o.sweep_trace) {
      std::fprintf(stderr,
                   "--trace only applies to sweep: campaigns need program "
                   "mode (real arrays to inject into)\n");
      usage();
      return 2;
    }
    if (o.command == "list") return cmd_list();
    if (o.command == "schemes") return cmd_schemes();
    if (o.command == "run") return cmd_run(o);
    if (o.command == "trace") return cmd_trace(o);
    if (o.command == "compare") return cmd_compare(o);
    if (o.command == "sweep") return cmd_sweep(o);
    if (o.command == "campaign") return cmd_campaign(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  usage();
  return 2;
}
