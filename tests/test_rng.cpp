#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace laec {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const i64 v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(17);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += r.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.01);
}

TEST(Rng, ReseedReproduces) {
  Rng r(5);
  const u64 a = r.next_u64();
  r.reseed(5);
  EXPECT_EQ(r.next_u64(), a);
}

}  // namespace
}  // namespace laec
