// ResidencyRecorder semantics on hand-driven SetAssocCache access
// sequences, and the pass-2 schedule drawer built on top of the recorded
// windows. These are the soundness primitives of golden-run pruning: a
// window misclassified live/dead, or a non-deterministic window order,
// silently changes every trial's RNG stream.
#include "mem/residency.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ecc/registry.hpp"
#include "mem/cache.hpp"
#include "reliability/campaign.hpp"
#include "reliability/schedule.hpp"

namespace laec::mem {
namespace {

// 2-way, 16-set, 32B-line array: 8 words per line, small enough to force
// evictions with three same-set fills.
CacheConfig small_cfg() {
  CacheConfig c;
  c.name = "t";
  c.size_bytes = 1024;
  c.line_bytes = 32;
  c.ways = 2;
  c.codec = ecc::make_codec("secded-39-32");
  return c;
}

std::vector<u8> line_of(u32 seed) {
  std::vector<u8> v(32);
  for (u32 i = 0; i < 32; ++i) v[i] = static_cast<u8>(seed + i);
  return v;
}

struct Rig {
  Cycle clock = 0;
  ResidencyRecorder rec;
  SetAssocCache cache{small_cfg()};
  Rig() {
    rec.bind_clock(&clock);
    cache.set_recorder(&rec);
  }
};

u64 count_live(const std::vector<AccessWindow>& w) {
  return static_cast<u64>(
      std::count_if(w.begin(), w.end(), [](auto& x) { return x.live; }));
}

TEST(Residency, ReadClosesLiveWindowThenFinalizeClosesDead) {
  Rig r;
  r.cache.fill(0x100, line_of(1).data(), false);  // installs 8 words at t=0
  r.clock = 10;
  (void)r.cache.read(0x104, 4);  // live window, gap 10
  r.clock = 25;
  r.rec.finalize();  // 8 still-resident words -> 8 dead windows

  const auto& w = r.rec.windows();
  ASSERT_EQ(w.size(), 9u);
  EXPECT_EQ(count_live(w), 1u);
  EXPECT_EQ(r.rec.live_windows(), 1u);
  EXPECT_TRUE(w[0].live);
  EXPECT_EQ(w[0].gap_cycles, 10u);
  // The read word's residency reopened at t=10: its trailing dead window
  // spans 15 cycles; the seven untouched words span the full 25.
  u64 dead15 = 0, dead25 = 0;
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_FALSE(w[i].live);
    if (w[i].gap_cycles == 15) ++dead15;
    if (w[i].gap_cycles == 25) ++dead25;
  }
  EXPECT_EQ(dead15, 1u);
  EXPECT_EQ(dead25, 7u);
}

TEST(Residency, OverwriteClosesDeadWindowAndReopens) {
  Rig r;
  r.cache.fill(0x200, line_of(2).data(), false);
  r.clock = 5;
  r.cache.write(0x208, 4, 0xdeadbeef, true);  // dead window, gap 5
  r.clock = 9;
  (void)r.cache.read(0x208, 4);  // live window, gap 4 (since the write)

  const auto& w = r.rec.windows();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_FALSE(w[0].live);
  EXPECT_EQ(w[0].gap_cycles, 5u);
  EXPECT_TRUE(w[1].live);
  EXPECT_EQ(w[1].gap_cycles, 4u);
}

TEST(Residency, SubWordWriteStillClosesWholeWordWindow) {
  Rig r;
  r.cache.fill(0x240, line_of(3).data(), false);
  r.clock = 7;
  r.cache.write(0x249, 1, 0xaa, true);  // 1-byte RMW merge
  const auto& w = r.rec.windows();
  ASSERT_EQ(w.size(), 1u);
  EXPECT_FALSE(w[0].live);
  EXPECT_EQ(w[0].gap_cycles, 7u);
}

TEST(Residency, CleanEvictionRetiresEveryWordDead) {
  Rig r;
  // Three fills into the same set (stride = 16 sets * 32 B = 512 B).
  r.cache.fill(0x000, line_of(1).data(), false);
  r.cache.fill(0x200, line_of(2).data(), false);
  r.clock = 12;
  // Evicts the LRU line 0x000; a clean victim needs no writeback, so fill
  // reports no Eviction — but its words still retire with the recorder.
  auto ev = r.cache.fill(0x400, line_of(3).data(), false);
  EXPECT_FALSE(ev.has_value());

  const auto& w = r.rec.windows();
  ASSERT_EQ(w.size(), 8u);  // one dead window per word of the victim line
  for (const auto& x : w) {
    EXPECT_FALSE(x.live);
    EXPECT_EQ(x.gap_cycles, 12u);
  }
}

TEST(Residency, DirtyWritebackRetiresDeadToo) {
  Rig r;
  r.cache.fill(0x000, line_of(1).data(), false);
  r.clock = 3;
  r.cache.write(0x004, 4, 0x1234, true);  // dead window gap 3, line dirty
  r.cache.fill(0x200, line_of(2).data(), false);
  r.clock = 20;
  auto ev = r.cache.fill(0x400, line_of(3).data(), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);

  // A dirty writeback is still architecturally dead for the cached copy:
  // no *cache read* ever sees an upset landing after the last touch.
  const auto& w = r.rec.windows();
  ASSERT_EQ(w.size(), 9u);
  EXPECT_EQ(count_live(w), 0u);
  // Written word retired with gap 17 (t=3 -> t=20); the other seven with 20.
  u64 gap17 = 0, gap20 = 0;
  for (std::size_t i = 1; i < w.size(); ++i) {
    if (w[i].gap_cycles == 17) ++gap17;
    if (w[i].gap_cycles == 20) ++gap20;
  }
  EXPECT_EQ(gap17, 1u);
  EXPECT_EQ(gap20, 7u);
}

TEST(Residency, InvalidateRetiresDead) {
  Rig r;
  r.cache.fill(0x300, line_of(4).data(), false);
  r.clock = 6;
  (void)r.cache.read(0x300, 4);  // live, gap 6
  r.clock = 11;
  EXPECT_TRUE(r.cache.invalidate(0x300));
  const auto& w = r.rec.windows();
  ASSERT_EQ(w.size(), 9u);
  EXPECT_EQ(count_live(w), 1u);
  EXPECT_EQ(w[0].gap_cycles, 6u);
}

TEST(Residency, ReadOnlyArrayProducesOnlyReadAndRetireWindows) {
  // L1I arrangement: fills and reads only, never written, never dirty.
  CacheConfig cfg = small_cfg();
  cfg.read_only = true;
  cfg.write_policy = WritePolicy::kWriteThrough;
  Cycle clock = 0;
  ResidencyRecorder rec;
  rec.bind_clock(&clock);
  SetAssocCache cache(cfg);
  cache.set_recorder(&rec);

  cache.fill(0x100, line_of(9).data(), false);
  clock = 4;
  (void)cache.read(0x100, 4);
  clock = 5;
  (void)cache.read(0x100, 4);  // second read of same word: live, gap 1
  clock = 9;
  rec.finalize();

  const auto& w = rec.windows();
  ASSERT_EQ(w.size(), 10u);
  EXPECT_EQ(count_live(w), 2u);
  EXPECT_TRUE(w[0].live);
  EXPECT_EQ(w[0].gap_cycles, 4u);
  EXPECT_TRUE(w[1].live);
  EXPECT_EQ(w[1].gap_cycles, 1u);
}

TEST(Residency, FinalizeOrderIsDeterministicAcrossRuns) {
  auto run = [] {
    Rig r;
    r.cache.fill(0x600, line_of(1).data(), false);
    r.cache.fill(0x040, line_of(2).data(), false);
    r.clock = 2;
    (void)r.cache.read(0x608, 4);
    r.clock = 8;
    r.rec.finalize();
    std::vector<std::pair<u64, bool>> seq;
    for (const auto& w : r.rec.windows()) seq.emplace_back(w.gap_cycles, w.live);
    return seq;
  };
  EXPECT_EQ(run(), run());
}

TEST(Residency, MeanExposureCycles) {
  EXPECT_EQ(mean_exposure_cycles({}), 0.0);
  std::vector<AccessWindow> w{{10, true}, {20, false}, {60, false}};
  EXPECT_DOUBLE_EQ(mean_exposure_cycles(w), 30.0);
}

TEST(Residency, TakeWindowsMovesOut) {
  Rig r;
  r.cache.fill(0x100, line_of(1).data(), false);
  r.clock = 5;
  r.rec.finalize();
  auto w = r.rec.take_windows();
  EXPECT_EQ(w.size(), 8u);
  EXPECT_TRUE(r.rec.windows().empty());
}

}  // namespace
}  // namespace laec::mem

namespace laec::reliability {
namespace {

using mem::AccessWindow;

ecc::MbuPatternTable seu_only() { return ecc::MbuPatternTable{}; }

TEST(TrialSchedule, ZeroLambdaDrawsNothing) {
  std::vector<AccessWindow> w{{100, true}, {100, false}};
  const auto s = draw_trial_schedule(w, 0.0, seu_only(), 39, 1234);
  EXPECT_EQ(s.events, 0u);
  EXPECT_EQ(s.dropped_events, 0u);
  EXPECT_FALSE(s.has_live());
}

TEST(TrialSchedule, SaturatedLambdaDeliversAtConsultOrdinals) {
  // Consultation ordinals count LIVE windows only: dead windows are never
  // consulted by the injector. With lambda >> 1 every window fires.
  std::vector<AccessWindow> w{
      {1, false}, {1, true}, {1, false}, {1, true}, {1, false}};
  const auto s = draw_trial_schedule(w, 1e9, seu_only(), 39, 7);
  EXPECT_TRUE(s.has_live());
  ASSERT_EQ(s.deliveries.size(), 2u);
  EXPECT_EQ(s.deliveries[0].first, 0u);  // first live window -> consult 0
  EXPECT_EQ(s.deliveries[1].first, 1u);
  // Dead-window events are counted (AVF denominator) but never delivered.
  EXPECT_GE(s.events, 5u);
  for (const auto& d : s.deliveries) EXPECT_FALSE(d.second.empty());
}

TEST(TrialSchedule, DeterministicPerSeed) {
  std::vector<AccessWindow> w;
  for (int i = 0; i < 64; ++i) {
    w.push_back({static_cast<u64>(10 + i), (i % 3) == 0});
  }
  const auto a = draw_trial_schedule(w, 0.01, seu_only(), 39, 42);
  const auto b = draw_trial_schedule(w, 0.01, seu_only(), 39, 42);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.dropped_events, b.dropped_events);
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_EQ(a.deliveries[i].first, b.deliveries[i].first);
    EXPECT_TRUE(a.deliveries[i].second == b.deliveries[i].second);
  }
  // A different seed draws a different storm (on 64 windows the chance of
  // a collision at these rates is negligible and, crucially, fixed).
  const auto c = draw_trial_schedule(w, 0.5, seu_only(), 39, 42);
  const auto d = draw_trial_schedule(w, 0.5, seu_only(), 39, 43);
  EXPECT_TRUE(c.events != d.events || c.deliveries.size() != d.deliveries.size());
}

TEST(TrialSchedule, WindowLambdaScaleMatchesClosedForm) {
  CampaignSpec spec;
  spec.accel = 1e12;
  spec.freq_mhz = 100.0;
  const double fit = 900.0;  // 28nm-class per-Mbit rate
  const unsigned bits = 39;
  const double expect = fit * 1e-9 / (1024.0 * 1024.0) * bits * spec.accel /
                        (spec.freq_mhz * 1e6) / 3600.0;
  EXPECT_DOUBLE_EQ(window_lambda_scale(spec, fit, bits), expect);
}

}  // namespace
}  // namespace laec::reliability
