#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace laec {
namespace {

TEST(StatSet, CounterLifecycle) {
  StatSet s;
  u64& c = s.counter("x");
  EXPECT_EQ(c, 0u);
  ++c;
  c += 3;
  EXPECT_EQ(s.value("x"), 4u);
  EXPECT_EQ(s.value("unknown"), 0u);
}

TEST(StatSet, ReferencesStableAcrossGrowth) {
  StatSet s;
  u64& first = s.counter("first");
  // Grow well past one chunk.
  for (int i = 0; i < 500; ++i) s.counter("c" + std::to_string(i));
  first = 99;
  EXPECT_EQ(s.value("first"), 99u);
}

TEST(StatSet, ItemsPreserveRegistrationOrder) {
  StatSet s;
  s.counter("b") = 1;
  s.counter("a") = 2;
  s.counter("z") = 3;
  const auto items = s.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, "b");
  EXPECT_EQ(items[1].first, "a");
  EXPECT_EQ(items[2].first, "z");
}

TEST(StatSet, AddMerges) {
  StatSet a, b;
  a.counter("x") = 5;
  b.counter("x") = 7;
  b.counter("y") = 1;
  a.add(b);
  EXPECT_EQ(a.value("x"), 12u);
  EXPECT_EQ(a.value("y"), 1u);
}

TEST(StatSet, ClearZeroesButKeepsNames) {
  StatSet s;
  s.counter("x") = 5;
  s.clear();
  EXPECT_EQ(s.value("x"), 0u);
  EXPECT_EQ(s.items().size(), 1u);
}

TEST(Histogram, RecordsAndOverflows) {
  Histogram h(4);
  h.record(0);
  h.record(1);
  h.record(1);
  h.record(3);
  h.record(10);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 15u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, EmptyMeanIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

}  // namespace
}  // namespace laec
