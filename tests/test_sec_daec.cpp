// SEC-DAEC property tests, mirroring tests/test_secded.cpp:
//  * exhaustive single-flip correction over every codeword position;
//  * exhaustive ADJACENT double-flip correction (the capability SECDED
//    lacks) over every adjacent pair and a structured word battery;
//  * random NON-adjacent double flips are never silently accepted: each is
//    either flagged detected-uncorrectable or (the documented SEC-DAEC
//    trade-off) miscorrected — syndrome never zero, status never kOk.
#include "ecc/sec_daec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace laec::ecc {
namespace {

std::vector<u64> word_battery(unsigned width) {
  std::vector<u64> words = {0, low_mask(width), 0xaaaaaaaaaaaaaaaaull & low_mask(width),
                            0x5555555555555555ull & low_mask(width)};
  for (unsigned b = 0; b < width; ++b) {
    words.push_back(u64{1} << b);               // walking one
    words.push_back(~(u64{1} << b) & low_mask(width));  // walking zero
  }
  Rng rng(0xdaec + width);
  for (int i = 0; i < 4; ++i) words.push_back(rng.next_u64() & low_mask(width));
  return words;
}

/// Apply a codeword-position flip to a (data, check) pair.
void flip_cw(const SecDaecCode& c, u64& data, u64& check, unsigned pos) {
  if (pos < c.data_bits()) {
    data = flip_bit(data, pos);
  } else {
    check = flip_bit(check, pos - c.data_bits());
  }
}

TEST(SecDaec, Geometries) {
  EXPECT_EQ(sec_daec32().data_bits(), 32u);
  EXPECT_EQ(sec_daec32().check_bits(), 7u);
  EXPECT_EQ(sec_daec32().codeword_bits(), 39u);
  EXPECT_EQ(sec_daec64().data_bits(), 64u);
  EXPECT_EQ(sec_daec64().check_bits(), 8u);
  EXPECT_EQ(sec_daec64().codeword_bits(), 72u);
}

TEST(SecDaec, ColumnsAreDistinctOddWeight) {
  for (const SecDaecCode* c : {&sec_daec32(), &sec_daec64()}) {
    std::set<u64> seen;
    for (unsigned i = 0; i < c->data_bits(); ++i) {
      const u64 col = c->column(i);
      EXPECT_EQ(popcount64(col) % 2, 1) << "column " << i;
      EXPECT_GE(popcount64(col), 3) << "column " << i;
      EXPECT_TRUE(seen.insert(col).second) << "duplicate column " << i;
    }
  }
}

TEST(SecDaec, AdjacentPairSyndromesAreUnique) {
  // The defining construction property: every adjacent codeword pair —
  // data-data, the data/check seam, check-check — has a distinct syndrome,
  // distinct from every single-bit syndrome (odd vs even weight).
  for (const SecDaecCode* c : {&sec_daec32(), &sec_daec64()}) {
    const unsigned k = c->data_bits();
    const unsigned n = c->codeword_bits();
    const auto cw_column = [&](unsigned p) {
      return p < k ? c->column(p) : (u64{1} << (p - k));
    };
    std::set<u64> singles, pairs;
    for (unsigned p = 0; p < n; ++p) singles.insert(cw_column(p));
    ASSERT_EQ(singles.size(), n);
    for (unsigned p = 0; p + 1 < n; ++p) {
      const u64 s = cw_column(p) ^ cw_column(p + 1);
      EXPECT_TRUE(pairs.insert(s).second) << "pair syndrome collision at " << p;
      EXPECT_EQ(singles.count(s), 0u) << "pair aliases a single at " << p;
    }
  }
}

TEST(SecDaec, CleanDecodes) {
  for (const SecDaecCode* c : {&sec_daec32(), &sec_daec64()}) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
      const u64 v = rng.next_u64() & low_mask(c->data_bits());
      const auto r = c->check(v, c->encode(v));
      ASSERT_EQ(r.status, CheckStatus::kOk);
      ASSERT_EQ(r.data, v);
      ASSERT_EQ(r.corrected_pos, -1);
    }
  }
}

// Exhaustive single-error property: for EVERY codeword position of both
// geometries and a structured word battery, a single flip round-trips to
// the original word with kCorrected status.
TEST(SecDaec, ExhaustiveSingleFlipCorrected) {
  for (const SecDaecCode* c : {&sec_daec32(), &sec_daec64()}) {
    for (const u64 w : word_battery(c->data_bits())) {
      const u64 chk = c->encode(w);
      for (unsigned pos = 0; pos < c->codeword_bits(); ++pos) {
        u64 data = w;
        u64 check = chk;
        flip_cw(*c, data, check, pos);
        const auto r = c->check(data, check);
        ASSERT_EQ(r.status, CheckStatus::kCorrected)
            << "k=" << c->data_bits() << " word 0x" << std::hex << w
            << " pos " << std::dec << pos;
        ASSERT_EQ(r.data, w);
        ASSERT_EQ(r.check, chk);
        ASSERT_EQ(r.corrected_pos, static_cast<int>(pos));
        ASSERT_EQ(r.corrected_pos2, -1);
      }
    }
  }
}

// Exhaustive ADJACENT double-error property: every one of the n-1 adjacent
// codeword pairs round-trips with kCorrectedAdjacent, for every word in the
// battery — the headline capability this code adds over Hsiao SECDED.
TEST(SecDaec, ExhaustiveAdjacentDoubleFlipCorrected) {
  for (const SecDaecCode* c : {&sec_daec32(), &sec_daec64()}) {
    for (const u64 w : word_battery(c->data_bits())) {
      const u64 chk = c->encode(w);
      for (unsigned pos = 0; pos + 1 < c->codeword_bits(); ++pos) {
        u64 data = w;
        u64 check = chk;
        flip_cw(*c, data, check, pos);
        flip_cw(*c, data, check, pos + 1);
        const auto r = c->check(data, check);
        ASSERT_EQ(r.status, CheckStatus::kCorrectedAdjacent)
            << "k=" << c->data_bits() << " word 0x" << std::hex << w
            << " pair " << std::dec << pos << "," << pos + 1;
        ASSERT_EQ(r.data, w);
        ASSERT_EQ(r.check, chk);
        ASSERT_EQ(r.corrected_pos, static_cast<int>(pos));
        ASSERT_EQ(r.corrected_pos2, static_cast<int>(pos + 1));
      }
    }
  }
}

// Non-adjacent double flips: never silently accepted. Either the decoder
// flags them, or — the inherent SEC-DAEC trade-off — the even-weight
// syndrome aliases an adjacent pair and the word is miscorrected; in that
// case the delivered data must differ from a clean decode (the error is
// still *noticed* by any higher-level check), and re-encoding the delivered
// word must be self-consistent.
TEST(SecDaec, RandomNonAdjacentDoubleFlipNeverSilent) {
  for (const SecDaecCode* c : {&sec_daec32(), &sec_daec64()}) {
    Rng rng(0xbadd + c->data_bits());
    const unsigned n = c->codeword_bits();
    u64 detected = 0, miscorrected = 0;
    for (int trial = 0; trial < 4000; ++trial) {
      const u64 w = rng.next_u64() & low_mask(c->data_bits());
      const u64 chk = c->encode(w);
      const unsigned a = static_cast<unsigned>(rng.below(n));
      unsigned b = static_cast<unsigned>(rng.below(n));
      if (b + 1 == a || b == a || b == a + 1) continue;  // adjacency guard
      u64 data = w;
      u64 check = chk;
      flip_cw(*c, data, check, a);
      flip_cw(*c, data, check, b);
      const auto r = c->check(data, check);
      ASSERT_NE(r.status, CheckStatus::kOk)
          << "silent double error at " << a << "," << b;
      // A double can never look like a single (odd vs even syndrome).
      ASSERT_NE(r.status, CheckStatus::kCorrected);
      if (r.status == CheckStatus::kDetectedUncorrectable) {
        ++detected;
      } else {
        ASSERT_EQ(r.status, CheckStatus::kCorrectedAdjacent);
        ++miscorrected;
        // Delivered word is a valid codeword, but not the original one.
        ASSERT_EQ(c->encode(r.data), r.check);
        ASSERT_TRUE(r.data != w || r.check != chk);
      }
    }
    // Both outcomes occur in quantity: with r check bits, the n-1 adjacent
    // pairs necessarily occupy a large slice of the 2^(r-1)-1 even-weight
    // syndromes, so a sizeable miscorrection rate is inherent to SEC-DAEC
    // at this geometry — the guarantee under test is "never silent", not
    // "always detected".
    EXPECT_GT(detected, 500u);
    EXPECT_GT(miscorrected, 500u);
  }
}

// Exhaustive non-adjacent double sweep for (39,32) on one word: the status
// partition covers every pair; no pair is ever reported clean or single.
TEST(SecDaec, ExhaustiveNonAdjacentDoubleNeverSilent32) {
  const SecDaecCode& c = sec_daec32();
  const u64 w = 0x89abcdefull;
  const u64 chk = c.encode(w);
  const unsigned n = c.codeword_bits();
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = i + 2; j < n; ++j) {
      u64 data = w;
      u64 check = chk;
      flip_cw(c, data, check, i);
      flip_cw(c, data, check, j);
      const auto r = c.check(data, check);
      ASSERT_NE(r.status, CheckStatus::kOk) << "pair " << i << "," << j;
      ASSERT_NE(r.status, CheckStatus::kCorrected) << "pair " << i << "," << j;
    }
  }
}

TEST(SecDaec, RowWeightsStayBalanced) {
  // The greedy column order should keep syndrome XOR trees within a
  // reasonable spread (secondary goal; correctness never depends on it).
  for (const SecDaecCode* c : {&sec_daec32(), &sec_daec64()}) {
    unsigned mn = ~0u, mx = 0;
    for (unsigned r = 0; r < c->check_bits(); ++r) {
      mn = std::min(mn, c->row_weight(r));
      mx = std::max(mx, c->row_weight(r));
    }
    // The adjacency constraints rule out many balance-optimal columns, so
    // the spread is looser than Hsiao SECDED's (<= 3); a bound of 10 keeps
    // the deepest syndrome tree within one extra XOR level.
    EXPECT_LE(mx - mn, 10u) << "k=" << c->data_bits();
  }
}

}  // namespace
}  // namespace laec::ecc
