// Fast-path / slow-path equivalence suite.
//
// The hot-path refactor split every cache word read into a devirtualized
// clean-hit fast test and a cold generic decode path. The refactor's
// contract is observational invisibility: for ANY deployment and ANY fault
// pattern, routing every read through the generic path
// (SimConfig::force_generic_ecc_path) must produce bit-identical results —
// same cycles, same ECC event counts, same CSV row, same self-check
// verdict. This suite runs representative kernels under every registered
// 32-bit codec with fault injection enabled and asserts exactly that, then
// checks the multi-process sweep driver merges rows byte-identically at
// --procs=1/2/4.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "ecc/registry.hpp"
#include "runner/multiproc.hpp"
#include "runner/sweep_runner.hpp"

namespace laec {
namespace {

/// Deployable codec keys, deduplicated by canonical codec name (the legacy
/// aliases construct the same instances).
std::vector<std::string> deployable_codec_keys() {
  std::vector<std::string> keys;
  std::set<std::string> seen;
  for (const auto& key : ecc::registered_codecs()) {
    const auto codec = ecc::make_codec(key);
    if (codec->data_bits() != 32) continue;
    if (!seen.insert(std::string(codec->name())).second) continue;
    keys.push_back(key);
  }
  return keys;
}

/// The storm every point runs under: singles and adjacent doubles at rates
/// high enough to exercise correction, scrubbing and refetch recovery.
core::SimConfig injected_config() {
  core::SimConfig cfg;
  cfg.faults.emplace();
  cfg.faults->single_flip_prob = 0.002;
  cfg.faults->double_flip_prob = 0.001;
  cfg.faults->adjacent_doubles = true;
  return cfg;
}

std::vector<runner::SweepPoint> equivalence_points(bool force_generic) {
  core::SimConfig cfg = injected_config();
  cfg.force_generic_ecc_path = force_generic;
  runner::SweepGrid grid;
  grid.workloads({"tblook", "matrix"})
      .schemes(deployable_codec_keys())
      .base_config(cfg);
  return grid.points();
}

TEST(FastPathEquivalence, EveryCodecUnderInjectionMatchesGenericPath) {
  runner::SweepOptions opts;
  opts.threads = 1;
  const auto fast = runner::run_sweep(equivalence_points(false), opts);
  const auto slow = runner::run_sweep(equivalence_points(true), opts);

  ASSERT_EQ(fast.results.size(), slow.results.size());
  ASSERT_GT(fast.results.size(), 0u);

  u64 ecc_events = 0;
  for (std::size_t i = 0; i < fast.results.size(); ++i) {
    const auto& f = fast.results[i];
    const auto& s = slow.results[i];
    // The rendered CSV row covers scheme, cycles, CPI and every retained
    // per-level ECC counter — the exact observable surface of a sweep.
    EXPECT_EQ(runner::to_row(f), runner::to_row(s))
        << "row " << i << " (" << f.point.workload << " / "
        << f.point.config.effective_deployment().name << ")";
    EXPECT_EQ(f.self_check_ok, s.self_check_ok) << "row " << i;
    ecc_events += f.stats.ecc_corrected + f.stats.ecc_detected_uncorrectable +
                  f.stats.parity_refetches;
  }
  // The storm must actually have exercised the slow path, or this suite
  // proves nothing.
  EXPECT_GT(ecc_events, 0u);

  // Batched totals agree too (every counter, not just the row columns).
  EXPECT_EQ(fast.totals.items(), slow.totals.items());
}

TEST(FastPathEquivalence, LutDecodeMatchesMatrixDecodeUnderInjection) {
  // The syndrome-LUT decode layer (SimConfig::lut_decode, --no-lut) must be
  // observationally invisible exactly like the fast/generic routing: every
  // codec, injection on, rows and totals byte-identical. Run the matrix
  // path through BOTH routings so the toggle is proven orthogonal to
  // force_generic_ecc_path.
  runner::SweepOptions opts;
  opts.threads = 1;
  core::SimConfig matrix_cfg = injected_config();
  matrix_cfg.lut_decode = false;
  runner::SweepGrid matrix_grid;
  matrix_grid.workloads({"tblook", "matrix"})
      .schemes(deployable_codec_keys())
      .base_config(matrix_cfg);
  const auto lut = runner::run_sweep(equivalence_points(false), opts);
  const auto mat = runner::run_sweep(matrix_grid.points(), opts);
  core::SimConfig generic_cfg = matrix_cfg;
  generic_cfg.force_generic_ecc_path = true;
  runner::SweepGrid generic_grid;
  generic_grid.workloads({"tblook", "matrix"})
      .schemes(deployable_codec_keys())
      .base_config(generic_cfg);
  const auto mat_generic = runner::run_sweep(generic_grid.points(), opts);

  ASSERT_EQ(lut.results.size(), mat.results.size());
  ASSERT_GT(lut.results.size(), 0u);
  u64 ecc_events = 0;
  for (std::size_t i = 0; i < lut.results.size(); ++i) {
    const auto& l = lut.results[i];
    EXPECT_EQ(runner::to_row(l), runner::to_row(mat.results[i]))
        << "row " << i << " (" << l.point.workload << " / "
        << l.point.config.effective_deployment().name << ")";
    EXPECT_EQ(runner::to_row(l), runner::to_row(mat_generic.results[i]))
        << "row " << i << " (generic matrix)";
    EXPECT_EQ(l.self_check_ok, mat.results[i].self_check_ok) << "row " << i;
    ecc_events += l.stats.ecc_corrected + l.stats.ecc_detected_uncorrectable +
                  l.stats.parity_refetches;
  }
  EXPECT_GT(ecc_events, 0u);
  EXPECT_EQ(lut.totals.items(), mat.totals.items());
  EXPECT_EQ(lut.totals.items(), mat_generic.totals.items());
}

TEST(FastPathEquivalence, CleanRunMatchesGenericPath) {
  // No injector at all: the pure fast path against the pure generic path.
  runner::SweepGrid fast_grid, slow_grid;
  core::SimConfig slow_cfg;
  slow_cfg.force_generic_ecc_path = true;
  fast_grid.workloads({"matrix"}).schemes(runner::fig8_scheme_keys());
  slow_grid.workloads({"matrix"})
      .schemes(runner::fig8_scheme_keys())
      .base_config(slow_cfg);
  runner::SweepOptions opts;
  opts.threads = 1;
  const auto fast = runner::run_sweep(fast_grid.points(), opts);
  const auto slow = runner::run_sweep(slow_grid.points(), opts);
  ASSERT_EQ(fast.results.size(), slow.results.size());
  for (std::size_t i = 0; i < fast.results.size(); ++i) {
    EXPECT_EQ(runner::to_row(fast.results[i]), runner::to_row(slow.results[i]))
        << "row " << i;
  }
  EXPECT_EQ(fast.totals.items(), slow.totals.items());
}

TEST(FastPathEquivalence, ProcsMergeIsByteIdentical) {
  // The multi-process driver must reproduce the in-process row stream
  // byte-for-byte at any process count, injection included.
  const auto points = equivalence_points(false);
  std::string reference;
  for (const unsigned procs : {1u, 2u, 4u}) {
    runner::ProcOptions opts;
    opts.procs = procs;
    opts.format = "csv";
    opts.worker.threads = 1;
    std::ostringstream out;
    const auto summary = runner::run_sweep_procs(points, opts, out);
    EXPECT_EQ(summary.failed_workers, 0u) << "procs=" << procs;
    EXPECT_EQ(summary.points_run, points.size()) << "procs=" << procs;
    EXPECT_GT(summary.cycles, 0u);
    if (procs == 1) {
      reference = out.str();
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(out.str(), reference) << "procs=" << procs;
    }
  }
}

TEST(FastPathEquivalence, MergeKeepsSurvivorRowsWhenOneShardDiesEarly) {
  // A worker that died early leaves a short (or empty) shard file; the
  // merge must still emit every row the surviving workers finished, in
  // rotation order, instead of stopping at the first exhausted file.
  namespace fs = std::filesystem;
  const std::string prefix =
      (fs::temp_directory_path() / "laec-merge-test").string();
  const std::vector<std::string> paths = {prefix + ".0", prefix + ".1",
                                          prefix + ".2"};
  const std::vector<std::vector<std::string>> rows = {
      {"h", "a0"},             // died after one row
      {"h", "b0", "b1", "b2"},
      {"h", "c0", "c1", "c2"},
  };
  for (std::size_t j = 0; j < paths.size(); ++j) {
    std::ofstream f(paths[j], std::ios::trunc);
    for (const auto& r : rows[j]) f << r << '\n';
  }
  std::ostringstream out;
  runner::merge_shard_rows(paths, /*csv_header=*/true, out);
  EXPECT_EQ(out.str(), "h\na0\nb0\nc0\nb1\nc1\nb2\nc2\n");

  // Shard 0 empty (worker died before flushing anything): the header must
  // come from the first shard that has one. A torn final line (no trailing
  // newline — a worker killed mid-write) is dropped, not merged corrupt.
  {
    std::ofstream(paths[0], std::ios::trunc);
    std::ofstream f1(paths[1], std::ios::trunc);
    f1 << "h\nb0\nb1\n";
    f1.close();
    std::ofstream f2(paths[2], std::ios::trunc);
    f2 << "h\nc0\nc1-torn";  // no trailing newline
    f2.close();
    std::ostringstream out2;
    runner::merge_shard_rows(paths, /*csv_header=*/true, out2);
    EXPECT_EQ(out2.str(), "h\nb0\nc0\nb1\n");
  }
  for (const auto& p : paths) std::remove(p.c_str());
}

TEST(FastPathEquivalence, ProcsComposesWithOuterShard) {
  // --shard=I/N further subdivided across workers: every worker slice is a
  // subset of the parent shard, and the merged rows equal the parent
  // shard's in-process rows.
  const auto points = equivalence_points(false);
  for (unsigned shard = 0; shard < 2; ++shard) {
    runner::ProcOptions in_proc;
    in_proc.procs = 1;
    in_proc.worker.threads = 1;
    in_proc.worker.shard_index = shard;
    in_proc.worker.shard_count = 2;
    std::ostringstream ref;
    (void)runner::run_sweep_procs(points, in_proc, ref);

    runner::ProcOptions forked = in_proc;
    forked.procs = 3;
    std::ostringstream merged;
    const auto summary = runner::run_sweep_procs(points, forked, merged);
    EXPECT_EQ(summary.failed_workers, 0u);
    EXPECT_EQ(merged.str(), ref.str()) << "shard " << shard << "/2";
  }
}

}  // namespace
}  // namespace laec
