// SEC-DAEC-TAEC (45,32) property tests, mirroring tests/test_sec_daec.cpp
// and extending it to the triple-adjacent capability (arXiv:2002.07507):
//  * exhaustive single-flip correction over every codeword position;
//  * exhaustive ADJACENT double-flip correction over every adjacent pair;
//  * exhaustive ADJACENT triple-flip correction over every adjacent triple
//    — the capability this code adds over SEC-DAEC;
//  * random NON-adjacent double flips are never silently accepted;
//  * registry integration: the codec is a deployable 32-bit drop-in with
//    the corrects_adjacent_triple capability flag set.
#include "ecc/sec_daec_taec.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "ecc/registry.hpp"

namespace laec::ecc {
namespace {

std::vector<u64> word_battery(unsigned width) {
  std::vector<u64> words = {0, low_mask(width),
                            0xaaaaaaaaaaaaaaaaull & low_mask(width),
                            0x5555555555555555ull & low_mask(width)};
  for (unsigned b = 0; b < width; ++b) {
    words.push_back(u64{1} << b);                       // walking one
    words.push_back(~(u64{1} << b) & low_mask(width));  // walking zero
  }
  Rng rng(0x7aec + width);
  for (int i = 0; i < 4; ++i) {
    words.push_back(rng.next_u64() & low_mask(width));
  }
  return words;
}

/// Apply a codeword-position flip to a (data, check) pair.
void flip_cw(const SecDaecTaecCode& c, u64& data, u64& check, unsigned pos) {
  if (pos < c.data_bits()) {
    data = flip_bit(data, pos);
  } else {
    check = flip_bit(check, pos - c.data_bits());
  }
}

TEST(SecDaecTaec, Geometry) {
  EXPECT_EQ(sec_daec_taec32().data_bits(), 32u);
  EXPECT_EQ(sec_daec_taec32().check_bits(), 13u);
  EXPECT_EQ(sec_daec_taec32().codeword_bits(), 45u);
}

TEST(SecDaecTaec, ColumnsAreDistinctOddWeight) {
  const SecDaecTaecCode& c = sec_daec_taec32();
  std::set<u64> seen;
  for (unsigned i = 0; i < c.data_bits(); ++i) {
    const u64 col = c.column(i);
    EXPECT_EQ(popcount64(col) % 2, 1) << "column " << i;
    EXPECT_GE(popcount64(col), 3) << "column " << i;
    EXPECT_TRUE(seen.insert(col).second) << "duplicate column " << i;
  }
}

// The defining construction property: singles, adjacent pairs and adjacent
// triples — data-data(-data), the data/check seams, check-check(-check) —
// all have pairwise distinct syndromes, and the odd-weight classes
// (singles, triples) never collide with each other. Pairs are even-weight,
// so they are disjoint from both by parity.
TEST(SecDaecTaec, BurstSyndromesAreUnique) {
  const SecDaecTaecCode& c = sec_daec_taec32();
  const unsigned k = c.data_bits();
  const unsigned n = c.codeword_bits();
  const auto cw_column = [&](unsigned p) {
    return p < k ? c.column(p) : (u64{1} << (p - k));
  };
  std::set<u64> singles, pairs, triples;
  for (unsigned p = 0; p < n; ++p) singles.insert(cw_column(p));
  ASSERT_EQ(singles.size(), n);
  for (unsigned p = 0; p + 1 < n; ++p) {
    const u64 s = cw_column(p) ^ cw_column(p + 1);
    EXPECT_TRUE(pairs.insert(s).second) << "pair collision at " << p;
    EXPECT_EQ(singles.count(s), 0u) << "pair aliases a single at " << p;
  }
  for (unsigned p = 0; p + 2 < n; ++p) {
    const u64 s = cw_column(p) ^ cw_column(p + 1) ^ cw_column(p + 2);
    EXPECT_TRUE(triples.insert(s).second) << "triple collision at " << p;
    EXPECT_EQ(singles.count(s), 0u) << "triple aliases a single at " << p;
    EXPECT_EQ(pairs.count(s), 0u) << "triple aliases a pair at " << p;
  }
}

TEST(SecDaecTaec, CleanDecodes) {
  const SecDaecTaecCode& c = sec_daec_taec32();
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const u64 v = rng.next_u64() & low_mask(c.data_bits());
    const auto r = c.check(v, c.encode(v));
    ASSERT_EQ(r.status, CheckStatus::kOk);
    ASSERT_EQ(r.data, v);
    ASSERT_EQ(r.corrected_pos, -1);
    ASSERT_EQ(r.corrected_len, 0);
  }
}

// Exhaustive single-error property: every codeword position, over a
// structured word battery, round-trips with kCorrected.
TEST(SecDaecTaec, ExhaustiveSingleFlipCorrected) {
  const SecDaecTaecCode& c = sec_daec_taec32();
  for (const u64 w : word_battery(c.data_bits())) {
    const u64 chk = c.encode(w);
    for (unsigned pos = 0; pos < c.codeword_bits(); ++pos) {
      u64 data = w;
      u64 check = chk;
      flip_cw(c, data, check, pos);
      const auto r = c.check(data, check);
      ASSERT_EQ(r.status, CheckStatus::kCorrected)
          << "word 0x" << std::hex << w << " pos " << std::dec << pos;
      ASSERT_EQ(r.data, w);
      ASSERT_EQ(r.check, chk);
      ASSERT_EQ(r.corrected_pos, static_cast<int>(pos));
      ASSERT_EQ(r.corrected_len, 1);
    }
  }
}

// Exhaustive ADJACENT double-error property: every one of the n-1 adjacent
// pairs round-trips with kCorrectedAdjacent.
TEST(SecDaecTaec, ExhaustiveAdjacentDoubleFlipCorrected) {
  const SecDaecTaecCode& c = sec_daec_taec32();
  for (const u64 w : word_battery(c.data_bits())) {
    const u64 chk = c.encode(w);
    for (unsigned pos = 0; pos + 1 < c.codeword_bits(); ++pos) {
      u64 data = w;
      u64 check = chk;
      flip_cw(c, data, check, pos);
      flip_cw(c, data, check, pos + 1);
      const auto r = c.check(data, check);
      ASSERT_EQ(r.status, CheckStatus::kCorrectedAdjacent)
          << "word 0x" << std::hex << w << " pair " << std::dec << pos;
      ASSERT_EQ(r.data, w);
      ASSERT_EQ(r.check, chk);
      ASSERT_EQ(r.corrected_pos, static_cast<int>(pos));
      ASSERT_EQ(r.corrected_len, 2);
    }
  }
}

// Exhaustive ADJACENT triple-error property: every one of the n-2 adjacent
// triples round-trips — the headline capability over SEC-DAEC.
TEST(SecDaecTaec, ExhaustiveAdjacentTripleFlipCorrected) {
  const SecDaecTaecCode& c = sec_daec_taec32();
  for (const u64 w : word_battery(c.data_bits())) {
    const u64 chk = c.encode(w);
    for (unsigned pos = 0; pos + 2 < c.codeword_bits(); ++pos) {
      u64 data = w;
      u64 check = chk;
      flip_cw(c, data, check, pos);
      flip_cw(c, data, check, pos + 1);
      flip_cw(c, data, check, pos + 2);
      const auto r = c.check(data, check);
      ASSERT_EQ(r.status, CheckStatus::kCorrectedAdjacent)
          << "word 0x" << std::hex << w << " triple " << std::dec << pos;
      ASSERT_EQ(r.data, w);
      ASSERT_EQ(r.check, chk);
      ASSERT_EQ(r.corrected_pos, static_cast<int>(pos));
      ASSERT_EQ(r.corrected_len, 3);
    }
  }
}

// Non-adjacent double flips: never silently accepted, never mistaken for a
// single (odd/even syndrome parity). Either flagged, or miscorrected onto
// an adjacent burst — in which case the delivered word is self-consistent
// but different from the original.
TEST(SecDaecTaec, RandomNonAdjacentDoubleFlipNeverSilent) {
  const SecDaecTaecCode& c = sec_daec_taec32();
  Rng rng(0xbadd);
  const unsigned n = c.codeword_bits();
  u64 detected = 0, miscorrected = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    const u64 w = rng.next_u64() & low_mask(c.data_bits());
    const u64 chk = c.encode(w);
    const unsigned a = static_cast<unsigned>(rng.below(n));
    unsigned b = static_cast<unsigned>(rng.below(n));
    if (b + 1 == a || b == a || b == a + 1) continue;  // adjacency guard
    u64 data = w;
    u64 check = chk;
    flip_cw(c, data, check, a);
    flip_cw(c, data, check, b);
    const auto r = c.check(data, check);
    ASSERT_NE(r.status, CheckStatus::kOk)
        << "silent double error at " << a << "," << b;
    ASSERT_NE(r.status, CheckStatus::kCorrected);
    if (r.status == CheckStatus::kDetectedUncorrectable) {
      ++detected;
    } else {
      ASSERT_EQ(r.status, CheckStatus::kCorrectedAdjacent);
      ++miscorrected;
      ASSERT_EQ(c.encode(r.data), r.check);
      ASSERT_TRUE(r.data != w || r.check != chk);
    }
  }
  // At r = 13 the even-weight syndrome space (2^12) dwarfs the 44 adjacent
  // pairs, so detection dominates — but alias hits still occur.
  EXPECT_GT(detected, 3000u);
}

// Exhaustive non-adjacent double sweep on one word: no pair is ever
// reported clean or single.
TEST(SecDaecTaec, ExhaustiveNonAdjacentDoubleNeverSilent) {
  const SecDaecTaecCode& c = sec_daec_taec32();
  const u64 w = 0x89abcdefull;
  const u64 chk = c.encode(w);
  const unsigned n = c.codeword_bits();
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = i + 2; j < n; ++j) {
      u64 data = w;
      u64 check = chk;
      flip_cw(c, data, check, i);
      flip_cw(c, data, check, j);
      const auto r = c.check(data, check);
      ASSERT_NE(r.status, CheckStatus::kOk) << "pair " << i << "," << j;
      ASSERT_NE(r.status, CheckStatus::kCorrected) << "pair " << i << "," << j;
    }
  }
}

TEST(SecDaecTaec, RowWeightsStayBalanced) {
  // Secondary goal (correctness never depends on it): the greedy candidate
  // order keeps the syndrome XOR trees within a reasonable spread.
  const SecDaecTaecCode& c = sec_daec_taec32();
  unsigned mn = ~0u, mx = 0;
  for (unsigned r = 0; r < c.check_bits(); ++r) {
    mn = std::min(mn, c.row_weight(r));
    mx = std::max(mx, c.row_weight(r));
  }
  EXPECT_LE(mx - mn, 12u);
}

// Registry integration: a one-file drop-in, deployable at 32-bit word
// granularity, with the full capability ladder advertised.
TEST(SecDaecTaec, RegistryDropIn) {
  ASSERT_TRUE(codec_registered("sec-daec-taec-45-32"));
  const auto codec = make_codec("sec-daec-taec-45-32");
  EXPECT_EQ(codec->name(), "sec-daec-taec-45-32");
  EXPECT_EQ(codec->data_bits(), 32u);
  EXPECT_EQ(codec->check_bits(), 13u);
  EXPECT_TRUE(codec->corrects_single());
  EXPECT_TRUE(codec->corrects_adjacent_double());
  EXPECT_TRUE(codec->corrects_adjacent_triple());
  EXPECT_TRUE(codec->detects_adjacent_double());
  EXPECT_FALSE(codec->detects_double());

  // The Codec interface reports triples as the adjacent-corrected family.
  const u64 w = 0x1234abcdu;
  u64 data = w;
  u64 check = codec->encode(w);
  for (unsigned pos = 10; pos < 13; ++pos) data = flip_bit(data, pos);
  const auto r = codec->decode(data, check);
  EXPECT_EQ(r.status, CheckStatus::kCorrectedAdjacent);
  EXPECT_EQ(r.data, w);

  // And the devirtualized thunk agrees with the virtual encoder.
  const auto fn = codec->encode_thunk();
  for (u64 v : {u64{0}, u64{0xffffffff}, u64{0xdeadbeef}}) {
    EXPECT_EQ(fn(codec.get(), v), codec->encode(v));
  }
}

}  // namespace
}  // namespace laec::ecc
