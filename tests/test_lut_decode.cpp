// LUT-vs-matrix equivalence of the table-driven codec layer.
//
// Every built-in codec tabulates its linear encode into a byte-sliced
// EncodeLut and its matrix decode into a dense syndrome DecodeLut
// (src/ecc/lut.hpp). The contract is bit-identity: for every codec, every
// syndrome and any data word, the table path must reproduce the matrix
// path's (status, data, check) triple exactly — the caches switch between
// the two with CacheConfig::use_lut_decode and the sweep determinism
// contract compares their CSV output byte-for-byte. The syndrome spaces
// are small enough (<= 2^13) to verify EXHAUSTIVELY here.
//
// Also pins down Codec::decode_line's fallback semantics: a detected-but-
// uncorrectable word passes through AS STORED on the writeback path, for
// the default per-word loop and for the LUT override alike.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "ecc/codec.hpp"
#include "ecc/parity_i2.hpp"
#include "ecc/registry.hpp"

namespace laec::ecc {
namespace {

/// Every registered codec with check bits, deduplicated by canonical name
/// (the legacy aliases construct the same instances).
std::vector<std::shared_ptr<const Codec>> protected_codecs() {
  std::vector<std::shared_ptr<const Codec>> out;
  std::set<std::string> seen;
  for (const auto& key : registered_codecs()) {
    auto c = make_codec(key);
    if (c->check_bits() == 0) continue;
    if (!seen.insert(std::string(c->name())).second) continue;
    out.push_back(std::move(c));
  }
  return out;
}

TEST(LutDecode, EveryBuiltinCodecHasADenseSyndromeTable) {
  for (const auto& c : protected_codecs()) {
    const DecodeLut* lut = c->decode_lut();
    ASSERT_NE(lut, nullptr) << c->name();
    EXPECT_EQ(lut->size(), std::size_t{1} << c->check_bits()) << c->name();
  }
}

TEST(LutDecode, ExhaustiveSyndromesMatchMatrixDecode) {
  Rng rng(0xdec0deu);
  for (const auto& c : protected_codecs()) {
    SCOPED_TRACE(std::string(c->name()));
    const DecodeLut& lut = *c->decode_lut();
    const u64 dmask = low_mask(c->data_bits());
    const u64 cmask = low_mask(c->check_bits());
    std::vector<u64> words = {0, dmask, 0xa5a5a5a5a5a5a5a5ull & dmask,
                              0x0123456789abcdefull & dmask};
    for (int i = 0; i < 4; ++i) words.push_back(rng.next_u64() & dmask);
    const u64 nsyn = u64{1} << c->check_bits();
    for (u64 s = 0; s < nsyn; ++s) {
      for (const u64 d : words) {
        // Construct a stored pair whose syndrome is exactly s.
        const u64 check = (c->encode(d) ^ s) & cmask;
        const Codec::Decoded m = c->decode(d, check);
        const LutDecoded l = lut.decode(d, check);
        ASSERT_EQ(m.status, l.status) << "s=" << s << " d=" << d;
        ASSERT_EQ(m.data, l.data) << "s=" << s << " d=" << d;
        ASSERT_EQ(m.check, l.check) << "s=" << s << " d=" << d;
      }
    }
  }
}

TEST(LutEncode, ByteSlicedTablesMatchMatrixEncode) {
  // The table encoder against the underlying codes' matrix math, over the
  // full single-bit basis (the table's correctness by linearity reduces to
  // the basis) plus random words (which exercise the lane recombination).
  const auto check_against =
      [](const std::shared_ptr<const Codec>& codec, auto&& matrix) {
        SCOPED_TRACE(std::string(codec->name()));
        Rng rng(0x5eedu);
        const u64 dmask = low_mask(codec->data_bits());
        EXPECT_EQ(codec->encode(0), 0u);
        for (unsigned i = 0; i < codec->data_bits(); ++i) {
          const u64 w = u64{1} << i;
          ASSERT_EQ(codec->encode(w), matrix(w)) << "bit " << i;
        }
        for (int i = 0; i < 256; ++i) {
          const u64 w = rng.next_u64() & dmask;
          ASSERT_EQ(codec->encode(w), matrix(w)) << "w=" << w;
          // Bits above data_bits are ignored, exactly like the matrix path.
          ASSERT_EQ(codec->encode(w | ~dmask), matrix(w)) << "w=" << w;
        }
      };
  check_against(make_codec("parity-32"),
                [](u64 w) { return ParityCode(32).encode(w); });
  check_against(make_codec("parity-i2-32"), [](u64 w) {
    u64 check = 0;
    for (unsigned bit = 0; bit < 32; ++bit) {
      check ^= ((w >> bit) & 1u) << (bit % 2);
    }
    return check;
  });
  check_against(make_codec("secded-39-32"),
                [](u64 w) { return secded32().encode(w); });
  check_against(make_codec("secded-72-64"),
                [](u64 w) { return secded64().encode(w); });
  check_against(make_codec("sec-daec-39-32"),
                [](u64 w) { return sec_daec32().encode(w); });
  check_against(make_codec("sec-daec-72-64"),
                [](u64 w) { return sec_daec64().encode(w); });
  check_against(make_codec("sec-daec-taec-45-32"),
                [](u64 w) { return sec_daec_taec32().encode(w); });
  check_against(make_codec("dec-bch-45-32"),
                [](u64 w) { return dec_bch32().encode(w); });
}

TEST(LutEncode, EncodeThunkAndLineAgreeWithEncode) {
  Rng rng(0x11e5u);
  for (const auto& c : protected_codecs()) {
    SCOPED_TRACE(std::string(c->name()));
    const auto fn = c->encode_thunk();
    u32 data[16];
    u16 check[16];
    for (u32& w : data) w = static_cast<u32>(rng.next_u64());
    c->encode_line(data, check, 16);
    for (int i = 0; i < 16; ++i) {
      const u64 expect = c->encode(data[i]);
      EXPECT_EQ(fn(c.get(), data[i]), expect);
      EXPECT_EQ(check[i], static_cast<u16>(expect));
    }
  }
}

/// Thin forwarding wrapper that inherits the BASE-CLASS decode_line and
/// encode_line defaults while delegating the per-word pair to a real codec
/// — the reference semantics the LUT overrides must reproduce.
class GenericView final : public Codec {
 public:
  explicit GenericView(std::shared_ptr<const Codec> inner)
      : inner_(std::move(inner)) {}
  [[nodiscard]] std::string_view name() const override {
    return inner_->name();
  }
  [[nodiscard]] unsigned data_bits() const override {
    return inner_->data_bits();
  }
  [[nodiscard]] unsigned check_bits() const override {
    return inner_->check_bits();
  }
  [[nodiscard]] u64 encode(u64 data) const override {
    return inner_->encode(data);
  }
  [[nodiscard]] Decoded decode(u64 data, u64 check) const override {
    return inner_->decode(data, check);
  }

 private:
  std::shared_ptr<const Codec> inner_;
};

TEST(DecodeLine, UncorrectableWordsPassThroughUnmodified) {
  // For every codec: build a line holding a clean word, a correctable word
  // (when the scheme corrects at all) and a word with a syndrome the scheme
  // REPORTS BUT CANNOT REPAIR, then assert — against the per-word decode —
  // that both the default fallback loop and the LUT override deliver the
  // corrected view for the former and the STORED word for the latter.
  Rng rng(0xfa11bacc);
  for (const auto& c : protected_codecs()) {
    SCOPED_TRACE(std::string(c->name()));
    const u64 cmask = low_mask(c->check_bits());

    // Scan the syndrome space for a detected-uncorrectable exemplar and,
    // where available, a correcting one (parity-class codes have none).
    u64 due_syndrome = 0, fix_syndrome = 0;
    bool have_due = false, have_fix = false;
    for (u64 s = 1; s < (u64{1} << c->check_bits()); ++s) {
      const auto r = c->decode(0, s);
      if (!have_due && r.status == CheckStatus::kDetectedUncorrectable) {
        due_syndrome = s;
        have_due = true;
      }
      if (!have_fix && is_corrected(r.status)) {
        fix_syndrome = s;
        have_fix = true;
      }
      if (have_due && have_fix) break;
    }
    ASSERT_TRUE(have_due) << "no DUE syndrome in the whole space?";

    constexpr std::size_t kWords = 12;
    u32 data[kWords];
    u16 check[kWords];
    for (std::size_t i = 0; i < kWords; ++i) {
      data[i] = static_cast<u32>(rng.next_u64());
      u64 s = 0;  // clean by default
      if (i % 3 == 1) s = due_syndrome;
      if (i % 3 == 2 && have_fix) s = fix_syndrome;
      check[i] = static_cast<u16>((c->encode(data[i]) ^ s) & cmask);
    }

    u32 via_lut[kWords];
    u32 via_default[kWords];
    c->decode_line(data, check, via_lut, kWords);
    GenericView(c).decode_line(data, check, via_default, kWords);

    std::size_t due_seen = 0;
    for (std::size_t i = 0; i < kWords; ++i) {
      const auto r = c->decode(data[i], check[i]);
      const u32 expect =
          is_corrected(r.status) ? static_cast<u32>(r.data) : data[i];
      EXPECT_EQ(via_default[i], expect) << "word " << i;
      EXPECT_EQ(via_lut[i], expect) << "word " << i;
      if (r.status == CheckStatus::kDetectedUncorrectable) {
        // The pass-through contract, stated directly.
        EXPECT_EQ(via_lut[i], data[i]) << "word " << i;
        EXPECT_EQ(via_default[i], data[i]) << "word " << i;
        ++due_seen;
      }
    }
    EXPECT_GT(due_seen, 0u) << "line never exercised the pass-through case";
  }
}

}  // namespace
}  // namespace laec::ecc
