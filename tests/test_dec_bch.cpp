// DEC-TED BCH (45,32) property tests, the random-double counterpart of
// tests/test_sec_daec_taec.cpp:
//  * exhaustive single-flip correction over every codeword position;
//  * exhaustive DOUBLE-flip correction over every C(45,2) pair — adjacent
//    or not, the capability this code adds over the burst family;
//  * random triple flips are always detected, never miscorrected (TED,
//    the d = 6 guarantee);
//  * registry integration: a deployable 32-bit drop-in with the
//    corrects_double capability flag set, usable as a DL1 scheme key.
#include "ecc/dec_bch.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "core/deployment.hpp"
#include "ecc/registry.hpp"

namespace laec::ecc {
namespace {

std::vector<u64> word_battery(unsigned width) {
  std::vector<u64> words = {0, low_mask(width),
                            0xaaaaaaaaaaaaaaaaull & low_mask(width),
                            0x5555555555555555ull & low_mask(width)};
  Rng rng(0xbc4 + width);
  for (int i = 0; i < 4; ++i) {
    words.push_back(rng.next_u64() & low_mask(width));
  }
  return words;
}

/// Apply a codeword-position flip to a (data, check) pair.
void flip_cw(const DecBchCode& c, u64& data, u64& check, unsigned pos) {
  if (pos < c.data_bits()) {
    data = flip_bit(data, pos);
  } else {
    check = flip_bit(check, pos - c.data_bits());
  }
}

TEST(DecBch, Geometry) {
  EXPECT_EQ(dec_bch32().data_bits(), 32u);
  EXPECT_EQ(dec_bch32().check_bits(), 13u);
  EXPECT_EQ(dec_bch32().codeword_bits(), 45u);
}

TEST(DecBch, ColumnsAreDistinctAndNonUnit) {
  const DecBchCode& c = dec_bch32();
  std::set<u64> seen;
  for (unsigned j = 0; j < c.check_bits(); ++j) {
    seen.insert(u64{1} << j);  // unit (check) columns
  }
  for (unsigned i = 0; i < c.data_bits(); ++i) {
    const u64 col = c.column(i);
    EXPECT_NE(col, 0u) << "column " << i;
    EXPECT_TRUE(seen.insert(col).second) << "duplicate column " << i;
  }
}

TEST(DecBch, CleanWordsDecodeClean) {
  const DecBchCode& c = dec_bch32();
  for (const u64 w : word_battery(c.data_bits())) {
    const u64 chk = c.encode(w);
    const auto r = c.check(w, chk);
    EXPECT_EQ(r.status, CheckStatus::kOk);
    EXPECT_EQ(r.data, w);
    EXPECT_EQ(r.check, chk);
    EXPECT_EQ(r.corrected_count, 0);
  }
}

TEST(DecBch, ExhaustiveSingleFlipCorrection) {
  const DecBchCode& c = dec_bch32();
  for (const u64 w : word_battery(c.data_bits())) {
    const u64 chk = c.encode(w);
    for (unsigned pos = 0; pos < c.codeword_bits(); ++pos) {
      u64 data = w, check = chk;
      flip_cw(c, data, check, pos);
      const auto r = c.check(data, check);
      EXPECT_EQ(r.status, CheckStatus::kCorrected) << "pos " << pos;
      EXPECT_EQ(r.data, w) << "pos " << pos;
      EXPECT_EQ(r.check, chk) << "pos " << pos;
      EXPECT_EQ(r.corrected_pos[0], static_cast<int>(pos));
      EXPECT_EQ(r.corrected_count, 1);
    }
  }
}

TEST(DecBch, ExhaustiveDoubleFlipCorrection) {
  // EVERY pair of codeword positions — the 990 patterns SEC-DAEC only
  // handles when adjacent — must decode back to the original word.
  const DecBchCode& c = dec_bch32();
  for (const u64 w : word_battery(c.data_bits())) {
    const u64 chk = c.encode(w);
    for (unsigned p = 0; p < c.codeword_bits(); ++p) {
      for (unsigned q = p + 1; q < c.codeword_bits(); ++q) {
        u64 data = w, check = chk;
        flip_cw(c, data, check, p);
        flip_cw(c, data, check, q);
        const auto r = c.check(data, check);
        const auto want = q == p + 1 ? CheckStatus::kCorrectedAdjacent
                                     : CheckStatus::kCorrected;
        ASSERT_EQ(r.status, want) << "pair " << p << "," << q;
        ASSERT_EQ(r.data, w) << "pair " << p << "," << q;
        ASSERT_EQ(r.check, chk) << "pair " << p << "," << q;
        ASSERT_EQ(r.corrected_pos[0], static_cast<int>(p));
        ASSERT_EQ(r.corrected_pos[1], static_cast<int>(q));
        ASSERT_EQ(r.corrected_count, 2);
      }
    }
  }
}

TEST(DecBch, RandomTriplesAreDetectedNeverMiscorrected) {
  // d = 6: a weight-3 error pattern is at distance >= 3 from every
  // codeword, outside every decode sphere — always flagged.
  const DecBchCode& c = dec_bch32();
  Rng rng(0x3b3);
  for (int trial = 0; trial < 3000; ++trial) {
    const u64 w = rng.next_u64() & low_mask(c.data_bits());
    const u64 chk = c.encode(w);
    unsigned p = static_cast<unsigned>(rng.below(c.codeword_bits()));
    unsigned q = static_cast<unsigned>(rng.below(c.codeword_bits()));
    unsigned r3 = static_cast<unsigned>(rng.below(c.codeword_bits()));
    if (p == q || q == r3 || p == r3) continue;
    u64 data = w, check = chk;
    flip_cw(c, data, check, p);
    flip_cw(c, data, check, q);
    flip_cw(c, data, check, r3);
    const auto r = c.check(data, check);
    ASSERT_EQ(r.status, CheckStatus::kDetectedUncorrectable)
        << "triple " << p << "," << q << "," << r3;
  }
}

TEST(DecBch, RegistryDropInWithDoubleCorrectionCapability) {
  ASSERT_TRUE(codec_registered("dec-bch-45-32"));
  const auto c = make_codec("dec-bch-45-32");
  EXPECT_EQ(c->name(), "dec-bch-45-32");
  EXPECT_EQ(c->data_bits(), 32u);
  EXPECT_EQ(c->check_bits(), 13u);
  EXPECT_TRUE(c->corrects_single());
  EXPECT_TRUE(c->corrects_double());
  EXPECT_TRUE(c->corrects_adjacent_double());
  EXPECT_TRUE(c->detects_double());
  EXPECT_TRUE(c->detects_adjacent_double());
  EXPECT_FALSE(c->corrects_adjacent_triple());

  // Round trip through the Codec interface, including a non-adjacent
  // double repaired in place.
  const u64 w = 0xdecbc132u;
  const u64 chk = c->encode(w);
  const auto clean = c->decode(w, chk);
  EXPECT_EQ(clean.status, CheckStatus::kOk);
  const auto fixed = c->decode(w ^ (1u << 3) ^ (1u << 27), chk);
  EXPECT_EQ(fixed.status, CheckStatus::kCorrected);
  EXPECT_EQ(fixed.data, w);
}

TEST(DecBch, DeployableAsDl1SchemeKey) {
  // A correcting codec named bare rides the write-back DL1 under the LAEC
  // placement, like every other correcting drop-in.
  const auto dep = core::HierarchyDeployment::parse("dec-bch-45-32");
  EXPECT_EQ(dep.codec, "dec-bch-45-32");
  EXPECT_EQ(dep.timing, cpu::EccPolicy::kLaec);
  EXPECT_EQ(dep.write_policy, mem::WritePolicy::kWriteBack);
  EXPECT_EQ(core::HierarchyDeployment::parse(dep.canonical_key()).codec,
            dep.codec);
}

}  // namespace
}  // namespace laec::ecc
