#include "mem/bus.hpp"

#include <gtest/gtest.h>

namespace laec::mem {
namespace {

/// Scripted target: fixed service latency, records served transactions.
class FakeTarget : public BusTarget {
 public:
  explicit FakeTarget(unsigned latency) : latency_(latency) {}
  unsigned service(BusTransaction& t) override {
    served.push_back(t.addr);
    if (t.op == BusOp::kReadLine) t.line.assign(32, 0xaa);
    return latency_;
  }
  std::vector<Addr> served;

 private:
  unsigned latency_;
};

BusTransaction read_line(unsigned requester, Addr a) {
  BusTransaction t;
  t.requester = requester;
  t.op = BusOp::kReadLine;
  t.addr = a;
  return t;
}

TEST(Bus, SingleTransactionCompletesAfterLatency) {
  FakeTarget target(4);
  Bus bus({.request_cycles = 2, .response_cycles = 2}, target, 2);
  Cycle now = 0;
  const auto tok = bus.submit(read_line(0, 0x100), now);
  // total = 2 + 4 + 2 = 8 cycles of occupancy from grant.
  int cycles_to_done = 0;
  while (!bus.done(tok)) {
    bus.tick(now++);
    ++cycles_to_done;
    ASSERT_LT(cycles_to_done, 50);
  }
  EXPECT_EQ(cycles_to_done, 9);  // grant tick + 8 busy
  const auto t = bus.take(tok);
  EXPECT_EQ(t.line.size(), 32u);
  EXPECT_EQ(target.served.size(), 1u);
}

TEST(Bus, RoundRobinAlternatesRequesters) {
  FakeTarget target(0);
  Bus bus({.request_cycles = 1, .response_cycles = 0}, target, 3);
  Cycle now = 0;
  // Saturate: every requester has two pending transactions.
  std::vector<Bus::Token> toks;
  for (unsigned r = 0; r < 3; ++r) {
    toks.push_back(bus.submit(read_line(r, 0x100 * (r + 1)), now));
    toks.push_back(bus.submit(read_line(r, 0x100 * (r + 1) + 0x10), now));
  }
  for (int i = 0; i < 100; ++i) bus.tick(now++);
  for (auto t : toks) EXPECT_TRUE(bus.done(t));
  // Service order interleaves the three requesters round-robin.
  ASSERT_EQ(target.served.size(), 6u);
  EXPECT_EQ(target.served[0] & 0xf00u, 0x100u);
  EXPECT_EQ(target.served[1] & 0xf00u, 0x200u);
  EXPECT_EQ(target.served[2] & 0xf00u, 0x300u);
  EXPECT_EQ(target.served[3] & 0xf00u, 0x100u);
}

TEST(Bus, PerRequesterFifoOrder) {
  FakeTarget target(0);
  Bus bus({.request_cycles = 1, .response_cycles = 0}, target, 1);
  Cycle now = 0;
  bus.submit(read_line(0, 0xa0), now);
  bus.submit(read_line(0, 0xb0), now);
  for (int i = 0; i < 20; ++i) bus.tick(now++);
  ASSERT_EQ(target.served.size(), 2u);
  EXPECT_EQ(target.served[0], 0xa0u);
  EXPECT_EQ(target.served[1], 0xb0u);
}

TEST(Bus, ContentionInflatesWaitCycles) {
  FakeTarget target(8);
  Bus alone({.request_cycles = 2, .response_cycles = 2}, target, 4);
  Cycle now = 0;
  auto t0 = alone.submit(read_line(0, 0x0), now);
  while (!alone.done(t0)) alone.tick(now++);
  const u64 solo_wait = alone.stats().value("wait_cycles");

  FakeTarget target2(8);
  Bus busy({.request_cycles = 2, .response_cycles = 2}, target2, 4);
  now = 0;
  // Three co-runners (round-robin starts at requester 0, so they precede
  // requester 3's transaction).
  for (unsigned r = 0; r < 3; ++r) busy.submit(read_line(r, 0x100 * (r + 1)), 0);
  auto mine = busy.submit(read_line(3, 0x0), 0);
  while (!busy.done(mine)) busy.tick(now++);
  EXPECT_GT(busy.stats().value("wait_cycles"), solo_wait + 20);
}

TEST(Bus, SlotReuseAfterTake) {
  FakeTarget target(0);
  Bus bus({.request_cycles = 1, .response_cycles = 0}, target, 1);
  Cycle now = 0;
  for (int i = 0; i < 50; ++i) {
    const auto tok = bus.submit(read_line(0, 0x20u * static_cast<Addr>(i)), now);
    while (!bus.done(tok)) bus.tick(now++);
    bus.take(tok);
    // Token ids should stay bounded thanks to slot reuse.
    EXPECT_LT(tok, 4u);
  }
}

TEST(Bus, StatsCountOps) {
  FakeTarget target(0);
  Bus bus({.request_cycles = 1, .response_cycles = 1}, target, 2);
  Cycle now = 0;
  BusTransaction w;
  w.requester = 1;
  w.op = BusOp::kWriteWord;
  w.addr = 0x30;
  const auto t1 = bus.submit(std::move(w), now);
  const auto t2 = bus.submit(read_line(0, 0x40), now);
  while (!bus.done(t1) || !bus.done(t2)) bus.tick(now++);
  EXPECT_EQ(bus.stats().value("transactions"), 2u);
  EXPECT_EQ(bus.stats().value("write_word"), 1u);
  EXPECT_EQ(bus.stats().value("read_line"), 1u);
}

}  // namespace
}  // namespace laec::mem
